/**
 * @file
 * The reference pentacene OTFT from the paper's fabrication run.
 *
 * Bottom-gate, top-contact pentacene on Eagle XG glass: 50 nm sputtered
 * Cr gate, 50 nm ALD Al2O3 gate dielectric (OTS-treated), 50 nm thermal
 * pentacene, 50 nm Au source/drain through a shadow mask (paper
 * Sec. 3.3). Published figures of merit (paper Sec. 4.1, Fig. 3):
 *
 *   W/L            1000 um / 80 um
 *   linear mobility 0.16 cm^2/Vs
 *   subthreshold    350 mV/decade
 *   on/off ratio    1e6
 *   VT              -1.3 V at VDS = 1 V, +1.3 V at VDS = 10 V
 *   VT spread       within 0.5 V across a sample
 */

#ifndef OTFT_DEVICE_PENTACENE_HPP
#define OTFT_DEVICE_PENTACENE_HPP

#include "device/level1_model.hpp"
#include "device/level61_model.hpp"

namespace otft::device {

/** Published pentacene device constants. */
namespace pentacene {

/** Channel width, meters. */
inline constexpr double width = 1000e-6;
/** Channel length, meters. */
inline constexpr double length = 80e-6;
/** 50 nm ALD Al2O3, eps_r ~= 8: Ci = 1.42e-3 F/m^2 (142 nF/cm^2). */
inline constexpr double ci = 1.417e-3;
/** Published linear mobility, m^2/(V s). */
inline constexpr double linearMobility = 0.16e-4;
/** Published subthreshold slope, V/decade. */
inline constexpr double subthresholdSlope = 0.35;
/** Published on/off current ratio. */
inline constexpr double onOffRatio = 1e6;
/** Published threshold at VDS = 1 V (device frame), volts. */
inline constexpr double vtAtVds1 = -1.3;
/** Published threshold at VDS = 10 V (device frame), volts. */
inline constexpr double vtAtVds10 = 1.3;
/** Published cross-sample VT spread, volts. */
inline constexpr double vtSpread = 0.5;

} // namespace pentacene

/** Geometry of the published W/L = 1000/80 um test structure. */
Geometry pentaceneGeometry();

/**
 * The golden pentacene device: a level-61 model calibrated so that
 * parameter extraction on its simulated sweeps reproduces the published
 * figures of merit. This is the stand-in for the physical devices
 * measured on the probe station.
 */
std::shared_ptr<const Level61Model> makePentaceneGolden();

/** The golden device at a caller-chosen geometry (for cell sizing). */
std::shared_ptr<const Level61Model> makePentaceneGolden(
    const Geometry &geometry);

/** Level-61 model with explicit parameters at pentacene geometry. */
std::shared_ptr<const Level61Model> makePentacene(
    const Level61Params &params);

/**
 * A level-1 model with textbook pentacene numbers, used as the fitting
 * starting point for Fig. 4.
 */
std::shared_ptr<const Level1Model> makePentaceneLevel1(
    const Level1Params &params = {});

} // namespace otft::device

#endif // OTFT_DEVICE_PENTACENE_HPP
