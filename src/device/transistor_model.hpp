/**
 * @file
 * Abstract transistor model interface.
 *
 * All models expose a signed drain current as a function of terminal
 * voltages in the device's native sign convention: for a p-type device
 * (the pentacene OTFT) the channel conducts for negative VGS and the
 * drain current flows out of the drain (negative ID for negative VDS).
 *
 * Models are implemented internally in a "forward" n-type-like frame
 * and mirrored for p-type, which keeps the equations readable and makes
 * the same code serve both polarities.
 */

#ifndef OTFT_DEVICE_TRANSISTOR_MODEL_HPP
#define OTFT_DEVICE_TRANSISTOR_MODEL_HPP

#include <cstddef>
#include <memory>
#include <string>

namespace otft::device {

/** Channel polarity. */
enum class Polarity { PType, NType };

/** @return "p" or "n". */
const char *toString(Polarity polarity);

/** Shared geometric description of a planar FET. */
struct Geometry
{
    /** Channel width in meters. */
    double w = 1000e-6;
    /** Channel length in meters. */
    double l = 80e-6;
    /** Gate dielectric capacitance per area in F/m^2. */
    double ci = 1.42e-3;

    /** @return the W/L aspect ratio. */
    double aspect() const { return w / l; }

    /** @return total gate capacitance Ci * W * L in farads. */
    double gateCap() const { return ci * w * l; }
};

/**
 * A three-terminal FET model evaluated at a DC operating point.
 *
 * Implementations must be symmetric under source/drain exchange:
 * id(vgs, vds) == -id(vgs - vds, -vds). The base class provides that
 * mirroring plus the polarity transform; subclasses implement only the
 * forward-frame current for vds >= 0.
 */
class TransistorModel
{
  public:
    TransistorModel(Polarity polarity, Geometry geometry)
        : polarity_(polarity), geometry_(geometry)
    {}

    virtual ~TransistorModel() = default;

    /** Model family name ("level1", "level61", ...). */
    virtual std::string name() const = 0;

    /** Finite-difference half-step used by gm()/gds(), volts. */
    static constexpr double fdStep = 1e-4;

    /**
     * Signed drain current at the given gate-source and drain-source
     * voltages, in amperes, in the device's native convention.
     */
    double drainCurrent(double vgs, double vds) const;

    /** Transconductance dId/dVgs by central finite difference. */
    double gm(double vgs, double vds) const;

    /** Output conductance dId/dVds by central finite difference. */
    double gds(double vgs, double vds) const;

    /**
     * Fused batched operating-point evaluation for the lane-parallel
     * solver engine: for each k in [0, n) compute the drain current
     * and (when gm_out/gds_out are non-null, always together) the
     * finite-difference conductances at (vgs[k], vds[k]).
     *
     * Contract: every output is bit-identical to the scalar
     * drainCurrent()/gm()/gds() calls at the same point — the batched
     * Newton engine relies on this for its lockstep determinism
     * guarantee. The base implementation is the scalar loop;
     * subclasses may override with a fused evaluation that shares the
     * polarity/frame mapping across the five underlying current
     * evaluations and skips the virtual dispatch per call, as long as
     * the per-lane arithmetic is unchanged.
     */
    virtual void evalBatch(const double *vgs, const double *vds,
                           double *id, double *gm_out, double *gds_out,
                           std::size_t n) const;

    Polarity polarity() const { return polarity_; }
    const Geometry &geometry() const { return geometry_; }

  protected:
    /**
     * Forward-frame current for a conceptual n-type device with
     * vds >= 0. @param vgs forward gate overdrive reference,
     * @param vds forward drain-source voltage (non-negative).
     */
    virtual double forwardCurrent(double vgs, double vds) const = 0;

    /**
     * The polarity + source/drain-exchange frame mapping of
     * drainCurrent(), applied around an arbitrary forward-frame
     * current `fwd`. evalBatch overrides call this with a
     * statically-bound forwardCurrent so the frame arithmetic — and
     * therefore every output bit — matches the virtual scalar path.
     */
    template <typename Forward>
    static double
    mappedCurrent(Polarity polarity, const Forward &fwd, double vgs,
                  double vds)
    {
        double vgs_f = vgs;
        double vds_f = vds;
        double sign = 1.0;
        if (polarity == Polarity::PType) {
            vgs_f = -vgs;
            vds_f = -vds;
            sign = -1.0;
        }
        if (vds_f < 0.0) {
            // Source/drain exchange: gate references the other
            // terminal.
            return sign * -fwd(vgs_f - vds_f, -vds_f);
        }
        return sign * fwd(vgs_f, vds_f);
    }

  private:
    Polarity polarity_;
    Geometry geometry_;
};

using TransistorModelPtr = std::shared_ptr<const TransistorModel>;

} // namespace otft::device

#endif // OTFT_DEVICE_TRANSISTOR_MODEL_HPP
