/**
 * @file
 * Device parameter extraction from measured transfer curves.
 *
 * Implements the standard figures of merit the paper reports in
 * Sec. 4.1: linear-region field-effect mobility, threshold voltage by
 * linear (triode sweeps) or sqrt-ID (saturation sweeps) extrapolation,
 * subthreshold slope (mV/decade), and on/off current ratio. All slopes
 * and intercepts come from least-squares regression over curve regions
 * rather than pointwise derivatives, which makes the extraction robust
 * to instrument noise — the same practice used on real probe-station
 * data.
 */

#ifndef OTFT_DEVICE_EXTRACTION_HPP
#define OTFT_DEVICE_EXTRACTION_HPP

#include "device/measurement.hpp"
#include "device/transistor_model.hpp"

namespace otft::device {

/** Which operating regime the sweep was taken in. */
enum class Regime {
    /** Pick by |VDS|: saturation when |VDS| > 3 V. */
    Auto,
    /** Triode: VT by linear extrapolation of ID. */
    Linear,
    /** Saturation: VT by extrapolation of sqrt(ID). */
    Saturation,
};

/** Figures of merit extracted from a transfer curve. */
struct ExtractedParams
{
    /** Linear-region field-effect mobility, m^2/(V s). */
    double mobility = 0.0;
    /** Threshold voltage in the device frame, volts. */
    double vt = 0.0;
    /** Subthreshold slope, volts per decade. */
    double ss = 0.0;
    /** On/off drain current ratio over the sweep. */
    double onOffRatio = 0.0;
    /** On-region transconductance (regression slope), siemens. */
    double gm = 0.0;
};

/**
 * Extracts figures of merit from transfer sweeps. The extractor needs
 * the device polarity (to orient the sweep) and geometry (to convert
 * transconductance to mobility).
 */
class ParameterExtractor
{
  public:
    ParameterExtractor(Polarity polarity, Geometry geometry)
        : polarity(polarity), geometry(geometry)
    {}

    /**
     * Extract all figures of merit from one transfer curve. The
     * curve's vds field is interpreted as a magnitude (the paper's
     * axis convention). Mobility is meaningful on triode sweeps
     * (|VDS| small); it is still reported for saturation sweeps but
     * reflects an effective value.
     */
    ExtractedParams extract(const TransferCurve &curve,
                            Regime regime = Regime::Auto) const;

  private:
    Polarity polarity;
    Geometry geometry;
};

} // namespace otft::device

#endif // OTFT_DEVICE_EXTRACTION_HPP
