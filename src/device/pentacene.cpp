#include "device/pentacene.hpp"

namespace otft::device {

Geometry
pentaceneGeometry()
{
    Geometry g;
    g.w = pentacene::width;
    g.l = pentacene::length;
    g.ci = pentacene::ci;
    return g;
}

std::shared_ptr<const Level61Model>
makePentaceneGolden()
{
    return makePentaceneGolden(pentaceneGeometry());
}

std::shared_ptr<const Level61Model>
makePentaceneGolden(const Geometry &geometry)
{
    // Defaults in Level61Params are the calibrated golden values; the
    // calibration is locked in by tests/device/test_extraction.cpp,
    // which extracts mobility/SS/VT/on-off from simulated sweeps and
    // checks them against the published numbers above.
    return std::make_shared<Level61Model>(Polarity::PType, geometry,
                                          Level61Params{});
}

std::shared_ptr<const Level61Model>
makePentacene(const Level61Params &params)
{
    return std::make_shared<Level61Model>(Polarity::PType,
                                          pentaceneGeometry(), params);
}

std::shared_ptr<const Level1Model>
makePentaceneLevel1(const Level1Params &params)
{
    return std::make_shared<Level1Model>(Polarity::PType,
                                         pentaceneGeometry(), params);
}

} // namespace otft::device
