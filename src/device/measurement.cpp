#include "device/measurement.hpp"

#include <cmath>

#include "device/pentacene.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace otft::device {

double
MeasurementBench::instrument(double current)
{
    const double noisy =
        current * std::exp(rng.normal(0.0, config_.currentNoiseSigma));
    return noisy + config_.currentFloor * (0.5 + rng.uniform());
}

TransferCurve
MeasurementBench::measureTransfer(const TransistorModel &model, double vds,
                                  double vgs_lo, double vgs_hi,
                                  std::size_t points)
{
    if (points < 2)
        fatal("measureTransfer: need >= 2 points");

    TransferCurve curve;
    curve.vds = vds;
    curve.vgs = linspace(vgs_lo, vgs_hi, points);
    curve.id.reserve(points);
    curve.ig.reserve(points);
    for (double vgs : curve.vgs) {
        const double id = std::abs(model.drainCurrent(vgs, vds));
        curve.id.push_back(instrument(id));
        // Gate leakage scales with the gate-channel field.
        const double ig = config_.gateLeakage * std::abs(vgs) +
                          0.1 * config_.gateLeakage * std::abs(vds);
        curve.ig.push_back(instrument(ig));
    }
    return curve;
}

OutputCurve
MeasurementBench::measureOutput(const TransistorModel &model, double vgs,
                                double vds_lo, double vds_hi,
                                std::size_t points)
{
    if (points < 2)
        fatal("measureOutput: need >= 2 points");

    OutputCurve curve;
    curve.vgs = vgs;
    curve.vds = linspace(vds_lo, vds_hi, points);
    curve.id.reserve(points);
    for (double vds : curve.vds)
        curve.id.push_back(
            instrument(std::abs(model.drainCurrent(vgs, vds))));
    return curve;
}

std::vector<TransferCurve>
measurePentaceneFig3(std::size_t points, std::uint64_t seed)
{
    auto golden = makePentaceneGolden();
    InstrumentConfig config;
    config.seed = seed;
    MeasurementBench bench(config);

    // The device is p-type: the paper's "VDS = 1 V" sweep is |VDS|;
    // in the device frame the drain sits at -1 V relative to source.
    std::vector<TransferCurve> curves;
    curves.push_back(
        bench.measureTransfer(*golden, -1.0, -10.0, 10.0, points));
    curves.push_back(
        bench.measureTransfer(*golden, -10.0, -10.0, 10.0, points));
    // Report the magnitude convention used in the paper's figure.
    curves[0].vds = 1.0;
    curves[1].vds = 10.0;
    return curves;
}

} // namespace otft::device
