/**
 * @file
 * Alpha-power-law silicon MOSFET model (Sakurai-Newton) for a 45 nm
 * class process.
 *
 * The paper's silicon numbers come from a trimmed TSMC 45 nm standard
 * cell library; we do not need transistor-level silicon simulation for
 * the architecture experiments (the silicon Liberty data is constructed
 * directly, see liberty::makeSiliconLibrary). This model exists so the
 * same device->cell flow can be exercised end to end on silicon in
 * tests and examples, and to document the device-level contrast (e.g.
 * the ~1000x mobility gap the paper cites).
 */

#ifndef OTFT_DEVICE_SILICON_MOSFET_HPP
#define OTFT_DEVICE_SILICON_MOSFET_HPP

#include "device/transistor_model.hpp"

namespace otft::device {

/** Alpha-power-law parameters (forward frame). */
struct SiliconParams
{
    /** Threshold voltage magnitude, volts. */
    double vt = 0.45;
    /** Effective mobility in m^2/(V s) (~160 cm^2/Vs at 45 nm). */
    double u0 = 160e-4;
    /** Velocity-saturation exponent; 2 = long channel, ~1.3 at 45 nm. */
    double alpha = 1.3;
    /** Saturation voltage coefficient: vdsat = kv * vov^(alpha/2). */
    double kv = 0.9;
    /** Channel length modulation, 1/V. */
    double lambda = 0.1;
    /** Subthreshold slope, volts/decade. */
    double ss = 0.1;
    /** Leakage floor, amperes. */
    double iOff = 1e-9;
};

/** Short-channel silicon FET with velocity saturation. */
class SiliconMosfetModel : public TransistorModel
{
  public:
    SiliconMosfetModel(Polarity polarity, Geometry geometry,
                       SiliconParams params)
        : TransistorModel(polarity, geometry), params_(params)
    {}

    std::string name() const override { return "silicon"; }

    const SiliconParams &params() const { return params_; }

  protected:
    double forwardCurrent(double vgs, double vds) const override;

  private:
    SiliconParams params_;
};

/** 45 nm class geometry: W = 400 nm, L = 45 nm, Ci ~ 2.5e-2 F/m^2. */
Geometry silicon45Geometry();

/** A representative 45 nm NMOS transistor. */
TransistorModelPtr makeSilicon45Nmos();

/** A representative 45 nm PMOS transistor (mobility ~ half of NMOS). */
TransistorModelPtr makeSilicon45Pmos();

} // namespace otft::device

#endif // OTFT_DEVICE_SILICON_MOSFET_HPP
