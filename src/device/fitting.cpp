#include "device/fitting.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/optimize.hpp"
#include "util/stats_registry.hpp"

namespace {

/** Shared fit telemetry (both model levels feed the same stats). */
void
recordFitStats(int evals)
{
    static otft::stats::Counter &stat_fits = otft::stats::counter(
        "device.fits.performed", "model fits run to completion");
    static otft::stats::Counter &stat_evals = otft::stats::counter(
        "device.fit.objective_evals",
        "objective evaluations across all model fits");
    ++stat_fits;
    stat_evals += static_cast<std::uint64_t>(evals > 0 ? evals : 0);
}

} // namespace

namespace otft::device {

namespace {

constexpr double logFloor = 1e-15;

double
safeLog10(double x)
{
    return std::log10(std::max(x, logFloor));
}

} // namespace

double
ModelFitter::deviceVds(const TransferCurve &curve) const
{
    // Curves store |VDS| (the paper's axis convention); a p-type sweep
    // was taken at negative drain bias.
    return polarity == Polarity::PType ? -std::abs(curve.vds)
                                       : std::abs(curve.vds);
}

FitQuality
ModelFitter::evaluate(const TransistorModel &model,
                      const TransferCurve &curve) const
{
    const double vds = deviceVds(curve);
    const double id_max =
        *std::max_element(curve.id.begin(), curve.id.end());

    FitQuality q;
    double sum_log = 0.0;
    double sum_on = 0.0;
    std::size_t n_on = 0;
    for (std::size_t i = 0; i < curve.vgs.size(); ++i) {
        const double meas = curve.id[i];
        const double sim =
            std::abs(model.drainCurrent(curve.vgs[i], vds));
        const double e_log = safeLog10(sim) - safeLog10(meas);
        sum_log += e_log * e_log;
        if (meas > 0.1 * id_max) {
            const double e_rel = (sim - meas) / meas;
            sum_on += e_rel * e_rel;
            ++n_on;
        }
    }
    q.rmsLogError =
        std::sqrt(sum_log / static_cast<double>(curve.vgs.size()));
    q.rmsOnRegionError =
        n_on ? std::sqrt(sum_on / static_cast<double>(n_on)) : 0.0;
    return q;
}

Level1Fit
ModelFitter::fitLevel1(const TransferCurve &curve,
                       const Level1Params &start) const
{
    const double vds = deviceVds(curve);
    const double id_max =
        *std::max_element(curve.id.begin(), curve.id.end());

    auto objective = [&](const std::vector<double> &x) {
        Level1Params p = start;
        p.vt = x[0];
        p.u0 = std::abs(x[1]);
        Level1Model model(polarity, geometry, p);
        double sum = 0.0;
        for (std::size_t i = 0; i < curve.vgs.size(); ++i) {
            const double sim =
                std::abs(model.drainCurrent(curve.vgs[i], vds));
            const double e = (sim - curve.id[i]) / id_max;
            sum += e * e;
        }
        return sum;
    };

    NelderMeadOptions options;
    options.maxEvals = 4000;
    const auto result =
        nelderMead(objective, {start.vt, start.u0}, options);

    recordFitStats(result.evals);
    Level1Fit fit;
    fit.params = start;
    fit.params.vt = result.x[0];
    fit.params.u0 = std::abs(result.x[1]);
    Level1Model model(polarity, geometry, fit.params);
    fit.quality = evaluate(model, curve);
    return fit;
}

Level61Fit
ModelFitter::fitLevel61(const TransferCurve &curve,
                        const Level61Params &start) const
{
    const double vds = deviceVds(curve);

    auto make_params = [&](const std::vector<double> &x) {
        Level61Params p = start;
        p.vt0 = x[0];
        p.u0 = std::abs(x[1]);
        p.gamma = std::clamp(x[2], 0.0, 2.0);
        p.ss = std::clamp(x[3], 0.05, 2.0);
        p.iOff = std::pow(10.0, std::clamp(x[4], -15.0, -8.0));
        return p;
    };

    auto objective = [&](const std::vector<double> &x) {
        Level61Model model(polarity, geometry, make_params(x));
        double sum = 0.0;
        for (std::size_t i = 0; i < curve.vgs.size(); ++i) {
            const double sim =
                std::abs(model.drainCurrent(curve.vgs[i], vds));
            const double e = safeLog10(sim) - safeLog10(curve.id[i]);
            sum += e * e;
        }
        return sum;
    };

    NelderMeadOptions options;
    options.maxEvals = 6000;
    const std::vector<double> x0 = {start.vt0, start.u0, start.gamma,
                                    start.ss, std::log10(start.iOff)};
    const auto result = nelderMead(objective, x0, options);

    recordFitStats(result.evals);
    Level61Fit fit;
    fit.params = make_params(result.x);
    Level61Model model(polarity, geometry, fit.params);
    fit.quality = evaluate(model, curve);
    return fit;
}

} // namespace otft::device
