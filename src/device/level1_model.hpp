/**
 * @file
 * SPICE level-1 (Shichman-Hodges) MOSFET model.
 *
 * The paper uses the level-1 model as the fast, qualitative fit to the
 * measured pentacene transfer curve (paper Fig. 4). It captures carrier
 * mobility and threshold voltage but has no subthreshold conduction or
 * leakage, which is exactly why it underfits the measured curve below
 * threshold.
 */

#ifndef OTFT_DEVICE_LEVEL1_MODEL_HPP
#define OTFT_DEVICE_LEVEL1_MODEL_HPP

#include "device/transistor_model.hpp"

namespace otft::device {

/** Parameters of the Shichman-Hodges model (forward frame). */
struct Level1Params
{
    /**
     * Threshold voltage magnitude in the forward frame, volts. For the
     * p-type pentacene device with VT = -1.3 V this is +1.3 V.
     */
    double vt = 1.3;
    /** Low-field mobility in m^2/(V s). 0.16 cm^2/Vs = 0.16e-4. */
    double u0 = 0.16e-4;
    /** Channel length modulation, 1/V. */
    double lambda = 0.01;
};

/** Square-law FET: off below VT, quadratic saturation above. */
class Level1Model : public TransistorModel
{
  public:
    Level1Model(Polarity polarity, Geometry geometry, Level1Params params)
        : TransistorModel(polarity, geometry), params_(params)
    {}

    std::string name() const override { return "level1"; }

    const Level1Params &params() const { return params_; }

    /**
     * Fused lane evaluation: statically-bound forwardCurrent probes
     * instead of virtual dispatch per call. Bit-identical to the
     * scalar drainCurrent()/gm()/gds() chain.
     */
    void evalBatch(const double *vgs, const double *vds, double *id,
                   double *gm_out, double *gds_out,
                   std::size_t n) const override;

  protected:
    double forwardCurrent(double vgs, double vds) const override;

  private:
    Level1Params params_;
};

} // namespace otft::device

#endif // OTFT_DEVICE_LEVEL1_MODEL_HPP
