/**
 * @file
 * Process variation sampling.
 *
 * Organic semiconductors have low uniformity: the paper quotes a VT
 * spread within 0.5 V across a sample and cites significant current
 * variation as one of the four core OTFT challenges (Sec. 1). This
 * module samples per-device parameter sets around the golden values so
 * circuits and Monte Carlo tests can quantify robustness (e.g. noise
 * margin under variation, the paper's motivation for the VSS-tunable
 * pseudo-E switching threshold).
 *
 * Two correlation scales are modeled, following the standard
 * die-to-die / within-die split: a *die* component shared by every
 * device fabricated on one sample (deposition-run shifts — what a
 * per-board VSS trim compensates), and a *per-device* component drawn
 * independently for each transistor set on top of the die shift. The
 * Monte Carlo characterizer draws the die component once per sample
 * and the device component once per cell instance, both from
 * counter-based StreamRng substreams so results are independent of
 * evaluation order.
 */

#ifndef OTFT_DEVICE_VARIATION_HPP
#define OTFT_DEVICE_VARIATION_HPP

#include "device/level61_model.hpp"
#include "util/rng.hpp"
#include "util/stream_rng.hpp"

namespace otft::device {

/** Distribution widths for organic process variation. */
struct VariationConfig
{
    /**
     * Std deviation of the per-device VT shift, volts. The published
     * "spread within 0.5 V" is read as a +/-2 sigma band ->
     * sigma = 0.125 V.
     */
    double vtSigma = 0.125;
    /** Sigma of per-device ln(mobility) — log-normal variation. */
    double mobilityLnSigma = 0.10;
    /** Sigma of ln(iOff) in decades of leakage variation. */
    double leakageDecadeSigma = 0.3;

    /**
     * Die-to-die (sample-to-sample) correlated components, shared by
     * every device on one die. Zero by default so single-device
     * studies keep the historical distribution; the MC characterizer
     * enables them for yield analysis.
     */
    double dieVtSigma = 0.0;
    double dieMobilityLnSigma = 0.0;

    /**
     * Model-valid clamp ranges. Unbounded normal draws can push the
     * compact model outside the region it was calibrated in (negative
     * effective mobility headroom, leakage above the on-current),
     * which the circuit solver then faithfully simulates as garbage.
     * Draws are clamped to these bands around nominal; at the default
     * sigmas a clamp engages only beyond ~5-sigma draws.
     */
    /** Max |VT shift| from nominal (die + device combined), volts. */
    double vtShiftMax = 1.5;
    /** Mobility multiplier band around nominal. */
    double mobilityFactorMin = 0.05;
    double mobilityFactorMax = 8.0;
    /** Max |log10 shift| of the leakage floor, decades. */
    double leakageDecadeMax = 2.0;
};

/** The correlated component shared by every device on one die. */
struct DieVariation
{
    /** VT shift, volts. */
    double dVt = 0.0;
    /** ln(mobility) shift. */
    double dLnMobility = 0.0;
};

/**
 * Samples varied device parameter sets. Deterministic given the seed
 * of the caller-provided generator; with StreamRng the draws are also
 * independent of evaluation order across threads.
 */
class VariationModel
{
  public:
    explicit VariationModel(VariationConfig config = {})
        : config_(config)
    {}

    /** Draw the die-to-die component (two normal draws). */
    DieVariation sampleDie(StreamRng &rng) const;

    /** Draw one varied parameter set around the nominal values. */
    Level61Params sample(const Level61Params &nominal, Rng &rng) const;

    /** StreamRng overload (per-device component only, die = 0). */
    Level61Params sample(const Level61Params &nominal,
                         StreamRng &rng) const;

    /** Per-device draw on top of a shared die component. */
    Level61Params sample(const Level61Params &nominal,
                         const DieVariation &die, StreamRng &rng) const;

    /** Draw a varied device model at the given geometry/polarity. */
    std::shared_ptr<const Level61Model> sampleDevice(
        const Level61Model &nominal, Rng &rng) const;

    const VariationConfig &config() const { return config_; }

  private:
    /**
     * Apply raw shift draws (VT volts, ln-mobility, leakage decades)
     * to the nominal set, clamped to the model-valid ranges.
     */
    Level61Params apply(const Level61Params &nominal, double d_vt,
                        double d_ln_u0, double d_decades) const;

    VariationConfig config_;
};

} // namespace otft::device

#endif // OTFT_DEVICE_VARIATION_HPP
