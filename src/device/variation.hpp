/**
 * @file
 * Process variation sampling.
 *
 * Organic semiconductors have low uniformity: the paper quotes a VT
 * spread within 0.5 V across a sample and cites significant current
 * variation as one of the four core OTFT challenges (Sec. 1). This
 * module samples per-device parameter sets around the golden values so
 * circuits and Monte Carlo tests can quantify robustness (e.g. noise
 * margin under variation, the paper's motivation for the VSS-tunable
 * pseudo-E switching threshold).
 */

#ifndef OTFT_DEVICE_VARIATION_HPP
#define OTFT_DEVICE_VARIATION_HPP

#include "device/level61_model.hpp"
#include "util/rng.hpp"

namespace otft::device {

/** Distribution widths for organic process variation. */
struct VariationConfig
{
    /**
     * Std deviation of the VT shift, volts. The published "spread
     * within 0.5 V" is read as a +/-2 sigma band -> sigma = 0.125 V.
     */
    double vtSigma = 0.125;
    /** Sigma of ln(mobility) — log-normal mobility variation. */
    double mobilityLnSigma = 0.10;
    /** Sigma of ln(iOff) in decades of leakage variation. */
    double leakageDecadeSigma = 0.3;
};

/**
 * Samples varied device parameter sets. Deterministic given the seed of
 * the caller-provided Rng.
 */
class VariationModel
{
  public:
    explicit VariationModel(VariationConfig config = {})
        : config_(config)
    {}

    /** Draw one varied parameter set around the nominal values. */
    Level61Params sample(const Level61Params &nominal, Rng &rng) const;

    /** Draw a varied device model at the given geometry/polarity. */
    std::shared_ptr<const Level61Model> sampleDevice(
        const Level61Model &nominal, Rng &rng) const;

    const VariationConfig &config() const { return config_; }

  private:
    VariationConfig config_;
};

} // namespace otft::device

#endif // OTFT_DEVICE_VARIATION_HPP
