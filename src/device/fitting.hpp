/**
 * @file
 * SPICE model fitting to measured transfer curves (paper Fig. 4).
 *
 * The level-1 model is fit on a linear current scale (it has no
 * subthreshold region to fit); the level-61 model is fit on a log
 * current scale across the whole sweep. Both use Nelder-Mead over the
 * physical parameters.
 */

#ifndef OTFT_DEVICE_FITTING_HPP
#define OTFT_DEVICE_FITTING_HPP

#include <memory>

#include "device/level1_model.hpp"
#include "device/level61_model.hpp"
#include "device/measurement.hpp"

namespace otft::device {

/** Fit quality for a model against a measured curve. */
struct FitQuality
{
    /** RMS error of log10(ID) over the sweep. */
    double rmsLogError = 0.0;
    /** RMS relative error over the above-threshold region only. */
    double rmsOnRegionError = 0.0;
};

/** Result of fitting a level-1 model. */
struct Level1Fit
{
    Level1Params params;
    FitQuality quality;
};

/** Result of fitting a level-61 model. */
struct Level61Fit
{
    Level61Params params;
    FitQuality quality;
};

/**
 * Fits device models to measured transfer curves for a device of known
 * polarity and geometry.
 */
class ModelFitter
{
  public:
    ModelFitter(Polarity polarity, Geometry geometry)
        : polarity(polarity), geometry(geometry)
    {}

    /**
     * Fit the Shichman-Hodges model (vt, u0) to one transfer curve by
     * minimizing squared linear-scale current error (which weights the
     * on-region, the only region the model can represent).
     */
    Level1Fit fitLevel1(const TransferCurve &curve,
                        const Level1Params &start = {}) const;

    /**
     * Fit the RPI TFT model (vt0, u0, gamma, ss, iOff) to one transfer
     * curve by minimizing squared log-scale current error.
     */
    Level61Fit fitLevel61(const TransferCurve &curve,
                          const Level61Params &start = {}) const;

    /** Evaluate fit quality of an arbitrary model against a curve. */
    FitQuality evaluate(const TransistorModel &model,
                        const TransferCurve &curve) const;

  private:
    /** Device-frame VDS for a magnitude-convention curve. */
    double deviceVds(const TransferCurve &curve) const;

    Polarity polarity;
    Geometry geometry;
};

} // namespace otft::device

#endif // OTFT_DEVICE_FITTING_HPP
