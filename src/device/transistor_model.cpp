#include "device/transistor_model.hpp"

#include <cmath>

namespace otft::device {

const char *
toString(Polarity polarity)
{
    return polarity == Polarity::PType ? "p" : "n";
}

double
TransistorModel::drainCurrent(double vgs, double vds) const
{
    // Map the device frame onto the forward (n-type, vds >= 0) frame.
    return mappedCurrent(
        polarity_,
        [this](double g, double d) { return forwardCurrent(g, d); },
        vgs, vds);
}

double
TransistorModel::gm(double vgs, double vds) const
{
    constexpr double h = fdStep;
    return (drainCurrent(vgs + h, vds) - drainCurrent(vgs - h, vds)) /
           (2.0 * h);
}

double
TransistorModel::gds(double vgs, double vds) const
{
    constexpr double h = fdStep;
    return (drainCurrent(vgs, vds + h) - drainCurrent(vgs, vds - h)) /
           (2.0 * h);
}

void
TransistorModel::evalBatch(const double *vgs, const double *vds,
                           double *id, double *gm_out, double *gds_out,
                           std::size_t n) const
{
    // Scalar reference loop: correct for any model, no fusion.
    for (std::size_t k = 0; k < n; ++k) {
        id[k] = drainCurrent(vgs[k], vds[k]);
        if (gm_out != nullptr)
            gm_out[k] = gm(vgs[k], vds[k]);
        if (gds_out != nullptr)
            gds_out[k] = gds(vgs[k], vds[k]);
    }
}

} // namespace otft::device
