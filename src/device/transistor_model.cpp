#include "device/transistor_model.hpp"

#include <cmath>

namespace otft::device {

const char *
toString(Polarity polarity)
{
    return polarity == Polarity::PType ? "p" : "n";
}

double
TransistorModel::drainCurrent(double vgs, double vds) const
{
    // Map the device frame onto the forward (n-type, vds >= 0) frame.
    double vgs_f = vgs;
    double vds_f = vds;
    double sign = 1.0;
    if (polarity_ == Polarity::PType) {
        vgs_f = -vgs;
        vds_f = -vds;
        sign = -1.0;
    }
    if (vds_f < 0.0) {
        // Source/drain exchange: gate now references the other terminal.
        return sign * -forwardCurrent(vgs_f - vds_f, -vds_f);
    }
    return sign * forwardCurrent(vgs_f, vds_f);
}

double
TransistorModel::gm(double vgs, double vds) const
{
    constexpr double h = 1e-4;
    return (drainCurrent(vgs + h, vds) - drainCurrent(vgs - h, vds)) /
           (2.0 * h);
}

double
TransistorModel::gds(double vgs, double vds) const
{
    constexpr double h = 1e-4;
    return (drainCurrent(vgs, vds + h) - drainCurrent(vgs, vds - h)) /
           (2.0 * h);
}

} // namespace otft::device
