#include "device/extraction.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace otft::device {

namespace {

/** Least-squares line over the subset of points passing a predicate. */
template <typename Pred>
LineFit
fitRegion(const std::vector<double> &xs, const std::vector<double> &ys,
          Pred keep)
{
    std::vector<double> fx, fy;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (keep(i)) {
            fx.push_back(xs[i]);
            fy.push_back(ys[i]);
        }
    }
    if (fx.size() < 2)
        fatal("ParameterExtractor: too few points in regression region");
    return fitLine(fx, fy);
}

} // namespace

ExtractedParams
ParameterExtractor::extract(const TransferCurve &curve,
                            Regime regime) const
{
    if (curve.vgs.size() != curve.id.size() || curve.vgs.size() < 16)
        fatal("ParameterExtractor: malformed curve");

    // Work in the forward frame with VGS ascending so the on-region is
    // at the top of the sweep regardless of polarity.
    std::vector<double> vgs(curve.vgs.size());
    for (std::size_t i = 0; i < curve.vgs.size(); ++i)
        vgs[i] = polarity == Polarity::PType ? -curve.vgs[i]
                                             : curve.vgs[i];
    std::vector<double> id = curve.id;
    if (vgs.front() > vgs.back()) {
        std::reverse(vgs.begin(), vgs.end());
        std::reverse(id.begin(), id.end());
    }

    if (regime == Regime::Auto) {
        regime = std::abs(curve.vds) > 3.0 ? Regime::Saturation
                                           : Regime::Linear;
    }

    ExtractedParams out;

    const double id_max = *std::max_element(id.begin(), id.end());
    const double id_min = *std::min_element(id.begin(), id.end());
    out.onOffRatio = id_min > 0.0 ? id_max / id_min : 0.0;

    // --- On-region regression: ID (triode) or sqrt(ID) (saturation)
    //     versus VGS over the strongest half of the on current.
    const auto in_on_region = [&](std::size_t i) {
        return id[i] >= 0.5 * id_max;
    };

    if (regime == Regime::Linear) {
        const LineFit fit = fitRegion(vgs, id, in_on_region);
        out.gm = fit.slope;
        const double vds_mag = std::abs(curve.vds);
        if (vds_mag > 0.0 && fit.slope > 0.0) {
            out.mobility = fit.slope * geometry.l /
                           (geometry.w * geometry.ci * vds_mag);
        }
        const double vt_forward =
            fit.slope > 0.0 ? fit.solveFor(0.0) : 0.0;
        out.vt = polarity == Polarity::PType ? -vt_forward : vt_forward;
    } else {
        std::vector<double> sqrt_id(id.size());
        for (std::size_t i = 0; i < id.size(); ++i)
            sqrt_id[i] = std::sqrt(std::max(id[i], 0.0));
        const double s_max =
            *std::max_element(sqrt_id.begin(), sqrt_id.end());
        const LineFit fit = fitRegion(vgs, sqrt_id, [&](std::size_t i) {
            return sqrt_id[i] >= 0.5 * s_max;
        });
        const double vt_forward =
            fit.slope > 0.0 ? fit.solveFor(0.0) : 0.0;
        out.vt = polarity == Polarity::PType ? -vt_forward : vt_forward;
        // Effective saturation transconductance at the sweep top; an
        // effective mobility from the square-law relation.
        out.gm = 2.0 * fit.slope * s_max;
        const double vov = vgs.back() - vt_forward;
        if (vov > 0.0) {
            out.mobility = 2.0 * fit.slope * fit.slope * geometry.l /
                           (geometry.w * geometry.ci);
        }
    }

    // --- Subthreshold slope: regression of log10(ID) against VGS over
    //     the clean exponential region between the floor and the knee.
    // Stay well above the leakage floor and well below the knee where
    // the exponential bends into the power-law on-region. If the sweep
    // is too coarse for the strict window, widen the top level until
    // enough points are available.
    const double floor_level = std::max(id_min * 30.0, 1e-14);
    double top_level = id_max * 10e-5;
    std::vector<double> log_id(id.size());
    for (std::size_t i = 0; i < id.size(); ++i)
        log_id[i] = std::log10(std::max(id[i], 1e-18));
    for (int widen = 0; widen < 4; ++widen, top_level *= 10.0) {
        std::size_t count = 0;
        for (std::size_t i = 0; i < id.size(); ++i)
            if (id[i] > floor_level && id[i] < top_level)
                ++count;
        if (count < 6)
            continue;
        const LineFit fit = fitRegion(vgs, log_id, [&](std::size_t i) {
            return id[i] > floor_level && id[i] < top_level;
        });
        if (fit.slope > 0.0)
            out.ss = 1.0 / fit.slope;
        break;
    }

    return out;
}

} // namespace otft::device
