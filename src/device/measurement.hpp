/**
 * @file
 * Synthetic measurement bench.
 *
 * The paper measures fabricated devices with an HP4155A parameter
 * analyzer in an N2 glove box. We have no probe station, so this bench
 * generates the same artifact the instrument would produce — ID-VGS
 * transfer sweeps with gate leakage traces — from a golden device model
 * plus instrument noise and a current measurement floor. Downstream
 * code (extraction, model fitting, Fig. 3 and Fig. 4 benches) consumes
 * only the sweep data, exactly as it would consume instrument CSVs.
 */

#ifndef OTFT_DEVICE_MEASUREMENT_HPP
#define OTFT_DEVICE_MEASUREMENT_HPP

#include <vector>

#include "device/transistor_model.hpp"
#include "util/rng.hpp"

namespace otft::device {

/** One measured transfer characteristic (fixed VDS, swept VGS). */
struct TransferCurve
{
    /** Drain-source bias held during the sweep, volts (device frame). */
    double vds = 0.0;
    /** Swept gate voltages, volts. */
    std::vector<double> vgs;
    /** Measured drain current magnitudes, amperes. */
    std::vector<double> id;
    /** Measured gate leakage magnitudes, amperes. */
    std::vector<double> ig;
};

/** One output characteristic (fixed VGS, swept VDS). */
struct OutputCurve
{
    double vgs = 0.0;
    std::vector<double> vds;
    std::vector<double> id;
};

/** Instrument configuration. */
struct InstrumentConfig
{
    /** Multiplicative log-normal current noise (sigma of ln ID). */
    double currentNoiseSigma = 0.03;
    /** Additive measurement floor, amperes (HP4155A class). */
    double currentFloor = 3e-14;
    /** Gate leakage conductance, siemens (dielectric quality). */
    double gateLeakage = 2e-13;
    /** Seed for instrument noise. */
    std::uint64_t seed = 42;
};

/**
 * Sweeps a device model and records instrument-shaped data.
 */
class MeasurementBench
{
  public:
    explicit MeasurementBench(InstrumentConfig config = {})
        : config_(config), rng(config.seed)
    {}

    /**
     * Measure an ID-VGS transfer curve at the given VDS.
     * @param model device under test
     * @param vds drain bias (device frame; negative for a p-type sweep
     *            matching the paper's "VDS = 1 V" magnitude convention)
     * @param vgs_lo,vgs_hi sweep range
     * @param points number of sweep points
     */
    TransferCurve measureTransfer(const TransistorModel &model, double vds,
                                  double vgs_lo, double vgs_hi,
                                  std::size_t points);

    /** Measure an ID-VDS output curve at the given VGS. */
    OutputCurve measureOutput(const TransistorModel &model, double vgs,
                              double vds_lo, double vds_hi,
                              std::size_t points);

    const InstrumentConfig &config() const { return config_; }

  private:
    /** Apply log-normal noise and the measurement floor to |i|. */
    double instrument(double current);

    InstrumentConfig config_;
    Rng rng;
};

/**
 * The paper's Fig. 3 sweep: the golden pentacene device measured at
 * |VDS| of 1 V and 10 V, VGS from -10 V to +10 V. Returns the pair of
 * transfer curves in that order.
 */
std::vector<TransferCurve> measurePentaceneFig3(std::size_t points = 201,
                                                std::uint64_t seed = 42);

} // namespace otft::device

#endif // OTFT_DEVICE_MEASUREMENT_HPP
