#include "device/level61_model.hpp"

#include <algorithm>
#include <cmath>

namespace otft::device {

namespace {

/** Numerically safe softplus: s * ln(1 + exp(x / s)). */
double
softplus(double x, double s)
{
    const double z = x / s;
    if (z > 40.0)
        return x;
    if (z < -40.0)
        return s * std::exp(z);
    return s * std::log1p(std::exp(z));
}

} // namespace

double
Level61Model::effectiveVt(double vds) const
{
    const double excess =
        std::clamp(vds - params_.vdsRef, 0.0, params_.diblVmax);
    return params_.vt0 - params_.dibl * excess;
}

double
Level61Model::forwardCurrent(double vgs, double vds) const
{
    const Level61Params &p = params_;
    const double ln10 = 2.302585092994046;

    // Smooth overdrive that rolls off at the target subthreshold slope.
    // Deep below threshold the device is saturated (vsat ~ vov), so the
    // current goes as vov_eff^(2 + gamma); the scale s is chosen so the
    // resulting log-current slope equals ss V/decade.
    const double s = p.ss * (2.0 + p.gamma) / ln10;
    const double vov = softplus(vgs - effectiveVt(vds), s);

    // Power-law field-effect mobility (RPI GAMMA/VAA form).
    const double mobility = p.u0 * std::pow(vov / p.vaa, p.gamma);

    // Soft saturation knee at vsat = alphaSat * vov.
    const double vsat = p.alphaSat * vov;
    const double ratio = vds / vsat;
    const double vdse =
        vds / std::pow(1.0 + std::pow(ratio, p.mSat), 1.0 / p.mSat);

    const double gch = geometry().aspect() * mobility * geometry().ci * vov;
    const double channel = gch * vdse * (1.0 + p.lambda * vds);

    // Smooth, S/D-antisymmetric leakage floor.
    const double leak = p.iOff * std::tanh(vds);

    return channel + leak;
}

void
Level61Model::evalBatch(const double *vgs, const double *vds, double *id,
                        double *gm_out, double *gds_out,
                        std::size_t n) const
{
    // The frame mapping and the five current probes are the exact
    // expressions of the scalar drainCurrent()/gm()/gds() chain; the
    // only change is the statically-bound forwardCurrent call, which
    // shares the vtable dispatch and the polarity branch across the
    // whole batch without touching any per-lane arithmetic.
    const Polarity pol = polarity();
    const auto fwd = [this](double g, double d) {
        return Level61Model::forwardCurrent(g, d);
    };
    constexpr double h = fdStep;
    for (std::size_t k = 0; k < n; ++k) {
        const double g = vgs[k];
        const double d = vds[k];
        id[k] = mappedCurrent(pol, fwd, g, d);
        if (gm_out != nullptr)
            gm_out[k] = (mappedCurrent(pol, fwd, g + h, d) -
                         mappedCurrent(pol, fwd, g - h, d)) /
                        (2.0 * h);
        if (gds_out != nullptr)
            gds_out[k] = (mappedCurrent(pol, fwd, g, d + h) -
                          mappedCurrent(pol, fwd, g, d - h)) /
                         (2.0 * h);
    }
}

} // namespace otft::device
