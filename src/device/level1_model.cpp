#include "device/level1_model.hpp"

#include <algorithm>

namespace otft::device {

double
Level1Model::forwardCurrent(double vgs, double vds) const
{
    const double vov = vgs - params_.vt;
    if (vov <= 0.0)
        return 0.0;

    const double kp = params_.u0 * geometry().ci * geometry().aspect();
    const double clm = 1.0 + params_.lambda * vds;
    if (vds < vov) {
        // Triode region.
        return kp * (vov * vds - 0.5 * vds * vds) * clm;
    }
    // Saturation.
    return 0.5 * kp * vov * vov * clm;
}

void
Level1Model::evalBatch(const double *vgs, const double *vds, double *id,
                       double *gm_out, double *gds_out,
                       std::size_t n) const
{
    const Polarity pol = polarity();
    const auto fwd = [this](double g, double d) {
        return Level1Model::forwardCurrent(g, d);
    };
    constexpr double h = fdStep;
    for (std::size_t k = 0; k < n; ++k) {
        const double g = vgs[k];
        const double d = vds[k];
        id[k] = mappedCurrent(pol, fwd, g, d);
        if (gm_out != nullptr)
            gm_out[k] = (mappedCurrent(pol, fwd, g + h, d) -
                         mappedCurrent(pol, fwd, g - h, d)) /
                        (2.0 * h);
        if (gds_out != nullptr)
            gds_out[k] = (mappedCurrent(pol, fwd, g, d + h) -
                          mappedCurrent(pol, fwd, g, d - h)) /
                         (2.0 * h);
    }
}

} // namespace otft::device
