#include "device/level1_model.hpp"

#include <algorithm>

namespace otft::device {

double
Level1Model::forwardCurrent(double vgs, double vds) const
{
    const double vov = vgs - params_.vt;
    if (vov <= 0.0)
        return 0.0;

    const double kp = params_.u0 * geometry().ci * geometry().aspect();
    const double clm = 1.0 + params_.lambda * vds;
    if (vds < vov) {
        // Triode region.
        return kp * (vov * vds - 0.5 * vds * vds) * clm;
    }
    // Saturation.
    return 0.5 * kp * vov * vov * clm;
}

} // namespace otft::device
