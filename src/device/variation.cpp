#include "device/variation.hpp"

#include <algorithm>
#include <cmath>

namespace otft::device {

namespace {

double
clampMagnitude(double v, double max_abs)
{
    return std::clamp(v, -max_abs, max_abs);
}

} // namespace

DieVariation
VariationModel::sampleDie(StreamRng &rng) const
{
    DieVariation die;
    die.dVt = rng.normal(0.0, config_.dieVtSigma);
    die.dLnMobility = rng.normal(0.0, config_.dieMobilityLnSigma);
    return die;
}

Level61Params
VariationModel::apply(const Level61Params &nominal, double d_vt,
                      double d_ln_u0, double d_decades) const
{
    Level61Params p = nominal;
    p.vt0 = nominal.vt0 + clampMagnitude(d_vt, config_.vtShiftMax);
    const double u_factor =
        std::clamp(std::exp(d_ln_u0), config_.mobilityFactorMin,
                   config_.mobilityFactorMax);
    p.u0 = nominal.u0 * u_factor;
    p.iOff =
        nominal.iOff *
        std::pow(10.0,
                 clampMagnitude(d_decades, config_.leakageDecadeMax));
    return p;
}

Level61Params
VariationModel::sample(const Level61Params &nominal, Rng &rng) const
{
    return apply(nominal, rng.normal(0.0, config_.vtSigma),
                 rng.normal(0.0, config_.mobilityLnSigma),
                 rng.normal(0.0, config_.leakageDecadeSigma));
}

Level61Params
VariationModel::sample(const Level61Params &nominal, StreamRng &rng) const
{
    return sample(nominal, DieVariation{}, rng);
}

Level61Params
VariationModel::sample(const Level61Params &nominal,
                       const DieVariation &die, StreamRng &rng) const
{
    return apply(nominal,
                 die.dVt + rng.normal(0.0, config_.vtSigma),
                 die.dLnMobility +
                     rng.normal(0.0, config_.mobilityLnSigma),
                 rng.normal(0.0, config_.leakageDecadeSigma));
}

std::shared_ptr<const Level61Model>
VariationModel::sampleDevice(const Level61Model &nominal, Rng &rng) const
{
    return std::make_shared<Level61Model>(
        nominal.polarity(), nominal.geometry(),
        sample(nominal.params(), rng));
}

} // namespace otft::device
