#include "device/variation.hpp"

#include <cmath>

namespace otft::device {

Level61Params
VariationModel::sample(const Level61Params &nominal, Rng &rng) const
{
    Level61Params p = nominal;
    p.vt0 = nominal.vt0 + rng.normal(0.0, config_.vtSigma);
    p.u0 = nominal.u0 * std::exp(rng.normal(0.0, config_.mobilityLnSigma));
    p.iOff = nominal.iOff *
             std::pow(10.0, rng.normal(0.0, config_.leakageDecadeSigma));
    return p;
}

std::shared_ptr<const Level61Model>
VariationModel::sampleDevice(const Level61Model &nominal, Rng &rng) const
{
    return std::make_shared<Level61Model>(
        nominal.polarity(), nominal.geometry(),
        sample(nominal.params(), rng));
}

} // namespace otft::device
