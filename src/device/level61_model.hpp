/**
 * @file
 * SPICE level-61 (RPI amorphous-silicon TFT) model.
 *
 * The paper adopts the level-61 model for the pentacene OTFT because,
 * although developed for a-Si, it describes a three-terminal
 * accumulation-mode transistor with power-law field-effect mobility, a
 * finite subthreshold slope, and a leakage floor — all of which the
 * measured pentacene devices exhibit and which the level-1 model lacks
 * (paper Sec. 4.2, Fig. 4).
 *
 * This implementation keeps the characteristic structure of the RPI
 * model (unified overdrive smoothing, power-law mobility, soft
 * saturation knee, drain-induced threshold shift, ohmic leakage) in a
 * compact single-piece equation that is continuous in all regions,
 * which matters for Newton-Raphson convergence in the circuit solver.
 */

#ifndef OTFT_DEVICE_LEVEL61_MODEL_HPP
#define OTFT_DEVICE_LEVEL61_MODEL_HPP

#include "device/transistor_model.hpp"

namespace otft::device {

/**
 * Parameters of the RPI-style TFT model (forward frame).
 *
 * The defaults are the calibrated golden-pentacene values: they were
 * fixed-point iterated so that regression-based parameter extraction
 * on simulated noisy sweeps (the same extraction applied to real
 * probe-station data) reproduces the paper's published figures of
 * merit — mobility 0.16 cm^2/Vs, VT -1.3 V at |VDS| = 1 V and +1.3 V
 * at |VDS| = 10 V, SS ~350 mV/dec, on/off 1e6. Because the published
 * numbers are themselves extraction artifacts of a curved power-law
 * device, the raw model parameters (e.g. vt0) differ from the quoted
 * figures of merit; what is calibrated is the *extracted* value.
 */
struct Level61Params
{
    /** Threshold parameter at vdsRef, volts (forward frame). */
    double vt0 = 1.0515;
    /** Reference VDS at which vt0 is quoted, volts. */
    double vdsRef = 1.0;
    /**
     * Drain-induced threshold shift, V per V of VDS beyond vdsRef.
     * Calibrated so the extracted VT moves from -1.3 V at |VDS| = 1 V
     * to +1.3 V at |VDS| = 10 V, as published.
     */
    double dibl = 0.2659;
    /**
     * The drain-induced shift saturates: |VDS| beyond vdsRef + diblVmax
     * adds no further shift. Calibrated over the measured 1-10 V range;
     * without the clamp, extrapolating the linear shift to the +/-15 V
     * pseudo-E rails would predict unphysically conductive off devices.
     */
    double diblVmax = 9.0;
    /** Band mobility in m^2/(V s). */
    double u0 = 0.1541e-4;
    /** Mobility power-law exponent (GAMMA in the RPI model). */
    double gamma = 0.05;
    /** Mobility reference voltage (VAA), volts. */
    double vaa = 7.0;
    /** Subthreshold slope parameter, volts per decade. */
    double ss = 0.2634;
    /** Saturation knee sharpness (M in the RPI model). */
    double mSat = 4.0;
    /** Saturation voltage as a fraction of overdrive (ALPHASAT). */
    double alphaSat = 0.6;
    /** Channel length modulation, 1/V. */
    double lambda = 0.002;
    /** Off-state leakage floor, amperes (sets the on/off ratio). */
    double iOff = 3.412e-12;
};

/**
 * Accumulation-mode TFT with subthreshold conduction and leakage.
 *
 * The smooth overdrive v_eff = s * ln(1 + exp((vgs - vt)/s)) with
 * s = ss * (2 + gamma) / ln(10) produces drain current proportional to
 * exp((vgs - vt) * ln(10) / ss) deep below threshold — i.e. the target
 * subthreshold slope — while converging to (vgs - vt) above threshold.
 */
class Level61Model : public TransistorModel
{
  public:
    Level61Model(Polarity polarity, Geometry geometry, Level61Params params)
        : TransistorModel(polarity, geometry), params_(params)
    {}

    std::string name() const override { return "level61"; }

    const Level61Params &params() const { return params_; }

    /** Effective threshold at the given forward VDS (DIBL applied). */
    double effectiveVt(double vds) const;

    /**
     * Fused lane evaluation: one statically-bound forwardCurrent per
     * finite-difference probe instead of five virtual drainCurrent
     * dispatches per lane. Bit-identical to the scalar path.
     */
    void evalBatch(const double *vgs, const double *vds, double *id,
                   double *gm_out, double *gds_out,
                   std::size_t n) const override;

  protected:
    double forwardCurrent(double vgs, double vds) const override;

  private:
    Level61Params params_;
};

} // namespace otft::device

#endif // OTFT_DEVICE_LEVEL61_MODEL_HPP
