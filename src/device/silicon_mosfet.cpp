#include "device/silicon_mosfet.hpp"

#include <cmath>

namespace otft::device {

double
SiliconMosfetModel::forwardCurrent(double vgs, double vds) const
{
    const SiliconParams &p = params_;
    const double ln10 = 2.302585092994046;
    const double vov = vgs - p.vt;

    const double kp = p.u0 * geometry().ci * geometry().aspect();
    const double leak = p.iOff * std::tanh(vds);

    if (vov <= 0.0) {
        // Subthreshold: exponential with the configured slope, matched
        // to the above-threshold expression at vov = 0 via idEdge.
        const double id_edge = kp * std::pow(p.ss / ln10, p.alpha);
        return id_edge * std::exp(vov * ln10 / p.ss) + leak;
    }

    const double id_sat = kp * std::pow(vov + p.ss / ln10, p.alpha) *
                          (1.0 + p.lambda * vds);
    const double vdsat = p.kv * std::pow(vov, p.alpha / 2.0);
    if (vds >= vdsat)
        return id_sat + leak;

    // Quadratic blend into the triode region (Sakurai-Newton form).
    const double x = vds / vdsat;
    return id_sat * x * (2.0 - x) + leak;
}

Geometry
silicon45Geometry()
{
    Geometry g;
    g.w = 400e-9;
    g.l = 45e-9;
    // ~1.4 nm effective oxide: Ci = 3.9 * eps0 / 1.4 nm.
    g.ci = 2.47e-2;
    return g;
}

TransistorModelPtr
makeSilicon45Nmos()
{
    return std::make_shared<SiliconMosfetModel>(
        Polarity::NType, silicon45Geometry(), SiliconParams{});
}

TransistorModelPtr
makeSilicon45Pmos()
{
    SiliconParams p;
    p.u0 = 80e-4;
    return std::make_shared<SiliconMosfetModel>(
        Polarity::PType, silicon45Geometry(), p);
}

} // namespace otft::device
