/**
 * @file
 * Instruction trace records and benchmark profiles.
 *
 * The paper drives AnyCore's cycle-accurate simulator with Dhrystone
 * and SimPoints of six SPEC CPU2000 integer benchmarks. We have no
 * SPEC license or SimPoint traces, so traces are synthesized from
 * per-benchmark statistical profiles (instruction mix, branch
 * behavior, dependency-distance distribution, memory locality)
 * calibrated to published SPEC2000 characterizations. IPC differences
 * across benchmarks and their sensitivity to pipeline depth and
 * superscalar width come from these statistics, which is what the
 * architectural conclusions depend on.
 */

#ifndef OTFT_WORKLOAD_TRACE_HPP
#define OTFT_WORKLOAD_TRACE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace otft::workload {

/** Instruction classes the execution pipes distinguish. */
enum class OpClass : std::uint8_t {
    IntAlu,
    IntMul,
    IntDiv,
    Load,
    Store,
    Branch,
};

/** @return printable op class name. */
const char *toString(OpClass op);

/** Architectural register count of the synthetic ISA. */
inline constexpr int numArchRegs = 32;

/** Register sentinel meaning "no register". */
inline constexpr int noReg = -1;

/** One dynamic instruction. */
struct TraceInst
{
    OpClass op = OpClass::IntAlu;
    /** Source architectural registers (noReg when unused). */
    int src1 = noReg;
    int src2 = noReg;
    /** Destination architectural register (noReg for store/branch). */
    int dest = noReg;
    /** Instruction address (static identity for the predictor). */
    std::uint64_t pc = 0;
    /** Branch outcome (valid for Branch). */
    bool taken = false;
    /** Branch target (valid for Branch). */
    std::uint64_t target = 0;
    /** Effective address (valid for Load/Store). */
    std::uint64_t address = 0;
};

/** Statistical profile of one benchmark. */
struct BenchmarkProfile
{
    std::string name;
    /** Instruction class mix (fractions summing to <= 1; the
     *  remainder is IntAlu). */
    double branchFraction = 0.12;
    double loadFraction = 0.25;
    double storeFraction = 0.10;
    double mulFraction = 0.01;
    double divFraction = 0.002;
    /**
     * Branch population character: fractions of static branches that
     * are strongly biased, loop-patterned, and data-dependent
     * (hard to predict). Sums to 1.
     */
    double biasedBranchFraction = 0.6;
    double loopBranchFraction = 0.3;
    double randomBranchFraction = 0.1;
    /** Mean dependency distance (instructions) for source operands;
     *  smaller = less ILP. */
    double depDistance = 6.0;
    /** Fraction of loads whose address depends on a recent load
     *  (pointer chasing). */
    double pointerChaseFraction = 0.05;
    /** Data working set in bytes (drives cache miss rates). */
    std::uint64_t workingSetBytes = 256 * 1024;
    /** Fraction of memory accesses that are sequential streams. */
    double streamingFraction = 0.5;
    /**
     * Temporal locality: non-streaming accesses fall in a small hot
     * region with this probability, else anywhere in the working set.
     */
    double hotFraction = 0.85;
    /** Size of the hot region, bytes. */
    std::uint64_t hotBytes = 32 * 1024;
    /** Static branch sites in the synthetic program. */
    int staticBranches = 256;
};

/** The seven workloads of the paper's evaluation. */
std::vector<BenchmarkProfile> paperWorkloads();

/** Profile by name ("dhrystone", "bzip2", "gap", "gzip", "mcf",
 *  "parser", "vortex"); fatal if unknown. */
BenchmarkProfile profileByName(const std::string &name);

/**
 * Deterministic synthetic trace generator implementing a profile.
 * Instructions are produced block by block: a basic block of
 * class-mixed instructions ending in a conditional branch whose
 * outcome follows its static site's behavior pattern.
 */
class TraceGenerator
{
  public:
    TraceGenerator(BenchmarkProfile profile, std::uint64_t seed = 1);

    /** Generate the next dynamic instruction. */
    TraceInst next();

    const BenchmarkProfile &profile() const { return profile_; }

  private:
    /** Behavior of one static branch site. */
    struct BranchSite
    {
        enum class Kind { Biased, Loop, Random } kind = Kind::Biased;
        /** Taken probability (Biased/Random). */
        double takenProb = 0.9;
        /** Loop trip count (Loop). */
        int tripCount = 8;
        int loopPos = 0;
    };

    bool branchOutcome(std::size_t site);
    std::uint64_t nextAddress(bool &chased);

    BenchmarkProfile profile_;
    Rng rng;
    std::vector<BranchSite> sites;
    std::uint64_t pc = 0x1000;
    /** Recently written registers, newest last (dependency pool). */
    std::vector<int> recentDests;
    /** Streaming pointers. */
    std::uint64_t streamAddr = 0;
    int lastLoadDest = noReg;
};

} // namespace otft::workload

#endif // OTFT_WORKLOAD_TRACE_HPP
