#include "workload/trace.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/stats_registry.hpp"

namespace otft::workload {

const char *
toString(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
        return "alu";
      case OpClass::IntMul:
        return "mul";
      case OpClass::IntDiv:
        return "div";
      case OpClass::Load:
        return "load";
      case OpClass::Store:
        return "store";
      case OpClass::Branch:
        return "branch";
    }
    return "?";
}

std::vector<BenchmarkProfile>
paperWorkloads()
{
    std::vector<BenchmarkProfile> v;

    // Values follow published SPEC CPU2000 characterizations
    // (instruction mixes, branch misprediction tendencies, and
    // working sets), scaled to the synthetic trace format.
    {
        BenchmarkProfile p;
        p.name = "bzip";
        p.branchFraction = 0.11;
        p.loadFraction = 0.24;
        p.storeFraction = 0.09;
        p.mulFraction = 0.008;
        p.divFraction = 0.0005;
        p.biasedBranchFraction = 0.55;
        p.loopBranchFraction = 0.28;
        p.randomBranchFraction = 0.17;
        p.depDistance = 5.0;
        p.workingSetBytes = 2ull << 20;
        p.streamingFraction = 0.60;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "gap";
        p.hotFraction = 0.85;
        p.branchFraction = 0.07;
        p.loadFraction = 0.28;
        p.storeFraction = 0.12;
        p.mulFraction = 0.015;
        p.divFraction = 0.001;
        p.biasedBranchFraction = 0.72;
        p.loopBranchFraction = 0.22;
        p.randomBranchFraction = 0.06;
        p.depDistance = 6.0;
        p.workingSetBytes = 4ull << 20;
        p.streamingFraction = 0.45;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "gzip";
        p.branchFraction = 0.10;
        p.loadFraction = 0.20;
        p.storeFraction = 0.08;
        p.mulFraction = 0.004;
        p.divFraction = 0.0003;
        p.biasedBranchFraction = 0.60;
        p.loopBranchFraction = 0.28;
        p.randomBranchFraction = 0.12;
        p.depDistance = 4.5;
        p.workingSetBytes = 512ull << 10;
        p.streamingFraction = 0.55;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "mcf";
        p.hotFraction = 0.45;
        p.hotBytes = 128 * 1024;
        p.branchFraction = 0.19;
        p.loadFraction = 0.31;
        p.storeFraction = 0.09;
        p.mulFraction = 0.002;
        p.divFraction = 0.0002;
        p.biasedBranchFraction = 0.50;
        p.loopBranchFraction = 0.30;
        p.randomBranchFraction = 0.20;
        p.depDistance = 3.5;
        p.pointerChaseFraction = 0.35;
        p.workingSetBytes = 16ull << 20;
        p.streamingFraction = 0.15;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "parser";
        p.hotFraction = 0.70;
        p.hotBytes = 64 * 1024;
        p.branchFraction = 0.16;
        p.loadFraction = 0.23;
        p.storeFraction = 0.09;
        p.mulFraction = 0.003;
        p.divFraction = 0.0003;
        p.biasedBranchFraction = 0.52;
        p.loopBranchFraction = 0.28;
        p.randomBranchFraction = 0.20;
        p.depDistance = 4.0;
        p.workingSetBytes = 8ull << 20;
        p.streamingFraction = 0.30;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "vortex";
        p.hotFraction = 0.80;
        p.hotBytes = 64 * 1024;
        p.branchFraction = 0.14;
        p.loadFraction = 0.27;
        p.storeFraction = 0.17;
        p.mulFraction = 0.002;
        p.divFraction = 0.0002;
        p.biasedBranchFraction = 0.75;
        p.loopBranchFraction = 0.18;
        p.randomBranchFraction = 0.07;
        p.depDistance = 6.0;
        p.workingSetBytes = 4ull << 20;
        p.streamingFraction = 0.40;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "dhrystone";
        p.hotFraction = 1.0;
        p.hotBytes = 16 * 1024;
        p.branchFraction = 0.17;
        p.loadFraction = 0.22;
        p.storeFraction = 0.12;
        p.mulFraction = 0.002;
        p.divFraction = 0.001;
        p.biasedBranchFraction = 0.80;
        p.loopBranchFraction = 0.15;
        p.randomBranchFraction = 0.05;
        p.depDistance = 5.0;
        p.workingSetBytes = 16ull << 10; // fits in L1
        p.streamingFraction = 0.50;
        v.push_back(p);
    }
    return v;
}

BenchmarkProfile
profileByName(const std::string &name)
{
    for (const auto &p : paperWorkloads())
        if (p.name == name)
            return p;
    fatal("workload: unknown benchmark ", name);
}

TraceGenerator::TraceGenerator(BenchmarkProfile profile,
                               std::uint64_t seed)
    : profile_(std::move(profile)), rng(seed)
{
    sites.resize(static_cast<std::size_t>(profile_.staticBranches));
    for (auto &site : sites) {
        const double u = rng.uniform();
        if (u < profile_.biasedBranchFraction) {
            site.kind = BranchSite::Kind::Biased;
            site.takenProb = rng.bernoulli(0.5) ? 0.95 : 0.05;
        } else if (u < profile_.biasedBranchFraction +
                           profile_.loopBranchFraction) {
            site.kind = BranchSite::Kind::Loop;
            site.tripCount = 2 + static_cast<int>(rng.uniformInt(30));
        } else {
            site.kind = BranchSite::Kind::Random;
            site.takenProb = 0.3 + 0.4 * rng.uniform();
        }
    }
    recentDests.reserve(64);
    streamAddr = 0x10000;
}

bool
TraceGenerator::branchOutcome(std::size_t site_idx)
{
    BranchSite &site = sites[site_idx];
    switch (site.kind) {
      case BranchSite::Kind::Biased:
      case BranchSite::Kind::Random:
        return rng.bernoulli(site.takenProb);
      case BranchSite::Kind::Loop:
        // Taken tripCount-1 times, then fall through once.
        if (++site.loopPos >= site.tripCount) {
            site.loopPos = 0;
            return false;
        }
        return true;
    }
    return false;
}

std::uint64_t
TraceGenerator::nextAddress(bool &chased)
{
    chased = false;
    if (rng.bernoulli(profile_.streamingFraction)) {
        streamAddr += 8;
        if (streamAddr > 0x10000 + profile_.workingSetBytes)
            streamAddr = 0x10000;
        return streamAddr;
    }
    if (rng.bernoulli(profile_.pointerChaseFraction)) {
        chased = true;
    }
    if (rng.bernoulli(profile_.hotFraction))
        return 0x10000 + (rng.next() % profile_.hotBytes) / 8 * 8;
    return 0x10000 + (rng.next() % profile_.workingSetBytes) / 8 * 8;
}

TraceInst
TraceGenerator::next()
{
    static stats::Counter &stat_insts = stats::counter(
        "workload.instructions.generated",
        "synthetic trace instructions generated");
    ++stat_insts;

    TraceInst inst;
    inst.pc = pc;
    pc += 4;

    auto pick_src = [&]() -> int {
        if (recentDests.empty())
            return static_cast<int>(1 + rng.uniformInt(numArchRegs - 1));
        const std::uint64_t back =
            std::min<std::uint64_t>(rng.geometric(profile_.depDistance),
                                    recentDests.size());
        return recentDests[recentDests.size() - back];
    };
    auto push_dest = [&](int reg) {
        recentDests.push_back(reg);
        if (recentDests.size() > 64)
            recentDests.erase(recentDests.begin());
    };
    auto fresh_reg = [&]() {
        return static_cast<int>(1 + rng.uniformInt(numArchRegs - 1));
    };

    const double u = rng.uniform();
    const double b = profile_.branchFraction;
    const double l = b + profile_.loadFraction;
    const double s = l + profile_.storeFraction;
    const double m = s + profile_.mulFraction;
    const double d = m + profile_.divFraction;

    if (u < b) {
        inst.op = OpClass::Branch;
        inst.src1 = pick_src();
        const std::size_t site = static_cast<std::size_t>(
            (inst.pc >> 2) % sites.size());
        inst.taken = branchOutcome(site);
        // Keep a small static footprint so the predictor sees
        // recurring sites: fold the pc.
        inst.pc = 0x1000 + site * 4;
        inst.target = inst.pc + (inst.taken ? 64 : 4);
        pc = inst.target;
    } else if (u < l) {
        inst.op = OpClass::Load;
        bool chased = false;
        inst.address = nextAddress(chased);
        inst.src1 = chased && lastLoadDest != noReg ? lastLoadDest
                                                    : pick_src();
        inst.dest = fresh_reg();
        push_dest(inst.dest);
        lastLoadDest = inst.dest;
    } else if (u < s) {
        inst.op = OpClass::Store;
        bool chased = false;
        inst.address = nextAddress(chased);
        inst.src1 = pick_src();
        inst.src2 = pick_src();
    } else if (u < m) {
        inst.op = OpClass::IntMul;
        inst.src1 = pick_src();
        inst.src2 = pick_src();
        inst.dest = fresh_reg();
        push_dest(inst.dest);
    } else if (u < d) {
        inst.op = OpClass::IntDiv;
        inst.src1 = pick_src();
        inst.src2 = pick_src();
        inst.dest = fresh_reg();
        push_dest(inst.dest);
    } else {
        inst.op = OpClass::IntAlu;
        inst.src1 = pick_src();
        if (rng.bernoulli(0.6))
            inst.src2 = pick_src();
        inst.dest = fresh_reg();
        push_dest(inst.dest);
    }
    return inst;
}

} // namespace otft::workload
