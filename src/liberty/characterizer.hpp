/**
 * @file
 * NLDM characterization of the organic standard cell library.
 *
 * Replaces the paper's SiliconSmart + HSPICE flow: for every cell and
 * every input pin, drive the pin with ramps over a grid of input
 * transition times and output loads, run a transistor-level transient
 * with the circuit engine, and record propagation delay and output
 * transition time into NLDM look-up tables. Flip-flop clk->Q, setup,
 * and hold are found by transient bisection.
 */

#ifndef OTFT_LIBERTY_CHARACTERIZER_HPP
#define OTFT_LIBERTY_CHARACTERIZER_HPP

#include <utility>
#include <vector>

#include "cells/topologies.hpp"
#include "liberty/library.hpp"

namespace otft::progress {
class Reporter;
}

namespace otft::liberty {

/** Characterization grid and solver settings. */
struct CharacterizerConfig
{
    /** Input transition times (20-80%), seconds. */
    std::vector<double> slewAxis = {2e-6, 8e-6, 32e-6, 128e-6};
    /** Output loads as multiples of the cell input capacitance. */
    std::vector<double> loadMultipliers = {0.25, 1.0, 4.0, 12.0};
    /** Transient step, seconds. */
    double dt = 0.3e-6;
    /** Measure slews between these fractions of the swing. */
    double slewLow = 0.2;
    double slewHigh = 0.8;
    /**
     * Multiplier on the post-edge settling window. The nominal
     * windows carry ~8-10x headroom over the slowest golden-device
     * arcs; Monte Carlo characterization of slow process samples
     * widens them so a 3-sigma mobility draw still settles.
     */
    double settleScale = 1.0;
    /**
     * Memoize arc points and operating points in the process-wide
     * result cache (util/result_cache.hpp). Hits are used verbatim as
     * results, so output is bit-identical with the cache cold, warm,
     * or disabled.
     */
    bool useCache = true;
    /**
     * Grid points per batched-solver call: measurements are packed
     * into lanes of one circuit::BatchedMna (see batch_solver.hpp)
     * inside each per-cell worker task. Lane results — and therefore
     * the cache keys and the NLDM tables — are bit-identical to the
     * scalar engine at any width, so this is purely a throughput
     * knob. -1 resolves parallel::batchLanes() (the --batch-lanes /
     * OTFT_BATCH_LANES session setting); 0 forces the scalar engine.
     * Deliberately NOT hashed into result-cache keys.
     */
    int batchLanes = -1;
};

/** Characterizes the six-cell organic library. */
class Characterizer
{
  public:
    Characterizer(cells::CellFactory factory,
                  CharacterizerConfig config = {})
        : factory(std::move(factory)), config_(config)
    {}

    /**
     * Characterize all six cells and assemble the library, including
     * the organic interconnect parameters.
     */
    CellLibrary build() const;

    /** Characterize one combinational cell (exposed for tests). */
    StdCell characterizeCombinational(const std::string &name) const;

    /** Characterize the DFF (exposed for tests). */
    StdCell characterizeFlop() const;

    const CharacterizerConfig &config() const { return config_; }

  private:
    /** Build a fresh instance of the named cell with a load. */
    cells::BuiltCell instantiate(const std::string &name,
                                 double load_cap) const;

    /** Measured delay/slew of one (pin, slew, load) point. */
    struct ArcPoint
    {
        double delayRise = 0.0;
        double delayFall = 0.0;
        double slewRise = 0.0;
        double slewFall = 0.0;
    };
    /**
     * Measure a group of (slew, load) coordinates of one pin, one
     * batched-solver call wide: cache probes first, then the misses
     * run as lanes of one batched transient. Every coordinate's
     * numbers (and cache entries) are bit-identical to measuring it
     * alone.
     */
    std::vector<ArcPoint>
    measurePoints(const std::string &name, int pin,
                  const std::vector<std::pair<double, double>> &coords)
        const;

    /** Average static power over all input states of a cell. */
    double averageStaticPower(const std::string &name) const;

    /** Whether a DFF captures a 1 with the given D-before-CK lead. */
    bool flopCaptures(double d_lead, double load_cap) const;

    cells::CellFactory factory;
    CharacterizerConfig config_;
    /**
     * Progress reporter for the current build() sweep, set for the
     * duration of build() and ticked per measured point (cache hits
     * included — they are work items the user is waiting through).
     */
    mutable progress::Reporter *progress_ = nullptr;
};

/**
 * Apply the organic technology constants (printed Au interconnect,
 * default slew, clock margin) to a characterized library. Shared by
 * the nominal build and the Monte Carlo per-sample assemblies so
 * every organic library variant carries identical wire parameters.
 */
void applyOrganicTechnology(CellLibrary &library,
                            const CharacterizerConfig &config);

/**
 * Build the full organic cell library (characterizes on first use;
 * a few seconds of transient simulation).
 */
CellLibrary makeOrganicLibrary(CharacterizerConfig config = {});

/**
 * The organic library, cached in a liberty text file at `path` so the
 * transistor-level characterization runs once per workspace. Used by
 * the benches and examples.
 */
CellLibrary cachedOrganicLibrary(
    const std::string &path = "organic.lib");

/**
 * A DNTT-class organic library: the identical cell topologies and
 * sizing re-characterized with a device of `mobility_scale` times the
 * pentacene band mobility (DNTT is ~10x, paper Secs. 5.3/6.2). The
 * characterization grid scales with the mobility so the LUTs stay
 * centered on the faster arcs.
 */
CellLibrary makeDnttLibrary(double mobility_scale = 10.0);

/** Cached variant of makeDnttLibrary. */
CellLibrary cachedDnttLibrary(
    const std::string &path = "organic_dntt.lib",
    double mobility_scale = 10.0);

} // namespace otft::liberty

#endif // OTFT_LIBERTY_CHARACTERIZER_HPP
