/**
 * @file
 * Non-linear delay model (NLDM) look-up tables.
 *
 * The paper characterizes its organic library with NLDM (Sec. 4.4): a
 * voltage-based model indexed by input transition time and output
 * capacitive load, with resistive/inductive interconnect effects
 * neglected — "suitable for both silicon and organic technologies."
 * Tables are bilinear inside the characterized grid and extrapolate
 * linearly outside it, as synthesis tools do.
 */

#ifndef OTFT_LIBERTY_NLDM_HPP
#define OTFT_LIBERTY_NLDM_HPP

#include <cstddef>
#include <vector>

namespace otft::liberty {

/** A 2-D NLDM table over (input slew, output load). */
class NldmTable
{
  public:
    NldmTable() = default;

    /**
     * @param slew_axis input transition times, ascending, seconds
     * @param load_axis output loads, ascending, farads
     * @param values row-major [slew][load]
     */
    NldmTable(std::vector<double> slew_axis,
              std::vector<double> load_axis,
              std::vector<double> values);

    /** Bilinear lookup with linear extrapolation outside the grid. */
    double lookup(double slew, double load) const;

    bool empty() const { return values_.empty(); }

    const std::vector<double> &slewAxis() const { return slewAxis_; }
    const std::vector<double> &loadAxis() const { return loadAxis_; }
    const std::vector<double> &values() const { return values_; }

    /**
     * Build a table from an analytic model d(slew, load), sampling it
     * on the given axes. Used for the constructed silicon library.
     */
    template <typename Fn>
    static NldmTable
    fromModel(const std::vector<double> &slew_axis,
              const std::vector<double> &load_axis, Fn &&model)
    {
        std::vector<double> values;
        values.reserve(slew_axis.size() * load_axis.size());
        for (double s : slew_axis)
            for (double l : load_axis)
                values.push_back(model(s, l));
        return NldmTable(slew_axis, load_axis, std::move(values));
    }

  private:
    /** Index of the lower axis cell for x, clamped to [0, n-2]. */
    static std::size_t segment(const std::vector<double> &axis, double x);

    std::vector<double> slewAxis_;
    std::vector<double> loadAxis_;
    std::vector<double> values_;
};

} // namespace otft::liberty

#endif // OTFT_LIBERTY_NLDM_HPP
