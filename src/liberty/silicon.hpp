/**
 * @file
 * The reduced silicon standard cell library.
 *
 * The paper trims a TSMC 45 nm library down to the same six cells as
 * the organic library (Sec. 5.1). We cannot redistribute foundry
 * Liberty data, so this library is constructed from public 45 nm-class
 * figures via the logical-effort delay model: FO4 inverter delay
 * ~17 ps, logical efforts g = 1 (INV), 4/3 (NAND2), 5/3 (NAND3/NOR2),
 * 7/3 (NOR3), parasitic delays of 1-3 tau, femtofarad-scale pin
 * capacitances, and square-micron cell areas. Only the *relative*
 * gate-vs-wire delay and area ratios matter for the architectural
 * comparisons, and those are well represented by these constants.
 */

#ifndef OTFT_LIBERTY_SILICON_HPP
#define OTFT_LIBERTY_SILICON_HPP

#include "liberty/library.hpp"

namespace otft::liberty {

/** Tunable constants of the constructed 45 nm library. */
struct SiliconConfig
{
    /** Unit delay tau (FO1 inverter effort delay), seconds. */
    double tau = 3.4e-12;
    /** INV input capacitance, farads. */
    double invCap = 1.4e-15;
    /** Slew sensitivity: delay += slewFactor * input slew. */
    double slewFactor = 0.15;
    /** Output slew = slewGain * (intrinsic + load delay). */
    double slewGain = 1.8;
    /** DFF clk->Q delay, seconds. */
    double clkToQ = 55e-12;
    /** DFF setup time, seconds. */
    double setup = 55e-12;
    /** DFF hold time, seconds. */
    double hold = 5e-12;
    /**
     * Clock distribution uncertainty (skew + jitter) charged per
     * cycle, seconds. Synthesis-grade 45 nm flows budget hundreds of
     * picoseconds of clock uncertainty across a multi-millimeter
     * block; it is overwhelmingly a *wire* effect (RC skew of the
     * clock tree), which is why the no-wire analyses of Fig. 15
     * shrink it (see StaConfig::noWireMarginFraction).
     */
    double clockMargin = 600e-12;
    /** Supply, volts. */
    double vdd = 1.1;
};

/** Build the reduced 6-cell silicon 45 nm library. */
CellLibrary makeSiliconLibrary(SiliconConfig config = {});

} // namespace otft::liberty

#endif // OTFT_LIBERTY_SILICON_HPP
