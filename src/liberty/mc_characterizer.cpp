#include "liberty/mc_characterizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/diag.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/progress.hpp"
#include "util/stats.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft::liberty {

namespace {

/** Mean and sample standard deviation (n-1) of per-sample values. */
struct Moments
{
    double mean = 0.0;
    double sigma = 0.0;
};

Moments
moments(const std::vector<double> &xs)
{
    Moments m;
    if (xs.empty())
        return m;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    m.mean = sum / static_cast<double>(xs.size());
    if (xs.size() < 2)
        return m;
    double sq = 0.0;
    for (double x : xs) {
        const double d = x - m.mean;
        sq += d * d;
    }
    m.sigma = std::sqrt(sq / static_cast<double>(xs.size() - 1));
    return m;
}

/** Which corner of the distribution a library represents. */
enum class Corner { Mean, Slow, Fast };

/**
 * Derate one mean/sigma pair. Slow adds, fast subtracts; fast is
 * floored at 1% of the mean so a huge sigma can never produce a
 * non-physical zero or negative delay, and the floor keeps
 * fast <= mean by construction.
 */
double
derate(double mean, double sigma, double corner_sigma, Corner corner)
{
    switch (corner) {
    case Corner::Mean:
        return mean;
    case Corner::Slow:
        return mean + corner_sigma * sigma;
    case Corner::Fast:
        return std::max(mean - corner_sigma * sigma, 0.01 * mean);
    }
    return mean;
}

/** Entry-wise mean/sigma tables over per-sample NLDM tables. */
void
tableMoments(const std::vector<const NldmTable *> &tables,
             NldmTable &mean_out, NldmTable &sigma_out)
{
    const NldmTable &first = *tables.front();
    const std::size_t n = first.values().size();
    for (const NldmTable *t : tables)
        if (t->values().size() != n ||
            t->slewAxis() != first.slewAxis() ||
            t->loadAxis() != first.loadAxis())
            fatal("mc: sample tables disagree on the grid (axes must "
                  "be sample-invariant)");
    std::vector<double> means(n), sigmas(n), column(tables.size());
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t s = 0; s < tables.size(); ++s)
            column[s] = tables[s]->values()[k];
        const Moments m = moments(column);
        means[k] = m.mean;
        sigmas[k] = m.sigma;
    }
    mean_out = NldmTable(first.slewAxis(), first.loadAxis(),
                         std::move(means));
    sigma_out = NldmTable(first.slewAxis(), first.loadAxis(),
                          std::move(sigmas));
}

/** Derated table from mean/sigma tables. */
NldmTable
derateTable(const NldmTable &mean, const NldmTable &sigma,
            double corner_sigma, Corner corner)
{
    std::vector<double> values(mean.values().size());
    for (std::size_t k = 0; k < values.size(); ++k)
        values[k] = derate(mean.values()[k], sigma.values()[k],
                           corner_sigma, corner);
    return NldmTable(mean.slewAxis(), mean.loadAxis(),
                     std::move(values));
}

/** Scalar field across samples, e.g. leakage. */
Moments
scalarMoments(const std::vector<StdCell> &samples,
              double (*get)(const StdCell &))
{
    std::vector<double> xs;
    xs.reserve(samples.size());
    for (const StdCell &cell : samples)
        xs.push_back(get(cell));
    return moments(xs);
}

/** Build one corner StdCell from the sample set + reduced stats. */
StdCell
buildCornerCell(const std::vector<StdCell> &samples,
                const CellStats &stats, double corner_sigma,
                Corner corner)
{
    const StdCell &first = samples.front();
    StdCell cell;
    cell.name = first.name;
    cell.fanIn = first.fanIn;
    cell.isSequential = first.isSequential;
    // Geometry does not vary across process samples.
    cell.area = first.area;
    cell.inputCap = first.inputCap;
    cell.leakage = derate(stats.leakageMean, stats.leakageSigma,
                          corner_sigma, corner);
    if (cell.isSequential) {
        const auto field = [&](double (*get)(const StdCell &)) {
            return scalarMoments(samples, get);
        };
        const Moments hold =
            field([](const StdCell &c) { return c.flop.hold; });
        cell.flop.clkToQ = derate(stats.clkToQMean, stats.clkToQSigma,
                                  corner_sigma, corner);
        cell.flop.setup = derate(stats.setupMean, stats.setupSigma,
                                 corner_sigma, corner);
        cell.flop.hold =
            derate(hold.mean, hold.sigma, corner_sigma, corner);
        cell.flop.clockPinCap = first.flop.clockPinCap;
    }
    for (const ArcStats &arc_stats : stats.arcs) {
        TimingArc arc;
        arc.fromPin = arc_stats.fromPin;
        for (int sense = 0; sense < 2; ++sense) {
            arc.delay[sense] =
                derateTable(arc_stats.delayMean[sense],
                            arc_stats.delaySigma[sense], corner_sigma,
                            corner);
            arc.outputSlew[sense] =
                derateTable(arc_stats.slewMean[sense],
                            arc_stats.slewSigma[sense], corner_sigma,
                            corner);
        }
        cell.arcs.push_back(std::move(arc));
    }
    return cell;
}

/** Reduce per-sample cells to the distribution summary. */
CellStats
reduceCell(const std::vector<StdCell> &samples)
{
    const StdCell &first = samples.front();
    CellStats stats;
    stats.name = first.name;
    const Moments leak = scalarMoments(
        samples, [](const StdCell &c) { return c.leakage; });
    stats.leakageMean = leak.mean;
    stats.leakageSigma = leak.sigma;
    if (first.isSequential) {
        const Moments ckq = scalarMoments(
            samples, [](const StdCell &c) { return c.flop.clkToQ; });
        const Moments setup = scalarMoments(
            samples, [](const StdCell &c) { return c.flop.setup; });
        stats.clkToQMean = ckq.mean;
        stats.clkToQSigma = ckq.sigma;
        stats.setupMean = setup.mean;
        stats.setupSigma = setup.sigma;
    }
    for (std::size_t a = 0; a < first.arcs.size(); ++a) {
        ArcStats arc;
        arc.fromPin = first.arcs[a].fromPin;
        for (int sense = 0; sense < 2; ++sense) {
            std::vector<const NldmTable *> delays, slews;
            for (const StdCell &cell : samples) {
                if (cell.arcs.size() != first.arcs.size())
                    fatal("mc: sample arc counts disagree for ",
                          first.name);
                delays.push_back(&cell.arcs[a].delay[sense]);
                slews.push_back(&cell.arcs[a].outputSlew[sense]);
            }
            tableMoments(delays, arc.delayMean[sense],
                         arc.delaySigma[sense]);
            tableMoments(slews, arc.slewMean[sense],
                         arc.slewSigma[sense]);
        }
        stats.arcs.push_back(std::move(arc));
    }
    return stats;
}

} // namespace

device::VariationConfig
McConfig::mcDefaultVariation()
{
    device::VariationConfig v;
    // Per-device: the published within-sample spread (defaults).
    // Die-to-die: deposition-run corners move VT and mobility
    // farther; these widths put the 3-sigma die at roughly the
    // batch-corner values the VSS-retuning extension exercises.
    v.dieVtSigma = 0.15;
    v.dieMobilityLnSigma = 0.10;
    return v;
}

CharacterizerConfig
McConfig::mcDefaultGrid()
{
    CharacterizerConfig grid;
    grid.settleScale = 1.5;
    return grid;
}

McCharacterizer::McCharacterizer(McConfig config)
    : config_(std::move(config))
{
    if (config_.samples < 1)
        fatal("mc: samples must be >= 1, got ", config_.samples);
    if (config_.cornerSigma < 0.0)
        fatal("mc: cornerSigma must be >= 0");
    if (config_.roster.empty())
        fatal("mc: empty cell roster");
}

device::Level61Params
McCharacterizer::sampleParams(int sample, const std::string &cell) const
{
    const device::VariationModel model(config_.variation);
    // Substream tree: mc -> sample index -> {die, cell/<name>}. The
    // die component is shared by every cell of a sample; the device
    // component is independent per cell instance. All draws are pure
    // functions of (seed, sample, cell), never of evaluation order.
    StreamRng root(config_.seed, "mc");
    const StreamRng sample_stream =
        root.substream(static_cast<std::uint64_t>(sample));
    StreamRng die_rng = sample_stream.substream("die");
    const device::DieVariation die = model.sampleDie(die_rng);
    StreamRng device_rng = sample_stream.substream("cell/" + cell);
    return model.sample(config_.nominal, die, device_rng);
}

StatLibrary
McCharacterizer::run() const
{
    static stats::Counter &stat_samples = stats::counter(
        "mc.samples.characterized",
        "Monte Carlo process samples characterized");
    static stats::Counter &stat_cells = stats::counter(
        "mc.cells.characterized",
        "per-sample cell characterizations (samples x roster)");
    OTFT_TRACE_SCOPE("liberty.mc.run");
    stat_samples += static_cast<std::int64_t>(config_.samples);

    const std::size_t n_cells = config_.roster.size();
    const std::size_t n_tasks =
        static_cast<std::size_t>(config_.samples) * n_cells;

    progress::Options popts;
    popts.label = "liberty.mc";
    popts.total = n_tasks;
    progress::Reporter reporter(popts);

    // One task per (sample, cell) pair: maximal outer parallelism
    // with deterministic slot order. Each task characterizes through
    // its own Characterizer bound to the sampled device parameters;
    // the per-arc transients memoize in the result cache under keys
    // that include those parameters, so a re-run with the same seed
    // is a pure cache replay. Inside each task, the grid points run
    // through the lane-batched solver at config_.grid.batchLanes
    // (default: the session --batch-lanes setting) — lane packing
    // happens below the per-lane cache keys, so sample results are
    // byte-identical at any lane width.
    auto flat = parallel::orderedMap<StdCell>(
        n_tasks, [&](std::size_t k) {
            const int sample = static_cast<int>(k / n_cells);
            const std::string &name = config_.roster[k % n_cells];
            OTFT_TRACE_SCOPE("liberty.mc.sample_cell");
            diag::ScopedContext diag_ctx(
                diag::labelsWanted()
                    ? "mc.sample" + std::to_string(sample) + "." + name
                    : std::string());
            ++stat_cells;
            const std::int64_t t0 = stats::monotonicNowNs();
            cells::CellFactory factory(sampleParams(sample, name),
                                       config_.sizing, config_.supply);
            const Characterizer chr(std::move(factory), config_.grid);
            StdCell cell = name == "dff"
                               ? chr.characterizeFlop()
                               : chr.characterizeCombinational(name);
            reporter.itemDone(
                static_cast<double>(stats::monotonicNowNs() - t0) *
                1e-9);
            return cell;
        });
    reporter.done();

    // Reduce each roster cell across samples (two-pass, in sample
    // order — deterministic at any job count).
    const double vdd = config_.supply.vdd;
    StatLibrary stat{CellLibrary(config_.baseName + "_mean", vdd),
                     CellLibrary(config_.baseName + "_slow", vdd),
                     CellLibrary(config_.baseName + "_fast", vdd),
                     {},
                     config_.samples,
                     config_.seed,
                     config_.cornerSigma};
    for (std::size_t c = 0; c < n_cells; ++c) {
        std::vector<StdCell> samples;
        samples.reserve(static_cast<std::size_t>(config_.samples));
        for (int s = 0; s < config_.samples; ++s)
            samples.push_back(
                flat[static_cast<std::size_t>(s) * n_cells + c]);
        CellStats cell_stats = reduceCell(samples);
        stat.mean.addCell(buildCornerCell(
            samples, cell_stats, config_.cornerSigma, Corner::Mean));
        stat.slow.addCell(buildCornerCell(
            samples, cell_stats, config_.cornerSigma, Corner::Slow));
        stat.fast.addCell(buildCornerCell(
            samples, cell_stats, config_.cornerSigma, Corner::Fast));
        stat.cells.push_back(std::move(cell_stats));
    }
    applyOrganicTechnology(stat.mean, config_.grid);
    applyOrganicTechnology(stat.slow, config_.grid);
    applyOrganicTechnology(stat.fast, config_.grid);
    return stat;
}

double
CellStats::meanDelaySigmaFraction() const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const ArcStats &arc : arcs) {
        for (int sense = 0; sense < 2; ++sense) {
            const auto &means = arc.delayMean[sense].values();
            const auto &sigmas = arc.delaySigma[sense].values();
            for (std::size_t k = 0; k < means.size(); ++k) {
                if (means[k] > 0.0) {
                    sum += sigmas[k] / means[k];
                    ++n;
                }
            }
        }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

StatLibrary
scaledCorners(const CellLibrary &base, double sigma_fraction,
              double corner_sigma, const std::string &base_name)
{
    if (sigma_fraction < 0.0)
        fatal("scaledCorners: sigma fraction must be >= 0");
    const std::string name =
        base_name.empty() ? base.name() + "_mc" : base_name;
    StatLibrary stat{CellLibrary(name + "_mean", base.vdd()),
                     CellLibrary(name + "_slow", base.vdd()),
                     CellLibrary(name + "_fast", base.vdd()),
                     {},
                     0,
                     0,
                     corner_sigma};

    const auto scale_table = [&](const NldmTable &t, Corner corner) {
        std::vector<double> values(t.values().size());
        for (std::size_t k = 0; k < values.size(); ++k)
            values[k] =
                derate(t.values()[k],
                       sigma_fraction * std::abs(t.values()[k]),
                       corner_sigma, corner);
        return NldmTable(t.slewAxis(), t.loadAxis(),
                         std::move(values));
    };
    const auto scale_scalar = [&](double v, Corner corner) {
        return derate(v, sigma_fraction * std::abs(v), corner_sigma,
                      corner);
    };

    for (const std::string &cell_name : base.cellNames()) {
        const StdCell &src = base.cell(cell_name);
        CellStats cell_stats;
        cell_stats.name = src.name;
        cell_stats.leakageMean = src.leakage;
        cell_stats.leakageSigma = sigma_fraction * src.leakage;
        if (src.isSequential) {
            cell_stats.clkToQMean = src.flop.clkToQ;
            cell_stats.clkToQSigma = sigma_fraction * src.flop.clkToQ;
            cell_stats.setupMean = src.flop.setup;
            cell_stats.setupSigma = sigma_fraction * src.flop.setup;
        }
        for (const Corner corner :
             {Corner::Mean, Corner::Slow, Corner::Fast}) {
            StdCell cell;
            cell.name = src.name;
            cell.fanIn = src.fanIn;
            cell.isSequential = src.isSequential;
            cell.area = src.area;
            cell.inputCap = src.inputCap;
            cell.leakage = scale_scalar(src.leakage, corner);
            if (src.isSequential) {
                cell.flop.clkToQ =
                    scale_scalar(src.flop.clkToQ, corner);
                cell.flop.setup = scale_scalar(src.flop.setup, corner);
                cell.flop.hold = scale_scalar(src.flop.hold, corner);
                cell.flop.clockPinCap = src.flop.clockPinCap;
            }
            for (const TimingArc &src_arc : src.arcs) {
                TimingArc arc;
                arc.fromPin = src_arc.fromPin;
                for (int sense = 0; sense < 2; ++sense) {
                    arc.delay[sense] =
                        scale_table(src_arc.delay[sense], corner);
                    arc.outputSlew[sense] =
                        scale_table(src_arc.outputSlew[sense], corner);
                }
                cell.arcs.push_back(std::move(arc));
            }
            switch (corner) {
            case Corner::Mean:
                stat.mean.addCell(std::move(cell));
                break;
            case Corner::Slow:
                stat.slow.addCell(std::move(cell));
                break;
            case Corner::Fast:
                stat.fast.addCell(std::move(cell));
                break;
            }
        }
        for (const TimingArc &src_arc : src.arcs) {
            ArcStats arc;
            arc.fromPin = src_arc.fromPin;
            for (int sense = 0; sense < 2; ++sense) {
                arc.delayMean[sense] = src_arc.delay[sense];
                arc.delaySigma[sense] =
                    scale_table(src_arc.delay[sense], Corner::Mean);
                arc.slewMean[sense] = src_arc.outputSlew[sense];
                arc.slewSigma[sense] = scale_table(
                    src_arc.outputSlew[sense], Corner::Mean);
            }
            cell_stats.arcs.push_back(std::move(arc));
        }
        stat.cells.push_back(std::move(cell_stats));
    }
    stat.mean.wire() = base.wire();
    stat.slow.wire() = base.wire();
    stat.fast.wire() = base.wire();
    for (CellLibrary *lib : {&stat.mean, &stat.slow, &stat.fast}) {
        lib->setDefaultSlew(base.defaultSlew());
        lib->setClockMargin(base.clockMargin());
    }
    return stat;
}

std::string
validateStatLibrary(const CellLibrary &mean, const CellLibrary &slow,
                    const CellLibrary &fast)
{
    const auto check_tables = [](const NldmTable &s, const NldmTable &m,
                                 const NldmTable &f,
                                 const std::string &what) {
        if (s.values().size() != m.values().size() ||
            f.values().size() != m.values().size())
            return what + ": corner table sizes disagree";
        for (std::size_t k = 0; k < m.values().size(); ++k) {
            const double sv = s.values()[k];
            const double mv = m.values()[k];
            const double fv = f.values()[k];
            if (!std::isfinite(sv) || !std::isfinite(mv) ||
                !std::isfinite(fv))
                return what + ": non-finite entry";
            if (sv < mv || mv < fv)
                return what + ": deration not monotone (slow " +
                       std::to_string(sv) + " mean " +
                       std::to_string(mv) + " fast " +
                       std::to_string(fv) + ")";
        }
        return std::string();
    };

    for (const std::string &name : mean.cellNames()) {
        if (!slow.hasCell(name) || !fast.hasCell(name))
            return "cell " + name + " missing from a corner";
        const StdCell &m = mean.cell(name);
        const StdCell &s = slow.cell(name);
        const StdCell &f = fast.cell(name);
        if (s.leakage < m.leakage || m.leakage < f.leakage)
            return "cell " + name + ": leakage deration not monotone";
        if (m.isSequential) {
            if (s.flop.clkToQ < m.flop.clkToQ ||
                m.flop.clkToQ < f.flop.clkToQ)
                return "cell " + name +
                       ": clk->Q deration not monotone";
            if (s.flop.setup < m.flop.setup ||
                m.flop.setup < f.flop.setup)
                return "cell " + name +
                       ": setup deration not monotone";
        }
        if (s.arcs.size() != m.arcs.size() ||
            f.arcs.size() != m.arcs.size())
            return "cell " + name + ": corner arc counts disagree";
        for (std::size_t a = 0; a < m.arcs.size(); ++a) {
            for (int sense = 0; sense < 2; ++sense) {
                std::string err = check_tables(
                    s.arcs[a].delay[sense], m.arcs[a].delay[sense],
                    f.arcs[a].delay[sense],
                    name + " arc " + m.arcs[a].fromPin + " delay");
                if (!err.empty())
                    return err;
                err = check_tables(
                    s.arcs[a].outputSlew[sense],
                    m.arcs[a].outputSlew[sense],
                    f.arcs[a].outputSlew[sense],
                    name + " arc " + m.arcs[a].fromPin + " slew");
                if (!err.empty())
                    return err;
            }
        }
    }
    return std::string();
}

} // namespace otft::liberty
