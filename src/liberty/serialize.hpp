/**
 * @file
 * Compact Liberty-style text serialization of cell libraries.
 *
 * A plain-text format in the spirit of Liberty (one library block,
 * cell/arc/table sub-blocks) that round-trips every field this
 * framework uses. Benches and examples use it to cache the organic
 * library, so the transistor-level characterization runs once per
 * machine instead of once per binary.
 */

#ifndef OTFT_LIBERTY_SERIALIZE_HPP
#define OTFT_LIBERTY_SERIALIZE_HPP

#include <iosfwd>
#include <optional>
#include <string>

#include "liberty/library.hpp"

namespace otft::liberty {

/** Write a library to a stream in the text format. */
void writeLibrary(std::ostream &os, const CellLibrary &library);

/** Write a library to a file; fatal on I/O failure. */
void saveLibrary(const std::string &path, const CellLibrary &library);

/** Parse a library from a stream; fatal on malformed input. */
CellLibrary readLibrary(std::istream &is);

/** Load a library from a file; fatal on I/O or parse failure. */
CellLibrary loadLibrary(const std::string &path);

/** Load if the file exists and parses; nullopt otherwise. */
std::optional<CellLibrary> tryLoadLibrary(const std::string &path);

/**
 * Load the library from `path` if the file exists; otherwise build it
 * with the supplied builder, save it to `path`, and return it.
 */
template <typename Builder>
CellLibrary
loadOrBuild(const std::string &path, Builder &&builder)
{
    if (std::optional<CellLibrary> cached = tryLoadLibrary(path))
        return std::move(*cached);
    CellLibrary library = builder();
    saveLibrary(path, library);
    return library;
}

} // namespace otft::liberty

#endif // OTFT_LIBERTY_SERIALIZE_HPP
