/**
 * @file
 * Monte Carlo NLDM characterization under process variation.
 *
 * The paper names cross-sample variation (VT spread "within 0.5 V",
 * Sec. 1) as a core OTFT challenge, but a single characterized
 * library hides it: every downstream number (Figs. 11-15) is a
 * nominal-process number. This module re-derives the library
 * statistically: N process samples are drawn (a die-to-die component
 * shared by every device on a sample plus an independent per-device
 * component per cell instance), each sample is characterized with the
 * transistor-level flow, and the per-arc distribution is reduced to
 *
 *  - a *mean* library (the expected process),
 *  - per-arc sigma tables, and
 *  - derated slow/fast corner libraries at `cornerSigma` standard
 *    deviations (default 3-sigma), the statistical analogue of the
 *    SS/FF corners a foundry PDK ships.
 *
 * Determinism contract: every sampled parameter set is a pure
 * function of (seed, sample index, cell name) via counter-based
 * StreamRng substreams, and samples are assembled with orderedMap, so
 * the statistical library is bit-identical across `--jobs` and
 * chunking. Per-arc transients are memoized in the process result
 * cache exactly like the nominal flow — the sampled device parameters
 * (derived from the seed) are part of every cache key.
 */

#ifndef OTFT_LIBERTY_MC_CHARACTERIZER_HPP
#define OTFT_LIBERTY_MC_CHARACTERIZER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "device/variation.hpp"
#include "liberty/characterizer.hpp"

namespace otft::liberty {

/** Monte Carlo characterization settings. */
struct McConfig
{
    /** Process samples to characterize. */
    int samples = 16;
    /** Master seed; every substream derives from it. */
    std::uint64_t seed = 1;
    /** Corner deration in standard deviations (slow/fast). */
    double cornerSigma = 3.0;
    /** Nominal device the variation is drawn around. */
    device::Level61Params nominal = {};
    cells::CellSizing sizing = {};
    cells::SupplyConfig supply = {};
    /**
     * Variation widths. Defaults enable both correlation scales: the
     * published within-sample spread as the per-device component and
     * a deposition-run die-to-die component on top.
     */
    device::VariationConfig variation = mcDefaultVariation();
    /** Characterization grid for every sample. */
    CharacterizerConfig grid = mcDefaultGrid();
    /** Cells to characterize (subset for tests; "dff" = the flop). */
    std::vector<std::string> roster = {"inv",  "nand2", "nand3",
                                       "nor2", "nor3",  "dff"};
    /** Base name; corners get "_mean" / "_slow" / "_fast" suffixes. */
    std::string baseName = "organic_mc";

    /** The default MC variation widths (see above). */
    static device::VariationConfig mcDefaultVariation();
    /** Nominal grid with the MC settling margin applied. */
    static CharacterizerConfig mcDefaultGrid();
};

/** Mean/sigma tables of one timing arc, indexed by Sense. */
struct ArcStats
{
    std::string fromPin;
    NldmTable delayMean[2];
    NldmTable delaySigma[2];
    NldmTable slewMean[2];
    NldmTable slewSigma[2];
};

/** Distribution summary of one cell across the process samples. */
struct CellStats
{
    std::string name;
    double leakageMean = 0.0;
    double leakageSigma = 0.0;
    /** Sequential parameter spread (valid for the flop). */
    double clkToQMean = 0.0;
    double clkToQSigma = 0.0;
    double setupMean = 0.0;
    double setupSigma = 0.0;
    std::vector<ArcStats> arcs;

    /**
     * Mean relative delay sigma over every arc table entry — the
     * single-number "how variable is this cell" summary used by
     * reports.
     */
    double meanDelaySigmaFraction() const;
};

/** The statistical library: corners plus the per-arc distributions. */
struct StatLibrary
{
    CellLibrary mean;
    CellLibrary slow;
    CellLibrary fast;
    std::vector<CellStats> cells;
    int samples = 0;
    std::uint64_t seed = 0;
    double cornerSigma = 3.0;
};

/** Runs the Monte Carlo characterization. */
class McCharacterizer
{
  public:
    explicit McCharacterizer(McConfig config = {});

    /**
     * Characterize `samples` process draws of every roster cell and
     * reduce to the statistical library. Samples x cells fan out over
     * the worker pool; the result is identical at any job count.
     */
    StatLibrary run() const;

    /** The sampled device parameters of one (sample, cell) pair. */
    device::Level61Params sampleParams(int sample,
                                       const std::string &cell) const;

    const McConfig &config() const { return config_; }

  private:
    McConfig config_;
};

/**
 * Analytic corner derivation for technologies without a Monte Carlo
 * flow: every delay/slew entry of `base` gets a synthetic sigma of
 * `sigmaFraction` times its mean, and slow/fast corners are derated
 * at `cornerSigma`. Used for the silicon library, whose corner spread
 * is a known small fraction (mature-process SS/FF corners), and by
 * tests that need cheap corners.
 */
StatLibrary scaledCorners(const CellLibrary &base, double sigmaFraction,
                          double cornerSigma = 3.0,
                          const std::string &baseName = "");

/**
 * Validate a statistical-library triple: finite (NaN-free) tables and
 * monotone deration (slow >= mean >= fast for every delay/slew entry,
 * leakage, and sequential parameter). Returns a human-readable error
 * for the first violation, or an empty string when valid.
 */
std::string validateStatLibrary(const CellLibrary &mean,
                                const CellLibrary &slow,
                                const CellLibrary &fast);

} // namespace otft::liberty

#endif // OTFT_LIBERTY_MC_CHARACTERIZER_HPP
