#include "liberty/serialize.hpp"

#include <fstream>
#include <sstream>

#include "util/logging.hpp"
#include "util/stats_registry.hpp"

namespace otft::liberty {

namespace {

void
writeTable(std::ostream &os, const char *tag, const NldmTable &table)
{
    os << "    " << tag << " " << table.slewAxis().size() << " "
       << table.loadAxis().size() << "\n      ";
    for (double v : table.slewAxis())
        os << v << " ";
    os << "\n      ";
    for (double v : table.loadAxis())
        os << v << " ";
    os << "\n      ";
    for (double v : table.values())
        os << v << " ";
    os << "\n";
}

NldmTable
readTable(std::istream &is, const std::string &expected_tag)
{
    std::string tag;
    std::size_t n_slew = 0, n_load = 0;
    is >> tag >> n_slew >> n_load;
    if (!is || tag != expected_tag)
        fatal("liberty: expected table tag ", expected_tag, ", got ",
              tag);
    std::vector<double> slews(n_slew), loads(n_load),
        values(n_slew * n_load);
    for (auto &v : slews)
        is >> v;
    for (auto &v : loads)
        is >> v;
    for (auto &v : values)
        is >> v;
    if (!is)
        fatal("liberty: truncated table ", expected_tag);
    return NldmTable(std::move(slews), std::move(loads),
                     std::move(values));
}

} // namespace

void
writeLibrary(std::ostream &os, const CellLibrary &library)
{
    os.precision(17);
    os << "library " << library.name() << "\n";
    os << "vdd " << library.vdd() << "\n";
    os << "default_slew " << library.defaultSlew() << "\n";
    os << "clock_margin " << library.clockMargin() << "\n";
    const WireParams &w = library.wire();
    os << "wire " << w.resPerMeter << " " << w.capPerMeter << " "
       << w.lengthBase << " " << w.lengthPerFanout << " " << w.driverRes
       << "\n";
    os << "cells " << library.cellNames().size() << "\n";
    for (const std::string &name : library.cellNames()) {
        const StdCell &cell = library.cell(name);
        os << "cell " << cell.name << " " << cell.fanIn << " "
           << (cell.isSequential ? 1 : 0) << " " << cell.area << " "
           << cell.inputCap << " " << cell.leakage << "\n";
        if (cell.isSequential) {
            os << "  flop " << cell.flop.clkToQ << " " << cell.flop.setup
               << " " << cell.flop.hold << " " << cell.flop.clockPinCap
               << "\n";
        }
        os << "  arcs " << cell.arcs.size() << "\n";
        for (const TimingArc &arc : cell.arcs) {
            os << "  arc " << arc.fromPin << "\n";
            writeTable(os, "delay_rise",
                       arc.delay[static_cast<int>(Sense::Rise)]);
            writeTable(os, "delay_fall",
                       arc.delay[static_cast<int>(Sense::Fall)]);
            writeTable(os, "slew_rise",
                       arc.outputSlew[static_cast<int>(Sense::Rise)]);
            writeTable(os, "slew_fall",
                       arc.outputSlew[static_cast<int>(Sense::Fall)]);
        }
    }
}

CellLibrary
readLibrary(std::istream &is)
{
    std::string keyword, lib_name;
    is >> keyword >> lib_name;
    if (!is || keyword != "library")
        fatal("liberty: not a library file");

    double vdd = 0.0, default_slew = 0.0, clock_margin = 0.0;
    is >> keyword >> vdd;
    if (keyword != "vdd")
        fatal("liberty: expected vdd");
    is >> keyword >> default_slew;
    if (keyword != "default_slew")
        fatal("liberty: expected default_slew");
    is >> keyword >> clock_margin;
    if (keyword != "clock_margin")
        fatal("liberty: expected clock_margin");

    CellLibrary library(lib_name, vdd);
    library.setDefaultSlew(default_slew);
    library.setClockMargin(clock_margin);

    WireParams &w = library.wire();
    is >> keyword >> w.resPerMeter >> w.capPerMeter >> w.lengthBase >>
        w.lengthPerFanout >> w.driverRes;
    if (keyword != "wire")
        fatal("liberty: expected wire");

    std::size_t n_cells = 0;
    is >> keyword >> n_cells;
    if (keyword != "cells")
        fatal("liberty: expected cells");

    for (std::size_t c = 0; c < n_cells; ++c) {
        StdCell cell;
        int sequential = 0;
        is >> keyword >> cell.name >> cell.fanIn >> sequential >>
            cell.area >> cell.inputCap >> cell.leakage;
        if (!is || keyword != "cell")
            fatal("liberty: expected cell");
        cell.isSequential = sequential != 0;
        if (cell.isSequential) {
            is >> keyword >> cell.flop.clkToQ >> cell.flop.setup >>
                cell.flop.hold >> cell.flop.clockPinCap;
            if (keyword != "flop")
                fatal("liberty: expected flop");
        }
        std::size_t n_arcs = 0;
        is >> keyword >> n_arcs;
        if (keyword != "arcs")
            fatal("liberty: expected arcs");
        for (std::size_t a = 0; a < n_arcs; ++a) {
            TimingArc arc;
            is >> keyword >> arc.fromPin;
            if (keyword != "arc")
                fatal("liberty: expected arc");
            arc.delay[static_cast<int>(Sense::Rise)] =
                readTable(is, "delay_rise");
            arc.delay[static_cast<int>(Sense::Fall)] =
                readTable(is, "delay_fall");
            arc.outputSlew[static_cast<int>(Sense::Rise)] =
                readTable(is, "slew_rise");
            arc.outputSlew[static_cast<int>(Sense::Fall)] =
                readTable(is, "slew_fall");
            cell.arcs.push_back(std::move(arc));
        }
        library.addCell(std::move(cell));
    }
    return library;
}

void
saveLibrary(const std::string &path, const CellLibrary &library)
{
    std::ofstream os(path);
    if (!os)
        fatal("liberty: cannot write ", path);
    writeLibrary(os, library);
}

CellLibrary
loadLibrary(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("liberty: cannot read ", path);
    return readLibrary(is);
}

std::optional<CellLibrary>
tryLoadLibrary(const std::string &path)
{
    static stats::Counter &stat_hits = stats::counter(
        "liberty.cache.hits", "library loads served from disk cache");
    static stats::Counter &stat_misses = stats::counter(
        "liberty.cache.misses",
        "library loads that fell back to characterization");

    std::ifstream is(path);
    if (!is) {
        ++stat_misses;
        return std::nullopt;
    }
    try {
        CellLibrary library = readLibrary(is);
        ++stat_hits;
        return library;
    } catch (const FatalError &) {
        ++stat_misses;
        warn("liberty: cached library at ", path,
             " is unreadable; rebuilding");
        return std::nullopt;
    }
}

} // namespace otft::liberty
