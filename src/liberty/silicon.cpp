#include "liberty/silicon.hpp"

namespace otft::liberty {

namespace {

/** One row of the constructed-library recipe. */
struct CellRecipe
{
    const char *name;
    int fanIn;
    /** Logical effort (input cap and drive scaling). */
    double g;
    /** Parasitic delay in units of tau. */
    double p;
    /** Area, m^2. */
    double area;
    /** Leakage, watts. */
    double leakage;
};

const CellRecipe recipes[] = {
    // name    fanIn  g       p     area        leakage
    {"inv",    1,     1.0,    1.0,  0.76e-12,   15e-9},
    {"nand2",  2,     4.0/3., 2.0,  1.06e-12,   22e-9},
    {"nand3",  3,     5.0/3., 3.0,  1.37e-12,   30e-9},
    {"nor2",   2,     5.0/3., 2.0,  1.06e-12,   24e-9},
    {"nor3",   3,     7.0/3., 3.0,  1.37e-12,   34e-9},
};

} // namespace

CellLibrary
makeSiliconLibrary(SiliconConfig config)
{
    CellLibrary library("silicon45", config.vdd);

    // Equal-drive sizing: every cell has the INV drive resistance and
    // input capacitance scaled by its logical effort.
    const double r_drive = config.tau / config.invCap;

    const std::vector<double> slew_axis = {5e-12, 20e-12, 80e-12,
                                           320e-12};
    const std::vector<double> load_axis = {0.5e-15, 2e-15, 8e-15,
                                           32e-15};

    for (const CellRecipe &recipe : recipes) {
        StdCell cell;
        cell.name = recipe.name;
        cell.fanIn = recipe.fanIn;
        cell.area = recipe.area;
        cell.inputCap = recipe.g * config.invCap;
        cell.leakage = recipe.leakage;

        auto delay_model = [&](double slew, double load) {
            return recipe.p * config.tau + r_drive * load +
                   config.slewFactor * slew;
        };
        auto slew_model = [&](double slew, double load) {
            return config.slewGain *
                   (recipe.p * config.tau + r_drive * load) +
                   0.1 * slew;
        };

        for (int pin = 0; pin < recipe.fanIn; ++pin) {
            TimingArc arc;
            arc.fromPin = std::string(1, static_cast<char>('a' + pin));
            // Later pins are marginally slower (series stack position),
            // mirroring real library arc spreads.
            const double pin_penalty =
                1.0 + 0.06 * static_cast<double>(pin);
            for (int sense = 0; sense < 2; ++sense) {
                // NOR pull-up is weaker: rising arcs ~15% slower.
                const bool is_nor =
                    std::string(recipe.name).rfind("nor", 0) == 0;
                const double sense_penalty =
                    (sense == static_cast<int>(Sense::Rise) && is_nor)
                        ? 1.15
                        : 1.0;
                arc.delay[sense] = NldmTable::fromModel(
                    slew_axis, load_axis,
                    [&](double s, double l) {
                        return delay_model(s, l) * pin_penalty *
                               sense_penalty;
                    });
                arc.outputSlew[sense] = NldmTable::fromModel(
                    slew_axis, load_axis, slew_model);
            }
            cell.arcs.push_back(std::move(arc));
        }
        library.addCell(std::move(cell));
    }

    // --- DFF.
    {
        StdCell dff;
        dff.name = "dff";
        dff.fanIn = 1;
        dff.isSequential = true;
        dff.area = 4.5e-12;
        dff.inputCap = config.invCap;
        dff.leakage = 90e-9;
        dff.flop.clkToQ = config.clkToQ;
        dff.flop.setup = config.setup;
        dff.flop.hold = config.hold;
        dff.flop.clockPinCap = config.invCap;

        TimingArc arc;
        arc.fromPin = "d";
        auto q_delay = [&](double, double load) {
            return config.clkToQ + r_drive * load;
        };
        auto q_slew = [&](double, double load) {
            return config.slewGain * (config.clkToQ * 0.5 +
                                      r_drive * load);
        };
        for (int sense = 0; sense < 2; ++sense) {
            arc.delay[sense] =
                NldmTable::fromModel(slew_axis, load_axis, q_delay);
            arc.outputSlew[sense] =
                NldmTable::fromModel(slew_axis, load_axis, q_slew);
        }
        dff.arcs.push_back(std::move(arc));
        library.addCell(std::move(dff));
    }

    // 45 nm-class mid-level metal: ~2 ohm/um, ~0.2 fF/um; net length
    // scales with the ~1-2 um cell pitch.
    WireParams &wire = library.wire();
    wire.resPerMeter = 2e6;
    wire.capPerMeter = 2e-10;
    wire.lengthBase = 8e-6;
    wire.lengthPerFanout = 6e-6;
    wire.driverRes = r_drive;

    library.setDefaultSlew(20e-12);
    library.setClockMargin(config.clockMargin);
    return library;
}

} // namespace otft::liberty
