#include "liberty/characterizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "circuit/batch_transient.hpp"
#include "circuit/dc.hpp"
#include "circuit/transient.hpp"
#include "liberty/serialize.hpp"
#include "util/diag.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/progress.hpp"
#include "util/result_cache.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft::liberty {

namespace {

/** The six-cell library roster. */
const char *const combinationalNames[] = {"inv", "nand2", "nand3",
                                          "nor2", "nor3"};

int
fanInOf(const std::string &name)
{
    if (name == "inv")
        return 1;
    if (name == "nand2" || name == "nor2")
        return 2;
    if (name == "nand3" || name == "nor3")
        return 3;
    fatal("Characterizer: unknown cell ", name);
}

/**
 * Hash everything outside the (cell, pin, slew, load) coordinates
 * that can change a measurement: device model, sizing, supply,
 * characterization settings, and the solver configuration. Each
 * caller prepends its own versioned salt; bump that salt when the
 * producing algorithm changes in a result-affecting way.
 */
void
hashMeasurementContext(cache::KeyHasher &h,
                       const cells::CellFactory &factory,
                       const CharacterizerConfig &cfg,
                       const circuit::TransientConfig &tran)
{
    const device::Level61Params &p = factory.params();
    h.add(p.vt0).add(p.vdsRef).add(p.dibl).add(p.diblVmax);
    h.add(p.u0).add(p.gamma).add(p.vaa).add(p.ss);
    h.add(p.mSat).add(p.alphaSat).add(p.lambda).add(p.iOff);

    const cells::CellSizing &s = factory.sizing();
    h.add(s.l).add(s.wDrive).add(s.wLoad);
    h.add(s.wShiftDrive).add(s.wShiftLoad).add(s.routingFactor);

    const cells::SupplyConfig &v = factory.supply();
    h.add(v.vdd).add(v.vss);

    h.add(cfg.dt).add(cfg.slewLow).add(cfg.slewHigh);
    h.add(cfg.settleScale);

    h.add(tran.dt).add(tran.tStop).add(tran.fixedStep);
    h.add(tran.lteTol).add(tran.dtMin).add(tran.dtMax);
    const circuit::NewtonConfig &n = tran.newton;
    h.add(n.gmin).add(n.maxIterations).add(n.tolerance).add(n.maxStep);
    h.add(n.chord).add(n.chordRefreshRatio).add(n.singularGminBoost);
}

/**
 * Tick a progress reporter on scope exit with the scope's wall time,
 * so cache hits and fatal exits count the same as full measurements.
 */
struct ProgressTick
{
    progress::Reporter *reporter;
    std::int64_t startNs;

    explicit ProgressTick(progress::Reporter *rep)
        : reporter(rep),
          startNs(rep != nullptr ? stats::monotonicNowNs() : 0)
    {}

    ~ProgressTick()
    {
        if (reporter != nullptr)
            reporter->itemDone(
                static_cast<double>(stats::monotonicNowNs() - startNs) *
                1e-9);
    }
};

} // namespace

cells::BuiltCell
Characterizer::instantiate(const std::string &name, double load_cap) const
{
    if (name == "inv")
        return factory.inverter(cells::InverterKind::PseudoE, load_cap);
    if (name == "nand2")
        return factory.nand(2, load_cap);
    if (name == "nand3")
        return factory.nand(3, load_cap);
    if (name == "nor2")
        return factory.nor(2, load_cap);
    if (name == "nor3")
        return factory.nor(3, load_cap);
    if (name == "dff")
        return factory.dff(load_cap);
    fatal("Characterizer: unknown cell ", name);
}

std::vector<Characterizer::ArcPoint>
Characterizer::measurePoints(
    const std::string &name, int pin,
    const std::vector<std::pair<double, double>> &coords) const
{
    static stats::Counter &stat_points = stats::counter(
        "liberty.points.measured",
        "NLDM grid points measured (one transient each)");
    OTFT_TRACE_SCOPE("liberty.point.measure");

    // Aggregate these points' solver telemetry under their arc; the
    // label string is only built when some consumer wants it.
    diag::ScopedContext diag_ctx(
        diag::labelsWanted()
            ? "liberty." + name + ".pin" + std::to_string(pin)
            : std::string());

    const double vdd = factory.supply().vdd;
    const std::size_t n_points = coords.size();
    std::vector<ArcPoint> points(n_points);

    // Per-point measurement plan: timing windows, transient config,
    // and cache key, all derived exactly as the scalar single-point
    // flow did (the batch never changes what is measured, only how
    // many transients share one solver pass).
    struct Plan
    {
        double slew = 0.0;
        double loadCap = 0.0;
        double tEdge = 0.0;
        double settle = 0.0;
        double t1 = 0.0;
        double t2 = 0.0;
        circuit::TransientConfig config;
        std::uint64_t arcDigest = 0;
        bool hit = false;
    };
    std::vector<Plan> plans(n_points);
    const std::int64_t group_start = stats::monotonicNowNs();

    for (std::size_t p = 0; p < n_points; ++p) {
        Plan &plan = plans[p];
        plan.slew = coords[p].first;
        plan.loadCap = coords[p].second;

        // Ramp time for the requested 20-80% transition time.
        plan.tEdge =
            plan.slew / (config_.slewHigh - config_.slewLow);
        // Settling window: generous relative to the slowest organic
        // arcs, and scaled up for heavy loads (a 16x fanout NOR rise
        // can take tens of milliseconds through the series pull-up).
        const double load_mult = plan.loadCap / factory.inputCap();
        plan.settle =
            config_.settleScale *
            std::max(8.0 * plan.tEdge,
                     0.4e-3 * (1.0 + 0.5 * load_mult));
        plan.t1 = 15e-6;
        plan.t2 = plan.t1 + plan.tEdge + plan.settle;

        plan.config.dt =
            std::min(config_.dt * 50.0,
                     std::max(config_.dt, plan.tEdge / 16.0));
        plan.config.tStop = plan.t2 + plan.tEdge + plan.settle;

        // Memoized arc point: the key covers every input of the
        // measurement, so a hit is the exact result a cold run
        // produces. Batch width is deliberately absent from the key.
        cache::KeyHasher arc_key;
        arc_key.add("arcpoint-v1").add(name).add(pin).add(plan.slew);
        arc_key.add(plan.loadCap);
        hashMeasurementContext(arc_key, factory, config_, plan.config);
        plan.arcDigest = arc_key.digest();
        std::vector<double> payload;
        if (config_.useCache &&
            cache::lookup("liberty.arcpoint", plan.arcDigest,
                          payload) &&
            payload.size() == 4) {
            points[p].delayFall = payload[0];
            points[p].delayRise = payload[1];
            points[p].slewFall = payload[2];
            points[p].slewRise = payload[3];
            plan.hit = true;
        }
    }

    // Build the cache-miss lanes: instantiate, sensitize, and solve
    // (or fetch) the t = 0 operating point, in coordinate order so
    // the dcop cache fills in the same sequence as the scalar sweep.
    std::vector<std::size_t> miss;
    std::vector<cells::BuiltCell> lane_cells;
    std::vector<circuit::BatchTransientSpec> specs;
    for (std::size_t p = 0; p < n_points; ++p)
        if (!plans[p].hit)
            miss.push_back(p);
    lane_cells.reserve(miss.size());
    specs.reserve(miss.size());

    for (const std::size_t p : miss) {
        const Plan &plan = plans[p];
        ++stat_points;
        lane_cells.push_back(instantiate(name, plan.loadCap));
        cells::BuiltCell &cell = lane_cells.back();

        // Sensitize the side inputs: NAND side pins high, NOR side
        // pins low, so the output follows (inverted) the driven pin.
        const bool is_nor = name.rfind("nor", 0) == 0;
        const double side = is_nor ? 0.0 : vdd;
        for (std::size_t i = 0; i < cell.inputSources.size(); ++i) {
            if (static_cast<int>(i) != pin)
                cell.ckt.setSourceWave(cell.inputSources[i],
                                       circuit::Pwl::constant(side));
        }
        cell.ckt.setSourceWave(
            cell.inputSources[static_cast<std::size_t>(pin)],
            circuit::Pwl::points({0.0, plan.t1, plan.t1 + plan.tEdge,
                                  plan.t2, plan.t2 + plan.tEdge},
                                 {0.0, 0.0, vdd, vdd, 0.0}));

        // The t = 0 operating point is shared by every slew at the
        // same (cell, pin, load), so memoize it too. The cached state
        // is used verbatim as the initial condition — exactly the
        // bits the cold DC solve produced.
        cache::KeyHasher dc_key;
        dc_key.add("dcop-v1").add(name).add(pin).add(plan.loadCap);
        hashMeasurementContext(dc_key, factory, config_, plan.config);
        const std::size_t n_unknowns =
            cell.ckt.numNodes() - 1 + cell.ckt.voltageSources().size();
        circuit::Solution x0;
        if (!(config_.useCache &&
              cache::lookup("circuit.dcop", dc_key.digest(), x0) &&
              x0.size() == n_unknowns)) {
            circuit::DcAnalysis dc(cell.ckt, plan.config.newton);
            x0 = dc.operatingPoint();
            if (config_.useCache)
                cache::store("circuit.dcop", dc_key.digest(), x0);
        }
        circuit::BatchTransientSpec spec;
        spec.circuit = &cell.ckt;
        spec.config = plan.config;
        spec.initial = std::move(x0);
        specs.push_back(std::move(spec));
    }

    // All cache-miss transients in one lane-parallel call (a single
    // miss degrades to the scalar engine inside runTransientBatch).
    const std::vector<circuit::TransientResult> lane_results =
        circuit::runTransientBatch(std::move(specs));

    for (std::size_t m = 0; m < miss.size(); ++m) {
        const std::size_t p = miss[m];
        const Plan &plan = plans[p];
        const cells::BuiltCell &cell = lane_cells[m];
        const circuit::TransientResult &result = lane_results[m];
        const auto in =
            result.node(cell.inputs[static_cast<std::size_t>(pin)]);
        const auto out = result.node(cell.out);

        // Settled output levels define the measured swing.
        const double v_hi = out.value.front();
        const double v_lo = out.at(plan.t2 - 0.05 * plan.settle);

        // Delay = input 50% crossing to output 50% crossing. The
        // output crossing is searched from its edge start (not from
        // the input reference): a sample whose switching threshold
        // sits past the 50% mark — routine under Monte Carlo VT
        // shifts — completes the output transition at a slow slew
        // *before* the input reference crossing, which is a
        // zero-delay arc, not a failure. Nominal arcs cross after the
        // reference, so their measured values are unchanged; early
        // crossings clamp to zero.
        const auto delay = [&](bool in_rising, bool out_rising,
                               double in_from, double out_from) {
            const double t_in =
                in.firstCrossing(0.5 * vdd, in_rising, in_from);
            const double t_out = out.firstCrossing(
                0.5 * (v_lo + v_hi), out_rising, out_from);
            if (t_in < 0.0 || t_out < 0.0)
                return -1.0;
            return std::max(t_out - t_in, 0.0);
        };
        ArcPoint &point = points[p];
        point.delayFall = delay(true, false, 0.0, plan.t1);
        point.delayRise = delay(false, true, plan.t2, plan.t2);
        point.slewFall =
            circuit::measureSlew(out, v_lo, v_hi, config_.slewLow,
                                 config_.slewHigh, false, plan.t1);
        point.slewRise =
            circuit::measureSlew(out, v_lo, v_hi, config_.slewLow,
                                 config_.slewHigh, true, plan.t2);

        if (point.delayFall < 0.0 || point.delayRise < 0.0 ||
            point.slewFall < 0.0 || point.slewRise < 0.0) {
            fatal("Characterizer: cell ", name, " pin ", pin,
                  " failed to switch at slew ", plan.slew, ", load ",
                  plan.loadCap);
        }
        if (config_.useCache)
            cache::store("liberty.arcpoint", plan.arcDigest,
                         {point.delayFall, point.delayRise,
                          point.slewFall, point.slewRise});
    }

    // Progress: each coordinate is one reporter item (cache hits
    // included); charge every item an equal share of the group time.
    if (progress_ != nullptr && n_points > 0) {
        const double share =
            static_cast<double>(stats::monotonicNowNs() -
                                group_start) *
            1e-9 / static_cast<double>(n_points);
        for (std::size_t p = 0; p < n_points; ++p)
            progress_->itemDone(share);
    }
    return points;
}

double
Characterizer::averageStaticPower(const std::string &name) const
{
    cells::BuiltCell cell = instantiate(name, 0.0);
    const double vdd = factory.supply().vdd;
    const int fan_in = static_cast<int>(cell.inputs.size());

    double total = 0.0;
    const int states = 1 << fan_in;
    for (int state = 0; state < states; ++state) {
        for (int b = 0; b < fan_in; ++b) {
            const double v = (state >> b) & 1 ? vdd : 0.0;
            cell.ckt.setSourceWave(
                cell.inputSources[static_cast<std::size_t>(b)],
                circuit::Pwl::constant(v));
        }
        circuit::DcAnalysis dc(cell.ckt);
        total += dc.totalSourcePower(dc.operatingPoint());
    }
    return total / static_cast<double>(states);
}

StdCell
Characterizer::characterizeCombinational(const std::string &name) const
{
    static stats::Counter &stat_cells = stats::counter(
        "liberty.cells.characterized", "standard cells characterized");
    OTFT_TRACE_SCOPE("liberty.cell.characterize");
    ++stat_cells;

    StdCell cell;
    cell.name = name;
    cell.fanIn = fanInOf(name);
    cell.inputCap = factory.inputCap();

    const cells::BuiltCell built = instantiate(name, 0.0);
    cell.area = built.cellArea;
    cell.leakage = averageStaticPower(name);

    std::vector<double> load_axis;
    for (double m : config_.loadMultipliers)
        load_axis.push_back(m * cell.inputCap);

    static stats::Counter &stat_arcs = stats::counter(
        "liberty.arcs.characterized", "timing arcs characterized");
    const std::size_t n_load = load_axis.size();
    const std::size_t n_grid = config_.slewAxis.size() * n_load;
    // Grid points are packed lane_width at a time into one batched
    // solver call; a width of 1 is exactly the historical per-point
    // scalar flow. Lane results are bit-identical either way, so the
    // NLDM tables don't depend on the width (test_batch_determinism).
    const int lanes_setting = config_.batchLanes >= 0
                                  ? config_.batchLanes
                                  : parallel::batchLanes();
    const std::size_t lane_width = std::max(
        std::size_t{1}, static_cast<std::size_t>(lanes_setting));
    const std::size_t n_groups =
        (n_grid + lane_width - 1) / lane_width;
    for (int pin = 0; pin < cell.fanIn; ++pin) {
        ++stat_arcs;
        TimingArc arc;
        arc.fromPin = std::string(1, static_cast<char>('a' + pin));
        // Every (slew, load) point is an independent transient on its
        // own circuit instance; orderedMap keeps the slot order equal
        // to the serial nested loop, so the NLDM tables are
        // bit-identical at any job count.
        const auto groups =
            parallel::orderedMap<std::vector<ArcPoint>>(
                n_groups, [&](std::size_t g) {
                    std::vector<std::pair<double, double>> coords;
                    const std::size_t hi = std::min(
                        n_grid, (g + 1) * lane_width);
                    for (std::size_t k = g * lane_width; k < hi; ++k)
                        coords.emplace_back(
                            config_.slewAxis[k / n_load],
                            load_axis[k % n_load]);
                    return measurePoints(name, pin, coords);
                });
        std::vector<ArcPoint> grid;
        grid.reserve(n_grid);
        for (const std::vector<ArcPoint> &g : groups)
            grid.insert(grid.end(), g.begin(), g.end());
        std::vector<double> d_rise, d_fall, s_rise, s_fall;
        for (const ArcPoint &p : grid) {
            d_rise.push_back(p.delayRise);
            d_fall.push_back(p.delayFall);
            s_rise.push_back(p.slewRise);
            s_fall.push_back(p.slewFall);
        }
        arc.delay[static_cast<int>(Sense::Rise)] =
            NldmTable(config_.slewAxis, load_axis, std::move(d_rise));
        arc.delay[static_cast<int>(Sense::Fall)] =
            NldmTable(config_.slewAxis, load_axis, std::move(d_fall));
        arc.outputSlew[static_cast<int>(Sense::Rise)] =
            NldmTable(config_.slewAxis, load_axis, std::move(s_rise));
        arc.outputSlew[static_cast<int>(Sense::Fall)] =
            NldmTable(config_.slewAxis, load_axis, std::move(s_fall));
        cell.arcs.push_back(std::move(arc));
    }
    return cell;
}

bool
Characterizer::flopCaptures(double d_lead, double load_cap) const
{
    cells::BuiltCell cell = instantiate("dff", load_cap);
    const double vdd = factory.supply().vdd;
    const double t_edge = 6e-6;
    const double t_ck = 2e-3;

    // PRE inactive; pulse CLR low first so Q starts at a known 0
    // (the cross-coupled NAND latch is bistable at the DC operating
    // point, so the initial state must be forced).
    cell.ckt.setSourceWave(cell.inputSources[2],
                           circuit::Pwl::constant(vdd));
    cell.ckt.setSourceWave(cell.inputSources[3],
                           circuit::Pwl::points({0.0, 0.3e-3, 0.32e-3},
                                                {0.0, 0.0, vdd}));
    // D rises d_lead before the CK edge (negative lead = after).
    cell.ckt.setSourceWave(
        cell.inputSources[0],
        circuit::Pwl::ramp(0.0, vdd, t_ck - d_lead - 0.5 * t_edge,
                           t_edge));
    cell.ckt.setSourceWave(
        cell.inputSources[1],
        circuit::Pwl::ramp(0.0, vdd, t_ck - 0.5 * t_edge, t_edge));

    circuit::TransientConfig config;
    config.dt = 6e-6;
    config.tStop = t_ck + 1.6e-3;

    circuit::TransientAnalysis tran(cell.ckt);
    const auto result = tran.run(config);
    const auto q = result.node(cell.out);
    return q.value.back() > 0.5 * vdd;
}

StdCell
Characterizer::characterizeFlop() const
{
    static stats::Counter &stat_cells = stats::counter(
        "liberty.cells.characterized", "standard cells characterized");
    OTFT_TRACE_SCOPE("liberty.cell.characterize");
    ++stat_cells;

    StdCell cell;
    cell.name = "dff";
    cell.fanIn = 1; // the D pin; CK/PRE/CLR handled separately
    cell.isSequential = true;
    cell.inputCap = factory.inputCap();

    const cells::BuiltCell built = instantiate("dff", 0.0);
    cell.area = built.cellArea;

    // Static power with the flop settled in each stored state.
    cell.leakage = averageStaticPower("inv") *
                   static_cast<double>(built.transistorCount) / 4.0;

    // CK fans out to two internal gates.
    cell.flop.clockPinCap = 2.0 * factory.inputCap();

    // --- clk->Q delay over a load grid, with D settled well before
    //     the edge, measured at the nominal clock slew.
    const double vdd = factory.supply().vdd;
    std::vector<double> load_axis;
    for (double m : config_.loadMultipliers)
        load_axis.push_back(m * cell.inputCap);

    diag::ScopedContext diag_ctx(
        diag::labelsWanted() ? std::string("liberty.dff")
                             : std::string());

    std::vector<double> clkq_rise, q_slew_rise;
    for (double load : load_axis) {
        ProgressTick tick(progress_);
        cells::BuiltCell flop = instantiate("dff", load);
        const double t_edge = 6e-6;
        const double t_ck = 2e-3;
        flop.ckt.setSourceWave(flop.inputSources[2],
                               circuit::Pwl::constant(vdd));
        flop.ckt.setSourceWave(
            flop.inputSources[3],
            circuit::Pwl::points({0.0, 0.3e-3, 0.32e-3},
                                 {0.0, 0.0, vdd}));
        flop.ckt.setSourceWave(flop.inputSources[0],
                               circuit::Pwl::ramp(0.0, vdd, 0.5e-3,
                                                  t_edge));
        flop.ckt.setSourceWave(
            flop.inputSources[1],
            circuit::Pwl::ramp(0.0, vdd, t_ck - 0.5 * t_edge, t_edge));

        circuit::TransientConfig config;
        config.dt = 6e-6;
        config.tStop = t_ck + 1.6e-3;
        circuit::TransientAnalysis tran(flop.ckt);
        const auto result = tran.run(config);
        const auto ck = result.node(flop.inputs[1]);
        const auto q = result.node(flop.out);
        const double v_lo = q.value.front();
        const double v_hi = q.value.back();
        const double d = circuit::measureDelay(ck, q, 0.0, vdd, true,
                                               v_lo, v_hi, true, 0.0);
        const double s =
            circuit::measureSlew(q, v_lo, v_hi, config_.slewLow,
                                 config_.slewHigh, true,
                                 t_ck - 0.1e-3);
        if (d < 0.0 || s < 0.0)
            fatal("Characterizer: DFF failed to capture at load ", load);
        clkq_rise.push_back(d);
        q_slew_rise.push_back(s);
    }
    // Quote the scalar clk->Q at nominal (fanout-1) load; the D->Q
    // arc tables carry the load dependence.
    cell.flop.clkToQ = clkq_rise[1];

    // --- Setup time by bisection on the D-before-CK lead at nominal
    //     load (the second grid point).
    const double nominal_load = load_axis[1];
    double lead_fail = 0.0;      // assume zero lead fails
    double lead_pass = 1.3e-3;   // generous lead captures
    if (flopCaptures(lead_fail, nominal_load)) {
        // Zero lead already captures: setup is essentially zero.
        cell.flop.setup = 0.0;
    } else {
        for (int it = 0; it < 10; ++it) {
            const double mid = 0.5 * (lead_fail + lead_pass);
            if (flopCaptures(mid, nominal_load))
                lead_pass = mid;
            else
                lead_fail = mid;
        }
        cell.flop.setup = lead_pass;
    }
    // Hold of the six-NAND master-slave structure is absorbed in the
    // master loop delay; conservatively charge a fraction of setup.
    cell.flop.hold = 0.25 * cell.flop.setup;

    // --- The D->Q "arc" used by STA: delay = setup + clkToQ is
    //     handled structurally by the timing engine; here we provide
    //     Q output slew tables so downstream arcs see a real slew.
    TimingArc arc;
    arc.fromPin = "d";
    const std::vector<double> two_slews = {config_.slewAxis.front(),
                                           config_.slewAxis.back()};
    std::vector<double> delay_vals, slew_vals;
    for (int rep = 0; rep < 2; ++rep) {
        for (std::size_t j = 0; j < load_axis.size(); ++j) {
            delay_vals.push_back(clkq_rise[j]);
            slew_vals.push_back(q_slew_rise[j]);
        }
    }
    for (int sense = 0; sense < 2; ++sense) {
        arc.delay[sense] = NldmTable(two_slews, load_axis, delay_vals);
        arc.outputSlew[sense] =
            NldmTable(two_slews, load_axis, slew_vals);
    }
    cell.arcs.push_back(std::move(arc));
    return cell;
}

CellLibrary
Characterizer::build() const
{
    OTFT_TRACE_SCOPE("liberty.library.build");
    CellLibrary library("organic", factory.supply().vdd);

    // Progress: one item per measured grid point (per pin per cell)
    // plus the flop clk->Q load sweep. Bisection probes are not
    // counted — their number is data-dependent.
    const std::size_t grid =
        config_.slewAxis.size() * config_.loadMultipliers.size();
    std::size_t total_points = config_.loadMultipliers.size();
    for (const char *name : combinationalNames)
        total_points += static_cast<std::size_t>(fanInOf(name)) * grid;
    progress::Options popts;
    popts.label = "liberty.characterize";
    popts.total = total_points;
    progress::Reporter reporter(popts);
    progress_ = &reporter;

    // One task per roster cell; inside a worker the per-arc grid maps
    // run inline, so the two levels never deadlock. Cells are
    // assembled in roster order regardless of completion order.
    const std::size_t n_comb = std::size(combinationalNames);
    auto cells = parallel::orderedMap<StdCell>(
        n_comb + 1, [&](std::size_t i) {
            if (i < n_comb)
                return characterizeCombinational(
                    combinationalNames[i]);
            return characterizeFlop();
        });
    progress_ = nullptr;
    reporter.done();
    for (StdCell &cell : cells)
        library.addCell(std::move(cell));

    applyOrganicTechnology(library, config_);
    return library;
}

void
applyOrganicTechnology(CellLibrary &library,
                       const CharacterizerConfig &config)
{
    // Printed Au interconnect on glass: wide, thick wires over a
    // low-k substrate; net lengths scale with the ~0.5 mm cell pitch.
    WireParams &wire = library.wire();
    wire.resPerMeter = 4.9e4;     // 50 nm Au, ~10 um wide
    wire.capPerMeter = 5e-11;     // ~0.05 fF/um over glass
    wire.lengthBase = 0.5e-3;     // ~a cell pitch
    wire.lengthPerFanout = 0.25e-3;
    wire.driverRes = 1.7e6;       // ~5 V / 3 uA drive

    library.setDefaultSlew(config.slewAxis[1]);
    // Clock skew/jitter margin: a small fraction of the ~5 ms cycle.
    library.setClockMargin(3e-6);
}

CellLibrary
makeOrganicLibrary(CharacterizerConfig config)
{
    Characterizer characterizer{cells::CellFactory{}, config};
    return characterizer.build();
}

CellLibrary
cachedOrganicLibrary(const std::string &path)
{
    return loadOrBuild(path, [] { return makeOrganicLibrary(); });
}

CellLibrary
makeDnttLibrary(double mobility_scale)
{
    if (mobility_scale <= 0.0)
        fatal("makeDnttLibrary: mobility scale must be positive");
    device::Level61Params params; // golden pentacene values
    params.u0 *= mobility_scale;
    cells::CellFactory factory(params, cells::CellSizing{},
                               cells::SupplyConfig{});
    CharacterizerConfig config;
    for (double &slew : config.slewAxis)
        slew /= mobility_scale;
    config.dt /= mobility_scale;
    Characterizer characterizer(factory, config);
    return characterizer.build();
}

CellLibrary
cachedDnttLibrary(const std::string &path, double mobility_scale)
{
    return loadOrBuild(path, [mobility_scale] {
        return makeDnttLibrary(mobility_scale);
    });
}

} // namespace otft::liberty
