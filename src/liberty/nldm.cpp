#include "liberty/nldm.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace otft::liberty {

NldmTable::NldmTable(std::vector<double> slew_axis,
                     std::vector<double> load_axis,
                     std::vector<double> values)
    : slewAxis_(std::move(slew_axis)), loadAxis_(std::move(load_axis)),
      values_(std::move(values))
{
    if (slewAxis_.size() < 2 || loadAxis_.size() < 2)
        fatal("NldmTable: need at least a 2x2 grid");
    if (values_.size() != slewAxis_.size() * loadAxis_.size())
        fatal("NldmTable: value count does not match axes");
    if (!std::is_sorted(slewAxis_.begin(), slewAxis_.end()) ||
        !std::is_sorted(loadAxis_.begin(), loadAxis_.end()))
        fatal("NldmTable: axes must be ascending");
}

std::size_t
NldmTable::segment(const std::vector<double> &axis, double x)
{
    // Lower cell index such that axis[i] <= x < axis[i+1], clamped so
    // out-of-range x extrapolates from the edge cell.
    const auto it = std::upper_bound(axis.begin(), axis.end(), x);
    std::size_t hi = static_cast<std::size_t>(it - axis.begin());
    hi = std::clamp<std::size_t>(hi, 1, axis.size() - 1);
    return hi - 1;
}

double
NldmTable::lookup(double slew, double load) const
{
    if (values_.empty())
        fatal("NldmTable::lookup on an empty table");

    const std::size_t i = segment(slewAxis_, slew);
    const std::size_t j = segment(loadAxis_, load);
    const std::size_t n_load = loadAxis_.size();

    const double s0 = slewAxis_[i], s1 = slewAxis_[i + 1];
    const double l0 = loadAxis_[j], l1 = loadAxis_[j + 1];
    const double ts = (slew - s0) / (s1 - s0);
    const double tl = (load - l0) / (l1 - l0);

    const double v00 = values_[i * n_load + j];
    const double v01 = values_[i * n_load + j + 1];
    const double v10 = values_[(i + 1) * n_load + j];
    const double v11 = values_[(i + 1) * n_load + j + 1];

    // Bilinear; ts/tl may lie outside [0,1], giving linear
    // extrapolation from the edge cell.
    const double a = v00 + (v01 - v00) * tl;
    const double b = v10 + (v11 - v10) * tl;
    return a + (b - a) * ts;
}

} // namespace otft::liberty
