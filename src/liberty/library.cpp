#include "liberty/library.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace otft::liberty {

double
TimingArc::worstDelay(double slew, double load) const
{
    return std::max(delay[0].lookup(slew, load),
                    delay[1].lookup(slew, load));
}

double
TimingArc::worstSlew(double slew, double load) const
{
    return std::max(outputSlew[0].lookup(slew, load),
                    outputSlew[1].lookup(slew, load));
}

const TimingArc &
StdCell::arc(int pin) const
{
    if (pin < 0 || static_cast<std::size_t>(pin) >= arcs.size())
        fatal("StdCell::arc: cell ", name, " has no arc for pin ", pin);
    return arcs[static_cast<std::size_t>(pin)];
}

void
CellLibrary::addCell(StdCell cell)
{
    if (cells.count(cell.name))
        fatal("CellLibrary: duplicate cell ", cell.name);
    order.push_back(cell.name);
    cells.emplace(cell.name, std::move(cell));
}

const StdCell &
CellLibrary::cell(const std::string &name) const
{
    const auto it = cells.find(name);
    if (it == cells.end())
        fatal("CellLibrary ", name_, ": unknown cell ", name);
    return it->second;
}

bool
CellLibrary::hasCell(const std::string &name) const
{
    return cells.count(name) != 0;
}

} // namespace otft::liberty
