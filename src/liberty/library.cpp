#include "liberty/library.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/result_cache.hpp"

namespace otft::liberty {

double
TimingArc::worstDelay(double slew, double load) const
{
    return std::max(delay[0].lookup(slew, load),
                    delay[1].lookup(slew, load));
}

double
TimingArc::worstSlew(double slew, double load) const
{
    return std::max(outputSlew[0].lookup(slew, load),
                    outputSlew[1].lookup(slew, load));
}

const TimingArc &
StdCell::arc(int pin) const
{
    if (pin < 0 || static_cast<std::size_t>(pin) >= arcs.size())
        fatal("StdCell::arc: cell ", name, " has no arc for pin ", pin);
    return arcs[static_cast<std::size_t>(pin)];
}

void
CellLibrary::addCell(StdCell cell)
{
    if (cells.count(cell.name))
        fatal("CellLibrary: duplicate cell ", cell.name);
    order.push_back(cell.name);
    cells.emplace(cell.name, std::move(cell));
}

const StdCell &
CellLibrary::cell(const std::string &name) const
{
    const auto it = cells.find(name);
    if (it == cells.end())
        fatal("CellLibrary ", name_, ": unknown cell ", name);
    return it->second;
}

bool
CellLibrary::hasCell(const std::string &name) const
{
    return cells.count(name) != 0;
}

std::uint64_t
CellLibrary::contentHash() const
{
    cache::KeyHasher h;
    h.add("cell-library-v1").add(name_).add(vdd_);
    h.add(wire_.resPerMeter).add(wire_.capPerMeter);
    h.add(wire_.lengthBase).add(wire_.lengthPerFanout);
    h.add(wire_.driverRes);
    h.add(defaultSlew_).add(clockMargin_);

    const auto add_table = [&](const NldmTable &t) {
        h.add(t.slewAxis()).add(t.loadAxis()).add(t.values());
    };
    for (const std::string &name : order) {
        const StdCell &c = cells.at(name);
        h.add(c.name).add(c.fanIn).add(c.isSequential);
        h.add(c.area).add(c.inputCap).add(c.leakage);
        h.add(c.flop.clkToQ).add(c.flop.setup).add(c.flop.hold);
        h.add(c.flop.clockPinCap);
        for (const TimingArc &arc : c.arcs) {
            h.add(arc.fromPin);
            for (int s = 0; s < 2; ++s) {
                add_table(arc.delay[s]);
                add_table(arc.outputSlew[s]);
            }
        }
    }
    return h.digest();
}

} // namespace otft::liberty
