/**
 * @file
 * Standard cell library data model: timing arcs, cells, and the
 * library container with its technology (wire) parameters.
 *
 * Both libraries expose the same six cells — INV, NAND2, NAND3, NOR2,
 * NOR3, DFF — because the paper trims the fully-featured TSMC 45 nm
 * library down to the cells the organic library offers, "to provide a
 * fair comparison and remove effects caused by library richness
 * mismatch" (Sec. 5.1).
 */

#ifndef OTFT_LIBERTY_LIBRARY_HPP
#define OTFT_LIBERTY_LIBRARY_HPP

#include <map>
#include <string>
#include <vector>

#include "liberty/nldm.hpp"

namespace otft::liberty {

/** Output transition sense of a timing arc. */
enum class Sense { Rise = 0, Fall = 1 };

/** One input-pin to output-pin combinational timing arc. */
struct TimingArc
{
    /** Input pin name ("a", "b", "c"). */
    std::string fromPin;
    /** Propagation delay tables indexed by output sense. */
    NldmTable delay[2];
    /** Output transition-time tables indexed by output sense. */
    NldmTable outputSlew[2];

    /** Worst-case delay at an operating point (max of rise/fall). */
    double worstDelay(double slew, double load) const;

    /** Worst-case output slew at an operating point. */
    double worstSlew(double slew, double load) const;
};

/** Sequential timing parameters of a flip-flop. */
struct FlopTiming
{
    /** Clock-to-Q propagation delay, seconds (worst sense). */
    double clkToQ = 0.0;
    /** Setup time of D before the capturing edge, seconds. */
    double setup = 0.0;
    /** Hold time of D after the capturing edge, seconds. */
    double hold = 0.0;
    /** Clock pin capacitance, farads. */
    double clockPinCap = 0.0;
};

/** One standard cell. */
struct StdCell
{
    std::string name;
    /** Number of logic inputs (1 for INV and DFF's D pin). */
    int fanIn = 1;
    bool isSequential = false;
    /** Cell footprint, m^2. */
    double area = 0.0;
    /** Input pin capacitance, farads (same for all logic pins). */
    double inputCap = 0.0;
    /** Average static/leakage power, watts. */
    double leakage = 0.0;
    /** Combinational arcs, one per input pin (D->Q arc for a DFF). */
    std::vector<TimingArc> arcs;
    /** Sequential parameters (valid when isSequential). */
    FlopTiming flop;

    /** The arc from the given input pin index. */
    const TimingArc &arc(int pin) const;
};

/** Interconnect technology parameters for the wireload model. */
struct WireParams
{
    /** Wire resistance per meter, ohms/m. */
    double resPerMeter = 0.0;
    /** Wire capacitance per meter, farads/m. */
    double capPerMeter = 0.0;
    /**
     * Estimated net length: base + perFanout * fanout, meters.
     * Scales with the physical size of the technology's cells.
     */
    double lengthBase = 0.0;
    double lengthPerFanout = 0.0;
    /** Equivalent driver resistance for Elmore delay, ohms. */
    double driverRes = 0.0;
};

/** A complete characterized library. */
class CellLibrary
{
  public:
    CellLibrary(std::string name, double vdd)
        : name_(std::move(name)), vdd_(vdd)
    {}

    /** Add a cell; name must be unique. */
    void addCell(StdCell cell);

    /** @return the cell with this name; fatal if missing. */
    const StdCell &cell(const std::string &name) const;

    /** @return true if a cell with this name exists. */
    bool hasCell(const std::string &name) const;

    /** All cell names in insertion order. */
    const std::vector<std::string> &cellNames() const { return order; }

    const std::string &name() const { return name_; }
    double vdd() const { return vdd_; }

    WireParams &wire() { return wire_; }
    const WireParams &wire() const { return wire_; }

    /**
     * Default input slew assumed at primary inputs / flop outputs when
     * no driver information exists, seconds.
     */
    double defaultSlew() const { return defaultSlew_; }
    void setDefaultSlew(double slew) { defaultSlew_ = slew; }

    /** Clock skew + jitter margin charged per cycle, seconds. */
    double clockMargin() const { return clockMargin_; }
    void setClockMargin(double margin) { clockMargin_ = margin; }

    /**
     * A 64-bit content digest over everything downstream timing can
     * observe: name, vdd, wire parameters, default slew, clock margin,
     * and every table value of every cell in insertion order. Two
     * libraries with equal digests synthesize identically; used to key
     * memoized design-point evaluations (util/result_cache.hpp).
     */
    std::uint64_t contentHash() const;

  private:
    std::string name_;
    double vdd_;
    WireParams wire_;
    double defaultSlew_ = 0.0;
    double clockMargin_ = 0.0;
    std::map<std::string, StdCell> cells;
    std::vector<std::string> order;
};

} // namespace otft::liberty

#endif // OTFT_LIBERTY_LIBRARY_HPP
