/**
 * @file
 * Structural netlists of the superscalar pipeline regions.
 *
 * Each region of the AnyCore-style pipeline is generated as a
 * combinational block whose size scales with the core's width
 * parameters the same way the synthesized RTL does:
 *
 *   fetch     next-PC adder, BTB tag match, target select, and
 *             per-slot alignment muxes (x fetchWidth)
 *   decode    per-slot opcode decoders and control signal logic
 *   rename    intra-group dependency cross-checks (x fetchWidth^2),
 *             map-table reads, and allocation decoders
 *   dispatch  IQ free-entry arbiters and entry write selects
 *   issue     wakeup tag CAM (iqSize x 2 x backendWidth comparators)
 *             and per-pipe age-ordered select trees
 *   regread   register file read port mux trees (2 per pipe)
 *   execute   full bypass network (sources x results) plus the simple
 *             ALU (adder, logic unit, shifter, comparator)
 *   retire    ROB commit selection and exception priority logic
 *
 * The complex ALU (pipelined multiplier + stallable divider) is
 * generated separately (buildComplexAlu) because its pipeline depth
 * is its own design axis (paper Fig. 12).
 */

#ifndef OTFT_CORE_BLOCKS_HPP
#define OTFT_CORE_BLOCKS_HPP

#include "arch/config.hpp"
#include "netlist/netlist.hpp"

namespace otft::core {

/** Datapath width of the synthesized blocks, bits. */
inline constexpr int dataWidth = 32;

/** Physical register file entries modeled in regread. */
inline constexpr int physRegs = 64;

/** Build the combinational block of one pipeline region. */
netlist::Netlist buildRegionBlock(arch::Region region,
                                  const arch::CoreConfig &config);

/**
 * Build the complex ALU: a dataWidth x dataWidth multiplier plus a
 * stallable non-restoring divider array computing `divider_rows`
 * quotient bits per pass.
 */
netlist::Netlist buildComplexAlu(int divider_rows = 2);

/**
 * The wakeup-select loop: one result tag broadcast to every IQ
 * entry's comparators, the ready AND, and the select arbiter with its
 * grant gating. This loop must close in a single cycle for
 * back-to-back issue of dependent operations (Palacharla/Jouppi), so
 * it cannot be pipelined away: it floors the issue stage period no
 * matter how many stages the region is cut into.
 */
netlist::Netlist buildWakeupLoop(const arch::CoreConfig &config);

/**
 * The bypass loop: an ALU result broadcast across all execution
 * pipes, through the operand-select muxes, and back through the
 * adder. Like the wakeup loop, it must close in one cycle for
 * back-to-back dependent ALU operations and floors the execute stage.
 */
netlist::Netlist buildBypassLoop(const arch::CoreConfig &config);

/**
 * Sequential-state bits of the core's structures (ROB, IQ, LSQ,
 * physical register file, rename map, predictor tables are SRAM and
 * excluded). Charged as DFF area on top of the region logic.
 */
std::size_t storageBits(const arch::CoreConfig &config);

} // namespace otft::core

#endif // OTFT_CORE_BLOCKS_HPP
