/**
 * @file
 * Yield-aware architecture exploration.
 *
 * The nominal explorer answers "how fast is this core on the expected
 * process"; manufacturing asks "how fast can we bin it so that a
 * target fraction of flexible foils actually works". This driver
 * evaluates every design point under the mean and slow statistical
 * corner libraries (liberty/mc_characterizer), recovers the Gaussian
 * clock-period spread from the corner pair, and re-bases frequency and
 * performance at a target parametric yield:
 *
 *     f(yield) = 1 / (T_mean + Phi^-1(yield) * sigma_period)
 *
 * With that, the paper's depth and width sweeps (Figs. 11/13) re-run
 * as sign-off sweeps: the best configuration at 50% yield is not
 * necessarily the best at 99%, because deeper pipelines multiply
 * per-stage sigma while wider cores grow wire spread.
 */

#ifndef OTFT_CORE_YIELD_EXPLORER_HPP
#define OTFT_CORE_YIELD_EXPLORER_HPP

#include <string>
#include <vector>

#include "core/explorer.hpp"
#include "liberty/mc_characterizer.hpp"

namespace otft::core {

/** One (frequency, yield) sample of a yield curve. */
struct YieldPoint
{
    double frequency = 0.0; // hertz
    double yield = 0.0;     // fraction of instances meeting timing
};

/** Yield-vs-frequency curve of one configuration. */
struct YieldCurve
{
    std::string libraryName;
    arch::CoreConfig config;
    double meanPeriod = 0.0;
    double slowPeriod = 0.0;
    double periodSigma = 0.0;
    double meanIpc = 0.0;
    /** Samples in increasing frequency (decreasing yield). */
    std::vector<YieldPoint> points;

    /** Yield at a clock frequency (hertz). */
    double yieldAtFrequency(double frequency) const;
    /** Fastest clock meeting `target_yield`, hertz. */
    double frequencyAtYield(double target_yield) const;
};

/** A design point evaluated at the target yield. */
struct YieldDesignPoint
{
    /** Mean-library (expected-process) evaluation. */
    DesignPoint nominal;
    /** Slow-corner minimum clock period, seconds. */
    double slowPeriod = 0.0;
    /** Implied per-instance clock-period sigma, seconds. */
    double periodSigma = 0.0;
    double targetYield = 0.0;
    /** Sign-off frequency at the target yield, hertz. */
    double yieldFrequency = 0.0;
    /** Mean IPC x yield frequency, 1/s. */
    double yieldPerformance = 0.0;
};

/** Depth sweep re-based at the target yield (Fig. 11 variant). */
struct YieldDepthSweep
{
    std::string libraryName;
    double targetYield = 0.0;
    std::vector<YieldDesignPoint> points; // one per total stage count
};

/** Width sweep re-based at the target yield (Fig. 13 variant). */
struct YieldWidthSweep
{
    std::string libraryName;
    double targetYield = 0.0;
    /** points[be - beMin][fe - feMin]. */
    std::vector<std::vector<YieldDesignPoint>> points;
    int feMin = 1, feMax = 6;
    int beMin = 3, beMax = 7;
};

/** Yield exploration controls. */
struct YieldExplorerConfig
{
    /** Fraction of instances that must meet the sign-off clock. */
    double targetYield = 0.99;
    /** Nominal exploration settings (workloads, STA, caching). */
    ExplorerConfig explorer = {};
};

/**
 * The yield-aware exploration driver, bound to one statistical
 * library. Owns corner-library copies (ArchExplorer holds its library
 * by reference), so the StatLibrary may be dropped after construction.
 */
class YieldExplorer
{
  public:
    YieldExplorer(const liberty::StatLibrary &stat,
                  YieldExplorerConfig config = {});

    /** Synthesize + simulate one configuration at both corners. */
    YieldDesignPoint evaluate(const arch::CoreConfig &config);

    /** Yield-vs-frequency curve of one configuration. */
    YieldCurve yieldCurve(const arch::CoreConfig &config,
                          int n_points = 33);

    /**
     * The paper's depth sweep at the target yield. Stage cuts follow
     * the mean library (the designer pipelines for the expected
     * process); each resulting design is then signed off at yield.
     */
    YieldDepthSweep depthSweepAtYield(int max_stages = 15);

    /** The paper's width sweep at the target yield. */
    YieldWidthSweep widthSweepAtYield(int fe_min = 1, int fe_max = 6,
                                      int be_min = 3, int be_max = 7);

    double targetYield() const { return config_.targetYield; }
    const liberty::CellLibrary &meanLibrary() const { return mean_; }
    const liberty::CellLibrary &slowLibrary() const { return slow_; }

  private:
    /** Derive the yield numbers from a mean/slow evaluation pair. */
    YieldDesignPoint combine(DesignPoint nominal,
                             const DesignPoint &slow) const;

    liberty::CellLibrary mean_;
    liberty::CellLibrary slow_;
    double cornerSigma_;
    YieldExplorerConfig config_;
    ArchExplorer meanExplorer_;
    ArchExplorer slowExplorer_;
};

} // namespace otft::core

#endif // OTFT_CORE_YIELD_EXPLORER_HPP
