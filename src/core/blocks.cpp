#include "core/blocks.hpp"

#include <algorithm>

#include "netlist/generators.hpp"
#include "util/logging.hpp"

namespace otft::core {

using arch::CoreConfig;
using arch::Region;
using netlist::Bus;
using netlist::GateId;
using netlist::NetBuilder;
using netlist::Netlist;

namespace {

int
log2ceil(int v)
{
    int s = 0;
    while ((1 << s) < v)
        ++s;
    return std::max(s, 1);
}

/** Tag width for ROB-sized identifiers. */
int
tagBits(const CoreConfig &config)
{
    return log2ceil(config.robSize);
}

Netlist
buildFetch(const CoreConfig &config)
{
    Netlist nl;
    NetBuilder b(nl);

    const Bus pc = b.inputBus("pc", dataWidth);
    const Bus btb_tag = b.inputBus("btb_tag", 20);
    const Bus btb_target = b.inputBus("btb_target", dataWidth);
    const GateId pred_taken = b.input("pred_taken");

    // Sequential next PC: pc + 4 * fetchWidth.
    Bus increment(dataWidth, b.constant(false));
    const int inc = 4 * config.fetchWidth;
    for (int bit = 0; bit < dataWidth; ++bit)
        if ((inc >> bit) & 1)
            increment[static_cast<std::size_t>(bit)] = b.constant(true);
    const auto seq = netlist::koggeStoneAdder(b, pc, increment);

    // BTB hit: tag match against the PC high bits.
    Bus pc_tag(btb_tag.size());
    for (std::size_t i = 0; i < pc_tag.size(); ++i)
        pc_tag[i] = pc[pc.size() - pc_tag.size() + i];
    const GateId hit = netlist::equalityComparator(b, pc_tag, btb_tag);
    const GateId redirect = b.andGate(hit, pred_taken);

    // Next-PC select.
    Bus next_pc(dataWidth);
    for (int bit = 0; bit < dataWidth; ++bit)
        next_pc[static_cast<std::size_t>(bit)] =
            b.mux(redirect, btb_target[static_cast<std::size_t>(bit)],
                  seq.sum[static_cast<std::size_t>(bit)]);
    b.outputBus("next_pc", next_pc);

    // Per-slot alignment: each fetch slot picks one of 8 cache-line
    // positions.
    const Bus align_sel = b.inputBus("align_sel", 3);
    std::vector<Bus> line(8);
    for (int w = 0; w < 8; ++w)
        line[static_cast<std::size_t>(w)] =
            b.inputBus("line" + std::to_string(w), dataWidth);
    for (int slot = 0; slot < config.fetchWidth; ++slot) {
        const Bus word = netlist::binaryMux(b, line, align_sel);
        b.outputBus("slot" + std::to_string(slot), word);
    }
    return nl;
}

Netlist
buildDecode(const CoreConfig &config)
{
    Netlist nl;
    NetBuilder b(nl);

    for (int slot = 0; slot < config.fetchWidth; ++slot) {
        const std::string tag = std::to_string(slot);
        const Bus opcode = b.inputBus("op" + tag, 6);
        const Bus onehot = netlist::decoder(b, opcode);

        // Control signals: OR-trees over opcode groups of varying
        // size (the AND-OR plane of a decoded control ROM).
        for (int sig = 0; sig < 12; ++sig) {
            Bus members;
            for (std::size_t w = static_cast<std::size_t>(sig);
                 w < onehot.size();
                 w += static_cast<std::size_t>(3 + sig % 5))
                members.push_back(onehot[w]);
            // OR-reduce.
            while (members.size() > 1) {
                Bus next;
                std::size_t i = 0;
                for (; i + 2 < members.size(); i += 3)
                    next.push_back(b.or3(members[i], members[i + 1],
                                         members[i + 2]));
                if (i + 1 < members.size())
                    next.push_back(b.orGate(members[i], members[i + 1]));
                else if (i < members.size())
                    next.push_back(members[i]);
                members = std::move(next);
            }
            b.output("ctl" + tag + "_" + std::to_string(sig),
                     members[0]);
        }
    }
    return nl;
}

Netlist
buildRename(const CoreConfig &config)
{
    Netlist nl;
    NetBuilder b(nl);
    const int arch_bits = 5;
    const int tag_bits = tagBits(config);

    // Map table read: one mux tree per source of each slot.
    std::vector<Bus> map_entries(32);
    for (int e = 0; e < 32; ++e)
        map_entries[static_cast<std::size_t>(e)] =
            b.inputBus("map" + std::to_string(e), tag_bits);

    std::vector<Bus> dests;
    for (int slot = 0; slot < config.fetchWidth; ++slot) {
        const std::string tag = std::to_string(slot);
        const Bus src1 = b.inputBus("s" + tag + "a", arch_bits);
        const Bus src2 = b.inputBus("s" + tag + "b", arch_bits);
        const Bus dest = b.inputBus("d" + tag, arch_bits);
        dests.push_back(dest);

        const Bus map_tag1 = netlist::binaryMux(b, map_entries, src1);
        const Bus map_tag2 = netlist::binaryMux(b, map_entries, src2);

        // Intra-group dependency cross-check: all earlier slots'
        // destinations are compared in parallel; the youngest match
        // wins via a priority select (log depth, width-proportional
        // area), falling back to the map-table tag.
        auto cross_check = [&](const Bus &src, const Bus &map_tag,
                               const char *suffix) {
            if (slot == 0)
                return map_tag;
            Bus match(static_cast<std::size_t>(slot));
            std::vector<Bus> prev_tags;
            for (int prev = 0; prev < slot; ++prev) {
                // Youngest-first order for the priority select.
                const int idx = slot - 1 - prev;
                match[static_cast<std::size_t>(prev)] =
                    netlist::equalityComparator(
                        b, src, dests[static_cast<std::size_t>(idx)]);
                prev_tags.push_back(
                    b.inputBus("ptag" + tag + suffix +
                               std::to_string(idx), tag_bits));
            }
            const Bus grant = netlist::priorityArbiter(b, match);
            const Bus forwarded =
                netlist::onehotMux(b, prev_tags, grant);
            const GateId any = b.notGate(
                netlist::prefixOr(b, match).back());
            Bus out(map_tag.size());
            for (std::size_t bit = 0; bit < map_tag.size(); ++bit)
                out[bit] = b.mux(any, map_tag[bit], forwarded[bit]);
            return out;
        };
        const Bus tag1 = cross_check(src1, map_tag1, "a");
        const Bus tag2 = cross_check(src2, map_tag2, "b");
        b.outputBus("t" + tag + "a", tag1);
        b.outputBus("t" + tag + "b", tag2);

        // Map write decoder.
        const Bus write_sel = netlist::decoder(b, dest);
        b.outputBus("wr" + tag, write_sel);
    }
    return nl;
}

Netlist
buildDispatch(const CoreConfig &config)
{
    Netlist nl;
    NetBuilder b(nl);

    // Free-entry arbitration: each dispatch slot claims one of the
    // IQ's free entries via a priority arbiter over the free list.
    const int iq = std::min(config.iqSize, 32);
    const Bus free_list = b.inputBus("free", iq);

    std::vector<Bus> grants;
    Bus remaining = free_list;
    for (int slot = 0; slot < config.fetchWidth; ++slot) {
        const Bus grant = netlist::priorityArbiter(b, remaining);
        grants.push_back(grant);
        b.outputBus("alloc" + std::to_string(slot), grant);
        // Knock out the granted entry for the next slot.
        Bus next(remaining.size());
        for (std::size_t i = 0; i < remaining.size(); ++i)
            next[i] = b.andGate(remaining[i], b.notGate(grant[i]));
        remaining = std::move(next);
    }

    // IQ entry write ports: each entry muxes its payload from the
    // slot whose allocation granted it — one write-select term per
    // dispatch slot (entry write logic scales with front-end width).
    const int payload_bits = 20;
    std::vector<Bus> payloads;
    for (int slot = 0; slot < config.fetchWidth; ++slot)
        payloads.push_back(
            b.inputBus("pay" + std::to_string(slot), payload_bits));
    for (int e = 0; e < iq; ++e) {
        Bus sel(static_cast<std::size_t>(config.fetchWidth));
        for (int slot = 0; slot < config.fetchWidth; ++slot)
            sel[static_cast<std::size_t>(slot)] =
                grants[static_cast<std::size_t>(slot)]
                      [static_cast<std::size_t>(e)];
        const Bus data = netlist::onehotMux(b, payloads, sel);
        b.outputBus("wdata" + std::to_string(e), data);
    }
    return nl;
}

Netlist
buildIssue(const CoreConfig &config)
{
    Netlist nl;
    NetBuilder b(nl);
    const int tag_bits = tagBits(config);
    const int iq = std::min(config.iqSize, 32);
    const int pipes = config.backendWidth();

    // Wakeup CAM: every IQ entry compares both source tags against
    // every result broadcast bus; the per-entry match OR is a tree.
    std::vector<Bus> result_tags;
    for (int p = 0; p < pipes; ++p)
        result_tags.push_back(
            b.inputBus("rtag" + std::to_string(p), tag_bits));

    auto or_tree = [&](Bus terms) {
        while (terms.size() > 1) {
            Bus next;
            std::size_t i = 0;
            for (; i + 2 < terms.size(); i += 3)
                next.push_back(
                    b.or3(terms[i], terms[i + 1], terms[i + 2]));
            if (i + 1 < terms.size())
                next.push_back(b.orGate(terms[i], terms[i + 1]));
            else if (i < terms.size())
                next.push_back(terms[i]);
            terms = std::move(next);
        }
        return terms[0];
    };

    Bus request(static_cast<std::size_t>(iq));
    Bus is_alu(static_cast<std::size_t>(iq));
    Bus is_mem(static_cast<std::size_t>(iq));
    Bus is_branch(static_cast<std::size_t>(iq));
    for (int e = 0; e < iq; ++e) {
        const std::string tag = std::to_string(e);
        const Bus src1 = b.inputBus("q" + tag + "a", tag_bits);
        const Bus src2 = b.inputBus("q" + tag + "b", tag_bits);
        Bus match1 = {b.input("r" + tag + "a")};
        Bus match2 = {b.input("r" + tag + "b")};
        for (int p = 0; p < pipes; ++p) {
            match1.push_back(netlist::equalityComparator(
                b, src1, result_tags[static_cast<std::size_t>(p)]));
            match2.push_back(netlist::equalityComparator(
                b, src2, result_tags[static_cast<std::size_t>(p)]));
        }
        request[static_cast<std::size_t>(e)] =
            b.andGate(or_tree(match1), or_tree(match2));
        is_alu[static_cast<std::size_t>(e)] = b.input("ka" + tag);
        is_mem[static_cast<std::size_t>(e)] = b.input("km" + tag);
        is_branch[static_cast<std::size_t>(e)] = b.input("kb" + tag);
    }

    std::vector<Bus> payload(static_cast<std::size_t>(iq));
    for (int e = 0; e < iq; ++e)
        payload[static_cast<std::size_t>(e)] =
            b.inputBus("ptag" + std::to_string(e), tag_bits);

    // Per-class selection: memory and branch pipes each pick from
    // their own ready set in parallel; the ALU pipes knock out among
    // themselves only (real schedulers select per pipe class, so
    // select depth grows with the ALU pipe count, not total width).
    auto select_pipe = [&](const Bus &reqs, const std::string &name) {
        const Bus grant = netlist::priorityArbiter(b, reqs);
        b.outputBus("grant_" + name, grant);
        const Bus issued = netlist::onehotMux(b, payload, grant);
        b.outputBus("issue_" + name, issued);
        return grant;
    };

    select_pipe(netlist::busAnd(b, request, is_mem), "mem");
    select_pipe(netlist::busAnd(b, request, is_branch), "br");

    // ALU multi-grant: partitioned selection — entry e belongs to
    // pipe e mod aluPipes, each pipe arbitrating its own partition in
    // parallel (the standard way wide schedulers avoid a serial
    // knockout chain; select area scales with pipe count while depth
    // stays logarithmic).
    const Bus alu_req = netlist::busAnd(b, request, is_alu);
    for (int p = 0; p < config.aluPipes; ++p) {
        Bus part;
        std::vector<std::size_t> part_idx;
        for (std::size_t e = static_cast<std::size_t>(p);
             e < alu_req.size();
             e += static_cast<std::size_t>(config.aluPipes)) {
            part.push_back(alu_req[e]);
            part_idx.push_back(e);
        }
        const Bus grant = netlist::priorityArbiter(b, part);
        std::vector<Bus> part_payload;
        for (std::size_t e : part_idx)
            part_payload.push_back(payload[e]);
        const std::string name = "alu" + std::to_string(p);
        b.outputBus("grant_" + name, grant);
        b.outputBus("issue_" + name,
                    netlist::onehotMux(b, part_payload, grant));
    }
    return nl;
}

Netlist
buildRegRead(const CoreConfig &config)
{
    Netlist nl;
    NetBuilder b(nl);
    const int sel_bits = log2ceil(physRegs);

    std::vector<Bus> regs(static_cast<std::size_t>(physRegs));
    for (int r = 0; r < physRegs; ++r)
        regs[static_cast<std::size_t>(r)] =
            b.inputBus("r" + std::to_string(r), dataWidth);

    // Two read ports per execution pipe.
    const int ports = 2 * config.backendWidth();
    for (int port = 0; port < ports; ++port) {
        const Bus sel =
            b.inputBus("sel" + std::to_string(port), sel_bits);
        const Bus value = netlist::binaryMux(b, regs, sel);
        b.outputBus("port" + std::to_string(port), value);
    }
    return nl;
}

Netlist
buildExecute(const CoreConfig &config)
{
    Netlist nl;
    NetBuilder b(nl);
    const int tag_bits = tagBits(config);
    const int pipes = config.backendWidth();

    // Result buses from every pipe (value + tag).
    std::vector<Bus> result_vals, result_tags;
    for (int p = 0; p < pipes; ++p) {
        result_vals.push_back(
            b.inputBus("rv" + std::to_string(p), dataWidth));
        result_tags.push_back(
            b.inputBus("rt" + std::to_string(p), tag_bits));
    }

    // Bypass for both sources of one ALU pipe (the others are
    // identical copies; one per ALU pipe is generated). The source
    // select is a one-hot mux tree over {regfile, result buses} —
    // log-depth, as a synthesized bypass network is.
    auto bypass_source = [&](const std::string &name) {
        const Bus regfile_val = b.inputBus(name + "_rf", dataWidth);
        const Bus need_tag = b.inputBus(name + "_tag", tag_bits);
        Bus onehot(static_cast<std::size_t>(pipes) + 1);
        std::vector<Bus> sources;
        sources.push_back(regfile_val);
        Bus any_match;
        for (int p = 0; p < pipes; ++p) {
            const GateId match = netlist::equalityComparator(
                b, need_tag, result_tags[static_cast<std::size_t>(p)]);
            onehot[static_cast<std::size_t>(p) + 1] = match;
            any_match.push_back(match);
            sources.push_back(
                result_vals[static_cast<std::size_t>(p)]);
        }
        // Regfile selected when no result matches.
        Bus nmatch(any_match.size());
        for (std::size_t i = 0; i < any_match.size(); ++i)
            nmatch[i] = b.notGate(any_match[i]);
        GateId none = nmatch[0];
        for (std::size_t i = 1; i < nmatch.size(); ++i)
            none = b.andGate(none, nmatch[i]);
        onehot[0] = none;
        return netlist::onehotMux(b, sources, onehot);
    };

    for (int alu = 0; alu < config.aluPipes; ++alu) {
        const std::string tag = std::to_string(alu);
        const Bus op_a = bypass_source("a" + tag);
        const Bus op_b = bypass_source("b" + tag);

        // Simple ALU: add/sub, logic, shift, compare.
        const GateId sub = b.input("sub" + tag);
        Bus b_xor(op_b.size());
        for (std::size_t i = 0; i < op_b.size(); ++i)
            b_xor[i] = b.xorGate(op_b[i], sub);
        const auto sum = netlist::koggeStoneAdder(b, op_a, b_xor, sub);

        const Bus logic_and = netlist::busAnd(b, op_a, op_b);
        const Bus logic_or = netlist::busOr(b, op_a, op_b);
        const Bus logic_xor = netlist::busXor(b, op_a, op_b);

        const Bus shamt = b.inputBus("sh" + tag, 5);
        const Bus shifted = netlist::barrelShifter(b, op_a, shamt,
                                                   false);
        const GateId less = netlist::lessThan(b, op_a, op_b);

        // Function select.
        const Bus fsel = b.inputBus("f" + tag, 3);
        Bus less_bus(dataWidth, b.constant(false));
        less_bus[0] = less;
        const Bus out = netlist::binaryMux(
            b,
            {sum.sum, logic_and, logic_or, logic_xor, shifted,
             less_bus},
            fsel);
        b.outputBus("alu" + tag, out);
    }
    return nl;
}

Netlist
buildRetire(const CoreConfig &config)
{
    Netlist nl;
    NetBuilder b(nl);
    const int window = std::min(config.robSize, 64);

    // Commit-ready scan: oldest block of Done entries, gated by
    // exception priority. Prefix-AND over Done gives the contiguous
    // committable region in log depth.
    const Bus done = b.inputBus("done", window);
    const Bus except = b.inputBus("except", window);
    const Bus first_except = netlist::priorityArbiter(b, except);
    const Bus prior_done = netlist::prefixAnd(b, done);

    Bus commit(static_cast<std::size_t>(window));
    commit[0] = b.andGate(done[0], b.notGate(first_except[0]));
    for (int e = 1; e < window; ++e) {
        const std::size_t i = static_cast<std::size_t>(e);
        commit[i] = b.andGate(
            b.andGate(done[i], prior_done[i - 1]),
            b.notGate(first_except[i]));
    }
    b.outputBus("commit", commit);
    return nl;
}

} // namespace

Netlist
buildRegionBlock(Region region, const CoreConfig &config)
{
    switch (region) {
      case Region::Fetch:
        return buildFetch(config);
      case Region::Decode:
        return buildDecode(config);
      case Region::Rename:
        return buildRename(config);
      case Region::Dispatch:
        return buildDispatch(config);
      case Region::Issue:
        return buildIssue(config);
      case Region::RegRead:
        return buildRegRead(config);
      case Region::Execute:
        return buildExecute(config);
      case Region::Retire:
        return buildRetire(config);
    }
    fatal("buildRegionBlock: bad region");
}

Netlist
buildWakeupLoop(const CoreConfig &config)
{
    Netlist nl;
    NetBuilder b(nl);
    const int tag_bits = tagBits(config);
    const int iq = std::min(config.iqSize, 32);

    // One broadcast tag reaching both comparators of every entry.
    const Bus tag = b.inputBus("tag", tag_bits);
    Bus request(static_cast<std::size_t>(iq));
    for (int e = 0; e < iq; ++e) {
        const std::string n = std::to_string(e);
        const Bus src1 = b.inputBus("q" + n + "a", tag_bits);
        const Bus src2 = b.inputBus("q" + n + "b", tag_bits);
        const GateId m1 = b.orGate(b.input("r" + n + "a"),
                                   netlist::equalityComparator(b, src1,
                                                               tag));
        const GateId m2 = b.orGate(b.input("r" + n + "b"),
                                   netlist::equalityComparator(b, src2,
                                                               tag));
        request[static_cast<std::size_t>(e)] = b.andGate(m1, m2);
    }
    // The grant itself closes the loop: the granted entry's tag
    // drive starts the next broadcast (the payload readout overlaps
    // with the broadcast wire flight). The arbiter prefix uses the
    // phase-optimized mapping of a hand-tuned scheduler macro.
    const Bus blocked = netlist::prefixOrFast(b, request);
    Bus grant(request.size());
    grant[0] = request[0];
    for (std::size_t i = 1; i < request.size(); ++i)
        grant[i] = b.andGate(request[i], b.notGate(blocked[i - 1]));
    b.outputBus("grant", grant);
    return nl;
}

Netlist
buildBypassLoop(const CoreConfig &config)
{
    Netlist nl;
    NetBuilder b(nl);
    const int pipes = config.backendWidth();

    // Result value selected from any pipe's bus through a one-hot
    // mux tree (log depth) into the operand latch.
    std::vector<Bus> results;
    Bus onehot(static_cast<std::size_t>(pipes));
    for (int p = 0; p < pipes; ++p) {
        results.push_back(
            b.inputBus("rv" + std::to_string(p), dataWidth));
        onehot[static_cast<std::size_t>(p)] =
            b.input("sel" + std::to_string(p));
    }
    const Bus operand = netlist::onehotMux(b, results, onehot);
    // The forwarding loop ends at the ALU operand latch (staggered
    // forwarding): the adder itself is stage logic, not loop logic.
    b.outputBus("operand", operand);
    return nl;
}

Netlist
buildComplexAlu(int divider_rows)
{
    Netlist nl;
    NetBuilder b(nl);
    const Bus a = b.inputBus("a", dataWidth);
    const Bus y = b.inputBus("y", dataWidth);
    const Bus product = netlist::arrayMultiplier(b, a, y);
    const auto div = netlist::nonRestoringDivider(b, a, y, divider_rows);
    b.outputBus("p", product);
    b.outputBus("q", div.quotient);
    b.outputBus("r", div.remainder);
    return nl;
}

std::size_t
storageBits(const arch::CoreConfig &config)
{
    const std::size_t tag = static_cast<std::size_t>(
        std::max(7, 1));
    // ROB: ~40 bits of state per entry; IQ: 2 tags + ready bits +
    // payload; LSQ: address + data; PRF: dataWidth per reg; rename
    // map: one tag per arch reg; fetch queue: one instruction per
    // front-end slot per stage.
    const std::size_t rob =
        static_cast<std::size_t>(config.robSize) * 40;
    const std::size_t iq = static_cast<std::size_t>(config.iqSize) *
                           (2 * tag + 24);
    const std::size_t lsq =
        static_cast<std::size_t>(config.lsqSize) * 72;
    const std::size_t prf =
        static_cast<std::size_t>(physRegs) * dataWidth;
    const std::size_t map = 32 * tag;
    const std::size_t fq = static_cast<std::size_t>(
                               config.fetchWidth) *
                           static_cast<std::size_t>(
                               config.frontEndDepth()) *
                           48;
    return rob + iq + lsq + prf + map + fq;
}

} // namespace otft::core
