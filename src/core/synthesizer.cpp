#include "core/synthesizer.hpp"

#include <algorithm>

#include <cmath>

#include "core/blocks.hpp"
#include "netlist/bufferize.hpp"
#include "util/logging.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft::core {

using arch::CoreConfig;
using arch::Region;

CoreSynthesizer::CoreSynthesizer(const liberty::CellLibrary &library,
                                 sta::StaConfig sta_config)
    : library(library), staConfig_(sta_config),
      engine(library, sta_config), pipeliner(library, sta_config)
{
}

const netlist::Netlist &
CoreSynthesizer::block(Region region, const CoreConfig &config)
{
    const auto key = std::make_tuple(static_cast<int>(region),
                                     config.fetchWidth,
                                     config.aluPipes);
    auto it = blockCache.find(key);
    if (it == blockCache.end()) {
        it = blockCache
                 .emplace(key, netlist::bufferize(
                                   buildRegionBlock(region, config), 6))
                 .first;
    }
    return it->second;
}

CoreTiming
CoreSynthesizer::synthesize(const CoreConfig &config)
{
    static stats::Counter &stat_calls = stats::counter(
        "synth.cores.synthesized", "core configurations synthesized");
    OTFT_TRACE_SCOPE("synth.core.synthesize");
    ++stat_calls;

    CoreTiming timing;

    static constexpr Region all_regions[] = {
        Region::Fetch,   Region::Decode, Region::Rename,
        Region::Dispatch, Region::Issue, Region::RegRead,
        Region::Execute, Region::Retire,
    };

    for (Region region : all_regions) {
        const auto key = std::make_tuple(static_cast<int>(region),
                                         config.fetchWidth,
                                         config.aluPipes,
                                         config.stagesIn(region));
        static stats::Counter &stat_hits = stats::counter(
            "synth.region_cache.hits",
            "region timings served from the cache");
        static stats::Counter &stat_misses = stats::counter(
            "synth.region_cache.misses",
            "region timings computed (pipeline + STA)");
        auto cached = timingCache.find(key);
        if (cached != timingCache.end()) {
            ++stat_hits;
        } else {
            ++stat_misses;
            OTFT_TRACE_SCOPE("synth.region.time");
            const netlist::Netlist &comb = block(region, config);
            const auto report =
                pipeliner.pipeline(comb, config.stagesIn(region));
            const auto sta = engine.analyze(report.netlist);

            RegionTiming rt;
            rt.region = region;
            rt.stages = config.stagesIn(region);
            rt.clockPeriod = sta.minClockPeriod;
            rt.area = sta.area;
            rt.cells = sta.cellCount;
            cached = timingCache.emplace(key, rt).first;
        }
        const RegionTiming &rt = cached->second;
        timing.regions.push_back(rt);
        timing.area += rt.area;
    }

    // Single-cycle loop floors (Palacharla/Jouppi): the wakeup-select
    // and bypass loops must close combinationally regardless of how
    // deep the issue/execute regions are cut. Their broadcast nets
    // span the core, so the floor carries a block-span wire term that
    // is significant in silicon and negligible in organic — the
    // paper's "communication between the pipelines" effect (Sec. 5.5).
    {
        const double span =
            loopSpanCoefficient * std::sqrt(timing.area);

        sta::StaConfig loop_cfg = staConfig_;
        loop_cfg.registerInputs = false;
        loop_cfg.registerOutputs = false;

        loop_cfg.extraSpanPerNet = span;
        const double wakeup_floor =
            sta::StaEngine(library, loop_cfg)
                .analyze(loopNetlist(LoopKind::Wakeup, config))
                .minClockPeriod;

        loop_cfg.extraSpanPerNet =
            span * static_cast<double>(config.backendWidth()) / 3.0;
        const double bypass_floor =
            sta::StaEngine(library, loop_cfg)
                .analyze(loopNetlist(LoopKind::Bypass, config))
                .minClockPeriod;

        for (RegionTiming &rt : timing.regions) {
            if (rt.region == Region::Issue)
                rt.clockPeriod = std::max(rt.clockPeriod, wakeup_floor);
            if (rt.region == Region::Execute)
                rt.clockPeriod = std::max(rt.clockPeriod, bypass_floor);
        }
    }

    for (const RegionTiming &rt : timing.regions) {
        if (rt.clockPeriod > timing.clockPeriod) {
            timing.clockPeriod = rt.clockPeriod;
            timing.critical = rt.region;
        }
    }

    // Storage structures as DFF arrays.
    const liberty::StdCell &dff = library.cell("dff");
    timing.area +=
        static_cast<double>(storageBits(config)) * dff.area;

    // Complex ALU: pipeline just deep enough to meet the core clock
    // (stallable DesignWare-style unit; it never sets the clock).
    {
        auto it = aluCache.find(0);
        if (it == aluCache.end()) {
            it = aluCache
                     .emplace(0, netlist::bufferize(buildComplexAlu(),
                                                    6))
                     .first;
        }
        const netlist::Netlist &alu = it->second;
        auto alu_at = [&](int stages) -> std::pair<double, double> {
            auto hit = aluTimingCache.find(stages);
            if (hit == aluTimingCache.end()) {
                const auto report = pipeliner.pipeline(alu, stages);
                const auto sta = engine.analyze(report.netlist);
                hit = aluTimingCache
                          .emplace(stages,
                                   std::make_pair(sta.minClockPeriod,
                                                  sta.area))
                          .first;
            }
            return hit->second;
        };

        // Start from a period-ratio estimate and grow until the unit
        // meets the core clock.
        const double comb_period = alu_at(1).first;
        int stages = std::max(
            1, static_cast<int>(comb_period / timing.clockPeriod));
        std::pair<double, double> result = alu_at(stages);
        while (result.first > timing.clockPeriod && stages < 48)
            result = alu_at(++stages);
        timing.complexAluStages = stages;
        timing.area += result.second;
    }

    timing.frequency =
        timing.clockPeriod > 0.0 ? 1.0 / timing.clockPeriod : 0.0;
    return timing;
}

const netlist::Netlist &
CoreSynthesizer::loopNetlist(LoopKind kind, const CoreConfig &config)
{
    const auto key = std::make_tuple(static_cast<int>(kind),
                                     config.fetchWidth,
                                     config.aluPipes);
    auto it = loopCache.find(key);
    if (it == loopCache.end()) {
        netlist::Netlist loop =
            kind == LoopKind::Wakeup ? buildWakeupLoop(config)
                                     : buildBypassLoop(config);
        it = loopCache.emplace(key, netlist::bufferize(loop, 6)).first;
    }
    return it->second;
}

CoreConfig
CoreSynthesizer::deepen(const CoreConfig &config)
{
    const CoreTiming timing = synthesize(config);
    CoreConfig deeper = config;
    ++deeper.stagesIn(timing.critical);
    return deeper;
}

} // namespace otft::core
