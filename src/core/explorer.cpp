#include "core/explorer.hpp"

#include "core/blocks.hpp"
#include "netlist/bufferize.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft::core {

ArchExplorer::ArchExplorer(const liberty::CellLibrary &library,
                           ExplorerConfig config)
    : library(library), config_(config), synth(library, config.sta),
      workloads(workload::paperWorkloads())
{
}

std::vector<double>
ArchExplorer::measureIpc(const arch::CoreConfig &config)
{
    static stats::Accumulator &stat_sim_time = stats::accumulator(
        "explorer.point.sim_time",
        "seconds simulating IPC per design point");
    OTFT_TRACE_SCOPE("explorer.point.simulate");
    stats::ScopedTimer timer(stat_sim_time);

    std::vector<double> ipc;
    ipc.reserve(workloads.size());
    for (const auto &profile : workloads) {
        workload::TraceGenerator trace(profile, config_.seed);
        arch::CoreModel core(config, trace);
        ipc.push_back(core.run(config_.instructions).ipc());
    }
    return ipc;
}

DesignPoint
ArchExplorer::evaluate(const arch::CoreConfig &config)
{
    static stats::Counter &stat_points = stats::counter(
        "explorer.points.evaluated",
        "design points synthesized and simulated");
    static stats::Accumulator &stat_synth_time = stats::accumulator(
        "explorer.point.synth_time",
        "seconds synthesizing per design point");
    OTFT_TRACE_SCOPE("explorer.point.evaluate");
    ++stat_points;

    DesignPoint point;
    point.config = config;
    {
        stats::ScopedTimer timer(stat_synth_time);
        point.timing = synth.synthesize(config);
    }
    point.ipc = measureIpc(config);
    point.meanIpc = mean(point.ipc);
    point.performance = point.meanIpc * point.timing.frequency;
    return point;
}

DepthSweep
ArchExplorer::depthSweep(int max_stages)
{
    OTFT_TRACE_SCOPE("explorer.sweep.depth");
    DepthSweep sweep;
    sweep.libraryName = library.name();
    for (const auto &profile : workloads)
        sweep.workloadNames.push_back(profile.name);

    arch::CoreConfig config = arch::baselineConfig();
    if (config.totalStages() > max_stages)
        fatal("depthSweep: max_stages below the baseline depth");

    while (true) {
        sweep.points.push_back(evaluate(config));
        if (config.totalStages() >= max_stages)
            break;
        config = synth.deepen(config);
    }
    return sweep;
}

WidthSweep
ArchExplorer::widthSweep(int fe_min, int fe_max, int be_min, int be_max)
{
    OTFT_TRACE_SCOPE("explorer.sweep.width");
    WidthSweep sweep;
    sweep.libraryName = library.name();
    sweep.feMin = fe_min;
    sweep.feMax = fe_max;
    sweep.beMin = be_min;
    sweep.beMax = be_max;

    for (int be = be_min; be <= be_max; ++be) {
        std::vector<DesignPoint> row;
        for (int fe = fe_min; fe <= fe_max; ++fe) {
            arch::CoreConfig config = arch::baselineConfig();
            config.fetchWidth = fe;
            config.aluPipes = be - config.memPipes - config.branchPipes;
            if (config.aluPipes < 1)
                fatal("widthSweep: back-end width ", be,
                      " leaves no ALU pipes");
            row.push_back(evaluate(config));
        }
        sweep.points.push_back(std::move(row));
    }
    return sweep;
}

std::vector<AluPoint>
ArchExplorer::aluDepthSweep(const std::vector<int> &stages)
{
    const netlist::Netlist alu = netlist::bufferize(buildComplexAlu(),
                                                    6);
    sta::Pipeliner pipeliner(library, config_.sta);
    sta::StaEngine engine(library, config_.sta);

    std::vector<AluPoint> points;
    points.reserve(stages.size());
    for (int n : stages) {
        const auto report = pipeliner.pipeline(alu, n);
        const auto sta = engine.analyze(report.netlist);
        AluPoint p;
        p.stages = n;
        p.frequency = sta.maxFrequency;
        p.area = sta.area;
        points.push_back(p);
    }
    return points;
}

} // namespace otft::core
