#include "core/explorer.hpp"

#include "core/blocks.hpp"
#include "netlist/bufferize.hpp"
#include "util/diag.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/progress.hpp"
#include "util/result_cache.hpp"
#include "util/stats.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft::core {

namespace {

/**
 * Flatten a DesignPoint into the cache payload format. The config is
 * part of the key, so only the derived quantities are stored.
 */
std::vector<double>
packDesignPoint(const DesignPoint &p)
{
    std::vector<double> v;
    v.push_back(p.timing.clockPeriod);
    v.push_back(p.timing.frequency);
    v.push_back(p.timing.area);
    v.push_back(static_cast<double>(
        static_cast<int>(p.timing.critical)));
    v.push_back(static_cast<double>(p.timing.complexAluStages));
    v.push_back(static_cast<double>(p.timing.regions.size()));
    for (const RegionTiming &r : p.timing.regions) {
        v.push_back(static_cast<double>(static_cast<int>(r.region)));
        v.push_back(static_cast<double>(r.stages));
        v.push_back(r.clockPeriod);
        v.push_back(r.area);
        v.push_back(static_cast<double>(r.cells));
    }
    v.push_back(static_cast<double>(p.ipc.size()));
    for (double ipc : p.ipc)
        v.push_back(ipc);
    v.push_back(p.meanIpc);
    v.push_back(p.performance);
    return v;
}

/** Inverse of packDesignPoint. @return false on a malformed payload. */
bool
unpackDesignPoint(const std::vector<double> &v,
                  const arch::CoreConfig &config, DesignPoint &out)
{
    std::size_t i = 0;
    const auto next = [&](double &dst) {
        if (i >= v.size())
            return false;
        dst = v[i++];
        return true;
    };
    DesignPoint p;
    p.config = config;
    double critical = 0.0, alu_stages = 0.0, n_regions = 0.0;
    if (!next(p.timing.clockPeriod) || !next(p.timing.frequency) ||
        !next(p.timing.area) || !next(critical) ||
        !next(alu_stages) || !next(n_regions))
        return false;
    if (critical < 0.0 || critical >= arch::numRegions ||
        n_regions < 0.0 || n_regions > arch::numRegions)
        return false;
    p.timing.critical =
        static_cast<arch::Region>(static_cast<int>(critical));
    p.timing.complexAluStages = static_cast<int>(alu_stages);
    for (int k = 0; k < static_cast<int>(n_regions); ++k) {
        RegionTiming r;
        double region = 0.0, stages = 0.0, cells = 0.0;
        if (!next(region) || !next(stages) || !next(r.clockPeriod) ||
            !next(r.area) || !next(cells))
            return false;
        if (region < 0.0 || region >= arch::numRegions)
            return false;
        r.region = static_cast<arch::Region>(static_cast<int>(region));
        r.stages = static_cast<int>(stages);
        r.cells = static_cast<std::size_t>(cells);
        p.timing.regions.push_back(r);
    }
    double n_ipc = 0.0;
    if (!next(n_ipc) || n_ipc < 0.0 || n_ipc > 1e6)
        return false;
    p.ipc.resize(static_cast<std::size_t>(n_ipc));
    for (double &ipc : p.ipc)
        if (!next(ipc))
            return false;
    if (!next(p.meanIpc) || !next(p.performance) || i != v.size())
        return false;
    out = std::move(p);
    return true;
}

} // namespace

ArchExplorer::ArchExplorer(const liberty::CellLibrary &library,
                           ExplorerConfig config)
    : library(library), config_(config), synth(library, config.sta),
      workloads(workload::paperWorkloads()),
      libraryHash(library.contentHash())
{
    // The workload RNG seed determines every IPC number; stamping it
    // into the diagnostics attributes makes forensics dumps and the
    // --diag-json report self-describing for replay.
    if (diag::enabled())
        diag::Collector::instance().setAttribute(
            "explorer.seed", static_cast<double>(config_.seed));
}

std::vector<double>
ArchExplorer::measureIpc(const arch::CoreConfig &config)
{
    static stats::Accumulator &stat_sim_time = stats::accumulator(
        "explorer.point.sim_time",
        "seconds simulating IPC per design point");
    OTFT_TRACE_SCOPE("explorer.point.simulate");
    stats::ScopedTimer timer(stat_sim_time);

    // Each workload simulates on its own generator + core model, so
    // the seven IPC runs fan out; slots land in paperWorkloads()
    // order, identical to the serial loop.
    return parallel::orderedMap<double>(
        workloads.size(), [&](std::size_t i) {
            workload::TraceGenerator trace(workloads[i],
                                           config_.seed);
            arch::CoreModel core(config, trace);
            return core.run(config_.instructions).ipc();
        });
}

DesignPoint
ArchExplorer::evaluate(const arch::CoreConfig &config)
{
    return evaluateWith(synth, config);
}

DesignPoint
ArchExplorer::evaluateWith(CoreSynthesizer &synthesizer,
                           const arch::CoreConfig &config)
{
    static stats::Counter &stat_points = stats::counter(
        "explorer.points.evaluated",
        "design points synthesized and simulated");
    static stats::Accumulator &stat_synth_time = stats::accumulator(
        "explorer.point.synth_time",
        "seconds synthesizing per design point");
    OTFT_TRACE_SCOPE("explorer.point.evaluate");
    diag::ScopedContext diag_ctx(
        diag::labelsWanted()
            ? "explorer.point.fe" + std::to_string(config.fetchWidth) +
                  ".alu" + std::to_string(config.aluPipes)
            : std::string());
    ++stat_points;

    // Key on everything that determines the result: library content,
    // STA + exploration config, and the full core configuration.
    cache::KeyHasher key;
    key.add("explorer.point-v1").add(libraryHash);
    const sta::StaConfig &sta = synthesizer.staConfig();
    key.add(sta.wireEnabled).add(sta.extraSpanPerNet);
    key.add(sta.registerInputs).add(sta.registerOutputs);
    key.add(sta.noWireMarginFraction).add(sta.spanCoefficient);
    key.add(synthesizer.loopSpanCoefficient);
    key.add(config_.instructions).add(config_.seed);
    key.add(config.fetchWidth).add(config.aluPipes);
    key.add(config.memPipes).add(config.branchPipes);
    for (int s : config.stages)
        key.add(s);
    key.add(config.robSize).add(config.iqSize).add(config.lsqSize);
    key.add(config.predictorBits);
    key.add(config.mulLatency).add(config.divLatency);
    key.add(config.l1Latency).add(config.l2Latency);
    key.add(config.memLatency);

    DesignPoint point;
    std::vector<double> payload;
    if (config_.useCache &&
        cache::lookup("explorer.point", key.digest(), payload) &&
        unpackDesignPoint(payload, config, point))
        return point;

    point.config = config;
    {
        stats::ScopedTimer timer(stat_synth_time);
        point.timing = synthesizer.synthesize(config);
    }
    point.ipc = measureIpc(config);
    point.meanIpc = mean(point.ipc);
    point.performance = point.meanIpc * point.timing.frequency;
    if (config_.useCache)
        cache::store("explorer.point", key.digest(),
                     packDesignPoint(point));
    return point;
}

DepthSweep
ArchExplorer::depthSweep(int max_stages)
{
    OTFT_TRACE_SCOPE("explorer.sweep.depth");
    DepthSweep sweep;
    sweep.libraryName = library.name();
    for (const auto &profile : workloads)
        sweep.workloadNames.push_back(profile.name);

    arch::CoreConfig config = arch::baselineConfig();
    if (config.totalStages() > max_stages)
        fatal("depthSweep: max_stages below the baseline depth");

    while (true) {
        sweep.points.push_back(evaluate(config));
        if (config.totalStages() >= max_stages)
            break;
        config = synth.deepen(config);
    }
    return sweep;
}

WidthSweep
ArchExplorer::widthSweep(int fe_min, int fe_max, int be_min, int be_max)
{
    OTFT_TRACE_SCOPE("explorer.sweep.width");
    WidthSweep sweep;
    sweep.libraryName = library.name();
    sweep.feMin = fe_min;
    sweep.feMax = fe_max;
    sweep.beMin = be_min;
    sweep.beMax = be_max;

    // Validate the whole grid before spawning any work.
    const arch::CoreConfig base = arch::baselineConfig();
    for (int be = be_min; be <= be_max; ++be)
        if (be - base.memPipes - base.branchPipes < 1)
            fatal("widthSweep: back-end width ", be,
                  " leaves no ALU pipes");

    // One task per flattened (be, fe) point. CoreSynthesizer keeps
    // internal memo caches, so each task synthesizes through its own
    // instance; the caches only skip recomputation, so the values
    // match the shared-synthesizer serial path bit for bit.
    const std::size_t n_fe =
        static_cast<std::size_t>(fe_max - fe_min + 1);
    const std::size_t n_be =
        static_cast<std::size_t>(be_max - be_min + 1);
    progress::Options popts;
    popts.label = "explorer.width_sweep";
    popts.total = n_be * n_fe;
    progress::Reporter reporter(popts);
    auto flat = parallel::orderedMap<DesignPoint>(
        n_be * n_fe, [&](std::size_t k) {
            const int be = be_min + static_cast<int>(k / n_fe);
            const int fe = fe_min + static_cast<int>(k % n_fe);
            arch::CoreConfig config = arch::baselineConfig();
            config.fetchWidth = fe;
            config.aluPipes =
                be - config.memPipes - config.branchPipes;
            CoreSynthesizer local(library, config_.sta);
            const std::int64_t t0 = stats::monotonicNowNs();
            DesignPoint point = evaluateWith(local, config);
            reporter.itemDone(
                static_cast<double>(stats::monotonicNowNs() - t0) *
                1e-9);
            return point;
        });
    reporter.done();

    for (std::size_t row = 0; row < n_be; ++row) {
        auto first = flat.begin() +
                     static_cast<std::ptrdiff_t>(row * n_fe);
        sweep.points.emplace_back(
            std::make_move_iterator(first),
            std::make_move_iterator(first +
                                    static_cast<std::ptrdiff_t>(n_fe)));
    }
    return sweep;
}

std::vector<AluPoint>
ArchExplorer::aluDepthSweep(const std::vector<int> &stages)
{
    const netlist::Netlist alu = netlist::bufferize(buildComplexAlu(),
                                                    6);
    sta::Pipeliner pipeliner(library, config_.sta);
    sta::StaEngine engine(library, config_.sta);

    // Pipeliner::pipeline and StaEngine::analyze are const, so the
    // stage-count tasks share both engines safely.
    return parallel::orderedMap<AluPoint>(
        stages.size(), [&](std::size_t i) {
            const int n = stages[i];
            const auto report = pipeliner.pipeline(alu, n);
            const auto sta = engine.analyze(report.netlist);
            AluPoint p;
            p.stages = n;
            p.frequency = sta.maxFrequency;
            p.area = sta.area;
            return p;
        });
}

} // namespace otft::core
