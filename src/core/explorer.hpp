/**
 * @file
 * Architecture exploration: the paper's evaluation experiments
 * (Sec. 5) as reusable drivers.
 *
 * Performance is IPC x clock frequency (paper Sec. 5.3/5.4); IPC
 * comes from the cycle-level core model on the seven workloads, and
 * frequency/area from the core synthesizer under a given technology
 * library. Depth sweeps deepen the baseline by repeatedly cutting the
 * critical stage under each library; width sweeps cover the paper's
 * front-end 1-6 x back-end 3-7 grid.
 */

#ifndef OTFT_CORE_EXPLORER_HPP
#define OTFT_CORE_EXPLORER_HPP

#include <string>
#include <vector>

#include "arch/core.hpp"
#include "core/synthesizer.hpp"
#include "workload/trace.hpp"

namespace otft::core {

/** One synthesized + simulated design point. */
struct DesignPoint
{
    arch::CoreConfig config;
    CoreTiming timing;
    /** IPC per workload (paperWorkloads() order). */
    std::vector<double> ipc;
    /** Mean IPC over workloads. */
    double meanIpc = 0.0;
    /** Mean performance = mean IPC x frequency, 1/s. */
    double performance = 0.0;
};

/** Result of a depth sweep (Fig. 11 / Fig. 15b). */
struct DepthSweep
{
    std::string libraryName;
    std::vector<DesignPoint> points; // one per total stage count
    std::vector<std::string> workloadNames;
};

/** Result of a width sweep (Fig. 13 / Fig. 14). */
struct WidthSweep
{
    std::string libraryName;
    /** points[be - beMin][fe - feMin]. */
    std::vector<std::vector<DesignPoint>> points;
    int feMin = 1, feMax = 6;
    int beMin = 3, beMax = 7;
};

/** One point of an ALU depth sweep (Fig. 12 / Fig. 15a). */
struct AluPoint
{
    int stages = 1;
    double frequency = 0.0;
    double area = 0.0;
};

/** Exploration controls. */
struct ExplorerConfig
{
    /** Instructions simulated per IPC measurement. */
    std::uint64_t instructions = 100000;
    /** Trace seed. */
    std::uint64_t seed = 7;
    /** STA configuration (wire on/off for Fig. 15). */
    sta::StaConfig sta = {};
    /**
     * Memoize design-point evaluations in the process-wide result
     * cache, keyed on the library content hash plus the full core and
     * solver configuration. Hits are returned verbatim, so sweeps are
     * bit-identical with the cache cold or warm.
     */
    bool useCache = true;
};

/** The exploration driver bound to one technology library. */
class ArchExplorer
{
  public:
    ArchExplorer(const liberty::CellLibrary &library,
                 ExplorerConfig config = {});

    /** Synthesize + simulate one configuration. */
    DesignPoint evaluate(const arch::CoreConfig &config);

    /**
     * The paper's depth sweep: start at the 9-stage baseline and cut
     * the critical stage until `max_stages` total stages.
     */
    DepthSweep depthSweep(int max_stages = 15);

    /** The paper's width sweep at baseline depth. */
    WidthSweep widthSweep(int fe_min = 1, int fe_max = 6,
                          int be_min = 3, int be_max = 7);

    /** ALU pipeline depth sweep (complex ALU standalone, Fig. 12). */
    std::vector<AluPoint> aluDepthSweep(const std::vector<int> &stages);

    /** IPC of a configuration on every paper workload. */
    std::vector<double> measureIpc(const arch::CoreConfig &config);

    CoreSynthesizer &synthesizer() { return synth; }

  private:
    /**
     * evaluate() against an explicit synthesizer. Parallel sweeps
     * evaluate through task-local CoreSynthesizer instances (its memo
     * caches are not concurrency-safe); caching only skips repeated
     * work, so the numbers match the shared-instance serial path.
     */
    DesignPoint evaluateWith(CoreSynthesizer &synthesizer,
                             const arch::CoreConfig &config);

    const liberty::CellLibrary &library;
    ExplorerConfig config_;
    CoreSynthesizer synth;
    std::vector<workload::BenchmarkProfile> workloads;
    /** library.contentHash(), computed once at construction. */
    std::uint64_t libraryHash = 0;
};

} // namespace otft::core

#endif // OTFT_CORE_EXPLORER_HPP
