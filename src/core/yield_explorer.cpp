#include "core/yield_explorer.hpp"

#include <algorithm>
#include <cmath>

#include "sta/corners.hpp"
#include "util/logging.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft::core {

double
YieldCurve::yieldAtFrequency(double frequency) const
{
    if (frequency <= 0.0)
        fatal("yieldAtFrequency: frequency must be > 0");
    const double period = 1.0 / frequency;
    if (periodSigma <= 0.0)
        return period >= meanPeriod ? 1.0 : 0.0;
    return sta::normalCdf((period - meanPeriod) / periodSigma);
}

double
YieldCurve::frequencyAtYield(double target_yield) const
{
    if (!(target_yield > 0.0 && target_yield < 1.0))
        fatal("frequencyAtYield: yield must lie in (0, 1), got ",
              target_yield);
    const double period =
        meanPeriod + sta::normalQuantile(target_yield) * periodSigma;
    if (period <= 0.0)
        fatal("frequencyAtYield: non-positive period at yield ",
              target_yield);
    return 1.0 / period;
}

YieldExplorer::YieldExplorer(const liberty::StatLibrary &stat,
                             YieldExplorerConfig config)
    : mean_(stat.mean), slow_(stat.slow),
      cornerSigma_(stat.cornerSigma), config_(config),
      meanExplorer_(mean_, config.explorer),
      slowExplorer_(slow_, config.explorer)
{
    if (!(config_.targetYield > 0.0 && config_.targetYield < 1.0))
        fatal("YieldExplorer: target yield must lie in (0, 1), got ",
              config_.targetYield);
    if (cornerSigma_ <= 0.0)
        fatal("YieldExplorer: statistical library has no corner "
              "deration (cornerSigma <= 0)");
}

YieldDesignPoint
YieldExplorer::combine(DesignPoint nominal,
                       const DesignPoint &slow) const
{
    YieldDesignPoint point;
    point.slowPeriod = slow.timing.clockPeriod;
    point.periodSigma =
        std::max(slow.timing.clockPeriod -
                     nominal.timing.clockPeriod,
                 0.0) /
        cornerSigma_;
    point.targetYield = config_.targetYield;
    const double period =
        nominal.timing.clockPeriod +
        sta::normalQuantile(config_.targetYield) * point.periodSigma;
    if (period <= 0.0)
        fatal("YieldExplorer: non-positive sign-off period");
    point.yieldFrequency = 1.0 / period;
    point.yieldPerformance = nominal.meanIpc * point.yieldFrequency;
    point.nominal = std::move(nominal);
    return point;
}

YieldDesignPoint
YieldExplorer::evaluate(const arch::CoreConfig &config)
{
    static stats::Counter &stat_points = stats::counter(
        "yield.points.evaluated",
        "design points evaluated at mean+slow corners");
    OTFT_TRACE_SCOPE("core.yield.evaluate");
    ++stat_points;
    DesignPoint nominal = meanExplorer_.evaluate(config);
    const DesignPoint slow = slowExplorer_.evaluate(config);
    return combine(std::move(nominal), slow);
}

YieldCurve
YieldExplorer::yieldCurve(const arch::CoreConfig &config, int n_points)
{
    if (n_points < 2)
        fatal("yieldCurve: need at least 2 points, got ", n_points);
    OTFT_TRACE_SCOPE("core.yield.curve");
    const YieldDesignPoint point = evaluate(config);

    YieldCurve curve;
    curve.libraryName = mean_.name();
    curve.config = point.nominal.config;
    curve.meanPeriod = point.nominal.timing.clockPeriod;
    curve.slowPeriod = point.slowPeriod;
    curve.periodSigma = point.periodSigma;
    curve.meanIpc = point.nominal.meanIpc;

    // Sweep the period over mean +- 3.5 sigma (clamped positive);
    // emitted in increasing frequency so the curve reads left to
    // right as "faster binning, lower yield".
    const double span = 3.5 * point.periodSigma;
    const double t_hi = curve.meanPeriod + span;
    const double t_lo =
        std::max(curve.meanPeriod - span, 0.05 * curve.meanPeriod);
    for (int i = 0; i < n_points; ++i) {
        const double t =
            t_hi + (t_lo - t_hi) * static_cast<double>(i) /
                       static_cast<double>(n_points - 1);
        YieldPoint yp;
        yp.frequency = 1.0 / t;
        yp.yield = curve.yieldAtFrequency(yp.frequency);
        curve.points.push_back(yp);
    }
    return curve;
}

YieldDepthSweep
YieldExplorer::depthSweepAtYield(int max_stages)
{
    OTFT_TRACE_SCOPE("core.yield.depth_sweep");
    const DepthSweep nominal = meanExplorer_.depthSweep(max_stages);
    YieldDepthSweep sweep;
    sweep.libraryName = mean_.name();
    sweep.targetYield = config_.targetYield;
    for (const DesignPoint &point : nominal.points) {
        const DesignPoint slow = slowExplorer_.evaluate(point.config);
        sweep.points.push_back(combine(point, slow));
    }
    return sweep;
}

YieldWidthSweep
YieldExplorer::widthSweepAtYield(int fe_min, int fe_max, int be_min,
                                 int be_max)
{
    OTFT_TRACE_SCOPE("core.yield.width_sweep");
    const WidthSweep nominal =
        meanExplorer_.widthSweep(fe_min, fe_max, be_min, be_max);
    YieldWidthSweep sweep;
    sweep.libraryName = mean_.name();
    sweep.targetYield = config_.targetYield;
    sweep.feMin = nominal.feMin;
    sweep.feMax = nominal.feMax;
    sweep.beMin = nominal.beMin;
    sweep.beMax = nominal.beMax;
    for (const auto &row : nominal.points) {
        std::vector<YieldDesignPoint> out_row;
        for (const DesignPoint &point : row) {
            const DesignPoint slow =
                slowExplorer_.evaluate(point.config);
            out_row.push_back(combine(point, slow));
        }
        sweep.points.push_back(std::move(out_row));
    }
    return sweep;
}

} // namespace otft::core
