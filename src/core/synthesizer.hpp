/**
 * @file
 * Core synthesis: maps a CoreConfig onto technology timing and area.
 *
 * For each pipeline region, the synthesizer builds the region's
 * combinational block (core/blocks.hpp), buffers high-fanout nets,
 * slices it into the configured number of stages with the
 * delay-balanced pipeliner, and runs STA under the target library.
 * The core's clock period is the worst region period; its area is the
 * sum of region areas plus the DFF-array cost of the core's storage
 * structures and the complex ALU (pipelined just deep enough to meet
 * the core clock, as a stallable DesignWare unit would be).
 *
 * Deepening reproduces the paper's methodology: "we synthesize the
 * baseline design and cut the stage which is on the critical path"
 * (Sec. 5.1) — deepen() adds one stage to whichever region currently
 * limits the clock under the *target library*, so organic and silicon
 * cores with the same stage count are cut in different places, as the
 * paper observes in Sec. 5.5.
 */

#ifndef OTFT_CORE_SYNTHESIZER_HPP
#define OTFT_CORE_SYNTHESIZER_HPP

#include <map>
#include <vector>

#include "arch/config.hpp"
#include "liberty/library.hpp"
#include "sta/pipeline.hpp"
#include "sta/sta.hpp"

namespace otft::core {

/** Timing/area of one synthesized region. */
struct RegionTiming
{
    arch::Region region = arch::Region::Fetch;
    int stages = 1;
    double clockPeriod = 0.0;
    double area = 0.0;
    std::size_t cells = 0;
};

/** Timing/area of a synthesized core. */
struct CoreTiming
{
    /** Minimum core clock period, seconds. */
    double clockPeriod = 0.0;
    /** Maximum frequency, hertz. */
    double frequency = 0.0;
    /** Total area (regions + storage + complex ALU), m^2. */
    double area = 0.0;
    /** The region limiting the clock. */
    arch::Region critical = arch::Region::Fetch;
    /** Stages chosen for the complex ALU to meet the core clock. */
    int complexAluStages = 1;
    /** Per-region detail. */
    std::vector<RegionTiming> regions;
};

/** Synthesizes cores against one library. */
class CoreSynthesizer
{
  public:
    CoreSynthesizer(const liberty::CellLibrary &library,
                    sta::StaConfig sta_config = {});

    /** Synthesize a configuration. */
    CoreTiming synthesize(const arch::CoreConfig &config);

    /**
     * One step of "cut the critical stage": returns the configuration
     * with one more stage in the region that limits the clock.
     */
    arch::CoreConfig deepen(const arch::CoreConfig &config);

    const liberty::CellLibrary &lib() const { return library; }
    const sta::StaConfig &staConfig() const { return staConfig_; }

    /**
     * Broadcast-span coefficient for the single-cycle loop floors:
     * loop nets route an extra loopSpanCoefficient * sqrt(core area).
     */
    double loopSpanCoefficient = 0.09;

  private:
    /** Bufferized combinational block, cached by (region, widths). */
    const netlist::Netlist &block(arch::Region region,
                                  const arch::CoreConfig &config);

    enum class LoopKind { Wakeup, Bypass };

    /** Bufferized loop netlist, cached by (kind, widths). */
    const netlist::Netlist &loopNetlist(LoopKind kind,
                                        const arch::CoreConfig &config);

    const liberty::CellLibrary &library;
    sta::StaConfig staConfig_;
    sta::StaEngine engine;
    sta::Pipeliner pipeliner;
    std::map<std::tuple<int, int, int>, netlist::Netlist> blockCache;
    std::map<std::tuple<int, int, int>, netlist::Netlist> loopCache;
    /** Region timing cached by (region, fetchWidth, aluPipes, stages). */
    std::map<std::tuple<int, int, int, int>, RegionTiming> timingCache;
    /** Complex ALU comb block (width-independent). */
    std::map<int, netlist::Netlist> aluCache;
    /** Complex ALU pipelined timing by stage count. */
    std::map<int, std::pair<double, double>> aluTimingCache;
};

} // namespace otft::core

#endif // OTFT_CORE_SYNTHESIZER_HPP
