#include "util/diag.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <ostream>

#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/profiler.hpp"
#include "util/stats_registry.hpp"

namespace otft::diag {

namespace {

/** The calling thread's context label. */
thread_local std::string t_context;

/** JSON number with the registry's non-finite policy (emit 0). */
void
writeNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    const auto precision = os.precision(17);
    os << v;
    os.precision(precision);
}

} // namespace

const char *
toString(SolveKind kind)
{
    return kind == SolveKind::Dc ? "dc" : "transient_step";
}

Collector &
Collector::instance()
{
    static Collector collector;
    return collector;
}

void
Collector::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
    if (!enabled)
        dumps_.store(false, std::memory_order_relaxed);
}

void
Collector::setDumpDirectory(const std::string &dir)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        dumpDir_ = dir;
    }
    if (dir.empty()) {
        dumps_.store(false, std::memory_order_relaxed);
        return;
    }
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("diag: cannot create dump dir '", dir, "': ",
              ec.message());
    enabled_.store(true, std::memory_order_relaxed);
    dumps_.store(true, std::memory_order_relaxed);
}

std::string
Collector::dumpDirectory() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dumpDir_;
}

void
Collector::setMaxDumps(std::size_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    maxDumps_ = n;
}

void
Collector::setAttribute(const std::string &key, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    attributes_[key] = value;
}

std::map<std::string, double>
Collector::attributes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return attributes_;
}

void
Collector::recordSolve(const std::string &context, SolveKind kind,
                       bool converged, int iterations,
                       int chord_iterations, int jacobian_refreshes,
                       int singular_recoveries, double final_residual)
{
    (void)kind;
    std::lock_guard<std::mutex> lock(mutex_);
    ContextStats &s = contexts_[context];
    ++s.solves;
    if (!converged) {
        ++s.failures;
        if (std::isfinite(final_residual))
            s.worstFinalResidual =
                std::max(s.worstFinalResidual, final_residual);
        else
            s.worstFinalResidual =
                std::numeric_limits<double>::infinity();
    } else {
        s.maxIterations = std::max(s.maxIterations, iterations);
    }
    s.iterations += static_cast<std::uint64_t>(iterations);
    s.chordIterations += static_cast<std::uint64_t>(chord_iterations);
    s.jacobianRefreshes +=
        static_cast<std::uint64_t>(jacobian_refreshes);
    s.singularRecoveries +=
        static_cast<std::uint64_t>(singular_recoveries);
}

void
Collector::recordEvent(const std::string &context, Event event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ContextStats &s = contexts_[context];
    switch (event) {
      case Event::StepAccept:
        ++s.stepAccepts;
        break;
      case Event::StepReject:
        ++s.stepRejects;
        break;
      case Event::NewtonRetry:
        ++s.newtonRetries;
        break;
      case Event::SourceStepping:
        ++s.sourceStepping;
        break;
      case Event::GminStepping:
        ++s.gminStepping;
        break;
    }
}

bool
Collector::recordDump(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (dumpPaths_.size() >= maxDumps_) {
        ++dumpsSkipped_;
        return false;
    }
    // Content-addressed dumps dedupe: the same failure registers once.
    if (std::find(dumpPaths_.begin(), dumpPaths_.end(), path) ==
        dumpPaths_.end())
        dumpPaths_.push_back(path);
    return true;
}

std::vector<std::string>
Collector::dumpPaths() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dumpPaths_;
}

ContextStats
Collector::contextStats(const std::string &context) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = contexts_.find(context);
    return it != contexts_.end() ? it->second : ContextStats{};
}

std::size_t
Collector::contextCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return contexts_.size();
}

void
Collector::dumpJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\n  \"schema\": \"" << diagSchema << "\",\n";

    os << "  \"attributes\": {";
    bool first = true;
    for (const auto &[key, value] : attributes_) {
        os << (first ? "" : ", ") << "\"" << json::escape(key)
           << "\": ";
        writeNumber(os, value);
        first = false;
    }
    os << "},\n";

    os << "  \"contexts\": {";
    first = true;
    for (const auto &[name, s] : contexts_) {
        os << (first ? "\n" : ",\n") << "    \""
           << json::escape(name.empty() ? "(unlabeled)" : name)
           << "\": {"
           << "\"solves\": " << s.solves
           << ", \"failures\": " << s.failures
           << ", \"iterations\": " << s.iterations
           << ", \"chord_iterations\": " << s.chordIterations
           << ", \"jacobian_refreshes\": " << s.jacobianRefreshes
           << ", \"singular_recoveries\": " << s.singularRecoveries
           << ", \"step_accepts\": " << s.stepAccepts
           << ", \"step_rejects\": " << s.stepRejects
           << ", \"newton_retries\": " << s.newtonRetries
           << ", \"source_stepping\": " << s.sourceStepping
           << ", \"gmin_stepping\": " << s.gminStepping
           << ", \"max_iterations\": " << s.maxIterations
           << ", \"worst_final_residual\": ";
        writeNumber(os, s.worstFinalResidual);
        os << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"dumps_skipped\": " << dumpsSkipped_ << ",\n";
    os << "  \"dumps\": [";
    for (std::size_t i = 0; i < dumpPaths_.size(); ++i)
        os << (i ? ", " : "") << "\"" << json::escape(dumpPaths_[i])
           << "\"";
    os << "]\n}\n";
}

void
Collector::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    contexts_.clear();
    dumpPaths_.clear();
    attributes_.clear();
    dumpsSkipped_ = 0;
}

void
recordEvent(Event event)
{
    Collector &c = Collector::instance();
    if (!c.enabled())
        return;
    c.recordEvent(ScopedContext::current(), event);
}

ScopedContext::ScopedContext(std::string label)
{
    if (label.empty())
        return;
    // The label doubles as one profiler stack frame, so a context is
    // pushed whenever either consumer wants labels (labelsWanted()).
    if (prof::enabled()) {
        prof::pushFrame(label);
        profPushed = true;
    }
    if (!enabled())
        return;
    saved = t_context;
    t_context = saved.empty() ? std::move(label)
                              : saved + "/" + label;
    pushed = true;
}

ScopedContext::~ScopedContext()
{
    if (pushed)
        t_context = std::move(saved);
    if (profPushed)
        prof::popFrame();
}

const std::string &
ScopedContext::current()
{
    return t_context;
}

bool
labelsWanted()
{
    return enabled() || prof::enabled();
}

SolveProbe::SolveProbe(SolveKind kind)
    : kind_(kind)
{
    Collector &c = Collector::instance();
    active_ = c.enabled();
    if (!active_)
        return;
    dumps_ = c.dumpsEnabled();
    context_ = ScopedContext::current();
    ring_.reserve(8);
}

SolveProbe::~SolveProbe()
{
    if (active_ && !closed_)
        finish(false);
}

void
SolveProbe::iteration(int iter, double residual_norm,
                      double max_update, bool chord)
{
    if (!active_)
        return;
    ++iterations_;
    if (chord)
        ++chordIterations_;
    finalResidual_ = residual_norm;
    const IterationSample sample{iter, residual_norm, max_update,
                                 chord};
    if (ring_.size() < ringCapacity) {
        ring_.push_back(sample);
    } else {
        ring_[ringNext_] = sample;
        ringNext_ = (ringNext_ + 1) % ringCapacity;
    }
}

void
SolveProbe::finish(bool converged)
{
    if (!active_ || closed_)
        return;
    closed_ = true;
    Collector::instance().recordSolve(
        context_, kind_, converged, iterations_, chordIterations_,
        refreshes_, recoveries_, finalResidual_);

    static stats::Counter &stat_failed_solves = stats::counter(
        "diag.solves_failed",
        "solves closed as failed while diagnostics were enabled");
    if (!converged)
        ++stat_failed_solves;
}

std::vector<IterationSample>
SolveProbe::trace() const
{
    std::vector<IterationSample> out;
    out.reserve(ring_.size());
    if (ring_.size() < ringCapacity) {
        out = ring_;
    } else {
        for (std::size_t i = 0; i < ring_.size(); ++i)
            out.push_back(ring_[(ringNext_ + i) % ring_.size()]);
    }
    return out;
}

} // namespace otft::diag
