/**
 * @file
 * Metrics time-series: a background sampler that snapshots the stats
 * registry every N ms and appends one JSON object per sample to a
 * JSONL stream (`--metrics-jsonl`), so post-hoc analysis sees cache
 * hit-rate, pool utilization, and solver counters *over the run*
 * rather than only the exit footer.
 *
 * Line schema ("otft-metrics-1"):
 *
 *     {"schema":"otft-metrics-1","seq":3,"t_ms":312.4,
 *      "scalars":{"circuit.newton.solves":812,...},
 *      "accumulators":{"time.liberty.build":{"count":..,"sum":..,
 *                      "min":..,"max":..,"mean":..},...},
 *      "histograms":{"circuit.newton.iterations_per_solve":
 *                    {"lo":..,"hi":..,"underflow":..,"overflow":..,
 *                     "p50":..,"p95":..,"bins":[..]},...}}
 *
 * Samples are cumulative (registry values, not deltas); consumers
 * difference adjacent lines for rates. Non-finite values serialize as
 * 0, matching the registry's own JSON policy, so every line parses
 * with util/json.
 *
 * One sampler per process (cli::Session starts and stops it). The
 * sampler thread wakes on a condition variable, so stop() is prompt
 * and always writes one final sample — short runs get at least two
 * lines (the start() baseline and the stop() final state).
 */

#ifndef OTFT_UTIL_METRICS_STREAM_HPP
#define OTFT_UTIL_METRICS_STREAM_HPP

#include <string>

#include "util/stats_registry.hpp"

namespace otft::metrics {

/** Schema tag carried on every JSONL line. */
inline constexpr const char *metricsSchema = "otft-metrics-1";

/**
 * Begin sampling into `path` every `period_ms` milliseconds (clamped
 * to >= 1). Truncates the file and writes a baseline sample
 * immediately. Starting twice without stop() restarts the stream.
 * Fatal when the path cannot be opened.
 */
void start(const std::string &path, int period_ms);

/** Write one final sample and stop the sampler (idempotent). */
void stop();

/** @return true while the sampler is running. */
bool sampling();

/** Force one sample right now (no-op unless sampling; for tests). */
void sampleNow();

/** Number of lines written since start() (for tests and footers). */
std::size_t sampleCount();

/**
 * Render one JSONL line (no trailing newline) from a snapshot.
 * Exposed so tests can validate the serialization and its NaN/Inf
 * policy without running the sampler thread.
 */
std::string formatSampleLine(const stats::Snapshot &snap,
                             std::size_t seq, double t_ms);

} // namespace otft::metrics

#endif // OTFT_UTIL_METRICS_STREAM_HPP
