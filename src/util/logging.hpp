/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: fatal() reports a user-caused condition
 * (bad configuration, invalid arguments) and throws a recoverable
 * exception; panic() reports a framework bug and aborts. inform() and
 * warn() print status without interrupting the run.
 */

#ifndef OTFT_UTIL_LOGGING_HPP
#define OTFT_UTIL_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace otft {

/** Exception thrown by fatal() for user-correctable errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail {

/** Fold a parameter pack into one message string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

void emitInform(const std::string &msg);
void emitWarn(const std::string &msg);
[[noreturn]] void emitFatal(const std::string &msg);
[[noreturn]] void emitPanic(const std::string &msg);

} // namespace detail

/** Print an informational status message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitInform(detail::formatMessage(std::forward<Args>(args)...));
}

/** Print a warning about questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitWarn(detail::formatMessage(std::forward<Args>(args)...));
}

/**
 * Report a user-caused error (bad configuration or arguments) and throw
 * FatalError. Callers that can recover may catch it; main() typically
 * lets it terminate the program with an error message.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitFatal(detail::formatMessage(std::forward<Args>(args)...));
}

/** Report an internal framework bug and abort(). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitPanic(detail::formatMessage(std::forward<Args>(args)...));
}

/** Output verbosity, lowest to highest. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2 };

/**
 * Suppress inform()/warn() output (used by tests to keep logs clean).
 * Quiet gates everything, including any OTFT_LOG_LEVEL override:
 * while quiet is set the effective level is Silent. Suppressed
 * warnings are still counted in the `log.warnings` stat.
 */
void setQuiet(bool quiet);

/** @return true when inform()/warn() output is suppressed. */
bool isQuiet();

/** Set the verbosity for non-quiet operation (default Info). */
void setLogLevel(LogLevel level);

/**
 * The level that currently applies: Silent when quiet is set,
 * otherwise the configured level. The first call reads the
 * OTFT_LOG_LEVEL environment variable ("silent"/"warn"/"info" or
 * 0/1/2) as the initial configured level.
 */
LogLevel effectiveLogLevel();

/** Parse an OTFT_LOG_LEVEL value; fallback on unrecognized input. */
LogLevel logLevelFromString(const std::string &text,
                            LogLevel fallback = LogLevel::Info);

namespace detail {

/** Re-read OTFT_LOG_LEVEL (test hook; startup reads it once). */
void reloadLogLevelFromEnv();

} // namespace detail

} // namespace otft

#endif // OTFT_UTIL_LOGGING_HPP
