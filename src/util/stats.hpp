/**
 * @file
 * Small numerical helpers shared across modules: summary statistics,
 * ordinary least squares regression, linear interpolation, and root
 * bracketing on sampled curves.
 */

#ifndef OTFT_UTIL_STATS_HPP
#define OTFT_UTIL_STATS_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace otft {

/** Result of an ordinary least squares line fit y = slope * x + intercept. */
struct LineFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination in [0, 1]. */
    double r2 = 0.0;

    /** Evaluate the fitted line. */
    double eval(double x) const { return slope * x + intercept; }

    /** Solve the fitted line for x given y. Requires slope != 0. */
    double solveFor(double y) const { return (y - intercept) / slope; }
};

/** Ordinary least squares over paired samples. Requires >= 2 points. */
LineFit fitLine(std::span<const double> xs, std::span<const double> ys);

/** Arithmetic mean. Requires a non-empty span. */
double mean(std::span<const double> xs);

/** Population standard deviation. Requires a non-empty span. */
double stddev(std::span<const double> xs);

/** Largest element. Requires a non-empty span. */
double maxValue(std::span<const double> xs);

/**
 * Piecewise-linear interpolation of y(x) on a sampled curve with
 * strictly increasing xs. Clamps outside the sampled range.
 */
double interpolate(std::span<const double> xs, std::span<const double> ys,
                   double x);

/**
 * Find all x where the sampled curve y(x) crosses the given level,
 * using linear interpolation inside each bracketing segment. xs must be
 * strictly increasing.
 */
std::vector<double> findCrossings(std::span<const double> xs,
                                  std::span<const double> ys, double level);

/**
 * Numerical derivative dy/dx of a sampled curve via central differences
 * (one-sided at the ends). Result has the same length as the inputs.
 */
std::vector<double> gradient(std::span<const double> xs,
                             std::span<const double> ys);

/** Linearly spaced samples from lo to hi inclusive. Requires n >= 2. */
std::vector<double> linspace(double lo, double hi, std::size_t n);

} // namespace otft

#endif // OTFT_UTIL_STATS_HPP
