#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace otft {

LineFit
fitLine(std::span<const double> xs, std::span<const double> ys)
{
    if (xs.size() != ys.size())
        fatal("fitLine: size mismatch (", xs.size(), " vs ", ys.size(), ")");
    if (xs.size() < 2)
        fatal("fitLine: need at least two points, got ", xs.size());

    const double n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
        syy += ys[i] * ys[i];
    }

    const double denom = n * sxx - sx * sx;
    if (std::abs(denom) < 1e-300)
        fatal("fitLine: degenerate x values (all equal)");

    LineFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    const double ss_tot = syy - sy * sy / n;
    if (ss_tot <= 0.0) {
        fit.r2 = 1.0;
    } else {
        double ss_res = 0.0;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const double e = ys[i] - fit.eval(xs[i]);
            ss_res += e * e;
        }
        fit.r2 = 1.0 - ss_res / ss_tot;
    }
    return fit;
}

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        fatal("mean: empty input");
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(std::span<const double> xs)
{
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size()));
}

double
maxValue(std::span<const double> xs)
{
    if (xs.empty())
        fatal("maxValue: empty input");
    return *std::max_element(xs.begin(), xs.end());
}

double
interpolate(std::span<const double> xs, std::span<const double> ys, double x)
{
    if (xs.size() != ys.size() || xs.empty())
        fatal("interpolate: bad inputs");
    if (x <= xs.front())
        return ys.front();
    if (x >= xs.back())
        return ys.back();
    // Binary search for the bracketing segment.
    auto it = std::upper_bound(xs.begin(), xs.end(), x);
    const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
    const std::size_t lo = hi - 1;
    const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    return ys[lo] + t * (ys[hi] - ys[lo]);
}

std::vector<double>
findCrossings(std::span<const double> xs, std::span<const double> ys,
              double level)
{
    if (xs.size() != ys.size())
        fatal("findCrossings: size mismatch");
    std::vector<double> out;
    for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
        const double a = ys[i] - level;
        const double b = ys[i + 1] - level;
        if (a == 0.0) {
            out.push_back(xs[i]);
        } else if (a * b < 0.0) {
            const double t = a / (a - b);
            out.push_back(xs[i] + t * (xs[i + 1] - xs[i]));
        }
    }
    if (!ys.empty() && ys.back() == level)
        out.push_back(xs.back());
    return out;
}

std::vector<double>
gradient(std::span<const double> xs, std::span<const double> ys)
{
    if (xs.size() != ys.size() || xs.size() < 2)
        fatal("gradient: need >= 2 samples");
    const std::size_t n = xs.size();
    std::vector<double> g(n);
    g[0] = (ys[1] - ys[0]) / (xs[1] - xs[0]);
    g[n - 1] = (ys[n - 1] - ys[n - 2]) / (xs[n - 1] - xs[n - 2]);
    for (std::size_t i = 1; i + 1 < n; ++i)
        g[i] = (ys[i + 1] - ys[i - 1]) / (xs[i + 1] - xs[i - 1]);
    return g;
}

std::vector<double>
linspace(double lo, double hi, std::size_t n)
{
    if (n < 2)
        fatal("linspace: need n >= 2, got ", n);
    std::vector<double> out(n);
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = lo + step * static_cast<double>(i);
    out.back() = hi;
    return out;
}

} // namespace otft
