/**
 * @file
 * Deterministic random number generation.
 *
 * The framework never uses std::random_device or global state: every
 * stochastic component (process variation, measurement noise, workload
 * trace synthesis) owns an Rng seeded explicitly, so experiments are
 * reproducible bit-for-bit across runs and platforms.
 */

#ifndef OTFT_UTIL_RNG_HPP
#define OTFT_UTIL_RNG_HPP

#include <cmath>
#include <cstdint>

namespace otft {

/**
 * xoshiro256** PRNG (Blackman & Vigna). Small, fast, and with
 * well-understood statistical quality; state is four 64-bit words.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** @return next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** @return uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        // Rejection-free multiply-shift; bias is negligible for n << 2^64.
        return static_cast<std::uint64_t>(uniform() * static_cast<double>(n));
    }

    /** @return standard normal deviate (Box-Muller, one value per call). */
    double
    normal()
    {
        if (haveSpare) {
            haveSpare = false;
            return spare;
        }
        double u1 = 0.0;
        while (u1 <= 1e-300)
            u1 = uniform();
        const double u2 = uniform();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        constexpr double two_pi = 6.283185307179586476925286766559;
        spare = mag * std::sin(two_pi * u2);
        haveSpare = true;
        return mag * std::cos(two_pi * u2);
    }

    /** @return normal deviate with the given mean and std deviation. */
    double
    normal(double mean, double sigma)
    {
        return mean + sigma * normal();
    }

    /** @return true with probability p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric-ish positive integer with the given mean (>= 1).
     * Used for dependency distances and run lengths in trace synthesis.
     */
    std::uint64_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        const double p = 1.0 / mean;
        double u = 0.0;
        while (u <= 1e-300)
            u = uniform();
        const double v = std::log(u) / std::log(1.0 - p);
        return 1 + static_cast<std::uint64_t>(v);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4] = {};
    double spare = 0.0;
    bool haveSpare = false;
};

} // namespace otft

#endif // OTFT_UTIL_RNG_HPP
