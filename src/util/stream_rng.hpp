/**
 * @file
 * Counter-based, stream-splittable deterministic random numbers.
 *
 * The Monte Carlo layers need a property the sequential xoshiro Rng
 * cannot give them: every sample (and every device inside a sample)
 * must draw the *same* values no matter which worker thread computes
 * it, how the index space is chunked, or in what order samples run.
 * StreamRng provides that by construction: a stream is identified by
 * a (seed, key) pair, the key is derived from a stable instance path
 * string ("mc/sample/7/cell/nand2"), and the i-th draw of a stream is
 * a pure function of (seed, key, i) — a splitmix64-style finalizer
 * applied to a per-stream base plus a Weyl-sequence counter. There is
 * no shared state, so substreams can be created on any thread at any
 * time and results are bit-identical across `--jobs` and chunking.
 */

#ifndef OTFT_UTIL_STREAM_RNG_HPP
#define OTFT_UTIL_STREAM_RNG_HPP

#include <cmath>
#include <cstdint>
#include <string>

namespace otft {

/**
 * Stable 64-bit key for an instance path. FNV-1a over the bytes, so
 * the key depends only on the string — rebuilding a circuit or
 * re-running a sweep yields the same keys and therefore the same
 * draws.
 */
inline std::uint64_t
streamKey(const std::string &path)
{
    std::uint64_t h = 1469598103934665603ULL; // FNV offset basis
    for (unsigned char c : path) {
        h ^= c;
        h *= 1099511628211ULL; // FNV prime
    }
    return h;
}

/**
 * A counter-based random stream. Copyable; copies continue the draw
 * sequence independently from the copy point.
 */
class StreamRng
{
  public:
    /** Root stream of a seed (key 0). */
    explicit StreamRng(std::uint64_t seed = 1)
        : StreamRng(seed, std::uint64_t{0})
    {}

    /** Stream (seed, key). Distinct keys give independent streams. */
    StreamRng(std::uint64_t seed, std::uint64_t key)
    {
        // Two finalizer rounds decorrelate the base from both inputs;
        // seed and key enter asymmetrically so (a, b) != (b, a).
        base = mix(mix(seed + 0x9e3779b97f4a7c15ULL) ^
                   mix(key * 0xbf58476d1ce4e5b9ULL + 1));
    }

    /** Stream keyed by a stable instance path. */
    StreamRng(std::uint64_t seed, const std::string &path)
        : StreamRng(seed, streamKey(path))
    {}

    /**
     * Child stream keyed by a path segment, independent of this
     * stream's draw position (deriving a substream never consumes or
     * depends on draws).
     */
    StreamRng
    substream(const std::string &path) const
    {
        return StreamRng(base, streamKey(path));
    }

    /** Child stream keyed by an index (sample number, device slot). */
    StreamRng
    substream(std::uint64_t index) const
    {
        return StreamRng(base, index * 0x9e3779b97f4a7c15ULL + 1);
    }

    /** @return next raw 64-bit value: mix(base + i * odd-constant). */
    std::uint64_t
    next()
    {
        const std::uint64_t v =
            mix(base + (++counter) * 0x9e3779b97f4a7c15ULL);
        return v;
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** @return standard normal deviate (Box-Muller, cached spare). */
    double
    normal()
    {
        if (haveSpare) {
            haveSpare = false;
            return spare;
        }
        double u1 = 0.0;
        while (u1 <= 1e-300)
            u1 = uniform();
        const double u2 = uniform();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        constexpr double two_pi = 6.283185307179586476925286766559;
        spare = mag * std::sin(two_pi * u2);
        haveSpare = true;
        return mag * std::cos(two_pi * u2);
    }

    /** @return normal deviate with the given mean and std deviation. */
    double
    normal(double mean, double sigma)
    {
        return mean + sigma * normal();
    }

    /** Draws consumed from this stream so far. */
    std::uint64_t position() const { return counter; }

  private:
    /** splitmix64 finalizer (Stafford mix13 constants). */
    static std::uint64_t
    mix(std::uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t base = 0;
    std::uint64_t counter = 0;
    double spare = 0.0;
    bool haveSpare = false;
};

} // namespace otft

#endif // OTFT_UTIL_STREAM_RNG_HPP
