#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hpp"

namespace otft {

Table::Table(std::vector<std::string> headers)
    : headers(std::move(headers))
{
}

Table &
Table::row()
{
    rows.emplace_back();
    return *this;
}

Table &
Table::add(std::string cell)
{
    if (rows.empty())
        fatal("Table::add called before Table::row");
    rows.back().push_back(std::move(cell));
    return *this;
}

Table &
Table::add(double value, int precision)
{
    return add(formatNumber(value, precision));
}

Table &
Table::add(long long value)
{
    return add(std::to_string(value));
}

void
Table::render(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &r : rows)
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &s = c < cells.size() ? cells[c] : "";
            os << s;
            if (c + 1 < widths.size())
                os << std::string(widths[c] - s.size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &r : rows)
        emit_row(r);
}

void
Table::renderCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << ',';
        }
        os << '\n';
    };
    emit_row(headers);
    for (const auto &r : rows)
        emit_row(r);
}

std::string
formatNumber(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    return buf;
}

std::string
formatSi(double value, const std::string &unit, int precision)
{
    struct Prefix { double scale; const char *symbol; };
    static const Prefix prefixes[] = {
        {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
        {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
        {1e-15, "f"}, {1e-18, "a"},
    };
    if (value == 0.0)
        return "0 " + unit;
    const double mag = std::abs(value);
    for (const auto &p : prefixes) {
        if (mag >= p.scale) {
            return formatNumber(value / p.scale, precision) + " " +
                   p.symbol + unit;
        }
    }
    return formatNumber(value, precision) + " " + unit;
}

} // namespace otft
