#include "util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <sstream>

#include "util/logging.hpp"

namespace otft::json {

const char *
toString(Kind kind)
{
    switch (kind) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return "bool";
      case Kind::Number:
        return "number";
      case Kind::String:
        return "string";
      case Kind::Array:
        return "array";
      case Kind::Object:
        return "object";
    }
    return "?";
}

namespace {

[[noreturn]] void
kindError(const char *wanted, Kind got)
{
    fatal("json: expected a ", wanted, ", value is ", toString(got));
}

} // namespace

bool
Value::asBool() const
{
    if (kind_ != Kind::Bool)
        kindError("bool", kind_);
    return bool_;
}

double
Value::asNumber() const
{
    if (kind_ != Kind::Number)
        kindError("number", kind_);
    return number_;
}

const std::string &
Value::asString() const
{
    if (kind_ != Kind::String)
        kindError("string", kind_);
    return string_;
}

const std::vector<Value> &
Value::asArray() const
{
    if (kind_ != Kind::Array)
        kindError("array", kind_);
    return array_;
}

const std::map<std::string, Value> &
Value::asObject() const
{
    if (kind_ != Kind::Object)
        kindError("object", kind_);
    return object_;
}

bool
Value::has(const std::string &key) const
{
    return kind_ == Kind::Object &&
           object_.find(key) != object_.end();
}

const Value &
Value::at(const std::string &key) const
{
    const auto &members = asObject();
    auto it = members.find(key);
    if (it == members.end())
        fatal("json: missing member '", key, "'");
    return it->second;
}

double
Value::number(const std::string &key, double fallback) const
{
    return has(key) ? at(key).asNumber() : fallback;
}

std::string
Value::string(const std::string &key, const std::string &fallback) const
{
    return has(key) ? at(key).asString() : fallback;
}

Value
Value::makeNull()
{
    return Value();
}

Value
Value::makeBool(bool b)
{
    Value v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::makeNumber(double n)
{
    Value v;
    v.kind_ = Kind::Number;
    v.number_ = n;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

Value
Value::makeArray(std::vector<Value> items)
{
    Value v;
    v.kind_ = Kind::Array;
    v.array_ = std::move(items);
    return v;
}

Value
Value::makeObject(std::map<std::string, Value> members)
{
    Value v;
    v.kind_ = Kind::Object;
    v.object_ = std::move(members);
    return v;
}

namespace {

struct Parser
{
    std::istream &is;
    /** Current container nesting depth (recursion guard). */
    int depth = 0;

    void
    skipWs()
    {
        while (std::isspace(is.peek()))
            is.get();
    }

    int
    peek()
    {
        skipWs();
        return is.peek();
    }

    void
    expect(char c)
    {
        skipWs();
        const int got = is.get();
        if (got != c)
            fatal("json: expected '", c, "', got ",
                  got < 0 ? std::string("EOF")
                          : std::string(1, static_cast<char>(got)));
    }

    void
    expectWord(const char *word)
    {
        for (const char *p = word; *p; ++p)
            if (is.get() != *p)
                fatal("json: bad literal (expected '", word, "')");
    }

    std::string
    parseString()
    {
        expect('"');
        std::string s;
        while (true) {
            const int c = is.get();
            if (c < 0)
                fatal("json: unterminated string");
            if (c == '"')
                return s;
            if (c != '\\') {
                s.push_back(static_cast<char>(c));
                continue;
            }
            const int esc = is.get();
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                s.push_back(static_cast<char>(esc));
                break;
              case 'n':
                s.push_back('\n');
                break;
              case 't':
                s.push_back('\t');
                break;
              case 'r':
                s.push_back('\r');
                break;
              case 'b':
                s.push_back('\b');
                break;
              case 'f':
                s.push_back('\f');
                break;
              case 'u': {
                // Decode \uXXXX; non-ASCII code points are emitted as
                // UTF-8 (surrogate pairs are not recombined — the
                // documents this reader consumes are ASCII).
                int code = 0;
                for (int k = 0; k < 4; ++k) {
                    const int h = is.get();
                    if (!std::isxdigit(h))
                        fatal("json: bad \\u escape");
                    code = code * 16 +
                           (std::isdigit(h)
                                ? h - '0'
                                : std::tolower(h) - 'a' + 10);
                }
                if (code < 0x80) {
                    s.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    s.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    s.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    s.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    s.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    s.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                fatal("json: unknown escape '\\",
                      std::string(1, static_cast<char>(esc)), "'");
            }
        }
    }

    /**
     * Strict JSON number grammar: -?int(.frac)?([eE][+-]?digits)?.
     * Stream double extraction is looser (it takes "+5", hex floats,
     * and the platform's inf/nan spellings), and JSON has none of
     * those — notably no non-finite numbers.
     */
    Value
    parseNumber()
    {
        std::string token;
        if (is.peek() == '-')
            token += static_cast<char>(is.get());
        if (!std::isdigit(is.peek()))
            fatal("json: bad number");
        while (std::isdigit(is.peek()))
            token += static_cast<char>(is.get());
        if (is.peek() == '.') {
            token += static_cast<char>(is.get());
            if (!std::isdigit(is.peek()))
                fatal("json: bad number (empty fraction)");
            while (std::isdigit(is.peek()))
                token += static_cast<char>(is.get());
        }
        if (is.peek() == 'e' || is.peek() == 'E') {
            token += static_cast<char>(is.get());
            if (is.peek() == '+' || is.peek() == '-')
                token += static_cast<char>(is.get());
            if (!std::isdigit(is.peek()))
                fatal("json: bad number (empty exponent)");
            while (std::isdigit(is.peek()))
                token += static_cast<char>(is.get());
        }
        return Value::makeNumber(std::strtod(token.c_str(), nullptr));
    }

    Value
    parseValue()
    {
        const int c = peek();
        if (c < 0)
            fatal("json: unexpected EOF");
        if ((c == '{' || c == '[') && ++depth > maxDepth)
            fatal("json: nesting deeper than ", maxDepth, " levels");
        switch (c) {
          case '{': {
            is.get();
            std::map<std::string, Value> members;
            if (peek() == '}') {
                is.get();
                --depth;
                return Value::makeObject(std::move(members));
            }
            while (true) {
                std::string key = parseString();
                expect(':');
                members[std::move(key)] = parseValue();
                skipWs();
                const int sep = is.get();
                if (sep == '}')
                    break;
                if (sep != ',')
                    fatal("json: expected ',' or '}' in object");
            }
            --depth;
            return Value::makeObject(std::move(members));
          }
          case '[': {
            is.get();
            std::vector<Value> items;
            if (peek() == ']') {
                is.get();
                --depth;
                return Value::makeArray(std::move(items));
            }
            while (true) {
                items.push_back(parseValue());
                skipWs();
                const int sep = is.get();
                if (sep == ']')
                    break;
                if (sep != ',')
                    fatal("json: expected ',' or ']' in array");
            }
            --depth;
            return Value::makeArray(std::move(items));
          }
          case '"':
            return Value::makeString(parseString());
          case 't':
            expectWord("true");
            return Value::makeBool(true);
          case 'f':
            expectWord("false");
            return Value::makeBool(false);
          case 'n':
            expectWord("null");
            return Value::makeNull();
          default: {
            if (c != '-' && !std::isdigit(c))
                fatal("json: expected a value, got '",
                      std::string(1, static_cast<char>(c)), "'");
            return parseNumber();
          }
        }
    }
};

} // namespace

Value
parse(std::istream &is)
{
    Parser parser{is};
    return parser.parseValue();
}

Value
parse(const std::string &text)
{
    std::istringstream iss(text);
    Value v = parse(iss);
    // A complete string must hold exactly one document.
    while (std::isspace(iss.peek()))
        iss.get();
    if (iss.peek() >= 0)
        fatal("json: trailing content after document");
    return v;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace otft::json
