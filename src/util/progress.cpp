#include "util/progress.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hpp"
#include "util/stats_registry.hpp"

namespace otft::progress {

namespace {

/** Keep at most this many durations for the median estimate. */
constexpr std::size_t maxDurations = 4096;

/** Minimum window folded into the rate EWMA (jitter floor). */
constexpr double minRateWindowS = 0.05;

enum class Policy { Off, ForcedOn, TtyOnly };

Policy
policy()
{
    static const Policy p = [] {
        const char *env = std::getenv("OTFT_PROGRESS");
        if (env && std::string(env) == "0")
            return Policy::Off;
        if (env && std::string(env) == "1")
            return Policy::ForcedOn;
        return Policy::TtyOnly;
    }();
    return p;
}

bool
stderrIsTty()
{
    static const bool tty = isatty(fileno(stderr)) != 0;
    return tty;
}

double
watchdogMultipleOverride(double fallback)
{
    const char *env = std::getenv("OTFT_WATCHDOG_MULT");
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env)
        return fallback;
    return v;
}

std::string
formatEta(double seconds)
{
    if (seconds < 0.0)
        return "--";
    std::ostringstream oss;
    const auto s = static_cast<long>(seconds + 0.5);
    if (s >= 3600)
        oss << s / 3600 << "h" << (s % 3600) / 60 << "m";
    else if (s >= 60)
        oss << s / 60 << "m" << s % 60 << "s";
    else
        oss << s << "s";
    return oss.str();
}

} // namespace

bool
enabled()
{
    switch (policy()) {
      case Policy::Off:
        return false;
      case Policy::ForcedOn:
        return true;
      case Policy::TtyOnly:
        return stderrIsTty();
    }
    return false;
}

Reporter::Reporter(Options options)
    : options_(std::move(options)), startNs_(stats::monotonicNowNs()),
      renders_(enabled()), tty_(stderrIsTty()), lastRateNs_(startNs_)
{
    options_.watchdogMultiple =
        watchdogMultipleOverride(options_.watchdogMultiple);
}

Reporter::~Reporter()
{
    done();
}

void
Reporter::itemDone(double duration_s)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    ++pendingItems_;
    updateRateLocked();

    if (duration_s > 0.0 && options_.watchdogMultiple > 0.0) {
        if (durations_.size() >= options_.watchdogMinSamples) {
            const double median = medianLocked();
            if (median > 0.0 &&
                duration_s > options_.watchdogMultiple * median) {
                ++watchdogFlags_;
                static stats::Counter &stat_flags = stats::counter(
                    "progress.watchdog_flags",
                    "tasks slower than the watchdog multiple of the "
                    "median task time");
                ++stat_flags;
                warn(options_.label, ": slow task: ", duration_s,
                     " s vs median ", median, " s (item ", completed_,
                     options_.total ? "/" : "",
                     options_.total ? std::to_string(options_.total)
                                    : std::string(),
                     ")");
            }
        }
        if (durations_.size() < maxDurations)
            durations_.push_back(duration_s);
    }

    if (renders_)
        maybeRenderLocked();
}

void
Reporter::done()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_)
        return;
    finished_ = true;
    if (!renders_ || completed_ == 0)
        return;
    if (tty_)
        std::fprintf(stderr, "\r%s\n", lineLocked().c_str());
    else
        std::fprintf(stderr, "%s\n", lineLocked().c_str());
}

std::size_t
Reporter::completed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
}

std::uint64_t
Reporter::watchdogFlags() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return watchdogFlags_;
}

std::string
Reporter::line() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lineLocked();
}

/**
 * Fold the items finished since the last window into the EWMA with a
 * time-based weight, alpha = 1 - exp(-dt / tau): irregular arrival
 * gaps get proportionally more weight, so the smoothed rate is
 * independent of how bursty the ticks are. Windows shorter than
 * minRateWindowS accumulate (a pool retiring a whole chunk at once
 * must count as one burst, not N infinite instantaneous rates).
 */
void
Reporter::updateRateLocked()
{
    if (options_.rateTauS <= 0.0)
        return;
    const std::int64_t now = stats::monotonicNowNs();
    const double dt = static_cast<double>(now - lastRateNs_) * 1e-9;
    if (dt < minRateWindowS)
        return;
    const double inst = static_cast<double>(pendingItems_) / dt;
    if (!ewmaInit_) {
        ewmaRate_ = inst;
        ewmaInit_ = true;
    } else {
        const double alpha = 1.0 - std::exp(-dt / options_.rateTauS);
        ewmaRate_ += alpha * (inst - ewmaRate_);
    }
    pendingItems_ = 0;
    lastRateNs_ = now;
}

double
Reporter::smoothedRate() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ewmaInit_ ? ewmaRate_ : 0.0;
}

std::string
Reporter::lineLocked() const
{
    const double elapsed =
        static_cast<double>(stats::monotonicNowNs() - startNs_) * 1e-9;
    // In-flight lines show the EWMA-smoothed rate (steadier ETA); the
    // final summary keeps the honest whole-run average.
    const double raw =
        elapsed > 0.0 ? static_cast<double>(completed_) / elapsed : 0.0;
    const double rate = !finished_ && ewmaInit_ ? ewmaRate_ : raw;

    std::ostringstream oss;
    oss << options_.label << ": " << completed_;
    if (options_.total) {
        oss << "/" << options_.total;
        const double pct = 100.0 * static_cast<double>(completed_) /
                           static_cast<double>(options_.total);
        oss << " (" << static_cast<int>(pct) << "%)";
    }
    oss.precision(3);
    oss << " " << rate << "/s";
    if (options_.total && rate > 0.0 && completed_ < options_.total) {
        const double remaining =
            static_cast<double>(options_.total - completed_) / rate;
        oss << " eta " << formatEta(remaining);
    }
    return oss.str();
}

double
Reporter::medianLocked() const
{
    if (durations_.empty())
        return 0.0;
    std::vector<double> copy = durations_;
    const std::size_t mid = copy.size() / 2;
    std::nth_element(copy.begin(), copy.begin() + mid, copy.end());
    return copy[mid];
}

void
Reporter::maybeRenderLocked()
{
    if (tty_) {
        const std::int64_t now = stats::monotonicNowNs();
        const auto min_ns = static_cast<std::int64_t>(
            options_.minRedrawIntervalS * 1e9);
        if (now - lastRenderNs_ < min_ns)
            return;
        lastRenderNs_ = now;
        std::fprintf(stderr, "\r%s\033[K", lineLocked().c_str());
        std::fflush(stderr);
        return;
    }
    // Non-TTY (forced on): one full line per completed decile, so a
    // captured log shows coarse progress without redraw control codes.
    if (!options_.total)
        return;
    const std::size_t decile =
        completed_ * 10 / options_.total;
    if (decile > lastDecile_ && completed_ < options_.total) {
        lastDecile_ = decile;
        std::fprintf(stderr, "%s\n", lineLocked().c_str());
    }
}

} // namespace otft::progress
