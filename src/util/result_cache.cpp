#include "util/result_cache.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft::cache {

namespace {

/** Schema tag of the persisted cache file. */
constexpr const char *cacheSchema = "otft-result-cache-1";
constexpr const char *cacheFileName = "result_cache.json";

stats::Counter &
statHits()
{
    static stats::Counter &c =
        stats::counter("cache.hits", "result-cache lookups that hit");
    return c;
}

stats::Counter &
statMisses()
{
    static stats::Counter &c = stats::counter(
        "cache.misses", "result-cache lookups that missed");
    return c;
}

stats::Counter &
statEvictions()
{
    static stats::Counter &c = stats::counter(
        "cache.evictions", "result-cache entries evicted (LRU)");
    return c;
}

/**
 * Mark a cache decision on the Chrome timeline as an instant-like
 * zero-width slice, so hit/miss/evict bursts line up with the sweep
 * slices around them. Names must be literals: the trace ring stores
 * the pointer, not a copy.
 */
void
traceCacheEvent(const char *name)
{
    if (!trace::collecting())
        return;
    const std::int64_t now = stats::monotonicNowNs();
    trace::recordEvent(name, now, now);
}

std::string
compositeKey(const std::string &domain, std::uint64_t key)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(key));
    return domain + ":" + hex;
}

} // namespace

KeyHasher &
KeyHasher::add(const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        state ^= bytes[i];
        state *= 1099511628211ull; // FNV prime
    }
    return *this;
}

KeyHasher &
KeyHasher::add(double v)
{
    if (v == 0.0)
        v = 0.0; // collapse -0.0 and +0.0 to one key
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return add(&bits, sizeof(bits));
}

KeyHasher &
KeyHasher::add(std::uint64_t v)
{
    return add(&v, sizeof(v));
}

KeyHasher &
KeyHasher::add(std::int64_t v)
{
    return add(&v, sizeof(v));
}

KeyHasher &
KeyHasher::add(const std::string &s)
{
    add(static_cast<std::uint64_t>(s.size()));
    return add(s.data(), s.size());
}

KeyHasher &
KeyHasher::add(const std::vector<double> &vs)
{
    add(static_cast<std::uint64_t>(vs.size()));
    for (double v : vs)
        add(v);
    return *this;
}

ResultCache::ResultCache() = default;

ResultCache &
ResultCache::instance()
{
    static ResultCache cache;
    return cache;
}

void
ResultCache::setEnabled(bool enabled)
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_ = enabled;
}

bool
ResultCache::enabled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return enabled_;
}

void
ResultCache::setCapacity(std::size_t max_entries)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = max_entries > 0 ? max_entries : 1;
    evictLocked();
}

void
ResultCache::setDirectory(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    dir_ = dir;
    if (dir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        fatal("result_cache: cannot create cache dir '", dir_,
              "': ", ec.message());
    loadLocked();
}

const std::string &
ResultCache::directory() const
{
    // dir_ only changes under the lock, but returning a reference is
    // safe: configuration happens once at session start.
    return dir_;
}

bool
ResultCache::lookup(const std::string &domain, std::uint64_t key,
                    std::vector<double> &out)
{
    OTFT_TRACE_SCOPE("cache.lookup");
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_) {
        ++statMisses();
        traceCacheEvent("cache.miss");
        return false;
    }
    const auto it = entries.find(compositeKey(domain, key));
    if (it == entries.end()) {
        ++statMisses();
        traceCacheEvent("cache.miss");
        return false;
    }
    // Refresh LRU position.
    lru.splice(lru.begin(), lru, it->second.lruPos);
    out = it->second.values;
    ++statHits();
    traceCacheEvent("cache.hit");
    return true;
}

void
ResultCache::store(const std::string &domain, std::uint64_t key,
                   std::vector<double> values)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_)
        return;
    const std::string composite = compositeKey(domain, key);
    const auto it = entries.find(composite);
    if (it != entries.end()) {
        // Deterministic producers always store the same payload;
        // overwrite keeps the cache correct even if a producer is
        // versioned without a salt bump.
        it->second.values = std::move(values);
        lru.splice(lru.begin(), lru, it->second.lruPos);
        return;
    }
    lru.push_front(composite);
    entries.emplace(composite,
                    Entry{std::move(values), lru.begin()});
    evictLocked();
}

void
ResultCache::evictLocked()
{
    while (entries.size() > capacity_) {
        entries.erase(lru.back());
        lru.pop_back();
        ++statEvictions();
        traceCacheEvent("cache.evict");
    }
}

void
ResultCache::loadLocked()
{
    const std::string path =
        (std::filesystem::path(dir_) / cacheFileName).string();
    std::ifstream is(path);
    if (!is)
        return; // no persisted cache yet
    std::stringstream buffer;
    buffer << is.rdbuf();

    // A mangled cache file must never abort a run: the cache is an
    // optimization, so parse failures log and behave as a miss.
    json::Value doc;
    try {
        doc = json::parse(buffer.str());
    } catch (const FatalError &e) {
        warn("result_cache: ignoring corrupt ", path, " (", e.what(),
             ")");
        return;
    }
    try {
        if (!doc.isObject() ||
            doc.string("schema") != cacheSchema) {
            warn("result_cache: ignoring ", path,
                 " (unrecognized schema)");
            return;
        }
        if (!doc.has("entries"))
            return;
        std::size_t loaded = 0;
        for (const auto &[composite, value] :
             doc.at("entries").asObject()) {
            if (!value.isArray())
                continue; // skip malformed entries, keep the rest
            std::vector<double> values;
            bool ok = true;
            for (const auto &item : value.asArray()) {
                if (!item.isNumber()) {
                    ok = false;
                    break;
                }
                values.push_back(item.asNumber());
            }
            if (!ok)
                continue;
            lru.push_front(composite);
            entries.emplace(composite,
                            Entry{std::move(values), lru.begin()});
            ++loaded;
        }
        evictLocked();
        static stats::Counter &stat_loaded = stats::counter(
            "cache.disk_loaded", "result-cache entries loaded from disk");
        stat_loaded += loaded;
        inform("result_cache: loaded ", loaded, " entries from ", path);
    } catch (const FatalError &e) {
        warn("result_cache: ignoring malformed ", path, " (", e.what(),
             ")");
    }
}

void
ResultCache::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (dir_.empty())
        return;
    const std::string path =
        (std::filesystem::path(dir_) / cacheFileName).string();
    std::ofstream os(path);
    if (!os) {
        warn("result_cache: cannot write ", path);
        return;
    }
    os << "{\"schema\": \"" << cacheSchema << "\", \"entries\": {";
    bool first = true;
    char buffer[40];
    for (const auto &[composite, entry] : entries) {
        // Non-finite payloads have no JSON spelling; keep them
        // in-memory only rather than corrupting the file.
        bool finite = true;
        for (double v : entry.values)
            finite = finite && std::isfinite(v);
        if (!finite)
            continue;
        os << (first ? "" : ", ") << "\"" << json::escape(composite)
           << "\": [";
        first = false;
        for (std::size_t i = 0; i < entry.values.size(); ++i) {
            // %.17g round-trips binary64 exactly, preserving the
            // bit-identical determinism contract across persistence.
            std::snprintf(buffer, sizeof(buffer), "%.17g",
                          entry.values[i]);
            os << (i ? ", " : "") << buffer;
        }
        os << "]";
    }
    os << "}}\n";
    if (!os)
        warn("result_cache: short write to ", path);
    else
        inform("result_cache: persisted ", entries.size(),
               " entries to ", path);
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries.clear();
    lru.clear();
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries.size();
}

bool
lookup(const std::string &domain, std::uint64_t key,
       std::vector<double> &out)
{
    return ResultCache::instance().lookup(domain, key, out);
}

void
store(const std::string &domain, std::uint64_t key,
      std::vector<double> values)
{
    ResultCache::instance().store(domain, key, std::move(values));
}

} // namespace otft::cache
