/**
 * @file
 * Process-wide hierarchical statistics registry, in the spirit of
 * gem5's stats package: named scalar counters, accumulators with
 * count/sum/min/max, fixed-bin histograms, and derived rates
 * (numerator / denominator evaluated at dump time).
 *
 * Names are dotted paths following the `layer.noun.verb` convention
 * ("circuit.newton.iterations", "sta.arcs.evaluated"). Registration
 * is idempotent — looking up an existing name returns the same node —
 * so call sites cache a reference in a function-local static and pay
 * one map lookup per process:
 *
 *     static auto &iters =
 *         stats::counter("circuit.newton.iterations");
 *     iters += n;
 *
 * Values survive across runs within a process; reset() zeroes every
 * node (registrations persist) so tests and repeated sweeps start
 * clean.
 *
 * Concurrency: the registry is safe to update from the util/parallel
 * worker pool. Counters are lock-free atomics (totals are exact under
 * contention); accumulators and histograms take a per-node mutex per
 * sample; the name map itself is guarded so concurrent first-use
 * registration is safe. Reads taken while writers are active see a
 * consistent per-node snapshot but no cross-node atomicity — dump
 * after joining workers for exact totals.
 */

#ifndef OTFT_UTIL_STATS_REGISTRY_HPP
#define OTFT_UTIL_STATS_REGISTRY_HPP

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace otft::stats {

/** Monotonically increasing scalar count (lock-free, exact). */
class Counter
{
  public:
    void
    operator+=(std::uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    Counter &operator++()
    {
        value_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Running count/sum/min/max over sampled values (e.g. seconds). */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (count_ == 0) {
            min_ = v;
            max_ = v;
        } else {
            if (v < min_)
                min_ = v;
            if (v > max_)
                max_ = v;
        }
        ++count_;
        sum_ += v;
    }

    std::uint64_t
    count() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return count_;
    }
    double
    sum() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return sum_;
    }
    double
    min() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return count_ ? min_ : 0.0;
    }
    double
    max() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return count_ ? max_ : 0.0;
    }
    double
    mean() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        count_ = 0;
        sum_ = min_ = max_ = 0.0;
    }

  private:
    mutable std::mutex mutex_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Linear fixed-bin histogram over [lo, hi) with under/overflow.
 * sample() and the aggregate readers lock a per-histogram mutex;
 * bins() returns a reference to live storage, so read it only after
 * concurrent samplers have joined (or take binsSnapshot()).
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t num_bins);

    void sample(double v);

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    const std::vector<std::uint64_t> &bins() const { return bins_; }
    /** Copy of the bin counts, consistent under concurrent sampling. */
    std::vector<std::uint64_t> binsSnapshot() const;
    std::uint64_t underflow() const;
    std::uint64_t overflow() const;
    std::uint64_t totalSamples() const;

    /**
     * Percentile estimate over the binned samples (under/overflow
     * excluded — their exact values are unknown), interpolated
     * linearly within the containing bin. p is clamped to [0, 100];
     * an empty histogram reports lo().
     */
    double percentile(double p) const;

    /** Median and tail shorthands for reports. */
    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }

    void reset();

  private:
    double percentileLocked(double p) const;

    mutable std::mutex mutex_;
    double lo_;
    double hi_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

/** Node kinds stored in the registry. */
enum class NodeKind { Counter, Accumulator, Histogram, Rate };

/**
 * The registry: an ordered map from dotted name to node. Nodes are
 * heap-allocated once and never move, so returned references stay
 * valid for the life of the process.
 */
class Registry
{
  public:
    /** Registry node (opaque outside the implementation). */
    struct Node;

    /** The process-wide registry. */
    static Registry &instance();

    /** Find-or-create nodes; fatal on a kind mismatch. */
    Counter &counter(const std::string &name,
                     const std::string &desc = "");
    Accumulator &accumulator(const std::string &name,
                             const std::string &desc = "");
    Histogram &histogram(const std::string &name, double lo, double hi,
                         std::size_t num_bins,
                         const std::string &desc = "");

    /**
     * Register a derived rate `numerator / denominator`, evaluated at
     * dump time from two counter or accumulator-sum nodes (missing or
     * zero denominator evaluates to 0).
     */
    void rate(const std::string &name, const std::string &numerator,
              const std::string &denominator,
              const std::string &desc = "");

    /** Current value of a derived rate (0 if unregistered). */
    double rateValue(const std::string &name) const;

    /** @return true if `name` is registered (any kind). */
    bool has(const std::string &name) const;

    /**
     * Values of every registered counter, keyed by name. Used by the
     * perf suite to compute per-scenario counter deltas.
     */
    std::map<std::string, std::uint64_t> counterSnapshot() const;

    /** Zero every node's value; registrations persist. */
    void reset();

    /**
     * Master enable. When false, ScopedTimer and trace spans skip
     * their clock reads entirely; plain counter increments at call
     * sites are not gated (they cost a single add).
     */
    void
    setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Render a sorted text table of every non-empty node. */
    void dumpText(std::ostream &os) const;

    /** Dump every node as one flat JSON object keyed by name. */
    void dumpJson(std::ostream &os) const;

    /**
     * In-memory snapshot of every node (counters and rates as scalars,
     * accumulators, histograms with bins), equivalent to parsing a
     * dumpJson() document. Used by the metrics sampler, which cannot
     * afford a serialize/parse round trip per tick.
     */
    struct Snapshot snapshot() const;

    /** Number of registered nodes. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return nodes.size();
    }

  private:
    Registry() = default;

    Node &findOrCreate(const std::string &name, NodeKind kind,
                       const std::string &desc);

    double rateValueLocked(const std::string &name) const;

    /**
     * Guards the name map (not node values: nodes are heap-allocated,
     * never move, and synchronize themselves).
     */
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Node>> nodes;
    std::atomic<bool> enabled_{true};
};

/** Shorthand for Registry::instance() accessors. */
Counter &counter(const std::string &name, const std::string &desc = "");
Accumulator &accumulator(const std::string &name,
                         const std::string &desc = "");
Histogram &histogram(const std::string &name, double lo, double hi,
                     std::size_t num_bins, const std::string &desc = "");

/** @return true when the process-wide registry is enabled. */
inline bool
enabled()
{
    return Registry::instance().enabled();
}

/**
 * RAII wall-time span: samples elapsed seconds into an accumulator at
 * scope exit. Skips both clock reads when the registry is disabled.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Accumulator &acc);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Accumulator &acc;
    std::int64_t startNs;
    bool active;
};

/** Monotonic clock read in nanoseconds (exposed for trace spans). */
std::int64_t monotonicNowNs();

// ---------------------------------------------------------------------
// Snapshot: a parsed stats dump, used for JSON round-trip tests and by
// tools that harvest `--stats-json` output.
// ---------------------------------------------------------------------

/** One parsed accumulator. */
struct SnapshotAccumulator
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
};

/** One parsed histogram. */
struct SnapshotHistogram
{
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    std::vector<std::uint64_t> bins;
};

/** A parsed dumpJson() document. */
struct Snapshot
{
    /** Counters and derived rates. */
    std::map<std::string, double> scalars;
    std::map<std::string, SnapshotAccumulator> accumulators;
    std::map<std::string, SnapshotHistogram> histograms;

    /** Scalar value by name, or `fallback` when absent. */
    double scalar(const std::string &name, double fallback = 0.0) const;
};

/**
 * Parse a dumpJson() document (the registry's own flat JSON subset:
 * one object whose values are numbers, or objects of numbers and
 * number arrays). Fatal on malformed input.
 */
Snapshot parseSnapshot(std::istream &is);

} // namespace otft::stats

#endif // OTFT_UTIL_STATS_REGISTRY_HPP
