#include "util/optimize.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace otft {

OptimizeResult
nelderMead(const Objective &objective, std::vector<double> x0,
           const NelderMeadOptions &options)
{
    const std::size_t n = x0.size();
    if (n == 0)
        fatal("nelderMead: empty parameter vector");

    int evals = 0;
    auto eval = [&](const std::vector<double> &x) {
        ++evals;
        return objective(x);
    };

    // Build the initial simplex: x0 plus one perturbed vertex per axis.
    std::vector<std::vector<double>> simplex;
    simplex.push_back(x0);
    for (std::size_t i = 0; i < n; ++i) {
        auto v = x0;
        const double step =
            std::max(std::abs(v[i]) * options.initialScale, 1e-4);
        v[i] += step;
        simplex.push_back(std::move(v));
    }
    std::vector<double> values;
    values.reserve(simplex.size());
    for (const auto &v : simplex)
        values.push_back(eval(v));

    auto order = [&]() {
        std::vector<std::size_t> idx(simplex.size());
        for (std::size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
            return values[a] < values[b];
        });
        std::vector<std::vector<double>> s2;
        std::vector<double> v2;
        for (auto i : idx) {
            s2.push_back(simplex[i]);
            v2.push_back(values[i]);
        }
        simplex = std::move(s2);
        values = std::move(v2);
    };

    constexpr double alpha = 1.0;  // reflection
    constexpr double gamma = 2.0;  // expansion
    constexpr double rho = 0.5;    // contraction
    constexpr double sigma = 0.5;  // shrink

    bool converged = false;
    while (evals < options.maxEvals) {
        order();
        if (values.back() - values.front() < options.tolerance) {
            converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        std::vector<double> centroid(n, 0.0);
        for (std::size_t i = 0; i + 1 < simplex.size(); ++i)
            for (std::size_t j = 0; j < n; ++j)
                centroid[j] += simplex[i][j];
        for (auto &c : centroid)
            c /= static_cast<double>(n);

        auto blend = [&](double coeff) {
            std::vector<double> v(n);
            for (std::size_t j = 0; j < n; ++j)
                v[j] = centroid[j] + coeff * (centroid[j] - simplex.back()[j]);
            return v;
        };

        const auto reflected = blend(alpha);
        const double f_reflected = eval(reflected);

        if (f_reflected < values.front()) {
            const auto expanded = blend(gamma);
            const double f_expanded = eval(expanded);
            if (f_expanded < f_reflected) {
                simplex.back() = expanded;
                values.back() = f_expanded;
            } else {
                simplex.back() = reflected;
                values.back() = f_reflected;
            }
        } else if (f_reflected < values[values.size() - 2]) {
            simplex.back() = reflected;
            values.back() = f_reflected;
        } else {
            const auto contracted = blend(-rho);
            const double f_contracted = eval(contracted);
            if (f_contracted < values.back()) {
                simplex.back() = contracted;
                values.back() = f_contracted;
            } else {
                // Shrink toward the best vertex.
                for (std::size_t i = 1; i < simplex.size(); ++i) {
                    for (std::size_t j = 0; j < n; ++j) {
                        simplex[i][j] = simplex[0][j] +
                            sigma * (simplex[i][j] - simplex[0][j]);
                    }
                    values[i] = eval(simplex[i]);
                }
            }
        }
    }

    order();
    OptimizeResult result;
    result.x = simplex.front();
    result.value = values.front();
    result.evals = evals;
    result.converged = converged;
    return result;
}

double
goldenSection(const std::function<double(double)> &f, double lo, double hi,
              double tol)
{
    if (lo > hi)
        std::swap(lo, hi);
    constexpr double inv_phi = 0.6180339887498949;
    double a = lo, b = hi;
    double c = b - (b - a) * inv_phi;
    double d = a + (b - a) * inv_phi;
    double fc = f(c), fd = f(d);
    while (b - a > tol) {
        if (fc < fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * inv_phi;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * inv_phi;
            fd = f(d);
        }
    }
    return 0.5 * (a + b);
}

} // namespace otft
