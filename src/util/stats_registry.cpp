#include "util/stats_registry.hpp"

#include <cctype>
#include <chrono>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace otft::stats {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi), bins_(num_bins, 0)
{
    if (num_bins == 0 || hi <= lo)
        fatal("Histogram: need num_bins >= 1 and hi > lo");
}

void
Histogram::sample(double v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (v < lo_) {
        ++underflow_;
        return;
    }
    if (v >= hi_) {
        ++overflow_;
        return;
    }
    const double frac = (v - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(bins_.size()));
    if (idx >= bins_.size()) // guard the v ~ hi_ rounding edge
        idx = bins_.size() - 1;
    ++bins_[idx];
}

std::vector<std::uint64_t>
Histogram::binsSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bins_;
}

std::uint64_t
Histogram::underflow() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return underflow_;
}

std::uint64_t
Histogram::overflow() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return overflow_;
}

std::uint64_t
Histogram::totalSamples() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = underflow_ + overflow_;
    for (std::uint64_t b : bins_)
        total += b;
    return total;
}

double
Histogram::percentile(double p) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return percentileLocked(p);
}

double
Histogram::percentileLocked(double p) const
{
    std::uint64_t n = 0;
    for (std::uint64_t b : bins_)
        n += b;
    if (n == 0)
        return lo_;
    const double clamped = p < 0.0 ? 0.0 : (p > 100.0 ? 100.0 : p);
    const double target =
        clamped / 100.0 * static_cast<double>(n);
    const double width =
        (hi_ - lo_) / static_cast<double>(bins_.size());
    double cum = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        const double next = cum + static_cast<double>(bins_[i]);
        if (target <= next) {
            const double frac =
                (target - cum) / static_cast<double>(bins_[i]);
            return lo_ + width * (static_cast<double>(i) + frac);
        }
        cum = next;
    }
    return hi_;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::fill(bins_.begin(), bins_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
}

/** Registry node: one kind-tagged payload plus metadata. */
struct Registry::Node
{
    NodeKind kind;
    std::string desc;
    Counter counter;
    Accumulator accumulator;
    std::unique_ptr<Histogram> histogram;
    /** Rate operands (node names, resolved at dump time). */
    std::string rateNum, rateDen;

    explicit Node(NodeKind k) : kind(k) {}
};

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

namespace {

const char *
kindName(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Counter:
        return "counter";
      case NodeKind::Accumulator:
        return "accumulator";
      case NodeKind::Histogram:
        return "histogram";
      case NodeKind::Rate:
        return "rate";
    }
    return "?";
}

} // namespace

Registry::Node &
Registry::findOrCreate(const std::string &name, NodeKind kind,
                       const std::string &desc)
{
    if (name.empty())
        fatal("stats: node name must not be empty");
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = nodes.find(name);
    if (it == nodes.end())
        it = nodes.emplace(name, std::make_unique<Node>(kind)).first;
    Node &node = *it->second;
    if (node.kind != kind)
        fatal("stats: node '", name, "' registered as ",
              kindName(node.kind), ", requested as ", kindName(kind));
    if (node.desc.empty() && !desc.empty())
        node.desc = desc;
    return node;
}

Counter &
Registry::counter(const std::string &name, const std::string &desc)
{
    return findOrCreate(name, NodeKind::Counter, desc).counter;
}

Accumulator &
Registry::accumulator(const std::string &name, const std::string &desc)
{
    return findOrCreate(name, NodeKind::Accumulator, desc).accumulator;
}

Histogram &
Registry::histogram(const std::string &name, double lo, double hi,
                    std::size_t num_bins, const std::string &desc)
{
    Node &node = findOrCreate(name, NodeKind::Histogram, desc);
    if (!node.histogram)
        node.histogram = std::make_unique<Histogram>(lo, hi, num_bins);
    return *node.histogram;
}

void
Registry::rate(const std::string &name, const std::string &numerator,
               const std::string &denominator, const std::string &desc)
{
    Node &node = findOrCreate(name, NodeKind::Rate, desc);
    node.rateNum = numerator;
    node.rateDen = denominator;
}

namespace {

/** A node's scalar magnitude for rate evaluation. */
double
scalarOf(const Registry::Node *node);

} // namespace

double
Registry::rateValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rateValueLocked(name);
}

double
Registry::rateValueLocked(const std::string &name) const
{
    auto it = nodes.find(name);
    if (it == nodes.end() || it->second->kind != NodeKind::Rate)
        return 0.0;
    const Node *num_node = nullptr, *den_node = nullptr;
    auto num_it = nodes.find(it->second->rateNum);
    if (num_it != nodes.end())
        num_node = num_it->second.get();
    auto den_it = nodes.find(it->second->rateDen);
    if (den_it != nodes.end())
        den_node = den_it->second.get();
    const double den = scalarOf(den_node);
    return den != 0.0 ? scalarOf(num_node) / den : 0.0;
}

bool
Registry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nodes.find(name) != nodes.end();
}

std::map<std::string, std::uint64_t>
Registry::counterSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, std::uint64_t> values;
    for (const auto &[name, node] : nodes)
        if (node->kind == NodeKind::Counter)
            values[name] = node->counter.value();
    return values;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, node] : nodes) {
        node->counter.reset();
        node->accumulator.reset();
        if (node->histogram)
            node->histogram->reset();
    }
}

namespace {

double
scalarOf(const Registry::Node *node)
{
    if (!node)
        return 0.0;
    switch (node->kind) {
      case NodeKind::Counter:
        return static_cast<double>(node->counter.value());
      case NodeKind::Accumulator:
        return node->accumulator.sum();
      case NodeKind::Histogram:
        return node->histogram
                   ? static_cast<double>(node->histogram->totalSamples())
                   : 0.0;
      case NodeKind::Rate:
        return 0.0; // rates of rates are not supported
    }
    return 0.0;
}

bool
nodeIsEmpty(const Registry::Node &node)
{
    switch (node.kind) {
      case NodeKind::Counter:
        return node.counter.value() == 0;
      case NodeKind::Accumulator:
        return node.accumulator.count() == 0;
      case NodeKind::Histogram:
        return !node.histogram || node.histogram->totalSamples() == 0;
      case NodeKind::Rate:
        return false; // always evaluable
    }
    return true;
}

/** Format a double compactly for JSON (round-trips via %.17g). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::ostringstream oss;
    oss.precision(17);
    oss << v;
    return oss.str();
}

} // namespace

void
Registry::dumpText(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Table table({"stat", "value", "description"});
    for (const auto &[name, node] : nodes) {
        if (nodeIsEmpty(*node))
            continue;
        std::ostringstream value;
        switch (node->kind) {
          case NodeKind::Counter:
            value << node->counter.value();
            break;
          case NodeKind::Accumulator: {
            const Accumulator &a = node->accumulator;
            value << "n=" << a.count()
                  << " sum=" << formatNumber(a.sum())
                  << " mean=" << formatNumber(a.mean())
                  << " min=" << formatNumber(a.min())
                  << " max=" << formatNumber(a.max());
            break;
          }
          case NodeKind::Histogram: {
            const Histogram &h = *node->histogram;
            const auto bins = h.binsSnapshot();
            value << "n=" << h.totalSamples() << " [";
            for (std::size_t i = 0; i < bins.size(); ++i)
                value << (i ? " " : "") << bins[i];
            value << "] under=" << h.underflow()
                  << " over=" << h.overflow()
                  << " p50=" << formatNumber(h.p50())
                  << " p95=" << formatNumber(h.p95());
            break;
          }
          case NodeKind::Rate:
            value << formatNumber(rateValueLocked(name));
            break;
        }
        table.row().add(name).add(value.str()).add(node->desc);
    }
    table.render(os);
}

void
Registry::dumpJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\n";
    bool first = true;
    for (const auto &[name, node] : nodes) {
        if (!first)
            os << ",\n";
        first = false;
        // Names are conventionally dotted identifiers, but nothing
        // enforces that — escape so arbitrary keys stay valid JSON.
        os << "  \"" << json::escape(name) << "\": ";
        switch (node->kind) {
          case NodeKind::Counter:
            os << node->counter.value();
            break;
          case NodeKind::Accumulator: {
            const Accumulator &a = node->accumulator;
            os << "{\"count\": " << a.count()
               << ", \"sum\": " << jsonNumber(a.sum())
               << ", \"min\": " << jsonNumber(a.min())
               << ", \"max\": " << jsonNumber(a.max())
               << ", \"mean\": " << jsonNumber(a.mean()) << "}";
            break;
          }
          case NodeKind::Histogram: {
            const Histogram &h = *node->histogram;
            const auto bins = h.binsSnapshot();
            os << "{\"lo\": " << jsonNumber(h.lo())
               << ", \"hi\": " << jsonNumber(h.hi())
               << ", \"underflow\": " << h.underflow()
               << ", \"overflow\": " << h.overflow()
               << ", \"p50\": " << jsonNumber(h.p50())
               << ", \"p95\": " << jsonNumber(h.p95())
               << ", \"bins\": [";
            for (std::size_t i = 0; i < bins.size(); ++i)
                os << (i ? ", " : "") << bins[i];
            os << "]}";
            break;
          }
          case NodeKind::Rate:
            os << jsonNumber(rateValueLocked(name));
            break;
        }
    }
    os << "\n}\n";
}

Snapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    for (const auto &[name, node] : nodes) {
        switch (node->kind) {
          case NodeKind::Counter:
            snap.scalars[name] =
                static_cast<double>(node->counter.value());
            break;
          case NodeKind::Rate:
            snap.scalars[name] = rateValueLocked(name);
            break;
          case NodeKind::Accumulator: {
            const Accumulator &a = node->accumulator;
            SnapshotAccumulator out;
            out.count = a.count();
            out.sum = a.sum();
            out.min = a.min();
            out.max = a.max();
            out.mean = a.mean();
            snap.accumulators[name] = out;
            break;
          }
          case NodeKind::Histogram: {
            if (!node->histogram)
                break;
            const Histogram &h = *node->histogram;
            SnapshotHistogram out;
            out.lo = h.lo();
            out.hi = h.hi();
            out.underflow = h.underflow();
            out.overflow = h.overflow();
            out.p50 = h.p50();
            out.p95 = h.p95();
            out.bins = h.binsSnapshot();
            snap.histograms[name] = out;
            break;
          }
        }
    }
    return snap;
}

Counter &
counter(const std::string &name, const std::string &desc)
{
    return Registry::instance().counter(name, desc);
}

Accumulator &
accumulator(const std::string &name, const std::string &desc)
{
    return Registry::instance().accumulator(name, desc);
}

Histogram &
histogram(const std::string &name, double lo, double hi,
          std::size_t num_bins, const std::string &desc)
{
    return Registry::instance().histogram(name, lo, hi, num_bins, desc);
}

std::int64_t
monotonicNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

ScopedTimer::ScopedTimer(Accumulator &acc)
    : acc(acc), startNs(0), active(Registry::instance().enabled())
{
    if (active)
        startNs = monotonicNowNs();
}

ScopedTimer::~ScopedTimer()
{
    if (active)
        acc.sample(static_cast<double>(monotonicNowNs() - startNs) *
                   1e-9);
}

// ---------------------------------------------------------------------
// Snapshot parsing: a recursive-descent reader for the JSON subset
// dumpJson() emits (flat object; values are numbers, or one-level
// objects of numbers and arrays of numbers).
// ---------------------------------------------------------------------

namespace {

struct JsonReader
{
    std::istream &is;

    void
    skipWs()
    {
        while (std::isspace(is.peek()))
            is.get();
    }

    char
    peek()
    {
        skipWs();
        return static_cast<char>(is.peek());
    }

    void
    expect(char c)
    {
        skipWs();
        const int got = is.get();
        if (got != c)
            fatal("stats json: expected '", c, "', got ",
                  got < 0 ? std::string("EOF")
                          : std::string(1, static_cast<char>(got)));
    }

    std::string
    readString()
    {
        expect('"');
        std::string s;
        int c;
        while ((c = is.get()) != '"') {
            if (c < 0)
                fatal("stats json: unterminated string");
            if (c == '\\')
                c = is.get();
            s.push_back(static_cast<char>(c));
        }
        return s;
    }

    double
    readNumber()
    {
        skipWs();
        double v = 0.0;
        if (!(is >> v))
            fatal("stats json: expected a number");
        return v;
    }

    std::vector<double>
    readNumberArray()
    {
        expect('[');
        std::vector<double> values;
        if (peek() == ']') {
            is.get();
            return values;
        }
        while (true) {
            values.push_back(readNumber());
            skipWs();
            const int c = is.get();
            if (c == ']')
                break;
            if (c != ',')
                fatal("stats json: expected ',' or ']' in array");
        }
        return values;
    }
};

} // namespace

double
Snapshot::scalar(const std::string &name, double fallback) const
{
    auto it = scalars.find(name);
    return it != scalars.end() ? it->second : fallback;
}

Snapshot
parseSnapshot(std::istream &is)
{
    Snapshot snapshot;
    JsonReader reader{is};
    reader.expect('{');
    if (reader.peek() == '}') {
        is.get();
        return snapshot;
    }
    while (true) {
        const std::string name = reader.readString();
        reader.expect(':');
        if (reader.peek() == '{') {
            // Accumulator or histogram: keyed fields distinguish them.
            is.get();
            std::map<std::string, double> fields;
            std::vector<double> bins;
            bool have_bins = false;
            while (true) {
                const std::string key = reader.readString();
                reader.expect(':');
                if (reader.peek() == '[') {
                    bins = reader.readNumberArray();
                    have_bins = true;
                } else {
                    fields[key] = reader.readNumber();
                }
                reader.skipWs();
                const int c = is.get();
                if (c == '}')
                    break;
                if (c != ',')
                    fatal("stats json: expected ',' or '}' in object");
            }
            if (have_bins) {
                SnapshotHistogram h;
                h.lo = fields["lo"];
                h.hi = fields["hi"];
                h.underflow =
                    static_cast<std::uint64_t>(fields["underflow"]);
                h.overflow =
                    static_cast<std::uint64_t>(fields["overflow"]);
                h.p50 = fields["p50"];
                h.p95 = fields["p95"];
                for (double b : bins)
                    h.bins.push_back(static_cast<std::uint64_t>(b));
                snapshot.histograms[name] = h;
            } else {
                SnapshotAccumulator a;
                a.count = static_cast<std::uint64_t>(fields["count"]);
                a.sum = fields["sum"];
                a.min = fields["min"];
                a.max = fields["max"];
                a.mean = fields["mean"];
                snapshot.accumulators[name] = a;
            }
        } else {
            snapshot.scalars[name] = reader.readNumber();
        }
        reader.skipWs();
        const int c = is.get();
        if (c == '}')
            break;
        if (c != ',')
            fatal("stats json: expected ',' or '}' after value");
    }
    return snapshot;
}

} // namespace otft::stats
