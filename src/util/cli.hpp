/**
 * @file
 * Shared driver shell for the bench and example binaries: strips the
 * observability flags from argv, honors the OTFT_* environment
 * overrides, and on exit emits the stats report, the trace timeline,
 * and (for benches) a one-line machine-readable JSON footer.
 *
 * Flags / environment handled:
 *   --stats-json <path>   write the stats registry as JSON on exit
 *   --stats               print the stats text table to stderr on exit
 *   --trace-json <path>   collect a Chrome trace_event timeline
 *   --jobs <n>            worker threads for the parallel layers
 *   --batch-lanes <n>     lane width for the batched solver engine
 *                         (0 = scalar engine; default 8)
 *   --cache-dir <dir>     persist the result cache as JSON under dir
 *   --diag-json <path>    write solver convergence telemetry on exit
 *   --diag-dir <dir>      write failure forensics dumps under dir
 *   --metrics-jsonl <path>  stream periodic registry snapshots (JSONL)
 *   --metrics-period-ms <n> sampling period for --metrics-jsonl
 *                           (default 100)
 *   --profile-folded <path>  run the sampling profiler and write the
 *                            collapsed-stack (flamegraph) file on exit
 *   --profile-period-us <n>  sampling period for --profile-folded
 *                            (default 1000)
 *   --profile-topn <n>       rows in the top-frames report and the
 *                            footer profile section (default 5)
 *   --mc-samples <n>      Monte Carlo process samples (default 16)
 *   --mc-seed <n>         Monte Carlo master seed (default 1)
 *   --mc-yield <y>        target parametric yield in (0, 1)
 *                         (default 0.99)
 *   OTFT_STATS=1          same as --stats
 *   OTFT_STATS_JSON=path  same as --stats-json
 *   OTFT_TRACE_JSON=path  same as --trace-json
 *   OTFT_JOBS=n           same as --jobs
 *   OTFT_BATCH_LANES=n    same as --batch-lanes
 *   OTFT_CACHE_DIR=dir    same as --cache-dir
 *   OTFT_CACHE=0          disable result-cache memoization entirely
 *   OTFT_DIAG_JSON=path   same as --diag-json
 *   OTFT_DIAG_DIR=dir     same as --diag-dir
 *   OTFT_METRICS_JSONL=path       same as --metrics-jsonl
 *   OTFT_METRICS_PERIOD_MS=n      same as --metrics-period-ms
 *   OTFT_PROFILE_FOLDED=path      same as --profile-folded
 *   OTFT_PROFILE_PERIOD_US=n      same as --profile-period-us
 *   OTFT_PROFILE_TOPN=n           same as --profile-topn
 *   OTFT_MC_SAMPLES=n     same as --mc-samples
 *   OTFT_MC_SEED=n        same as --mc-seed
 *   OTFT_MC_YIELD=y       same as --mc-yield
 *
 * --jobs must be a positive integer; 0, negative, or non-numeric
 * values are fatal. Values above the hardware concurrency are clamped
 * to it (with a warning). The resolved count is installed as the
 * process-wide parallel::jobs() default; without the flag the default
 * is the hardware concurrency.
 *
 * Flags take precedence over the environment. Output paths are
 * validated up front: an unwritable --stats-json/--trace-json target
 * is a fatal() at construction (clear message, nonzero exit), not a
 * silent warning after the run has burned its compute.
 */

#ifndef OTFT_UTIL_CLI_HPP
#define OTFT_UTIL_CLI_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace otft::cli {

/** Footer behavior for Session. */
enum class Footer { Off, On };

/**
 * RAII driver session. Construct first thing in main() (it consumes
 * the observability flags so the driver's own argument handling never
 * sees them); destruction emits the requested reports. With
 * Footer::On the last stdout line is the canonical bench footer
 * `{"bench": "<name>", "schema": "otft-bench-footer-1",
 * "wall_s": <t>, "points": <n>, ...extras}` — one schema across every
 * fig/ext bench, which is what lets `perf_suite --ingest` fold figure
 * benches into the BENCH_*.json trajectory.
 */
class Session
{
  public:
    Session(std::string name, int &argc, char **argv,
            Footer footer = Footer::Off);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Record the number of sweep/result points for the footer. */
    void setPoints(std::int64_t n) { points = n; }

    /**
     * Append a numeric field to the footer (after the canonical
     * fields), so a bench can put a headline metric on the trajectory.
     */
    void addFooterField(const std::string &key, double value);

    /**
     * Append a pre-rendered JSON value to the footer under `key`
     * (e.g. the otft-prof-1 profile section). The caller guarantees
     * `raw_json` is valid JSON.
     */
    void addFooterJson(const std::string &key, std::string raw_json);

    /** Parsed observability settings (exposed for tests). */
    bool statsTextEnabled() const { return statsText; }
    const std::string &statsJson() const { return statsJsonPath; }
    const std::string &traceJson() const { return traceJsonPath; }

    /** The worker count installed into parallel::setJobs(). */
    int jobs() const { return jobs_; }

    /**
     * The batch lane width installed into parallel::setBatchLanes()
     * (0 = scalar engine).
     */
    int batchLanes() const { return batchLanes_; }

    /** The result-cache persistence directory ("" = memory only). */
    const std::string &cacheDirectory() const { return cacheDir; }

    /** Diagnostics settings (exposed for tests). */
    const std::string &diagJson() const { return diagJsonPath; }
    const std::string &diagDirectory() const { return diagDir; }
    const std::string &metricsJsonl() const { return metricsPath; }
    int metricsPeriodMs() const { return metricsPeriod; }

    /** Profiler settings (exposed for tests). */
    const std::string &profileFolded() const { return profilePath; }
    std::uint64_t profilePeriodUs() const { return profilePeriod; }
    int profileTopN() const { return profileTop; }

    /**
     * Monte Carlo settings for benches that characterize or sign off
     * under process variation (--mc-samples / --mc-seed / --mc-yield).
     */
    int mcSamples() const { return mcSamples_; }
    std::uint64_t mcSeed() const { return mcSeed_; }
    double mcYield() const { return mcYield_; }

  private:
    std::string name;
    bool footer;
    bool statsText = false;
    int jobs_ = 0;
    int batchLanes_ = 0;
    int metricsPeriod = 100;
    std::string statsJsonPath;
    std::string traceJsonPath;
    std::string cacheDir;
    std::string diagJsonPath;
    std::string diagDir;
    std::string metricsPath;
    std::string profilePath;
    std::uint64_t profilePeriod = 1000;
    int profileTop = 5;
    int mcSamples_ = 16;
    std::uint64_t mcSeed_ = 1;
    double mcYield_ = 0.99;
    bool profiling = false;
    std::vector<std::pair<std::string, double>> footerExtras;
    std::vector<std::pair<std::string, std::string>> footerRawExtras;
    std::int64_t points = 0;
    std::int64_t startNs;
};

} // namespace otft::cli

#endif // OTFT_UTIL_CLI_HPP
