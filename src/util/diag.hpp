/**
 * @file
 * Solver diagnostics sink: convergence telemetry aggregated per
 * logical context (cell, arc, design point) plus the bookkeeping for
 * failure-forensics dumps.
 *
 * The numeric core is instrumented with lightweight probes that are
 * inert until the collector is enabled (one relaxed atomic load per
 * solve, one branch per Newton iteration), so production runs pay
 * nothing. When `--diag-json`/`--diag-dir` turn the collector on:
 *
 *  - callers label their work with ScopedContext ("liberty.inv.pin0",
 *    "explorer.point.fe2.alu2"); the label is thread-local, so every
 *    worker of the parallel pool aggregates under its own task;
 *  - circuit::Mna::solveNewton opens a SolveProbe per solve and feeds
 *    it per-iteration residual/update norms (ring-buffered) and
 *    chord-vs-full decisions;
 *  - the DC and transient engines record recovery events (source
 *    stepping, gmin stepping, step accept/reject, Newton retries);
 *  - on failure the Newton kernel writes a content-addressed dump via
 *    circuit/dump and registers the path here.
 *
 * dumpJson() exports the whole picture as one schema-versioned
 * document ("otft-diag-1") that `--diag-json` writes at session exit.
 *
 * Concurrency: the collector takes one mutex per aggregate update;
 * probes buffer per-solve data privately and publish once on close.
 */

#ifndef OTFT_UTIL_DIAG_HPP
#define OTFT_UTIL_DIAG_HPP

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace otft::diag {

/** Schema tag of the --diag-json document. */
inline constexpr const char *diagSchema = "otft-diag-1";

/** One recorded Newton iteration. */
struct IterationSample
{
    /** 0-based iteration index within the solve. */
    int iteration = 0;
    /** Inf-norm of the residual F(x) at the iterate. */
    double residualNorm = 0.0;
    /** Inf-norm of the clamped voltage update applied. */
    double maxUpdate = 0.0;
    /** True when the iteration reused a frozen (chord) Jacobian. */
    bool chord = false;
};

/** What kind of solve a probe covers. */
enum class SolveKind { Dc, TransientStep };

/** @return "dc" or "transient_step". */
const char *toString(SolveKind kind);

/** Discrete solver events aggregated per context. */
enum class Event {
    /** Adaptive (or fixed) transient step accepted. */
    StepAccept,
    /** Adaptive step rejected for excess LTE. */
    StepReject,
    /** A transient step retried after a Newton failure. */
    NewtonRetry,
    /** DC operating point fell back to source-stepping homotopy. */
    SourceStepping,
    /** DC operating point fell back to gmin stepping. */
    GminStepping,
};

/** Aggregated telemetry for one context label. */
struct ContextStats
{
    std::uint64_t solves = 0;
    std::uint64_t failures = 0;
    std::uint64_t iterations = 0;
    std::uint64_t chordIterations = 0;
    std::uint64_t jacobianRefreshes = 0;
    std::uint64_t singularRecoveries = 0;
    std::uint64_t stepAccepts = 0;
    std::uint64_t stepRejects = 0;
    std::uint64_t newtonRetries = 0;
    std::uint64_t sourceStepping = 0;
    std::uint64_t gminStepping = 0;
    /** Worst iteration count over converged solves. */
    int maxIterations = 0;
    /** Worst final residual norm over failed solves. */
    double worstFinalResidual = 0.0;
};

/** The process-wide diagnostics collector. */
class Collector
{
  public:
    static Collector &instance();

    /** Master enable; everything is inert while false (the default). */
    void setEnabled(bool enabled);
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Enable failure dumps under `dir` (created if missing; fatal when
     * creation fails). Implies setEnabled(true). Empty disables dumps.
     */
    void setDumpDirectory(const std::string &dir);
    std::string dumpDirectory() const;
    bool
    dumpsEnabled() const
    {
        return dumps_.load(std::memory_order_relaxed);
    }

    /**
     * Cap on dump files per process (default 32): homotopy fallbacks
     * probe dozens of intentionally hard solves, and one pathological
     * sweep must not fill the disk. Dumps past the cap are counted but
     * not written.
     */
    void setMaxDumps(std::size_t n);

    /** Attach a run attribute (e.g. an RNG seed) to dumps and JSON. */
    void setAttribute(const std::string &key, double value);
    std::map<std::string, double> attributes() const;

    /** Publish one closed solve into the context aggregate. */
    void recordSolve(const std::string &context, SolveKind kind,
                     bool converged, int iterations,
                     int chord_iterations, int jacobian_refreshes,
                     int singular_recoveries, double final_residual);

    /** Count a discrete solver event under the context. */
    void recordEvent(const std::string &context, Event event);

    /**
     * Register a failure dump path. @return false when the per-process
     * cap has been reached (the caller should skip writing the file).
     */
    bool recordDump(const std::string &path);

    std::vector<std::string> dumpPaths() const;

    /** Aggregate for one context ("" aggregates unlabeled solves). */
    ContextStats contextStats(const std::string &context) const;
    std::size_t contextCount() const;

    /** Write the otft-diag-1 JSON document. */
    void dumpJson(std::ostream &os) const;

    /** Drop every aggregate, dump path, and attribute. */
    void reset();

  private:
    Collector() = default;

    std::atomic<bool> enabled_{false};
    std::atomic<bool> dumps_{false};
    mutable std::mutex mutex_;
    std::string dumpDir_;
    std::size_t maxDumps_ = 32;
    std::size_t dumpsSkipped_ = 0;
    std::map<std::string, double> attributes_;
    std::map<std::string, ContextStats> contexts_;
    std::vector<std::string> dumpPaths_;
};

/** @return true when the process-wide collector is enabled. */
inline bool
enabled()
{
    return Collector::instance().enabled();
}

/**
 * @return true when some consumer of context labels is active — the
 * diagnostics collector or the sampling profiler (ScopedContext feeds
 * both). Call sites that build labels dynamically should gate on this
 * rather than enabled(), so profiled runs get labeled stacks:
 *
 *     diag::ScopedContext ctx(
 *         diag::labelsWanted() ? "liberty." + name : std::string());
 */
bool labelsWanted();

/** Record an event under the calling thread's current context. */
void recordEvent(Event event);

/**
 * Thread-local context label for aggregation ("liberty.inv.pin0").
 * Nested scopes join with '/'. The label is also pushed as a frame on
 * the sampling profiler's context stack while a collection runs.
 * Constructing with an empty label is a no-op, so call sites can skip
 * the string build entirely when no consumer is active:
 *
 *     diag::ScopedContext ctx(
 *         diag::labelsWanted() ? "liberty." + name : std::string());
 */
class ScopedContext
{
  public:
    explicit ScopedContext(std::string label);
    ~ScopedContext();

    ScopedContext(const ScopedContext &) = delete;
    ScopedContext &operator=(const ScopedContext &) = delete;

    /** The calling thread's current label ("" when unlabeled). */
    static const std::string &current();

  private:
    bool pushed = false;
    bool profPushed = false;
    std::string saved;
};

/**
 * Per-solve probe used by the Newton kernel. Buffers the last
 * `ringCapacity` iteration samples privately and publishes the
 * aggregate to the collector when closed. Inert (no clock reads, no
 * allocation) when the collector is disabled at construction.
 */
class SolveProbe
{
  public:
    /** Iterations of history kept for failure dumps. */
    static constexpr std::size_t ringCapacity = 64;

    explicit SolveProbe(SolveKind kind);
    ~SolveProbe();

    SolveProbe(const SolveProbe &) = delete;
    SolveProbe &operator=(const SolveProbe &) = delete;

    bool active() const { return active_; }
    /** True when a failure here should also write a forensics dump. */
    bool wantsDump() const { return active_ && dumps_; }

    void iteration(int iter, double residual_norm, double max_update,
                   bool chord);
    void jacobianRefresh() { ++refreshes_; }
    void singularRecovery() { ++recoveries_; }

    /** Close the probe (idempotent; the destructor closes as failed). */
    void finish(bool converged);

    /** Ring contents in chronological order. */
    std::vector<IterationSample> trace() const;

  private:
    SolveKind kind_;
    bool active_ = false;
    bool dumps_ = false;
    bool closed_ = false;
    int iterations_ = 0;
    int chordIterations_ = 0;
    int refreshes_ = 0;
    int recoveries_ = 0;
    double finalResidual_ = 0.0;
    std::string context_;
    std::vector<IterationSample> ring_;
    std::size_t ringNext_ = 0;
};

} // namespace otft::diag

#endif // OTFT_UTIL_DIAG_HPP
