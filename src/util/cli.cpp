#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "util/logging.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft::cli {

namespace {

/**
 * Remove argv[i] (and optionally its value argument) from argv,
 * shifting the tail down and shrinking argc.
 */
void
consumeArgs(int &argc, char **argv, int i, int count)
{
    for (int k = i; k + count < argc; ++k)
        argv[k] = argv[k + count];
    argc -= count;
}

} // namespace

Session::Session(std::string name_in, int &argc, char **argv,
                 Footer footer_in)
    : name(std::move(name_in)), footer(footer_in == Footer::On),
      startNs(stats::monotonicNowNs())
{
    int i = 1;
    while (i < argc) {
        const char *arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (std::strcmp(arg, "--stats") == 0) {
            statsText = true;
            consumeArgs(argc, argv, i, 1);
        } else if (std::strcmp(arg, "--stats-json") == 0) {
            if (!has_value)
                fatal("cli: --stats-json requires a path");
            statsJsonPath = argv[i + 1];
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--trace-json") == 0) {
            if (!has_value)
                fatal("cli: --trace-json requires a path");
            traceJsonPath = argv[i + 1];
            consumeArgs(argc, argv, i, 2);
        } else {
            ++i;
        }
    }

    if (const char *env = std::getenv("OTFT_STATS"))
        statsText = statsText || std::strcmp(env, "0") != 0;
    if (statsJsonPath.empty())
        if (const char *env = std::getenv("OTFT_STATS_JSON"))
            statsJsonPath = env;
    if (traceJsonPath.empty())
        if (const char *env = std::getenv("OTFT_TRACE_JSON"))
            traceJsonPath = env;

    if (!traceJsonPath.empty())
        trace::start(traceJsonPath);
}

Session::~Session()
{
    if (!traceJsonPath.empty())
        trace::stop();

    const auto &registry = stats::Registry::instance();
    if (!statsJsonPath.empty()) {
        std::ofstream os(statsJsonPath);
        if (!os) {
            warn("cli: cannot write stats to ", statsJsonPath);
        } else {
            registry.dumpJson(os);
            inform("stats: wrote ", statsJsonPath);
        }
    }
    if (statsText) {
        std::fprintf(stderr, "\n== stats: %s ==\n", name.c_str());
        registry.dumpText(std::cerr);
    }

    if (footer) {
        const double wall_s =
            static_cast<double>(stats::monotonicNowNs() - startNs) *
            1e-9;
        std::printf("{\"bench\": \"%s\", \"wall_s\": %.3f, "
                    "\"points\": %lld}\n",
                    name.c_str(), wall_s,
                    static_cast<long long>(points));
    }
}

} // namespace otft::cli
