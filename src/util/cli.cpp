#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "util/diag.hpp"
#include "util/logging.hpp"
#include "util/metrics_stream.hpp"
#include "util/parallel.hpp"
#include "util/perf_report.hpp"
#include "util/profiler.hpp"
#include "util/result_cache.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft::cli {

namespace {

/**
 * Remove argv[i] (and optionally its value argument) from argv,
 * shifting the tail down and shrinking argc.
 */
void
consumeArgs(int &argc, char **argv, int i, int count)
{
    for (int k = i; k + count < argc; ++k)
        argv[k] = argv[k + count];
    argc -= count;
}

/**
 * Fail fast on an unwritable report path. Probing in append mode
 * creates a missing file without clobbering an existing one; the real
 * write happens at session exit.
 */
void
validateWritable(const std::string &path, const char *flag)
{
    std::ofstream probe(path, std::ios::app);
    if (!probe)
        fatal("cli: cannot open '", path, "' for writing (", flag,
              ")");
}

/** Parse a strictly positive decimal integer; fatal otherwise. */
int
parsePositiveInt(const std::string &text, const char *source)
{
    std::size_t consumed = 0;
    long value = 0;
    try {
        value = std::stol(text, &consumed);
    } catch (const std::exception &) {
        fatal("cli: ", source, " must be a positive integer, got '",
              text, "'");
    }
    if (consumed != text.size())
        fatal("cli: ", source, " must be a positive integer, got '",
              text, "'");
    if (value < 1)
        fatal("cli: ", source, " must be >= 1, got ", value);
    return static_cast<int>(value);
}

/** Parse a non-negative decimal uint64 (RNG seed); fatal otherwise. */
std::uint64_t
parseSeed(const std::string &text, const char *source)
{
    std::size_t consumed = 0;
    unsigned long long value = 0;
    try {
        value = std::stoull(text, &consumed);
    } catch (const std::exception &) {
        fatal("cli: ", source, " must be a non-negative integer, "
              "got '", text, "'");
    }
    if (consumed != text.size() || text[0] == '-')
        fatal("cli: ", source, " must be a non-negative integer, "
              "got '", text, "'");
    return static_cast<std::uint64_t>(value);
}

/** Parse a yield fraction strictly inside (0, 1); fatal otherwise. */
double
parseYield(const std::string &text, const char *source)
{
    std::size_t consumed = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &consumed);
    } catch (const std::exception &) {
        fatal("cli: ", source, " must be a number in (0, 1), got '",
              text, "'");
    }
    if (consumed != text.size() || !(value > 0.0 && value < 1.0))
        fatal("cli: ", source, " must lie strictly in (0, 1), got '",
              text, "'");
    return value;
}

/**
 * Parse a --batch-lanes/OTFT_BATCH_LANES value: a non-negative
 * decimal integer (0 selects the scalar solver engine). Negative or
 * non-numeric input is fatal.
 */
int
parseBatchLanes(const std::string &text, const char *source)
{
    std::size_t consumed = 0;
    long value = 0;
    try {
        value = std::stol(text, &consumed);
    } catch (const std::exception &) {
        fatal("cli: ", source, " must be a non-negative integer, "
              "got '", text, "'");
    }
    if (consumed != text.size())
        fatal("cli: ", source, " must be a non-negative integer, "
              "got '", text, "'");
    if (value < 0)
        fatal("cli: ", source, " must be >= 0, got ", value);
    return static_cast<int>(value);
}

/**
 * Parse and validate a --jobs/OTFT_JOBS value: a positive decimal
 * integer, clamped to the hardware concurrency. 0, negative, or
 * non-numeric input is fatal (a silent fallback would quietly run a
 * sweep serial or oversubscribed).
 */
int
parseJobs(const std::string &text, const char *source)
{
    const int value = parsePositiveInt(text, source);
    const int hw = parallel::hardwareJobs();
    if (value > hw) {
        warn("cli: ", source, "=", value, " exceeds the ", hw,
             " hardware threads; clamping");
        return hw;
    }
    return static_cast<int>(value);
}

} // namespace

Session::Session(std::string name_in, int &argc, char **argv,
                 Footer footer_in)
    : name(std::move(name_in)), footer(footer_in == Footer::On),
      startNs(stats::monotonicNowNs())
{
    bool mc_samples_set = false;
    bool mc_seed_set = false;
    bool mc_yield_set = false;
    bool batch_lanes_set = false;
    int i = 1;
    while (i < argc) {
        const char *arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (std::strcmp(arg, "--stats") == 0) {
            statsText = true;
            consumeArgs(argc, argv, i, 1);
        } else if (std::strcmp(arg, "--stats-json") == 0) {
            if (!has_value)
                fatal("cli: --stats-json requires a path");
            statsJsonPath = argv[i + 1];
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--trace-json") == 0) {
            if (!has_value)
                fatal("cli: --trace-json requires a path");
            traceJsonPath = argv[i + 1];
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--jobs") == 0) {
            if (!has_value)
                fatal("cli: --jobs requires a count");
            jobs_ = parseJobs(argv[i + 1], "--jobs");
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--batch-lanes") == 0) {
            if (!has_value)
                fatal("cli: --batch-lanes requires a count");
            batchLanes_ =
                parseBatchLanes(argv[i + 1], "--batch-lanes");
            batch_lanes_set = true;
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--cache-dir") == 0) {
            if (!has_value)
                fatal("cli: --cache-dir requires a directory");
            cacheDir = argv[i + 1];
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--diag-json") == 0) {
            if (!has_value)
                fatal("cli: --diag-json requires a path");
            diagJsonPath = argv[i + 1];
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--diag-dir") == 0) {
            if (!has_value)
                fatal("cli: --diag-dir requires a directory");
            diagDir = argv[i + 1];
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--metrics-jsonl") == 0) {
            if (!has_value)
                fatal("cli: --metrics-jsonl requires a path");
            metricsPath = argv[i + 1];
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--metrics-period-ms") == 0) {
            if (!has_value)
                fatal("cli: --metrics-period-ms requires a count");
            metricsPeriod =
                parsePositiveInt(argv[i + 1], "--metrics-period-ms");
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--profile-folded") == 0) {
            if (!has_value)
                fatal("cli: --profile-folded requires a path");
            profilePath = argv[i + 1];
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--profile-period-us") == 0) {
            if (!has_value)
                fatal("cli: --profile-period-us requires a count");
            profilePeriod = static_cast<std::uint64_t>(
                parsePositiveInt(argv[i + 1], "--profile-period-us"));
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--profile-topn") == 0) {
            if (!has_value)
                fatal("cli: --profile-topn requires a count");
            profileTop =
                parsePositiveInt(argv[i + 1], "--profile-topn");
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--mc-samples") == 0) {
            if (!has_value)
                fatal("cli: --mc-samples requires a count");
            mcSamples_ =
                parsePositiveInt(argv[i + 1], "--mc-samples");
            mc_samples_set = true;
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--mc-seed") == 0) {
            if (!has_value)
                fatal("cli: --mc-seed requires a seed");
            mcSeed_ = parseSeed(argv[i + 1], "--mc-seed");
            mc_seed_set = true;
            consumeArgs(argc, argv, i, 2);
        } else if (std::strcmp(arg, "--mc-yield") == 0) {
            if (!has_value)
                fatal("cli: --mc-yield requires a fraction");
            mcYield_ = parseYield(argv[i + 1], "--mc-yield");
            mc_yield_set = true;
            consumeArgs(argc, argv, i, 2);
        } else {
            ++i;
        }
    }

    if (const char *env = std::getenv("OTFT_STATS"))
        statsText = statsText || std::strcmp(env, "0") != 0;
    if (statsJsonPath.empty())
        if (const char *env = std::getenv("OTFT_STATS_JSON"))
            statsJsonPath = env;
    if (traceJsonPath.empty())
        if (const char *env = std::getenv("OTFT_TRACE_JSON"))
            traceJsonPath = env;
    if (jobs_ == 0)
        if (const char *env = std::getenv("OTFT_JOBS"))
            jobs_ = parseJobs(env, "OTFT_JOBS");
    if (cacheDir.empty())
        if (const char *env = std::getenv("OTFT_CACHE_DIR"))
            cacheDir = env;
    if (diagJsonPath.empty())
        if (const char *env = std::getenv("OTFT_DIAG_JSON"))
            diagJsonPath = env;
    if (diagDir.empty())
        if (const char *env = std::getenv("OTFT_DIAG_DIR"))
            diagDir = env;
    if (metricsPath.empty())
        if (const char *env = std::getenv("OTFT_METRICS_JSONL"))
            metricsPath = env;
    if (const char *env = std::getenv("OTFT_METRICS_PERIOD_MS"))
        metricsPeriod = parsePositiveInt(env, "OTFT_METRICS_PERIOD_MS");
    if (profilePath.empty())
        if (const char *env = std::getenv("OTFT_PROFILE_FOLDED"))
            profilePath = env;
    if (const char *env = std::getenv("OTFT_PROFILE_PERIOD_US"))
        profilePeriod = static_cast<std::uint64_t>(
            parsePositiveInt(env, "OTFT_PROFILE_PERIOD_US"));
    if (const char *env = std::getenv("OTFT_PROFILE_TOPN"))
        profileTop = parsePositiveInt(env, "OTFT_PROFILE_TOPN");
    if (!mc_samples_set)
        if (const char *env = std::getenv("OTFT_MC_SAMPLES"))
            mcSamples_ = parsePositiveInt(env, "OTFT_MC_SAMPLES");
    if (!mc_seed_set)
        if (const char *env = std::getenv("OTFT_MC_SEED"))
            mcSeed_ = parseSeed(env, "OTFT_MC_SEED");
    if (!mc_yield_set)
        if (const char *env = std::getenv("OTFT_MC_YIELD"))
            mcYield_ = parseYield(env, "OTFT_MC_YIELD");
    // OTFT_CACHE=0 disables memoization entirely (e.g. to benchmark
    // the uncached paths or bisect a suspected stale-entry problem).
    if (const char *env = std::getenv("OTFT_CACHE"))
        if (std::strcmp(env, "0") == 0)
            cache::ResultCache::instance().setEnabled(false);

    if (!batch_lanes_set)
        if (const char *env = std::getenv("OTFT_BATCH_LANES")) {
            batchLanes_ = parseBatchLanes(env, "OTFT_BATCH_LANES");
            batch_lanes_set = true;
        }

    if (jobs_ == 0)
        jobs_ = parallel::hardwareJobs();
    parallel::setJobs(jobs_);
    if (batch_lanes_set)
        parallel::setBatchLanes(batchLanes_);
    else
        batchLanes_ = parallel::batchLanes();

    if (!cacheDir.empty())
        cache::ResultCache::instance().setDirectory(cacheDir);

    if (!statsJsonPath.empty())
        validateWritable(statsJsonPath, "--stats-json");
    if (!traceJsonPath.empty()) {
        validateWritable(traceJsonPath, "--trace-json");
        trace::start(traceJsonPath);
    }

    if (!diagJsonPath.empty()) {
        validateWritable(diagJsonPath, "--diag-json");
        diag::Collector::instance().setEnabled(true);
    }
    // setDumpDirectory implies setEnabled and is fatal when the
    // directory cannot be created — same policy as --cache-dir.
    if (!diagDir.empty())
        diag::Collector::instance().setDumpDirectory(diagDir);
    if (!metricsPath.empty())
        metrics::start(metricsPath, metricsPeriod);

    // Profiler last: everything the session runs gets sampled, and
    // the timeline (if any) carries a start marker so the sampled
    // window is visible next to the spans.
    if (!profilePath.empty()) {
        validateWritable(profilePath, "--profile-folded");
        trace::recordInstant("profiler.start");
        prof::Options options;
        options.periodUs = profilePeriod;
        profiling = prof::Profiler::instance().start(options);
    }
}

void
Session::addFooterField(const std::string &key, double value)
{
    footerExtras.emplace_back(key, value);
}

void
Session::addFooterJson(const std::string &key, std::string raw_json)
{
    footerRawExtras.emplace_back(key, std::move(raw_json));
}

Session::~Session()
{
    // Stop the profiler first so its pool-attribution stats reach the
    // registry before the metrics sampler takes its final snapshot
    // and the stats reports render. The stop marker lands on the
    // still-active timeline collection.
    if (profiling) {
        trace::recordInstant("profiler.stop");
        prof::Profiler &profiler = prof::Profiler::instance();
        profiler.stop();
        std::ofstream os(profilePath);
        if (!os) {
            warn("cli: cannot write profile to ", profilePath);
        } else {
            profiler.writeFolded(os);
            inform("profile: wrote ", profiler.folded().size(),
                   " stacks (", profiler.sampleCount(),
                   " samples) to ", profilePath);
        }
        std::fprintf(stderr, "\n== profile: %s ==\n", name.c_str());
        profiler.writeTopReport(std::cerr, profileTop);
        addFooterJson("profile", profiler.footerSection(profileTop));
    }

    // Stop the metrics sampler next: its final line should capture
    // the registry as the run ended, before any exit-path mutation.
    if (!metricsPath.empty()) {
        metrics::stop();
        inform("metrics: wrote ", metrics::sampleCount(),
               " samples to ", metricsPath);
    }

    // Persist memoized results before reporting; flush warns rather
    // than throws on write failure.
    if (!cacheDir.empty())
        cache::ResultCache::instance().flush();

    if (!traceJsonPath.empty()) {
        // The path was probed at construction; losing it mid-run
        // (deleted directory, full disk) must not throw from a
        // destructor.
        try {
            trace::stop();
        } catch (const FatalError &) {
            warn("cli: trace timeline lost (", traceJsonPath,
                 " became unwritable)");
        }
    }

    const auto &registry = stats::Registry::instance();
    if (!statsJsonPath.empty()) {
        std::ofstream os(statsJsonPath);
        if (!os) {
            warn("cli: cannot write stats to ", statsJsonPath);
        } else {
            registry.dumpJson(os);
            inform("stats: wrote ", statsJsonPath);
        }
    }
    if (statsText) {
        std::fprintf(stderr, "\n== stats: %s ==\n", name.c_str());
        registry.dumpText(std::cerr);
    }

    if (!diagJsonPath.empty()) {
        auto &collector = diag::Collector::instance();
        std::ofstream os(diagJsonPath);
        if (!os) {
            warn("cli: cannot write diagnostics to ", diagJsonPath);
        } else {
            collector.dumpJson(os);
            inform("diag: wrote ", diagJsonPath, " (",
                   collector.contextCount(), " contexts, ",
                   collector.dumpPaths().size(), " dumps)");
        }
    }

    if (footer) {
        const double wall_s =
            static_cast<double>(stats::monotonicNowNs() - startNs) *
            1e-9;
        std::printf("{\"bench\": \"%s\", \"schema\": \"%s\", "
                    "\"wall_s\": %.3f, \"points\": %lld",
                    name.c_str(), perf::footerSchema, wall_s,
                    static_cast<long long>(points));
        for (const auto &[key, value] : footerExtras)
            std::printf(", \"%s\": %.6g", key.c_str(), value);
        for (const auto &[key, raw] : footerRawExtras)
            std::printf(", \"%s\": %s", key.c_str(), raw.c_str());
        std::printf("}\n");
    }
}

} // namespace otft::cli
