/**
 * @file
 * Derivative-free minimization: Nelder-Mead simplex for multi-parameter
 * fits (device model fitting, cell sizing) and golden-section search for
 * one-dimensional problems.
 */

#ifndef OTFT_UTIL_OPTIMIZE_HPP
#define OTFT_UTIL_OPTIMIZE_HPP

#include <functional>
#include <vector>

namespace otft {

/** Objective over a parameter vector; smaller is better. */
using Objective = std::function<double(const std::vector<double> &)>;

/** Options controlling the Nelder-Mead search. */
struct NelderMeadOptions
{
    /** Maximum number of objective evaluations. */
    int maxEvals = 2000;
    /** Stop when the simplex value spread falls below this. */
    double tolerance = 1e-10;
    /** Initial simplex size as a fraction of each parameter (min 1e-4). */
    double initialScale = 0.1;
};

/** Result of a minimization. */
struct OptimizeResult
{
    std::vector<double> x;
    double value = 0.0;
    int evals = 0;
    bool converged = false;
};

/**
 * Minimize the objective starting from x0 with the Nelder-Mead simplex
 * method (reflection / expansion / contraction / shrink).
 */
OptimizeResult nelderMead(const Objective &objective,
                          std::vector<double> x0,
                          const NelderMeadOptions &options = {});

/**
 * Golden-section minimization of a unimodal 1-D function on [lo, hi].
 * @return the minimizing x to within tol.
 */
double goldenSection(const std::function<double(double)> &f, double lo,
                     double hi, double tol = 1e-9);

} // namespace otft

#endif // OTFT_UTIL_OPTIMIZE_HPP
