#include "util/parallel.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "util/logging.hpp"
#include "util/profiler.hpp"
#include "util/stats_registry.hpp"

namespace otft::parallel {

namespace {

std::atomic<int> g_jobs{0}; // 0 = not yet initialized

std::atomic<int> g_batch_lanes{8}; // solver lane width; 0 = scalar

thread_local bool t_inside_worker = false;

/**
 * Pool-stats state. Worker slots live in a deque (stable references)
 * keyed by the worker's spawn index; slots survive pool shutdown so
 * cumulative totals span pool generations until resetPoolStats().
 */
struct WorkerSlot
{
    std::atomic<std::uint64_t> busyNs{0};
    std::atomic<std::uint64_t> chunks{0};
};

std::atomic<bool> g_pool_stats{false};
std::atomic<int> g_queue_depth{0};
std::atomic<std::uint64_t> g_caller_busy_ns{0};
std::atomic<std::uint64_t> g_caller_chunks{0};
std::mutex g_slots_mutex;
std::deque<WorkerSlot> &
workerSlots()
{
    static std::deque<WorkerSlot> slots;
    return slots;
}

thread_local WorkerSlot *t_slot = nullptr;

WorkerSlot *
claimWorkerSlot(std::size_t index)
{
    std::lock_guard<std::mutex> lock(g_slots_mutex);
    std::deque<WorkerSlot> &slots = workerSlots();
    while (slots.size() <= index)
        slots.emplace_back();
    return &slots[index];
}

/** One parallelFor invocation shared between caller and helpers. */
struct Batch
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *fn = nullptr;
    Chunking chunking = Chunking::Dynamic;
    std::size_t grain = 1;
    CancelToken *cancel = nullptr;

    /** Static ranges, one per participant slot. */
    std::vector<std::pair<std::size_t, std::size_t>> ranges;

    /** Shared cursor: next index (dynamic) or next range (static). */
    std::atomic<std::size_t> cursor{0};
    /** Participant slots still claimable (caller holds one). */
    int maxParticipants = 1;
    int participants = 1;
    /** Set when a cancel token stopped the loop early. */
    std::atomic<bool> cancelled{false};

    /** Lowest-index exception wins (deterministic rethrow). */
    std::mutex errMutex;
    std::size_t errIndex = 0;
    std::exception_ptr error;

    /** Helper lifecycle (guarded by doneMutex). */
    std::mutex doneMutex;
    std::condition_variable doneCv;
    int activeHelpers = 0;

    /** Pool-stats bookkeeping (only touched when stats are on). */
    std::chrono::steady_clock::time_point submitTime{};
    std::mutex statsMutex;
    /** Busy ns of each participant (caller + helpers) this region. */
    std::vector<std::uint64_t> participantBusyNs;

    bool
    hasWork() const
    {
        const std::size_t limit = chunking == Chunking::Static
                                      ? ranges.size()
                                      : n;
        return cursor.load(std::memory_order_relaxed) < limit &&
               !cancelled.load(std::memory_order_relaxed);
    }
};

void
recordError(Batch &batch, std::size_t index)
{
    std::lock_guard<std::mutex> lock(batch.errMutex);
    if (!batch.error || index < batch.errIndex) {
        batch.error = std::current_exception();
        batch.errIndex = index;
    }
}

/**
 * Execute indices of `batch` until the shared cursor is exhausted or
 * the cancel token fires. Exceptions are recorded, not propagated:
 * every index still runs, so the lowest throwing index is the same
 * for every job count.
 */
void
work(Batch &batch)
{
    prof::BusyScope busy_mark;
    const bool stats_on = g_pool_stats.load(std::memory_order_relaxed);
    std::uint64_t busy_ns = 0;
    std::uint64_t chunks_run = 0;
    while (true) {
        if (batch.cancel && batch.cancel->cancelled()) {
            batch.cancelled.store(true, std::memory_order_relaxed);
            break;
        }
        std::size_t lo, hi;
        if (batch.chunking == Chunking::Static) {
            const std::size_t slot = batch.cursor.fetch_add(
                1, std::memory_order_relaxed);
            if (slot >= batch.ranges.size())
                break;
            lo = batch.ranges[slot].first;
            hi = batch.ranges[slot].second;
        } else {
            lo = batch.cursor.fetch_add(batch.grain,
                                        std::memory_order_relaxed);
            if (lo >= batch.n)
                break;
            hi = std::min(lo + batch.grain, batch.n);
        }
        std::chrono::steady_clock::time_point start{};
        if (stats_on)
            start = std::chrono::steady_clock::now();
        for (std::size_t i = lo; i < hi; ++i) {
            try {
                (*batch.fn)(i);
            } catch (...) {
                recordError(batch, i);
            }
        }
        if (stats_on) {
            static stats::Histogram &stat_task_s = stats::histogram(
                "parallel.pool.task_s", 0.0, 0.05, 50,
                "per-chunk execution time in parallelFor regions");
            const auto dt = std::chrono::duration_cast<
                                std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() -
                                start)
                                .count();
            busy_ns += static_cast<std::uint64_t>(dt);
            ++chunks_run;
            stat_task_s.sample(static_cast<double>(dt) * 1e-9);
        }
    }
    if (!stats_on)
        return;
    // Flush this participant's totals: into its worker slot (pool
    // threads) or the shared caller counters, plus the per-region
    // list the imbalance summary folds after retire().
    if (t_slot) {
        t_slot->busyNs.fetch_add(busy_ns, std::memory_order_relaxed);
        t_slot->chunks.fetch_add(chunks_run,
                                 std::memory_order_relaxed);
    } else {
        g_caller_busy_ns.fetch_add(busy_ns,
                                   std::memory_order_relaxed);
        g_caller_chunks.fetch_add(chunks_run,
                                  std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(batch.statsMutex);
    batch.participantBusyNs.push_back(busy_ns);
}

/** The process-wide worker pool (workers spawn lazily). */
struct Pool
{
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::thread> threads;
    std::deque<Batch *> queue;
    bool stop = false;

    ~Pool() { shutdown(); }

    void
    shutdown()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stop = true;
        }
        cv.notify_all();
        for (std::thread &t : threads)
            t.join();
        threads.clear();
        {
            std::lock_guard<std::mutex> lock(mutex);
            stop = false;
        }
    }

    void
    workerLoop(std::size_t index)
    {
        t_inside_worker = true;
        prof::setThreadName("worker");
        t_slot = claimWorkerSlot(index);
        while (true) {
            Batch *batch = nullptr;
            {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock, [&] {
                    if (stop)
                        return true;
                    for (Batch *b : queue)
                        if (b->hasWork() &&
                            b->participants < b->maxParticipants)
                            return true;
                    return false;
                });
                if (stop)
                    return;
                for (Batch *b : queue) {
                    if (b->hasWork() &&
                        b->participants < b->maxParticipants) {
                        batch = b;
                        break;
                    }
                }
                if (!batch)
                    continue;
                ++batch->participants;
                std::lock_guard<std::mutex> done(batch->doneMutex);
                ++batch->activeHelpers;
            }
            if (g_pool_stats.load(std::memory_order_relaxed)) {
                static stats::Histogram &stat_queue_wait_s =
                    stats::histogram(
                        "parallel.pool.queue_wait_s", 0.0, 0.01, 50,
                        "batch publish to helper pickup latency");
                const auto wait =
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() -
                        batch->submitTime)
                        .count();
                stat_queue_wait_s.sample(static_cast<double>(wait) *
                                         1e-9);
            }
            work(*batch);
            {
                // Notify while still holding doneMutex: the moment
                // the count hits zero with the mutex free, retire()
                // may destroy the batch, so the cv must not be
                // touched after the unlock.
                std::lock_guard<std::mutex> done(batch->doneMutex);
                --batch->activeHelpers;
                batch->doneCv.notify_all();
            }
        }
    }

    /** Grow to at least `count` workers (holds the pool mutex). */
    void
    ensureWorkers(std::size_t count)
    {
        std::lock_guard<std::mutex> lock(mutex);
        while (threads.size() < count)
            threads.emplace_back(
                [this, index = threads.size()] { workerLoop(index); });
    }

    void
    submit(Batch &batch)
    {
        if (g_pool_stats.load(std::memory_order_relaxed))
            batch.submitTime = std::chrono::steady_clock::now();
        {
            std::lock_guard<std::mutex> lock(mutex);
            queue.push_back(&batch);
        }
        g_queue_depth.fetch_add(1, std::memory_order_relaxed);
        cv.notify_all();
    }

    /**
     * Unpublish the batch so no new helper can join, then drain the
     * helpers already inside it. Must be called before the batch
     * leaves the caller's stack frame.
     */
    void
    retire(Batch &batch)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            for (auto it = queue.begin(); it != queue.end(); ++it) {
                if (*it == &batch) {
                    queue.erase(it);
                    break;
                }
            }
        }
        g_queue_depth.fetch_sub(1, std::memory_order_relaxed);
        std::unique_lock<std::mutex> done(batch.doneMutex);
        batch.doneCv.wait(done,
                          [&] { return batch.activeHelpers == 0; });
    }
};

Pool &
pool()
{
    static Pool p;
    return p;
}

/** Serial fall-back: in-order, fail-fast, cancel between indices. */
bool
serialFor(std::size_t n, const std::function<void(std::size_t)> &fn,
          CancelToken *cancel)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (cancel && cancel->cancelled())
            return false;
        fn(i);
    }
    return true;
}

} // namespace

int
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
setJobs(int n)
{
    if (n < 1)
        fatal("parallel: job count must be >= 1, got ", n);
    g_jobs.store(n, std::memory_order_relaxed);
}

int
jobs()
{
    const int n = g_jobs.load(std::memory_order_relaxed);
    return n > 0 ? n : hardwareJobs();
}

JobsOverride::JobsOverride(int n) : prev(jobs())
{
    setJobs(n);
}

JobsOverride::~JobsOverride()
{
    setJobs(prev);
}

void
setBatchLanes(int n)
{
    if (n < 0)
        fatal("parallel: batch lane width must be >= 0, got ", n);
    g_batch_lanes.store(n, std::memory_order_relaxed);
}

int
batchLanes()
{
    return g_batch_lanes.load(std::memory_order_relaxed);
}

BatchLanesOverride::BatchLanesOverride(int n) : prev(batchLanes())
{
    setBatchLanes(n);
}

BatchLanesOverride::~BatchLanesOverride()
{
    setBatchLanes(prev);
}

bool
insideWorker()
{
    return t_inside_worker;
}

void
shutdownPool()
{
    pool().shutdown();
}

void
setPoolStatsEnabled(bool on)
{
    g_pool_stats.store(on, std::memory_order_relaxed);
}

bool
poolStatsEnabled()
{
    return g_pool_stats.load(std::memory_order_relaxed);
}

PoolStats
poolStatsSnapshot()
{
    PoolStats s;
    {
        std::lock_guard<std::mutex> lock(g_slots_mutex);
        for (const WorkerSlot &slot : workerSlots()) {
            s.workerBusyNs.push_back(
                slot.busyNs.load(std::memory_order_relaxed));
            s.workerChunks.push_back(
                slot.chunks.load(std::memory_order_relaxed));
        }
    }
    s.callerBusyNs = g_caller_busy_ns.load(std::memory_order_relaxed);
    s.callerChunks = g_caller_chunks.load(std::memory_order_relaxed);
    s.queueDepth = g_queue_depth.load(std::memory_order_relaxed);
    return s;
}

void
resetPoolStats()
{
    std::lock_guard<std::mutex> lock(g_slots_mutex);
    for (WorkerSlot &slot : workerSlots()) {
        slot.busyNs.store(0, std::memory_order_relaxed);
        slot.chunks.store(0, std::memory_order_relaxed);
    }
    g_caller_busy_ns.store(0, std::memory_order_relaxed);
    g_caller_chunks.store(0, std::memory_order_relaxed);
}

int
queueDepth()
{
    return g_queue_depth.load(std::memory_order_relaxed);
}

bool
parallelFor(std::size_t n,
            const std::function<void(std::size_t)> &fn,
            const ForOptions &options)
{
    if (n == 0)
        return true;
    if (options.grain == 0)
        fatal("parallel: grain must be >= 1");
    int j = options.jobs != 0 ? options.jobs : jobs();
    if (j < 1)
        fatal("parallel: job count must be >= 1, got ", j);
    if (static_cast<std::size_t>(j) > n)
        j = static_cast<int>(n);

    // Serial fast path: one job, one index, or already inside a pool
    // worker (nested fan-out runs inline to avoid deadlock).
    if (j == 1 || insideWorker())
        return serialFor(n, fn, options.cancel);

    Batch batch;
    batch.n = n;
    batch.fn = &fn;
    batch.chunking = options.chunking;
    batch.grain = options.grain;
    batch.cancel = options.cancel;
    batch.maxParticipants = j;
    if (options.chunking == Chunking::Static) {
        const std::size_t p = static_cast<std::size_t>(j);
        const std::size_t base = n / p;
        const std::size_t rem = n % p;
        std::size_t lo = 0;
        for (std::size_t s = 0; s < p; ++s) {
            const std::size_t len = base + (s < rem ? 1 : 0);
            batch.ranges.emplace_back(lo, lo + len);
            lo += len;
        }
    }

    Pool &shared = pool();
    shared.ensureWorkers(static_cast<std::size_t>(j - 1));
    shared.submit(batch);
    work(batch);
    shared.retire(batch);

    // End-of-region load-imbalance summary: every helper has drained,
    // so participantBusyNs is complete and uncontended.
    if (g_pool_stats.load(std::memory_order_relaxed) &&
        !batch.participantBusyNs.empty()) {
        static stats::Accumulator &stat_busy_max = stats::accumulator(
            "parallel.region.busy_max_s",
            "slowest participant's busy time per parallelFor region");
        static stats::Accumulator &stat_busy_mean =
            stats::accumulator(
                "parallel.region.busy_mean_s",
                "mean participant busy time per parallelFor region");
        static stats::Accumulator &stat_imbalance =
            stats::accumulator(
                "parallel.region.imbalance",
                "max/mean participant busy time per region (1.0 = "
                "perfectly balanced)");
        std::uint64_t max_ns = 0;
        std::uint64_t sum_ns = 0;
        for (const std::uint64_t ns : batch.participantBusyNs) {
            max_ns = std::max(max_ns, ns);
            sum_ns += ns;
        }
        const double mean_ns =
            static_cast<double>(sum_ns) /
            static_cast<double>(batch.participantBusyNs.size());
        stat_busy_max.sample(static_cast<double>(max_ns) * 1e-9);
        stat_busy_mean.sample(mean_ns * 1e-9);
        if (mean_ns > 0.0)
            stat_imbalance.sample(static_cast<double>(max_ns) /
                                  mean_ns);
    }

    if (batch.error)
        std::rethrow_exception(batch.error);
    return !batch.cancelled.load(std::memory_order_relaxed);
}

} // namespace otft::parallel
