#include "util/parallel.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "util/logging.hpp"

namespace otft::parallel {

namespace {

std::atomic<int> g_jobs{0}; // 0 = not yet initialized

thread_local bool t_inside_worker = false;

/** One parallelFor invocation shared between caller and helpers. */
struct Batch
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *fn = nullptr;
    Chunking chunking = Chunking::Dynamic;
    std::size_t grain = 1;
    CancelToken *cancel = nullptr;

    /** Static ranges, one per participant slot. */
    std::vector<std::pair<std::size_t, std::size_t>> ranges;

    /** Shared cursor: next index (dynamic) or next range (static). */
    std::atomic<std::size_t> cursor{0};
    /** Participant slots still claimable (caller holds one). */
    int maxParticipants = 1;
    int participants = 1;
    /** Set when a cancel token stopped the loop early. */
    std::atomic<bool> cancelled{false};

    /** Lowest-index exception wins (deterministic rethrow). */
    std::mutex errMutex;
    std::size_t errIndex = 0;
    std::exception_ptr error;

    /** Helper lifecycle (guarded by doneMutex). */
    std::mutex doneMutex;
    std::condition_variable doneCv;
    int activeHelpers = 0;

    bool
    hasWork() const
    {
        const std::size_t limit = chunking == Chunking::Static
                                      ? ranges.size()
                                      : n;
        return cursor.load(std::memory_order_relaxed) < limit &&
               !cancelled.load(std::memory_order_relaxed);
    }
};

void
recordError(Batch &batch, std::size_t index)
{
    std::lock_guard<std::mutex> lock(batch.errMutex);
    if (!batch.error || index < batch.errIndex) {
        batch.error = std::current_exception();
        batch.errIndex = index;
    }
}

/**
 * Execute indices of `batch` until the shared cursor is exhausted or
 * the cancel token fires. Exceptions are recorded, not propagated:
 * every index still runs, so the lowest throwing index is the same
 * for every job count.
 */
void
work(Batch &batch)
{
    while (true) {
        if (batch.cancel && batch.cancel->cancelled()) {
            batch.cancelled.store(true, std::memory_order_relaxed);
            return;
        }
        std::size_t lo, hi;
        if (batch.chunking == Chunking::Static) {
            const std::size_t slot = batch.cursor.fetch_add(
                1, std::memory_order_relaxed);
            if (slot >= batch.ranges.size())
                return;
            lo = batch.ranges[slot].first;
            hi = batch.ranges[slot].second;
        } else {
            lo = batch.cursor.fetch_add(batch.grain,
                                        std::memory_order_relaxed);
            if (lo >= batch.n)
                return;
            hi = std::min(lo + batch.grain, batch.n);
        }
        for (std::size_t i = lo; i < hi; ++i) {
            try {
                (*batch.fn)(i);
            } catch (...) {
                recordError(batch, i);
            }
        }
    }
}

/** The process-wide worker pool (workers spawn lazily). */
struct Pool
{
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::thread> threads;
    std::deque<Batch *> queue;
    bool stop = false;

    ~Pool() { shutdown(); }

    void
    shutdown()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stop = true;
        }
        cv.notify_all();
        for (std::thread &t : threads)
            t.join();
        threads.clear();
        {
            std::lock_guard<std::mutex> lock(mutex);
            stop = false;
        }
    }

    void
    workerLoop()
    {
        t_inside_worker = true;
        while (true) {
            Batch *batch = nullptr;
            {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock, [&] {
                    if (stop)
                        return true;
                    for (Batch *b : queue)
                        if (b->hasWork() &&
                            b->participants < b->maxParticipants)
                            return true;
                    return false;
                });
                if (stop)
                    return;
                for (Batch *b : queue) {
                    if (b->hasWork() &&
                        b->participants < b->maxParticipants) {
                        batch = b;
                        break;
                    }
                }
                if (!batch)
                    continue;
                ++batch->participants;
                std::lock_guard<std::mutex> done(batch->doneMutex);
                ++batch->activeHelpers;
            }
            work(*batch);
            {
                // Notify while still holding doneMutex: the moment
                // the count hits zero with the mutex free, retire()
                // may destroy the batch, so the cv must not be
                // touched after the unlock.
                std::lock_guard<std::mutex> done(batch->doneMutex);
                --batch->activeHelpers;
                batch->doneCv.notify_all();
            }
        }
    }

    /** Grow to at least `count` workers (holds the pool mutex). */
    void
    ensureWorkers(std::size_t count)
    {
        std::lock_guard<std::mutex> lock(mutex);
        while (threads.size() < count)
            threads.emplace_back([this] { workerLoop(); });
    }

    void
    submit(Batch &batch)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            queue.push_back(&batch);
        }
        cv.notify_all();
    }

    /**
     * Unpublish the batch so no new helper can join, then drain the
     * helpers already inside it. Must be called before the batch
     * leaves the caller's stack frame.
     */
    void
    retire(Batch &batch)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            for (auto it = queue.begin(); it != queue.end(); ++it) {
                if (*it == &batch) {
                    queue.erase(it);
                    break;
                }
            }
        }
        std::unique_lock<std::mutex> done(batch.doneMutex);
        batch.doneCv.wait(done,
                          [&] { return batch.activeHelpers == 0; });
    }
};

Pool &
pool()
{
    static Pool p;
    return p;
}

/** Serial fall-back: in-order, fail-fast, cancel between indices. */
bool
serialFor(std::size_t n, const std::function<void(std::size_t)> &fn,
          CancelToken *cancel)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (cancel && cancel->cancelled())
            return false;
        fn(i);
    }
    return true;
}

} // namespace

int
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
setJobs(int n)
{
    if (n < 1)
        fatal("parallel: job count must be >= 1, got ", n);
    g_jobs.store(n, std::memory_order_relaxed);
}

int
jobs()
{
    const int n = g_jobs.load(std::memory_order_relaxed);
    return n > 0 ? n : hardwareJobs();
}

JobsOverride::JobsOverride(int n) : prev(jobs())
{
    setJobs(n);
}

JobsOverride::~JobsOverride()
{
    setJobs(prev);
}

bool
insideWorker()
{
    return t_inside_worker;
}

void
shutdownPool()
{
    pool().shutdown();
}

bool
parallelFor(std::size_t n,
            const std::function<void(std::size_t)> &fn,
            const ForOptions &options)
{
    if (n == 0)
        return true;
    if (options.grain == 0)
        fatal("parallel: grain must be >= 1");
    int j = options.jobs != 0 ? options.jobs : jobs();
    if (j < 1)
        fatal("parallel: job count must be >= 1, got ", j);
    if (static_cast<std::size_t>(j) > n)
        j = static_cast<int>(n);

    // Serial fast path: one job, one index, or already inside a pool
    // worker (nested fan-out runs inline to avoid deadlock).
    if (j == 1 || insideWorker())
        return serialFor(n, fn, options.cancel);

    Batch batch;
    batch.n = n;
    batch.fn = &fn;
    batch.chunking = options.chunking;
    batch.grain = options.grain;
    batch.cancel = options.cancel;
    batch.maxParticipants = j;
    if (options.chunking == Chunking::Static) {
        const std::size_t p = static_cast<std::size_t>(j);
        const std::size_t base = n / p;
        const std::size_t rem = n % p;
        std::size_t lo = 0;
        for (std::size_t s = 0; s < p; ++s) {
            const std::size_t len = base + (s < rem ? 1 : 0);
            batch.ranges.emplace_back(lo, lo + len);
            lo += len;
        }
    }

    Pool &shared = pool();
    shared.ensureWorkers(static_cast<std::size_t>(j - 1));
    shared.submit(batch);
    work(batch);
    shared.retire(batch);

    if (batch.error)
        std::rethrow_exception(batch.error);
    return !batch.cancelled.load(std::memory_order_relaxed);
}

} // namespace otft::parallel
