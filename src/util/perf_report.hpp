/**
 * @file
 * Perf flight recorder: scenario suite runner, canonical BENCH_*.json
 * reports, and noise-aware report diffing.
 *
 * The pieces fit together as a longitudinal performance record:
 *
 *  - a ScenarioSuite runs registered scenarios (one per layer of the
 *    paper flow) with configurable warmup and repetitions, measuring
 *    per-rep wall time and the per-scenario *stats-registry counter
 *    deltas* — Newton iterations, LU factorizations, arc evaluations,
 *    cache hits — so algorithmic regressions show even when wall-time
 *    noise hides them;
 *  - writeReport()/readReport() serialize a schema-versioned report
 *    ("otft-bench-1") with an environment fingerprint (git SHA,
 *    compiler, build type, CPU count) for apples-to-apples trend
 *    lines;
 *  - diffReports() compares two reports with a noise gate derived
 *    from the median absolute deviation (MAD) of the wall-time
 *    samples: a scenario only counts as a regression when its median
 *    moved by more than max(rel-threshold x baseline, K x MAD,
 *    absolute floor). Counter deltas are near-deterministic, so they
 *    use a tight relative threshold.
 *
 * The `perf_suite` bench binary provides the scenarios and CLI; the
 * `perf_diff` binary wraps diffReports() with table output and a
 * nonzero exit on regression, which is what scripts/perf_gate.sh and
 * the perf_smoke ctest label gate on.
 */

#ifndef OTFT_UTIL_PERF_REPORT_HPP
#define OTFT_UTIL_PERF_REPORT_HPP

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace otft::perf {

/** The schema tag written into (and required of) report files. */
inline constexpr const char *reportSchema = "otft-bench-1";

/** The schema tag of the one-line bench footers (see cli::Session). */
inline constexpr const char *footerSchema = "otft-bench-footer-1";

// ---------------------------------------------------------------------
// Robust timing statistics.
// ---------------------------------------------------------------------

/** Robust summary of one scenario's wall-time samples, seconds. */
struct TimingSummary
{
    std::uint64_t reps = 0;
    double minS = 0.0;
    double medianS = 0.0;
    /** Median absolute deviation from the median (noise scale). */
    double madS = 0.0;
    double p95S = 0.0;
    double meanS = 0.0;
    double totalS = 0.0;
};

/**
 * Rank-based percentile of an ascending-sorted sample vector with
 * linear interpolation between order statistics (rank p/100 * (n-1)).
 * Empty input reports 0.
 */
double percentileSorted(const std::vector<double> &sorted, double p);

/** Summarize samples (any order); does not modify the argument. */
TimingSummary summarizeTimes(const std::vector<double> &samples);

// ---------------------------------------------------------------------
// Environment fingerprint.
// ---------------------------------------------------------------------

/** Where a report was recorded, for apples-to-apples comparisons. */
struct EnvFingerprint
{
    std::string gitSha;
    std::string compiler;
    std::string buildType;
    std::string os;
    /** Machine name (uname nodename); "unknown" in old reports. */
    std::string host;
    int cpuCount = 0;
    /** parallel::jobs() at record time; 0 in old reports. */
    int jobs = 0;
    std::string timestampUtc;
};

/** Fingerprint of this build/process. */
EnvFingerprint currentEnvironment();

// ---------------------------------------------------------------------
// Scenarios and the suite runner.
// ---------------------------------------------------------------------

/** One registered benchmark scenario. */
struct Scenario
{
    /** Dotted name, `layer.what` ("circuit.dc_operating_point"). */
    std::string name;
    /** The flow layer it exercises ("circuit", "sta", ...). */
    std::string layer;
    std::string description;
    /** Untimed one-time preparation (builds fixtures/caches). */
    std::function<void()> setup;
    /** One timed repetition; returns a points count for the report. */
    std::function<std::uint64_t()> run;
};

/** Result of running one scenario (or one ingested footer). */
struct ScenarioResult
{
    std::string name;
    std::string layer;
    std::string description;
    std::uint64_t points = 0;
    TimingSummary timing;
    /** Per-rep wall times, seconds, in run order. */
    std::vector<double> samplesS;
    /**
     * Per-rep stats-registry counter deltas (total across measured
     * reps divided by rep count). Only counters that moved appear.
     */
    std::map<std::string, double> counters;
};

/** Suite run controls. */
struct SuiteOptions
{
    std::uint64_t reps = 5;
    std::uint64_t warmup = 1;
    /** Substring filter on scenario names; empty runs everything. */
    std::string filter;
    /**
     * Run the sampling profiler across each scenario's timed reps
     * (setup and warmup stay unsampled) and write one collapsed-stack
     * artifact per scenario: `PROF_<name>.folded` (dots in the name
     * become underscores) under profileDir (default: cwd).
     */
    bool profile = false;
    std::string profileDir;
    std::uint64_t profilePeriodUs = 1000;
    /** Rows in the per-scenario top-frames report on stderr. */
    int profileTopN = 5;
};

/** An ordered collection of runnable scenarios. */
class ScenarioSuite
{
  public:
    /** Register a scenario; fatal on a duplicate name. */
    void add(Scenario scenario);

    const std::vector<Scenario> &scenarios() const { return items; }

    /**
     * Run every scenario matching the filter: setup (untimed), warmup
     * reps, stats-registry reset, then `reps` timed reps with the
     * counter delta captured across them. Progress goes through
     * inform(), so OTFT_LOG_LEVEL/setQuiet() control it.
     */
    std::vector<ScenarioResult> run(const SuiteOptions &options) const;

  private:
    std::vector<Scenario> items;
};

// ---------------------------------------------------------------------
// The canonical report document.
// ---------------------------------------------------------------------

/** One BENCH_*.json document. */
struct BenchReport
{
    std::string suite = "perf_suite";
    std::uint64_t reps = 0;
    std::uint64_t warmup = 0;
    EnvFingerprint env;
    std::vector<ScenarioResult> scenarios;
};

/** Serialize as schema-versioned JSON (stable field order). */
void writeReport(const BenchReport &report, std::ostream &os);

/**
 * Parse a report document; fatal on malformed input or a schema tag
 * other than reportSchema.
 */
BenchReport readReport(std::istream &is);

/**
 * Parse newline-delimited bench footers (the last stdout line of
 * every fig / ext bench) into single-sample scenario results under
 * layer "bench". Numeric footer fields beyond wall_s/points are kept
 * as counter-style metrics so they join the trajectory. Lines that are
 * not footer objects are skipped.
 */
std::vector<ScenarioResult> ingestFooters(std::istream &is);

// ---------------------------------------------------------------------
// Noise-aware diffing.
// ---------------------------------------------------------------------

/** Gate configuration for diffReports(). */
struct DiffOptions
{
    /** Relative wall-time change that counts as real. */
    double wallThreshold = 0.10;
    /** Noise gate width in MADs (of the noisier report). */
    double madK = 3.0;
    /** Absolute wall-time floor, seconds (clock granularity). */
    double minWallDeltaS = 20e-6;
    /** Relative threshold for per-rep counter deltas. */
    double counterThreshold = 0.02;
};

/** Verdict for one compared metric. */
enum class DiffStatus { Unchanged, Improved, Regressed, Added, Removed };

/** @return printable status ("ok", "REGRESSED", ...). */
const char *toString(DiffStatus status);

/** One compared metric of one scenario. */
struct DiffEntry
{
    std::string scenario;
    /** "wall_s" or a counter name. */
    std::string metric;
    double baseline = 0.0;
    double current = 0.0;
    /** Relative change (current - baseline) / baseline. */
    double delta = 0.0;
    /** The absolute change the gate required before flagging. */
    double gate = 0.0;
    DiffStatus status = DiffStatus::Unchanged;
};

/** Full comparison of two reports. */
struct DiffReport
{
    /**
     * One wall_s entry per scenario (matched, added, or removed) plus
     * one entry per counter whose change cleared the gate.
     */
    std::vector<DiffEntry> entries;
    int regressions = 0;
    int improvements = 0;
    /**
     * Environment fingerprint mismatches between the two reports
     * (host, git SHA, job count, ...): the comparison still runs, but
     * both renderers surface these so an apples-to-oranges diff is
     * never silent. Fields that are "unknown"/0 on either side (old
     * reports predating the field) are not flagged.
     */
    std::vector<std::string> envWarnings;
};

/** Compare `current` against `baseline` under the gate options. */
DiffReport diffReports(const BenchReport &baseline,
                       const BenchReport &current,
                       const DiffOptions &options = {});

/** Render the regression/improvement table. */
void renderDiff(const DiffReport &diff, std::ostream &os);

/**
 * Render the diff as a GitHub-flavored markdown table (for PR
 * comments / CI job summaries). Regressed rows are bolded; the
 * trailing summary line matches renderDiff().
 */
void renderDiffMarkdown(const DiffReport &diff, std::ostream &os);

} // namespace otft::perf

#endif // OTFT_UTIL_PERF_REPORT_HPP
