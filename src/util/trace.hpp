/**
 * @file
 * Scoped tracing: RAII wall-time spans that aggregate into the stats
 * registry and can optionally stream a Chrome trace_event JSON
 * timeline (openable in about:tracing or https://ui.perfetto.dev).
 *
 * Usage at a call site — the macro registers an accumulator named
 * `time.<name>` once and times every pass through the scope:
 *
 *     void StaEngine::analyze(...) {
 *         OTFT_TRACE_SCOPE("sta.analyze");
 *         ...
 *     }
 *
 * Span names follow the same `layer.noun.verb` convention as stats.
 * Aggregation is inclusive: a parent span's time contains its nested
 * children, exactly as in the Chrome timeline view. When the stats
 * registry is disabled and no timeline collection is active, spans
 * skip their clock reads entirely and have no side effects.
 *
 * Concurrency: spans may close on any thread. Each thread buffers its
 * events privately (registered with the collector on first use) and
 * stop() merges every buffer into one Chrome stream, tagging events
 * with a per-thread tid. start()/stop() themselves should be called
 * from one thread, conventionally the cli::Session owner.
 */

#ifndef OTFT_UTIL_TRACE_HPP
#define OTFT_UTIL_TRACE_HPP

#include <cstdint>
#include <string>

#include "util/profiler.hpp"
#include "util/stats_registry.hpp"

namespace otft::trace {

/**
 * Begin collecting a Chrome trace_event timeline. Events buffer in
 * memory until stop() writes them to `path` as a JSON array (the
 * format both about:tracing and Perfetto accept). Collecting twice
 * without an intervening stop() discards the first buffer.
 */
void start(const std::string &path);

/** Write buffered events to the start() path and stop collecting. */
void stop();

/** @return true while a timeline collection is active. */
bool collecting();

/** Number of buffered timeline events (for tests). */
std::size_t eventCount();

/** Internal: record one complete ("ph":"X") event. */
void recordEvent(const char *name, std::int64_t start_ns,
                 std::int64_t end_ns);

/**
 * Record a zero-width marker on the timeline (profiler start/stop,
 * phase boundaries). No-op unless a collection is active.
 */
void recordInstant(const char *name);

/**
 * RAII span: on destruction samples elapsed seconds into the given
 * registry accumulator and, when a timeline collection is active,
 * records a trace_event. The span also doubles as one frame of the
 * sampling profiler's context stack while a collection runs. Inert
 * when all three are off (one extra relaxed load for the profiler).
 */
class Span
{
  public:
    Span(const char *name, stats::Accumulator &acc)
        : name(name), acc(acc),
          active(stats::enabled() || collecting()), startNs(0)
    {
        if (active)
            startNs = stats::monotonicNowNs();
        if (prof::enabled()) {
            prof::pushFrame(name);
            profPushed = true;
        }
    }

    ~Span()
    {
        if (profPushed)
            prof::popFrame();
        if (!active)
            return;
        const std::int64_t end_ns = stats::monotonicNowNs();
        if (stats::enabled())
            acc.sample(static_cast<double>(end_ns - startNs) * 1e-9);
        if (collecting())
            recordEvent(name, startNs, end_ns);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name;
    stats::Accumulator &acc;
    bool active;
    bool profPushed = false;
    std::int64_t startNs;
};

} // namespace otft::trace

#define OTFT_TRACE_CONCAT2(a, b) a##b
#define OTFT_TRACE_CONCAT(a, b) OTFT_TRACE_CONCAT2(a, b)

/**
 * Time the enclosing scope under `name` (a string literal). Aggregates
 * into the stats accumulator `time.<name>` and into the active
 * timeline collection, if any.
 */
#define OTFT_TRACE_SCOPE(name)                                          \
    static ::otft::stats::Accumulator &OTFT_TRACE_CONCAT(               \
        otft_trace_acc_, __LINE__) =                                    \
        ::otft::stats::accumulator("time." name,                        \
                                   "seconds in " name " spans");        \
    ::otft::trace::Span OTFT_TRACE_CONCAT(otft_trace_span_, __LINE__)(  \
        name, OTFT_TRACE_CONCAT(otft_trace_acc_, __LINE__))

#endif // OTFT_UTIL_TRACE_HPP
