/**
 * @file
 * Content-addressed result cache for deterministic physics results.
 *
 * Characterization and exploration sweeps repeat identical work: the
 * fig11-fig15 benches share cells across design points, perf reps
 * re-measure the same arcs, and every (slew, load) grid point of a
 * cell re-solves the same DC operating point. Results are pure
 * functions of their inputs, so they are memoized here under a
 * content hash of everything that can change the answer (netlist
 * canonical form, device-model parameters, solver configuration,
 * stimulus parameters).
 *
 * Determinism contract: cached payloads are the exact doubles a cold
 * computation produced (in memory verbatim; on disk via %.17g, which
 * round-trips binary64 exactly). Callers use a hit *as* the result,
 * never as an iteration seed, so cache-warm output is bit-identical
 * to cache-cold output and immune to which parallel task computed the
 * entry first.
 *
 * Thread safety: all public methods lock one internal mutex; the
 * cache is shared freely across the util/parallel worker pool.
 *
 * Persistence: in-memory LRU always; optionally backed by a JSON file
 * (`<dir>/result_cache.json`) loaded at setDirectory() and written by
 * flush(). cli::Session wires `--cache-dir` / OTFT_CACHE_DIR to this
 * and flushes on exit. Corrupt or truncated cache files are never
 * fatal: parse failures warn and behave as a miss.
 */

#ifndef OTFT_UTIL_RESULT_CACHE_HPP
#define OTFT_UTIL_RESULT_CACHE_HPP

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace otft::cache {

/**
 * FNV-1a 64-bit streaming hasher for cache keys. Doubles are hashed
 * by bit pattern (after normalizing -0.0 to +0.0), strings with a
 * length prefix so concatenations cannot collide, and every key
 * should start with a versioned salt ("arcpoint-v1") so a change in
 * the producing algorithm retires stale entries.
 */
class KeyHasher
{
  public:
    KeyHasher &add(const void *data, std::size_t len);
    KeyHasher &add(double v);
    KeyHasher &add(std::uint64_t v);
    KeyHasher &add(std::int64_t v);
    KeyHasher &add(int v) { return add(static_cast<std::int64_t>(v)); }
    KeyHasher &add(bool v) { return add(static_cast<std::int64_t>(v)); }
    KeyHasher &add(const std::string &s);
    KeyHasher &add(const char *s) { return add(std::string(s)); }
    KeyHasher &add(const std::vector<double> &vs);

    /** The accumulated 64-bit digest. */
    std::uint64_t digest() const { return state; }

  private:
    std::uint64_t state = 1469598103934665603ull; // FNV offset basis
};

/** The process-wide content-addressed cache. */
class ResultCache
{
  public:
    static ResultCache &instance();

    /**
     * Master enable. Disabled, lookup() always misses and store() is
     * a no-op (existing entries are retained for re-enabling).
     */
    void setEnabled(bool enabled);
    bool enabled() const;

    /** Maximum in-memory entries before LRU eviction. */
    void setCapacity(std::size_t max_entries);

    /**
     * Enable disk persistence under `dir` (created if missing; fatal
     * only when creation fails — that is a user-configuration error).
     * Loads `dir/result_cache.json` immediately; a corrupt, truncated,
     * or schema-mismatched file warns and is treated as empty. An
     * empty dir disables persistence.
     */
    void setDirectory(const std::string &dir);
    const std::string &directory() const;

    /**
     * Look up `domain` + `key`. On hit the payload is copied into
     * `out` and the entry is refreshed in LRU order.
     */
    bool lookup(const std::string &domain, std::uint64_t key,
                std::vector<double> &out);

    /** Insert (or overwrite) an entry. */
    void store(const std::string &domain, std::uint64_t key,
               std::vector<double> values);

    /**
     * Write the current entries to `dir/result_cache.json` when a
     * directory is configured; otherwise a no-op. Write failures warn
     * (never fatal: persistence is an optimization).
     */
    void flush();

    /** Drop every entry (configuration is retained). */
    void clear();

    /** Current entry count. */
    std::size_t size() const;

  private:
    ResultCache();

    struct Entry
    {
        std::vector<double> values;
        std::list<std::string>::iterator lruPos;
    };

    void evictLocked();
    void loadLocked();

    mutable std::mutex mutex_;
    bool enabled_ = true;
    std::size_t capacity_ = 65536;
    std::string dir_;
    /** Most-recently-used keys at the front. */
    std::list<std::string> lru;
    std::unordered_map<std::string, Entry> entries;
};

/** Shorthand accessors on the process-wide instance. */
bool lookup(const std::string &domain, std::uint64_t key,
            std::vector<double> &out);
void store(const std::string &domain, std::uint64_t key,
           std::vector<double> values);

} // namespace otft::cache

#endif // OTFT_UTIL_RESULT_CACHE_HPP
