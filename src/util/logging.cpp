#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/stats_registry.hpp"

namespace otft {

namespace {

bool quietFlag = false;
bool levelLoaded = false;
LogLevel configuredLevel = LogLevel::Info;

LogLevel
configured()
{
    if (!levelLoaded) {
        levelLoaded = true;
        if (const char *env = std::getenv("OTFT_LOG_LEVEL"))
            configuredLevel = logLevelFromString(env, LogLevel::Info);
    }
    return configuredLevel;
}

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

void
setLogLevel(LogLevel level)
{
    levelLoaded = true;
    configuredLevel = level;
}

LogLevel
effectiveLogLevel()
{
    return quietFlag ? LogLevel::Silent : configured();
}

LogLevel
logLevelFromString(const std::string &text, LogLevel fallback)
{
    if (text == "silent" || text == "0")
        return LogLevel::Silent;
    if (text == "warn" || text == "warning" || text == "1")
        return LogLevel::Warn;
    if (text == "info" || text == "2")
        return LogLevel::Info;
    return fallback;
}

namespace detail {

void
reloadLogLevelFromEnv()
{
    levelLoaded = false;
    configuredLevel = LogLevel::Info;
    (void)configured();
}

void
emitInform(const std::string &msg)
{
    if (effectiveLogLevel() >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
emitWarn(const std::string &msg)
{
    // Single warning sink: every warn() is counted, printed or not,
    // so warning volume shows up in the stats report.
    static stats::Counter &warnings =
        stats::counter("log.warnings", "warn() calls emitted");
    ++warnings;
    if (effectiveLogLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
emitFatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
emitPanic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace detail

} // namespace otft
