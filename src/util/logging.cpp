#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>

namespace otft {

namespace {

bool quietFlag = false;

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

namespace detail {

void
emitInform(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
emitWarn(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
emitFatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
emitPanic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace detail

} // namespace otft
