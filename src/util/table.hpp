/**
 * @file
 * Plain-text table and CSV rendering used by the benchmark harnesses to
 * print paper-style rows/series, and by examples for human-readable
 * reports.
 */

#ifndef OTFT_UTIL_TABLE_HPP
#define OTFT_UTIL_TABLE_HPP

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace otft {

/**
 * A simple column-aligned text table. Cells are strings; numeric
 * convenience setters format with a fixed precision.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent add() calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &add(std::string cell);

    /** Append a formatted numeric cell (printf-style %.*g). */
    Table &add(double value, int precision = 4);

    /** Append an integer cell. */
    Table &add(long long value);

    /** Render with aligned columns to the stream. */
    void render(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void renderCsv(std::ostream &os) const;

    /** @return number of data rows. */
    std::size_t numRows() const { return rows.size(); }

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double like printf("%.*g"). */
std::string formatNumber(double value, int precision = 4);

/**
 * Format a value in engineering notation with an SI prefix, e.g.
 * 1.36e9 -> "1.36 GHz" when unit == "Hz". Covers a (atto) to T (tera).
 */
std::string formatSi(double value, const std::string &unit,
                     int precision = 3);

} // namespace otft

#endif // OTFT_UTIL_TABLE_HPP
