/**
 * @file
 * Reusable parallel execution layer: a process-wide worker pool with
 * `parallelFor` (static or dynamic chunking), cooperative
 * cancellation, and deterministic ordered map/reduce helpers.
 *
 * Determinism contract: parallelism never changes results. Work is
 * identified by index; `orderedMap` writes each result into its own
 * slot and `orderedReduce` folds the slots in ascending index order,
 * so a run at `--jobs 8` is bit-identical to `--jobs 1` as long as
 * each per-index task is a pure function of its index. Exceptions are
 * deterministic too: when several tasks throw, the one with the
 * lowest index is rethrown on the calling thread.
 *
 * Nesting: a parallelFor issued from inside a pool worker runs
 * serially on that worker (no nested fan-out, no deadlock), so outer
 * layers (explorer grid) absorb the parallelism of inner layers (IPC
 * fan-out) naturally.
 *
 * The global job count defaults to the hardware concurrency and is
 * set once at startup by cli::Session from `--jobs`/`OTFT_JOBS`;
 * tests and benches pin a scope with JobsOverride.
 */

#ifndef OTFT_UTIL_PARALLEL_HPP
#define OTFT_UTIL_PARALLEL_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace otft::parallel {

/** @return max(1, std::thread::hardware_concurrency()). */
int hardwareJobs();

/**
 * Set the process-wide default worker count. Any n >= 1 is accepted
 * (oversubscription is legitimate for tests and latency-hiding);
 * fatal on n < 1. Callers wanting the CLI clamp semantics go through
 * cli::Session, which validates and clamps to hardwareJobs().
 */
void setJobs(int n);

/** Current process-wide default worker count. */
int jobs();

/** RAII scope that overrides the global job count (tests, benches). */
class JobsOverride
{
  public:
    explicit JobsOverride(int n);
    ~JobsOverride();

    JobsOverride(const JobsOverride &) = delete;
    JobsOverride &operator=(const JobsOverride &) = delete;

  private:
    int prev;
};

/**
 * Set the process-wide default lane width for the batched solver
 * engine (circuit/batch_solver.hpp). Characterization packs up to
 * this many same-topology solves into one lockstep SIMD batch;
 * 0 selects the scalar engine everywhere. Fatal on negative values.
 * Installed at startup by cli::Session from
 * `--batch-lanes`/`OTFT_BATCH_LANES`; the built-in default is 8.
 */
void setBatchLanes(int n);

/** Current process-wide batch lane width (0 = scalar engine). */
int batchLanes();

/** RAII scope that overrides the batch lane width (tests, benches). */
class BatchLanesOverride
{
  public:
    explicit BatchLanesOverride(int n);
    ~BatchLanesOverride();

    BatchLanesOverride(const BatchLanesOverride &) = delete;
    BatchLanesOverride &operator=(const BatchLanesOverride &) = delete;

  private:
    int prev;
};

/**
 * Cooperative cancellation token. Cancellation is checked between
 * chunks: indices already started still complete, indices not yet
 * started are skipped, and parallelFor reports the early exit.
 */
class CancelToken
{
  public:
    void cancel() { flag.store(true, std::memory_order_relaxed); }
    bool
    cancelled() const
    {
        return flag.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> flag{false};
};

/** Chunk assignment policy for parallelFor. */
enum class Chunking {
    /** Contiguous [0,n) split into one range per worker up front.
     *  Lowest overhead; best for uniform per-index cost. */
    Static,
    /** Workers grab `grain`-sized blocks from a shared cursor.
     *  Load-balances irregular tasks (transient sims, STA). */
    Dynamic,
};

/** Options for parallelFor / orderedMap / orderedReduce. */
struct ForOptions
{
    /** Worker count; 0 means the global jobs() default. */
    int jobs = 0;
    Chunking chunking = Chunking::Dynamic;
    /** Indices per dynamic grab (>= 1). */
    std::size_t grain = 1;
    /** Optional cooperative cancellation. */
    CancelToken *cancel = nullptr;
};

/**
 * Run fn(i) for every i in [0, n), fanning out across the pool.
 *
 * @return true when every index ran; false when a cancel token
 * stopped the loop early. If any task threw, the exception of the
 * lowest throwing index is rethrown here after all started tasks
 * have drained (no task outlives the call).
 */
bool parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn,
                 const ForOptions &options = {});

/** @return true when the calling thread is a pool worker. */
bool insideWorker();

/**
 * Scheduler observability. When enabled (by the sampling profiler at
 * collection start, or directly by tests), the pool times every chunk
 * it executes and publishes, per parallelFor region, queue-wait /
 * task-duration histograms plus a load-imbalance summary (max / mean
 * participant busy time) into the stats registry. Exact cumulative
 * busy time and chunk counts per worker are kept here for snapshots.
 * Off (the default), the pool takes no clock reads.
 */
void setPoolStatsEnabled(bool on);
bool poolStatsEnabled();

/** Cumulative pool accounting since the last resetPoolStats(). */
struct PoolStats
{
    /** Busy nanoseconds per pool worker, indexed by worker slot. */
    std::vector<std::uint64_t> workerBusyNs;
    /** Chunks executed per pool worker. */
    std::vector<std::uint64_t> workerChunks;
    /** Busy nanoseconds spent by calling threads inside their own
     *  parallelFor regions (the caller always participates). */
    std::uint64_t callerBusyNs = 0;
    /** Chunks executed by calling threads. */
    std::uint64_t callerChunks = 0;
    /** Batches currently published to the pool. */
    int queueDepth = 0;
};

PoolStats poolStatsSnapshot();
void resetPoolStats();

/** Batches currently published to the pool (sampled by the profiler). */
int queueDepth();

/** Tear down the pool (used by tests; it re-spawns lazily). */
void shutdownPool();

/**
 * Deterministic parallel map: out[i] = fn(i). T must be default
 * constructible and movable. Slots are written independently, so the
 * result is identical for any job count.
 */
template <typename T, typename Fn>
std::vector<T>
orderedMap(std::size_t n, Fn &&fn, const ForOptions &options = {})
{
    std::vector<T> out(n);
    parallelFor(
        n, [&](std::size_t i) { out[i] = fn(i); }, options);
    return out;
}

/**
 * Deterministic parallel map-reduce: compute fn(i) in parallel, then
 * fold the results strictly in index order on the calling thread
 * (init = reduce(init, out[0]), then out[1], ...). Floating-point
 * reductions are therefore bit-identical to the serial loop.
 */
template <typename Acc, typename T, typename Fn, typename Reduce>
Acc
orderedReduce(std::size_t n, Acc init, Fn &&fn, Reduce &&reduce,
              const ForOptions &options = {})
{
    std::vector<T> slots = orderedMap<T>(n, std::forward<Fn>(fn),
                                         options);
    for (std::size_t i = 0; i < n; ++i)
        init = reduce(std::move(init), std::move(slots[i]));
    return init;
}

} // namespace otft::parallel

#endif // OTFT_UTIL_PARALLEL_HPP
