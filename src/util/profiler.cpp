#include "util/profiler.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>

#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/stats_registry.hpp"
#include "util/table.hpp"

namespace otft::prof {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

/** Frames kept per thread; deeper pushes sample as "(deep)". */
constexpr std::size_t maxDepth = 64;
/** Longest label copied; the tail is truncated. */
constexpr std::size_t maxLabel = 96;
/** Preallocation per frame slot so pushes never allocate. */
constexpr std::size_t reserveLabel = 128;

/**
 * One registered thread's sampled state. The owning thread mutates
 * `frames`/`depth` under `mutex`; the sampler try-locks it, so the
 * workload thread never waits on the sampler. `busy` and `alive` are
 * plain atomics readable without the lock.
 */
struct ThreadState
{
    std::mutex mutex;
    std::size_t depth = 0;
    std::string frames[maxDepth];
    std::atomic<bool> busy{false};
    std::atomic<bool> alive{true};
    /** Stack-root label; points at a string literal ("main", ...). */
    const char *name = "main";

    ThreadState()
    {
        for (std::string &f : frames)
            f.reserve(reserveLabel);
    }
};

/** Tally the sampler keeps per thread while running. */
struct ThreadTally
{
    const char *name = "main";
    std::uint64_t samples = 0;
    std::uint64_t busySamples = 0;
};

struct Impl
{
    /** Registered thread states (pruned of dead threads on start). */
    std::mutex threadsMutex;
    std::vector<std::shared_ptr<ThreadState>> threads;

    /** Sampler lifecycle. */
    std::thread sampler;
    std::atomic<bool> stopRequested{false};
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> dropped{0};

    /** Collection results (guarded by resultsMutex once stopped). */
    mutable std::mutex resultsMutex;
    std::map<std::string, std::uint64_t> stacks;
    std::map<const ThreadState *, ThreadTally> tallies;
    std::uint64_t periodUs = 1000;
    bool poolStatsWereEnabled = false;
    bool active = false;
};

Impl &
impl()
{
    static Impl *i = new Impl; // leaked: sampled by detached threads
    return *i;
}

thread_local const char *t_name = "main";

/**
 * The calling thread's registered state, created on first use. The
 * holder's destructor marks the state dead so the sampler (which
 * shares ownership) skips it after the thread exits.
 */
struct StateHolder
{
    std::shared_ptr<ThreadState> state;
    ~StateHolder()
    {
        if (state)
            state->alive.store(false, std::memory_order_relaxed);
    }
};

ThreadState *
threadState()
{
    thread_local StateHolder holder;
    if (!holder.state) {
        auto state = std::make_shared<ThreadState>();
        state->name = t_name;
        Impl &i = impl();
        std::lock_guard<std::mutex> lock(i.threadsMutex);
        i.threads.push_back(state);
        holder.state = std::move(state);
    }
    return holder.state.get();
}

/** Copy a label into a preallocated slot, sanitizing separators. */
void
assignLabel(std::string &slot, const char *label, std::size_t len)
{
    slot.clear();
    const std::size_t n = std::min(len, maxLabel);
    for (std::size_t k = 0; k < n; ++k) {
        const unsigned char c =
            static_cast<unsigned char>(label[k]);
        slot.push_back(c == ';' || std::isspace(c) || c < 0x20
                           ? '_'
                           : static_cast<char>(c));
    }
}

void
samplerLoop(Impl &i)
{
    // A reusable key buffer: one string build per sampled stack.
    std::string key;
    key.reserve(1024);

    static stats::Histogram &stat_queue_depth = stats::histogram(
        "parallel.pool.queue_depth", 0.0, 16.0, 16,
        "parallel batches published to the pool per profiler sample");

    const auto period = std::chrono::microseconds(i.periodUs);
    auto next = std::chrono::steady_clock::now() + period;
    while (!i.stopRequested.load(std::memory_order_acquire)) {
        std::this_thread::sleep_until(next);
        next += period;

        stat_queue_depth.sample(
            static_cast<double>(parallel::queueDepth()));

        std::lock_guard<std::mutex> lock(i.threadsMutex);
        // Results lock second (start() never nests them the other
        // way): accessors may read folded()/frameTotals() while the
        // collection is still running.
        std::lock_guard<std::mutex> results(i.resultsMutex);
        for (const auto &state : i.threads) {
            if (!state->alive.load(std::memory_order_relaxed))
                continue;
            ThreadTally &tally = i.tallies[state.get()];
            tally.name = state->name;
            ++tally.samples;
            if (state->busy.load(std::memory_order_relaxed))
                ++tally.busySamples;

            std::unique_lock<std::mutex> frames(state->mutex,
                                                std::try_to_lock);
            if (!frames.owns_lock()) {
                i.dropped.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            const std::size_t depth = state->depth;
            if (depth == 0)
                continue; // idle thread: counted above, no stack
            key.assign(state->name);
            const std::size_t copied = std::min(depth, maxDepth);
            for (std::size_t d = 0; d < copied; ++d) {
                key.push_back(';');
                key.append(state->frames[d]);
            }
            if (depth > maxDepth)
                key.append(";(deep)");
            frames.unlock();
            ++i.stacks[key];
            i.samples.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

/** Split a folded key into frame labels. */
std::vector<std::string>
splitStack(const std::string &stack)
{
    std::vector<std::string> frames;
    std::size_t start = 0;
    while (start <= stack.size()) {
        const std::size_t semi = stack.find(';', start);
        if (semi == std::string::npos) {
            frames.push_back(stack.substr(start));
            break;
        }
        frames.push_back(stack.substr(start, semi - start));
        start = semi + 1;
    }
    return frames;
}

} // namespace

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

bool
Profiler::start(const Options &options)
{
    Impl &i = impl();
    {
        std::lock_guard<std::mutex> lock(i.resultsMutex);
        if (i.active) {
            warn("profiler: a collection is already running; "
                 "keeping it");
            return false;
        }
        i.active = true;
        i.stacks.clear();
        i.tallies.clear();
        i.samples.store(0, std::memory_order_relaxed);
        i.dropped.store(0, std::memory_order_relaxed);
        i.periodUs = std::max<std::uint64_t>(options.periodUs, 50);
        i.poolStatsWereEnabled = parallel::poolStatsEnabled();
    }

    // Drop states of threads that exited since the last collection.
    {
        std::lock_guard<std::mutex> lock(i.threadsMutex);
        i.threads.erase(
            std::remove_if(i.threads.begin(), i.threads.end(),
                           [](const auto &s) {
                               return !s->alive.load(
                                   std::memory_order_relaxed);
                           }),
            i.threads.end());
    }

    parallel::setPoolStatsEnabled(true);
    i.stopRequested.store(false, std::memory_order_release);
    i.sampler = std::thread([&i] { samplerLoop(i); });
    detail::g_enabled.store(true, std::memory_order_release);
    return true;
}

void
Profiler::stop()
{
    Impl &i = impl();
    {
        std::lock_guard<std::mutex> lock(i.resultsMutex);
        if (!i.active)
            return;
        i.active = false;
    }
    detail::g_enabled.store(false, std::memory_order_release);
    i.stopRequested.store(true, std::memory_order_release);
    if (i.sampler.joinable())
        i.sampler.join();
    if (!i.poolStatsWereEnabled)
        parallel::setPoolStatsEnabled(false);

    // Publish the collection-level and pool-attribution stats.
    static stats::Counter &stat_samples = stats::counter(
        "profiler.samples", "stack samples taken by the profiler");
    static stats::Counter &stat_dropped = stats::counter(
        "profiler.samples_dropped",
        "stack walks skipped because the owner held its frame lock");
    static stats::Counter &stat_worker_samples = stats::counter(
        "parallel.pool.worker_samples",
        "profiler samples of pool worker threads");
    static stats::Counter &stat_busy_samples = stats::counter(
        "parallel.pool.busy_samples",
        "pool worker samples observed busy (executing tasks)");
    static stats::Accumulator &stat_busy_fraction =
        stats::accumulator(
            "parallel.pool.worker_busy_fraction",
            "per-worker busy fraction over one profiler collection");

    std::lock_guard<std::mutex> lock(i.resultsMutex);
    stat_samples += i.samples.load(std::memory_order_relaxed);
    stat_dropped += i.dropped.load(std::memory_order_relaxed);
    for (const auto &[state, tally] : i.tallies) {
        (void)state;
        if (std::strcmp(tally.name, "worker") != 0 ||
            tally.samples == 0)
            continue;
        stat_worker_samples += tally.samples;
        stat_busy_samples += tally.busySamples;
        stat_busy_fraction.sample(
            static_cast<double>(tally.busySamples) /
            static_cast<double>(tally.samples));
    }
}

bool
Profiler::running() const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.resultsMutex);
    return i.active;
}

std::uint64_t
Profiler::sampleCount() const
{
    return impl().samples.load(std::memory_order_relaxed);
}

std::uint64_t
Profiler::droppedSamples() const
{
    return impl().dropped.load(std::memory_order_relaxed);
}

std::uint64_t
Profiler::periodUs() const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.resultsMutex);
    return i.periodUs;
}

std::vector<FoldedStack>
Profiler::folded() const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.resultsMutex);
    std::vector<FoldedStack> out;
    out.reserve(i.stacks.size());
    for (const auto &[stack, count] : i.stacks)
        out.push_back({stack, count});
    return out;
}

std::vector<FrameTotals>
Profiler::frameTotals() const
{
    Impl &i = impl();
    std::map<std::string, FrameTotals> totals;
    {
        std::lock_guard<std::mutex> lock(i.resultsMutex);
        for (const auto &[stack, count] : i.stacks) {
            const std::vector<std::string> frames =
                splitStack(stack);
            if (frames.empty())
                continue;
            // Self time goes to the leaf; total counts each distinct
            // frame once per stack (recursion must not double-count).
            std::set<std::string> seen;
            for (const std::string &frame : frames) {
                if (!seen.insert(frame).second)
                    continue;
                FrameTotals &t = totals[frame];
                t.label = frame;
                t.total += count;
            }
            totals[frames.back()].self += count;
        }
    }
    std::vector<FrameTotals> out;
    out.reserve(totals.size());
    for (auto &[label, t] : totals) {
        (void)label;
        out.push_back(std::move(t));
    }
    std::sort(out.begin(), out.end(),
              [](const FrameTotals &a, const FrameTotals &b) {
                  if (a.self != b.self)
                      return a.self > b.self;
                  return a.label < b.label;
              });
    return out;
}

void
Profiler::writeFolded(std::ostream &os) const
{
    for (const FoldedStack &f : folded())
        os << f.stack << " " << f.count << "\n";
}

void
Profiler::writeTopReport(std::ostream &os, int top_n) const
{
    const std::uint64_t total_samples = sampleCount();
    Table table({"frame", "self", "self%", "total", "total%"});
    int rows = 0;
    for (const FrameTotals &t : frameTotals()) {
        if (top_n > 0 && rows >= top_n)
            break;
        ++rows;
        const auto pct = [total_samples](std::uint64_t n) {
            std::ostringstream oss;
            oss.precision(1);
            oss << std::fixed
                << (total_samples
                        ? 100.0 * static_cast<double>(n) /
                              static_cast<double>(total_samples)
                        : 0.0)
                << "%";
            return oss.str();
        };
        table.row()
            .add(t.label)
            .add(static_cast<long long>(t.self))
            .add(pct(t.self))
            .add(static_cast<long long>(t.total))
            .add(pct(t.total));
    }
    table.render(os);
    os << total_samples << " samples @ " << periodUs() << " us ("
       << droppedSamples() << " dropped)\n";
}

std::string
Profiler::footerSection(int top_n) const
{
    Impl &i = impl();
    std::size_t thread_count = 0;
    std::size_t stack_count = 0;
    {
        std::lock_guard<std::mutex> lock(i.resultsMutex);
        thread_count = i.tallies.size();
        stack_count = i.stacks.size();
    }
    std::ostringstream oss;
    oss << "{\"schema\": \"" << profSchema
        << "\", \"period_us\": " << periodUs()
        << ", \"samples\": " << sampleCount()
        << ", \"dropped\": " << droppedSamples()
        << ", \"threads\": " << thread_count
        << ", \"stacks\": " << stack_count << ", \"top\": [";
    int rows = 0;
    for (const FrameTotals &t : frameTotals()) {
        if (top_n > 0 && rows >= top_n)
            break;
        oss << (rows ? ", " : "") << "{\"frame\": \"" << t.label
            << "\", \"self\": " << t.self
            << ", \"total\": " << t.total << "}";
        ++rows;
    }
    oss << "]}";
    return oss.str();
}

void
Profiler::reset()
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.resultsMutex);
    if (i.active)
        return;
    i.stacks.clear();
    i.tallies.clear();
    i.samples.store(0, std::memory_order_relaxed);
    i.dropped.store(0, std::memory_order_relaxed);
}

std::vector<FoldedStack>
parseFolded(std::istream &is)
{
    std::vector<FoldedStack> out;
    std::string line;
    while (std::getline(is, line)) {
        const std::size_t space = line.find_last_of(' ');
        if (space == std::string::npos || space == 0 ||
            space + 1 >= line.size())
            continue;
        char *end = nullptr;
        const unsigned long long count =
            std::strtoull(line.c_str() + space + 1, &end, 10);
        if (end == line.c_str() + space + 1 || *end != '\0')
            continue;
        out.push_back({line.substr(0, space),
                       static_cast<std::uint64_t>(count)});
    }
    return out;
}

void
pushFrame(const char *label, std::size_t len)
{
    ThreadState *state = threadState();
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->depth < maxDepth)
        assignLabel(state->frames[state->depth], label, len);
    ++state->depth; // deeper pushes still count (popped in pairs)
}

void
popFrame()
{
    ThreadState *state = threadState();
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->depth > 0)
        --state->depth;
}

void
setThreadName(const char *name)
{
    t_name = name;
}

BusyScope::BusyScope()
{
    if (!enabled())
        return;
    busy = &threadState()->busy;
    busy->store(true, std::memory_order_relaxed);
}

BusyScope::~BusyScope()
{
    if (busy)
        busy->store(false, std::memory_order_relaxed);
}

} // namespace otft::prof
