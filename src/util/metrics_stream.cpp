#include "util/metrics_stream.hpp"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/json.hpp"
#include "util/logging.hpp"

namespace otft::metrics {

namespace {

/** Non-finite values serialize as 0 (the registry's JSON policy). */
void
appendNumber(std::ostringstream &oss, double v)
{
    if (!std::isfinite(v)) {
        oss << 0;
        return;
    }
    oss << v;
}

/** The process-wide sampler. */
class Sampler
{
  public:
    static Sampler &
    instance()
    {
        static Sampler sampler;
        return sampler;
    }

    void
    start(const std::string &path, int period_ms)
    {
        stop();
        std::unique_lock<std::mutex> lock(mutex_);
        out_.open(path, std::ios::trunc);
        if (!out_)
            fatal("metrics: cannot open '", path, "' for writing");
        periodMs_ = period_ms < 1 ? 1 : period_ms;
        startNs_ = stats::monotonicNowNs();
        seq_ = 0;
        running_ = true;
        writeSampleLocked();
        thread_ = std::thread([this] { run(); });
    }

    void
    stop()
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (!running_)
                return;
            running_ = false;
        }
        cv_.notify_all();
        if (thread_.joinable())
            thread_.join();
        std::unique_lock<std::mutex> lock(mutex_);
        writeSampleLocked(); // final state, after the thread joined
        out_.close();
    }

    bool
    sampling() const
    {
        std::unique_lock<std::mutex> lock(mutex_);
        return running_;
    }

    void
    sampleNow()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!running_)
            return;
        writeSampleLocked();
    }

    std::size_t
    count() const
    {
        std::unique_lock<std::mutex> lock(mutex_);
        return seq_;
    }

  private:
    void
    run()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (running_) {
            cv_.wait_for(lock, std::chrono::milliseconds(periodMs_),
                         [this] { return !running_; });
            if (!running_)
                break;
            writeSampleLocked();
        }
    }

    void
    writeSampleLocked()
    {
        const double t_ms =
            static_cast<double>(stats::monotonicNowNs() - startNs_) *
            1e-6;
        out_ << formatSampleLine(stats::Registry::instance().snapshot(),
                                 seq_, t_ms)
             << '\n';
        out_.flush();
        ++seq_;
    }

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::thread thread_;
    std::ofstream out_;
    int periodMs_ = 100;
    std::int64_t startNs_ = 0;
    std::size_t seq_ = 0;
    bool running_ = false;
};

} // namespace

void
start(const std::string &path, int period_ms)
{
    Sampler::instance().start(path, period_ms);
}

void
stop()
{
    Sampler::instance().stop();
}

bool
sampling()
{
    return Sampler::instance().sampling();
}

void
sampleNow()
{
    Sampler::instance().sampleNow();
}

std::size_t
sampleCount()
{
    return Sampler::instance().count();
}

std::string
formatSampleLine(const stats::Snapshot &snap, std::size_t seq,
                 double t_ms)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << "{\"schema\":\"" << metricsSchema << "\",\"seq\":" << seq
        << ",\"t_ms\":";
    appendNumber(oss, t_ms);

    oss << ",\"scalars\":{";
    bool first = true;
    for (const auto &[name, value] : snap.scalars) {
        oss << (first ? "" : ",") << "\"" << json::escape(name)
            << "\":";
        appendNumber(oss, value);
        first = false;
    }
    oss << "}";

    oss << ",\"accumulators\":{";
    first = true;
    for (const auto &[name, a] : snap.accumulators) {
        oss << (first ? "" : ",") << "\"" << json::escape(name)
            << "\":{\"count\":" << a.count << ",\"sum\":";
        appendNumber(oss, a.sum);
        oss << ",\"min\":";
        appendNumber(oss, a.min);
        oss << ",\"max\":";
        appendNumber(oss, a.max);
        oss << ",\"mean\":";
        appendNumber(oss, a.mean);
        oss << "}";
        first = false;
    }
    oss << "}";

    oss << ",\"histograms\":{";
    first = true;
    for (const auto &[name, h] : snap.histograms) {
        oss << (first ? "" : ",") << "\"" << json::escape(name)
            << "\":{\"lo\":";
        appendNumber(oss, h.lo);
        oss << ",\"hi\":";
        appendNumber(oss, h.hi);
        oss << ",\"underflow\":" << h.underflow
            << ",\"overflow\":" << h.overflow << ",\"p50\":";
        appendNumber(oss, h.p50);
        oss << ",\"p95\":";
        appendNumber(oss, h.p95);
        oss << ",\"bins\":[";
        for (std::size_t i = 0; i < h.bins.size(); ++i)
            oss << (i ? "," : "") << h.bins[i];
        oss << "]}";
        first = false;
    }
    oss << "}}";
    return oss.str();
}

} // namespace otft::metrics
