/**
 * @file
 * In-process sampling profiler with worker-pool attribution.
 *
 * A dedicated sampler thread wakes on a configurable period (default
 * 1 ms) and walks every registered thread's context stack — the
 * frames pushed by `OTFT_TRACE_SCOPE` spans and `diag::ScopedContext`
 * labels already threaded through circuit, liberty, sta, core, and
 * arch — accumulating one count per distinct stack. On stop() the
 * collection is available as:
 *
 *  - a collapsed-stack ("folded") stream, one `root;a;b N` line per
 *    stack, directly consumable by flamegraph.pl and speedscope;
 *  - a top-N self/total text report (self = samples where the frame
 *    was the leaf, total = samples where it appeared anywhere);
 *  - a compact schema-versioned `otft-prof-1` JSON section that
 *    cli::Session merges into the bench stats footer.
 *
 * Stack roots name the sampled thread's role ("main" for the session
 * owner, "worker" for util/parallel pool threads) — deliberately
 * without a numeric id, so stack labels are deterministic across runs
 * and job counts. Worker-pool attribution (per-worker busy fractions,
 * queue-depth histogram) is sampled by the same thread and published
 * into the stats registry at stop(); see util/parallel for the exact
 * busy-time accounting the pool records itself.
 *
 * Cost model: while the profiler is *disabled* (the default), a frame
 * push is one relaxed atomic load — call sites pay nothing else.
 * While enabled, a push copies the label into preallocated per-thread
 * storage under that thread's own (uncontended) mutex; the sampler
 * try-locks it, so a sample can never block the workload — a
 * collision is counted as a dropped sample instead.
 */

#ifndef OTFT_UTIL_PROFILER_HPP
#define OTFT_UTIL_PROFILER_HPP

#include <atomic>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <vector>

namespace otft::prof {

/** Schema tag of the JSON section merged into the stats footer. */
inline constexpr const char *profSchema = "otft-prof-1";

namespace detail {
/** Master enable; read on every frame push (relaxed). */
extern std::atomic<bool> g_enabled;
} // namespace detail

/** @return true while a sampling collection is running. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Sampler controls. */
struct Options
{
    /** Sampling period in microseconds (>= 50). */
    std::uint64_t periodUs = 1000;
};

/** One aggregated call stack: "root;frame;frame" and its samples. */
struct FoldedStack
{
    std::string stack;
    std::uint64_t count = 0;
};

/** Per-frame aggregate for the top-N report. */
struct FrameTotals
{
    std::string label;
    /** Samples with this frame as the innermost (leaf) frame. */
    std::uint64_t self = 0;
    /** Samples with this frame anywhere on the stack (once each). */
    std::uint64_t total = 0;
};

/** The process-wide sampling profiler. */
class Profiler
{
  public:
    static Profiler &instance();

    /**
     * Begin a collection. @return false (with a warning) when one is
     * already running — nested collections are not supported, so e.g.
     * `perf_suite --profile` under a session-wide `--profile-folded`
     * keeps the outer collection. Clears the previous results.
     */
    bool start(const Options &options = {});

    /**
     * Join the sampler and aggregate the collection. Publishes the
     * pool-attribution stats (per-worker busy fraction accumulator,
     * busy/idle sample counters) into the stats registry. Idempotent.
     */
    void stop();

    bool running() const;

    /** Samples taken so far (readable while running). */
    std::uint64_t sampleCount() const;
    /** Stack walks skipped because the owner held its frame lock. */
    std::uint64_t droppedSamples() const;
    /** The period of the last (or current) collection. */
    std::uint64_t periodUs() const;

    /** Aggregated stacks of the last collection, sorted by name. */
    std::vector<FoldedStack> folded() const;

    /** Self/total per frame label, sorted by self descending. */
    std::vector<FrameTotals> frameTotals() const;

    /** Write the collapsed-stack stream (`stack N` per line). */
    void writeFolded(std::ostream &os) const;

    /** Render the top-N self/total table. */
    void writeTopReport(std::ostream &os, int top_n) const;

    /**
     * The compact otft-prof-1 JSON object (schema, period, samples,
     * dropped, threads, stacks, top frames) for the bench footer.
     */
    std::string footerSection(int top_n = 5) const;

    /** Drop the last collection's results. */
    void reset();

  private:
    Profiler() = default;
};

/**
 * Parse a writeFolded() stream back into stacks (round-trip tests and
 * artifact validation). Malformed lines are skipped.
 */
std::vector<FoldedStack> parseFolded(std::istream &is);

/**
 * Push/pop one frame on the calling thread's context stack. Callers
 * must pair them exactly; use FrameGuard unless the enclosing object
 * already tracks whether it pushed (trace::Span, diag::ScopedContext).
 * `;`, whitespace, and control characters in labels are mapped to '_'
 * so the folded format stays parseable.
 */
void pushFrame(const char *label, std::size_t len);
void popFrame();

inline void
pushFrame(const char *label)
{
    pushFrame(label, std::strlen(label));
}

inline void
pushFrame(const std::string &label)
{
    pushFrame(label.data(), label.size());
}

/**
 * RAII frame for hot paths that have no trace span (Newton kernel, LTE
 * control): one relaxed atomic load when the profiler is disabled.
 */
class FrameGuard
{
  public:
    explicit FrameGuard(const char *label)
    {
        if (enabled()) {
            pushFrame(label);
            pushed = true;
        }
    }
    explicit FrameGuard(const std::string &label)
    {
        if (enabled()) {
            pushFrame(label);
            pushed = true;
        }
    }
    ~FrameGuard()
    {
        if (pushed)
            popFrame();
    }

    FrameGuard(const FrameGuard &) = delete;
    FrameGuard &operator=(const FrameGuard &) = delete;

  private:
    bool pushed = false;
};

/**
 * Name the calling thread's stack root ("worker" for pool threads).
 * Unnamed threads sample under "main". Cheap: stores a pointer to the
 * literal; no registration happens until the thread pushes a frame or
 * marks itself busy during a collection.
 */
void setThreadName(const char *name);

/**
 * RAII busy marker for worker-pool attribution: while alive, the
 * sampler counts the calling thread as busy. One relaxed atomic load
 * when the profiler is disabled.
 */
class BusyScope
{
  public:
    BusyScope();
    ~BusyScope();

    BusyScope(const BusyScope &) = delete;
    BusyScope &operator=(const BusyScope &) = delete;

  private:
    std::atomic<bool> *busy = nullptr;
};

} // namespace otft::prof

#endif // OTFT_UTIL_PROFILER_HPP
