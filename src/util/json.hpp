/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * The stats registry carries its own reader for the flat subset it
 * dumps; this is the general-purpose counterpart for nested documents
 * — the BENCH_*.json perf reports and the one-line bench footers.
 * Full JSON is accepted (null/bool/number/string/array/object, string
 * escapes, nesting); writing stays with the producers, which stream
 * their own documents for stable field order.
 */

#ifndef OTFT_UTIL_JSON_HPP
#define OTFT_UTIL_JSON_HPP

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace otft::json {

/**
 * Maximum container nesting depth the parser accepts. The parser is
 * recursive-descent, so unbounded nesting would overflow the stack on
 * hostile input; this path guards the perf gate, which reads files an
 * editor or script may have mangled. Fatal, not UB, past the cap.
 */
inline constexpr int maxDepth = 128;

/** JSON value kinds. */
enum class Kind { Null, Bool, Number, String, Array, Object };

/** @return printable kind name. */
const char *toString(Kind kind);

/**
 * One parsed JSON value. Object member order is not preserved (keys
 * sort lexicographically), which is fine for the machine-generated
 * documents this reader consumes.
 */
class Value
{
  public:
    Value() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }

    /** Typed accessors; fatal on a kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<Value> &asArray() const;
    const std::map<std::string, Value> &asObject() const;

    /** @return true when this is an object with the given member. */
    bool has(const std::string &key) const;

    /** Object member; fatal when absent or not an object. */
    const Value &at(const std::string &key) const;

    /** Member as a number/string, or the fallback when absent. */
    double number(const std::string &key, double fallback = 0.0) const;
    std::string string(const std::string &key,
                       const std::string &fallback = "") const;

    /** Construction helpers (used by tests). */
    static Value makeNull();
    static Value makeBool(bool b);
    static Value makeNumber(double v);
    static Value makeString(std::string s);
    static Value makeArray(std::vector<Value> items);
    static Value makeObject(std::map<std::string, Value> members);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::map<std::string, Value> object_;
};

/**
 * Parse one JSON document from the stream; fatal on malformed input.
 * Trailing content after the document is left unread, so callers can
 * parse newline-delimited JSON (the bench footer format) by calling
 * repeatedly.
 */
Value parse(std::istream &is);

/** Parse a complete string; fatal on malformed input. */
Value parse(const std::string &text);

/** Escape a string for embedding in emitted JSON (no quotes added). */
std::string escape(const std::string &s);

} // namespace otft::json

#endif // OTFT_UTIL_JSON_HPP
