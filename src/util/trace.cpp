#include "util/trace.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "util/logging.hpp"

namespace otft::trace {

namespace {

struct Event
{
    const char *name;
    std::int64_t startNs;
    std::int64_t endNs;
};

/**
 * One thread's event buffer. recordEvent appends under the buffer's
 * own mutex — uncontended in steady state (each thread owns one), but
 * it makes the stop()-side merge safe even if a straggler thread is
 * still emitting.
 */
struct ThreadBuffer
{
    std::mutex mutex;
    std::vector<Event> events;
    /** Stable display id in the merged timeline (registration order). */
    int tid;
};

struct Collector
{
    std::mutex mutex;
    std::atomic<bool> active{false};
    /**
     * Collection generation: bumped by start() and stop(). A thread's
     * cached buffer pointer is only valid while its cached generation
     * matches, so buffers never leak across collections.
     */
    std::atomic<std::uint64_t> generation{1};
    std::string path;
    /** Collection epoch: event timestamps are relative to this. */
    std::int64_t epochNs = 0;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers;
    /**
     * Buffers from finished collections, recycled instead of freed:
     * a straggler thread that races a stop() may still touch its old
     * buffer (its event is dropped by the generation check), so the
     * storage must outlive the collection. Bounded by the maximum
     * number of concurrently-registered threads.
     */
    std::vector<std::unique_ptr<ThreadBuffer>> retired;
    int nextTid = 1;
};

Collector &
collector()
{
    static Collector c;
    return c;
}

thread_local struct
{
    std::uint64_t generation = 0;
    ThreadBuffer *buffer = nullptr;
} t_buffer;

/** This thread's buffer for the current collection (or null). */
ThreadBuffer *
threadBuffer()
{
    Collector &c = collector();
    const std::uint64_t gen = c.generation.load(
        std::memory_order_acquire);
    if (t_buffer.generation == gen)
        return t_buffer.buffer;

    std::lock_guard<std::mutex> lock(c.mutex);
    if (!c.active.load(std::memory_order_relaxed))
        return nullptr;
    std::unique_ptr<ThreadBuffer> buffer;
    if (!c.retired.empty()) {
        buffer = std::move(c.retired.back());
        c.retired.pop_back();
        std::lock_guard<std::mutex> buf_lock(buffer->mutex);
        buffer->events.clear();
    } else {
        buffer = std::make_unique<ThreadBuffer>();
        buffer->events.reserve(1024);
    }
    buffer->tid = c.nextTid++;
    ThreadBuffer *raw = buffer.get();
    c.buffers.push_back(std::move(buffer));
    t_buffer.generation = c.generation.load(std::memory_order_relaxed);
    t_buffer.buffer = raw;
    return raw;
}

} // namespace

void
start(const std::string &path)
{
    Collector &c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.path = path;
    c.epochNs = stats::monotonicNowNs();
    for (auto &buffer : c.buffers)
        c.retired.push_back(std::move(buffer));
    c.buffers.clear();
    c.nextTid = 1;
    c.generation.fetch_add(1, std::memory_order_release);
    c.active.store(true, std::memory_order_release);
}

void
stop()
{
    Collector &c = collector();
    if (!c.active.load(std::memory_order_acquire))
        return;
    c.active.store(false, std::memory_order_release);

    std::lock_guard<std::mutex> lock(c.mutex);
    // Invalidate every thread's cached buffer pointer before the
    // buffers are destroyed.
    c.generation.fetch_add(1, std::memory_order_release);

    // Merge per-thread buffers into one stream, ordered by start time
    // (ties broken by tid) so the output is stable for a given set of
    // recorded events.
    struct Merged
    {
        Event event;
        int tid;
    };
    std::vector<Merged> merged;
    for (const auto &buffer : c.buffers) {
        std::lock_guard<std::mutex> buf_lock(buffer->mutex);
        for (const Event &e : buffer->events)
            merged.push_back({e, buffer->tid});
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Merged &a, const Merged &b) {
                         if (a.event.startNs != b.event.startNs)
                             return a.event.startNs < b.event.startNs;
                         return a.tid < b.tid;
                     });

    auto recycle = [&c] {
        for (auto &buffer : c.buffers)
            c.retired.push_back(std::move(buffer));
        c.buffers.clear();
    };

    std::ofstream os(c.path);
    if (!os) {
        recycle();
        fatal("trace: cannot write ", c.path);
    }
    os << "[";
    // Chrome trace_event JSON array of complete events; timestamps
    // and durations are microseconds. tid distinguishes the emitting
    // worker thread in the timeline view.
    bool first = true;
    for (const Merged &m : merged) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\": \"" << m.event.name
           << "\", \"cat\": \"otft\", \"ph\": \"X\", \"pid\": 1"
           << ", \"tid\": " << m.tid << ", \"ts\": "
           << static_cast<double>(m.event.startNs - c.epochNs) * 1e-3
           << ", \"dur\": "
           << static_cast<double>(m.event.endNs - m.event.startNs) *
                  1e-3
           << "}";
    }
    os << "\n]\n";
    if (!merged.empty())
        inform("trace: wrote ", merged.size(), " events to ", c.path);
    recycle();
}

bool
collecting()
{
    return collector().active.load(std::memory_order_acquire);
}

std::size_t
eventCount()
{
    Collector &c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    std::size_t count = 0;
    for (const auto &buffer : c.buffers) {
        std::lock_guard<std::mutex> buf_lock(buffer->mutex);
        count += buffer->events.size();
    }
    return count;
}

void
recordEvent(const char *name, std::int64_t start_ns,
            std::int64_t end_ns)
{
    if (!collecting())
        return;
    ThreadBuffer *buffer = threadBuffer();
    if (!buffer)
        return;
    Collector &c = collector();
    std::lock_guard<std::mutex> lock(buffer->mutex);
    // Re-check under the lock: a stop() that raced us has already
    // merged this buffer (it bumps the generation, then takes every
    // buffer mutex), so the event would be lost anyway — drop it
    // instead of writing into a retired buffer.
    if (t_buffer.generation !=
        c.generation.load(std::memory_order_acquire))
        return;
    buffer->events.push_back({name, start_ns, end_ns});
}

void
recordInstant(const char *name)
{
    const std::int64_t now_ns = stats::monotonicNowNs();
    recordEvent(name, now_ns, now_ns);
}

} // namespace otft::trace
