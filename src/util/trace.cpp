#include "util/trace.hpp"

#include <fstream>
#include <vector>

#include "util/logging.hpp"

namespace otft::trace {

namespace {

struct Event
{
    const char *name;
    std::int64_t startNs;
    std::int64_t endNs;
};

struct Collector
{
    bool active = false;
    std::string path;
    /** Collection epoch: event timestamps are relative to this. */
    std::int64_t epochNs = 0;
    std::vector<Event> events;
};

Collector &
collector()
{
    static Collector c;
    return c;
}

} // namespace

void
start(const std::string &path)
{
    Collector &c = collector();
    c.active = true;
    c.path = path;
    c.epochNs = stats::monotonicNowNs();
    c.events.clear();
    c.events.reserve(4096);
}

void
stop()
{
    Collector &c = collector();
    if (!c.active)
        return;
    c.active = false;

    std::ofstream os(c.path);
    if (!os)
        fatal("trace: cannot write ", c.path);
    os << "[";
    // Chrome trace_event JSON array of complete events; timestamps
    // and durations are microseconds.
    bool first = true;
    for (const Event &e : c.events) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\": \"" << e.name
           << "\", \"cat\": \"otft\", \"ph\": \"X\", \"pid\": 1"
           << ", \"tid\": 1, \"ts\": "
           << static_cast<double>(e.startNs - c.epochNs) * 1e-3
           << ", \"dur\": "
           << static_cast<double>(e.endNs - e.startNs) * 1e-3 << "}";
    }
    os << "\n]\n";
    if (!c.events.empty())
        inform("trace: wrote ", c.events.size(), " events to ", c.path);
    c.events.clear();
}

bool
collecting()
{
    return collector().active;
}

std::size_t
eventCount()
{
    return collector().events.size();
}

void
recordEvent(const char *name, std::int64_t start_ns,
            std::int64_t end_ns)
{
    Collector &c = collector();
    if (!c.active)
        return;
    c.events.push_back({name, start_ns, end_ns});
}

} // namespace otft::trace
