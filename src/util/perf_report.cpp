#include "util/perf_report.hpp"

#include <algorithm>
#include <cmath>
#include <ctime>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <thread>

#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/profiler.hpp"
#include "util/stats_registry.hpp"
#include "util/table.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

namespace otft::perf {

// ---------------------------------------------------------------------
// Timing statistics.
// ---------------------------------------------------------------------

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double clamped = p < 0.0 ? 0.0 : (p > 100.0 ? 100.0 : p);
    const double rank =
        clamped / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

TimingSummary
summarizeTimes(const std::vector<double> &samples)
{
    TimingSummary s;
    s.reps = samples.size();
    if (samples.empty())
        return s;
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    s.minS = sorted.front();
    s.medianS = percentileSorted(sorted, 50.0);
    s.p95S = percentileSorted(sorted, 95.0);
    for (double v : sorted)
        s.totalS += v;
    s.meanS = s.totalS / static_cast<double>(sorted.size());
    std::vector<double> dev;
    dev.reserve(sorted.size());
    for (double v : sorted)
        dev.push_back(std::abs(v - s.medianS));
    std::sort(dev.begin(), dev.end());
    s.madS = percentileSorted(dev, 50.0);
    return s;
}

// ---------------------------------------------------------------------
// Environment fingerprint.
// ---------------------------------------------------------------------

EnvFingerprint
currentEnvironment()
{
    EnvFingerprint env;
#ifdef OTFT_GIT_SHA
    env.gitSha = OTFT_GIT_SHA;
#else
    env.gitSha = "unknown";
#endif
#ifdef __VERSION__
    env.compiler = __VERSION__;
#else
    env.compiler = "unknown";
#endif
#ifdef OTFT_BUILD_TYPE
    env.buildType = OTFT_BUILD_TYPE;
#else
    env.buildType = "unknown";
#endif
#if defined(__unix__) || defined(__APPLE__)
    struct utsname uts;
    if (uname(&uts) == 0) {
        env.os = std::string(uts.sysname) + " " + uts.release;
        env.host = uts.nodename;
    }
#endif
    if (env.os.empty())
        env.os = "unknown";
    if (env.host.empty())
        env.host = "unknown";
    env.cpuCount =
        static_cast<int>(std::thread::hardware_concurrency());
    env.jobs = parallel::jobs();
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
#if defined(__unix__) || defined(__APPLE__)
    gmtime_r(&now, &tm_utc);
#else
    tm_utc = *std::gmtime(&now);
#endif
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    env.timestampUtc = buf;
    return env;
}

// ---------------------------------------------------------------------
// Suite runner.
// ---------------------------------------------------------------------

void
ScenarioSuite::add(Scenario scenario)
{
    if (scenario.name.empty() || !scenario.run)
        fatal("perf: scenario needs a name and a run function");
    for (const Scenario &existing : items)
        if (existing.name == scenario.name)
            fatal("perf: duplicate scenario '", scenario.name, "'");
    items.push_back(std::move(scenario));
}

namespace {

/** "liberty.nldm_characterize" -> "PROF_liberty_nldm_characterize". */
std::string
profileArtifactPath(const SuiteOptions &options,
                    const std::string &scenario_name)
{
    std::string stem = scenario_name;
    std::replace(stem.begin(), stem.end(), '.', '_');
    std::string path = "PROF_" + stem + ".folded";
    if (!options.profileDir.empty())
        path = options.profileDir + "/" + path;
    return path;
}

} // namespace

std::vector<ScenarioResult>
ScenarioSuite::run(const SuiteOptions &options) const
{
    if (options.reps == 0)
        fatal("perf: need at least one repetition");
    stats::Registry &registry = stats::Registry::instance();
    std::vector<ScenarioResult> results;
    for (const Scenario &scenario : items) {
        if (!options.filter.empty() &&
            scenario.name.find(options.filter) == std::string::npos)
            continue;
        inform("perf: running ", scenario.name, " (", options.reps,
               " reps)");
        ScenarioResult result;
        result.name = scenario.name;
        result.layer = scenario.layer;
        result.description = scenario.description;
        if (scenario.setup)
            scenario.setup();
        for (std::uint64_t i = 0; i < options.warmup; ++i)
            (void)scenario.run();
        registry.reset();
        const auto before = registry.counterSnapshot();
        // Profile only the timed reps: setup and warmup would
        // otherwise dominate short scenarios with one-time work.
        bool profiling = false;
        if (options.profile) {
            prof::Options prof_options;
            prof_options.periodUs = options.profilePeriodUs;
            profiling =
                prof::Profiler::instance().start(prof_options);
        }
        for (std::uint64_t i = 0; i < options.reps; ++i) {
            const std::int64_t t0 = stats::monotonicNowNs();
            result.points = scenario.run();
            const std::int64_t t1 = stats::monotonicNowNs();
            result.samplesS.push_back(
                static_cast<double>(t1 - t0) * 1e-9);
        }
        // Snapshot the counters before the profiler stops: the
        // profiler publishes its own (run-to-run noisy) sample
        // counters at stop, and those must not join the scenario's
        // deterministic counter deltas.
        const auto after = registry.counterSnapshot();
        if (profiling) {
            prof::Profiler &profiler = prof::Profiler::instance();
            profiler.stop();
            const std::string path =
                profileArtifactPath(options, scenario.name);
            std::ofstream os(path);
            if (!os) {
                warn("perf: cannot write profile to ", path);
            } else {
                profiler.writeFolded(os);
                inform("perf: profile for ", scenario.name, ": ",
                       profiler.folded().size(), " stacks (",
                       profiler.sampleCount(), " samples) -> ",
                       path);
            }
            std::cerr << "\n== profile: " << scenario.name
                      << " ==\n";
            profiler.writeTopReport(std::cerr, options.profileTopN);
        }
        for (const auto &[name, value] : after) {
            auto it = before.find(name);
            const std::uint64_t prior =
                it != before.end() ? it->second : 0;
            if (value > prior)
                result.counters[name] =
                    static_cast<double>(value - prior) /
                    static_cast<double>(options.reps);
        }
        result.timing = summarizeTimes(result.samplesS);
        results.push_back(std::move(result));
    }
    return results;
}

// ---------------------------------------------------------------------
// Report serialization.
// ---------------------------------------------------------------------

namespace {

/** Format a double for JSON output (round-trips, never NaN/Inf). */
std::string
num(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::ostringstream oss;
    oss.precision(17);
    oss << v;
    return oss.str();
}

} // namespace

void
writeReport(const BenchReport &report, std::ostream &os)
{
    os << "{\n";
    os << "  \"schema\": \"" << reportSchema << "\",\n";
    os << "  \"suite\": \"" << json::escape(report.suite) << "\",\n";
    os << "  \"reps\": " << report.reps << ",\n";
    os << "  \"warmup\": " << report.warmup << ",\n";
    os << "  \"env\": {\n";
    os << "    \"git_sha\": \"" << json::escape(report.env.gitSha)
       << "\",\n";
    os << "    \"compiler\": \"" << json::escape(report.env.compiler)
       << "\",\n";
    os << "    \"build_type\": \""
       << json::escape(report.env.buildType) << "\",\n";
    os << "    \"os\": \"" << json::escape(report.env.os) << "\",\n";
    os << "    \"host\": \"" << json::escape(report.env.host)
       << "\",\n";
    os << "    \"cpu_count\": " << report.env.cpuCount << ",\n";
    os << "    \"jobs\": " << report.env.jobs << ",\n";
    os << "    \"timestamp_utc\": \""
       << json::escape(report.env.timestampUtc) << "\"\n";
    os << "  },\n";
    os << "  \"scenarios\": [";
    bool first_scenario = true;
    for (const ScenarioResult &s : report.scenarios) {
        os << (first_scenario ? "\n" : ",\n");
        first_scenario = false;
        os << "    {\n";
        os << "      \"name\": \"" << json::escape(s.name) << "\",\n";
        os << "      \"layer\": \"" << json::escape(s.layer)
           << "\",\n";
        os << "      \"description\": \""
           << json::escape(s.description) << "\",\n";
        os << "      \"points\": " << s.points << ",\n";
        os << "      \"reps\": " << s.timing.reps << ",\n";
        os << "      \"wall_s\": {\"min\": " << num(s.timing.minS)
           << ", \"median\": " << num(s.timing.medianS)
           << ", \"mad\": " << num(s.timing.madS)
           << ", \"p95\": " << num(s.timing.p95S)
           << ", \"mean\": " << num(s.timing.meanS)
           << ", \"total\": " << num(s.timing.totalS) << "},\n";
        os << "      \"samples_s\": [";
        for (std::size_t i = 0; i < s.samplesS.size(); ++i)
            os << (i ? ", " : "") << num(s.samplesS[i]);
        os << "],\n";
        os << "      \"counters\": {";
        bool first_counter = true;
        for (const auto &[name, value] : s.counters) {
            os << (first_counter ? "" : ", ");
            first_counter = false;
            os << "\"" << json::escape(name)
               << "\": " << num(value);
        }
        os << "}\n";
        os << "    }";
    }
    os << "\n  ]\n";
    os << "}\n";
}

BenchReport
readReport(std::istream &is)
{
    const json::Value doc = json::parse(is);
    const std::string schema = doc.string("schema", "<missing>");
    if (schema != reportSchema)
        fatal("perf: unsupported report schema '", schema,
              "' (expected '", reportSchema, "')");
    BenchReport report;
    report.suite = doc.string("suite", "perf_suite");
    report.reps = static_cast<std::uint64_t>(doc.number("reps"));
    report.warmup = static_cast<std::uint64_t>(doc.number("warmup"));
    if (doc.has("env")) {
        const json::Value &env = doc.at("env");
        report.env.gitSha = env.string("git_sha", "unknown");
        report.env.compiler = env.string("compiler", "unknown");
        report.env.buildType = env.string("build_type", "unknown");
        report.env.os = env.string("os", "unknown");
        report.env.host = env.string("host", "unknown");
        report.env.cpuCount =
            static_cast<int>(env.number("cpu_count"));
        if (env.has("jobs"))
            report.env.jobs = static_cast<int>(env.number("jobs"));
        report.env.timestampUtc = env.string("timestamp_utc");
    }
    if (!doc.has("scenarios"))
        return report;
    for (const json::Value &item : doc.at("scenarios").asArray()) {
        ScenarioResult s;
        s.name = item.string("name");
        if (s.name.empty())
            fatal("perf: scenario without a name in report");
        s.layer = item.string("layer");
        s.description = item.string("description");
        s.points = static_cast<std::uint64_t>(item.number("points"));
        if (item.has("samples_s"))
            for (const json::Value &v :
                 item.at("samples_s").asArray())
                s.samplesS.push_back(v.asNumber());
        if (item.has("wall_s")) {
            const json::Value &w = item.at("wall_s");
            s.timing.reps =
                static_cast<std::uint64_t>(item.number("reps"));
            s.timing.minS = w.number("min");
            s.timing.medianS = w.number("median");
            s.timing.madS = w.number("mad");
            s.timing.p95S = w.number("p95");
            s.timing.meanS = w.number("mean");
            s.timing.totalS = w.number("total");
        } else {
            s.timing = summarizeTimes(s.samplesS);
        }
        if (item.has("counters"))
            for (const auto &[name, value] :
                 item.at("counters").asObject())
                s.counters[name] = value.asNumber();
        report.scenarios.push_back(std::move(s));
    }
    return report;
}

std::vector<ScenarioResult>
ingestFooters(std::istream &is)
{
    std::vector<ScenarioResult> results;
    std::string line;
    while (std::getline(is, line)) {
        const auto start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] != '{')
            continue;
        json::Value footer;
        try {
            footer = json::parse(line);
        } catch (const FatalError &) {
            continue; // not a footer line
        }
        if (!footer.isObject() || !footer.has("bench") ||
            !footer.has("wall_s"))
            continue;
        ScenarioResult s;
        s.name = "bench." + footer.at("bench").asString();
        s.layer = "bench";
        s.description = "ingested bench footer";
        s.points =
            static_cast<std::uint64_t>(footer.number("points"));
        s.samplesS = {footer.at("wall_s").asNumber()};
        s.timing = summarizeTimes(s.samplesS);
        // Extra numeric footer fields join the trajectory as
        // counter-style metrics.
        for (const auto &[key, value] : footer.asObject()) {
            if (key == "bench" || key == "schema" ||
                key == "wall_s" || key == "points")
                continue;
            if (value.isNumber())
                s.counters[key] = value.asNumber();
        }
        results.push_back(std::move(s));
    }
    return results;
}

// ---------------------------------------------------------------------
// Diffing.
// ---------------------------------------------------------------------

const char *
toString(DiffStatus status)
{
    switch (status) {
      case DiffStatus::Unchanged:
        return "ok";
      case DiffStatus::Improved:
        return "improved";
      case DiffStatus::Regressed:
        return "REGRESSED";
      case DiffStatus::Added:
        return "added";
      case DiffStatus::Removed:
        return "removed";
    }
    return "?";
}

namespace {

DiffStatus
classify(double baseline, double current, double gate)
{
    if (current - baseline > gate)
        return DiffStatus::Regressed;
    if (baseline - current > gate)
        return DiffStatus::Improved;
    return DiffStatus::Unchanged;
}

} // namespace

namespace {

/**
 * Fill diff.envWarnings with fingerprint mismatches. A field that is
 * "unknown" (or 0 for the integer fields) on either side predates the
 * fingerprint or failed to record, and is skipped: old baselines must
 * not warn on every diff.
 */
void
compareEnvironments(const EnvFingerprint &baseline,
                    const EnvFingerprint &current, DiffReport &diff)
{
    const auto check_string = [&diff](const char *what,
                                      const std::string &base,
                                      const std::string &cur) {
        if (base.empty() || cur.empty() || base == "unknown" ||
            cur == "unknown" || base == cur)
            return;
        diff.envWarnings.push_back(std::string(what) +
                                   " mismatch: baseline '" + base +
                                   "' vs current '" + cur + "'");
    };
    const auto check_int = [&diff](const char *what, int base,
                                   int cur) {
        if (base == 0 || cur == 0 || base == cur)
            return;
        diff.envWarnings.push_back(
            std::string(what) + " mismatch: baseline " +
            std::to_string(base) + " vs current " +
            std::to_string(cur));
    };
    check_string("host", baseline.host, current.host);
    check_string("git sha", baseline.gitSha, current.gitSha);
    check_int("jobs", baseline.jobs, current.jobs);
    check_int("cpu count", baseline.cpuCount, current.cpuCount);
    check_string("compiler", baseline.compiler, current.compiler);
    check_string("build type", baseline.buildType,
                 current.buildType);
}

} // namespace

DiffReport
diffReports(const BenchReport &baseline, const BenchReport &current,
            const DiffOptions &options)
{
    DiffReport diff;
    compareEnvironments(baseline.env, current.env, diff);
    std::map<std::string, const ScenarioResult *> base_by_name;
    for (const ScenarioResult &s : baseline.scenarios)
        base_by_name[s.name] = &s;

    auto count = [&diff](const DiffEntry &entry) {
        if (entry.status == DiffStatus::Regressed)
            ++diff.regressions;
        else if (entry.status == DiffStatus::Improved)
            ++diff.improvements;
        diff.entries.push_back(entry);
    };

    for (const ScenarioResult &cur : current.scenarios) {
        auto it = base_by_name.find(cur.name);
        if (it == base_by_name.end()) {
            DiffEntry entry;
            entry.scenario = cur.name;
            entry.metric = "wall_s";
            entry.current = cur.timing.medianS;
            entry.status = DiffStatus::Added;
            diff.entries.push_back(entry);
            continue;
        }
        const ScenarioResult &base = *it->second;
        base_by_name.erase(it);

        DiffEntry wall;
        wall.scenario = cur.name;
        wall.metric = "wall_s";
        wall.baseline = base.timing.medianS;
        wall.current = cur.timing.medianS;
        wall.gate = std::max(
            {options.wallThreshold * base.timing.medianS,
             options.madK *
                 std::max(base.timing.madS, cur.timing.madS),
             options.minWallDeltaS});
        wall.delta = base.timing.medianS > 0.0
                         ? (cur.timing.medianS - base.timing.medianS) /
                               base.timing.medianS
                         : 0.0;
        wall.status = classify(base.timing.medianS,
                               cur.timing.medianS, wall.gate);
        count(wall);

        // Counters present in both runs: near-deterministic, so a
        // tight relative gate catches algorithmic drift that wall
        // noise would hide.
        for (const auto &[name, cur_value] : cur.counters) {
            auto base_it = base.counters.find(name);
            if (base_it == base.counters.end())
                continue;
            const double base_value = base_it->second;
            DiffEntry entry;
            entry.scenario = cur.name;
            entry.metric = name;
            entry.baseline = base_value;
            entry.current = cur_value;
            entry.gate = std::max(
                options.counterThreshold * base_value, 1.0);
            entry.delta =
                base_value > 0.0
                    ? (cur_value - base_value) / base_value
                    : 0.0;
            entry.status =
                classify(base_value, cur_value, entry.gate);
            if (entry.status != DiffStatus::Unchanged)
                count(entry);
        }
    }

    for (const auto &[name, base] : base_by_name) {
        DiffEntry entry;
        entry.scenario = name;
        entry.metric = "wall_s";
        entry.baseline = base->timing.medianS;
        entry.status = DiffStatus::Removed;
        diff.entries.push_back(entry);
    }
    return diff;
}

void
renderDiff(const DiffReport &diff, std::ostream &os)
{
    for (const std::string &warning : diff.envWarnings)
        os << "warning: env " << warning
           << " (comparing across environments)\n";
    if (!diff.envWarnings.empty())
        os << "\n";
    Table table({"scenario", "metric", "baseline", "current", "delta",
                 "gate", "verdict"});
    for (const DiffEntry &entry : diff.entries) {
        std::string delta = "-";
        if (entry.status != DiffStatus::Added &&
            entry.status != DiffStatus::Removed) {
            std::ostringstream oss;
            oss.precision(2);
            oss << std::fixed << std::showpos << entry.delta * 100.0
                << "%";
            delta = oss.str();
        }
        const bool is_wall = entry.metric == "wall_s";
        auto render_value = [is_wall](double v) {
            return is_wall ? formatSi(v, "s") : formatNumber(v);
        };
        table.row()
            .add(entry.scenario)
            .add(entry.metric)
            .add(render_value(entry.baseline))
            .add(render_value(entry.current))
            .add(delta)
            .add(render_value(entry.gate))
            .add(toString(entry.status));
    }
    table.render(os);
    os << "\n"
       << diff.regressions << " regression(s), " << diff.improvements
       << " improvement(s) past the noise gate\n";
}

void
renderDiffMarkdown(const DiffReport &diff, std::ostream &os)
{
    // Pipes in cell content would break the table; scenario/metric
    // names are dotted identifiers today, but escape defensively.
    const auto escape_cell = [](const std::string &text) {
        std::string out;
        out.reserve(text.size());
        for (char c : text) {
            if (c == '|')
                out += "\\|";
            else
                out += c;
        }
        return out;
    };

    for (const std::string &warning : diff.envWarnings)
        os << "> **warning:** env " << warning
           << " (comparing across environments)\n";
    if (!diff.envWarnings.empty())
        os << "\n";
    os << "| scenario | metric | baseline | current | delta | gate "
          "| verdict |\n";
    os << "| --- | --- | ---: | ---: | ---: | ---: | --- |\n";
    for (const DiffEntry &entry : diff.entries) {
        std::string delta = "-";
        if (entry.status != DiffStatus::Added &&
            entry.status != DiffStatus::Removed) {
            std::ostringstream oss;
            oss.precision(2);
            oss << std::fixed << std::showpos << entry.delta * 100.0
                << "%";
            delta = oss.str();
        }
        const bool is_wall = entry.metric == "wall_s";
        auto render_value = [is_wall](double v) {
            return is_wall ? formatSi(v, "s") : formatNumber(v);
        };
        const bool bold = entry.status == DiffStatus::Regressed;
        const char *emph = bold ? "**" : "";
        os << "| " << emph << escape_cell(entry.scenario) << emph
           << " | " << escape_cell(entry.metric) << " | "
           << render_value(entry.baseline) << " | "
           << render_value(entry.current) << " | " << delta << " | "
           << render_value(entry.gate) << " | " << emph
           << toString(entry.status) << emph << " |\n";
    }
    os << "\n"
       << diff.regressions << " regression(s), " << diff.improvements
       << " improvement(s) past the noise gate\n";
}

} // namespace otft::perf
