/**
 * @file
 * Progress reporting for long parallel sweeps: items-done/total, rate,
 * and ETA on stderr, plus a watchdog that flags tasks whose duration
 * exceeds a configurable multiple of the running median.
 *
 * Reporters are owned by the sweep driver (liberty characterization,
 * explorer width sweep) and ticked from worker threads via
 * `itemDone(seconds)`; rendering is throttled and happens on whichever
 * thread crosses the redraw interval.
 *
 * Output policy, resolved once per process:
 *  - `OTFT_PROGRESS=0` disables rendering entirely;
 *  - `OTFT_PROGRESS=1` forces it on (useful under pipes in tests);
 *  - otherwise progress renders only when stderr is a TTY, with `\r`
 *    in-place redraws. Non-TTY forced output emits one full line per
 *    decile instead so logs stay greppable.
 *
 * The watchdog needs no configuration in the common case: once
 * `watchdogMinSamples` durations are in, any task slower than
 * `watchdogMultiple` x median is warned about and counted in the
 * `progress.watchdog_flags` stat. `OTFT_WATCHDOG_MULT` overrides the
 * multiple process-wide.
 */

#ifndef OTFT_UTIL_PROGRESS_HPP
#define OTFT_UTIL_PROGRESS_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace otft::progress {

/** @return true when progress rendering is on for this process. */
bool enabled();

/** Reporter knobs; the defaults suit multi-second sweeps. */
struct Options
{
    /** Prefix shown on every line ("liberty", "explorer.sweep"). */
    std::string label = "progress";
    /** Total item count (0 renders counts without percent/ETA). */
    std::size_t total = 0;
    /** Minimum seconds between TTY redraws. */
    double minRedrawIntervalS = 0.2;
    /**
     * Watchdog threshold as a multiple of the median task duration
     * (<= 0 disables). Overridden by OTFT_WATCHDOG_MULT when set.
     */
    double watchdogMultiple = 8.0;
    /** Durations needed before the watchdog starts judging. */
    std::size_t watchdogMinSamples = 8;
    /**
     * Time constant (seconds) of the EWMA that smooths the displayed
     * items/sec rate — bursty sweeps (a parallel pool retiring a
     * chunk at once) otherwise make the ETA jitter. <= 0 disables
     * smoothing. The final summary line always shows the raw
     * whole-run rate.
     */
    double rateTauS = 5.0;
};

/**
 * One sweep's progress state. Thread-safe: workers call
 * itemDone() concurrently; the owner calls done() after joining.
 */
class Reporter
{
  public:
    explicit Reporter(Options options);
    ~Reporter();

    Reporter(const Reporter &) = delete;
    Reporter &operator=(const Reporter &) = delete;

    /**
     * Record one finished item and its wall-clock duration (seconds;
     * pass 0 when unknown — the watchdog skips zero durations).
     */
    void itemDone(double duration_s);

    /** Finish the sweep: render the final state and a newline. */
    void done();

    /** Items recorded so far. */
    std::size_t completed() const;

    /** Tasks the watchdog flagged as outliers. */
    std::uint64_t watchdogFlags() const;

    /** The status line as it would render now (exposed for tests). */
    std::string line() const;

    /**
     * The EWMA-smoothed items/sec rate (0 until the first update
     * window closes; exposed for tests).
     */
    double smoothedRate() const;

  private:
    std::string lineLocked() const;
    double medianLocked() const;
    void maybeRenderLocked();
    void updateRateLocked();

    Options options_;
    mutable std::mutex mutex_;
    std::size_t completed_ = 0;
    std::uint64_t watchdogFlags_ = 0;
    std::int64_t startNs_;
    std::int64_t lastRenderNs_ = 0;
    std::size_t lastDecile_ = 0;
    bool renders_;
    bool tty_;
    bool finished_ = false;
    /** EWMA rate state (see updateRateLocked). */
    double ewmaRate_ = 0.0;
    bool ewmaInit_ = false;
    std::int64_t lastRateNs_ = 0;
    std::size_t pendingItems_ = 0;
    /** Completed-task durations for the median (capped; see cpp). */
    std::vector<double> durations_;
};

} // namespace otft::progress

#endif // OTFT_UTIL_PROGRESS_HPP
