#include "arch/predictor.hpp"

#include "util/logging.hpp"

namespace otft::arch {

GsharePredictor::GsharePredictor(int index_bits, int history_bits)
{
    if (index_bits < 4 || index_bits > 24)
        fatal("GsharePredictor: index bits out of range: ", index_bits);
    if (history_bits < 0 || history_bits >= index_bits)
        fatal("GsharePredictor: bad history bits: ", history_bits);
    table.assign(std::size_t{1} << index_bits, 1); // weakly not-taken
    pcBits = index_bits - history_bits;
    mask = (std::uint64_t{1} << index_bits) - 1;
    historyMask = (std::uint64_t{1} << history_bits) - 1;
}

std::size_t
GsharePredictor::index(std::uint64_t pc) const
{
    // Gselect indexing: history bits concatenated above the pc bits,
    // so branches with opposite biases never destructively alias the
    // way a short-history XOR would.
    const std::uint64_t pc_part =
        (pc >> 2) & ((std::uint64_t{1} << pcBits) - 1);
    return static_cast<std::size_t>(
        (pc_part | ((history & historyMask) << pcBits)) & mask);
}

bool
GsharePredictor::predict(std::uint64_t pc) const
{
    return table[index(pc)] >= 2;
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &ctr = table[index(pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    history = ((history << 1) | (taken ? 1 : 0)) & historyMask;
}

void
GsharePredictor::recordOutcome(bool mispredicted)
{
    ++lookups_;
    if (mispredicted)
        ++mispredicts_;
}

} // namespace otft::arch
