#include "arch/config.hpp"

#include <sstream>

namespace otft::arch {

const char *
toString(Region region)
{
    switch (region) {
      case Region::Fetch:
        return "fetch";
      case Region::Decode:
        return "decode";
      case Region::Rename:
        return "rename";
      case Region::Dispatch:
        return "dispatch";
      case Region::Issue:
        return "issue";
      case Region::RegRead:
        return "regread";
      case Region::Execute:
        return "execute";
      case Region::Retire:
        return "retire";
    }
    return "?";
}

int
CoreConfig::totalStages() const
{
    int total = 0;
    for (int s : stages)
        total += s;
    return total;
}

int
CoreConfig::frontEndDepth() const
{
    return stagesIn(Region::Fetch) + stagesIn(Region::Decode) +
           stagesIn(Region::Rename) + stagesIn(Region::Dispatch);
}

int
CoreConfig::branchResolutionDepth() const
{
    return frontEndDepth() + stagesIn(Region::Issue) +
           stagesIn(Region::RegRead) + stagesIn(Region::Execute);
}

int
CoreConfig::wakeupPenalty() const
{
    return stagesIn(Region::Issue) - 1;
}

std::string
CoreConfig::describe() const
{
    std::ostringstream oss;
    oss << "fe" << fetchWidth << "/be" << backendWidth() << "/"
        << totalStages() << "st(";
    for (int r = 0; r < numRegions; ++r) {
        if (r)
            oss << ",";
        oss << stages[r];
    }
    oss << ")";
    return oss.str();
}

CoreConfig
baselineConfig()
{
    return CoreConfig{};
}

} // namespace otft::arch
