#include "arch/memory.hpp"

#include "util/logging.hpp"

namespace otft::arch {

namespace {

int
log2int(std::size_t v)
{
    int s = 0;
    while ((std::size_t{1} << s) < v)
        ++s;
    return s;
}

} // namespace

Cache::Cache(std::size_t size_bytes, int ways, int line_bytes)
    : ways(ways), lineShift(log2int(static_cast<std::size_t>(line_bytes)))
{
    if (ways < 1 || size_bytes == 0 || line_bytes <= 0)
        fatal("Cache: bad geometry");
    numSets = size_bytes /
              (static_cast<std::size_t>(ways) *
               static_cast<std::size_t>(line_bytes));
    if (numSets == 0)
        numSets = 1;
    lines.assign(numSets * static_cast<std::size_t>(ways), Line{});
}

bool
Cache::access(std::uint64_t address)
{
    ++clock;
    const std::uint64_t line_addr = address >> lineShift;
    const std::size_t set =
        static_cast<std::size_t>(line_addr % numSets);
    Line *base = &lines[set * static_cast<std::size_t>(ways)];

    Line *victim = base;
    for (int w = 0; w < ways; ++w) {
        if (base[w].tag == line_addr) {
            base[w].lastUse = clock;
            ++hits_;
            return true;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->tag = line_addr;
    victim->lastUse = clock;
    ++misses_;
    return false;
}

MemoryModel::MemoryModel(int l1_latency, int l2_latency, int mem_latency)
    : l1_(32 * 1024, 4), l2_(256 * 1024, 8), l1Latency(l1_latency),
      l2Latency(l2_latency), memLatency(mem_latency)
{
}

int
MemoryModel::loadLatency(std::uint64_t address)
{
    if (l1_.access(address))
        return l1Latency;
    // Next-line prefetch on demand miss.
    l1_.access(address + 64);
    if (l2_.access(address)) {
        l2_.access(address + 64);
        return l2Latency;
    }
    l2_.access(address + 64);
    return memLatency;
}

void
MemoryModel::store(std::uint64_t address)
{
    if (!l1_.access(address))
        l2_.access(address);
}

} // namespace otft::arch
