/**
 * @file
 * Superscalar core configuration (the AnyCore-style design space).
 *
 * The paper's sweeps move along two axes (Sec. 5.1):
 *  - front-end width: instructions fetched/decoded/dispatched per
 *    cycle (Fig. 13/14 x-axis, 1-6);
 *  - back-end width: number of ALU execution pipes; memory and
 *    control pipes are fixed at one each, so the paper's "back-end
 *    width 3..7" maps to 1..5 ALU pipes;
 * and one depth axis: the 9-stage baseline is deepened to 15 stages
 * by cutting whichever stage is on the critical path (Fig. 11).
 */

#ifndef OTFT_ARCH_CONFIG_HPP
#define OTFT_ARCH_CONFIG_HPP

#include <string>

namespace otft::arch {

/** Pipeline regions that can be deepened by the synthesizer. */
enum class Region {
    Fetch,
    Decode,
    Rename,
    Dispatch,
    Issue,
    RegRead,
    Execute,
    Retire,
};

/** Number of Region values. */
inline constexpr int numRegions = 8;

/** @return printable region name. */
const char *toString(Region region);

/** Core configuration. */
struct CoreConfig
{
    /** Front-end width (fetch/decode/dispatch per cycle). */
    int fetchWidth = 1;
    /** ALU execution pipes (back-end width minus mem and branch). */
    int aluPipes = 1;
    /** Memory pipes (fixed at 1 in the paper's sweeps). */
    int memPipes = 1;
    /** Branch/control pipes (fixed at 1). */
    int branchPipes = 1;

    /** Stages per region; baseline sums to 9. */
    int stages[numRegions] = {2, 1, 1, 1, 1, 1, 1, 1};

    /** Structure sizes (AnyCore-class). */
    int robSize = 128;
    int iqSize = 32;
    int lsqSize = 32;

    /** Gshare history bits / table size log2. */
    int predictorBits = 12;

    /** Execution latencies at baseline depth, cycles. */
    int mulLatency = 3;
    int divLatency = 12;
    /** Cache hierarchy latencies, cycles. */
    int l1Latency = 2;
    int l2Latency = 12;
    int memLatency = 120;

    /** The paper's back-end width (execution pipes total). */
    int backendWidth() const
    {
        return aluPipes + memPipes + branchPipes;
    }

    int stagesIn(Region r) const
    {
        return stages[static_cast<int>(r)];
    }
    int &stagesIn(Region r) { return stages[static_cast<int>(r)]; }

    /** Total pipeline stages. */
    int totalStages() const;

    /** Stages from fetch to dispatch (refill path after a flush). */
    int frontEndDepth() const;

    /**
     * Cycles from fetch to branch execution: the misprediction
     * penalty grows with depth, the paper's primary IPC-loss driver.
     */
    int branchResolutionDepth() const;

    /**
     * Extra cycles added to every dependent-operation latency by a
     * multi-cycle issue/wakeup loop (issue stages beyond one break
     * back-to-back wakeup).
     */
    int wakeupPenalty() const;

    /** Effective ALU latency (execute region depth). */
    int aluLatency() const { return stagesIn(Region::Execute); }

    /** One-line description for reports. */
    std::string describe() const;
};

/** The paper's baseline: single-issue, 9-stage out-of-order core. */
CoreConfig baselineConfig();

} // namespace otft::arch

#endif // OTFT_ARCH_CONFIG_HPP
