/**
 * @file
 * Two-level data cache model.
 *
 * Set-associative L1D and unified L2 with LRU replacement, returning
 * access latency in cycles. Instruction fetch is modeled as always
 * hitting (the synthetic traces have small static footprints, and the
 * paper's depth/width conclusions hinge on data-side behavior).
 */

#ifndef OTFT_ARCH_MEMORY_HPP
#define OTFT_ARCH_MEMORY_HPP

#include <cstdint>
#include <vector>

namespace otft::arch {

/** One set-associative cache level. */
class Cache
{
  public:
    /**
     * @param size_bytes total capacity
     * @param ways associativity
     * @param line_bytes cache line size
     */
    Cache(std::size_t size_bytes, int ways, int line_bytes = 64);

    /** Access a byte address; @return true on hit. Fills on miss. */
    bool access(std::uint64_t address);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Line
    {
        std::uint64_t tag = ~std::uint64_t{0};
        std::uint64_t lastUse = 0;
    };

    int ways;
    int lineShift;
    std::size_t numSets;
    std::vector<Line> lines; // numSets x ways
    std::uint64_t clock = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * L1 + L2 + memory, reporting access latency. A next-line prefetcher
 * installs the successor line on every demand miss, so sequential
 * streams mostly hit after the first touch — the first-order effect
 * of the stride prefetchers in AnyCore-class memory hierarchies.
 */
class MemoryModel
{
  public:
    MemoryModel(int l1_latency, int l2_latency, int mem_latency);

    /** @return load-to-use latency in cycles for this address. */
    int loadLatency(std::uint64_t address);

    /** Record a store (fills caches; stores retire off critical path). */
    void store(std::uint64_t address);

    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }

  private:
    Cache l1_;
    Cache l2_;
    int l1Latency;
    int l2Latency;
    int memLatency;
};

} // namespace otft::arch

#endif // OTFT_ARCH_MEMORY_HPP
