#include "arch/core.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/stats_registry.hpp"

namespace otft::arch {

using workload::OpClass;

CoreModel::CoreModel(CoreConfig config, workload::TraceGenerator &trace)
    : cfg(config), trace(trace), predictor(config.predictorBits),
      memory(config.l1Latency, config.l2Latency, config.memLatency),
      aluBusyUntil(static_cast<std::size_t>(config.aluPipes), 0)
{
    if (cfg.fetchWidth < 1 || cfg.aluPipes < 1)
        fatal("CoreModel: invalid widths");
}

bool
CoreModel::operandReady(std::uint64_t producer_serial) const
{
    if (producer_serial == 0 || producer_serial < headSerial)
        return true; // no producer, or producer already committed
    const std::size_t idx =
        static_cast<std::size_t>(producer_serial - headSerial);
    if (idx >= rob.size())
        return true; // squashed producer: value is architectural
    return rob[idx].state == State::Done;
}

CoreModel::RobEntry &
CoreModel::entryOf(std::uint64_t serial)
{
    return rob[static_cast<std::size_t>(serial - headSerial)];
}

void
CoreModel::flushAfter(std::uint64_t serial)
{
    while (!rob.empty() && rob.back().serial > serial) {
        if (rob.back().op == OpClass::Load ||
            rob.back().op == OpClass::Store)
            --memInFlight;
        rob.pop_back();
    }
    fetchQueue.clear();
    // Rebuild the rename map from the surviving in-flight producers.
    std::fill(renameMap.begin(), renameMap.end(), 0);
    for (const RobEntry &entry : rob)
        if (entry.dest != workload::noReg)
            renameMap[static_cast<std::size_t>(entry.dest)] =
                entry.serial;
}

void
CoreModel::doCommit()
{
    const int commit_width = std::max(cfg.fetchWidth,
                                      cfg.backendWidth());
    for (int k = 0; k < commit_width && !rob.empty(); ++k) {
        RobEntry &head = rob.front();
        if (head.state != State::Done || head.doneCycle > cycle)
            break;
        if (head.op == OpClass::Load || head.op == OpClass::Store)
            --memInFlight;
        ++stats.instructions;
        ++headSerial;
        rob.pop_front();
    }
}

void
CoreModel::doComplete()
{
    for (RobEntry &entry : rob) {
        if (entry.state != State::Issued || entry.doneCycle > cycle)
            continue;
        entry.state = State::Done;
        if (entry.isBranch) {
            predictor.recordOutcome(entry.mispredicted);
            ++stats.branches;
            if (entry.mispredicted) {
                ++stats.mispredicts;
                // Redirect: squash younger work, restart fetch.
                flushAfter(entry.serial);
                fetchResumeCycle = cycle + 1;
                fetchBlocked = false;
            }
        }
    }
}

void
CoreModel::doIssue()
{
    int alu_free = 0;
    for (std::uint64_t busy : aluBusyUntil)
        if (busy <= cycle)
            ++alu_free;
    int mem_free = cfg.memPipes;
    int branch_free = cfg.branchPipes;

    const int wakeup = cfg.wakeupPenalty();
    int window = 0;
    for (RobEntry &entry : rob) {
        if (alu_free + mem_free + branch_free == 0)
            break;
        if (entry.state != State::Waiting)
            continue;
        if (++window > cfg.iqSize)
            break; // outside the issue window
        if (entry.earliestIssue > cycle)
            continue;
        if (!operandReady(entry.prod1) || !operandReady(entry.prod2))
            continue;

        switch (entry.op) {
          case OpClass::IntAlu:
            if (alu_free == 0)
                continue;
            --alu_free;
            entry.doneCycle = cycle +
                              static_cast<std::uint64_t>(
                                  cfg.aluLatency() + wakeup);
            break;
          case OpClass::IntMul:
            if (alu_free == 0)
                continue;
            --alu_free;
            entry.doneCycle =
                cycle + static_cast<std::uint64_t>(
                            cfg.mulLatency + cfg.aluLatency() - 1 +
                            wakeup);
            break;
          case OpClass::IntDiv: {
            if (alu_free == 0)
                continue;
            --alu_free;
            // Divide blocks its pipe until completion.
            const std::uint64_t done =
                cycle + static_cast<std::uint64_t>(
                            cfg.divLatency + cfg.aluLatency() - 1 +
                            wakeup);
            entry.doneCycle = done;
            for (std::uint64_t &busy : aluBusyUntil) {
                if (busy <= cycle) {
                    busy = done;
                    break;
                }
            }
            break;
          }
          case OpClass::Load: {
            if (mem_free == 0)
                continue;
            --mem_free;
            const std::uint64_t l1m = memory.l1().misses();
            const std::uint64_t l2m = memory.l2().misses();
            const int latency = memory.loadLatency(entry.address);
            stats.l1Misses += memory.l1().misses() - l1m;
            stats.l2Misses += memory.l2().misses() - l2m;
            ++stats.loads;
            entry.doneCycle = cycle +
                              static_cast<std::uint64_t>(
                                  latency + cfg.aluLatency() - 1 +
                                  wakeup);
            break;
          }
          case OpClass::Store:
            if (mem_free == 0)
                continue;
            --mem_free;
            memory.store(entry.address);
            ++stats.stores;
            entry.doneCycle = cycle + 1;
            break;
          case OpClass::Branch:
            if (branch_free == 0)
                continue;
            --branch_free;
            // Resolution at the end of the execute region.
            entry.doneCycle =
                cycle + static_cast<std::uint64_t>(
                            cfg.stagesIn(Region::RegRead) +
                            cfg.stagesIn(Region::Execute));
            break;
        }
        entry.state = State::Issued;
    }
}

void
CoreModel::doDispatch()
{
    int waiting = 0;
    for (const RobEntry &entry : rob)
        if (entry.state == State::Waiting)
            ++waiting;

    for (int k = 0; k < cfg.fetchWidth; ++k) {
        if (fetchQueue.empty() ||
            fetchQueue.front().readyCycle > cycle)
            break;
        if (static_cast<int>(rob.size()) >= cfg.robSize)
            break;
        if (waiting >= cfg.iqSize)
            break;
        const FetchedInst &fetched = fetchQueue.front();
        const bool is_mem = fetched.inst.op == OpClass::Load ||
                            fetched.inst.op == OpClass::Store;
        if (is_mem && memInFlight >= cfg.lsqSize)
            break;

        RobEntry entry;
        entry.op = fetched.inst.op;
        entry.serial = nextSerial++;
        entry.earliestIssue =
            cycle + static_cast<std::uint64_t>(
                        cfg.stagesIn(Region::Issue));
        entry.address = fetched.inst.address;
        entry.isBranch = fetched.inst.op == OpClass::Branch;
        entry.mispredicted = fetched.mispredicted;
        entry.pc = fetched.inst.pc;
        entry.taken = fetched.inst.taken;

        // Rename: newest in-flight producer per source register.
        auto producer = [&](int reg) -> std::uint64_t {
            if (reg == workload::noReg)
                return 0;
            return renameMap[static_cast<std::size_t>(reg)];
        };
        entry.prod1 = producer(fetched.inst.src1);
        entry.prod2 = producer(fetched.inst.src2);
        entry.dest = fetched.inst.dest;
        if (entry.dest != workload::noReg)
            renameMap[static_cast<std::size_t>(entry.dest)] =
                entry.serial;

        if (is_mem)
            ++memInFlight;
        rob.push_back(entry);
        ++waiting;
        fetchQueue.pop_front();
    }
}

void
CoreModel::doFetch()
{
    if (cycle < fetchResumeCycle || fetchBlocked)
        return;

    for (int k = 0; k < cfg.fetchWidth; ++k) {
        workload::TraceInst inst = trace.next();
        FetchedInst fetched;
        fetched.inst = inst;
        fetched.readyCycle =
            cycle + static_cast<std::uint64_t>(cfg.frontEndDepth());

        if (inst.op == OpClass::Branch) {
            const bool predicted = predictor.predict(inst.pc);
            predictor.update(inst.pc, inst.taken);
            fetched.mispredicted = predicted != inst.taken;
            fetchQueue.push_back(fetched);
            if (fetched.mispredicted) {
                // Trace-driven recovery: stop fetching until the
                // branch resolves (wrong-path work is not modeled).
                fetchBlocked = true;
                break;
            }
            if (inst.taken)
                break; // one taken branch per fetch group
        } else {
            fetchQueue.push_back(fetched);
        }
    }
}

SimStats
CoreModel::run(std::uint64_t instruction_count,
               std::uint64_t warmup_instructions)
{
    // Safety valve: no workload should need more than this many
    // cycles per instruction even at width 1.
    const std::uint64_t max_cycles =
        (warmup_instructions + instruction_count) * 400 + 100000;

    auto step = [&] {
        doCommit();
        doComplete();
        doIssue();
        doDispatch();
        doFetch();
        ++cycle;
    };

    // Warmup: train the predictor and caches, then discard counters
    // while keeping all microarchitectural state.
    stats = SimStats{};
    while (stats.instructions < warmup_instructions &&
           cycle < max_cycles)
        step();
    stats = SimStats{};

    const std::uint64_t measure_start = cycle;
    while (stats.instructions < instruction_count &&
           cycle < max_cycles)
        step();
    if (cycle >= max_cycles)
        warn("CoreModel: cycle limit reached (deadlock?)");
    stats.cycles = cycle - measure_start;

    // `stats` names the member here, so qualify the namespace fully.
    static otft::stats::Counter &stat_insts = otft::stats::counter(
        "arch.instructions.simulated",
        "instructions committed in the measured phase");
    static otft::stats::Counter &stat_cycles = otft::stats::counter(
        "arch.cycles.simulated", "cycles in the measured phase");
    stat_insts += stats.instructions;
    stat_cycles += stats.cycles;
    return stats;
}

} // namespace otft::arch
