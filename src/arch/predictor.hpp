/**
 * @file
 * Gshare branch direction predictor.
 *
 * A global-history XOR-indexed table of 2-bit saturating counters.
 * Branch targets are assumed BTB-resolved (direction mispredictions
 * dominate the depth sensitivity the paper studies).
 */

#ifndef OTFT_ARCH_PREDICTOR_HPP
#define OTFT_ARCH_PREDICTOR_HPP

#include <cstdint>
#include <vector>

namespace otft::arch {

/**
 * Global-history branch direction predictor with 2-bit saturating
 * counters, gselect-indexed (history concatenated above the pc bits).
 */
class GsharePredictor
{
  public:
    /**
     * @param index_bits log2 of the counter table size
     * @param history_bits global history length XORed into the index;
     *        kept shorter than the index so per-branch bias dominates
     *        and history only disambiguates correlated patterns
     */
    explicit GsharePredictor(int index_bits = 12, int history_bits = 3);

    /** Predict the direction of the branch at pc. */
    bool predict(std::uint64_t pc) const;

    /** Train with the actual outcome and update global history. */
    void update(std::uint64_t pc, bool taken);

    /** Predictions made / mispredictions observed. */
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /**
     * Record a resolved prediction (bookkeeping only; update() trains
     * the tables).
     */
    void recordOutcome(bool mispredicted);

  private:
    std::size_t index(std::uint64_t pc) const;

    std::vector<std::uint8_t> table;
    std::uint64_t history = 0;
    std::uint64_t mask;
    std::uint64_t historyMask;
    int pcBits = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace otft::arch

#endif // OTFT_ARCH_PREDICTOR_HPP
