/**
 * @file
 * Trace-driven cycle-level out-of-order superscalar core model — the
 * framework's AnyCore-equivalent IPC simulator.
 *
 * Models: a fetch group of up to fetchWidth instructions per cycle
 * (one taken branch per group), gshare direction prediction trained
 * at fetch, a front-end delay pipe of frontEndDepth() stages, ROB/IQ/
 * LSQ occupancy limits, oldest-first issue to typed execution pipes
 * (ALU / memory / branch; multiply pipelined, divide blocking), full
 * bypass with a wakeup penalty when the issue loop is deepened, a
 * two-level data cache, and misprediction recovery timed by the
 * branch resolution depth plus front-end refill.
 *
 * Trace-driven simplification: wrong-path instructions are not
 * fetched; the misprediction cost is modeled as fetch-stall until
 * resolution plus the refill latency of the correct-path fetch group,
 * which is the same first-order penalty the paper's simulator charges.
 * IPC depends only on the core configuration — not on the technology
 * library — exactly as in the paper, where one AnyCore simulation
 * serves both processes.
 */

#ifndef OTFT_ARCH_CORE_HPP
#define OTFT_ARCH_CORE_HPP

#include <cstdint>
#include <deque>

#include "arch/config.hpp"
#include "arch/memory.hpp"
#include "arch/predictor.hpp"
#include "workload/trace.hpp"

namespace otft::arch {

/** Simulation statistics. */
struct SimStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    double
    mispredictRate() const
    {
        return branches ? static_cast<double>(mispredicts) /
                              static_cast<double>(branches)
                        : 0.0;
    }
};

/** The core model. */
class CoreModel
{
  public:
    CoreModel(CoreConfig config, workload::TraceGenerator &trace);

    /**
     * Simulate until `instruction_count` instructions commit after a
     * warmup period (predictor and caches train during warmup;
     * statistics cover only the measured phase).
     */
    SimStats run(std::uint64_t instruction_count,
                 std::uint64_t warmup_instructions = 10000);

    const CoreConfig &config() const { return cfg; }

  private:
    enum class State : std::uint8_t { Waiting, Issued, Done };

    struct RobEntry
    {
        workload::OpClass op = workload::OpClass::IntAlu;
        State state = State::Waiting;
        /** Producer serials for the two sources (0 = ready). */
        std::uint64_t prod1 = 0;
        std::uint64_t prod2 = 0;
        std::uint64_t serial = 0;
        std::uint64_t earliestIssue = 0;
        std::uint64_t doneCycle = 0;
        std::uint64_t address = 0;
        int dest = workload::noReg;
        bool isBranch = false;
        bool mispredicted = false;
        std::uint64_t pc = 0;
        bool taken = false;
    };

    struct FetchedInst
    {
        workload::TraceInst inst;
        bool mispredicted = false;
        std::uint64_t readyCycle = 0;
    };

    /** Is the producer with this serial complete? */
    bool operandReady(std::uint64_t producer_serial) const;

    /** Entry lookup by serial (must be in flight). */
    RobEntry &entryOf(std::uint64_t serial);

    /** Squash everything younger than the given serial. */
    void flushAfter(std::uint64_t serial);

    void doCommit();
    void doComplete();
    void doIssue();
    void doDispatch();
    void doFetch();

    CoreConfig cfg;
    workload::TraceGenerator &trace;
    GsharePredictor predictor;
    MemoryModel memory;
    SimStats stats;

    std::uint64_t cycle = 0;
    std::uint64_t nextSerial = 1;
    /** Serial of the ROB head entry (oldest in flight). */
    std::uint64_t headSerial = 1;
    std::deque<RobEntry> rob;
    std::deque<FetchedInst> fetchQueue;
    /** Fetch stalls until this cycle after a misprediction. */
    std::uint64_t fetchResumeCycle = 0;
    /** Fetch is blocked behind an unresolved mispredicted branch. */
    bool fetchBlocked = false;
    /** Newest in-flight producer serial per architectural register
     *  (0 = the architectural value is ready). */
    std::vector<std::uint64_t> renameMap =
        std::vector<std::uint64_t>(workload::numArchRegs, 0);
    /** Per-ALU-pipe busy horizon (divide blocks its pipe). */
    std::vector<std::uint64_t> aluBusyUntil;
    /** In-flight memory operations (LSQ occupancy). */
    int memInFlight = 0;
};

} // namespace otft::arch

#endif // OTFT_ARCH_CORE_HPP
