/**
 * @file
 * Static (VTC) analysis of inverting cells: switching threshold by
 * the mirror-intersection method, maximum small-signal gain, noise
 * margins by the maximum-equal-criterion (Hauser 1993) with the
 * classical gain = -1 criterion as a cross-check, and static power at
 * both input levels — the DC parameter set of the paper's Figs. 6-8.
 */

#ifndef OTFT_CELLS_VTC_HPP
#define OTFT_CELLS_VTC_HPP

#include <vector>

#include "cells/topologies.hpp"

namespace otft::cells {

/** DC characterization of one inverting cell. */
struct VtcResult
{
    /** Input sweep, volts. */
    std::vector<double> vin;
    /** Output voltage per sweep point, volts. */
    std::vector<double> vout;
    /** VDD supply current per sweep point, amperes. */
    std::vector<double> idd;

    /** Switching threshold (VTC mirror intersection VOUT = VIN). */
    double vm = 0.0;
    /** Maximum |dVOUT/dVIN|. */
    double maxGain = 0.0;
    /** Output high level (VOUT at VIN = 0). */
    double voh = 0.0;
    /** Output low level (VOUT at VIN = VDD). */
    double vol = 0.0;
    /** Noise margins from the maximum equal criterion, volts. */
    double nmh = 0.0;
    double nml = 0.0;
    /** Noise margins from the gain = -1 criterion, volts. */
    double nmhGain = 0.0;
    double nmlGain = 0.0;
    /** Static power with input low (VIN = 0), watts. */
    double staticPowerLow = 0.0;
    /** Static power with input high (VIN = VDD), watts. */
    double staticPowerHigh = 0.0;
};

/** Sweeps and characterizes inverting cells. */
class VtcAnalyzer
{
  public:
    /** @param points sweep resolution (>= 32). */
    explicit VtcAnalyzer(std::size_t points = 151) : points(points) {}

    /**
     * Sweep the first input of the cell from 0 to VDD with any other
     * inputs held at the given level (volts; pass the VDD value to
     * sensitize a NAND input, 0 for a NOR input) and extract all DC
     * parameters.
     */
    VtcResult analyze(BuiltCell &cell, double other_inputs = 0.0) const;

  private:
    std::size_t points;
};

} // namespace otft::cells

#endif // OTFT_CELLS_VTC_HPP
