/**
 * @file
 * Scripted cell sizing search (paper Sec. 4.3.4).
 *
 * "The fine-tuning of circuit sizing is crucial for creating a good
 * logic gate. ... we utilized a script to explore the design space and
 * select the best parameter sets for each gate. The switching
 * threshold, noise margin, gate delay, and area are all taken into
 * consideration when we define the utility function."
 *
 * This module is that script: a utility function over the DC metrics
 * (VM centering, noise margin, full swing), the transient gate delay
 * under fanout-1 load, and active area, maximized with Nelder-Mead
 * over log-widths. The library's baked-in CellSizing defaults were
 * produced by this search; tests re-run a coarse search to confirm
 * the defaults sit near the optimum.
 */

#ifndef OTFT_CELLS_SIZING_HPP
#define OTFT_CELLS_SIZING_HPP

#include "cells/topologies.hpp"
#include "cells/vtc.hpp"

namespace otft::cells {

/** Weights of the sizing utility function. All terms normalized. */
struct UtilityWeights
{
    /** Penalty weight for |VM - VDD/2|. */
    double vmCentering = 3.0;
    /** Reward weight for min(NMH, NML). */
    double noiseMargin = 3.0;
    /** Penalty weight for output swing loss (VDD - VOH) + VOL. */
    double swing = 4.0;
    /** Penalty weight for gate delay relative to delayScale. */
    double delay = 1.0;
    /** Reference delay for normalization, seconds. */
    double delayScale = 40e-6;
    /** Penalty weight for active area relative to areaScale. */
    double area = 0.5;
    /** Reference active area for normalization, m^2. */
    double areaScale = 1.2e-8;
};

/** One evaluated design point. */
struct SizingEvaluation
{
    CellSizing sizing;
    VtcResult vtc;
    /** Average of rising and falling propagation delay, seconds. */
    double gateDelay = 0.0;
    /** Active area of the cell, m^2. */
    double activeArea = 0.0;
    /** The scalar utility (higher is better). */
    double utility = 0.0;
};

/** Search controls. */
struct SizingSearchConfig
{
    UtilityWeights weights = {};
    /** Objective evaluations budget. */
    int maxEvals = 120;
    /** VTC sweep resolution during search (coarse for speed). */
    std::size_t vtcPoints = 61;
    /** Transient steps per delay evaluation. */
    double transientDt = 0.4e-6;
};

/**
 * Design-space search for pseudo-E cell sizing at a given supply.
 */
class SizingOptimizer
{
  public:
    SizingOptimizer(device::Level61Params device_params,
                    SupplyConfig supply, SizingSearchConfig config = {})
        : deviceParams(device_params), supply(supply), config_(config)
    {}

    /** Evaluate the utility of one sizing (also used by tests). */
    SizingEvaluation evaluate(const CellSizing &sizing) const;

    /** Run the search from the given starting sizing. */
    SizingEvaluation optimize(const CellSizing &start) const;

    const SizingSearchConfig &config() const { return config_; }

  private:
    device::Level61Params deviceParams;
    SupplyConfig supply;
    SizingSearchConfig config_;
};

/**
 * Transient propagation delay of an inverter driving `fanout` copies
 * of its own input capacitance: average of rising and falling output
 * delays for a full-swing input pulse.
 * @return delay in seconds, or a large penalty value if the output
 *         never crosses 50%.
 */
double measureInverterDelay(const CellFactory &factory, double fanout,
                            double dt);

} // namespace otft::cells

#endif // OTFT_CELLS_SIZING_HPP
