/**
 * @file
 * Transistor-level topologies of the organic standard cell library.
 *
 * All cells are unipolar p-type, as the paper's process offers no
 * usable n-type organic device (Sec. 3.2). Three inverter styles are
 * implemented for the Fig. 6 comparison:
 *
 *  - diode-load: drive transistor to VDD, diode-connected load to GND;
 *  - biased-load: load gate tied to a negative VSS rail;
 *  - pseudo-E (pseudo-CMOS): a two-transistor level-shifter stage
 *    drives the gate of the output pull-down, giving full output swing
 *    (Huang et al. 2011, the paper's Sec. 4.3.2 choice).
 *
 * NAND/NOR gates (2- and 3-input) and the D flip-flop use the pseudo-E
 * style throughout, matching the paper's library.
 */

#ifndef OTFT_CELLS_TOPOLOGIES_HPP
#define OTFT_CELLS_TOPOLOGIES_HPP

#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "device/level61_model.hpp"

namespace otft::cells {

/** Inverter design style. */
enum class InverterKind { DiodeLoad, BiasedLoad, PseudoE };

/** @return human-readable style name. */
const char *toString(InverterKind kind);

/** Supply rails for organic cells. */
struct SupplyConfig
{
    /** Positive rail, volts. */
    double vdd = 5.0;
    /** Negative bias rail for biased-load / pseudo-E styles, volts. */
    double vss = -15.0;
};

/**
 * Transistor widths for a cell. Values were selected by
 * cells::SizingOptimizer (paper Sec. 4.3.4) and are locked in here;
 * tests re-run a coarse search to confirm they sit near the utility
 * optimum.
 *
 * Geometry scale: the fabricated test device is W/L = 1000/80 um, but
 * standard cells use a 20 um channel (comfortably within shadow-mask
 * resolution) with widths scaled to keep every W/L ratio — so the
 * ratioed-logic DC behavior (VTC, noise margins, static power) is
 * identical while gate capacitances, and therefore delays, drop 16x.
 * This reproduces the paper's absolute speed scale (a 9-stage organic
 * core near 200 Hz); the device model's aspect-ratio current scaling
 * is documented as exact (short-channel corrections at 20 um are
 * negligible for these fields).
 */
struct CellSizing
{
    /** Channel length for all devices, meters. */
    double l = 20e-6;
    /** Output-stage drive (pull-up) width, meters. */
    double wDrive = 200e-6;
    /** Output-stage load (pull-down) width, meters. */
    double wLoad = 75e-6;
    /** Level-shifter input device width, meters. */
    double wShiftDrive = 200e-6;
    /** Level-shifter load (diode to VSS) width, meters. */
    double wShiftLoad = 5e-6;
    /** Extra area factor for routing/contacts in area estimates. */
    double routingFactor = 2.0;
};

/**
 * A built cell: its circuit, pin bookkeeping, and area estimate.
 * Inputs are driven by per-input voltage sources so analyses can
 * rebind stimulus waveforms.
 */
struct BuiltCell
{
    circuit::Circuit ckt;
    /** Input nodes, in pin order (A, B, C...; D/CK/PRE/CLR for DFF). */
    std::vector<circuit::NodeId> inputs;
    /** Sources driving each input. */
    std::vector<circuit::SourceId> inputSources;
    /** Primary output node. */
    circuit::NodeId out = 0;
    /** Complementary output (DFF only), or 0. */
    circuit::NodeId outBar = 0;
    /** Supply sources. */
    circuit::SourceId vddSource = -1;
    circuit::SourceId vssSource = -1;
    /** Rails used. */
    SupplyConfig supply;
    /** Total active transistor area W x L summed, m^2. */
    double activeArea = 0.0;
    /** Active area times the routing factor, m^2. */
    double cellArea = 0.0;
    /** Number of transistors. */
    int transistorCount = 0;
    /** Cell name for reports. */
    std::string name;
};

/**
 * Builds transistor-level cells from a pentacene device parameter set.
 */
class CellFactory
{
  public:
    CellFactory(device::Level61Params device_params, CellSizing sizing,
                SupplyConfig supply)
        : deviceParams(device_params), sizing_(sizing), supply_(supply)
    {}

    /** Factory with golden pentacene devices and default sizing. */
    CellFactory();

    /** Build an inverter of the given style. */
    BuiltCell inverter(InverterKind kind, double load_cap = 0.0) const;

    /** Build a pseudo-E NAND with 2 or 3 inputs. */
    BuiltCell nand(int fan_in, double load_cap = 0.0) const;

    /** Build a pseudo-E NOR with 2 or 3 inputs. */
    BuiltCell nor(int fan_in, double load_cap = 0.0) const;

    /**
     * Build a positive-edge D flip-flop with active-low preset and
     * clear (classic six-gate 7474 structure in pseudo-E NANDs).
     * Pin order: D, CK, PREbar, CLRbar. out = Q, outBar = Qbar.
     */
    BuiltCell dff(double load_cap = 0.0) const;

    /**
     * Build a dynamic (precharge/evaluate) unipolar gate — the design
     * style the paper flags as future work (Sec. 7: "only roughly
     * half the transistors are needed and switching time can be
     * faster with the tradeoff being possibly worse power").
     *
     * Topology: `fan_in` parallel drive transistors from VDD to OUT
     * (the evaluate network; OUT rises when any input goes low) and
     * one clocked precharge transistor from OUT to GND. The clock pin
     * is the LAST input; it must swing below ground to turn the
     * p-type precharge device on (drive it with e.g. -5 V .. +VDD).
     * Total devices: fan_in + 1, versus 2*fan_in + 2 for the static
     * pseudo-E gate of the same fan-in.
     */
    BuiltCell dynamicGate(int fan_in, double load_cap = 0.0) const;

    /** Input gate capacitance of a pseudo-E cell input pin, farads. */
    double inputCap() const;

    const CellSizing &sizing() const { return sizing_; }
    const SupplyConfig &supply() const { return supply_; }
    const device::Level61Params &params() const { return deviceParams; }

  private:
    /** A pentacene device with the given width. */
    device::TransistorModelPtr makeDevice(double w) const;

    /** Add the two-transistor level shifter; returns node X. */
    circuit::NodeId addShifter(BuiltCell &cell,
                               const std::vector<circuit::NodeId> &gates,
                               bool series, circuit::NodeId vdd_node,
                               circuit::NodeId vss_node) const;

    /** Track area/count for a device of width w. */
    void account(BuiltCell &cell, double w) const;

    /**
     * Add one complete pseudo-E gate (shifter + output stage) inside
     * an existing cell circuit. Gate inputs are existing nodes;
     * returns the output node. series == true builds NOR-style
     * (series pull-up), false builds NAND-style (parallel pull-up).
     */
    circuit::NodeId addPseudoEGate(BuiltCell &cell,
                                   const std::vector<circuit::NodeId> &ins,
                                   bool series, circuit::NodeId vdd_node,
                                   circuit::NodeId vss_node,
                                   const std::string &label) const;

    device::Level61Params deviceParams;
    CellSizing sizing_;
    SupplyConfig supply_;
};

} // namespace otft::cells

#endif // OTFT_CELLS_TOPOLOGIES_HPP
