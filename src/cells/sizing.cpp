#include "cells/sizing.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/transient.hpp"
#include "util/logging.hpp"
#include "util/optimize.hpp"

namespace otft::cells {

double
measureInverterDelay(const CellFactory &factory, double fanout, double dt)
{
    const double vdd = factory.supply().vdd;
    const double load = fanout * factory.inputCap();
    BuiltCell cell = factory.inverter(InverterKind::PseudoE, load);

    // Full-swing pulse: rise at t1, fall at t2, with edges fast
    // relative to the cell's own response.
    const double t_edge = 20.0 * dt;
    const double t1 = 50.0 * dt;
    const double t_width = 1000.0 * dt;
    cell.ckt.setSourceWave(cell.inputSources[0],
                           circuit::Pwl::pulse(0.0, vdd, t1, t_edge,
                                               t_width));

    circuit::TransientConfig config;
    config.dt = dt;
    config.tStop = t1 + 2.0 * t_edge + 2.0 * t_width;

    circuit::TransientAnalysis tran(cell.ckt);
    const auto result = tran.run(config);
    const auto in = result.node(cell.inputs[0]);
    const auto out = result.node(cell.out);

    // Output falls on the input rise and rises on the input fall. Use
    // the settled output levels as the swing reference.
    const double v_hi = out.value.front();
    const double v_lo = out.at(t1 + t_edge + 0.9 * t_width);

    const double tphl = circuit::measureDelay(in, out, 0.0, vdd, true,
                                              v_lo, v_hi, false, 0.0);
    const double tplh = circuit::measureDelay(
        in, out, 0.0, vdd, false, v_lo, v_hi, true, t1 + t_edge);

    if (tphl < 0.0 || tplh < 0.0)
        return 1.0; // output never switched: huge penalty delay
    return 0.5 * (tphl + tplh);
}

SizingEvaluation
SizingOptimizer::evaluate(const CellSizing &sizing) const
{
    SizingEvaluation eval;
    eval.sizing = sizing;

    CellFactory factory(deviceParams, sizing, supply);
    BuiltCell inv = factory.inverter(InverterKind::PseudoE);
    eval.activeArea = inv.activeArea;

    VtcAnalyzer analyzer(config_.vtcPoints);
    eval.vtc = analyzer.analyze(inv);
    eval.gateDelay =
        measureInverterDelay(factory, 1.0, config_.transientDt);

    const UtilityWeights &w = config_.weights;
    const double vdd = supply.vdd;
    const double vm_err = std::abs(eval.vtc.vm - 0.5 * vdd) / vdd;
    const double nm = std::min(eval.vtc.nmh, eval.vtc.nml) / vdd;
    const double swing_loss =
        (std::max(vdd - eval.vtc.voh, 0.0) +
         std::max(eval.vtc.vol, 0.0)) / vdd;

    eval.utility = w.noiseMargin * nm - w.vmCentering * vm_err -
                   w.swing * swing_loss -
                   w.delay * eval.gateDelay / w.delayScale -
                   w.area * eval.activeArea / w.areaScale;
    return eval;
}

SizingEvaluation
SizingOptimizer::optimize(const CellSizing &start) const
{
    auto sizing_of = [&](const std::vector<double> &x) {
        CellSizing s = start;
        s.wShiftDrive = std::clamp(std::exp(x[0]), 10e-6, 3000e-6);
        s.wShiftLoad = std::clamp(std::exp(x[1]), 5e-6, 3000e-6);
        s.wDrive = std::clamp(std::exp(x[2]), 10e-6, 3000e-6);
        s.wLoad = std::clamp(std::exp(x[3]), 10e-6, 3000e-6);
        return s;
    };

    auto objective = [&](const std::vector<double> &x) {
        try {
            return -evaluate(sizing_of(x)).utility;
        } catch (const FatalError &) {
            // Non-convergent corner of the design space.
            return 1e6;
        }
    };

    NelderMeadOptions options;
    options.maxEvals = config_.maxEvals;
    options.initialScale = 0.4;
    const std::vector<double> x0 = {
        std::log(start.wShiftDrive), std::log(start.wShiftLoad),
        std::log(start.wDrive), std::log(start.wLoad)};
    const auto result = nelderMead(objective, x0, options);
    return evaluate(sizing_of(result.x));
}

} // namespace otft::cells
