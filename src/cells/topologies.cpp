#include "cells/topologies.hpp"

#include "device/pentacene.hpp"
#include "util/logging.hpp"

namespace otft::cells {

const char *
toString(InverterKind kind)
{
    switch (kind) {
      case InverterKind::DiodeLoad:
        return "diode-load";
      case InverterKind::BiasedLoad:
        return "biased-load";
      case InverterKind::PseudoE:
        return "pseudo-E";
    }
    return "?";
}

CellFactory::CellFactory()
    : CellFactory(device::Level61Params{}, CellSizing{}, SupplyConfig{})
{
}

device::TransistorModelPtr
CellFactory::makeDevice(double w) const
{
    device::Geometry g;
    g.w = w;
    g.l = sizing_.l;
    g.ci = device::pentacene::ci;
    return std::make_shared<device::Level61Model>(
        device::Polarity::PType, g, deviceParams);
}

void
CellFactory::account(BuiltCell &cell, double w) const
{
    cell.activeArea += w * sizing_.l;
    cell.cellArea = cell.activeArea * sizing_.routingFactor;
    ++cell.transistorCount;
}

namespace {

/**
 * Add a FET plus its quasi-static gate capacitances (Ci*W*L split
 * half to source, half to drain). The DC device model carries no
 * charge storage, so explicit capacitors provide the switching delays
 * that transient characterization measures.
 */
void
addFetWithCaps(circuit::Circuit &ckt,
               const device::TransistorModelPtr &model,
               circuit::NodeId drain, circuit::NodeId gate,
               circuit::NodeId source, const std::string &name)
{
    const double cg = model->geometry().gateCap();
    ckt.addFet(model, drain, gate, source, name);
    ckt.addCapacitor(gate, drain, 0.5 * cg);
    ckt.addCapacitor(gate, source, 0.5 * cg);
}

} // namespace

circuit::NodeId
CellFactory::addPseudoEGate(BuiltCell &cell,
                            const std::vector<circuit::NodeId> &ins,
                            bool series, circuit::NodeId vdd_node,
                            circuit::NodeId vss_node,
                            const std::string &label) const
{
    auto &ckt = cell.ckt;
    const circuit::NodeId x = ckt.addNode(label + ".x");
    const circuit::NodeId out = ckt.addNode(label + ".out");

    auto add_pullup_network = [&](circuit::NodeId target,
                                  const std::string &stage) {
        if (series) {
            // NOR-style: transistors in series from VDD to the target.
            circuit::NodeId prev = vdd_node;
            for (std::size_t i = 0; i < ins.size(); ++i) {
                const circuit::NodeId next =
                    i + 1 == ins.size()
                        ? target
                        : ckt.addNode(label + "." + stage + ".n" +
                                      std::to_string(i));
                addFetWithCaps(ckt, makeDevice(
                                   stage == "sh" ? sizing_.wShiftDrive
                                                 : sizing_.wDrive),
                               next, ins[i], prev,
                               label + "." + stage + std::to_string(i));
                prev = next;
            }
        } else {
            // NAND-style: transistors in parallel from VDD to target.
            for (std::size_t i = 0; i < ins.size(); ++i) {
                addFetWithCaps(ckt, makeDevice(
                                   stage == "sh" ? sizing_.wShiftDrive
                                                 : sizing_.wDrive),
                               target, ins[i], vdd_node,
                               label + "." + stage + std::to_string(i));
            }
        }
        for (std::size_t i = 0; i < ins.size(); ++i)
            account(cell, stage == "sh" ? sizing_.wShiftDrive
                                        : sizing_.wDrive);
    };

    // Level-shifter stage: pull-up network to X, diode load to VSS.
    add_pullup_network(x, "sh");
    addFetWithCaps(ckt, makeDevice(sizing_.wShiftLoad), vss_node,
                   vss_node, x, label + ".shload");
    account(cell, sizing_.wShiftLoad);

    // Output stage: pull-up network to OUT, load to GND gated by X.
    add_pullup_network(out, "dr");
    addFetWithCaps(ckt, makeDevice(sizing_.wLoad), circuit::Circuit::ground,
                   x, out, label + ".load");
    account(cell, sizing_.wLoad);

    return out;
}

BuiltCell
CellFactory::inverter(InverterKind kind, double load_cap) const
{
    BuiltCell cell;
    cell.supply = supply_;
    cell.name = std::string("inv_") + toString(kind);
    auto &ckt = cell.ckt;

    const circuit::NodeId vdd = ckt.addNode("vdd");
    cell.vddSource = ckt.addVoltageSource(vdd, circuit::Circuit::ground,
                                          supply_.vdd);
    const circuit::NodeId in = ckt.addNode("in");
    cell.inputs.push_back(in);
    cell.inputSources.push_back(
        ckt.addVoltageSource(in, circuit::Circuit::ground, 0.0));

    circuit::NodeId vss = circuit::Circuit::ground;
    if (kind != InverterKind::DiodeLoad) {
        vss = ckt.addNode("vss");
        cell.vssSource = ckt.addVoltageSource(
            vss, circuit::Circuit::ground, supply_.vss);
    }

    switch (kind) {
      case InverterKind::DiodeLoad: {
        const circuit::NodeId out = ckt.addNode("out");
        addFetWithCaps(ckt, makeDevice(sizing_.wDrive), out, in, vdd,
                       "drive");
        account(cell, sizing_.wDrive);
        // Diode-connected load: gate tied to drain at ground.
        addFetWithCaps(ckt, makeDevice(sizing_.wLoad),
                       circuit::Circuit::ground, circuit::Circuit::ground,
                       out, "load");
        account(cell, sizing_.wLoad);
        cell.out = out;
        break;
      }
      case InverterKind::BiasedLoad: {
        const circuit::NodeId out = ckt.addNode("out");
        addFetWithCaps(ckt, makeDevice(sizing_.wDrive), out, in, vdd,
                       "drive");
        account(cell, sizing_.wDrive);
        // Load gate tied to the negative bias rail.
        addFetWithCaps(ckt, makeDevice(sizing_.wLoad),
                       circuit::Circuit::ground, vss, out, "load");
        account(cell, sizing_.wLoad);
        cell.out = out;
        break;
      }
      case InverterKind::PseudoE: {
        cell.out = addPseudoEGate(cell, {in}, false, vdd, vss, "inv");
        break;
      }
    }

    if (load_cap > 0.0)
        ckt.addCapacitor(cell.out, circuit::Circuit::ground, load_cap);
    return cell;
}

BuiltCell
CellFactory::nand(int fan_in, double load_cap) const
{
    if (fan_in != 2 && fan_in != 3)
        fatal("CellFactory::nand: fan-in must be 2 or 3, got ", fan_in);

    BuiltCell cell;
    cell.supply = supply_;
    cell.name = "nand" + std::to_string(fan_in);
    auto &ckt = cell.ckt;

    const circuit::NodeId vdd = ckt.addNode("vdd");
    cell.vddSource = ckt.addVoltageSource(vdd, circuit::Circuit::ground,
                                          supply_.vdd);
    const circuit::NodeId vss = ckt.addNode("vss");
    cell.vssSource =
        ckt.addVoltageSource(vss, circuit::Circuit::ground, supply_.vss);

    std::vector<circuit::NodeId> ins;
    for (int i = 0; i < fan_in; ++i) {
        const circuit::NodeId n =
            ckt.addNode(std::string(1, static_cast<char>('a' + i)));
        ins.push_back(n);
        cell.inputs.push_back(n);
        cell.inputSources.push_back(
            ckt.addVoltageSource(n, circuit::Circuit::ground, 0.0));
    }

    cell.out = addPseudoEGate(cell, ins, false, vdd, vss, cell.name);
    if (load_cap > 0.0)
        ckt.addCapacitor(cell.out, circuit::Circuit::ground, load_cap);
    return cell;
}

BuiltCell
CellFactory::nor(int fan_in, double load_cap) const
{
    if (fan_in != 2 && fan_in != 3)
        fatal("CellFactory::nor: fan-in must be 2 or 3, got ", fan_in);

    BuiltCell cell;
    cell.supply = supply_;
    cell.name = "nor" + std::to_string(fan_in);
    auto &ckt = cell.ckt;

    const circuit::NodeId vdd = ckt.addNode("vdd");
    cell.vddSource = ckt.addVoltageSource(vdd, circuit::Circuit::ground,
                                          supply_.vdd);
    const circuit::NodeId vss = ckt.addNode("vss");
    cell.vssSource =
        ckt.addVoltageSource(vss, circuit::Circuit::ground, supply_.vss);

    std::vector<circuit::NodeId> ins;
    for (int i = 0; i < fan_in; ++i) {
        const circuit::NodeId n =
            ckt.addNode(std::string(1, static_cast<char>('a' + i)));
        ins.push_back(n);
        cell.inputs.push_back(n);
        cell.inputSources.push_back(
            ckt.addVoltageSource(n, circuit::Circuit::ground, 0.0));
    }

    cell.out = addPseudoEGate(cell, ins, true, vdd, vss, cell.name);
    if (load_cap > 0.0)
        ckt.addCapacitor(cell.out, circuit::Circuit::ground, load_cap);
    return cell;
}

BuiltCell
CellFactory::dff(double load_cap) const
{
    BuiltCell cell;
    cell.supply = supply_;
    cell.name = "dff";
    auto &ckt = cell.ckt;

    const circuit::NodeId vdd = ckt.addNode("vdd");
    cell.vddSource = ckt.addVoltageSource(vdd, circuit::Circuit::ground,
                                          supply_.vdd);
    const circuit::NodeId vss = ckt.addNode("vss");
    cell.vssSource =
        ckt.addVoltageSource(vss, circuit::Circuit::ground, supply_.vss);

    // Pins: D, CK, PREbar, CLRbar.
    std::vector<circuit::NodeId> pins;
    for (const char *pin : {"d", "ck", "preb", "clrb"}) {
        const circuit::NodeId n = ckt.addNode(pin);
        pins.push_back(n);
        cell.inputs.push_back(n);
        cell.inputSources.push_back(
            ckt.addVoltageSource(n, circuit::Circuit::ground, 0.0));
    }
    const circuit::NodeId d = pins[0], ck = pins[1], preb = pins[2],
                          clrb = pins[3];

    // Classic 7474 six-NAND positive-edge DFF with async preset/clear.
    // The cross-coupled gates require forward references, so the gate
    // output nodes cannot be created by addPseudoEGate; instead we
    // build each gate onto pre-created output nodes via a small local
    // variant that wires the output stage to an existing node.
    auto add_gate_to = [&](const std::vector<circuit::NodeId> &ins,
                           circuit::NodeId out, const std::string &label) {
        const circuit::NodeId x = ckt.addNode(label + ".x");
        for (std::size_t i = 0; i < ins.size(); ++i) {
            addFetWithCaps(ckt, makeDevice(sizing_.wShiftDrive), x,
                           ins[i], vdd, label + ".sh" + std::to_string(i));
            account(cell, sizing_.wShiftDrive);
            addFetWithCaps(ckt, makeDevice(sizing_.wDrive), out, ins[i],
                           vdd, label + ".dr" + std::to_string(i));
            account(cell, sizing_.wDrive);
        }
        addFetWithCaps(ckt, makeDevice(sizing_.wShiftLoad), vss, vss, x,
                       label + ".shload");
        account(cell, sizing_.wShiftLoad);
        addFetWithCaps(ckt, makeDevice(sizing_.wLoad),
                       circuit::Circuit::ground, x, out, label + ".load");
        account(cell, sizing_.wLoad);
    };

    const circuit::NodeId n1 = ckt.addNode("n1");
    const circuit::NodeId n2 = ckt.addNode("n2");
    const circuit::NodeId n3 = ckt.addNode("n3");
    const circuit::NodeId n4 = ckt.addNode("n4");
    const circuit::NodeId q = ckt.addNode("q");
    const circuit::NodeId qb = ckt.addNode("qb");

    add_gate_to({preb, n4, n2}, n1, "g1");
    add_gate_to({n1, clrb, ck}, n2, "g2");
    add_gate_to({n2, ck, n4}, n3, "g3");
    add_gate_to({n3, clrb, d}, n4, "g4");
    add_gate_to({preb, n2, qb}, q, "g5");
    add_gate_to({q, n3, clrb}, qb, "g6");

    cell.out = q;
    cell.outBar = qb;
    if (load_cap > 0.0) {
        ckt.addCapacitor(q, circuit::Circuit::ground, load_cap);
        ckt.addCapacitor(qb, circuit::Circuit::ground, load_cap);
    }
    return cell;
}

BuiltCell
CellFactory::dynamicGate(int fan_in, double load_cap) const
{
    if (fan_in < 1 || fan_in > 3)
        fatal("CellFactory::dynamicGate: fan-in must be 1..3, got ",
              fan_in);

    BuiltCell cell;
    cell.supply = supply_;
    cell.name = "dyn" + std::to_string(fan_in);
    auto &ckt = cell.ckt;

    const circuit::NodeId vdd = ckt.addNode("vdd");
    cell.vddSource = ckt.addVoltageSource(vdd, circuit::Circuit::ground,
                                          supply_.vdd);

    const circuit::NodeId out = ckt.addNode("out");

    // Evaluate network: parallel drive devices, VDD -> OUT.
    for (int i = 0; i < fan_in; ++i) {
        const circuit::NodeId in =
            ckt.addNode(std::string(1, static_cast<char>('a' + i)));
        cell.inputs.push_back(in);
        cell.inputSources.push_back(ckt.addVoltageSource(
            in, circuit::Circuit::ground, supply_.vdd));
        addFetWithCaps(ckt, makeDevice(sizing_.wDrive), out, in, vdd,
                       "eval" + std::to_string(i));
        account(cell, sizing_.wDrive);
    }

    // Clocked precharge device: discharges OUT to ground when the
    // clock swings below ground.
    const circuit::NodeId clk = ckt.addNode("clkb");
    cell.inputs.push_back(clk);
    cell.inputSources.push_back(
        ckt.addVoltageSource(clk, circuit::Circuit::ground,
                             supply_.vdd));
    addFetWithCaps(ckt, makeDevice(sizing_.wLoad),
                   circuit::Circuit::ground, clk, out, "precharge");
    account(cell, sizing_.wLoad);

    cell.out = out;
    if (load_cap > 0.0)
        ckt.addCapacitor(out, circuit::Circuit::ground, load_cap);
    return cell;
}

double
CellFactory::inputCap() const
{
    // A pseudo-E input pin drives one shifter gate and one output-stage
    // gate.
    return (sizing_.wShiftDrive + sizing_.wDrive) * sizing_.l *
           device::pentacene::ci;
}

} // namespace otft::cells
