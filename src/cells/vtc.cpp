#include "cells/vtc.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/dc.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace otft::cells {

namespace {

/**
 * Maximum-equal-criterion noise margins: the side of the largest
 * square inscribed in each lobe between the VTC f and its mirror
 * f^-1 (reflection about VOUT = VIN). Assumes a monotonically
 * decreasing VTC, which all cells in this library have.
 */
void
mecNoiseMargins(const std::vector<double> &vin,
                const std::vector<double> &vout, double vm, double &nmh,
                double &nml)
{
    // f(x): the VTC. f_inv(y): input producing output y.
    auto f = [&](double x) { return interpolate(vin, vout, x); };

    // Build the inverse from the (decreasing) vout samples.
    std::vector<double> y_asc(vout.rbegin(), vout.rend());
    std::vector<double> x_of_y(vin.rbegin(), vin.rend());
    auto f_inv = [&](double y) { return interpolate(y_asc, x_of_y, y); };

    const double lo = vin.front();
    const double hi = vin.back();
    const double span = hi - lo;

    // High lobe (x < vm): upper curve f, lower curve f_inv. A square
    // anchored at (x, f_inv(x)) with side s fits iff
    // f_inv(x) + s <= f(x + s).
    auto max_side_high = [&](double x) {
        double s_lo = 0.0, s_hi = span;
        for (int it = 0; it < 40; ++it) {
            const double s = 0.5 * (s_lo + s_hi);
            if (f_inv(x) + s <= f(x + s))
                s_lo = s;
            else
                s_hi = s;
        }
        return s_lo;
    };
    // Low lobe (x > vm): upper curve f_inv, lower curve f. A square
    // anchored at (x, f(x)) with side s fits iff f(x) + s <= f_inv(x+s).
    auto max_side_low = [&](double x) {
        double s_lo = 0.0, s_hi = span;
        for (int it = 0; it < 40; ++it) {
            const double s = 0.5 * (s_lo + s_hi);
            if (f(x) + s <= f_inv(x + s))
                s_lo = s;
            else
                s_hi = s;
        }
        return s_lo;
    };

    nmh = 0.0;
    nml = 0.0;
    const int anchors = 200;
    for (int i = 0; i < anchors; ++i) {
        const double x =
            lo + span * static_cast<double>(i) / (anchors - 1);
        if (x < vm)
            nmh = std::max(nmh, max_side_high(x));
        else
            nml = std::max(nml, max_side_low(x));
    }
}

/** Classical gain = -1 criterion noise margins. */
void
gainNoiseMargins(const std::vector<double> &vin,
                 const std::vector<double> &vout, double &nmh,
                 double &nml)
{
    const auto g = gradient(vin, vout);
    // Find first and last crossings of gain through -1.
    double vil = -1.0, vih = -1.0;
    for (std::size_t i = 0; i + 1 < g.size(); ++i) {
        const bool crosses = (g[i] > -1.0 && g[i + 1] <= -1.0) ||
                             (g[i] <= -1.0 && g[i + 1] > -1.0);
        if (!crosses)
            continue;
        const double t = (g[i] + 1.0) / (g[i] - g[i + 1]);
        const double x = vin[i] + t * (vin[i + 1] - vin[i]);
        if (vil < 0.0)
            vil = x;
        else
            vih = x;
    }
    if (vil < 0.0) {
        // Gain never reaches -1: no regenerative region at all.
        nmh = 0.0;
        nml = 0.0;
        return;
    }
    if (vih < 0.0)
        vih = vil;
    const double voh_prime = interpolate(vin, vout, vil);
    const double vol_prime = interpolate(vin, vout, vih);
    nmh = voh_prime - vih;
    nml = vil - vol_prime;
    nmh = std::max(nmh, 0.0);
    nml = std::max(nml, 0.0);
}

} // namespace

VtcResult
VtcAnalyzer::analyze(BuiltCell &cell, double other_inputs) const
{
    if (points < 32)
        fatal("VtcAnalyzer: needs >= 32 sweep points");
    if (cell.inputs.empty())
        fatal("VtcAnalyzer: cell has no inputs");

    // Hold secondary inputs at the sensitizing level.
    for (std::size_t i = 1; i < cell.inputSources.size(); ++i)
        cell.ckt.setSourceWave(cell.inputSources[i],
                               circuit::Pwl::constant(other_inputs));

    circuit::DcAnalysis dc(cell.ckt);
    const auto sweep = dc.sweepSource(
        cell.inputSources[0], linspace(0.0, cell.supply.vdd, points));

    VtcResult r;
    r.vin = sweep.values;
    r.vout.reserve(points);
    r.idd.reserve(points);
    for (const auto &sol : sweep.solutions) {
        r.vout.push_back(dc.nodeVoltage(sol, cell.out));
        r.idd.push_back(std::abs(dc.sourceCurrent(sol, cell.vddSource)));
    }

    r.voh = r.vout.front();
    r.vol = r.vout.back();

    const auto vm_crossings = findCrossings(
        r.vin,
        [&] {
            std::vector<double> diff(points);
            for (std::size_t i = 0; i < points; ++i)
                diff[i] = r.vout[i] - r.vin[i];
            return diff;
        }(),
        0.0);
    r.vm = vm_crossings.empty() ? 0.0 : vm_crossings.front();

    const auto g = gradient(r.vin, r.vout);
    for (double v : g)
        r.maxGain = std::max(r.maxGain, std::abs(v));

    mecNoiseMargins(r.vin, r.vout, r.vm, r.nmh, r.nml);
    gainNoiseMargins(r.vin, r.vout, r.nmhGain, r.nmlGain);

    // Static power at the two input levels: total power delivered by
    // the supply rails (the input source drives only gates and draws
    // no DC current in this technology model).
    r.staticPowerLow = dc.totalSourcePower(sweep.solutions.front());
    r.staticPowerHigh = dc.totalSourcePower(sweep.solutions.back());

    return r;
}

} // namespace otft::cells
