/**
 * @file
 * Circuit netlist for the SPICE-like simulator.
 *
 * A circuit is a set of named nodes connected by linear elements
 * (resistors, capacitors, independent sources) and nonlinear
 * transistors evaluated through device::TransistorModel. Node 0 is
 * ground. Voltage sources carry a branch-current unknown (modified
 * nodal analysis).
 */

#ifndef OTFT_CIRCUIT_CIRCUIT_HPP
#define OTFT_CIRCUIT_CIRCUIT_HPP

#include <string>
#include <vector>

#include "circuit/waveform.hpp"
#include "device/transistor_model.hpp"

namespace otft::circuit {

/** Node handle; 0 is ground. */
using NodeId = int;

/** Handle to a voltage source (for current readback / waveform edit). */
using SourceId = int;

/** A two-terminal resistor. */
struct Resistor
{
    NodeId a = 0;
    NodeId b = 0;
    double resistance = 0.0;
};

/** A two-terminal capacitor. */
struct Capacitor
{
    NodeId a = 0;
    NodeId b = 0;
    double capacitance = 0.0;
};

/** An independent voltage source with a time-domain waveform. */
struct VoltageSource
{
    NodeId pos = 0;
    NodeId neg = 0;
    Pwl wave = Pwl::constant(0.0);
};

/** An independent DC current source (flows pos -> neg externally). */
struct CurrentSource
{
    NodeId pos = 0;
    NodeId neg = 0;
    double current = 0.0;
};

/** A FET instance bound to a device model. */
struct Fet
{
    device::TransistorModelPtr model;
    NodeId drain = 0;
    NodeId gate = 0;
    NodeId source = 0;
    std::string name;
};

/** The netlist. */
class Circuit
{
  public:
    Circuit();

    /** Create a named node. Names are for diagnostics only. */
    NodeId addNode(const std::string &name);

    /** The ground node. */
    static constexpr NodeId ground = 0;

    void addResistor(NodeId a, NodeId b, double ohms);
    void addCapacitor(NodeId a, NodeId b, double farads);
    SourceId addVoltageSource(NodeId pos, NodeId neg, Pwl wave);
    SourceId addVoltageSource(NodeId pos, NodeId neg, double volts);
    void addCurrentSource(NodeId pos, NodeId neg, double amps);
    void addFet(device::TransistorModelPtr model, NodeId drain,
                NodeId gate, NodeId source, std::string name = "");

    /** Replace the waveform of an existing voltage source. */
    void setSourceWave(SourceId id, Pwl wave);

    /** Number of nodes including ground. */
    std::size_t numNodes() const { return nodeNames.size(); }

    /** Name of a node (diagnostics). */
    const std::string &nodeName(NodeId node) const;

    const std::vector<Resistor> &resistors() const { return resistors_; }
    const std::vector<Capacitor> &capacitors() const { return capacitors_; }
    const std::vector<VoltageSource> &
    voltageSources() const
    {
        return vsources_;
    }
    const std::vector<CurrentSource> &
    currentSources() const
    {
        return isources_;
    }
    const std::vector<Fet> &fets() const { return fets_; }

  private:
    void checkNode(NodeId node) const;

    std::vector<std::string> nodeNames;
    std::vector<Resistor> resistors_;
    std::vector<Capacitor> capacitors_;
    std::vector<VoltageSource> vsources_;
    std::vector<CurrentSource> isources_;
    std::vector<Fet> fets_;
};

} // namespace otft::circuit

#endif // OTFT_CIRCUIT_CIRCUIT_HPP
