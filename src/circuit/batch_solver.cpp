#include "circuit/batch_solver.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/profiler.hpp"
#include "util/stats_registry.hpp"

namespace otft::circuit {

namespace {

stats::Counter &
statFactorLanes()
{
    static stats::Counter &c = stats::counter(
        "circuit.batch.lu.factor_lanes",
        "lane factorizations performed by the batched LU");
    return c;
}

stats::Counter &
statSingularLanes()
{
    static stats::Counter &c = stats::counter(
        "circuit.batch.lu.singular_lanes",
        "batched LU lanes that hit a near-zero pivot");
    return c;
}

stats::Counter &
statSolveLanes()
{
    static stats::Counter &c = stats::counter(
        "circuit.batch.lu.solve_lanes",
        "lane triangular solves against stored batched factors");
    return c;
}

} // namespace

BatchedLu::BatchedLu(std::size_t n, std::size_t lanes)
    : n_(n), lanes_(lanes), lu_(n * n * lanes, 0.0),
      perm_(n * lanes, 0), valid_(lanes, 0), pb_(n * lanes, 0.0)
{
    // Identity permutations so stale lanes stay in-bounds when the
    // full-width solve sweeps over them.
    for (std::size_t i = 0; i < n_; ++i)
        for (std::size_t l = 0; l < lanes_; ++l)
            perm_[i * lanes_ + l] = i;
}

void
BatchedLu::factor(const BatchedMatrix &a,
                  const std::vector<std::size_t> &lane_list,
                  std::vector<std::uint8_t> &ok)
{
    assert(a.size() == n_ && a.lanes() == lanes_);
    if (lane_list.empty())
        return;
    statFactorLanes() += lane_list.size();

    // Copy only the listed lanes: unlisted lanes keep their previous
    // factors (frozen chord Jacobians interleave in the same buffer).
    const double *src = a.raw();
    for (std::size_t idx = 0; idx < n_ * n_; ++idx) {
        const double *from = src + idx * lanes_;
        double *to = lu_.data() + idx * lanes_;
        for (const std::size_t lane : lane_list)
            to[lane] = from[lane];
    }
    for (std::size_t i = 0; i < n_; ++i)
        for (const std::size_t lane : lane_list)
            perm_[i * lanes_ + lane] = i;

    // Lanes still being eliminated; a near-zero pivot drops a lane
    // out without disturbing the others.
    std::vector<std::uint8_t> live(lanes_, 0);
    for (const std::size_t lane : lane_list) {
        live[lane] = 1;
        valid_[lane] = 0;
    }
    std::vector<double> inv(lanes_, 0.0);
    std::vector<double> f(lanes_, 0.0);

    const auto lu_at = [&](std::size_t r, std::size_t c,
                           std::size_t lane) -> double & {
        return lu_[(r * n_ + c) * lanes_ + lane];
    };

    for (std::size_t k = 0; k < n_; ++k) {
        // Per-lane partial pivot: identical selection rule (strictly
        // greater magnitude) and row-swap as the scalar LuFactors.
        for (const std::size_t lane : lane_list) {
            if (!live[lane])
                continue;
            std::size_t pivot = k;
            double best = std::abs(lu_at(k, k, lane));
            for (std::size_t r = k + 1; r < n_; ++r) {
                const double v = std::abs(lu_at(r, k, lane));
                if (v > best) {
                    best = v;
                    pivot = r;
                }
            }
            if (best < 1e-30) {
                ++statSingularLanes();
                live[lane] = 0;
                ok[lane] = 0;
                continue;
            }
            if (pivot != k) {
                for (std::size_t c = 0; c < n_; ++c)
                    std::swap(lu_at(k, c, lane),
                              lu_at(pivot, c, lane));
                std::swap(perm_[k * lanes_ + lane],
                          perm_[pivot * lanes_ + lane]);
            }
            inv[lane] = 1.0 / lu_at(k, k, lane);
        }

        // Lockstep elimination, lane-inner over the contiguous lane
        // dimension (this is the SIMD hot loop).
        for (std::size_t r = k + 1; r < n_; ++r) {
            for (const std::size_t lane : lane_list) {
                if (!live[lane])
                    continue;
                const double factor = lu_at(r, k, lane) * inv[lane];
                // Store the multiplier in the eliminated position so
                // solve() can replay the elimination on any RHS.
                lu_at(r, k, lane) = factor;
                f[lane] = factor;
            }
            for (std::size_t c = k + 1; c < n_; ++c) {
                const double *row_k = &lu_[(k * n_ + c) * lanes_];
                double *row_r = &lu_[(r * n_ + c) * lanes_];
                for (const std::size_t lane : lane_list) {
                    if (!live[lane] || f[lane] == 0.0)
                        continue;
                    row_r[lane] -= f[lane] * row_k[lane];
                }
            }
        }
    }

    for (const std::size_t lane : lane_list) {
        if (live[lane]) {
            valid_[lane] = 1;
            ok[lane] = 1;
        }
    }
}

void
BatchedLu::solve(double *b,
                 const std::vector<std::size_t> &lane_list) const
{
    if (lane_list.empty())
        return;
    statSolveLanes() += lane_list.size();

    const auto lu_at = [&](std::size_t r, std::size_t c,
                           std::size_t lane) {
        return lu_[(r * n_ + c) * lanes_ + lane];
    };

    // Apply each lane's row permutation into the retained scratch.
    for (std::size_t i = 0; i < n_; ++i)
        for (const std::size_t lane : lane_list)
            pb_[i * lanes_ + lane] =
                b[perm_[i * lanes_ + lane] * lanes_ + lane];

    // Forward substitution with the unit-lower factor.
    for (std::size_t i = 1; i < n_; ++i) {
        for (const std::size_t lane : lane_list) {
            double s = pb_[i * lanes_ + lane];
            for (std::size_t c = 0; c < i; ++c)
                s -= lu_at(i, c, lane) * pb_[c * lanes_ + lane];
            pb_[i * lanes_ + lane] = s;
        }
    }
    // Back substitution with the upper factor.
    for (std::size_t i = n_; i-- > 0;) {
        for (const std::size_t lane : lane_list) {
            double s = pb_[i * lanes_ + lane];
            for (std::size_t c = i + 1; c < n_; ++c)
                s -= lu_at(i, c, lane) * pb_[c * lanes_ + lane];
            pb_[i * lanes_ + lane] = s / lu_at(i, i, lane);
        }
    }
    for (std::size_t i = 0; i < n_; ++i)
        for (const std::size_t lane : lane_list)
            b[i * lanes_ + lane] = pb_[i * lanes_ + lane];
}

bool
batchCompatible(const Circuit &a, const Circuit &b)
{
    if (a.numNodes() != b.numNodes())
        return false;
    if (a.resistors().size() != b.resistors().size() ||
        a.capacitors().size() != b.capacitors().size() ||
        a.voltageSources().size() != b.voltageSources().size() ||
        a.currentSources().size() != b.currentSources().size() ||
        a.fets().size() != b.fets().size())
        return false;
    for (std::size_t i = 0; i < a.resistors().size(); ++i)
        if (a.resistors()[i].a != b.resistors()[i].a ||
            a.resistors()[i].b != b.resistors()[i].b)
            return false;
    for (std::size_t i = 0; i < a.capacitors().size(); ++i)
        if (a.capacitors()[i].a != b.capacitors()[i].a ||
            a.capacitors()[i].b != b.capacitors()[i].b)
            return false;
    for (std::size_t i = 0; i < a.voltageSources().size(); ++i)
        if (a.voltageSources()[i].pos != b.voltageSources()[i].pos ||
            a.voltageSources()[i].neg != b.voltageSources()[i].neg)
            return false;
    for (std::size_t i = 0; i < a.currentSources().size(); ++i)
        if (a.currentSources()[i].pos != b.currentSources()[i].pos ||
            a.currentSources()[i].neg != b.currentSources()[i].neg)
            return false;
    for (std::size_t i = 0; i < a.fets().size(); ++i)
        if (a.fets()[i].drain != b.fets()[i].drain ||
            a.fets()[i].gate != b.fets()[i].gate ||
            a.fets()[i].source != b.fets()[i].source)
            return false;
    return true;
}

BatchedMna::BatchedMna(std::vector<const Circuit *> lane_circuits,
                       NewtonConfig config)
    : circuits_(std::move(lane_circuits)), cfg_(config),
      lanes_(circuits_.size()),
      numNodeUnknowns_(lanes_ ? circuits_[0]->numNodes() - 1 : 0),
      unknowns_(lanes_ ? numNodeUnknowns_ +
                             circuits_[0]->voltageSources().size()
                       : 0),
      pattern_(lanes_ ? stampPattern(*circuits_[0])
                      : std::vector<std::uint32_t>{}),
      jac_(unknowns_, lanes_), lu_(unknowns_, lanes_),
      luOk_(lanes_, 0)
{
    if (lanes_ == 0)
        fatal("BatchedMna: no lanes");
    const Circuit &ref = *circuits_[0];
    for (std::size_t l = 1; l < lanes_; ++l)
        if (!batchCompatible(ref, *circuits_[l]))
            fatal("BatchedMna: lane ", l,
                  " has a different topology than lane 0");

    // Element values as lane-major SoA. Conductances are derived with
    // the same division as the scalar stamp, so the bits match.
    const std::size_t n_res = ref.resistors().size();
    const std::size_t n_cap = ref.capacitors().size();
    const std::size_t n_isrc = ref.currentSources().size();
    const std::size_t n_vs = ref.voltageSources().size();
    const std::size_t n_fet = ref.fets().size();
    resG_.resize(n_res * lanes_);
    capC_.resize(n_cap * lanes_);
    srcI_.resize(n_isrc * lanes_);
    vsWave_.resize(n_vs * lanes_);
    fetModel_.resize(n_fet * lanes_);
    fetUniform_.assign(n_fet, 1);
    for (std::size_t l = 0; l < lanes_; ++l) {
        const Circuit &c = *circuits_[l];
        for (std::size_t i = 0; i < n_res; ++i)
            resG_[i * lanes_ + l] = 1.0 / c.resistors()[i].resistance;
        for (std::size_t i = 0; i < n_cap; ++i)
            capC_[i * lanes_ + l] = c.capacitors()[i].capacitance;
        for (std::size_t i = 0; i < n_isrc; ++i)
            srcI_[i * lanes_ + l] = c.currentSources()[i].current;
        for (std::size_t i = 0; i < n_vs; ++i)
            vsWave_[i * lanes_ + l] = &c.voltageSources()[i].wave;
        for (std::size_t i = 0; i < n_fet; ++i) {
            fetModel_[i * lanes_ + l] = c.fets()[i].model.get();
            if (fetModel_[i * lanes_ + l] != fetModel_[i * lanes_])
                fetUniform_[i] = 0;
        }
    }

    x_.assign(unknowns_ * lanes_, 0.0);
    xPrev_.assign(unknowns_ * lanes_, 0.0);
    residual_.assign(unknowns_ * lanes_, 0.0);
    delta_.assign(unknowns_ * lanes_, 0.0);
    time_.assign(lanes_, 0.0);
    scale_.assign(lanes_, 1.0);
    dt_.assign(lanes_, 0.0);
    packVgs_.resize(lanes_);
    packVds_.resize(lanes_);
    packId_.resize(lanes_);
    packGm_.resize(lanes_);
    packGds_.resize(lanes_);
    packLane_.reserve(lanes_);
}

void
BatchedMna::setLaneX(std::size_t lane, const Solution &x)
{
    if (x.size() != unknowns_)
        fatal("BatchedMna::setLaneX: bad solution vector size");
    for (std::size_t i = 0; i < unknowns_; ++i)
        x_[i * lanes_ + lane] = x[i];
}

void
BatchedMna::getLaneX(std::size_t lane, Solution &x) const
{
    x.resize(unknowns_);
    for (std::size_t i = 0; i < unknowns_; ++i)
        x[i] = x_[i * lanes_ + lane];
}

void
BatchedMna::setLaneXPrev(std::size_t lane, const Solution &x_prev)
{
    if (x_prev.size() != unknowns_)
        fatal("BatchedMna::setLaneXPrev: bad state vector size");
    for (std::size_t i = 0; i < unknowns_; ++i)
        xPrev_[i * lanes_ + lane] = x_prev[i];
}

void
BatchedMna::setLaneStep(std::size_t lane, double time,
                        double source_scale, double dt)
{
    time_[lane] = time;
    scale_[lane] = source_scale;
    dt_[lane] = dt;
}

/**
 * Batched residual/Jacobian assembly. Element-outer, lane-inner: for
 * every lane the element visitation order — and therefore every
 * floating-point accumulation order — is exactly Mna::assemble()'s.
 * `res_lanes` get a fresh residual; the subset `jac_lanes`
 * additionally gets Jacobian stamps (chord lanes skip the gm/gds
 * finite differences entirely, as in the scalar engine).
 */
void
BatchedMna::assembleBatch(const std::vector<std::size_t> &res_lanes,
                          const std::vector<std::size_t> &jac_lanes)
{
    jac_.zeroEntries(pattern_, jac_lanes);
    for (std::size_t i = 0; i < unknowns_; ++i)
        for (const std::size_t lane : res_lanes)
            residual_[i * lanes_ + lane] = 0.0;

    std::vector<std::uint8_t> jac_mask(lanes_, 0);
    for (const std::size_t lane : jac_lanes)
        jac_mask[lane] = 1;

    const Circuit &ref = *circuits_[0];
    const auto index = [](NodeId node) { return node - 1; };

    // Conductance stamp between two nodes, one lane.
    const auto stamp_g = [&](int ia, int ib, double g,
                             double i_extra_a, double v,
                             std::size_t lane) {
        const double i = g * v + i_extra_a;
        const bool want_jac = jac_mask[lane] != 0;
        if (ia >= 0) {
            residual_[std::size_t(ia) * lanes_ + lane] += i;
            if (want_jac) {
                jac_.at(ia, ia, lane) += g;
                if (ib >= 0)
                    jac_.at(ia, ib, lane) -= g;
            }
        }
        if (ib >= 0) {
            residual_[std::size_t(ib) * lanes_ + lane] -= i;
            if (want_jac) {
                jac_.at(ib, ib, lane) += g;
                if (ia >= 0)
                    jac_.at(ib, ia, lane) -= g;
            }
        }
    };

    // gmin from every non-ground node to ground.
    for (std::size_t n = 0; n < numNodeUnknowns_; ++n) {
        for (const std::size_t lane : jac_lanes)
            jac_.at(n, n, lane) += cfg_.gmin;
        for (const std::size_t lane : res_lanes)
            residual_[n * lanes_ + lane] +=
                cfg_.gmin * x_[n * lanes_ + lane];
    }

    const auto &resistors = ref.resistors();
    for (std::size_t e = 0; e < resistors.size(); ++e) {
        const int ia = index(resistors[e].a);
        const int ib = index(resistors[e].b);
        for (const std::size_t lane : res_lanes) {
            const double v = volt(resistors[e].a, lane) -
                             volt(resistors[e].b, lane);
            stamp_g(ia, ib, resG_[e * lanes_ + lane], 0.0, v, lane);
        }
    }

    const auto &capacitors = ref.capacitors();
    for (std::size_t e = 0; e < capacitors.size(); ++e) {
        const int ia = index(capacitors[e].a);
        const int ib = index(capacitors[e].b);
        for (const std::size_t lane : res_lanes) {
            if (dt_[lane] <= 0.0)
                continue; // DC lane: no companion stamps.
            // Backward-Euler companion: i = (C/dt) * (v - v_prev).
            const double g = capC_[e * lanes_ + lane] / dt_[lane];
            const double vp = voltPrev(capacitors[e].a, lane) -
                              voltPrev(capacitors[e].b, lane);
            const double v = volt(capacitors[e].a, lane) -
                             volt(capacitors[e].b, lane);
            stamp_g(ia, ib, g, -g * vp, v, lane);
        }
    }

    const auto &isources = ref.currentSources();
    for (std::size_t e = 0; e < isources.size(); ++e) {
        const int ip = index(isources[e].pos);
        const int in = index(isources[e].neg);
        for (const std::size_t lane : res_lanes) {
            const double i = srcI_[e * lanes_ + lane] * scale_[lane];
            if (ip >= 0)
                residual_[std::size_t(ip) * lanes_ + lane] -= i;
            if (in >= 0)
                residual_[std::size_t(in) * lanes_ + lane] += i;
        }
    }

    const auto &vsources = ref.voltageSources();
    for (std::size_t k = 0; k < vsources.size(); ++k) {
        const std::size_t row = numNodeUnknowns_ + k;
        const int ip = index(vsources[k].pos);
        const int in = index(vsources[k].neg);
        for (const std::size_t lane : res_lanes) {
            const double i_branch = x_[row * lanes_ + lane];
            const bool want_jac = jac_mask[lane] != 0;
            if (ip >= 0) {
                residual_[std::size_t(ip) * lanes_ + lane] -= i_branch;
                if (want_jac) {
                    jac_.at(ip, row, lane) -= 1.0;
                    jac_.at(row, ip, lane) += 1.0;
                }
            }
            if (in >= 0) {
                residual_[std::size_t(in) * lanes_ + lane] += i_branch;
                if (want_jac) {
                    jac_.at(in, row, lane) += 1.0;
                    jac_.at(row, in, lane) -= 1.0;
                }
            }
            residual_[row * lanes_ + lane] =
                volt(vsources[k].pos, lane) -
                volt(vsources[k].neg, lane) -
                vsWave_[k * lanes_ + lane]->at(time_[lane]) *
                    scale_[lane];
        }
    }

    const auto &fets = ref.fets();
    for (std::size_t e = 0; e < fets.size(); ++e) {
        const int idx_d = index(fets[e].drain);
        const int idx_g = index(fets[e].gate);
        const int idx_s = index(fets[e].source);

        // Gather terminal voltages, then one fused dispatch for the
        // jac lanes (id + gm + gds) and one for the chord remainder
        // (id only) — replacing three virtual calls per lane.
        packLane_.clear();
        for (const std::size_t lane : res_lanes) {
            packVgs_[packLane_.size()] =
                volt(fets[e].gate, lane) - volt(fets[e].source, lane);
            packVds_[packLane_.size()] =
                volt(fets[e].drain, lane) - volt(fets[e].source, lane);
            packLane_.push_back(lane);
        }
        const std::size_t n_pack = packLane_.size();
        if (n_pack == 0)
            continue;
        // Partition in place: jac lanes first, preserving relative
        // order within each class (per-lane values are independent).
        std::size_t n_jac = 0;
        for (std::size_t p = 0; p < n_pack; ++p) {
            if (jac_mask[packLane_[p]] != 0) {
                std::swap(packLane_[p], packLane_[n_jac]);
                std::swap(packVgs_[p], packVgs_[n_jac]);
                std::swap(packVds_[p], packVds_[n_jac]);
                ++n_jac;
            }
        }
        const device::TransistorModel *model0 = fetModel_[e * lanes_];
        if (fetUniform_[e] != 0) {
            if (n_jac > 0)
                model0->evalBatch(packVgs_.data(), packVds_.data(),
                                  packId_.data(), packGm_.data(),
                                  packGds_.data(), n_jac);
            if (n_pack > n_jac)
                model0->evalBatch(packVgs_.data() + n_jac,
                                  packVds_.data() + n_jac,
                                  packId_.data() + n_jac, nullptr,
                                  nullptr, n_pack - n_jac);
        } else {
            for (std::size_t p = 0; p < n_pack; ++p) {
                const device::TransistorModel *m =
                    fetModel_[e * lanes_ + packLane_[p]];
                const bool want_jac = p < n_jac;
                m->evalBatch(&packVgs_[p], &packVds_[p], &packId_[p],
                             want_jac ? &packGm_[p] : nullptr,
                             want_jac ? &packGds_[p] : nullptr, 1);
            }
        }

        for (std::size_t p = 0; p < n_pack; ++p) {
            const std::size_t lane = packLane_[p];
            const double id = packId_[p];
            // Current id flows into the drain terminal and out of
            // the source terminal.
            if (idx_d >= 0)
                residual_[std::size_t(idx_d) * lanes_ + lane] += id;
            if (idx_s >= 0)
                residual_[std::size_t(idx_s) * lanes_ + lane] -= id;
            if (p >= n_jac)
                continue;
            const double gm = packGm_[p];
            const double gds = packGds_[p];
            if (idx_d >= 0) {
                jac_.at(idx_d, idx_d, lane) += gds;
                if (idx_g >= 0)
                    jac_.at(idx_d, idx_g, lane) += gm;
                if (idx_s >= 0)
                    jac_.at(idx_d, idx_s, lane) -= gm + gds;
            }
            if (idx_s >= 0) {
                jac_.at(idx_s, idx_s, lane) += gm + gds;
                if (idx_g >= 0)
                    jac_.at(idx_s, idx_g, lane) -= gm;
                if (idx_d >= 0)
                    jac_.at(idx_s, idx_d, lane) -= gds;
            }
        }
    }
}

void
BatchedMna::newtonRound(std::vector<BatchNewtonLane> &state)
{
    static stats::Counter &stat_rounds = stats::counter(
        "circuit.batch.newton.rounds",
        "lockstep Newton rounds executed by the batched engine");
    static stats::Counter &stat_iters = stats::counter(
        "circuit.batch.newton.iterations",
        "lane Newton iterations executed by the batched engine");
    static stats::Counter &stat_singular_recoveries = stats::counter(
        "circuit.batch.newton.singular_recoveries",
        "batched lanes recovered via a diagonal gmin boost");
    static stats::Counter &stat_failures = stats::counter(
        "circuit.batch.newton.failures",
        "batched lane solves that diverged");
    static stats::Accumulator &stat_occupancy = stats::accumulator(
        "circuit.batch.mask_occupancy",
        "active-lane fraction per batched Newton round");

    if (state.size() != lanes_)
        fatal("BatchedMna::newtonRound: bad state vector size");

    std::vector<std::size_t> res_lanes;
    std::vector<std::size_t> jac_lanes;
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
        if (!state[lane].active)
            continue;
        res_lanes.push_back(lane);
        if (state[lane].refresh || !cfg_.chord)
            jac_lanes.push_back(lane);
    }
    if (res_lanes.empty())
        return;

    ++stat_rounds;
    stat_iters += res_lanes.size();
    stat_occupancy.sample(static_cast<double>(res_lanes.size()) /
                          static_cast<double>(lanes_));
    prof::FrameGuard prof_frame("batch.newton_round");

    assembleBatch(res_lanes, jac_lanes);

    {
        prof::FrameGuard lu_frame("batch.lu_factor");
        lu_.factor(jac_, jac_lanes, luOk_);
    }

    // Per-lane singular recovery: mirror the scalar refactor() — add
    // the boost to the (intact) assembled Jacobian diagonals of the
    // failed lane and factor that lane again.
    std::vector<std::size_t> retry_lanes;
    for (const std::size_t lane : jac_lanes) {
        if (luOk_[lane] != 0)
            continue;
        if (cfg_.singularGminBoost > 0.0) {
            ++stat_singular_recoveries;
            for (std::size_t n = 0; n < numNodeUnknowns_; ++n)
                jac_.at(n, n, lane) += cfg_.singularGminBoost;
            retry_lanes.assign(1, lane);
            lu_.factor(jac_, retry_lanes, luOk_);
        }
        if (luOk_[lane] == 0) {
            ++stat_failures;
            state[lane].failed = true;
            state[lane].active = false;
        }
    }
    for (const std::size_t lane : jac_lanes)
        if (state[lane].active)
            state[lane].refresh = false;

    // Solve J * delta = residual on the surviving lanes.
    std::vector<std::size_t> solve_lanes;
    for (const std::size_t lane : res_lanes)
        if (state[lane].active)
            solve_lanes.push_back(lane);
    if (solve_lanes.empty())
        return;
    std::copy(residual_.begin(), residual_.end(), delta_.begin());
    lu_.solve(delta_.data(), solve_lanes);

    // Per-lane clamped update + convergence/chord bookkeeping, the
    // exact scalar iteration tail.
    for (const std::size_t lane : solve_lanes) {
        BatchNewtonLane &st = state[lane];
        double max_update = 0.0;
        for (std::size_t i = 0; i < unknowns_; ++i) {
            double step = delta_[i * lanes_ + lane];
            // Clamp only voltage unknowns; branch currents may jump.
            if (i < numNodeUnknowns_)
                step = std::clamp(step, -cfg_.maxStep, cfg_.maxStep);
            x_[i * lanes_ + lane] -= step;
            if (i < numNodeUnknowns_)
                max_update = std::max(max_update, std::abs(step));
        }

        if (max_update < cfg_.tolerance) {
            st.converged = true;
            st.active = false;
            continue;
        }

        // Refresh the Jacobian when the frozen one converges slowly.
        if (cfg_.chord && st.iter > 0 &&
            max_update > cfg_.chordRefreshRatio * st.prevUpdate)
            st.refresh = true;
        st.prevUpdate = max_update;

        ++st.iter;
        if (st.iter >= cfg_.maxIterations) {
            ++stat_failures;
            st.failed = true;
            st.active = false;
        }
    }
}

void
BatchedMna::solveNewtonAll(std::vector<BatchNewtonLane> &state)
{
    for (;;) {
        bool any_active = false;
        for (const BatchNewtonLane &st : state)
            any_active = any_active || st.active;
        if (!any_active)
            return;
        newtonRound(state);
    }
}

} // namespace otft::circuit
