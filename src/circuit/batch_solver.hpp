/**
 * @file
 * Lane-parallel batched Newton solver.
 *
 * The characterization pipeline bottoms out in millions of small,
 * identically-structured Newton solves — one per slew x load grid
 * point and per Monte Carlo sample. This engine runs B lanes of the
 * *same circuit topology* (element values, waveforms, and device
 * models may differ per lane) in lockstep over structure-of-arrays
 * state: a lane-major BatchedMatrix, a batched LU with per-lane
 * pivoting, and a batched Newton round that assembles, factors, and
 * updates every active lane per pass.
 *
 * Determinism contract (the masked-lane lockstep contract, see
 * DESIGN.md): every lane executes the identical per-lane operation
 * order as the scalar Mna/LuFactors path — same element stamp order,
 * same pivot selection, same update clamps — and lanes never
 * reassociate arithmetic across each other. Lane results are
 * therefore bit-identical to a scalar solve of the same problem,
 * which is what lets batched characterization reuse the scalar
 * result-cache keys and pass the byte-identity determinism gates.
 */

#ifndef OTFT_CIRCUIT_BATCH_SOLVER_HPP
#define OTFT_CIRCUIT_BATCH_SOLVER_HPP

#include <cassert>
#include <cstdint>
#include <vector>

#include "circuit/mna.hpp"

namespace otft::circuit {

/**
 * Dense square matrix for B lanes, lane-major: entry (r, c) of lane
 * `l` lives at data[(r * n + c) * B + l], so the same structural
 * entry of all lanes is contiguous (one SIMD vector when B matches
 * the hardware width).
 */
class BatchedMatrix
{
  public:
    BatchedMatrix(std::size_t n, std::size_t lanes)
        : n_(n), lanes_(lanes), data_(n * n * lanes, 0.0)
    {}

    double &
    at(std::size_t r, std::size_t c, std::size_t lane)
    {
        assert(r < n_ && c < n_ && lane < lanes_);
        return data_[(r * n_ + c) * lanes_ + lane];
    }
    double
    at(std::size_t r, std::size_t c, std::size_t lane) const
    {
        assert(r < n_ && c < n_ && lane < lanes_);
        return data_[(r * n_ + c) * lanes_ + lane];
    }

    std::size_t size() const { return n_; }
    std::size_t lanes() const { return lanes_; }

    double *raw() { return data_.data(); }
    const double *raw() const { return data_.data(); }

    /**
     * Zero the given flattened structural entries (index = r * n + c,
     * as produced by stampPattern) of the listed lanes only — other
     * lanes keep their values (they may hold a frozen chord Jacobian).
     */
    void
    zeroEntries(const std::vector<std::uint32_t> &entries,
                const std::vector<std::size_t> &lane_list)
    {
        for (const std::uint32_t idx : entries) {
            double *slot = &data_[std::size_t(idx) * lanes_];
            for (const std::size_t lane : lane_list)
                slot[lane] = 0.0;
        }
    }

  private:
    std::size_t n_;
    std::size_t lanes_;
    std::vector<double> data_;
};

/**
 * Batched LU factorization with per-lane partial pivoting.
 *
 * factor() copies the listed lanes of the batched matrix into
 * retained storage and eliminates them in lockstep; lanes not listed
 * keep their previous factors (a chord lane keeps solving against
 * its frozen Jacobian while refresh lanes re-factor). Per lane, the
 * pivot choice, the multiplier values, and the elimination order are
 * exactly those of the scalar LuFactors, so solve() results are
 * bit-identical to the scalar path.
 */
class BatchedLu
{
  public:
    BatchedLu(std::size_t n, std::size_t lanes);

    /**
     * Factor the listed lanes of `a`. ok[lane] is set false for
     * lanes that hit a near-zero pivot (their factors are invalid,
     * other lanes are unaffected) and true otherwise; lanes not
     * listed keep their ok/valid state untouched.
     */
    void factor(const BatchedMatrix &a,
                const std::vector<std::size_t> &lane_list,
                std::vector<std::uint8_t> &ok);

    /**
     * Solve the stored factors of the listed lanes against the
     * lane-major right-hand side `b` (n * lanes doubles), in place.
     * Listed lanes must have factored successfully.
     */
    void solve(double *b,
               const std::vector<std::size_t> &lane_list) const;

    /** True after the lane's last factor() succeeded. */
    bool valid(std::size_t lane) const { return valid_[lane] != 0; }

    std::size_t size() const { return n_; }
    std::size_t lanes() const { return lanes_; }

  private:
    std::size_t n_;
    std::size_t lanes_;
    /** Lane-major factors, as BatchedMatrix layout. */
    std::vector<double> lu_;
    /** perm_[i * lanes + lane]: row permutation per lane. */
    std::vector<std::size_t> perm_;
    std::vector<std::uint8_t> valid_;
    /** solve() scratch for the permuted RHS (lane-major). */
    mutable std::vector<double> pb_;
};

/** Per-lane Newton progress for BatchedMna::newtonRound(). */
struct BatchNewtonLane
{
    /** Lane participates in the next round. */
    bool active = false;
    /** Terminal states (mutually exclusive; clear `active`). */
    bool converged = false;
    bool failed = false;
    /** Index of the iteration the next round executes (0-based). */
    int iter = 0;
    /** Previous round's max voltage update (chord refresh test). */
    double prevUpdate = 0.0;
    /** Next round must rebuild + refactor this lane's Jacobian. */
    bool refresh = true;
};

/**
 * Batched MNA problem: B same-topology circuits solved in lockstep.
 *
 * Lanes are loaded with per-lane iterates (setLaneX), previous
 * states (setLaneXPrev), and step parameters (setLaneStep); each
 * newtonRound() then executes exactly one scalar Newton iteration
 * per active lane — masked assembly, masked factor with the per-lane
 * gmin-boost singular recovery, batched triangular solve, per-lane
 * clamped update and convergence/chord-refresh bookkeeping. Device
 * models are evaluated through the fused TransistorModel::evalBatch.
 *
 * Per-lane solver observability (diag::SolveProbe, failure dumps per
 * solve) is not wired through the batched engine; callers needing
 * forensics use the scalar path (see DESIGN.md).
 */
class BatchedMna
{
  public:
    /**
     * @param lane_circuits one circuit per lane; all must share the
     *        same topology (node indices and element order — checked,
     *        fatal on mismatch); values/waveforms/models may differ.
     * @param config shared Newton controls for every lane.
     */
    BatchedMna(std::vector<const Circuit *> lane_circuits,
               NewtonConfig config = {});

    std::size_t lanes() const { return lanes_; }
    std::size_t numUnknowns() const { return unknowns_; }
    std::size_t numNodeUnknowns() const { return numNodeUnknowns_; }
    const NewtonConfig &config() const { return cfg_; }
    const Circuit &laneCircuit(std::size_t lane) const
    {
        return *circuits_[lane];
    }

    /** Load/read a lane's Newton iterate (scalar Solution layout). */
    void setLaneX(std::size_t lane, const Solution &x);
    void getLaneX(std::size_t lane, Solution &x) const;

    /** Load a lane's previous-timestep state (companion models). */
    void setLaneXPrev(std::size_t lane, const Solution &x_prev);

    /**
     * Set a lane's step parameters: waveform time, source scale, and
     * backward-Euler dt (<= 0 disables capacitor stamps, DC).
     */
    void setLaneStep(std::size_t lane, double time,
                     double source_scale, double dt);

    /**
     * Execute one Newton iteration on every active lane. Lanes that
     * converge or fail this round get their terminal flag set and
     * `active` cleared; the caller decides what happens next (retire
     * the lane, shrink its timestep and relaunch, ...).
     */
    void newtonRound(std::vector<BatchNewtonLane> &state);

    /**
     * Convenience driver: run newtonRound() until no lane is active.
     * Equivalent to per-lane Mna::solveNewton on the loaded state.
     */
    void solveNewtonAll(std::vector<BatchNewtonLane> &state);

  private:
    void assembleBatch(const std::vector<std::size_t> &res_lanes,
                       const std::vector<std::size_t> &jac_lanes);

    double
    volt(NodeId node, std::size_t lane) const
    {
        return node == Circuit::ground
                   ? 0.0
                   : x_[std::size_t(node - 1) * lanes_ + lane];
    }
    double
    voltPrev(NodeId node, std::size_t lane) const
    {
        return node == Circuit::ground
                   ? 0.0
                   : xPrev_[std::size_t(node - 1) * lanes_ + lane];
    }

    std::vector<const Circuit *> circuits_;
    NewtonConfig cfg_;
    std::size_t lanes_;
    std::size_t numNodeUnknowns_;
    std::size_t unknowns_;
    std::vector<std::uint32_t> pattern_;

    /** Precomputed lane-major element values ([elem * lanes + lane]). */
    std::vector<double> resG_;
    std::vector<double> capC_;
    std::vector<double> srcI_;
    std::vector<const Pwl *> vsWave_;
    std::vector<const device::TransistorModel *> fetModel_;
    /** Per FET: all lanes share one model object (fused dispatch). */
    std::vector<std::uint8_t> fetUniform_;

    /** Lane-major state (unknowns * lanes). */
    std::vector<double> x_;
    std::vector<double> xPrev_;
    std::vector<double> residual_;
    std::vector<double> delta_;
    BatchedMatrix jac_;
    BatchedLu lu_;
    std::vector<std::uint8_t> luOk_;

    /** Per-lane step parameters. */
    std::vector<double> time_;
    std::vector<double> scale_;
    std::vector<double> dt_;

    /** evalBatch packing scratch. */
    std::vector<double> packVgs_, packVds_, packId_, packGm_, packGds_;
    std::vector<std::size_t> packLane_;
};

/**
 * @return true when the two circuits have identical topology — node
 * count plus element counts and node indices in order (element
 * values, waveforms, and models are not compared) — i.e. they can
 * share lanes of one BatchedMna.
 */
bool batchCompatible(const Circuit &a, const Circuit &b);

} // namespace otft::circuit

#endif // OTFT_CIRCUIT_BATCH_SOLVER_HPP
