/**
 * @file
 * Failure forensics: structured, content-addressed dumps of a solve
 * that went wrong, and the machinery to replay one standalone.
 *
 * When diagnostics dumps are enabled (`--diag-dir`), the Newton kernel
 * and the transient engine call writeFailureDump() on non-convergence,
 * unrecoverable singular Jacobians, or LTE budget exhaustion. The dump
 * ("otft-diag-dump-1") captures everything that determines the solve:
 * full topology, device model parameters, solver configuration, the
 * initial iterate, the previous-timestep state, run attributes (RNG
 * seed), and the ring-buffered iteration trace leading to the failure.
 *
 * Dumps are content-addressed — the filename is an FNV-1a digest of
 * the document body — so a sweep that hits the same failure thousands
 * of times produces one artifact, and re-running a fixed build shows
 * new content as a new file.
 *
 * readFailureDump() + replayDump() invert the process: rebuild the
 * circuit bit-exactly (doubles round-trip via max_digits10) and re-run
 * the identical Newton solve with full per-iteration telemetry. The
 * `diag_replay` tool wraps this as a command-line debugger.
 */

#ifndef OTFT_CIRCUIT_DUMP_HPP
#define OTFT_CIRCUIT_DUMP_HPP

#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/mna.hpp"
#include "util/diag.hpp"

namespace otft::circuit::dump {

/** Schema tag of a failure-dump document. */
inline constexpr const char *dumpSchema = "otft-diag-dump-1";

/** Everything a dump captures, parsed back into memory. */
struct FailureDump
{
    std::string reason;
    std::string context;
    std::map<std::string, double> attributes;

    /** What kind of solve failed and at what point in time. */
    diag::SolveKind kind = diag::SolveKind::Dc;
    double time = 0.0;
    double sourceScale = 1.0;
    double dt = 0.0;

    NewtonConfig config;
    Circuit circuit;

    /** Initial iterate handed to the failing solve. */
    Solution x0;
    /** Previous-timestep state (present only when dt > 0). */
    bool hasPrev = false;
    Solution xPrev;

    /** Ring-buffered iterations recorded before the failure. */
    std::vector<diag::IterationSample> trace;
};

/**
 * Serialize a failure and write it under the diag::Collector dump
 * directory, honoring the per-process dump cap.
 * @param x0 the iterate the solve started from
 * @param trace the probe's ring contents (chronological)
 * @return the dump path, or "" when dumps are disabled, the cap is
 *         reached, or the circuit holds a model kind this writer does
 *         not understand (warned, never fatal — a diagnostics failure
 *         must not take down the run it is diagnosing).
 */
std::string writeFailureDump(
    const Circuit &circuit, const NewtonConfig &config,
    const Solution &x0, diag::SolveKind kind, double time,
    double source_scale, double dt, const Solution *x_prev,
    const std::string &reason,
    const std::vector<diag::IterationSample> &trace);

/**
 * Serialize the dump document to a string (exposed for tests; the
 * content hash is computed over exactly this text). Fatal on a model
 * kind that cannot be serialized.
 */
std::string serializeDump(
    const Circuit &circuit, const NewtonConfig &config,
    const Solution &x0, diag::SolveKind kind, double time,
    double source_scale, double dt, const Solution *x_prev,
    const std::string &reason, const std::string &context,
    const std::map<std::string, double> &attributes,
    const std::vector<diag::IterationSample> &trace);

/** Parse a dump file; fatal on malformed or schema-mismatched input. */
FailureDump readFailureDump(const std::string &path);

/** Parse a dump document from text (for tests). */
FailureDump parseFailureDump(const std::string &text);

/** Outcome of replaying a dump. */
struct ReplayResult
{
    bool converged = false;
    Solution solution;
    /** Full (not ring-limited) per-iteration telemetry. */
    std::vector<diag::IterationSample> trace;
};

/**
 * Re-run the dumped solve with identical inputs. The replayed
 * iteration sequence is bit-identical to the original run, so the
 * overlapping tail of `dump.trace` matches `result.trace` exactly.
 */
ReplayResult replayDump(const FailureDump &dump);

} // namespace otft::circuit::dump

#endif // OTFT_CIRCUIT_DUMP_HPP
