#include "circuit/transient.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "circuit/dump.hpp"
#include "util/diag.hpp"
#include "util/logging.hpp"
#include "util/profiler.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft::circuit {

namespace {

stats::Counter &
statSteps()
{
    static stats::Counter &c = stats::counter(
        "circuit.transient.steps", "transient time steps integrated");
    return c;
}

stats::Counter &
statRetries()
{
    static stats::Counter &c = stats::counter(
        "circuit.transient.retries",
        "time steps that needed step halving");
    return c;
}

} // namespace

TransientResult::TransientResult(std::vector<double> time,
                                 std::vector<std::vector<double>> node_v,
                                 std::vector<std::vector<double>> source_i)
    : time_(std::move(time)), nodeV(std::move(node_v)),
      sourceI(std::move(source_i))
{
}

Trace
TransientResult::node(NodeId node) const
{
    if (node < 0 || static_cast<std::size_t>(node) >= nodeV.size())
        fatal("TransientResult::node: bad node ", node);
    return {time_, nodeV[static_cast<std::size_t>(node)]};
}

Trace
TransientResult::source(SourceId source) const
{
    if (source < 0 ||
        static_cast<std::size_t>(source) >= sourceI.size())
        fatal("TransientResult::source: bad source ", source);
    return {time_, sourceI[static_cast<std::size_t>(source)]};
}

double
TransientResult::sourceEnergy(SourceId source, double v_value, double t0,
                              double t1) const
{
    const Trace i = this->source(source);
    double energy = 0.0;
    for (std::size_t k = 0; k + 1 < time_.size(); ++k) {
        const double ta = std::clamp(time_[k], t0, t1);
        const double tb = std::clamp(time_[k + 1], t0, t1);
        if (tb <= ta)
            continue;
        const double p_a = v_value * i.value[k];
        const double p_b = v_value * i.value[k + 1];
        energy += 0.5 * (p_a + p_b) * (tb - ta);
    }
    return energy;
}

TransientAnalysis::TransientAnalysis(Circuit &circuit)
    : ckt(circuit)
{
}

TransientResult
TransientAnalysis::run(const TransientConfig &config) const
{
    if (config.tStop <= 0.0 || config.dt <= 0.0)
        fatal("TransientAnalysis: tStop and dt must be positive");

    // Initial condition: DC operating point with sources at t = 0.
    DcAnalysis dc(ckt, config.newton);
    return integrate(config, dc.operatingPoint());
}

TransientResult
TransientAnalysis::run(const TransientConfig &config,
                       const Solution &initial) const
{
    if (config.tStop <= 0.0 || config.dt <= 0.0)
        fatal("TransientAnalysis: tStop and dt must be positive");
    return integrate(config, initial);
}

TransientResult
TransientAnalysis::integrate(const TransientConfig &config, Solution x) const
{
    static stats::Counter &stat_runs = stats::counter(
        "circuit.transient.runs", "transient analyses executed");
    OTFT_TRACE_SCOPE("circuit.transient.run");
    ++stat_runs;

    Mna mna(ckt, config.newton);
    if (x.size() != mna.numUnknowns())
        fatal("TransientAnalysis: initial state has ", x.size(),
              " unknowns, circuit needs ", mna.numUnknowns());

    if (config.fixedStep)
        return runFixed(config, mna, std::move(x));
    return runAdaptive(config, mna, std::move(x));
}

/**
 * The historical uniform-grid integrator. Every arithmetic operation
 * here is kept identical to the pre-adaptive engine so fixedStep runs
 * reproduce old trajectories bit-for-bit.
 */
TransientResult
TransientAnalysis::runFixed(const TransientConfig &config, Mna &mna,
                            Solution x) const
{
    // Build the time grid: uniform steps plus waveform breakpoints.
    std::set<double> grid;
    const std::size_t n_steps =
        static_cast<std::size_t>(std::ceil(config.tStop / config.dt));
    for (std::size_t k = 0; k <= n_steps; ++k)
        grid.insert(std::min(config.dt * static_cast<double>(k),
                             config.tStop));
    for (const auto &s : ckt.voltageSources())
        for (double t : s.wave.breakpoints())
            if (t > 0.0 && t < config.tStop)
                grid.insert(t);
    std::vector<double> times(grid.begin(), grid.end());

    const std::size_t n_nodes = ckt.numNodes();
    const std::size_t n_sources = ckt.voltageSources().size();
    std::vector<std::vector<double>> node_v(n_nodes);
    std::vector<std::vector<double>> source_i(n_sources);

    auto record = [&](const Solution &sol) {
        for (std::size_t n = 0; n < n_nodes; ++n)
            node_v[n].push_back(
                mna.nodeVoltage(sol, static_cast<NodeId>(n)));
        for (std::size_t s = 0; s < n_sources; ++s)
            source_i[s].push_back(
                mna.sourceCurrent(sol, static_cast<SourceId>(s)));
    };
    record(x);

    for (std::size_t k = 1; k < times.size(); ++k) {
        const double t = times[k];
        const double h = t - times[k - 1];
        ++statSteps();
        Solution x_next = x;
        if (!mna.solveNewton(x_next, t, 1.0, h, &x)) {
            ++statRetries();
            diag::recordEvent(diag::Event::NewtonRetry);
            // Retry with the step halved (two sub-steps).
            const double t_mid = times[k - 1] + 0.5 * h;
            Solution x_mid = x;
            const bool ok =
                mna.solveNewton(x_mid, t_mid, 1.0, 0.5 * h, &x) &&
                (x_next = x_mid,
                 mna.solveNewton(x_next, t, 1.0, 0.5 * h, &x_mid));
            if (!ok) {
                fatal("TransientAnalysis: Newton failed at t = ", t,
                      " s even after step halving");
            }
        }
        diag::recordEvent(diag::Event::StepAccept);
        x = std::move(x_next);
        record(x);
    }

    return TransientResult(std::move(times), std::move(node_v),
                           std::move(source_i));
}

/**
 * LTE-controlled variable-step integrator.
 *
 * The BE local truncation error over a step h is h^2/2 * v''(xi).
 * With the last three accepted solutions (x_before at t-h_prev, x at
 * t, x_new at t+h) the second derivative of each node voltage is
 * estimated by divided differences, giving per-node
 *
 *     lte = h^2 * |d1 - d0| / (h + h_prev),
 *     d1 = (x_new - x) / h,   d0 = (x - x_before) / h_prev.
 *
 * A step whose worst-node lte exceeds config.lteTol is rejected and
 * retried smaller; accepted steps scale the next step by
 * 0.9 * sqrt(lteTol / err), capped at 2x growth. Steps land exactly
 * on waveform breakpoints, where the difference history is also reset
 * (the input derivative is discontinuous there, so carrying the
 * estimate across would reject the first post-edge step spuriously).
 */
TransientResult
TransientAnalysis::runAdaptive(const TransientConfig &config, Mna &mna,
                               Solution x) const
{
    static stats::Counter &stat_rejections = stats::counter(
        "circuit.transient.lte_rejections",
        "adaptive steps rejected for excess local truncation error");

    const double dt_min =
        config.dtMin > 0.0 ? config.dtMin : config.dt / 256.0;
    const double dt_max = std::max(
        dt_min, config.dtMax > 0.0 ? config.dtMax : config.dt * 64.0);
    if (config.lteTol <= 0.0)
        fatal("TransientAnalysis: lteTol must be positive");

    // Mandatory stop times: waveform breakpoints, then tStop.
    std::set<double> stop_set;
    for (const auto &s : ckt.voltageSources())
        for (double t : s.wave.breakpoints())
            if (t > 0.0 && t < config.tStop)
                stop_set.insert(t);
    stop_set.insert(config.tStop);
    const std::vector<double> stops(stop_set.begin(), stop_set.end());

    const std::size_t n_nodes = ckt.numNodes();
    const std::size_t n_sources = ckt.voltageSources().size();
    const std::size_t n_volt = n_nodes - 1;
    std::vector<double> times;
    std::vector<std::vector<double>> node_v(n_nodes);
    std::vector<std::vector<double>> source_i(n_sources);

    auto record = [&](double t, const Solution &sol) {
        times.push_back(t);
        for (std::size_t n = 0; n < n_nodes; ++n)
            node_v[n].push_back(
                mna.nodeVoltage(sol, static_cast<NodeId>(n)));
        for (std::size_t s = 0; s < n_sources; ++s)
            source_i[s].push_back(
                mna.sourceCurrent(sol, static_cast<SourceId>(s)));
    };
    record(0.0, x);

    // Runaway guard: no well-posed run needs more attempts than
    // resolving the whole span at dt_min with every step rejected once.
    const std::size_t max_attempts =
        4 * static_cast<std::size_t>(config.tStop / dt_min + 1.0) +
        4 * stops.size() + 1024;
    std::size_t attempts = 0;

    double t = 0.0;
    double h = std::clamp(config.dt, dt_min, dt_max);
    std::size_t next_stop = 0;
    // Divided-difference history (invalid until two accepted steps
    // inside the current waveform segment).
    Solution x_before;
    double h_prev = 0.0;
    bool have_history = false;

    while (t < config.tStop && next_stop < stops.size()) {
        if (++attempts > max_attempts) {
            // LTE budget exhausted: a reject/shrink loop that never
            // advances. Leave a forensics artifact before bailing.
            dump::writeFailureDump(
                ckt, config.newton, x, diag::SolveKind::TransientStep,
                t, 1.0, h, have_history ? &x_before : nullptr,
                "transient_lte_budget", {});
            fatal("TransientAnalysis: adaptive stepping stalled at t = ",
                  t, " s");
        }

        // Land exactly on the next mandatory stop time.
        const double bp = stops[next_stop];
        bool landing = false;
        if (t + h >= bp || bp - (t + h) < 0.25 * dt_min) {
            h = bp - t;
            landing = true;
        }

        ++statSteps();
        prof::FrameGuard step_frame("transient.step");
        const double t_new = landing ? bp : t + h;
        Solution x_new = x;
        if (!mna.solveNewton(x_new, t_new, 1.0, h, &x)) {
            ++statRetries();
            diag::recordEvent(diag::Event::NewtonRetry);
            if (h <= dt_min * 1.0000001)
                fatal("TransientAnalysis: Newton failed at t = ", t_new,
                      " s with the minimum step");
            h = std::max(dt_min, 0.5 * h);
            continue;
        }

        // LTE estimate once two prior points exist in this segment.
        double growth = 2.0;
        if (have_history) {
            prof::FrameGuard lte_frame("transient.lte_control");
            double err = 0.0;
            for (std::size_t i = 0; i < n_volt; ++i) {
                const double d1 = (x_new[i] - x[i]) / h;
                const double d0 = (x[i] - x_before[i]) / h_prev;
                const double lte =
                    h * h * std::abs(d1 - d0) / (h + h_prev);
                err = std::max(err, lte);
            }
            if (err > config.lteTol && h > dt_min * 1.0000001) {
                ++stat_rejections;
                diag::recordEvent(diag::Event::StepReject);
                const double shrink = std::max(
                    0.3, 0.9 * std::sqrt(config.lteTol / err));
                h = std::max(dt_min, h * shrink);
                continue;
            }
            if (err > 0.0)
                growth = std::min(
                    2.0, 0.9 * std::sqrt(config.lteTol / err));
        }

        // Accept.
        diag::recordEvent(diag::Event::StepAccept);
        x_before = std::move(x);
        x = std::move(x_new);
        h_prev = h;
        have_history = true;
        t = t_new;
        record(t, x);

        if (landing) {
            ++next_stop;
            // Input slope is discontinuous across a breakpoint:
            // restart both the difference history and the step size.
            have_history = false;
            h = std::clamp(config.dt, dt_min, dt_max);
        } else {
            h = std::clamp(h * std::max(growth, 0.1), dt_min, dt_max);
        }
    }

    return TransientResult(std::move(times), std::move(node_v),
                           std::move(source_i));
}

} // namespace otft::circuit
