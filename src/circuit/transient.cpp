#include "circuit/transient.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft::circuit {

TransientResult::TransientResult(std::vector<double> time,
                                 std::vector<std::vector<double>> node_v,
                                 std::vector<std::vector<double>> source_i)
    : time_(std::move(time)), nodeV(std::move(node_v)),
      sourceI(std::move(source_i))
{
}

Trace
TransientResult::node(NodeId node) const
{
    if (node < 0 || static_cast<std::size_t>(node) >= nodeV.size())
        fatal("TransientResult::node: bad node ", node);
    return {time_, nodeV[static_cast<std::size_t>(node)]};
}

Trace
TransientResult::source(SourceId source) const
{
    if (source < 0 ||
        static_cast<std::size_t>(source) >= sourceI.size())
        fatal("TransientResult::source: bad source ", source);
    return {time_, sourceI[static_cast<std::size_t>(source)]};
}

double
TransientResult::sourceEnergy(SourceId source, double v_value, double t0,
                              double t1) const
{
    const Trace i = this->source(source);
    double energy = 0.0;
    for (std::size_t k = 0; k + 1 < time_.size(); ++k) {
        const double ta = std::clamp(time_[k], t0, t1);
        const double tb = std::clamp(time_[k + 1], t0, t1);
        if (tb <= ta)
            continue;
        const double p_a = v_value * i.value[k];
        const double p_b = v_value * i.value[k + 1];
        energy += 0.5 * (p_a + p_b) * (tb - ta);
    }
    return energy;
}

TransientAnalysis::TransientAnalysis(Circuit &circuit)
    : ckt(circuit)
{
}

TransientResult
TransientAnalysis::run(const TransientConfig &config) const
{
    if (config.tStop <= 0.0 || config.dt <= 0.0)
        fatal("TransientAnalysis: tStop and dt must be positive");

    static stats::Counter &stat_runs = stats::counter(
        "circuit.transient.runs", "transient analyses executed");
    static stats::Counter &stat_steps = stats::counter(
        "circuit.transient.steps", "transient time steps integrated");
    static stats::Counter &stat_retries = stats::counter(
        "circuit.transient.retries",
        "time steps that needed step halving");
    OTFT_TRACE_SCOPE("circuit.transient.run");
    ++stat_runs;

    Mna mna(ckt, config.newton);

    // Build the time grid: uniform steps plus waveform breakpoints.
    std::set<double> grid;
    const std::size_t n_steps =
        static_cast<std::size_t>(std::ceil(config.tStop / config.dt));
    for (std::size_t k = 0; k <= n_steps; ++k)
        grid.insert(std::min(config.dt * static_cast<double>(k),
                             config.tStop));
    for (const auto &s : ckt.voltageSources())
        for (double t : s.wave.breakpoints())
            if (t > 0.0 && t < config.tStop)
                grid.insert(t);
    std::vector<double> times(grid.begin(), grid.end());

    const std::size_t n_nodes = ckt.numNodes();
    const std::size_t n_sources = ckt.voltageSources().size();
    std::vector<std::vector<double>> node_v(n_nodes);
    std::vector<std::vector<double>> source_i(n_sources);

    // Initial condition: DC operating point with sources at t = 0.
    DcAnalysis dc(ckt, config.newton);
    Solution x = dc.operatingPoint();

    auto record = [&](const Solution &sol) {
        for (std::size_t n = 0; n < n_nodes; ++n)
            node_v[n].push_back(
                mna.nodeVoltage(sol, static_cast<NodeId>(n)));
        for (std::size_t s = 0; s < n_sources; ++s)
            source_i[s].push_back(
                mna.sourceCurrent(sol, static_cast<SourceId>(s)));
    };
    record(x);

    for (std::size_t k = 1; k < times.size(); ++k) {
        const double t = times[k];
        const double h = t - times[k - 1];
        ++stat_steps;
        Solution x_next = x;
        if (!mna.solveNewton(x_next, t, 1.0, h, &x)) {
            ++stat_retries;
            // Retry with the step halved (two sub-steps).
            const double t_mid = times[k - 1] + 0.5 * h;
            Solution x_mid = x;
            const bool ok =
                mna.solveNewton(x_mid, t_mid, 1.0, 0.5 * h, &x) &&
                (x_next = x_mid,
                 mna.solveNewton(x_next, t, 1.0, 0.5 * h, &x_mid));
            if (!ok) {
                fatal("TransientAnalysis: Newton failed at t = ", t,
                      " s even after step halving");
            }
        }
        x = std::move(x_next);
        record(x);
    }

    return TransientResult(std::move(times), std::move(node_v),
                           std::move(source_i));
}

} // namespace otft::circuit
