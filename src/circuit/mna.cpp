#include "circuit/mna.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/dump.hpp"
#include "util/logging.hpp"
#include "util/profiler.hpp"
#include "util/stats_registry.hpp"

namespace otft::circuit {

std::vector<std::uint32_t>
stampPattern(const Circuit &circuit)
{
    const std::size_t n_node = circuit.numNodes() - 1;
    const std::size_t unknowns =
        n_node + circuit.voltageSources().size();

    std::vector<std::uint32_t> entries;
    const auto add = [&](int r, int c) {
        entries.push_back(static_cast<std::uint32_t>(
            static_cast<std::size_t>(r) * unknowns +
            static_cast<std::size_t>(c)));
    };
    // The conductance quad of stamp_g (and of the FET gds term).
    const auto add_pair = [&](int ia, int ib) {
        if (ia >= 0) {
            add(ia, ia);
            if (ib >= 0)
                add(ia, ib);
        }
        if (ib >= 0) {
            add(ib, ib);
            if (ia >= 0)
                add(ib, ia);
        }
    };
    const auto index = [](NodeId node) { return node - 1; };

    // gmin (and the singular-recovery boost) touch node diagonals.
    for (std::size_t n = 0; n < n_node; ++n)
        add(static_cast<int>(n), static_cast<int>(n));
    for (const auto &r : circuit.resistors())
        add_pair(index(r.a), index(r.b));
    for (const auto &c : circuit.capacitors())
        add_pair(index(c.a), index(c.b));
    const auto &vsources = circuit.voltageSources();
    for (std::size_t k = 0; k < vsources.size(); ++k) {
        const int row = static_cast<int>(n_node + k);
        const int ip = index(vsources[k].pos);
        const int in = index(vsources[k].neg);
        if (ip >= 0) {
            add(ip, row);
            add(row, ip);
        }
        if (in >= 0) {
            add(in, row);
            add(row, in);
        }
    }
    for (const auto &fet : circuit.fets()) {
        const int d = index(fet.drain);
        const int g = index(fet.gate);
        const int s = index(fet.source);
        if (d >= 0) {
            add(d, d);
            if (g >= 0)
                add(d, g);
            if (s >= 0)
                add(d, s);
        }
        if (s >= 0) {
            add(s, s);
            if (g >= 0)
                add(s, g);
            if (d >= 0)
                add(s, d);
        }
    }

    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end()),
                  entries.end());
    return entries;
}

Mna::Mna(const Circuit &circuit, NewtonConfig config)
    : ckt(circuit), cfg(config),
      numNodeUnknowns(circuit.numNodes() - 1),
      unknowns(numNodeUnknowns + circuit.voltageSources().size()),
      pattern_(stampPattern(circuit))
{
}

double
Mna::nodeVoltage(const Solution &x, NodeId node) const
{
    if (node == Circuit::ground)
        return 0.0;
    const int idx = nodeIndex(node);
    if (idx < 0 || static_cast<std::size_t>(idx) >= numNodeUnknowns)
        fatal("Mna::nodeVoltage: bad node ", node);
    return x[static_cast<std::size_t>(idx)];
}

double
Mna::sourceCurrent(const Solution &x, SourceId source) const
{
    const std::size_t k = static_cast<std::size_t>(source);
    if (k >= ckt.voltageSources().size())
        fatal("Mna::sourceCurrent: bad source ", source);
    return x[numNodeUnknowns + k];
}

void
Mna::assemble(const Solution &x, double time, double source_scale,
              double dt, const Solution *x_prev, Matrix *jac,
              std::vector<double> &residual) const
{
    if (jac != nullptr) {
        // Pattern-aware zeroing: only the previously-stamped entries
        // need resetting; everything else is still zero from the
        // matrix's construction (assemble never writes off-pattern).
        if (jac->denseDirty())
            jac->clear();
        else
            jac->zeroEntries(pattern_);
    }
    std::fill(residual.begin(), residual.end(), 0.0);

    auto volt = [&](NodeId n) { return nodeVoltage(x, n); };

    // Stamp a conductance between two nodes into Jacobian + residual.
    auto stamp_g = [&](NodeId a, NodeId b, double g, double i_extra_a) {
        const double v = volt(a) - volt(b);
        const double i = g * v + i_extra_a;
        const int ia = nodeIndex(a), ib = nodeIndex(b);
        if (ia >= 0) {
            residual[static_cast<std::size_t>(ia)] += i;
            if (jac != nullptr) {
                jac->at(ia, ia) += g;
                if (ib >= 0)
                    jac->at(ia, ib) -= g;
            }
        }
        if (ib >= 0) {
            residual[static_cast<std::size_t>(ib)] -= i;
            if (jac != nullptr) {
                jac->at(ib, ib) += g;
                if (ia >= 0)
                    jac->at(ib, ia) -= g;
            }
        }
    };

    // gmin from every non-ground node to ground.
    for (std::size_t n = 0; n < numNodeUnknowns; ++n) {
        if (jac != nullptr)
            jac->at(n, n) += cfg.gmin;
        residual[n] += cfg.gmin * x[n];
    }

    for (const auto &r : ckt.resistors())
        stamp_g(r.a, r.b, 1.0 / r.resistance, 0.0);

    if (dt > 0.0) {
        // Backward-Euler companion: i = (C/dt) * (v - v_prev).
        if (x_prev == nullptr)
            panic("Mna::assemble: transient step without previous state");
        for (const auto &c : ckt.capacitors()) {
            const double g = c.capacitance / dt;
            const double vp = nodeVoltage(*x_prev, c.a) -
                              nodeVoltage(*x_prev, c.b);
            stamp_g(c.a, c.b, g, -g * vp);
        }
    }

    for (const auto &s : ckt.currentSources()) {
        const double i = s.current * source_scale;
        const int ip = nodeIndex(s.pos), in = nodeIndex(s.neg);
        // Source pushes current out of `pos` into the circuit.
        if (ip >= 0)
            residual[static_cast<std::size_t>(ip)] -= i;
        if (in >= 0)
            residual[static_cast<std::size_t>(in)] += i;
    }

    const auto &vsources = ckt.voltageSources();
    for (std::size_t k = 0; k < vsources.size(); ++k) {
        const auto &s = vsources[k];
        const std::size_t row = numNodeUnknowns + k;
        const double i_branch = x[row];
        const int ip = nodeIndex(s.pos), in = nodeIndex(s.neg);
        // Branch current leaves the source at `pos`.
        if (ip >= 0) {
            residual[static_cast<std::size_t>(ip)] -= i_branch;
            if (jac != nullptr) {
                jac->at(ip, row) -= 1.0;
                jac->at(row, ip) += 1.0;
            }
        }
        if (in >= 0) {
            residual[static_cast<std::size_t>(in)] += i_branch;
            if (jac != nullptr) {
                jac->at(in, row) += 1.0;
                jac->at(row, in) -= 1.0;
            }
        }
        residual[row] =
            volt(s.pos) - volt(s.neg) - s.wave.at(time) * source_scale;
    }

    for (const auto &fet : ckt.fets()) {
        const double vgs = volt(fet.gate) - volt(fet.source);
        const double vds = volt(fet.drain) - volt(fet.source);
        const double id = fet.model->drainCurrent(vgs, vds);

        const int idx_d = nodeIndex(fet.drain);
        const int idx_g = nodeIndex(fet.gate);
        const int idx_s = nodeIndex(fet.source);

        // Current id flows into the drain terminal and out of the
        // source terminal.
        if (idx_d >= 0)
            residual[static_cast<std::size_t>(idx_d)] += id;
        if (idx_s >= 0)
            residual[static_cast<std::size_t>(idx_s)] -= id;
        if (jac == nullptr)
            continue;

        const double gm = fet.model->gm(vgs, vds);
        const double gds = fet.model->gds(vgs, vds);
        if (idx_d >= 0) {
            jac->at(idx_d, idx_d) += gds;
            if (idx_g >= 0)
                jac->at(idx_d, idx_g) += gm;
            if (idx_s >= 0)
                jac->at(idx_d, idx_s) -= gm + gds;
        }
        if (idx_s >= 0) {
            jac->at(idx_s, idx_s) += gm + gds;
            if (idx_g >= 0)
                jac->at(idx_s, idx_g) -= gm;
            if (idx_d >= 0)
                jac->at(idx_s, idx_d) -= gds;
        }
    }
}

bool
Mna::solveNewton(Solution &x, double time, double source_scale, double dt,
                 const Solution *x_prev) const
{
    return solveNewton(x, time, source_scale, dt, x_prev, nullptr);
}

bool
Mna::solveNewton(Solution &x, double time, double source_scale, double dt,
                 const Solution *x_prev,
                 NewtonTelemetry *telemetry) const
{
    if (x.size() != unknowns)
        fatal("Mna::solveNewton: bad solution vector size");

    static stats::Counter &stat_solves = stats::counter(
        "circuit.newton.solves", "Newton solves attempted");
    static stats::Counter &stat_iters = stats::counter(
        "circuit.newton.iterations", "Newton iterations executed");
    static stats::Counter &stat_chord_iters = stats::counter(
        "circuit.newton.chord_iterations",
        "iterations served by a reused (chord) Jacobian");
    static stats::Counter &stat_refreshes = stats::counter(
        "circuit.newton.jacobian_refreshes",
        "chord iterations that triggered a Jacobian rebuild "
        "(slow convergence)");
    static stats::Counter &stat_singular_recoveries = stats::counter(
        "circuit.newton.singular_recoveries",
        "singular Jacobians recovered via a diagonal gmin boost");
    static stats::Counter &stat_failures = stats::counter(
        "circuit.newton.failures", "Newton solves that diverged");
    static stats::Histogram &stat_iter_hist = stats::histogram(
        "circuit.newton.iterations_per_solve", 0.0, 64.0, 16,
        "distribution of iterations per converged solve");
    static stats::Accumulator &stat_time = stats::accumulator(
        "circuit.newton.solve_time", "seconds per Newton solve");
    static const bool rates_registered = [] {
        stats::Registry::instance().rate(
            "circuit.newton.mean_iterations",
            "circuit.newton.iterations", "circuit.newton.solves",
            "mean Newton iterations per solve");
        return true;
    }();
    (void)rates_registered;

    ++stat_solves;
    stats::ScopedTimer timer(stat_time);
    prof::FrameGuard prof_frame("mna.solve_newton");

    const diag::SolveKind solve_kind = dt > 0.0
                                           ? diag::SolveKind::TransientStep
                                           : diag::SolveKind::Dc;
    diag::SolveProbe probe(solve_kind);
    const bool observing = probe.active() || telemetry != nullptr;

    // Forensics dumps need the iterate the solve *started* from; copy
    // it up front only when a failure here would actually dump.
    Solution x0;
    if (probe.wantsDump())
        x0 = x;

    Matrix jac(unknowns);
    LuFactors lu;
    std::vector<double> residual(unknowns, 0.0);

    // Factor the current Jacobian; on a singular matrix, retry once
    // with a small conductance added to the node diagonals (rescues
    // e.g. momentarily floating nodes when gmin is disabled).
    const auto refactor = [&]() -> bool {
        prof::FrameGuard lu_frame("mna.lu_factor");
        assemble(x, time, source_scale, dt, x_prev, &jac, residual);
        if (lu.factor(jac))
            return true;
        if (cfg.singularGminBoost <= 0.0)
            return false;
        ++stat_singular_recoveries;
        probe.singularRecovery();
        if (telemetry != nullptr)
            ++telemetry->singularRecoveries;
        for (std::size_t n = 0; n < numNodeUnknowns; ++n)
            jac.at(n, n) += cfg.singularGminBoost;
        return lu.factor(jac);
    };

    // On failure, register the forensics artifact (a no-op unless
    // --diag-dir is configured and the dump cap allows it).
    const auto dump_failure = [&](const char *reason) {
        if (!probe.wantsDump())
            return;
        dump::writeFailureDump(ckt, cfg, x0, solve_kind, time,
                               source_scale, dt, x_prev, reason,
                               probe.trace());
    };

    double prev_update = 0.0;
    bool refresh = true;
    for (int iter = 0; iter < cfg.maxIterations; ++iter) {
        ++stat_iters;
        bool chord_iter = false;
        if (refresh || !cfg.chord) {
            if (!refactor()) {
                ++stat_failures;
                dump_failure("jacobian_singular");
                probe.finish(false);
                if (telemetry != nullptr)
                    telemetry->converged = false;
                return false;
            }
            refresh = false;
        } else {
            // Chord iteration: new residual against frozen factors.
            ++stat_chord_iters;
            chord_iter = true;
            assemble(x, time, source_scale, dt, x_prev, nullptr,
                     residual);
        }

        // Residual inf-norm at the iterate (observability only; the
        // O(n) scan is skipped entirely on unobserved solves).
        double residual_norm = 0.0;
        if (observing)
            for (std::size_t i = 0; i < unknowns; ++i)
                residual_norm =
                    std::max(residual_norm, std::abs(residual[i]));

        // Solve J * delta = residual; update is x -= delta.
        std::vector<double> delta = residual;
        lu.solve(delta);

        double max_update = 0.0;
        for (std::size_t i = 0; i < unknowns; ++i) {
            double step = delta[i];
            // Clamp only voltage unknowns; branch currents may jump.
            if (i < numNodeUnknowns)
                step = std::clamp(step, -cfg.maxStep, cfg.maxStep);
            x[i] -= step;
            if (i < numNodeUnknowns)
                max_update = std::max(max_update, std::abs(step));
        }

        if (observing) {
            probe.iteration(iter, residual_norm, max_update,
                            chord_iter);
            if (telemetry != nullptr)
                telemetry->samples.push_back(
                    {iter, residual_norm, max_update, chord_iter});
        }

        if (max_update < cfg.tolerance) {
            stat_iter_hist.sample(static_cast<double>(iter + 1));
            probe.finish(true);
            if (telemetry != nullptr)
                telemetry->converged = true;
            return true;
        }

        // Refresh the Jacobian when the frozen one converges slowly
        // (linear rate worse than chordRefreshRatio per iteration).
        if (cfg.chord && iter > 0 &&
            max_update > cfg.chordRefreshRatio * prev_update) {
            refresh = true;
            ++stat_refreshes;
            probe.jacobianRefresh();
            if (telemetry != nullptr)
                ++telemetry->jacobianRefreshes;
        }
        prev_update = max_update;
    }
    ++stat_failures;
    dump_failure("newton_max_iterations");
    probe.finish(false);
    if (telemetry != nullptr)
        telemetry->converged = false;
    return false;
}

} // namespace otft::circuit
