/**
 * @file
 * Modified nodal analysis core shared by the DC and transient engines.
 *
 * Unknown vector layout: node voltages for nodes 1..N-1 (ground is
 * eliminated) followed by one branch current per voltage source. The
 * nonlinear system F(x) = 0 collects KCL residuals at each node plus
 * the source branch equations; Newton-Raphson with per-component step
 * limiting and a small gmin-to-ground conductance solves it.
 */

#ifndef OTFT_CIRCUIT_MNA_HPP
#define OTFT_CIRCUIT_MNA_HPP

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/linear_solver.hpp"
#include "util/diag.hpp"

namespace otft::circuit {

/** Newton-Raphson controls. */
struct NewtonConfig
{
    /** Leak conductance from every node to ground, siemens. */
    double gmin = 1e-12;
    /** Maximum Newton iterations per solve. */
    int maxIterations = 300;
    /** Convergence threshold on the max voltage update, volts. */
    double tolerance = 1e-7;
    /** Per-component update clamp, volts (damping). */
    double maxStep = 2.0;
    /**
     * Chord (modified) Newton: reuse the factored Jacobian across
     * iterations while convergence is fast, re-assembling only the
     * residual (which skips the gm/gds finite differences and the LU
     * factorization). The Jacobian is refreshed automatically when
     * the update shrinks slower than chordRefreshRatio per iteration,
     * so strongly nonlinear solves degrade gracefully to full Newton.
     */
    bool chord = true;
    /**
     * Refresh trigger: when max_update > ratio * previous max_update
     * under frozen factors, the next iteration rebuilds the Jacobian.
     */
    double chordRefreshRatio = 0.5;
    /**
     * Singular-Jacobian recovery: when a fresh factorization is
     * singular (e.g. a floating node with gmin disabled), retry once
     * with this extra conductance on the node diagonals. 0 disables
     * recovery (the solve then fails as before).
     */
    double singularGminBoost = 1e-9;
};

/** A solution vector (node voltages + source branch currents). */
using Solution = std::vector<double>;

/**
 * The Jacobian sparsity pattern of a circuit: every flattened entry
 * (row * n + col, n = nodes - 1 + voltage sources) that an MNA
 * assembly can write — gmin diagonals, conductance quads for
 * resistors/capacitors, source coupling entries, FET stamps — sorted
 * and deduplicated. Used for pattern-aware zeroing between Newton
 * stamps (Matrix::zeroEntries) in both the scalar and the batched
 * engine.
 */
std::vector<std::uint32_t> stampPattern(const Circuit &circuit);

/**
 * Full per-iteration telemetry for one Newton solve, filled when a
 * caller passes it to solveNewton(). Unlike the diag::SolveProbe ring
 * (last 64 iterations, published to the process-wide collector), this
 * keeps every iteration and stays local to the caller — diag_replay
 * uses it to print the complete convergence history of a dumped solve.
 */
struct NewtonTelemetry
{
    std::vector<diag::IterationSample> samples;
    int jacobianRefreshes = 0;
    int singularRecoveries = 0;
    bool converged = false;
};

/** The assembled MNA problem for one circuit. */
class Mna
{
  public:
    explicit Mna(const Circuit &circuit, NewtonConfig config = {});

    /** Number of unknowns (nodes - 1 + voltage sources). */
    std::size_t numUnknowns() const { return unknowns; }

    /** A zero-initialized solution vector. */
    Solution zeroSolution() const { return Solution(unknowns, 0.0); }

    /**
     * Run Newton-Raphson to convergence.
     * @param x in: initial guess; out: solution on success
     * @param time waveform evaluation time for sources
     * @param source_scale multiplier on all independent sources
     *        (used by source-stepping homotopy)
     * @param dt backward-Euler step; <= 0 disables capacitor stamps
     *        (DC analysis)
     * @param x_prev previous-timestep solution for companion models;
     *        required when dt > 0
     * @return true on convergence
     */
    bool solveNewton(Solution &x, double time, double source_scale,
                     double dt, const Solution *x_prev) const;

    /**
     * As above, additionally filling `telemetry` (when non-null) with
     * every iteration's residual/update norms and chord decision. The
     * iteration sequence is unchanged — telemetry only observes.
     */
    bool solveNewton(Solution &x, double time, double source_scale,
                     double dt, const Solution *x_prev,
                     NewtonTelemetry *telemetry) const;

    /** Voltage of a node in a solution. */
    double nodeVoltage(const Solution &x, NodeId node) const;

    /**
     * Branch current of a voltage source (flows from the positive
     * terminal through the source to the negative terminal externally,
     * i.e. the current delivered into the circuit at `pos`).
     */
    double sourceCurrent(const Solution &x, SourceId source) const;

    const Circuit &circuit() const { return ckt; }
    const NewtonConfig &config() const { return cfg; }

  private:
    /** Row/column index of a node, or -1 for ground. */
    int nodeIndex(NodeId node) const { return node - 1; }

    /**
     * Assemble the residual at the current iterate, and the Jacobian
     * too when `jac` is non-null. Chord iterations pass null and skip
     * the per-device gm/gds finite differences entirely.
     */
    void assemble(const Solution &x, double time, double source_scale,
                  double dt, const Solution *x_prev, Matrix *jac,
                  std::vector<double> &residual) const;

    const Circuit &ckt;
    NewtonConfig cfg;
    std::size_t numNodeUnknowns;
    std::size_t unknowns;
    /** Flattened Jacobian entries assemble() writes (sorted). */
    std::vector<std::uint32_t> pattern_;
};

} // namespace otft::circuit

#endif // OTFT_CIRCUIT_MNA_HPP
