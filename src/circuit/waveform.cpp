#include "circuit/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace otft::circuit {

Pwl
Pwl::constant(double value)
{
    Pwl p;
    p.ts = {0.0};
    p.vs = {value};
    return p;
}

Pwl
Pwl::ramp(double v0, double v1, double t_start, double t_ramp)
{
    Pwl p;
    p.ts = {t_start, t_start + t_ramp};
    p.vs = {v0, v1};
    return p;
}

Pwl
Pwl::pulse(double v0, double v1, double t_start, double t_ramp,
           double t_width)
{
    Pwl p;
    p.ts = {t_start, t_start + t_ramp, t_start + t_ramp + t_width,
            t_start + 2.0 * t_ramp + t_width};
    p.vs = {v0, v1, v1, v0};
    return p;
}

Pwl
Pwl::points(std::vector<double> ts, std::vector<double> vs)
{
    if (ts.size() != vs.size() || ts.empty())
        fatal("Pwl::points: mismatched or empty breakpoints");
    for (std::size_t i = 1; i < ts.size(); ++i)
        if (ts[i] < ts[i - 1])
            fatal("Pwl::points: times must be non-decreasing");
    Pwl p;
    p.ts = std::move(ts);
    p.vs = std::move(vs);
    return p;
}

double
Pwl::at(double t) const
{
    return interpolate(ts, vs, t);
}

std::vector<double>
Trace::crossings(double level, bool rising) const
{
    std::vector<double> out;
    for (std::size_t i = 0; i + 1 < time.size(); ++i) {
        const double a = value[i] - level;
        const double b = value[i + 1] - level;
        const bool crosses = rising ? (a < 0.0 && b >= 0.0)
                                    : (a > 0.0 && b <= 0.0);
        if (crosses) {
            const double t = a / (a - b);
            out.push_back(time[i] + t * (time[i + 1] - time[i]));
        }
    }
    return out;
}

double
Trace::firstCrossing(double level, bool rising, double t_min) const
{
    for (double t : crossings(level, rising))
        if (t >= t_min)
            return t;
    return -1.0;
}

double
Trace::at(double t) const
{
    return interpolate(time, value, t);
}

double
measureSlew(const Trace &trace, double v_low, double v_high,
            double frac_lo, double frac_hi, bool rising, double t_min)
{
    const double swing = v_high - v_low;
    const double lvl_lo = v_low + frac_lo * swing;
    const double lvl_hi = v_low + frac_hi * swing;
    double t_a, t_b;
    if (rising) {
        t_a = trace.firstCrossing(lvl_lo, true, t_min);
        if (t_a < 0.0)
            return -1.0;
        t_b = trace.firstCrossing(lvl_hi, true, t_a);
    } else {
        t_a = trace.firstCrossing(lvl_hi, false, t_min);
        if (t_a < 0.0)
            return -1.0;
        t_b = trace.firstCrossing(lvl_lo, false, t_a);
    }
    if (t_b < 0.0)
        return -1.0;
    return t_b - t_a;
}

double
measureDelay(const Trace &input, const Trace &output, double in_lo,
             double in_hi, bool in_rising, double out_lo, double out_hi,
             bool out_rising, double t_min)
{
    const double in_mid = 0.5 * (in_lo + in_hi);
    const double out_mid = 0.5 * (out_lo + out_hi);
    const double t_in = input.firstCrossing(in_mid, in_rising, t_min);
    if (t_in < 0.0)
        return -1.0;
    const double t_out = output.firstCrossing(out_mid, out_rising, t_in);
    if (t_out < 0.0)
        return -1.0;
    return t_out - t_in;
}

} // namespace otft::circuit
