/**
 * @file
 * DC operating point and DC sweep analyses.
 *
 * The DC engine solves the nonlinear operating point with
 * Newton-Raphson, falling back to source-stepping homotopy (ramping
 * all independent sources from zero) when a cold start fails — the
 * same strategy SPICE uses. Sweeps warm-start each point from its
 * neighbor, which is what makes the strongly nonlinear unipolar OTFT
 * inverter VTCs solvable quickly.
 */

#ifndef OTFT_CIRCUIT_DC_HPP
#define OTFT_CIRCUIT_DC_HPP

#include <vector>

#include "circuit/mna.hpp"

namespace otft::circuit {

/** Result of a DC sweep: one solution per sweep value. */
struct SweepResult
{
    /** The swept source values. */
    std::vector<double> values;
    /** The converged solution at each sweep point. */
    std::vector<Solution> solutions;
};

/**
 * DC analyses over one circuit. Holds a mutable reference because
 * sweeps temporarily rebind the swept source's waveform (it is
 * restored before the sweep returns).
 */
class DcAnalysis
{
  public:
    explicit DcAnalysis(Circuit &circuit, NewtonConfig config = {});

    /**
     * Solve the DC operating point (sources at their t = 0 values).
     * Throws FatalError if the homotopy also fails to converge.
     */
    Solution operatingPoint() const;

    /** Operating point warm-started from a previous solution. */
    Solution operatingPoint(const Solution &initial_guess) const;

    /**
     * Sweep the given voltage source across `values`, warm-starting
     * each point. All other sources stay at their t = 0 values.
     */
    SweepResult sweepSource(SourceId source,
                            const std::vector<double> &values) const;

    /** Voltage of a node in a solution. */
    double
    nodeVoltage(const Solution &x, NodeId node) const
    {
        return mna.nodeVoltage(x, node);
    }

    /** Branch current delivered by a voltage source. */
    double
    sourceCurrent(const Solution &x, SourceId source) const
    {
        return mna.sourceCurrent(x, source);
    }

    /**
     * Total power delivered by all voltage sources in a solution,
     * watts (positive = dissipated in the circuit).
     */
    double totalSourcePower(const Solution &x) const;

    const Mna &system() const { return mna; }

  private:
    Circuit &ckt;
    Mna mna;
};

} // namespace otft::circuit

#endif // OTFT_CIRCUIT_DC_HPP
