#include "circuit/dump.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "device/level1_model.hpp"
#include "device/level61_model.hpp"
#include "device/silicon_mosfet.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/result_cache.hpp"
#include "util/stats_registry.hpp"

namespace otft::circuit::dump {

namespace {

/**
 * Doubles serialize via %.17g, which round-trips binary64 exactly —
 * the replay contract depends on it. JSON has no NaN/Inf literals, so
 * non-finite values become the quoted strings "NaN"/"Inf"/"-Inf"
 * (unlike telemetry, a forensics artifact must not launder a NaN
 * operating point into a 0).
 */
void
appendNumber(std::ostringstream &oss, double v)
{
    if (std::isnan(v)) {
        oss << "\"NaN\"";
        return;
    }
    if (std::isinf(v)) {
        oss << (v > 0.0 ? "\"Inf\"" : "\"-Inf\"");
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    oss << buf;
}

void
appendNumberArray(std::ostringstream &oss,
                  const std::vector<double> &vs)
{
    oss << "[";
    for (std::size_t i = 0; i < vs.size(); ++i) {
        oss << (i ? "," : "");
        appendNumber(oss, vs[i]);
    }
    oss << "]";
}

/** Inverse of appendNumber: accept a number or a NaN/Inf string. */
double
numberOf(const json::Value &v)
{
    if (v.isNumber())
        return v.asNumber();
    if (v.isString()) {
        const std::string &s = v.asString();
        if (s == "NaN")
            return std::numeric_limits<double>::quiet_NaN();
        if (s == "Inf")
            return std::numeric_limits<double>::infinity();
        if (s == "-Inf")
            return -std::numeric_limits<double>::infinity();
    }
    fatal("diag dump: expected a number, got ", toString(v.kind()));
}

std::vector<double>
numberArrayOf(const json::Value &v)
{
    std::vector<double> out;
    for (const json::Value &item : v.asArray())
        out.push_back(numberOf(item));
    return out;
}

/**
 * Parameters of each model family in a fixed order, so a dump is a
 * stable array rather than a name soup. Extending a params struct
 * means extending the matching list here (the reader is positional).
 */
std::vector<double>
modelParams(const device::TransistorModel &model)
{
    const std::string kind = model.name();
    if (kind == "level1") {
        const auto &p =
            static_cast<const device::Level1Model &>(model).params();
        return {p.vt, p.u0, p.lambda};
    }
    if (kind == "level61") {
        const auto &p =
            static_cast<const device::Level61Model &>(model).params();
        return {p.vt0, p.vdsRef, p.dibl, p.diblVmax, p.u0, p.gamma,
                p.vaa, p.ss, p.mSat, p.alphaSat, p.lambda, p.iOff};
    }
    if (kind == "silicon") {
        const auto &p =
            static_cast<const device::SiliconMosfetModel &>(model)
                .params();
        return {p.vt, p.u0, p.alpha, p.kv, p.lambda, p.ss, p.iOff};
    }
    fatal("diag dump: unserializable model kind '", kind, "'");
}

device::TransistorModelPtr
rebuildModel(const std::string &kind, device::Polarity polarity,
             const device::Geometry &geometry,
             const std::vector<double> &p)
{
    const auto need = [&](std::size_t n) {
        if (p.size() != n)
            fatal("diag dump: model '", kind, "' expects ", n,
                  " params, got ", p.size());
    };
    if (kind == "level1") {
        need(3);
        device::Level1Params params;
        params.vt = p[0];
        params.u0 = p[1];
        params.lambda = p[2];
        return std::make_shared<device::Level1Model>(polarity, geometry,
                                                     params);
    }
    if (kind == "level61") {
        need(12);
        device::Level61Params params;
        params.vt0 = p[0];
        params.vdsRef = p[1];
        params.dibl = p[2];
        params.diblVmax = p[3];
        params.u0 = p[4];
        params.gamma = p[5];
        params.vaa = p[6];
        params.ss = p[7];
        params.mSat = p[8];
        params.alphaSat = p[9];
        params.lambda = p[10];
        params.iOff = p[11];
        return std::make_shared<device::Level61Model>(polarity,
                                                      geometry, params);
    }
    if (kind == "silicon") {
        need(7);
        device::SiliconParams params;
        params.vt = p[0];
        params.u0 = p[1];
        params.alpha = p[2];
        params.kv = p[3];
        params.lambda = p[4];
        params.ss = p[5];
        params.iOff = p[6];
        return std::make_shared<device::SiliconMosfetModel>(
            polarity, geometry, params);
    }
    fatal("diag dump: unknown model kind '", kind, "'");
}

} // namespace

std::string
serializeDump(const Circuit &circuit, const NewtonConfig &config,
              const Solution &x0, diag::SolveKind kind, double time,
              double source_scale, double dt, const Solution *x_prev,
              const std::string &reason, const std::string &context,
              const std::map<std::string, double> &attributes,
              const std::vector<diag::IterationSample> &trace)
{
    std::ostringstream oss;
    oss << "{\n";
    oss << "  \"schema\": \"" << dumpSchema << "\",\n";
    oss << "  \"reason\": \"" << json::escape(reason) << "\",\n";
    oss << "  \"context\": \"" << json::escape(context) << "\",\n";

    oss << "  \"attributes\": {";
    bool first = true;
    for (const auto &[key, value] : attributes) {
        oss << (first ? "" : ", ") << "\"" << json::escape(key)
            << "\": ";
        appendNumber(oss, value);
        first = false;
    }
    oss << "},\n";

    oss << "  \"solve\": {\"kind\": \"" << diag::toString(kind)
        << "\", \"time\": ";
    appendNumber(oss, time);
    oss << ", \"source_scale\": ";
    appendNumber(oss, source_scale);
    oss << ", \"dt\": ";
    appendNumber(oss, dt);
    oss << "},\n";

    oss << "  \"newton\": {\"gmin\": ";
    appendNumber(oss, config.gmin);
    oss << ", \"max_iterations\": " << config.maxIterations
        << ", \"tolerance\": ";
    appendNumber(oss, config.tolerance);
    oss << ", \"max_step\": ";
    appendNumber(oss, config.maxStep);
    oss << ", \"chord\": " << (config.chord ? "true" : "false")
        << ", \"chord_refresh_ratio\": ";
    appendNumber(oss, config.chordRefreshRatio);
    oss << ", \"singular_gmin_boost\": ";
    appendNumber(oss, config.singularGminBoost);
    oss << "},\n";

    oss << "  \"circuit\": {\n";
    oss << "    \"nodes\": [";
    for (std::size_t n = 0; n < circuit.numNodes(); ++n)
        oss << (n ? ", " : "") << "\""
            << json::escape(circuit.nodeName(static_cast<NodeId>(n)))
            << "\"";
    oss << "],\n";

    oss << "    \"resistors\": [";
    first = true;
    for (const auto &r : circuit.resistors()) {
        oss << (first ? "" : ", ") << "[" << r.a << "," << r.b << ",";
        appendNumber(oss, r.resistance);
        oss << "]";
        first = false;
    }
    oss << "],\n";

    oss << "    \"capacitors\": [";
    first = true;
    for (const auto &c : circuit.capacitors()) {
        oss << (first ? "" : ", ") << "[" << c.a << "," << c.b << ",";
        appendNumber(oss, c.capacitance);
        oss << "]";
        first = false;
    }
    oss << "],\n";

    oss << "    \"vsources\": [";
    first = true;
    for (const auto &s : circuit.voltageSources()) {
        oss << (first ? "" : ", ") << "{\"pos\": " << s.pos
            << ", \"neg\": " << s.neg << ", \"ts\": ";
        appendNumberArray(oss, s.wave.breakpoints());
        oss << ", \"vs\": ";
        appendNumberArray(oss, s.wave.values());
        oss << "}";
        first = false;
    }
    oss << "],\n";

    oss << "    \"isources\": [";
    first = true;
    for (const auto &s : circuit.currentSources()) {
        oss << (first ? "" : ", ") << "[" << s.pos << "," << s.neg
            << ",";
        appendNumber(oss, s.current);
        oss << "]";
        first = false;
    }
    oss << "],\n";

    oss << "    \"fets\": [";
    first = true;
    for (const auto &fet : circuit.fets()) {
        const device::Geometry &g = fet.model->geometry();
        oss << (first ? "" : ", ") << "{\"model\": \""
            << json::escape(fet.model->name()) << "\", \"polarity\": \""
            << device::toString(fet.model->polarity())
            << "\", \"name\": \"" << json::escape(fet.name)
            << "\", \"d\": " << fet.drain << ", \"g\": " << fet.gate
            << ", \"s\": " << fet.source << ", \"geometry\": ";
        appendNumberArray(oss, {g.w, g.l, g.ci});
        oss << ", \"params\": ";
        appendNumberArray(oss, modelParams(*fet.model));
        oss << "}";
        first = false;
    }
    oss << "]\n  },\n";

    oss << "  \"x0\": ";
    appendNumberArray(oss, x0);
    oss << ",\n";
    if (x_prev != nullptr) {
        oss << "  \"x_prev\": ";
        appendNumberArray(oss, *x_prev);
        oss << ",\n";
    }

    oss << "  \"trace\": [";
    first = true;
    for (const auto &s : trace) {
        oss << (first ? "" : ", ") << "[" << s.iteration << ",";
        appendNumber(oss, s.residualNorm);
        oss << ",";
        appendNumber(oss, s.maxUpdate);
        oss << "," << (s.chord ? 1 : 0) << "]";
        first = false;
    }
    oss << "]\n}\n";
    return oss.str();
}

std::string
writeFailureDump(const Circuit &circuit, const NewtonConfig &config,
                 const Solution &x0, diag::SolveKind kind, double time,
                 double source_scale, double dt,
                 const Solution *x_prev, const std::string &reason,
                 const std::vector<diag::IterationSample> &trace)
{
    auto &collector = diag::Collector::instance();
    if (!collector.dumpsEnabled())
        return "";

    std::string body;
    try {
        body = serializeDump(circuit, config, x0, kind, time,
                             source_scale, dt, x_prev, reason,
                             diag::ScopedContext::current(),
                             collector.attributes(), trace);
    } catch (const FatalError &e) {
        // Diagnostics must never take down the run they diagnose.
        warn("diag dump skipped: ", e.what());
        return "";
    }

    cache::KeyHasher hasher;
    hasher.add("otft-diag-dump-v1");
    hasher.add(body);
    char name[40];
    std::snprintf(name, sizeof(name), "dump_%016llx.json",
                  static_cast<unsigned long long>(hasher.digest()));
    const std::string path = collector.dumpDirectory() + "/" + name;

    if (!collector.recordDump(path))
        return ""; // per-process cap reached

    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
        std::ofstream out(path);
        if (!out) {
            warn("diag dump: cannot write '", path, "'");
            return "";
        }
        out << body;
        static stats::Counter &stat_dumps = stats::counter(
            "diag.dumps_written", "failure forensics dumps written");
        ++stat_dumps;
        inform("diag: wrote failure dump ", path, " (", reason, ")");
    }
    return path;
}

FailureDump
parseFailureDump(const std::string &text)
{
    const json::Value doc = json::parse(text);
    if (doc.string("schema") != dumpSchema)
        fatal("diag dump: schema mismatch, expected '", dumpSchema,
              "', got '", doc.string("schema"), "'");

    FailureDump out;
    out.reason = doc.string("reason");
    out.context = doc.string("context");
    for (const auto &[key, value] : doc.at("attributes").asObject())
        out.attributes[key] = numberOf(value);

    const json::Value &solve = doc.at("solve");
    out.kind = solve.string("kind") == "dc"
                   ? diag::SolveKind::Dc
                   : diag::SolveKind::TransientStep;
    out.time = numberOf(solve.at("time"));
    out.sourceScale = numberOf(solve.at("source_scale"));
    out.dt = numberOf(solve.at("dt"));

    const json::Value &newton = doc.at("newton");
    out.config.gmin = numberOf(newton.at("gmin"));
    out.config.maxIterations =
        static_cast<int>(numberOf(newton.at("max_iterations")));
    out.config.tolerance = numberOf(newton.at("tolerance"));
    out.config.maxStep = numberOf(newton.at("max_step"));
    out.config.chord = newton.at("chord").asBool();
    out.config.chordRefreshRatio =
        numberOf(newton.at("chord_refresh_ratio"));
    out.config.singularGminBoost =
        numberOf(newton.at("singular_gmin_boost"));

    const json::Value &ckt = doc.at("circuit");
    const auto &nodes = ckt.at("nodes").asArray();
    if (nodes.empty())
        fatal("diag dump: circuit has no nodes");
    // The Circuit constructor creates ground (index 0) itself.
    for (std::size_t n = 1; n < nodes.size(); ++n)
        out.circuit.addNode(nodes[n].asString());

    for (const json::Value &r : ckt.at("resistors").asArray()) {
        const auto v = numberArrayOf(r);
        out.circuit.addResistor(static_cast<NodeId>(v.at(0)),
                                static_cast<NodeId>(v.at(1)), v.at(2));
    }
    for (const json::Value &c : ckt.at("capacitors").asArray()) {
        const auto v = numberArrayOf(c);
        out.circuit.addCapacitor(static_cast<NodeId>(v.at(0)),
                                 static_cast<NodeId>(v.at(1)), v.at(2));
    }
    for (const json::Value &s : ckt.at("vsources").asArray()) {
        out.circuit.addVoltageSource(
            static_cast<NodeId>(s.number("pos")),
            static_cast<NodeId>(s.number("neg")),
            Pwl::points(numberArrayOf(s.at("ts")),
                        numberArrayOf(s.at("vs"))));
    }
    for (const json::Value &s : ckt.at("isources").asArray()) {
        const auto v = numberArrayOf(s);
        out.circuit.addCurrentSource(static_cast<NodeId>(v.at(0)),
                                     static_cast<NodeId>(v.at(1)),
                                     v.at(2));
    }
    for (const json::Value &f : ckt.at("fets").asArray()) {
        const auto geom = numberArrayOf(f.at("geometry"));
        if (geom.size() != 3)
            fatal("diag dump: fet geometry needs [w, l, ci]");
        device::Geometry geometry;
        geometry.w = geom[0];
        geometry.l = geom[1];
        geometry.ci = geom[2];
        const device::Polarity polarity =
            f.string("polarity") == "n" ? device::Polarity::NType
                                        : device::Polarity::PType;
        out.circuit.addFet(
            rebuildModel(f.string("model"), polarity, geometry,
                         numberArrayOf(f.at("params"))),
            static_cast<NodeId>(f.number("d")),
            static_cast<NodeId>(f.number("g")),
            static_cast<NodeId>(f.number("s")), f.string("name"));
    }

    out.x0 = numberArrayOf(doc.at("x0"));
    if (doc.has("x_prev")) {
        out.hasPrev = true;
        out.xPrev = numberArrayOf(doc.at("x_prev"));
    }

    for (const json::Value &s : doc.at("trace").asArray()) {
        const auto v = numberArrayOf(s);
        if (v.size() != 4)
            fatal("diag dump: trace rows are "
                  "[iter, residual, update, chord]");
        out.trace.push_back({static_cast<int>(v[0]), v[1], v[2],
                             v[3] != 0.0});
    }
    return out;
}

FailureDump
readFailureDump(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("diag dump: cannot open '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();
    return parseFailureDump(text.str());
}

ReplayResult
replayDump(const FailureDump &dump)
{
    const Mna mna(dump.circuit, dump.config);
    if (dump.x0.size() != mna.numUnknowns())
        fatal("diag dump: x0 has ", dump.x0.size(), " entries, circuit "
              "needs ", mna.numUnknowns());
    if (dump.dt > 0.0 && !dump.hasPrev)
        fatal("diag dump: transient replay requires x_prev");

    ReplayResult result;
    result.solution = dump.x0;
    NewtonTelemetry telemetry;
    result.converged = mna.solveNewton(
        result.solution, dump.time, dump.sourceScale, dump.dt,
        dump.hasPrev ? &dump.xPrev : nullptr, &telemetry);
    result.trace = std::move(telemetry.samples);
    return result;
}

} // namespace otft::circuit::dump
