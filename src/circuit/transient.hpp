/**
 * @file
 * Transient analysis with backward-Euler integration.
 *
 * Backward Euler is L-stable, which matters here: unipolar OTFT cells
 * have decades of conductance spread between on and off devices and
 * trapezoidal integration rings on such stiff systems. Steps are
 * fixed-size with extra steps inserted at source waveform breakpoints
 * so ramps start and stop exactly on a solver step.
 */

#ifndef OTFT_CIRCUIT_TRANSIENT_HPP
#define OTFT_CIRCUIT_TRANSIENT_HPP

#include <vector>

#include "circuit/dc.hpp"
#include "circuit/mna.hpp"
#include "circuit/waveform.hpp"

namespace otft::circuit {

/** Transient run controls. */
struct TransientConfig
{
    /** Simulation end time, seconds. */
    double tStop = 1.0;
    /** Base time step, seconds. */
    double dt = 1e-3;
    /** Newton controls for each step. */
    NewtonConfig newton = {};
};

/** Sampled node voltages and source currents over a transient run. */
class TransientResult
{
  public:
    TransientResult(std::vector<double> time,
                    std::vector<std::vector<double>> node_v,
                    std::vector<std::vector<double>> source_i);

    /** Voltage trace of a node. */
    Trace node(NodeId node) const;

    /** Branch current trace of a voltage source. */
    Trace source(SourceId source) const;

    /** The shared timebase. */
    const std::vector<double> &time() const { return time_; }

    /**
     * Energy delivered by a voltage source over [t0, t1], joules
     * (trapezoidal integral of v * i).
     */
    double sourceEnergy(SourceId source, double v_value, double t0,
                        double t1) const;

  private:
    std::vector<double> time_;
    /** nodeV[node][sample]; index 0 is ground (all zeros). */
    std::vector<std::vector<double>> nodeV;
    /** sourceI[source][sample]. */
    std::vector<std::vector<double>> sourceI;
};

/** Transient engine over one circuit. */
class TransientAnalysis
{
  public:
    explicit TransientAnalysis(Circuit &circuit);

    /**
     * Run from a DC operating point at t = 0 to config.tStop.
     * Throws FatalError if any step fails to converge after step-size
     * reduction.
     */
    TransientResult run(const TransientConfig &config) const;

  private:
    Circuit &ckt;
};

} // namespace otft::circuit

#endif // OTFT_CIRCUIT_TRANSIENT_HPP
