/**
 * @file
 * Transient analysis with backward-Euler integration.
 *
 * Backward Euler is L-stable, which matters here: unipolar OTFT cells
 * have decades of conductance spread between on and off devices and
 * trapezoidal integration rings on such stiff systems.
 *
 * Two stepping modes:
 *
 *  - adaptive (default): the local truncation error of each BE step
 *    is estimated from divided differences of the last three accepted
 *    solutions (LTE ~ h^2/2 * v''); steps whose worst-node LTE
 *    exceeds `lteTol` are rejected and retried smaller, and accepted
 *    steps grow the next step by up to 2x. Steps always land exactly
 *    on source-waveform breakpoints (and restart their error history
 *    there, where the input derivative is discontinuous), so ramps
 *    start and stop on a solver step just like the fixed grid.
 *
 *  - fixed (`fixedStep = true`): the original uniform grid at `dt`
 *    with breakpoints inserted, bit-for-bit identical to the
 *    historical engine; the reference for accuracy tests and for any
 *    trajectory that predates adaptive stepping.
 */

#ifndef OTFT_CIRCUIT_TRANSIENT_HPP
#define OTFT_CIRCUIT_TRANSIENT_HPP

#include <vector>

#include "circuit/dc.hpp"
#include "circuit/mna.hpp"
#include "circuit/waveform.hpp"

namespace otft::circuit {

/** Transient run controls. */
struct TransientConfig
{
    /** Simulation end time, seconds. */
    double tStop = 1.0;
    /**
     * Base time step, seconds. Fixed mode steps at exactly dt;
     * adaptive mode starts each waveform segment at dt and derives
     * its step bounds from it when dtMin/dtMax are unset.
     */
    double dt = 1e-3;
    /** Newton controls for each step. */
    NewtonConfig newton = {};

    /** Integrate on the historical uniform grid (no LTE control). */
    bool fixedStep = false;
    /**
     * Per-step local truncation error target, volts (worst node).
     * The global waveform error stays within a small multiple of
     * this; see DESIGN.md "Solver accuracy/speed contract".
     */
    double lteTol = 2e-3;
    /** Smallest adaptive step; 0 derives dt / 256. */
    double dtMin = 0.0;
    /** Largest adaptive step; 0 derives dt * 64. */
    double dtMax = 0.0;
};

/** Sampled node voltages and source currents over a transient run. */
class TransientResult
{
  public:
    TransientResult(std::vector<double> time,
                    std::vector<std::vector<double>> node_v,
                    std::vector<std::vector<double>> source_i);

    /** Voltage trace of a node. */
    Trace node(NodeId node) const;

    /** Branch current trace of a voltage source. */
    Trace source(SourceId source) const;

    /** The shared timebase. */
    const std::vector<double> &time() const { return time_; }

    /**
     * Energy delivered by a voltage source over [t0, t1], joules
     * (trapezoidal integral of v * i).
     */
    double sourceEnergy(SourceId source, double v_value, double t0,
                        double t1) const;

  private:
    std::vector<double> time_;
    /** nodeV[node][sample]; index 0 is ground (all zeros). */
    std::vector<std::vector<double>> nodeV;
    /** sourceI[source][sample]. */
    std::vector<std::vector<double>> sourceI;
};

/** Transient engine over one circuit. */
class TransientAnalysis
{
  public:
    explicit TransientAnalysis(Circuit &circuit);

    /**
     * Run from a DC operating point at t = 0 to config.tStop.
     * Throws FatalError if any step fails to converge after step-size
     * reduction.
     */
    TransientResult run(const TransientConfig &config) const;

    /**
     * Run with an explicit initial state (the converged t = 0
     * operating point, e.g. a memoized one), skipping the DC solve.
     * The caller must supply a solution of the right size.
     */
    TransientResult run(const TransientConfig &config,
                        const Solution &initial) const;

  private:
    TransientResult integrate(const TransientConfig &config,
                              Solution x) const;
    TransientResult runFixed(const TransientConfig &config, Mna &mna,
                             Solution x) const;
    TransientResult runAdaptive(const TransientConfig &config,
                                Mna &mna, Solution x) const;

    Circuit &ckt;
};

} // namespace otft::circuit

#endif // OTFT_CIRCUIT_TRANSIENT_HPP
