/**
 * @file
 * Time-domain waveforms: piecewise-linear stimulus definitions for
 * sources and sampled output traces with measurement helpers (crossing
 * times, propagation delay, transition slew).
 */

#ifndef OTFT_CIRCUIT_WAVEFORM_HPP
#define OTFT_CIRCUIT_WAVEFORM_HPP

#include <vector>

namespace otft::circuit {

/** Piecewise-linear function of time; constant before/after the ends. */
class Pwl
{
  public:
    /** Constant value for all time. */
    static Pwl constant(double value);

    /**
     * A single linear ramp from v0 to v1 starting at t_start taking
     * t_ramp seconds, holding afterwards.
     */
    static Pwl ramp(double v0, double v1, double t_start, double t_ramp);

    /**
     * A rectangular pulse: v0 until t_start, ramp to v1 over t_ramp,
     * hold for t_width, ramp back, hold v0.
     */
    static Pwl pulse(double v0, double v1, double t_start, double t_ramp,
                     double t_width);

    /** Explicit breakpoints; times must be non-decreasing. */
    static Pwl points(std::vector<double> ts, std::vector<double> vs);

    /** Evaluate at time t. */
    double at(double t) const;

    /** Value at t = 0 (DC operating point). */
    double dc() const { return at(0.0); }

    /** Breakpoint times (used by solvers to align time steps). */
    const std::vector<double> &breakpoints() const { return ts; }

    /** Breakpoint values, parallel to breakpoints() (serialization). */
    const std::vector<double> &values() const { return vs; }

  private:
    std::vector<double> ts;
    std::vector<double> vs;
};

/** A sampled trace of one quantity over time. */
struct Trace
{
    std::vector<double> time;
    std::vector<double> value;

    /**
     * Times at which the trace crosses the level in the given
     * direction (interpolated). rising == true selects low-to-high
     * crossings.
     */
    std::vector<double> crossings(double level, bool rising) const;

    /** First crossing after t_min, or -1 if none. */
    double firstCrossing(double level, bool rising,
                         double t_min = 0.0) const;

    /** Trace value at time t (interpolated, clamped). */
    double at(double t) const;
};

/**
 * Transition time between the two fractional levels (e.g. 0.2/0.8 of
 * swing) around the crossing nearest after t_min.
 * @return the slew in seconds, or -1 if the transition is not found.
 */
double measureSlew(const Trace &trace, double v_low, double v_high,
                   double frac_lo, double frac_hi, bool rising,
                   double t_min = 0.0);

/**
 * Propagation delay from the input crossing 50% to the output crossing
 * 50% (of their respective swings).
 * @return delay in seconds, or -1 if either crossing is missing.
 */
double measureDelay(const Trace &input, const Trace &output,
                    double in_lo, double in_hi, bool in_rising,
                    double out_lo, double out_hi, bool out_rising,
                    double t_min = 0.0);

} // namespace otft::circuit

#endif // OTFT_CIRCUIT_WAVEFORM_HPP
