#include "circuit/dc.hpp"

#include <cmath>

#include "util/diag.hpp"
#include "util/logging.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft::circuit {

DcAnalysis::DcAnalysis(Circuit &circuit, NewtonConfig config)
    : ckt(circuit), mna(circuit, config)
{
}

Solution
DcAnalysis::operatingPoint() const
{
    return operatingPoint(mna.zeroSolution());
}

Solution
DcAnalysis::operatingPoint(const Solution &initial_guess) const
{
    static stats::Counter &stat_solves = stats::counter(
        "circuit.dc.solves", "DC operating points computed");
    static stats::Counter &stat_source_step = stats::counter(
        "circuit.dc.source_stepping",
        "operating points that needed source-stepping homotopy");
    static stats::Counter &stat_gmin_step = stats::counter(
        "circuit.dc.gmin_stepping",
        "operating points that needed gmin stepping");
    OTFT_TRACE_SCOPE("circuit.dc.solve");

    ++stat_solves;
    Solution x = initial_guess;
    if (mna.solveNewton(x, 0.0, 1.0, 0.0, nullptr))
        return x;
    ++stat_source_step;
    diag::recordEvent(diag::Event::SourceStepping);

    // Source-stepping homotopy: ramp all sources from zero with a
    // quadratic schedule (fine steps near zero, where strongly
    // nonlinear circuits are touchiest), warm starting each step.
    bool stepped = true;
    x = mna.zeroSolution();
    constexpr int steps = 60;
    for (int k = 1; k <= steps; ++k) {
        const double frac = static_cast<double>(k) / steps;
        const double scale = frac * frac;
        if (!mna.solveNewton(x, 0.0, scale, 0.0, nullptr)) {
            stepped = false;
            break;
        }
    }
    if (stepped)
        return x;

    // Gmin-stepping fallback: solve with a large leak conductance to
    // ground (which linearizes the system), then relax it toward the
    // configured gmin, warm starting throughout — the same
    // continuation SPICE uses when source stepping fails.
    ++stat_gmin_step;
    diag::recordEvent(diag::Event::GminStepping);
    x = mna.zeroSolution();
    NewtonConfig relaxed = mna.config();
    bool have_solution = false;
    for (double gmin : {1e-3, 1e-5, 1e-7, 1e-9, relaxed.gmin}) {
        NewtonConfig stage_config = mna.config();
        stage_config.gmin = gmin;
        const Mna stage(ckt, stage_config);
        if (!stage.solveNewton(x, 0.0, 1.0, 0.0, nullptr)) {
            have_solution = false;
            break;
        }
        have_solution = true;
    }
    if (have_solution)
        return x;

    fatal("DcAnalysis: Newton, source stepping, and gmin stepping "
          "all failed to converge");
}

SweepResult
DcAnalysis::sweepSource(SourceId source,
                        const std::vector<double> &values) const
{
    const Pwl saved = ckt.voltageSources()[
        static_cast<std::size_t>(source)].wave;

    SweepResult result;
    result.values = values;
    result.solutions.reserve(values.size());

    Solution x = mna.zeroSolution();
    bool have_prev = false;
    for (double v : values) {
        ckt.setSourceWave(source, Pwl::constant(v));
        x = have_prev ? operatingPoint(x) : operatingPoint();
        have_prev = true;
        result.solutions.push_back(x);
    }

    ckt.setSourceWave(source, saved);
    return result;
}

double
DcAnalysis::totalSourcePower(const Solution &x) const
{
    double power = 0.0;
    const auto &vsources = mna.circuit().voltageSources();
    for (std::size_t k = 0; k < vsources.size(); ++k) {
        const double v = vsources[k].wave.dc();
        const double i = mna.sourceCurrent(x, static_cast<SourceId>(k));
        // Current `i` leaves the positive terminal: power delivered by
        // the source is v * i.
        power += v * i;
    }
    return power;
}

} // namespace otft::circuit
