#include "circuit/batch_transient.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "circuit/batch_solver.hpp"
#include "circuit/dump.hpp"
#include "util/diag.hpp"
#include "util/logging.hpp"
#include "util/profiler.hpp"
#include "util/stats_registry.hpp"

namespace otft::circuit {

namespace {

bool
sameNewtonConfig(const NewtonConfig &a, const NewtonConfig &b)
{
    return a.gmin == b.gmin && a.maxIterations == b.maxIterations &&
           a.tolerance == b.tolerance && a.maxStep == b.maxStep &&
           a.chord == b.chord &&
           a.chordRefreshRatio == b.chordRefreshRatio &&
           a.singularGminBoost == b.singularGminBoost;
}

/**
 * Per-lane replica of the scalar runAdaptive() local state. The
 * stepping decisions (breakpoint landing, LTE accept/reject, retry
 * shrink, growth clamp) are verbatim TransientAnalysis::runAdaptive —
 * only the Newton solve itself is delegated to the shared BatchedMna.
 */
struct LaneRun
{
    const BatchTransientSpec *spec = nullptr;
    double dtMin = 0.0;
    double dtMax = 0.0;
    std::vector<double> stops;
    std::size_t nextStop = 0;
    std::size_t attempts = 0;
    std::size_t maxAttempts = 0;
    double t = 0.0;
    double h = 0.0;
    double hPrev = 0.0;
    bool haveHistory = false;
    bool landing = false;
    double tNew = 0.0;
    /** Last accepted solution / its predecessor / the trial solve. */
    Solution x;
    Solution xBefore;
    Solution xNew;
    std::vector<double> times;
    std::vector<std::vector<double>> nodeV;
    std::vector<std::vector<double>> sourceI;
    bool done = false;
};

} // namespace

std::vector<TransientResult>
runTransientBatch(std::vector<BatchTransientSpec> specs)
{
    static stats::Counter &stat_runs = stats::counter(
        "circuit.batch.runs", "batched transient runs executed");
    static stats::Counter &stat_lanes = stats::counter(
        "circuit.batch.lanes", "lanes submitted to batched runs");
    static stats::Counter &stat_retired = stats::counter(
        "circuit.batch.lanes_retired",
        "lanes that ran to completion in the batched engine");
    static stats::Counter &stat_steps = stats::counter(
        "circuit.batch.steps",
        "transient time steps attempted across batched lanes");
    static stats::Counter &stat_retries = stats::counter(
        "circuit.batch.retries",
        "batched time steps retried after a Newton failure");
    static stats::Counter &stat_rejections = stats::counter(
        "circuit.batch.lte_rejections",
        "batched steps rejected for excess local truncation error");

    for (const BatchTransientSpec &s : specs) {
        if (s.circuit == nullptr)
            fatal("runTransientBatch: null circuit in spec");
        if (s.config.tStop <= 0.0 || s.config.dt <= 0.0)
            fatal("TransientAnalysis: tStop and dt must be positive");
    }

    // Batching needs >= 2 adaptive lanes over one topology with one
    // Newton config; anything else degrades to per-spec scalar runs
    // (same results either way — the batch is purely an optimization).
    bool batchable = specs.size() >= 2;
    for (const BatchTransientSpec &s : specs) {
        if (s.config.fixedStep)
            batchable = false;
        if (!sameNewtonConfig(s.config.newton,
                              specs[0].config.newton))
            batchable = false;
        if (!batchCompatible(*s.circuit, *specs[0].circuit))
            batchable = false;
    }
    if (!batchable) {
        std::vector<TransientResult> results;
        results.reserve(specs.size());
        for (const BatchTransientSpec &s : specs)
            results.push_back(TransientAnalysis(*s.circuit)
                                  .run(s.config, s.initial));
        return results;
    }

    ++stat_runs;
    stat_lanes += specs.size();
    prof::FrameGuard prof_frame("batch.transient");

    const std::size_t lanes = specs.size();
    std::vector<const Circuit *> lane_circuits;
    lane_circuits.reserve(lanes);
    for (const BatchTransientSpec &s : specs)
        lane_circuits.push_back(s.circuit);
    BatchedMna mna(std::move(lane_circuits), specs[0].config.newton);

    const std::size_t n_unknowns = mna.numUnknowns();
    const std::size_t n_node_unknowns = mna.numNodeUnknowns();

    std::vector<LaneRun> runs(lanes);
    std::vector<BatchNewtonLane> newton(lanes);

    const auto record = [&](LaneRun &run, double t,
                            const Solution &sol) {
        run.times.push_back(t);
        run.nodeV[0].push_back(0.0); // ground
        for (std::size_t n = 1; n < run.nodeV.size(); ++n)
            run.nodeV[n].push_back(sol[n - 1]);
        for (std::size_t s = 0; s < run.sourceI.size(); ++s)
            run.sourceI[s].push_back(sol[n_node_unknowns + s]);
    };

    for (std::size_t lane = 0; lane < lanes; ++lane) {
        LaneRun &run = runs[lane];
        run.spec = &specs[lane];
        const TransientConfig &cfg = run.spec->config;
        run.dtMin = cfg.dtMin > 0.0 ? cfg.dtMin : cfg.dt / 256.0;
        run.dtMax = std::max(
            run.dtMin, cfg.dtMax > 0.0 ? cfg.dtMax : cfg.dt * 64.0);
        if (cfg.lteTol <= 0.0)
            fatal("TransientAnalysis: lteTol must be positive");

        if (run.spec->initial.size() != n_unknowns)
            fatal("TransientAnalysis: initial state has ",
                  run.spec->initial.size(), " unknowns, circuit needs ",
                  n_unknowns);

        // Mandatory stop times: waveform breakpoints, then tStop.
        std::set<double> stop_set;
        for (const auto &s : run.spec->circuit->voltageSources())
            for (double t : s.wave.breakpoints())
                if (t > 0.0 && t < cfg.tStop)
                    stop_set.insert(t);
        stop_set.insert(cfg.tStop);
        run.stops.assign(stop_set.begin(), stop_set.end());

        // Runaway guard, as in the scalar engine.
        run.maxAttempts =
            4 * static_cast<std::size_t>(cfg.tStop / run.dtMin + 1.0) +
            4 * run.stops.size() + 1024;

        run.h = std::clamp(cfg.dt, run.dtMin, run.dtMax);
        run.x = run.spec->initial;
        run.nodeV.resize(run.spec->circuit->numNodes());
        run.sourceI.resize(
            run.spec->circuit->voltageSources().size());
        record(run, 0.0, run.x);
    }

    // Load one step attempt for a lane into the shared solver.
    const auto start_attempt = [&](std::size_t lane) {
        LaneRun &run = runs[lane];
        const TransientConfig &cfg = run.spec->config;
        if (++run.attempts > run.maxAttempts) {
            // LTE budget exhausted: a reject/shrink loop that never
            // advances. Leave a forensics artifact before bailing.
            dump::writeFailureDump(
                *run.spec->circuit, cfg.newton, run.x,
                diag::SolveKind::TransientStep, run.t, 1.0, run.h,
                run.haveHistory ? &run.xBefore : nullptr,
                "transient_lte_budget", {});
            fatal("TransientAnalysis: adaptive stepping stalled at "
                  "t = ",
                  run.t, " s");
        }

        // Land exactly on the next mandatory stop time.
        const double bp = run.stops[run.nextStop];
        run.landing = false;
        if (run.t + run.h >= bp ||
            bp - (run.t + run.h) < 0.25 * run.dtMin) {
            run.h = bp - run.t;
            run.landing = true;
        }

        ++stat_steps;
        run.tNew = run.landing ? bp : run.t + run.h;
        mna.setLaneX(lane, run.x);
        mna.setLaneXPrev(lane, run.x);
        mna.setLaneStep(lane, run.tNew, 1.0, run.h);
        newton[lane] = BatchNewtonLane{};
        newton[lane].active = true;
    };

    // A lane's Newton solve finished (converged or failed): run the
    // scalar accept/reject/retry logic and either relaunch the lane
    // or retire it.
    const auto newton_done = [&](std::size_t lane) {
        LaneRun &run = runs[lane];
        const TransientConfig &cfg = run.spec->config;

        if (newton[lane].failed) {
            ++stat_retries;
            diag::recordEvent(diag::Event::NewtonRetry);
            if (run.h <= run.dtMin * 1.0000001)
                fatal("TransientAnalysis: Newton failed at t = ",
                      run.tNew, " s with the minimum step");
            run.h = std::max(run.dtMin, 0.5 * run.h);
            start_attempt(lane);
            return;
        }

        mna.getLaneX(lane, run.xNew);

        // LTE estimate once two prior points exist in this segment.
        double growth = 2.0;
        if (run.haveHistory) {
            double err = 0.0;
            for (std::size_t i = 0; i < n_node_unknowns; ++i) {
                const double d1 = (run.xNew[i] - run.x[i]) / run.h;
                const double d0 =
                    (run.x[i] - run.xBefore[i]) / run.hPrev;
                const double lte = run.h * run.h * std::abs(d1 - d0) /
                                   (run.h + run.hPrev);
                err = std::max(err, lte);
            }
            if (err > cfg.lteTol && run.h > run.dtMin * 1.0000001) {
                ++stat_rejections;
                diag::recordEvent(diag::Event::StepReject);
                const double shrink = std::max(
                    0.3, 0.9 * std::sqrt(cfg.lteTol / err));
                run.h = std::max(run.dtMin, run.h * shrink);
                start_attempt(lane);
                return;
            }
            if (err > 0.0)
                growth = std::min(
                    2.0, 0.9 * std::sqrt(cfg.lteTol / err));
        }

        // Accept.
        diag::recordEvent(diag::Event::StepAccept);
        run.xBefore = std::move(run.x);
        run.x = std::move(run.xNew);
        run.hPrev = run.h;
        run.haveHistory = true;
        run.t = run.tNew;
        record(run, run.t, run.x);

        if (run.landing) {
            ++run.nextStop;
            // Input slope is discontinuous across a breakpoint:
            // restart both the difference history and the step size.
            run.haveHistory = false;
            run.h = std::clamp(cfg.dt, run.dtMin, run.dtMax);
        } else {
            run.h = std::clamp(run.h * std::max(growth, 0.1),
                               run.dtMin, run.dtMax);
        }

        if (run.t < cfg.tStop && run.nextStop < run.stops.size()) {
            start_attempt(lane);
        } else {
            run.done = true;
            ++stat_retired;
        }
    };

    for (std::size_t lane = 0; lane < lanes; ++lane)
        start_attempt(lane);

    for (;;) {
        bool any_pending = false;
        for (std::size_t lane = 0; lane < lanes; ++lane)
            any_pending = any_pending || !runs[lane].done;
        if (!any_pending)
            break;
        mna.newtonRound(newton);
        // Dispatch lanes whose solve just reached a terminal state;
        // start_attempt may immediately re-arm them for the next
        // round, so other lanes keep their in-flight iterates.
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            if (runs[lane].done || newton[lane].active)
                continue;
            newton_done(lane);
        }
    }

    std::vector<TransientResult> results;
    results.reserve(lanes);
    for (LaneRun &run : runs)
        results.emplace_back(std::move(run.times),
                             std::move(run.nodeV),
                             std::move(run.sourceI));
    return results;
}

} // namespace otft::circuit
