#include "circuit/circuit.hpp"

#include "util/logging.hpp"

namespace otft::circuit {

Circuit::Circuit()
{
    nodeNames.push_back("gnd");
}

NodeId
Circuit::addNode(const std::string &name)
{
    nodeNames.push_back(name);
    return static_cast<NodeId>(nodeNames.size() - 1);
}

void
Circuit::checkNode(NodeId node) const
{
    if (node < 0 || static_cast<std::size_t>(node) >= nodeNames.size())
        fatal("Circuit: invalid node id ", node);
}

void
Circuit::addResistor(NodeId a, NodeId b, double ohms)
{
    checkNode(a);
    checkNode(b);
    if (ohms <= 0.0)
        fatal("Circuit: resistor must have positive resistance");
    resistors_.push_back({a, b, ohms});
}

void
Circuit::addCapacitor(NodeId a, NodeId b, double farads)
{
    checkNode(a);
    checkNode(b);
    if (farads < 0.0)
        fatal("Circuit: capacitor must have non-negative capacitance");
    capacitors_.push_back({a, b, farads});
}

SourceId
Circuit::addVoltageSource(NodeId pos, NodeId neg, Pwl wave)
{
    checkNode(pos);
    checkNode(neg);
    vsources_.push_back({pos, neg, std::move(wave)});
    return static_cast<SourceId>(vsources_.size() - 1);
}

SourceId
Circuit::addVoltageSource(NodeId pos, NodeId neg, double volts)
{
    return addVoltageSource(pos, neg, Pwl::constant(volts));
}

void
Circuit::addCurrentSource(NodeId pos, NodeId neg, double amps)
{
    checkNode(pos);
    checkNode(neg);
    isources_.push_back({pos, neg, amps});
}

void
Circuit::addFet(device::TransistorModelPtr model, NodeId drain,
                NodeId gate, NodeId source, std::string name)
{
    checkNode(drain);
    checkNode(gate);
    checkNode(source);
    if (!model)
        fatal("Circuit: FET requires a device model");
    fets_.push_back({std::move(model), drain, gate, source,
                     std::move(name)});
}

void
Circuit::setSourceWave(SourceId id, Pwl wave)
{
    if (id < 0 || static_cast<std::size_t>(id) >= vsources_.size())
        fatal("Circuit: invalid voltage source id ", id);
    vsources_[static_cast<std::size_t>(id)].wave = std::move(wave);
}

const std::string &
Circuit::nodeName(NodeId node) const
{
    checkNode(node);
    return nodeNames[static_cast<std::size_t>(node)];
}

} // namespace otft::circuit
