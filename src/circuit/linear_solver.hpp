/**
 * @file
 * Dense linear solver for the circuit simulator.
 *
 * Standard-cell circuits have at most a few dozen nodes, so a dense
 * LU factorization with partial pivoting is both simpler and faster
 * than a sparse solver at this scale.
 */

#ifndef OTFT_CIRCUIT_LINEAR_SOLVER_HPP
#define OTFT_CIRCUIT_LINEAR_SOLVER_HPP

#include <cstddef>
#include <vector>

namespace otft::circuit {

/** Dense row-major square matrix. */
class Matrix
{
  public:
    explicit Matrix(std::size_t n = 0) : n(n), data(n * n, 0.0) {}

    double &at(std::size_t r, std::size_t c) { return data[r * n + c]; }
    double at(std::size_t r, std::size_t c) const { return data[r * n + c]; }

    std::size_t size() const { return n; }

    /** Reset all entries to zero without reallocating. */
    void clear() { std::fill(data.begin(), data.end(), 0.0); }

  private:
    std::size_t n;
    std::vector<double> data;
};

/**
 * Solve A x = b in place via LU with partial pivoting.
 * @param a coefficient matrix; destroyed by the factorization
 * @param b right-hand side; replaced with the solution
 * @return false if the matrix is numerically singular
 */
bool solveLinear(Matrix &a, std::vector<double> &b);

} // namespace otft::circuit

#endif // OTFT_CIRCUIT_LINEAR_SOLVER_HPP
