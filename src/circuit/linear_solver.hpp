/**
 * @file
 * Dense linear solver for the circuit simulator.
 *
 * Standard-cell circuits have at most a few dozen nodes, so a dense
 * LU factorization with partial pivoting is both simpler and faster
 * than a sparse solver at this scale.
 *
 * Two entry points: solveLinear() factors and solves in one shot
 * (destroying its inputs), while LuFactors splits factor() from
 * solve() so one factorization can back many right-hand sides — the
 * workhorse of chord (modified) Newton iterations, where the Jacobian
 * is frozen while only the residual changes.
 */

#ifndef OTFT_CIRCUIT_LINEAR_SOLVER_HPP
#define OTFT_CIRCUIT_LINEAR_SOLVER_HPP

#include <algorithm>
#include <cstddef>
#include <vector>

namespace otft::circuit {

/** Dense row-major square matrix. */
class Matrix
{
  public:
    explicit Matrix(std::size_t n = 0) : n(n), data(n * n, 0.0) {}

    double &at(std::size_t r, std::size_t c) { return data[r * n + c]; }
    double at(std::size_t r, std::size_t c) const { return data[r * n + c]; }

    std::size_t size() const { return n; }

    /** Reset all entries to zero without reallocating. */
    void clear() { std::fill(data.begin(), data.end(), 0.0); }

  private:
    std::size_t n;
    std::vector<double> data;
};

/**
 * Solve A x = b in place via LU with partial pivoting.
 * @param a coefficient matrix; destroyed by the factorization
 * @param b right-hand side; replaced with the solution
 * @return false if the matrix is numerically singular
 */
bool solveLinear(Matrix &a, std::vector<double> &b);

/**
 * A reusable LU factorization (partial pivoting).
 *
 * factor() copies the matrix and factorizes the copy; solve() then
 * applies the stored permutation plus forward/back substitution to
 * any number of right-hand sides without re-factoring. Storage is
 * retained across factor() calls of the same size, so a Newton loop
 * re-factoring in place allocates only once.
 */
class LuFactors
{
  public:
    /**
     * Factor `a`. @return false when numerically singular (a
     * near-zero pivot); the factors are then invalid.
     */
    bool factor(const Matrix &a);

    /** Solve L U x = P b in place; requires valid(). */
    void solve(std::vector<double> &b) const;

    /** @return true after a successful factor(). */
    bool valid() const { return valid_; }

    /** Dimension of the factored system (0 before factor()). */
    std::size_t size() const { return lu.size(); }

    /** Drop the factors (e.g. when the matrix structure changes). */
    void invalidate() { valid_ = false; }

  private:
    Matrix lu{0};
    std::vector<std::size_t> perm;
    bool valid_ = false;
};

} // namespace otft::circuit

#endif // OTFT_CIRCUIT_LINEAR_SOLVER_HPP
