/**
 * @file
 * Dense linear solver for the circuit simulator.
 *
 * Standard-cell circuits have at most a few dozen nodes, so a dense
 * LU factorization with partial pivoting is both simpler and faster
 * than a sparse solver at this scale.
 *
 * Two entry points: solveLinear() factors and solves in one shot
 * (destroying its inputs), while LuFactors splits factor() from
 * solve() so one factorization can back many right-hand sides — the
 * workhorse of chord (modified) Newton iterations, where the Jacobian
 * is frozen while only the residual changes.
 */

#ifndef OTFT_CIRCUIT_LINEAR_SOLVER_HPP
#define OTFT_CIRCUIT_LINEAR_SOLVER_HPP

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace otft::circuit {

/** Dense row-major square matrix. */
class Matrix
{
  public:
    explicit Matrix(std::size_t n = 0) : n(n), data(n * n, 0.0) {}

    double &
    at(std::size_t r, std::size_t c)
    {
        assert(r < n && c < n && "Matrix::at out of range");
        return data[r * n + c];
    }
    double
    at(std::size_t r, std::size_t c) const
    {
        assert(r < n && c < n && "Matrix::at out of range");
        return data[r * n + c];
    }

    std::size_t size() const { return n; }

    /** Raw row-major storage, size() * size() doubles. */
    double *raw() { return data.data(); }
    const double *raw() const { return data.data(); }

    /** Reset all entries to zero without reallocating. */
    void
    clear()
    {
        std::fill(data.begin(), data.end(), 0.0);
        denseDirty_ = false;
    }

    /**
     * Zero only the given flattened entries (index = r * size() + c).
     * With the stamp pattern of an MNA assembly this replaces the
     * O(n^2) clear() by an O(nnz) sweep — valid only while the matrix
     * is not dense-dirty, i.e. every entry outside the pattern is
     * still zero from the last clear()/construction. Callers that
     * restrict their writes to the pattern keep that invariant.
     */
    void
    zeroEntries(const std::vector<std::uint32_t> &entries)
    {
        assert(!denseDirty_ &&
               "Matrix::zeroEntries on a dense-dirty matrix");
        for (const std::uint32_t idx : entries) {
            assert(idx < data.size());
            data[idx] = 0.0;
        }
    }

    /**
     * True when entries outside any stamp pattern may be nonzero
     * (e.g. after swap()); zeroEntries() is then unsound and callers
     * must fall back to clear().
     */
    bool denseDirty() const { return denseDirty_; }

    /**
     * Exchange storage with another matrix without copying. Both
     * matrices become dense-dirty: their contents are whatever the
     * other side held.
     */
    void
    swap(Matrix &other)
    {
        std::swap(n, other.n);
        data.swap(other.data);
        denseDirty_ = true;
        other.denseDirty_ = true;
    }

  private:
    std::size_t n;
    std::vector<double> data;
    bool denseDirty_ = false;
};

/**
 * Solve A x = b in place via LU with partial pivoting.
 * @param a coefficient matrix; destroyed by the factorization
 * @param b right-hand side; replaced with the solution
 * @return false if the matrix is numerically singular
 */
bool solveLinear(Matrix &a, std::vector<double> &b);

/**
 * A reusable LU factorization (partial pivoting).
 *
 * factor() copies the matrix (one contiguous memcpy into retained
 * storage) and factorizes the copy; factorInPlace() skips even that
 * copy by exchanging buffers with the caller's matrix. solve() then
 * applies the stored permutation plus forward/back substitution to
 * any number of right-hand sides without re-factoring. Storage —
 * including the permutation and the solve scratch vector — is
 * retained across calls of the same size, so a Newton loop
 * re-factoring repeatedly allocates only once.
 *
 * Not thread-safe: solve() reuses a member scratch buffer, so a
 * shared LuFactors must not be solved from two threads concurrently
 * (each solver instance owns its own, as the engines do).
 */
class LuFactors
{
  public:
    /**
     * Factor `a`. @return false when numerically singular (a
     * near-zero pivot); the factors are then invalid.
     */
    bool factor(const Matrix &a);

    /**
     * Factor `a` without copying it: the retained factor storage and
     * `a`'s buffer are exchanged and the factorization runs in place.
     * On return `a` holds the previously retained storage with
     * unspecified contents (dense-dirty); callers that need `a`'s
     * values afterwards must use factor(). @return as factor().
     */
    bool factorInPlace(Matrix &a);

    /** Solve L U x = P b in place; requires valid(). */
    void solve(std::vector<double> &b) const;

    /** @return true after a successful factor(). */
    bool valid() const { return valid_; }

    /** Dimension of the factored system (0 before factor()). */
    std::size_t size() const { return lu.size(); }

    /** Drop the factors (e.g. when the matrix structure changes). */
    void invalidate() { valid_ = false; }

  private:
    /** Eliminate the matrix already sitting in `lu`. */
    bool factorStored();

    Matrix lu{0};
    std::vector<std::size_t> perm;
    /** solve() scratch for the permuted RHS (no per-call alloc). */
    mutable std::vector<double> scratch;
    bool valid_ = false;
};

} // namespace otft::circuit

#endif // OTFT_CIRCUIT_LINEAR_SOLVER_HPP
