/**
 * @file
 * Lane-parallel adaptive transient analysis.
 *
 * Runs B same-topology transient problems through one BatchedMna,
 * sharing assembly, factorization, and device evaluation across lanes
 * while every lane executes the exact scalar adaptive-stepping state
 * machine (TransientAnalysis::runAdaptive): same LTE controller, same
 * breakpoint landings, same retry/shrink policy, same failure
 * messages. Lanes advance independently — one lane can be rejecting a
 * step while another is three steps ahead — and a lane that finishes
 * simply drops out of the remaining Newton rounds (its mask goes
 * inactive). Per-lane traces are bit-identical to a scalar run of the
 * same spec, which is what lets batched characterization share the
 * scalar result-cache entries (see DESIGN.md, "masked-lane lockstep").
 */

#ifndef OTFT_CIRCUIT_BATCH_TRANSIENT_HPP
#define OTFT_CIRCUIT_BATCH_TRANSIENT_HPP

#include <vector>

#include "circuit/transient.hpp"

namespace otft::circuit {

/** One lane of a batched transient run. */
struct BatchTransientSpec
{
    /** The lane's circuit; all lanes must share one topology. */
    Circuit *circuit = nullptr;
    /** Per-lane run controls (tStop/dt/LTE bounds may differ). */
    TransientConfig config;
    /**
     * Converged t = 0 operating point (e.g. a memoized DC solution);
     * the batched engine never runs the DC solve itself.
     */
    Solution initial;
};

/**
 * Run every spec to completion and return one TransientResult per
 * spec, in order. Results are bit-identical to running each spec
 * through TransientAnalysis::run(config, initial) on its own.
 *
 * Falls back to the scalar engine per spec (still returning identical
 * results) when batching cannot apply: fewer than two specs, any
 * fixed-step lane, mismatched Newton configs, or mismatched
 * topologies. Throws FatalError under the same conditions as the
 * scalar engine (non-convergence at the minimum step, LTE budget
 * exhaustion, bad spec).
 */
std::vector<TransientResult>
runTransientBatch(std::vector<BatchTransientSpec> specs);

} // namespace otft::circuit

#endif // OTFT_CIRCUIT_BATCH_TRANSIENT_HPP
