#include "circuit/linear_solver.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats_registry.hpp"

namespace otft::circuit {

bool
solveLinear(Matrix &a, std::vector<double> &b)
{
    static stats::Counter &stat_factor = stats::counter(
        "circuit.lu.factorizations", "LU factorizations performed");
    static stats::Counter &stat_singular = stats::counter(
        "circuit.lu.singular", "LU factorizations that hit a near-zero "
                               "pivot");

    const std::size_t n = a.size();
    if (b.size() != n)
        return false;
    ++stat_factor;

    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i)
        perm[i] = i;

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivot: largest magnitude in column k at/below row k.
        std::size_t pivot = k;
        double best = std::abs(a.at(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            const double v = std::abs(a.at(r, k));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-30) {
            ++stat_singular;
            return false;
        }
        if (pivot != k) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a.at(k, c), a.at(pivot, c));
            std::swap(b[k], b[pivot]);
        }

        const double inv = 1.0 / a.at(k, k);
        for (std::size_t r = k + 1; r < n; ++r) {
            const double factor = a.at(r, k) * inv;
            if (factor == 0.0)
                continue;
            a.at(r, k) = 0.0;
            for (std::size_t c = k + 1; c < n; ++c)
                a.at(r, c) -= factor * a.at(k, c);
            b[r] -= factor * b[k];
        }
    }

    // Back substitution.
    for (std::size_t i = n; i-- > 0;) {
        double s = b[i];
        for (std::size_t c = i + 1; c < n; ++c)
            s -= a.at(i, c) * b[c];
        b[i] = s / a.at(i, i);
    }
    return true;
}

} // namespace otft::circuit
