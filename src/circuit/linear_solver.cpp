#include "circuit/linear_solver.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/stats_registry.hpp"

namespace otft::circuit {

namespace {

stats::Counter &
statFactor()
{
    static stats::Counter &c = stats::counter(
        "circuit.lu.factorizations", "LU factorizations performed");
    return c;
}

stats::Counter &
statSingular()
{
    static stats::Counter &c = stats::counter(
        "circuit.lu.singular", "LU factorizations that hit a near-zero "
                               "pivot");
    return c;
}

} // namespace

bool
solveLinear(Matrix &a, std::vector<double> &b)
{
    const std::size_t n = a.size();
    if (b.size() != n)
        return false;
    ++statFactor();

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivot: largest magnitude in column k at/below row k.
        std::size_t pivot = k;
        double best = std::abs(a.at(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            const double v = std::abs(a.at(r, k));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-30) {
            ++statSingular();
            return false;
        }
        if (pivot != k) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a.at(k, c), a.at(pivot, c));
            std::swap(b[k], b[pivot]);
        }

        const double inv = 1.0 / a.at(k, k);
        for (std::size_t r = k + 1; r < n; ++r) {
            const double factor = a.at(r, k) * inv;
            if (factor == 0.0)
                continue;
            a.at(r, k) = 0.0;
            for (std::size_t c = k + 1; c < n; ++c)
                a.at(r, c) -= factor * a.at(k, c);
            b[r] -= factor * b[k];
        }
    }

    // Back substitution.
    for (std::size_t i = n; i-- > 0;) {
        double s = b[i];
        for (std::size_t c = i + 1; c < n; ++c)
            s -= a.at(i, c) * b[c];
        b[i] = s / a.at(i, i);
    }
    return true;
}

bool
LuFactors::factor(const Matrix &a)
{
    const std::size_t n = a.size();
    valid_ = false;
    if (lu.size() != n)
        lu = Matrix(n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            lu.at(r, c) = a.at(r, c);
    perm.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        perm[i] = i;
    ++statFactor();

    for (std::size_t k = 0; k < n; ++k) {
        std::size_t pivot = k;
        double best = std::abs(lu.at(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            const double v = std::abs(lu.at(r, k));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-30) {
            ++statSingular();
            return false;
        }
        if (pivot != k) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(lu.at(k, c), lu.at(pivot, c));
            std::swap(perm[k], perm[pivot]);
        }

        const double inv = 1.0 / lu.at(k, k);
        for (std::size_t r = k + 1; r < n; ++r) {
            const double factor = lu.at(r, k) * inv;
            // Store the multiplier in the eliminated position so
            // solve() can replay the elimination on any RHS.
            lu.at(r, k) = factor;
            if (factor == 0.0)
                continue;
            for (std::size_t c = k + 1; c < n; ++c)
                lu.at(r, c) -= factor * lu.at(k, c);
        }
    }
    valid_ = true;
    return true;
}

void
LuFactors::solve(std::vector<double> &b) const
{
    if (!valid_)
        panic("LuFactors::solve: no valid factorization");
    const std::size_t n = lu.size();
    if (b.size() != n)
        panic("LuFactors::solve: RHS size mismatch");

    static stats::Counter &stat_solves = stats::counter(
        "circuit.lu.solves", "triangular solves against stored factors");
    ++stat_solves;

    // Apply the row permutation.
    std::vector<double> pb(n);
    for (std::size_t i = 0; i < n; ++i)
        pb[i] = b[perm[i]];

    // Forward substitution with the unit-lower factor.
    for (std::size_t i = 1; i < n; ++i) {
        double s = pb[i];
        for (std::size_t c = 0; c < i; ++c)
            s -= lu.at(i, c) * pb[c];
        pb[i] = s;
    }
    // Back substitution with the upper factor.
    for (std::size_t i = n; i-- > 0;) {
        double s = pb[i];
        for (std::size_t c = i + 1; c < n; ++c)
            s -= lu.at(i, c) * pb[c];
        pb[i] = s / lu.at(i, i);
    }
    b = std::move(pb);
}

} // namespace otft::circuit
