#include "circuit/linear_solver.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/stats_registry.hpp"

namespace otft::circuit {

namespace {

stats::Counter &
statFactor()
{
    static stats::Counter &c = stats::counter(
        "circuit.lu.factorizations", "LU factorizations performed");
    return c;
}

stats::Counter &
statSingular()
{
    static stats::Counter &c = stats::counter(
        "circuit.lu.singular", "LU factorizations that hit a near-zero "
                               "pivot");
    return c;
}

} // namespace

bool
solveLinear(Matrix &a, std::vector<double> &b)
{
    if (b.size() != a.size())
        return false;
    // One-shot solves reuse a retained factorization object per
    // thread, so the hot factor/solve path allocates only on first
    // use (and on a size change). `a` is destroyed either way — here
    // by the buffer exchange instead of the elimination.
    thread_local LuFactors lu;
    if (!lu.factorInPlace(a))
        return false;
    lu.solve(b);
    return true;
}

bool
LuFactors::factor(const Matrix &a)
{
    const std::size_t n = a.size();
    valid_ = false;
    if (lu.size() != n)
        lu = Matrix(n);
    // Single contiguous copy into the retained storage (the former
    // element-wise at() loop re-derived every row offset).
    std::copy(a.raw(), a.raw() + n * n, lu.raw());
    return factorStored();
}

bool
LuFactors::factorInPlace(Matrix &a)
{
    valid_ = false;
    lu.swap(a);
    return factorStored();
}

bool
LuFactors::factorStored()
{
    const std::size_t n = lu.size();
    perm.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        perm[i] = i;
    ++statFactor();

    for (std::size_t k = 0; k < n; ++k) {
        std::size_t pivot = k;
        double best = std::abs(lu.at(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            const double v = std::abs(lu.at(r, k));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-30) {
            ++statSingular();
            return false;
        }
        if (pivot != k) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(lu.at(k, c), lu.at(pivot, c));
            std::swap(perm[k], perm[pivot]);
        }

        const double inv = 1.0 / lu.at(k, k);
        for (std::size_t r = k + 1; r < n; ++r) {
            const double factor = lu.at(r, k) * inv;
            // Store the multiplier in the eliminated position so
            // solve() can replay the elimination on any RHS.
            lu.at(r, k) = factor;
            if (factor == 0.0)
                continue;
            for (std::size_t c = k + 1; c < n; ++c)
                lu.at(r, c) -= factor * lu.at(k, c);
        }
    }
    valid_ = true;
    return true;
}

void
LuFactors::solve(std::vector<double> &b) const
{
    if (!valid_)
        panic("LuFactors::solve: no valid factorization");
    const std::size_t n = lu.size();
    if (b.size() != n)
        panic("LuFactors::solve: RHS size mismatch");

    static stats::Counter &stat_solves = stats::counter(
        "circuit.lu.solves", "triangular solves against stored factors");
    ++stat_solves;

    // Apply the row permutation (into retained scratch — the hot
    // chord-iteration path makes one of these per Newton iteration).
    std::vector<double> &pb = scratch;
    pb.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        pb[i] = b[perm[i]];

    // Forward substitution with the unit-lower factor.
    for (std::size_t i = 1; i < n; ++i) {
        double s = pb[i];
        for (std::size_t c = 0; c < i; ++c)
            s -= lu.at(i, c) * pb[c];
        pb[i] = s;
    }
    // Back substitution with the upper factor.
    for (std::size_t i = n; i-- > 0;) {
        double s = pb[i];
        for (std::size_t c = i + 1; c < n; ++c)
            s -= lu.at(i, c) * pb[c];
        pb[i] = s / lu.at(i, i);
    }
    b.swap(pb);
}

} // namespace otft::circuit
