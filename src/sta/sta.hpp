/**
 * @file
 * Static timing analysis over mapped netlists.
 *
 * Levelized arrival/slew propagation through NLDM arcs with the
 * fanout wireload model, reporting minimum clock period, critical
 * path, cell area, and leakage — the framework's substitute for the
 * Synopsys Design Compiler timing/area reports the paper uses.
 *
 * Register-to-register timing: paths launch at DFF outputs (through
 * the load-dependent clk->Q arc) or primary inputs, and capture at
 * DFF D pins (plus setup) or primary outputs; by default inputs and
 * outputs are assumed registered in the enclosing context so that
 * block-level numbers compose. The clock margin (skew + jitter) is
 * charged once per cycle.
 */

#ifndef OTFT_STA_STA_HPP
#define OTFT_STA_STA_HPP

#include <vector>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "sta/wire.hpp"

namespace otft::sta {

/** Analysis controls. */
struct StaConfig
{
    /** Include wire cap/delay (false reproduces Fig. 15 w/o wire). */
    bool wireEnabled = true;
    /**
     * Extra routed span added to every net, meters. Used by the core
     * synthesizer to model the longer cross-block wires of wider
     * superscalar layouts.
     */
    double extraSpanPerNet = 0.0;
    /** Treat primary inputs as launched by registers (clk->Q). */
    bool registerInputs = true;
    /** Treat primary outputs as captured by registers (+setup). */
    bool registerOutputs = true;
    /**
     * Fraction of the library clock margin charged when the wire
     * model is disabled. Clock skew is wire RC; with ideal wires only
     * the jitter floor remains.
     */
    double noWireMarginFraction = 0.2;
    /**
     * Wireload block-span scaling: every net additionally routes
     * spanCoefficient * sqrt(total cell area), the classic block-size
     * dependence of synthesis wireload models. Bigger blocks (wider
     * cores, deeper pipelines with their added register ranks) get
     * slower wires — the feedback that saturates silicon pipelining
     * while leaving organic (gate-dominated) timing untouched.
     */
    double spanCoefficient = 0.15;
};

/** Timing/area report for one netlist under one library. */
struct StaResult
{
    /** Minimum clock period, seconds (includes clock margin). */
    double minClockPeriod = 0.0;
    /** Maximum frequency = 1 / minClockPeriod, hertz. */
    double maxFrequency = 0.0;
    /** Worst endpoint data arrival (excludes setup/margin), s. */
    double worstArrival = 0.0;
    /** Total cell area, m^2. */
    double area = 0.0;
    /** Total leakage/static power, watts. */
    double leakage = 0.0;
    /** Number of cells (excluding inputs/constants). */
    std::size_t cellCount = 0;
    /** Number of DFFs. */
    std::size_t flopCount = 0;
    /** Gates on the critical path, endpoint first. */
    std::vector<netlist::GateId> criticalPath;
    /** Total wire delay along the critical path, seconds. */
    double criticalWireDelay = 0.0;
};

/** The timing engine, bound to one library. */
class StaEngine
{
  public:
    StaEngine(const liberty::CellLibrary &library, StaConfig config = {})
        : library(library), config_(config),
          wireModel(library.wire(), config.wireEnabled)
    {}

    /** Analyze a netlist. */
    StaResult analyze(const netlist::Netlist &netlist) const;

    /**
     * Data arrival time at every gate output (negative for gates that
     * never toggle, i.e. constant cones). Used by the pipeliner to
     * find delay-balanced cut points.
     */
    std::vector<double> arrivalTimes(const netlist::Netlist &nl) const;

    const StaConfig &config() const { return config_; }
    const liberty::CellLibrary &lib() const { return library; }

  private:
    struct Propagation
    {
        std::vector<double> arrival;
        std::vector<double> slew;
        std::vector<double> netLoad;
        std::vector<double> netWireDelay;
        std::vector<netlist::GateId> criticalPred;
    };

    Propagation propagate(const netlist::Netlist &nl) const;

    const liberty::CellLibrary &library;
    StaConfig config_;
    WireModel wireModel;
};

} // namespace otft::sta

#endif // OTFT_STA_STA_HPP
