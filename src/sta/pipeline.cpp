#include "sta/pipeline.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft::sta {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

namespace {

/**
 * Greedy stage assignment under a per-stage delay budget: walk the
 * netlist in topological order tracking each gate's within-stage
 * arrival; when adding a gate would blow the budget, push it to the
 * next stage (its inputs will be registered). Returns the number of
 * stages used. This is the balanced min-max partition underlying
 * "cut the stage on the critical path": bisecting on the budget finds
 * the most balanced N-stage slicing.
 */
struct StageAssigner
{
    const Netlist &nl;
    const liberty::CellLibrary &library;
    /** Per-gate incremental delay (arc at its net load + net wire). */
    const std::vector<double> &gateDelay;
    /** Delay from a stage-entry register to a gate's inputs. */
    double launchDelay;

    /** stage[g] and intra-stage arrival out parameters. */
    int
    assign(double budget, std::vector<int> &stage) const
    {
        const std::size_t n = nl.numGates();
        stage.assign(n, 0);
        std::vector<double> intra(n, 0.0);
        int max_stage = 0;

        for (GateId id : nl.topoOrder()) {
            const std::size_t g = static_cast<std::size_t>(id);
            const Gate &gate = nl.gate(id);
            const int fan_in = netlist::fanInOf(gate.kind);
            if (fan_in == 0) {
                stage[g] = 0;
                intra[g] = launchDelay;
                continue;
            }

            int st = 0;
            for (int k = 0; k < fan_in; ++k)
                st = std::max(st, stage[static_cast<std::size_t>(
                                      gate.fanin[static_cast<std::size_t>(
                                          k)])]);

            // Within-stage arrival: fanins in earlier stages arrive
            // from a register.
            double t = launchDelay;
            for (int k = 0; k < fan_in; ++k) {
                const std::size_t s = static_cast<std::size_t>(
                    gate.fanin[static_cast<std::size_t>(k)]);
                if (stage[s] == st)
                    t = std::max(t, intra[s]);
            }
            t += gateDelay[g];

            if (t > budget) {
                // Start a new stage with this gate.
                ++st;
                t = launchDelay + gateDelay[g];
            }
            stage[g] = st;
            intra[g] = t;
            max_stage = std::max(max_stage, st);
        }
        return max_stage + 1;
    }
};

} // namespace

PipelineReport
Pipeliner::pipeline(const Netlist &comb, int stages) const
{
    static stats::Counter &stat_runs = stats::counter(
        "sta.pipeline.runs", "netlists pipelined");
    static stats::Counter &stat_flops = stats::counter(
        "sta.pipeline.inserted_flops",
        "registers inserted by the pipeliner");
    OTFT_TRACE_SCOPE("sta.pipeline.cut");
    ++stat_runs;

    if (stages < 1)
        fatal("Pipeliner: stages must be >= 1, got ", stages);
    if (!comb.dffs().empty())
        fatal("Pipeliner: input netlist must be purely combinational");

    const std::size_t n = comb.numGates();
    std::vector<int> stage(n, 0);

    if (stages > 1) {
        // Per-gate incremental delays at the comb netlist's loads
        // (a good approximation of the post-insertion loads).
        StaEngine engine(library, config_);
        const std::vector<double> arrival = engine.arrivalTimes(comb);

        std::vector<double> gate_delay(n, 0.0);
        {
            // Incremental delay = arrival - max fanin arrival; for
            // first-level gates it is arrival - launch.
            const double launch = library.cell("dff").flop.clkToQ;
            for (GateId id : comb.topoOrder()) {
                const std::size_t g = static_cast<std::size_t>(id);
                const Gate &gate = comb.gate(id);
                const int fan_in = netlist::fanInOf(gate.kind);
                if (fan_in == 0 || arrival[g] < 0.0)
                    continue;
                double src_max = 0.0;
                bool any = false;
                for (int k = 0; k < fan_in; ++k) {
                    const std::size_t s = static_cast<std::size_t>(
                        gate.fanin[static_cast<std::size_t>(k)]);
                    if (arrival[s] >= 0.0) {
                        src_max = std::max(src_max, arrival[s]);
                        any = true;
                    }
                }
                gate_delay[g] =
                    std::max(arrival[g] - (any ? src_max : launch),
                             1e-18);
            }
        }

        const liberty::FlopTiming &flop = library.cell("dff").flop;
        StageAssigner assigner{comb, library, gate_delay, flop.clkToQ};

        // Parametric search: smallest per-stage budget that fits in
        // the requested stage count.
        double lo = flop.clkToQ;
        for (double d : gate_delay)
            lo = std::max(lo, flop.clkToQ + d);
        double hi = *std::max_element(arrival.begin(), arrival.end()) +
                    flop.clkToQ;
        for (int it = 0; it < 40; ++it) {
            const double mid = 0.5 * (lo + hi);
            if (assigner.assign(mid, stage) <= stages)
                hi = mid;
            else
                lo = mid;
        }
        assigner.assign(hi, stage);
    }

    // Rebuild with register ranks on stage-crossing nets. DFF chains
    // are shared per (driver, depth), mirroring retiming register
    // sharing.
    PipelineReport report;
    report.stages = stages;
    Netlist &out = report.netlist;

    std::vector<GateId> remap(n, netlist::nullGate);
    // pipes[g][k] is g's signal delayed by k+1 cycles.
    std::vector<std::vector<GateId>> pipes(n);

    auto delayed = [&](GateId old_src, int cycles) -> GateId {
        const std::size_t s = static_cast<std::size_t>(old_src);
        if (cycles <= 0)
            return remap[s];
        auto &chain = pipes[s];
        while (static_cast<int>(chain.size()) < cycles) {
            const GateId prev = chain.empty() ? remap[s] : chain.back();
            chain.push_back(out.addDff(prev));
            ++report.insertedFlops;
        }
        return chain[static_cast<std::size_t>(cycles - 1)];
    };

    std::size_t input_idx = 0;
    for (GateId id : comb.topoOrder()) {
        const std::size_t g = static_cast<std::size_t>(id);
        const Gate &gate = comb.gate(id);
        switch (gate.kind) {
          case GateKind::Input:
            remap[g] = out.addInput(comb.inputNames()[input_idx++]);
            break;
          case GateKind::Const0:
            remap[g] = out.constant(false);
            break;
          case GateKind::Const1:
            remap[g] = out.constant(true);
            break;
          case GateKind::Dff:
            panic("Pipeliner: unexpected flop");
          default: {
            const int fan_in = netlist::fanInOf(gate.kind);
            GateId mapped[3] = {netlist::nullGate, netlist::nullGate,
                                netlist::nullGate};
            for (int k = 0; k < fan_in; ++k) {
                const GateId src =
                    gate.fanin[static_cast<std::size_t>(k)];
                const std::size_t s = static_cast<std::size_t>(src);
                mapped[k] = delayed(src, stage[g] - stage[s]);
            }
            remap[g] =
                out.addGate(gate.kind, mapped[0], mapped[1], mapped[2]);
            break;
          }
        }
    }

    // Outputs: align every output to the final stage so the block has
    // uniform latency.
    for (const auto &port : comb.outputs()) {
        const std::size_t g = static_cast<std::size_t>(port.gate);
        const GateId aligned =
            delayed(port.gate, (stages - 1) - stage[g]);
        out.addOutput(port.name, aligned);
    }
    stat_flops += static_cast<std::uint64_t>(report.insertedFlops);
    return report;
}

} // namespace otft::sta
