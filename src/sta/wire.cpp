#include "sta/wire.hpp"

namespace otft::sta {

WireEstimate
WireModel::estimate(int fanout, double sink_cap, double extra_span) const
{
    WireEstimate e;
    if (!enabled || fanout <= 0)
        return e;

    e.length = params.lengthBase +
               params.lengthPerFanout * static_cast<double>(fanout) +
               extra_span;
    e.cap = params.capPerMeter * e.length;

    const double r_wire = params.resPerMeter * e.length;
    // Elmore: the driver sees the full wire + sinks through the wire
    // resistance distributed along the net (lumped pi approximation).
    e.delay = r_wire * (0.5 * e.cap + sink_cap);
    return e;
}

} // namespace otft::sta
