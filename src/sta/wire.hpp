/**
 * @file
 * Fanout-based wireload model with Elmore delay.
 *
 * Net length is estimated from fanout (plus an optional block-span
 * term for large blocks), giving a wire capacitance that adds to the
 * driven pin loads and an Elmore RC delay charged once per net. The
 * ratio of this wire delay to gate delay is the central quantity of
 * the paper: organic gates are about six orders of magnitude slower
 * than silicon gates while the wires are comparable, so organic wire
 * cost is negligible — which is what makes deeper and wider organic
 * cores win (paper Sec. 5.5). The model can be disabled wholesale to
 * reproduce the "w/o wire" series of Fig. 15.
 */

#ifndef OTFT_STA_WIRE_HPP
#define OTFT_STA_WIRE_HPP

#include "liberty/library.hpp"

namespace otft::sta {

/** Wire contribution of one net. */
struct WireEstimate
{
    /** Estimated routed length, meters. */
    double length = 0.0;
    /** Wire capacitance added to the net load, farads. */
    double cap = 0.0;
    /** Elmore wire delay charged once per net, seconds. */
    double delay = 0.0;
};

/** Wireload estimator bound to one library's interconnect params. */
class WireModel
{
  public:
    /**
     * @param params the library's interconnect constants
     * @param enabled false = zero wire cost everywhere (Fig. 15)
     */
    explicit WireModel(const liberty::WireParams &params,
                       bool enabled = true)
        : params(params), enabled(enabled)
    {}

    /**
     * Estimate one net.
     * @param fanout number of driven pins
     * @param sink_cap total driven pin capacitance, farads
     * @param extra_span additional routed length (block span), meters
     */
    WireEstimate estimate(int fanout, double sink_cap,
                          double extra_span = 0.0) const;

    bool isEnabled() const { return enabled; }

  private:
    liberty::WireParams params;
    bool enabled;
};

} // namespace otft::sta

#endif // OTFT_STA_WIRE_HPP
