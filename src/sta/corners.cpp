#include "sta/corners.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/trace.hpp"

namespace otft::sta {

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
normalQuantile(double p)
{
    if (!(p > 0.0 && p < 1.0))
        fatal("normalQuantile: p must lie in (0, 1), got ", p);

    // Acklam's rational approximation, three regimes.
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};
    const double p_low = 0.02425;
    double x;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                 q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) *
                 r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) *
                 r +
             1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
               c[4]) *
                  q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement against the exact CDF.
    const double e = normalCdf(x) - p;
    const double u =
        e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
    x = x - u / (1.0 + 0.5 * x * u);
    return x;
}

double
CornerStaResult::periodSigma() const
{
    if (cornerSigma <= 0.0)
        return 0.0;
    return std::max(slow.minClockPeriod - mean.minClockPeriod, 0.0) /
           cornerSigma;
}

double
CornerStaResult::yieldAtPeriod(double period) const
{
    const double sigma = periodSigma();
    if (sigma <= 0.0)
        return period >= mean.minClockPeriod ? 1.0 : 0.0;
    return normalCdf((period - mean.minClockPeriod) / sigma);
}

double
CornerStaResult::frequencyAtYield(double target_yield) const
{
    if (!(target_yield > 0.0 && target_yield < 1.0))
        fatal("frequencyAtYield: yield must lie in (0, 1), got ",
              target_yield);
    const double period = mean.minClockPeriod +
                          normalQuantile(target_yield) * periodSigma();
    if (period <= 0.0)
        fatal("frequencyAtYield: non-positive period at yield ",
              target_yield);
    return 1.0 / period;
}

CornerStaEngine::CornerStaEngine(const liberty::StatLibrary &stat,
                                 StaConfig config)
    : mean_(stat.mean), slow_(stat.slow), fast_(stat.fast),
      cornerSigma_(stat.cornerSigma), config_(config)
{}

CornerStaResult
CornerStaEngine::analyze(const netlist::Netlist &netlist) const
{
    OTFT_TRACE_SCOPE("sta.corners.analyze");
    CornerStaResult result;
    result.cornerSigma = cornerSigma_;
    result.mean = StaEngine(mean_, config_).analyze(netlist);
    result.slow = StaEngine(slow_, config_).analyze(netlist);
    result.fast = StaEngine(fast_, config_).analyze(netlist);
    return result;
}

} // namespace otft::sta
