/**
 * @file
 * Corner-aware static timing analysis.
 *
 * Multi-corner sign-off in miniature: analyze one netlist under the
 * mean, slow, and fast statistical libraries (liberty/mc_characterizer)
 * and combine the results into a Gaussian clock-period model. The slow
 * corner gates sign-off frequency, the fast corner bounds hold-style
 * margins, and the (mean, slow) pair recovers the per-design period
 * sigma that the yield explorer (core/yield_explorer.hpp) turns into
 * yield-vs-frequency curves:
 *
 *     sigma_period = (slowPeriod - meanPeriod) / cornerSigma
 *
 * StaEngine holds its library by reference, so CornerStaEngine owns
 * copies of all three corner libraries — callers may drop the
 * StatLibrary after construction.
 */

#ifndef OTFT_STA_CORNERS_HPP
#define OTFT_STA_CORNERS_HPP

#include "liberty/mc_characterizer.hpp"
#include "sta/sta.hpp"

namespace otft::sta {

/** STA results of one netlist at the three process corners. */
struct CornerStaResult
{
    StaResult mean;
    StaResult slow;
    StaResult fast;
    /** Deration the corners were built at, standard deviations. */
    double cornerSigma = 3.0;

    /**
     * Standard deviation of the clock period implied by the corner
     * spread: (slow - mean) / cornerSigma. Zero when the corners were
     * built with cornerSigma == 0.
     */
    double periodSigma() const;

    /**
     * Fraction of manufactured instances meeting `period` (seconds),
     * under the Gaussian period model. 0.5 at the mean period, ~0.999
     * at the slow corner for 3-sigma deration.
     */
    double yieldAtPeriod(double period) const;

    /**
     * Fastest clock (hertz) at which a `target_yield` fraction of
     * instances still meets timing. Inverse of yieldAtPeriod.
     */
    double frequencyAtYield(double target_yield) const;
};

/** Timing engine bound to a statistical-library triple. */
class CornerStaEngine
{
  public:
    CornerStaEngine(const liberty::StatLibrary &stat,
                    StaConfig config = {});

    /** Analyze one netlist at all three corners. */
    CornerStaResult analyze(const netlist::Netlist &netlist) const;

    const liberty::CellLibrary &meanLibrary() const { return mean_; }
    const liberty::CellLibrary &slowLibrary() const { return slow_; }
    const liberty::CellLibrary &fastLibrary() const { return fast_; }
    double cornerSigma() const { return cornerSigma_; }

  private:
    liberty::CellLibrary mean_;
    liberty::CellLibrary slow_;
    liberty::CellLibrary fast_;
    double cornerSigma_;
    StaConfig config_;
};

/** Standard normal CDF (exact, via erfc). */
double normalCdf(double z);

/**
 * Standard normal quantile (inverse CDF), |error| < 1.2e-9 over
 * (0, 1) via Acklam's rational approximation plus one Halley
 * refinement step. Fatal outside (0, 1).
 */
double normalQuantile(double p);

} // namespace otft::sta

#endif // OTFT_STA_CORNERS_HPP
