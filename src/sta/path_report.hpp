/**
 * @file
 * Human-readable critical path reports — the timing-report tooling a
 * downstream user expects from a synthesis-style flow: per-gate cell
 * name, incremental delay, cumulative arrival, and the wire share of
 * each hop.
 */

#ifndef OTFT_STA_PATH_REPORT_HPP
#define OTFT_STA_PATH_REPORT_HPP

#include <ostream>
#include <string>
#include <vector>

#include "sta/sta.hpp"

namespace otft::sta {

/** One hop of a reported path. */
struct PathHop
{
    netlist::GateId gate = netlist::nullGate;
    /** Liberty cell name ("input", "dff", "nand2", ...). */
    std::string cell;
    /** Incremental delay of this hop (cell + its input net), s. */
    double incremental = 0.0;
    /** Cumulative arrival after this hop, s. */
    double arrival = 0.0;
    /** Wire component of the incremental delay, s. */
    double wireDelay = 0.0;
    /** Load driven by this gate's net, farads. */
    double load = 0.0;
};

/** A decoded critical path. */
struct PathReport
{
    std::vector<PathHop> hops;
    /** Total path arrival, seconds. */
    double arrival = 0.0;
    /** Sum of wire components, seconds. */
    double totalWireDelay = 0.0;
    /** Wire share of the path delay in [0, 1]. */
    double wireFraction = 0.0;

    /** Render an aligned text report. */
    void render(std::ostream &os) const;
};

/**
 * Decode the critical path of a netlist under a library into hop
 * detail (re-runs the analysis internally).
 */
PathReport reportCriticalPath(const StaEngine &engine,
                              const netlist::Netlist &nl);

} // namespace otft::sta

#endif // OTFT_STA_PATH_REPORT_HPP
