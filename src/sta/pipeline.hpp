/**
 * @file
 * Delay-balanced pipelining of combinational netlists.
 *
 * Implements the paper's methodology of repeatedly "cutting the stage
 * which is on the critical path": gates are assigned to stages by
 * slicing the STA arrival-time profile into equal delay bands under
 * the *target library*, then register ranks are inserted on every
 * stage-crossing net (shared per driver, like retiming register
 * sharing). Because arrival times differ between the organic and
 * silicon libraries, the same block pipelined for each technology is
 * cut in different places — exactly the effect the paper describes in
 * Sec. 5.5.
 */

#ifndef OTFT_STA_PIPELINE_HPP
#define OTFT_STA_PIPELINE_HPP

#include "sta/sta.hpp"

namespace otft::sta {

/** Result of pipelining a block. */
struct PipelineReport
{
    /** The pipelined netlist (DFF ranks inserted). */
    netlist::Netlist netlist;
    /** Requested stage count. */
    int stages = 1;
    /** Registers inserted. */
    std::size_t insertedFlops = 0;
};

/**
 * Pipeliner bound to a library/config (the cut points depend on the
 * technology's delays).
 */
class Pipeliner
{
  public:
    Pipeliner(const liberty::CellLibrary &library, StaConfig config = {})
        : library(library), config_(config)
    {}

    /**
     * Slice a purely combinational netlist into `stages` pipeline
     * stages. stages == 1 returns a copy of the input unchanged.
     * Fatal if the input already contains flops.
     */
    PipelineReport pipeline(const netlist::Netlist &comb,
                            int stages) const;

  private:
    const liberty::CellLibrary &library;
    StaConfig config_;
};

} // namespace otft::sta

#endif // OTFT_STA_PIPELINE_HPP
