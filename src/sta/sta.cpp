#include "sta/sta.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft::sta {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

StaEngine::Propagation
StaEngine::propagate(const Netlist &nl) const
{
    static stats::Counter &stat_passes = stats::counter(
        "sta.levelization.passes",
        "topological propagation passes over a netlist");
    static stats::Counter &stat_arcs = stats::counter(
        "sta.arcs.evaluated", "timing arc lookups during propagation");
    static stats::Counter &stat_wires = stats::counter(
        "sta.wire.evaluations", "wireload model evaluations");
    static const bool rates_registered = [] {
        stats::Registry::instance().rate(
            "sta.arcs_per_pass", "sta.arcs.evaluated",
            "sta.levelization.passes",
            "mean arcs evaluated per propagation pass");
        return true;
    }();
    (void)rates_registered;
    OTFT_TRACE_SCOPE("sta.propagate");
    ++stat_passes;

    const std::size_t n = nl.numGates();
    const auto fanouts = nl.fanouts();
    const liberty::StdCell &dff_cell = library.cell("dff");

    Propagation p;
    p.arrival.assign(n, 0.0);
    p.slew.assign(n, 0.0);
    p.netLoad.assign(n, 0.0);
    p.netWireDelay.assign(n, 0.0);
    p.criticalPred.assign(n, netlist::nullGate);

    // Block-span term of the wireload model: nets in a bigger block
    // route farther.
    double cell_area = 0.0;
    for (const Gate &gate : nl.gates()) {
        const char *cn = netlist::cellNameOf(gate.kind);
        if (cn)
            cell_area += library.cell(cn).area;
    }
    const double span = config_.extraSpanPerNet +
                        config_.spanCoefficient * std::sqrt(cell_area);

    // --- Per-net loads: sink pin caps + wire cap; per-net wire delay.
    for (std::size_t g = 0; g < n; ++g) {
        double sink_cap = 0.0;
        for (GateId s : fanouts[g]) {
            const Gate &sink = nl.gate(s);
            const char *cell_name = netlist::cellNameOf(sink.kind);
            if (cell_name)
                sink_cap += library.cell(cell_name).inputCap;
        }
        ++stat_wires;
        const WireEstimate wire = wireModel.estimate(
            static_cast<int>(fanouts[g].size()), sink_cap, span);
        p.netLoad[g] = sink_cap + wire.cap;
        p.netWireDelay[g] = wire.delay;
    }

    constexpr double neg_inf = -1.0;
    const double launch =
        config_.registerInputs ? dff_cell.flop.clkToQ : 0.0;

    for (GateId id : nl.topoOrder()) {
        const std::size_t g = static_cast<std::size_t>(id);
        const Gate &gate = nl.gate(id);
        switch (gate.kind) {
          case GateKind::Input:
            p.arrival[g] = launch;
            p.slew[g] = library.defaultSlew();
            continue;
          case GateKind::Const0:
          case GateKind::Const1:
            // Constants never toggle: they impose no timing.
            p.arrival[g] = neg_inf;
            p.slew[g] = library.defaultSlew();
            continue;
          case GateKind::Dff: {
            // Launch point: load-dependent clk->Q through the D->Q
            // arc tables.
            const liberty::TimingArc &arc = dff_cell.arc(0);
            p.arrival[g] = arc.worstDelay(library.defaultSlew(),
                                          p.netLoad[g]);
            p.slew[g] =
                arc.worstSlew(library.defaultSlew(), p.netLoad[g]);
            continue;
          }
          default:
            break;
        }

        const char *cell_name = netlist::cellNameOf(gate.kind);
        const liberty::StdCell &cell = library.cell(cell_name);
        double best = neg_inf;
        double best_slew = library.defaultSlew();
        GateId best_pred = netlist::nullGate;
        for (int pin = 0; pin < cell.fanIn; ++pin) {
            const GateId src = gate.fanin[static_cast<std::size_t>(pin)];
            const std::size_t s = static_cast<std::size_t>(src);
            if (p.arrival[s] < 0.0)
                continue; // constant fanin
            ++stat_arcs;
            const liberty::TimingArc &arc = cell.arc(pin);
            const double t = p.arrival[s] + p.netWireDelay[s] +
                             arc.worstDelay(p.slew[s], p.netLoad[g]);
            if (t > best) {
                best = t;
                best_slew = arc.worstSlew(p.slew[s], p.netLoad[g]);
                best_pred = src;
            }
        }
        if (best < 0.0) {
            // All fanins constant: acts as a constant itself.
            p.arrival[g] = neg_inf;
            p.slew[g] = library.defaultSlew();
        } else {
            p.arrival[g] = best;
            p.slew[g] = best_slew;
            p.criticalPred[g] = best_pred;
        }
    }
    return p;
}

std::vector<double>
StaEngine::arrivalTimes(const Netlist &nl) const
{
    return propagate(nl).arrival;
}

StaResult
StaEngine::analyze(const Netlist &nl) const
{
    static stats::Counter &stat_analyses = stats::counter(
        "sta.analyses", "full STA analyses performed");
    OTFT_TRACE_SCOPE("sta.analyze");
    ++stat_analyses;

    const Propagation p = propagate(nl);
    const liberty::StdCell &dff_cell = library.cell("dff");

    StaResult result;
    GateId worst_endpoint = netlist::nullGate;
    double worst_required = 0.0;

    for (GateId id : nl.dffs()) {
        const Gate &gate = nl.gate(id);
        const std::size_t d = static_cast<std::size_t>(gate.fanin[0]);
        if (p.arrival[d] < 0.0)
            continue;
        // Capture at the D pin: data arrival + net wire + setup.
        const double t =
            p.arrival[d] + p.netWireDelay[d] + dff_cell.flop.setup;
        if (t > worst_required) {
            worst_required = t;
            worst_endpoint = gate.fanin[0];
        }
        result.worstArrival = std::max(result.worstArrival, p.arrival[d]);
    }

    const double out_extra =
        config_.registerOutputs ? dff_cell.flop.setup : 0.0;
    for (const auto &port : nl.outputs()) {
        const std::size_t g = static_cast<std::size_t>(port.gate);
        if (p.arrival[g] < 0.0)
            continue;
        const double t = p.arrival[g] + out_extra;
        if (t > worst_required) {
            worst_required = t;
            worst_endpoint = port.gate;
        }
        result.worstArrival = std::max(result.worstArrival, p.arrival[g]);
    }

    const double margin =
        config_.wireEnabled
            ? library.clockMargin()
            : library.clockMargin() * config_.noWireMarginFraction;
    result.minClockPeriod = worst_required + margin;
    result.maxFrequency =
        result.minClockPeriod > 0.0 ? 1.0 / result.minClockPeriod : 0.0;

    // --- Critical path walk-back.
    double wire_sum = 0.0;
    for (GateId id = worst_endpoint; id != netlist::nullGate;
         id = p.criticalPred[static_cast<std::size_t>(id)]) {
        result.criticalPath.push_back(id);
        wire_sum += p.netWireDelay[static_cast<std::size_t>(id)];
    }
    result.criticalWireDelay = wire_sum;

    // --- Area and leakage.
    for (const Gate &gate : nl.gates()) {
        const char *cell_name = netlist::cellNameOf(gate.kind);
        if (!cell_name)
            continue;
        const liberty::StdCell &cell = library.cell(cell_name);
        result.area += cell.area;
        result.leakage += cell.leakage;
        ++result.cellCount;
        if (gate.kind == GateKind::Dff)
            ++result.flopCount;
    }
    return result;
}

} // namespace otft::sta
