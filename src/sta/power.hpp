/**
 * @file
 * Power estimation over mapped netlists — the paper's first listed
 * piece of future work ("investigating more architectural tradeoffs
 * such as energy optimization", Sec. 7).
 *
 * Two components:
 *  - static power: the per-cell leakage/static numbers from the
 *    library (for the pseudo-E organic cells this is real ratioed
 *    static current, not just leakage — it dominates);
 *  - dynamic power: activity-weighted CV^2 f over every net
 *    (cell input pins + wire capacitance), with switching activities
 *    propagated from the primary inputs through the gate functions
 *    under an independence approximation (the standard static
 *    activity-propagation method).
 */

#ifndef OTFT_STA_POWER_HPP
#define OTFT_STA_POWER_HPP

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "sta/wire.hpp"
#include "sta/sta.hpp"

namespace otft::sta {

/** Power estimate of one netlist at an operating point. */
struct PowerReport
{
    /** Static (leakage / ratioed) power, watts. */
    double staticPower = 0.0;
    /** Dynamic switching power at the given clock, watts. */
    double dynamicPower = 0.0;
    /** Clock-tree dynamic power (flop clock pins), watts. */
    double clockPower = 0.0;

    double
    total() const
    {
        return staticPower + dynamicPower + clockPower;
    }
};

/** Analysis controls. */
struct PowerConfig
{
    /** Toggle probability assumed at primary inputs per cycle. */
    double inputActivity = 0.2;
    /** Supply swing used for CV^2; defaults to the library VDD. */
    double swingOverride = 0.0;
    /** Wire model settings (shared with timing). */
    StaConfig sta = {};
};

/**
 * Activity-propagation power estimator bound to one library.
 */
class PowerEngine
{
  public:
    PowerEngine(const liberty::CellLibrary &library,
                PowerConfig config = {})
        : library(library), config_(config),
          wireModel(library.wire(), config.sta.wireEnabled)
    {}

    /**
     * Estimate power at the given clock frequency.
     * @param nl the mapped netlist
     * @param frequency clock rate, hertz
     */
    PowerReport estimate(const netlist::Netlist &nl,
                         double frequency) const;

    /**
     * Signal probabilities (P(node == 1)) and per-cycle toggle rates
     * under the independence approximation. Exposed for tests.
     */
    struct Activities
    {
        std::vector<double> one;    // P(v == 1)
        std::vector<double> toggle; // expected toggles per cycle
    };
    Activities propagate(const netlist::Netlist &nl) const;

  private:
    const liberty::CellLibrary &library;
    PowerConfig config_;
    WireModel wireModel;
};

} // namespace otft::sta

#endif // OTFT_STA_POWER_HPP
