#include "sta/power.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace otft::sta {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

PowerEngine::Activities
PowerEngine::propagate(const Netlist &nl) const
{
    const std::size_t n = nl.numGates();
    Activities act;
    act.one.assign(n, 0.0);
    act.toggle.assign(n, 0.0);

    for (GateId id : nl.topoOrder()) {
        const std::size_t g = static_cast<std::size_t>(id);
        const Gate &gate = nl.gate(id);
        auto p1 = [&](int k) {
            return act.one[static_cast<std::size_t>(
                gate.fanin[static_cast<std::size_t>(k)])];
        };
        auto tg = [&](int k) {
            return act.toggle[static_cast<std::size_t>(
                gate.fanin[static_cast<std::size_t>(k)])];
        };

        switch (gate.kind) {
          case GateKind::Input:
            act.one[g] = 0.5;
            act.toggle[g] = config_.inputActivity;
            break;
          case GateKind::Const0:
            act.one[g] = 0.0;
            break;
          case GateKind::Const1:
            act.one[g] = 1.0;
            break;
          case GateKind::Inv:
          case GateKind::Dff:
            act.one[g] = gate.kind == GateKind::Inv ? 1.0 - p1(0)
                                                    : p1(0);
            act.toggle[g] = tg(0);
            break;
          case GateKind::Nand2: {
            const double and_p = p1(0) * p1(1);
            act.one[g] = 1.0 - and_p;
            // Output toggles when the AND changes; approximate with
            // sensitized input toggles.
            act.toggle[g] =
                std::min(1.0, tg(0) * p1(1) + tg(1) * p1(0));
            break;
          }
          case GateKind::Nand3: {
            const double and_p = p1(0) * p1(1) * p1(2);
            act.one[g] = 1.0 - and_p;
            act.toggle[g] = std::min(
                1.0, tg(0) * p1(1) * p1(2) + tg(1) * p1(0) * p1(2) +
                         tg(2) * p1(0) * p1(1));
            break;
          }
          case GateKind::Nor2: {
            const double or_p = 1.0 - (1.0 - p1(0)) * (1.0 - p1(1));
            act.one[g] = 1.0 - or_p;
            act.toggle[g] = std::min(
                1.0, tg(0) * (1.0 - p1(1)) + tg(1) * (1.0 - p1(0)));
            break;
          }
          case GateKind::Nor3: {
            const double or_p = 1.0 - (1.0 - p1(0)) * (1.0 - p1(1)) *
                                          (1.0 - p1(2));
            act.one[g] = 1.0 - or_p;
            act.toggle[g] =
                std::min(1.0, tg(0) * (1.0 - p1(1)) * (1.0 - p1(2)) +
                                  tg(1) * (1.0 - p1(0)) *
                                      (1.0 - p1(2)) +
                                  tg(2) * (1.0 - p1(0)) *
                                      (1.0 - p1(1)));
            break;
          }
        }
    }
    return act;
}

PowerReport
PowerEngine::estimate(const Netlist &nl, double frequency) const
{
    if (frequency <= 0.0)
        fatal("PowerEngine: frequency must be positive");

    const Activities act = propagate(nl);
    const auto fanouts = nl.fanouts();
    const double vdd = config_.swingOverride > 0.0
                           ? config_.swingOverride
                           : library.vdd();

    PowerReport report;

    // Static: sum of per-cell static/leakage numbers.
    for (const Gate &gate : nl.gates()) {
        const char *cell_name = netlist::cellNameOf(gate.kind);
        if (cell_name)
            report.staticPower += library.cell(cell_name).leakage;
    }

    // Dynamic: per driven net, 0.5 * C * V^2 * toggles/cycle * f.
    for (std::size_t g = 0; g < nl.numGates(); ++g) {
        if (fanouts[g].empty())
            continue;
        double sink_cap = 0.0;
        for (GateId s : fanouts[g]) {
            const char *cell_name =
                netlist::cellNameOf(nl.gate(s).kind);
            if (cell_name)
                sink_cap += library.cell(cell_name).inputCap;
        }
        const WireEstimate wire = wireModel.estimate(
            static_cast<int>(fanouts[g].size()), sink_cap);
        const double cap = sink_cap + wire.cap;
        report.dynamicPower +=
            0.5 * act.toggle[g] * cap * vdd * vdd * frequency;
    }

    // Clock tree: every flop's clock pin toggles twice per cycle.
    const liberty::StdCell &dff = library.cell("dff");
    const double clock_cap =
        static_cast<double>(nl.dffs().size()) * dff.flop.clockPinCap;
    report.clockPower = clock_cap * vdd * vdd * frequency;

    return report;
}

} // namespace otft::sta
