#include "sta/path_report.hpp"

#include <algorithm>

#include "util/table.hpp"

namespace otft::sta {

void
PathReport::render(std::ostream &os) const
{
    Table table({"#", "gate", "cell", "incr", "wire", "arrival",
                 "load"});
    long long idx = 0;
    for (const PathHop &hop : hops) {
        table.row()
            .add(idx++)
            .add(static_cast<long long>(hop.gate))
            .add(hop.cell)
            .add(formatSi(hop.incremental, "s"))
            .add(formatSi(hop.wireDelay, "s"))
            .add(formatSi(hop.arrival, "s"))
            .add(formatSi(hop.load, "F"));
    }
    table.render(os);
    os << "path arrival " << formatSi(arrival, "s") << ", wire share "
       << formatNumber(100.0 * wireFraction, 3) << "%\n";
}

PathReport
reportCriticalPath(const StaEngine &engine, const netlist::Netlist &nl)
{
    const StaResult result = engine.analyze(nl);
    // arrivalTimes re-runs propagation; cheap relative to analyze.
    const std::vector<double> arrivals = engine.arrivalTimes(nl);

    // Per-net load/wire recomputation mirroring the engine.
    const auto fanouts = nl.fanouts();
    const WireModel wire_model(engine.lib().wire(),
                               engine.config().wireEnabled);

    PathReport report;
    report.arrival = result.worstArrival;

    // criticalPath is endpoint-first; walk it source-first.
    std::vector<netlist::GateId> path(result.criticalPath.rbegin(),
                                      result.criticalPath.rend());
    double prev_arrival = 0.0;
    for (netlist::GateId id : path) {
        const std::size_t g = static_cast<std::size_t>(id);
        PathHop hop;
        hop.gate = id;
        const char *cell_name =
            netlist::cellNameOf(nl.gate(id).kind);
        hop.cell = cell_name            ? cell_name
                   : nl.gate(id).kind ==
                           netlist::GateKind::Input
                       ? "input"
                       : "const";
        hop.arrival = std::max(arrivals[g], 0.0);
        hop.incremental = hop.arrival - prev_arrival;
        prev_arrival = hop.arrival;

        double sink_cap = 0.0;
        for (netlist::GateId s : fanouts[g]) {
            const char *sink_cell =
                netlist::cellNameOf(nl.gate(s).kind);
            if (sink_cell)
                sink_cap += engine.lib().cell(sink_cell).inputCap;
        }
        const WireEstimate estimate = wire_model.estimate(
            static_cast<int>(fanouts[g].size()), sink_cap);
        hop.load = sink_cap + estimate.cap;
        hop.wireDelay = estimate.delay;
        report.totalWireDelay += estimate.delay;
        report.hops.push_back(std::move(hop));
    }
    report.wireFraction =
        report.arrival > 0.0 ? report.totalWireDelay / report.arrival
                             : 0.0;
    return report;
}

} // namespace otft::sta
