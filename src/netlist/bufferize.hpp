/**
 * @file
 * Fanout-tree buffering.
 *
 * Synthesis never leaves a 60-sink net on the clock-rate critical
 * path: high-fanout nets get buffer trees. The six-cell library has
 * no BUF, so buffers are inverter pairs, exactly as a trimmed-library
 * synthesis run would map them. Without this pass, both technologies
 * saturate on the same max-fanout net and the pipeline-depth
 * experiments measure fanout artifacts instead of technology.
 */

#ifndef OTFT_NETLIST_BUFFERIZE_HPP
#define OTFT_NETLIST_BUFFERIZE_HPP

#include "netlist/netlist.hpp"

namespace otft::netlist {

/**
 * Rewrite the netlist so no net drives more than `max_fanout` sinks,
 * by inserting inverter-pair buffer trees. Preserves logic function
 * and input/output/flop ordering.
 */
Netlist bufferize(const Netlist &nl, int max_fanout = 6);

} // namespace otft::netlist

#endif // OTFT_NETLIST_BUFFERIZE_HPP
