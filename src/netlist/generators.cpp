#include "netlist/generators.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace otft::netlist {

namespace {

void
checkSameWidth(const Bus &a, const Bus &y, const char *who)
{
    if (a.size() != y.size() || a.empty())
        fatal(who, ": operand width mismatch (", a.size(), " vs ",
              y.size(), ")");
}

/** Full adder: sum = a ^ y ^ c, carry = majority(a, y, c). */
struct FullAdder
{
    GateId sum;
    GateId carry;
};

FullAdder
fullAdder(NetBuilder &b, GateId a, GateId y, GateId c)
{
    return {b.xor3(a, y, c), b.majority(a, y, c)};
}

FullAdder
halfAdder(NetBuilder &b, GateId a, GateId y)
{
    return {b.xorGate(a, y), b.andGate(a, y)};
}

} // namespace

AdderResult
rippleCarryAdder(NetBuilder &b, const Bus &a, const Bus &y,
                 GateId carry_in)
{
    checkSameWidth(a, y, "rippleCarryAdder");
    AdderResult r;
    GateId carry = carry_in;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (carry == nullGate) {
            const FullAdder fa = halfAdder(b, a[i], y[i]);
            r.sum.push_back(fa.sum);
            carry = fa.carry;
        } else {
            const FullAdder fa = fullAdder(b, a[i], y[i], carry);
            r.sum.push_back(fa.sum);
            carry = fa.carry;
        }
    }
    r.carryOut = carry;
    return r;
}

AdderResult
koggeStoneAdder(NetBuilder &b, const Bus &a, const Bus &y,
                GateId carry_in)
{
    checkSameWidth(a, y, "koggeStoneAdder");
    const std::size_t n = a.size();

    // Generate/propagate preprocessing.
    Bus g(n), p(n);
    for (std::size_t i = 0; i < n; ++i) {
        g[i] = b.andGate(a[i], y[i]);
        p[i] = b.xorGate(a[i], y[i]);
    }
    if (carry_in != nullGate) {
        // Fold the carry-in into bit 0's generate: g0' = g0 + p0*cin.
        g[0] = b.orGate(g[0], b.andGate(p[0], carry_in));
    }

    // Parallel prefix: (g, p) o (g', p') = (g + p g', p p').
    Bus gg = g, pp = p;
    for (std::size_t dist = 1; dist < n; dist *= 2) {
        Bus g2 = gg, p2 = pp;
        for (std::size_t i = dist; i < n; ++i) {
            g2[i] = b.orGate(gg[i], b.andGate(pp[i], gg[i - dist]));
            p2[i] = b.andGate(pp[i], pp[i - dist]);
        }
        gg = std::move(g2);
        pp = std::move(p2);
    }

    // Sum: s_i = p_i ^ c_i where c_i = gg_{i-1} (carry into bit i).
    AdderResult r;
    r.sum.resize(n);
    r.sum[0] = carry_in == nullGate ? p[0] : b.xorGate(p[0], carry_in);
    for (std::size_t i = 1; i < n; ++i)
        r.sum[i] = b.xorGate(p[i], gg[i - 1]);
    r.carryOut = gg[n - 1];
    return r;
}

Bus
arrayMultiplier(NetBuilder &b, const Bus &a, const Bus &y)
{
    checkSameWidth(a, y, "arrayMultiplier");
    const std::size_t n = a.size();
    const GateId zero = b.constant(false);

    // Dadda-style column compression: gather every partial-product
    // bit into its weight column, then compress columns with full and
    // half adders until at most two bits remain per column.
    std::vector<Bus> cols(2 * n);
    for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < n; ++i)
            cols[i + j].push_back(b.andGate(a[i], y[j]));

    bool busy = true;
    while (busy) {
        busy = false;
        std::vector<Bus> next(2 * n);
        for (std::size_t w = 0; w < 2 * n; ++w) {
            const Bus &col = cols[w];
            std::size_t i = 0;
            for (; i + 2 < col.size(); i += 3) {
                const FullAdder fa =
                    fullAdder(b, col[i], col[i + 1], col[i + 2]);
                next[w].push_back(fa.sum);
                if (w + 1 < 2 * n)
                    next[w + 1].push_back(fa.carry);
            }
            if (col.size() > 3 && i + 1 < col.size()) {
                const FullAdder ha = halfAdder(b, col[i], col[i + 1]);
                next[w].push_back(ha.sum);
                if (w + 1 < 2 * n)
                    next[w + 1].push_back(ha.carry);
                i += 2;
            }
            for (; i < col.size(); ++i)
                next[w].push_back(col[i]);
        }
        cols = std::move(next);
        for (const Bus &col : cols)
            if (col.size() > 2)
                busy = true;
    }

    // Final carry-propagate addition of the two remaining rows.
    Bus row0(2 * n, zero), row1(2 * n, zero);
    for (std::size_t w = 0; w < 2 * n; ++w) {
        if (!cols[w].empty())
            row0[w] = cols[w][0];
        if (cols[w].size() > 1)
            row1[w] = cols[w][1];
    }
    const AdderResult final_sum = koggeStoneAdder(b, row0, row1);
    return final_sum.sum;
}

DividerResult
nonRestoringDivider(NetBuilder &b, const Bus &dividend,
                    const Bus &divisor, int rows)
{
    checkSameWidth(dividend, divisor, "nonRestoringDivider");
    const std::size_t n = dividend.size();
    if (rows <= 0 || static_cast<std::size_t>(rows) > n)
        fatal("nonRestoringDivider: rows must be in [1, ", n, "]");

    const GateId zero = b.constant(false);

    // Partial remainder R (n+1 bits to hold the sign).
    Bus r(n + 1, zero);
    Bus quotient(static_cast<std::size_t>(rows), zero);

    // sign == 1 means R is negative -> next row adds instead of subs.
    GateId sign = zero;
    for (int row = 0; row < rows; ++row) {
        // Shift R left by one and bring in the next dividend bit.
        Bus shifted(n + 1);
        shifted[0] = dividend[n - 1 - static_cast<std::size_t>(row)];
        for (std::size_t i = 1; i <= n; ++i)
            shifted[i] = r[i - 1];

        // Controlled add/sub of the divisor: when sign == 0 subtract
        // (add two's complement), when sign == 1 add.
        const GateId sub = b.notGate(sign);
        Bus addend(n + 1);
        for (std::size_t i = 0; i < n; ++i)
            addend[i] = b.xorGate(divisor[i], sub);
        addend[n] = sub; // divisor sign extension (0) xor sub
        const AdderResult add = koggeStoneAdder(b, shifted, addend, sub);

        r = add.sum;
        sign = r[n]; // two's complement sign of the partial remainder
        quotient[static_cast<std::size_t>(rows - 1 - row)] =
            b.notGate(sign);
    }

    // Final restoration: if R negative, add back the divisor.
    Bus divisor_ext = divisor;
    divisor_ext.push_back(zero);
    Bus masked(n + 1);
    for (std::size_t i = 0; i <= n; ++i)
        masked[i] = b.andGate(divisor_ext[i], sign);
    const AdderResult fix = koggeStoneAdder(b, r, masked);

    DividerResult result;
    result.quotient = std::move(quotient);
    result.remainder.assign(fix.sum.begin(), fix.sum.begin() +
                            static_cast<std::ptrdiff_t>(n));
    return result;
}

Bus
barrelShifter(NetBuilder &b, const Bus &a, const Bus &amount, bool left)
{
    const GateId zero = b.constant(false);
    Bus cur = a;
    for (std::size_t s = 0; s < amount.size(); ++s) {
        const std::size_t dist = static_cast<std::size_t>(1) << s;
        Bus next(cur.size());
        for (std::size_t i = 0; i < cur.size(); ++i) {
            GateId shifted_in = zero;
            if (left) {
                if (i >= dist)
                    shifted_in = cur[i - dist];
            } else {
                if (i + dist < cur.size())
                    shifted_in = cur[i + dist];
            }
            next[i] = b.mux(amount[s], shifted_in, cur[i]);
        }
        cur = std::move(next);
    }
    return cur;
}

GateId
equalityComparator(NetBuilder &b, const Bus &a, const Bus &y)
{
    checkSameWidth(a, y, "equalityComparator");
    // Tree of XNORs ANDed together via NAND/NOR levels.
    Bus eq(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        eq[i] = b.xnorGate(a[i], y[i]);
    // Reduce with and3/and until a single signal remains.
    while (eq.size() > 1) {
        Bus next;
        std::size_t i = 0;
        for (; i + 2 < eq.size(); i += 3)
            next.push_back(b.and3(eq[i], eq[i + 1], eq[i + 2]));
        if (i + 1 < eq.size())
            next.push_back(b.andGate(eq[i], eq[i + 1]));
        else if (i < eq.size())
            next.push_back(eq[i]);
        eq = std::move(next);
    }
    return eq[0];
}

GateId
lessThan(NetBuilder &b, const Bus &a, const Bus &y)
{
    checkSameWidth(a, y, "lessThan");
    // a < y iff a - y borrows: compute a + ~y + 1 and invert carry.
    const AdderResult diff =
        koggeStoneAdder(b, a, busNot(b, y), b.constant(true));
    return b.notGate(diff.carryOut);
}

Bus
decoder(NetBuilder &b, const Bus &sel)
{
    const std::size_t n = sel.size();
    const std::size_t ways = static_cast<std::size_t>(1) << n;
    Bus nsel(n);
    for (std::size_t i = 0; i < n; ++i)
        nsel[i] = b.notGate(sel[i]);
    Bus out(ways);
    for (std::size_t w = 0; w < ways; ++w) {
        // AND of the n select literals, reduced in threes.
        Bus lits(n);
        for (std::size_t i = 0; i < n; ++i)
            lits[i] = (w >> i) & 1 ? sel[i] : nsel[i];
        while (lits.size() > 1) {
            Bus next;
            std::size_t i = 0;
            for (; i + 2 < lits.size(); i += 3)
                next.push_back(b.and3(lits[i], lits[i + 1], lits[i + 2]));
            if (i + 1 < lits.size())
                next.push_back(b.andGate(lits[i], lits[i + 1]));
            else if (i < lits.size())
                next.push_back(lits[i]);
            lits = std::move(next);
        }
        out[w] = lits[0];
    }
    return out;
}

Bus
onehotMux(NetBuilder &b, const std::vector<Bus> &ways, const Bus &onehot)
{
    if (ways.empty() || ways.size() != onehot.size())
        fatal("onehotMux: way/select mismatch");
    const std::size_t width = ways[0].size();
    Bus out(width);
    for (std::size_t bit = 0; bit < width; ++bit) {
        // OR of (way & grant) products == NOT(AND of their NANDs):
        // compute each NAND, AND-reduce in threes, invert at the end.
        Bus terms(ways.size());
        for (std::size_t w = 0; w < ways.size(); ++w)
            terms[w] = b.nand2(ways[w][bit], onehot[w]);
        while (terms.size() > 1) {
            Bus next;
            std::size_t i = 0;
            for (; i + 2 < terms.size(); i += 3)
                next.push_back(
                    b.and3(terms[i], terms[i + 1], terms[i + 2]));
            if (i + 1 < terms.size())
                next.push_back(b.andGate(terms[i], terms[i + 1]));
            else if (i < terms.size())
                next.push_back(terms[i]);
            terms = std::move(next);
        }
        out[bit] = b.notGate(terms[0]);
    }
    return out;
}

Bus
binaryMux(NetBuilder &b, const std::vector<Bus> &ways, const Bus &sel)
{
    if (ways.empty())
        fatal("binaryMux: no ways");
    // Recursive 2:1 mux tree over the select bits.
    std::vector<Bus> cur = ways;
    for (std::size_t s = 0; s < sel.size() && cur.size() > 1; ++s) {
        std::vector<Bus> next;
        for (std::size_t i = 0; i + 1 < cur.size(); i += 2) {
            Bus merged(cur[i].size());
            for (std::size_t bit = 0; bit < merged.size(); ++bit)
                merged[bit] = b.mux(sel[s], cur[i + 1][bit], cur[i][bit]);
            next.push_back(std::move(merged));
        }
        if (cur.size() % 2)
            next.push_back(cur.back());
        cur = std::move(next);
    }
    return cur[0];
}

Bus
prefixOr(NetBuilder &b, const Bus &in)
{
    Bus cur = in;
    for (std::size_t dist = 1; dist < in.size(); dist *= 2) {
        Bus next = cur;
        for (std::size_t i = dist; i < in.size(); ++i)
            next[i] = b.orGate(cur[i], cur[i - dist]);
        cur = std::move(next);
    }
    return cur;
}

Bus
prefixOrFast(NetBuilder &b, const Bus &in)
{
    // Invariant: at even levels `cur` holds the true-phase prefix so
    // far; at odd levels it holds the complement. NOR combines true
    // phases into a complement; NAND combines complements back into
    // true phase.
    Bus cur = in;
    bool complemented = false;
    for (std::size_t dist = 1; dist < in.size(); dist *= 2) {
        Bus next = cur;
        for (std::size_t i = 0; i < in.size(); ++i) {
            if (i >= dist) {
                next[i] = complemented
                              ? b.nand2(cur[i], cur[i - dist])
                              : b.nor2(cur[i], cur[i - dist]);
            } else {
                // Phase-fix passthrough.
                next[i] = b.notGate(cur[i]);
            }
        }
        cur = std::move(next);
        complemented = !complemented;
    }
    if (complemented)
        for (auto &g : cur)
            g = b.notGate(g);
    return cur;
}

Bus
prefixAnd(NetBuilder &b, const Bus &in)
{
    Bus cur = in;
    for (std::size_t dist = 1; dist < in.size(); dist *= 2) {
        Bus next = cur;
        for (std::size_t i = dist; i < in.size(); ++i)
            next[i] = b.andGate(cur[i], cur[i - dist]);
        cur = std::move(next);
    }
    return cur;
}

Bus
priorityArbiter(NetBuilder &b, const Bus &requests)
{
    const std::size_t n = requests.size();
    // grant_i = req_i AND NOT OR(req_0..i-1): exclusive prefix OR in
    // log depth.
    const Bus blocked = prefixOr(b, requests);
    Bus grant(n);
    grant[0] = requests[0];
    for (std::size_t i = 1; i < n; ++i)
        grant[i] = b.andGate(requests[i], b.notGate(blocked[i - 1]));
    return grant;
}

Bus
busAnd(NetBuilder &b, const Bus &a, const Bus &y)
{
    checkSameWidth(a, y, "busAnd");
    Bus out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = b.andGate(a[i], y[i]);
    return out;
}

Bus
busOr(NetBuilder &b, const Bus &a, const Bus &y)
{
    checkSameWidth(a, y, "busOr");
    Bus out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = b.orGate(a[i], y[i]);
    return out;
}

Bus
busXor(NetBuilder &b, const Bus &a, const Bus &y)
{
    checkSameWidth(a, y, "busXor");
    Bus out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = b.xorGate(a[i], y[i]);
    return out;
}

Bus
busNot(NetBuilder &b, const Bus &a)
{
    Bus out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = b.notGate(a[i]);
    return out;
}

Bus
fanout(GateId g, int width)
{
    return Bus(static_cast<std::size_t>(width), g);
}

} // namespace otft::netlist
