/**
 * @file
 * Gate-level netlists over the six-cell library.
 *
 * A netlist is a DAG of gates drawn from exactly the cell set both
 * technology libraries provide: INV, NAND2, NAND3, NOR2, NOR3, DFF —
 * plus primary inputs and constants. Higher-level logic (AND, OR,
 * XOR, MUX, majority) is built by NetBuilder, which performs the
 * technology mapping onto this cell set as it constructs the graph,
 * mirroring how synthesis maps RTL onto the trimmed library.
 */

#ifndef OTFT_NETLIST_NETLIST_HPP
#define OTFT_NETLIST_NETLIST_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace otft::netlist {

/** Gate handle within one netlist. */
using GateId = std::int32_t;

/** No-gate sentinel. */
inline constexpr GateId nullGate = -1;

/** Gate types. Library cells carry the same names as liberty cells. */
enum class GateKind : std::uint8_t {
    Input,
    Const0,
    Const1,
    Inv,
    Nand2,
    Nand3,
    Nor2,
    Nor3,
    Dff,
};

/** @return number of logic inputs for a gate kind. */
int fanInOf(GateKind kind);

/** @return the liberty cell name, or nullptr for non-cells. */
const char *cellNameOf(GateKind kind);

/** One gate instance. */
struct Gate
{
    GateKind kind = GateKind::Input;
    /** Fanin gate ids; unused slots are nullGate. DFF: [0] is D. */
    std::array<GateId, 3> fanin = {nullGate, nullGate, nullGate};
};

/** A named primary output. */
struct OutputPort
{
    std::string name;
    GateId gate = nullGate;
};

/** The gate-level netlist. */
class Netlist
{
  public:
    /** Add a primary input. */
    GateId addInput(const std::string &name);

    /** Add a constant. */
    GateId constant(bool value);

    /** Add a combinational library gate. */
    GateId addGate(GateKind kind, GateId a, GateId b = nullGate,
                   GateId c = nullGate);

    /** Add a D flip-flop capturing `d`. */
    GateId addDff(GateId d);

    /** Mark a gate as a primary output. */
    void addOutput(const std::string &name, GateId gate);

    std::size_t numGates() const { return gates_.size(); }
    const Gate &gate(GateId id) const { return gates_[checked(id)]; }
    const std::vector<Gate> &gates() const { return gates_; }
    const std::vector<OutputPort> &outputs() const { return outputs_; }
    const std::vector<GateId> &inputs() const { return inputs_; }
    const std::vector<std::string> &inputNames() const
    {
        return inputNames_;
    }

    /** Number of instances of each library cell kind. */
    std::size_t countKind(GateKind kind) const;

    /** Fanout gate lists, indexed by gate id (computed on demand). */
    std::vector<std::vector<GateId>> fanouts() const;

    /**
     * Gate ids in topological order (fanins before fanouts). DFF
     * outputs are sources (their D input is a sink), so sequential
     * netlists are handled naturally.
     */
    std::vector<GateId> topoOrder() const;

    /**
     * Combinational depth of each gate in cell levels (inputs, consts
     * and DFF outputs are level 0).
     */
    std::vector<int> levels() const;

    /** Maximum combinational level in the netlist. */
    int depth() const;

    /**
     * Evaluate the netlist on given input values. Sequential state is
     * evaluated as one cycle: DFFs output `state`, and the returned
     * next-state vector holds their captured D values.
     * @param input_values one bool per primary input
     * @param state current DFF states (empty = all zero)
     * @param next_state out: captured DFF values (may be null)
     * @return values of all gates (indexable by GateId)
     */
    std::vector<bool> evaluate(const std::vector<bool> &input_values,
                               const std::vector<bool> &state = {},
                               std::vector<bool> *next_state =
                                   nullptr) const;

    /** Ids of all DFF gates in insertion order. */
    const std::vector<GateId> &dffs() const { return dffs_; }

  private:
    std::size_t checked(GateId id) const;

    std::vector<Gate> gates_;
    std::vector<GateId> inputs_;
    std::vector<std::string> inputNames_;
    std::vector<OutputPort> outputs_;
    std::vector<GateId> dffs_;
};

/**
 * Mapped-logic construction helpers: composite functions expressed in
 * the six-cell vocabulary. All methods return the gate id of the
 * function output.
 */
class NetBuilder
{
  public:
    explicit NetBuilder(Netlist &netlist) : nl(netlist) {}

    GateId input(const std::string &name) { return nl.addInput(name); }
    GateId constant(bool v) { return nl.constant(v); }
    void output(const std::string &name, GateId g)
    {
        nl.addOutput(name, g);
    }

    GateId notGate(GateId a);
    GateId nand2(GateId a, GateId b);
    GateId nand3(GateId a, GateId b, GateId c);
    GateId nor2(GateId a, GateId b);
    GateId nor3(GateId a, GateId b, GateId c);
    GateId andGate(GateId a, GateId b);
    GateId orGate(GateId a, GateId b);
    GateId and3(GateId a, GateId b, GateId c);
    GateId or3(GateId a, GateId b, GateId c);
    GateId xorGate(GateId a, GateId b);
    GateId xnorGate(GateId a, GateId b);
    /** Majority of three (full-adder carry): NAND3 of pairwise NANDs. */
    GateId majority(GateId a, GateId b, GateId c);
    /** Three-input XOR (full-adder sum). */
    GateId xor3(GateId a, GateId b, GateId c);
    /** 2:1 mux: sel ? hi : lo. */
    GateId mux(GateId sel, GateId hi, GateId lo);
    GateId dff(GateId d) { return nl.addDff(d); }

    /** A bus of named inputs: name[0..width). */
    std::vector<GateId> inputBus(const std::string &name, int width);
    /** Mark a bus as outputs name[0..width). */
    void outputBus(const std::string &name,
                   const std::vector<GateId> &bus);
    /** A register rank over a bus. */
    std::vector<GateId> dffBus(const std::vector<GateId> &bus);

    Netlist &netlist() { return nl; }

  private:
    Netlist &nl;
};

} // namespace otft::netlist

#endif // OTFT_NETLIST_NETLIST_HPP
