#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/stats_registry.hpp"

namespace otft::netlist {

int
fanInOf(GateKind kind)
{
    switch (kind) {
      case GateKind::Input:
      case GateKind::Const0:
      case GateKind::Const1:
        return 0;
      case GateKind::Inv:
      case GateKind::Dff:
        return 1;
      case GateKind::Nand2:
      case GateKind::Nor2:
        return 2;
      case GateKind::Nand3:
      case GateKind::Nor3:
        return 3;
    }
    return 0;
}

const char *
cellNameOf(GateKind kind)
{
    switch (kind) {
      case GateKind::Inv:
        return "inv";
      case GateKind::Nand2:
        return "nand2";
      case GateKind::Nand3:
        return "nand3";
      case GateKind::Nor2:
        return "nor2";
      case GateKind::Nor3:
        return "nor3";
      case GateKind::Dff:
        return "dff";
      default:
        return nullptr;
    }
}

std::size_t
Netlist::checked(GateId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= gates_.size())
        panic("Netlist: invalid gate id ", id);
    return static_cast<std::size_t>(id);
}

GateId
Netlist::addInput(const std::string &name)
{
    Gate g;
    g.kind = GateKind::Input;
    gates_.push_back(g);
    const GateId id = static_cast<GateId>(gates_.size() - 1);
    inputs_.push_back(id);
    inputNames_.push_back(name);
    return id;
}

GateId
Netlist::constant(bool value)
{
    Gate g;
    g.kind = value ? GateKind::Const1 : GateKind::Const0;
    gates_.push_back(g);
    return static_cast<GateId>(gates_.size() - 1);
}

GateId
Netlist::addGate(GateKind kind, GateId a, GateId b, GateId c)
{
    static stats::Counter &stat_gates = stats::counter(
        "netlist.gates.created", "combinational gates instantiated");
    ++stat_gates;
    const int fan_in = fanInOf(kind);
    if (fan_in == 0 || kind == GateKind::Dff)
        panic("Netlist::addGate: not a combinational cell kind");
    Gate g;
    g.kind = kind;
    g.fanin = {a, b, c};
    const GateId args[3] = {a, b, c};
    for (int i = 0; i < fan_in; ++i)
        checked(args[i]);
    for (int i = fan_in; i < 3; ++i)
        if (args[i] != nullGate)
            panic("Netlist::addGate: too many fanins for cell");
    gates_.push_back(g);
    return static_cast<GateId>(gates_.size() - 1);
}

GateId
Netlist::addDff(GateId d)
{
    static stats::Counter &stat_flops = stats::counter(
        "netlist.flops.created", "D flip-flops instantiated");
    ++stat_flops;
    checked(d);
    Gate g;
    g.kind = GateKind::Dff;
    g.fanin = {d, nullGate, nullGate};
    gates_.push_back(g);
    const GateId id = static_cast<GateId>(gates_.size() - 1);
    dffs_.push_back(id);
    return id;
}

void
Netlist::addOutput(const std::string &name, GateId gate)
{
    checked(gate);
    outputs_.push_back({name, gate});
}

std::size_t
Netlist::countKind(GateKind kind) const
{
    return static_cast<std::size_t>(
        std::count_if(gates_.begin(), gates_.end(),
                      [&](const Gate &g) { return g.kind == kind; }));
}

std::vector<std::vector<GateId>>
Netlist::fanouts() const
{
    std::vector<std::vector<GateId>> out(gates_.size());
    for (std::size_t i = 0; i < gates_.size(); ++i) {
        const Gate &g = gates_[i];
        const int fan_in = fanInOf(g.kind) + (g.kind == GateKind::Dff);
        for (int k = 0; k < fan_in; ++k) {
            if (g.fanin[static_cast<std::size_t>(k)] != nullGate)
                out[static_cast<std::size_t>(
                        g.fanin[static_cast<std::size_t>(k)])]
                    .push_back(static_cast<GateId>(i));
        }
    }
    return out;
}

std::vector<GateId>
Netlist::topoOrder() const
{
    // Gates are created fanin-first (the builder API enforces valid
    // ids at insertion), so insertion order IS a topological order for
    // the combinational graph; DFFs break cycles by construction
    // because their output is a source.
    std::vector<GateId> order(gates_.size());
    for (std::size_t i = 0; i < gates_.size(); ++i)
        order[i] = static_cast<GateId>(i);
    return order;
}

std::vector<int>
Netlist::levels() const
{
    std::vector<int> level(gates_.size(), 0);
    for (std::size_t i = 0; i < gates_.size(); ++i) {
        const Gate &g = gates_[i];
        if (g.kind == GateKind::Dff)
            continue; // DFF output starts a new level-0 region
        const int fan_in = fanInOf(g.kind);
        int lv = 0;
        for (int k = 0; k < fan_in; ++k)
            lv = std::max(
                lv, level[static_cast<std::size_t>(
                        g.fanin[static_cast<std::size_t>(k)])] + 1);
        level[i] = lv;
    }
    return level;
}

int
Netlist::depth() const
{
    const auto lv = levels();
    return lv.empty() ? 0 : *std::max_element(lv.begin(), lv.end());
}

std::vector<bool>
Netlist::evaluate(const std::vector<bool> &input_values,
                  const std::vector<bool> &state,
                  std::vector<bool> *next_state) const
{
    if (input_values.size() != inputs_.size())
        fatal("Netlist::evaluate: expected ", inputs_.size(),
              " inputs, got ", input_values.size());
    if (!state.empty() && state.size() != dffs_.size())
        fatal("Netlist::evaluate: expected ", dffs_.size(),
              " state bits, got ", state.size());

    std::vector<bool> value(gates_.size(), false);
    std::size_t input_idx = 0;
    std::size_t dff_idx = 0;
    for (std::size_t i = 0; i < gates_.size(); ++i) {
        const Gate &g = gates_[i];
        auto in = [&](int k) {
            return value[static_cast<std::size_t>(
                g.fanin[static_cast<std::size_t>(k)])];
        };
        switch (g.kind) {
          case GateKind::Input:
            value[i] = input_values[input_idx++];
            break;
          case GateKind::Const0:
            value[i] = false;
            break;
          case GateKind::Const1:
            value[i] = true;
            break;
          case GateKind::Inv:
            value[i] = !in(0);
            break;
          case GateKind::Nand2:
            value[i] = !(in(0) && in(1));
            break;
          case GateKind::Nand3:
            value[i] = !(in(0) && in(1) && in(2));
            break;
          case GateKind::Nor2:
            value[i] = !(in(0) || in(1));
            break;
          case GateKind::Nor3:
            value[i] = !(in(0) || in(1) || in(2));
            break;
          case GateKind::Dff:
            value[i] = state.empty() ? false : state[dff_idx];
            ++dff_idx;
            break;
        }
    }
    if (next_state) {
        next_state->clear();
        for (GateId d : dffs_)
            next_state->push_back(value[static_cast<std::size_t>(
                gates_[static_cast<std::size_t>(d)].fanin[0])]);
    }
    return value;
}

// ---------------------------------------------------------------------
// NetBuilder

GateId
NetBuilder::notGate(GateId a)
{
    return nl.addGate(GateKind::Inv, a);
}

GateId
NetBuilder::nand2(GateId a, GateId b)
{
    return nl.addGate(GateKind::Nand2, a, b);
}

GateId
NetBuilder::nand3(GateId a, GateId b, GateId c)
{
    return nl.addGate(GateKind::Nand3, a, b, c);
}

GateId
NetBuilder::nor2(GateId a, GateId b)
{
    return nl.addGate(GateKind::Nor2, a, b);
}

GateId
NetBuilder::nor3(GateId a, GateId b, GateId c)
{
    return nl.addGate(GateKind::Nor3, a, b, c);
}

GateId
NetBuilder::andGate(GateId a, GateId b)
{
    return notGate(nand2(a, b));
}

GateId
NetBuilder::orGate(GateId a, GateId b)
{
    return notGate(nor2(a, b));
}

GateId
NetBuilder::and3(GateId a, GateId b, GateId c)
{
    return notGate(nand3(a, b, c));
}

GateId
NetBuilder::or3(GateId a, GateId b, GateId c)
{
    return notGate(nor3(a, b, c));
}

GateId
NetBuilder::xorGate(GateId a, GateId b)
{
    // Four-NAND XOR.
    const GateId m = nand2(a, b);
    return nand2(nand2(a, m), nand2(b, m));
}

GateId
NetBuilder::xnorGate(GateId a, GateId b)
{
    return notGate(xorGate(a, b));
}

GateId
NetBuilder::majority(GateId a, GateId b, GateId c)
{
    return nand3(nand2(a, b), nand2(a, c), nand2(b, c));
}

GateId
NetBuilder::xor3(GateId a, GateId b, GateId c)
{
    return xorGate(xorGate(a, b), c);
}

GateId
NetBuilder::mux(GateId sel, GateId hi, GateId lo)
{
    const GateId nsel = notGate(sel);
    return nand2(nand2(hi, sel), nand2(lo, nsel));
}

std::vector<GateId>
NetBuilder::inputBus(const std::string &name, int width)
{
    std::vector<GateId> bus;
    bus.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i)
        bus.push_back(nl.addInput(name + "[" + std::to_string(i) + "]"));
    return bus;
}

void
NetBuilder::outputBus(const std::string &name,
                      const std::vector<GateId> &bus)
{
    for (std::size_t i = 0; i < bus.size(); ++i)
        nl.addOutput(name + "[" + std::to_string(i) + "]", bus[i]);
}

std::vector<GateId>
NetBuilder::dffBus(const std::vector<GateId> &bus)
{
    std::vector<GateId> out;
    out.reserve(bus.size());
    for (GateId g : bus)
        out.push_back(nl.addDff(g));
    return out;
}

} // namespace otft::netlist
