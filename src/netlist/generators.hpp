/**
 * @file
 * Datapath block generators — the framework's stand-in for the
 * Synopsys DesignWare components the paper synthesizes.
 *
 * All blocks are generated directly in the six-cell vocabulary:
 * ripple-carry and Kogge-Stone adders, a carry-save array multiplier,
 * a non-restoring array divider (the per-pass array of a stallable
 * multi-cycle divider), barrel shifter, comparators, decoders, mux
 * trees, and a priority arbiter (issue-select logic).
 */

#ifndef OTFT_NETLIST_GENERATORS_HPP
#define OTFT_NETLIST_GENERATORS_HPP

#include "netlist/netlist.hpp"

namespace otft::netlist {

/** A little-endian bus of gate ids (bit 0 first). */
using Bus = std::vector<GateId>;

/** Sum and carry-out of an adder. */
struct AdderResult
{
    Bus sum;
    GateId carryOut = nullGate;
};

/** Ripple-carry adder: n-bit, depth O(n), minimal area. */
AdderResult rippleCarryAdder(NetBuilder &b, const Bus &a, const Bus &y,
                             GateId carry_in = nullGate);

/** Kogge-Stone adder: n-bit, depth O(log n), larger area. */
AdderResult koggeStoneAdder(NetBuilder &b, const Bus &a, const Bus &y,
                            GateId carry_in = nullGate);

/**
 * Carry-save array multiplier: a x y, returns the full 2n-bit
 * product. Partial products are reduced row by row in carry-save form
 * with a final Kogge-Stone carry-propagate add.
 */
Bus arrayMultiplier(NetBuilder &b, const Bus &a, const Bus &y);

/** Quotient and remainder of a divider. */
struct DividerResult
{
    Bus quotient;
    Bus remainder;
};

/**
 * Non-restoring array divider: n-bit dividend / n-bit divisor
 * (unsigned). One row per quotient bit, each row a controlled
 * add/subtract through a Kogge-Stone adder. This is the combinational
 * array of one pass of a stallable multi-cycle divider; `rows` limits
 * the quotient bits computed per pass (DesignWare's stallable divider
 * iterates passes).
 */
DividerResult nonRestoringDivider(NetBuilder &b, const Bus &dividend,
                                  const Bus &divisor, int rows);

/** Logical barrel shifter (left when `left`), shift amount bus. */
Bus barrelShifter(NetBuilder &b, const Bus &a, const Bus &amount,
                  bool left);

/** Single-bit equality of two buses (tag comparator). */
GateId equalityComparator(NetBuilder &b, const Bus &a, const Bus &y);

/** a < y unsigned (borrow out of a - y). */
GateId lessThan(NetBuilder &b, const Bus &a, const Bus &y);

/** n-to-2^n one-hot decoder. */
Bus decoder(NetBuilder &b, const Bus &sel);

/** Mux tree: ways[k] selected by one-hot `onehot`. */
Bus onehotMux(NetBuilder &b, const std::vector<Bus> &ways,
              const Bus &onehot);

/** Mux tree with a binary select bus. */
Bus binaryMux(NetBuilder &b, const std::vector<Bus> &ways,
              const Bus &sel);

/** Inclusive parallel-prefix OR: out[i] = OR(in[0..i]), log depth. */
Bus prefixOr(NetBuilder &b, const Bus &in);

/**
 * Phase-optimized inclusive prefix OR: alternates NOR/NAND levels so
 * each prefix level costs one cell instead of an OR's NOR+INV pair —
 * the hand-tuned mapping a custom scheduler macro would use. Output
 * is in true phase.
 */
Bus prefixOrFast(NetBuilder &b, const Bus &in);

/** Inclusive parallel-prefix AND: out[i] = AND(in[0..i]), log depth. */
Bus prefixAnd(NetBuilder &b, const Bus &in);

/**
 * Priority arbiter: grants the lowest-indexed active request,
 * one-hot output, built from a parallel-prefix OR (log depth, as
 * synthesis restructures it). This is the age-ordered issue-select
 * structure of a superscalar scheduler.
 */
Bus priorityArbiter(NetBuilder &b, const Bus &requests);

/** Bitwise ops over buses. */
Bus busAnd(NetBuilder &b, const Bus &a, const Bus &y);
Bus busOr(NetBuilder &b, const Bus &a, const Bus &y);
Bus busXor(NetBuilder &b, const Bus &a, const Bus &y);
Bus busNot(NetBuilder &b, const Bus &a);

/** Replicate a single signal into a bus. */
Bus fanout(GateId g, int width);

} // namespace otft::netlist

#endif // OTFT_NETLIST_GENERATORS_HPP
