#include "netlist/bufferize.hpp"

#include <algorithm>
#include <memory>

#include "util/logging.hpp"
#include "util/stats_registry.hpp"

namespace otft::netlist {

namespace {

/**
 * Balanced buffer tree for one source with a known sink count: the
 * frontier is expanded level by level (each node spawning up to
 * `max_fanout` inverter-pair buffers) until it can serve every sink
 * with at most `max_fanout` sinks per node, then sinks are dealt
 * round-robin.
 */
class DriveTree
{
  public:
    DriveTree(Netlist &out, GateId root, int sink_count, int max_fanout)
    {
        std::vector<GateId> frontier = {root};
        const std::size_t sinks = static_cast<std::size_t>(sink_count);
        const std::size_t max_fo = static_cast<std::size_t>(max_fanout);
        while (frontier.size() * max_fo < sinks) {
            std::vector<GateId> next;
            next.reserve(frontier.size() * max_fo);
            for (GateId node : frontier) {
                for (std::size_t k = 0; k < max_fo; ++k) {
                    next.push_back(out.addGate(
                        GateKind::Inv,
                        out.addGate(GateKind::Inv, node)));
                }
            }
            frontier = std::move(next);
        }
        points = std::move(frontier);
    }

    /** @return a drive point for the next sink (round-robin). */
    GateId
    next()
    {
        const GateId g = points[cursor];
        cursor = (cursor + 1) % points.size();
        return g;
    }

  private:
    std::vector<GateId> points;
    std::size_t cursor = 0;
};

} // namespace

Netlist
bufferize(const Netlist &nl, int max_fanout)
{
    static stats::Counter &stat_runs = stats::counter(
        "netlist.bufferize.runs", "fanout-buffering passes");
    static stats::Counter &stat_buffers = stats::counter(
        "netlist.buffers.inserted",
        "inverter-pair buffers added by fanout trees");
    if (max_fanout < 2)
        fatal("bufferize: max_fanout must be >= 2");
    ++stat_runs;
    const std::size_t gates_before = nl.numGates();

    // Original sink counts (gate fanins plus output ports).
    const std::size_t n = nl.numGates();
    std::vector<int> sink_count(n, 0);
    for (const Gate &gate : nl.gates()) {
        const int fan_in = fanInOf(gate.kind) +
                           (gate.kind == GateKind::Dff ? 1 : 0);
        for (int k = 0; k < fan_in; ++k)
            if (gate.fanin[static_cast<std::size_t>(k)] != nullGate)
                ++sink_count[static_cast<std::size_t>(
                    gate.fanin[static_cast<std::size_t>(k)])];
    }
    for (const auto &port : nl.outputs())
        ++sink_count[static_cast<std::size_t>(port.gate)];

    Netlist out;
    std::vector<GateId> remap(n, nullGate);
    std::vector<std::unique_ptr<DriveTree>> trees(n);

    auto drive = [&](GateId old_src) -> GateId {
        const std::size_t s = static_cast<std::size_t>(old_src);
        if (!trees[s]) {
            trees[s] = std::make_unique<DriveTree>(
                out, remap[s], sink_count[s], max_fanout);
        }
        return trees[s]->next();
    };

    std::size_t input_idx = 0;
    for (GateId id : nl.topoOrder()) {
        const std::size_t g = static_cast<std::size_t>(id);
        const Gate &gate = nl.gate(id);
        switch (gate.kind) {
          case GateKind::Input:
            remap[g] = out.addInput(nl.inputNames()[input_idx++]);
            break;
          case GateKind::Const0:
            remap[g] = out.constant(false);
            break;
          case GateKind::Const1:
            remap[g] = out.constant(true);
            break;
          case GateKind::Dff:
            remap[g] = out.addDff(drive(gate.fanin[0]));
            break;
          default: {
            const int fan_in = fanInOf(gate.kind);
            GateId mapped[3] = {nullGate, nullGate, nullGate};
            for (int k = 0; k < fan_in; ++k)
                mapped[k] =
                    drive(gate.fanin[static_cast<std::size_t>(k)]);
            remap[g] =
                out.addGate(gate.kind, mapped[0], mapped[1], mapped[2]);
            break;
          }
        }
    }

    for (const auto &port : nl.outputs())
        out.addOutput(port.name, drive(port.gate));
    // Every added gate beyond the remapped originals is half of an
    // inverter-pair buffer.
    stat_buffers += (out.numGates() - gates_before) / 2;
    return out;
}

} // namespace otft::netlist
