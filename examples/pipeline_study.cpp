/**
 * @file
 * Custom pipeline-depth study on a chosen workload.
 *
 * A downstream-user version of the paper's Fig. 11 experiment: pick a
 * workload and a technology on the command line, sweep pipeline depth
 * with the critical-stage cutting methodology, and emit a CSV series
 * ready for plotting.
 *
 * Usage: ./build/examples/pipeline_study [workload] [organic|silicon]
 *        [max_stages]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/explorer.hpp"
#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

int
main(int argc, char **argv)
{
    cli::Session session("pipeline_study", argc, argv);
    const std::string workload = argc > 1 ? argv[1] : "gzip";
    const std::string tech = argc > 2 ? argv[2] : "organic";
    const int max_stages = argc > 3 ? std::atoi(argv[3]) : 15;

    const auto profile = workload::profileByName(workload);
    const liberty::CellLibrary library =
        tech == "silicon" ? liberty::makeSiliconLibrary()
                          : liberty::cachedOrganicLibrary();

    std::printf("# pipeline depth study: %s on %s (to %d stages)\n",
                workload.c_str(), library.name().c_str(), max_stages);

    core::ExplorerConfig config;
    config.instructions = 60000;
    core::ArchExplorer explorer(library, config);

    Table csv({"stages", "frequency_hz", "ipc", "performance",
               "area_m2", "critical_region"});

    arch::CoreConfig candidate = arch::baselineConfig();
    double best_perf = 0.0;
    int best_stage = 0;
    while (true) {
        const auto timing =
            explorer.synthesizer().synthesize(candidate);
        workload::TraceGenerator trace(profile, config.seed);
        arch::CoreModel core(candidate, trace);
        const double ipc = core.run(config.instructions).ipc();
        const double perf = ipc * timing.frequency;
        if (perf > best_perf) {
            best_perf = perf;
            best_stage = candidate.totalStages();
        }
        csv.row()
            .add(static_cast<long long>(candidate.totalStages()))
            .add(timing.frequency, 6)
            .add(ipc, 4)
            .add(perf, 6)
            .add(timing.area, 4)
            .add(arch::toString(timing.critical));
        if (candidate.totalStages() >= max_stages)
            break;
        candidate = explorer.synthesizer().deepen(candidate);
    }

    csv.renderCsv(std::cout);
    std::printf("# optimum: %d stages\n", best_stage);
    return 0;
}
