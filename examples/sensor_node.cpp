/**
 * @file
 * Biodegradable environmental sensor node sizing study.
 *
 * The paper's flagship application (Sec. 2): sensors that decompose
 * in place instead of becoming e-waste. A sensing node must process
 * each sample within a deadline; this example explores organic core
 * configurations (depth x width) and picks the smallest design that
 * meets a target sample-processing rate, then reports how much area
 * and static power the deadline costs.
 *
 * Build & run:  ./build/examples/sensor_node [samples_per_second]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/explorer.hpp"
#include "liberty/characterizer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

namespace {

/** Instructions to process one environmental sample (filtering,
 *  calibration, thresholding, packetization). */
constexpr double instructionsPerSample = 2000.0;

} // namespace

int
main(int argc, char **argv)
{
    cli::Session session("sensor_node", argc, argv);
    double samples_per_second = 0.05; // one sample every 20 s
    if (argc > 1)
        samples_per_second = std::atof(argv[1]);
    const double required_ips =
        samples_per_second * instructionsPerSample;

    std::printf("Biodegradable sensor node study\n");
    std::printf("target: %.2f samples/s -> %.1f instructions/s\n\n",
                samples_per_second, required_ips);

    const auto organic = liberty::cachedOrganicLibrary();
    core::ExplorerConfig config;
    config.instructions = 30000;
    core::ArchExplorer explorer(organic, config);

    // Candidate designs: three widths x three depths.
    std::vector<arch::CoreConfig> candidates;
    for (int fe : {1, 2}) {
        for (int alu : {1, 2}) {
            arch::CoreConfig base = arch::baselineConfig();
            base.fetchWidth = fe;
            base.aluPipes = alu;
            candidates.push_back(base);
            // A deepened variant of the same widths.
            auto deep = base;
            for (int cut = 0; cut < 3; ++cut)
                deep = explorer.synthesizer().deepen(deep);
            candidates.push_back(deep);
        }
    }

    Table table({"config", "freq", "mean IPC", "instr/s", "area",
                 "meets deadline"});
    const core::DesignPoint *best = nullptr;
    std::vector<core::DesignPoint> points;
    points.reserve(candidates.size());
    for (const auto &candidate : candidates)
        points.push_back(explorer.evaluate(candidate));

    for (const auto &pt : points) {
        const bool ok = pt.performance >= required_ips;
        table.row()
            .add(pt.config.describe())
            .add(formatSi(pt.timing.frequency, "Hz"))
            .add(pt.meanIpc, 3)
            .add(pt.performance, 3)
            .add(formatNumber(pt.timing.area * 1e6, 3) + " mm^2")
            .add(ok ? "yes" : "no");
        if (ok && (!best || pt.timing.area < best->timing.area))
            best = &pt;
    }
    table.render(std::cout);

    if (best) {
        std::printf("\nsmallest design meeting the deadline: %s "
                    "(area %s, %.1fx headroom)\n",
                    best->config.describe().c_str(),
                    (formatNumber(best->timing.area * 1e6, 3) + " mm^2").c_str(),
                    best->performance / required_ips);
    } else {
        std::printf("\nno organic configuration meets %.2f samples/s;"
                    " relax the deadline or batch samples\n",
                    samples_per_second);
    }
    return 0;
}
