/**
 * @file
 * Quickstart: the whole paper flow (Fig. 10) in one short program.
 *
 *   1. "Measure" a pentacene OTFT and extract its figures of merit.
 *   2. Build a pseudo-E inverter and read its VTC parameters.
 *   3. Characterize the organic library (cached) and compare an
 *      inverter arc against the 45 nm silicon library.
 *   4. Synthesize and simulate the 9-stage baseline core in both
 *      technologies and print frequency/area/performance.
 *
 * Build & run:  ./build/examples/quickstart
 * Add --stats-json <path> (or --stats) to dump the run's telemetry.
 */

#include <cstdio>

#include "cells/topologies.hpp"
#include "cells/vtc.hpp"
#include "core/explorer.hpp"
#include "device/extraction.hpp"
#include "device/measurement.hpp"
#include "device/pentacene.hpp"
#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

int
main(int argc, char **argv)
{
    cli::Session session("quickstart", argc, argv);
    // --- 1. Device: measure and extract.
    std::printf("== 1. pentacene OTFT ==\n");
    const auto curves = device::measurePentaceneFig3();
    const device::ParameterExtractor extractor(
        device::Polarity::PType, device::pentaceneGeometry());
    const auto params = extractor.extract(curves[0]);
    std::printf("mobility %.3f cm^2/Vs, VT %.2f V, SS %.0f mV/dec, "
                "on/off %.1e\n",
                params.mobility * 1e4, params.vt, params.ss * 1e3,
                params.onOffRatio);

    // --- 2. Cell: pseudo-E inverter DC parameters at VDD = 5 V.
    std::printf("\n== 2. pseudo-E inverter (VDD 5 V, VSS -15 V) ==\n");
    cells::CellFactory factory;
    auto inverter = factory.inverter(cells::InverterKind::PseudoE);
    cells::VtcAnalyzer analyzer(101);
    const auto vtc = analyzer.analyze(inverter);
    std::printf("VM %.2f V, gain %.2f, NMH %.2f V, NML %.2f V, "
                "static power %.0f uW\n",
                vtc.vm, vtc.maxGain, vtc.nmh, vtc.nml,
                vtc.staticPowerLow * 1e6);

    // --- 3. Libraries: organic (characterized) vs silicon.
    std::printf("\n== 3. standard cell libraries ==\n");
    const auto organic = liberty::cachedOrganicLibrary();
    const auto silicon = liberty::makeSiliconLibrary();
    const auto &org_inv = organic.cell("inv");
    const auto &si_inv = silicon.cell("inv");
    const double org_fo4 = org_inv.arc(0).worstDelay(
        organic.defaultSlew(), 4.0 * org_inv.inputCap);
    const double si_fo4 = si_inv.arc(0).worstDelay(
        silicon.defaultSlew(), 4.0 * si_inv.inputCap);
    std::printf("inverter FO4: organic %s vs silicon %s (%.1e x)\n",
                formatSi(org_fo4, "s").c_str(),
                formatSi(si_fo4, "s").c_str(), org_fo4 / si_fo4);

    // --- 4. Cores: the 9-stage baseline under each technology.
    std::printf("\n== 4. 9-stage baseline core ==\n");
    core::ExplorerConfig explore;
    explore.instructions = 20000; // quick IPC estimate
    for (const liberty::CellLibrary *lib : {&silicon, &organic}) {
        core::ArchExplorer explorer(*lib, explore);
        const auto point = explorer.evaluate(arch::baselineConfig());
        std::printf("%-9s f = %-12s area = %.4g mm^2  IPC = %.2f  "
                    "critical stage: %s\n",
                    lib->name().c_str(),
                    formatSi(point.timing.frequency, "Hz").c_str(),
                    point.timing.area * 1e6, point.meanIpc,
                    arch::toString(point.timing.critical));
    }
    std::printf("\nNext: run the bench/fig* binaries to regenerate "
                "every figure of the paper.\n");
    return 0;
}
