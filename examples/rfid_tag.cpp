/**
 * @file
 * Organic RFID-tag response-latency budget.
 *
 * RFID tags are one of the paper's huge-volume, never-recycled
 * targets (Sec. 2; organic RFID precedents in its related work). A
 * tag must compute its response (decode command, check ID, assemble
 * reply) within the reader's timeout. This example sweeps pipeline
 * depth on a minimal organic core and reports response latency and
 * static energy per transaction, showing where deeper pipelines stop
 * paying off for latency-bound (rather than throughput-bound) work.
 *
 * Build & run:  ./build/examples/rfid_tag
 */

#include <cstdio>
#include <iostream>

#include "core/explorer.hpp"
#include "liberty/characterizer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

namespace {

/** Instructions per tag transaction (command decode + reply). */
constexpr double instructionsPerTransaction = 600.0;

/** Reader timeout for a reply. */
constexpr double readerTimeout = 20.0; // seconds, contactless-slow

} // namespace

int
main(int argc, char **argv)
{
    cli::Session session("rfid_tag", argc, argv);
    std::printf("Organic RFID tag study: %g-instruction transaction, "
                "%.0f s reader timeout\n\n",
                instructionsPerTransaction, readerTimeout);

    const auto organic = liberty::cachedOrganicLibrary();
    core::ExplorerConfig config;
    config.instructions = 30000;
    core::ArchExplorer explorer(organic, config);

    Table table({"stages", "freq", "IPC", "latency (s)",
                 "meets timeout", "static power", "energy/txn (J)"});

    arch::CoreConfig candidate = arch::baselineConfig();
    for (int stages = 9; stages <= 14; ++stages) {
        if (candidate.totalStages() < stages)
            candidate = explorer.synthesizer().deepen(candidate);
        const auto pt = explorer.evaluate(candidate);

        // Latency model: instructions / (IPC * f) plus one pipeline
        // fill.
        const double fill =
            candidate.totalStages() / pt.timing.frequency;
        const double latency =
            instructionsPerTransaction / pt.performance + fill;

        // Static power: the dominant organic cost (pseudo-E cells
        // burn level-shifter current continuously). Approximate from
        // the synthesized leakage of the baseline region mix via the
        // explorer's timing area and the library leakage density.
        core::CoreSynthesizer &synth = explorer.synthesizer();
        const auto timing = synth.synthesize(candidate);
        // Leakage density: use the inverter's leakage per area.
        const auto &inv = organic.cell("inv");
        const double static_power =
            timing.area / inv.area * inv.leakage * 0.3;
        const double energy = static_power * latency;

        table.row()
            .add(static_cast<long long>(candidate.totalStages()))
            .add(formatSi(pt.timing.frequency, "Hz"))
            .add(pt.meanIpc, 3)
            .add(latency, 3)
            .add(latency <= readerTimeout ? "yes" : "no")
            .add(formatSi(static_power, "W"))
            .add(energy, 3);
    }
    table.render(std::cout);

    std::printf("\nTakeaway: latency-bound tags want the shallowest "
                "core that makes the timeout — deep pipelines only "
                "pay for streaming work.\n");
    return 0;
}
