/**
 * @file
 * Joint design-space tour: depth x width x technology in one CSV,
 * plus a synthesis-style critical-path report for a chosen design —
 * the "what would I actually tape out" workflow on top of the
 * framework.
 *
 * Usage: ./build/examples/design_space [max_stages]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/explorer.hpp"
#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "netlist/bufferize.hpp"
#include "core/blocks.hpp"
#include "sta/path_report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

int
main(int argc, char **argv)
{
    cli::Session session("design_space", argc, argv);
    const int max_stages = argc > 1 ? std::atoi(argv[1]) : 13;

    const auto organic = liberty::cachedOrganicLibrary();
    const auto silicon = liberty::makeSiliconLibrary();

    std::printf("# joint design space: technology x width x depth\n");
    Table csv({"technology", "fetch_width", "backend_width", "stages",
               "frequency_hz", "mean_ipc", "performance", "area_m2"});

    for (const liberty::CellLibrary *lib : {&silicon, &organic}) {
        core::ExplorerConfig config;
        config.instructions = 30000;
        core::ArchExplorer explorer(*lib, config);
        for (int fe : {1, 2, 4}) {
            for (int be : {3, 5}) {
                arch::CoreConfig candidate = arch::baselineConfig();
                candidate.fetchWidth = fe;
                candidate.aluPipes = be - 2;
                while (true) {
                    const auto pt = explorer.evaluate(candidate);
                    csv.row()
                        .add(lib->name())
                        .add(static_cast<long long>(fe))
                        .add(static_cast<long long>(be))
                        .add(static_cast<long long>(
                            candidate.totalStages()))
                        .add(pt.timing.frequency, 6)
                        .add(pt.meanIpc, 4)
                        .add(pt.performance, 6)
                        .add(pt.timing.area, 4);
                    if (candidate.totalStages() >= max_stages)
                        break;
                    candidate =
                        explorer.synthesizer().deepen(candidate);
                }
            }
        }
    }
    csv.renderCsv(std::cout);

    // Synthesis-style report: where does the organic baseline's
    // execute stage spend its cycle?
    std::printf("\n# critical path of the organic execute block "
                "(baseline widths)\n");
    sta::StaEngine engine(organic);
    const auto block = netlist::bufferize(
        core::buildRegionBlock(arch::Region::Execute,
                               arch::baselineConfig()),
        6);
    const auto report = sta::reportCriticalPath(engine, block);
    report.render(std::cout);

    std::printf("\n# and the same block in silicon (note the wire "
                "share)\n");
    sta::StaEngine si_engine(silicon);
    sta::reportCriticalPath(si_engine, block).render(std::cout);
    return 0;
}
