#!/usr/bin/env bash
# Performance gate: run the perf_suite scenario set and compare it
# against a recorded baseline BENCH_*.json with the noise-aware diff.
# Exits nonzero when a regression clears the MAD/threshold gate, so CI
# can block perf regressions the same way verify.sh blocks functional
# ones.
#
# Usage: scripts/perf_gate.sh BASELINE.json [build-dir]
#
# Environment:
#   OTFT_BENCH_REPS       repetitions per scenario (default 5)
#   OTFT_PERF_THRESHOLD   relative wall-time gate (default 0.10)
set -euo pipefail

if [ $# -lt 1 ]; then
    echo "usage: scripts/perf_gate.sh BASELINE.json [build-dir]" >&2
    exit 2
fi
BASELINE="$1"
BUILD_DIR="${2:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [ ! -r "${BASELINE}" ]; then
    echo "perf_gate: cannot read baseline ${BASELINE}" >&2
    exit 2
fi

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target perf_suite perf_diff

# The perf_smoke ctest label sanity-checks the recorder itself (the
# scenario set covers every layer, counters move, the gate trips on an
# injected slowdown) before we trust its verdict.
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target test_perf_suite
ctest --test-dir "${BUILD_DIR}" -L perf_smoke --output-on-failure

current="$(mktemp /tmp/BENCH_current.XXXXXX.json)"
trap 'rm -f "${current}"' EXIT

"${BUILD_DIR}/bench/perf_suite" \
    --reps "${OTFT_BENCH_REPS:-5}" \
    --out "${current}"

"${BUILD_DIR}/bench/perf_diff" \
    --threshold "${OTFT_PERF_THRESHOLD:-0.10}" \
    "${BASELINE}" "${current}"
