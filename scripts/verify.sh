#!/usr/bin/env bash
# Tier-1 verification: configure (warnings as errors), build, and run
# the tier1-labelled test suite. This is the gate every change must
# pass; CI runs exactly this script.
#
# Usage: scripts/verify.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S "$(dirname "$0")/.." -DOTFT_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" -L tier1 --output-on-failure -j "${JOBS}"
