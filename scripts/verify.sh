#!/usr/bin/env bash
# Tier-1 verification: configure (warnings as errors), build, and run
# the tier1-labelled test suite. This is the gate every change must
# pass; CI runs exactly this script.
#
# Usage: scripts/verify.sh [--tsan|--asan|--bench|--diag|--profile|
#        --mc] [build-dir]
#
#   --tsan   build with -fsanitize=thread into <build-dir>-tsan and
#            run the concurrency-labelled tests under it
#   --asan   build with -fsanitize=address into <build-dir>-asan and
#            run the full tier1 label under it
#   --bench  perf smoke lane: one-rep perf_suite run diffed against
#            the committed bench-results/BENCH_seed.json baseline
#            (informational timings, hard-fails only on crashes or a
#            malformed report). Off by default; tier-1 stays perf-free.
#            Also runs the batched-vs-scalar engine check: the
#            liberty.nldm_characterize_batched scenario is measured
#            at --batch-lanes 0 and --batch-lanes 8 and the two
#            reports go through perf_diff's MAD noise gate — the lane
#            fails if the batched engine is slower than the scalar
#            one beyond measurement noise.
#   --diag   observability smoke lane: run a short perf_suite pass
#            with --diag-json and --metrics-jsonl enabled, then
#            validate both artifacts with `diag_replay --check-diag`
#            and `diag_replay --check-metrics`. Catches bit-rot in the
#            telemetry plumbing without touching tier-1.
#   --profile  profiler smoke lane: run one scenario under the
#            sampling profiler, check the folded flamegraph artifact
#            is non-empty and the otft-prof-1 footer parses, then run
#            the profile_smoke-labelled ctest suite. Wall-clock
#            sensitive, so opt-in rather than tier-1.
#   --mc     Monte Carlo smoke lane: run the mc_smoke-labelled ctest
#            suite (full-roster 16-sample statistical
#            characterization), then run bench/mc_characterize end to
#            end, writing the three corner .lib artifacts and
#            re-validating them from disk with --check. Tens of
#            seconds of solver time, so opt-in rather than tier-1.
#
# The sanitizer lanes keep their own build trees so the default tree
# stays warm for the plain gate.
set -euo pipefail

SANITIZE=""
LANE_SUFFIX=""
TEST_LABEL="tier1"
PERF_SMOKE=0
DIAG_SMOKE=0
PROFILE_SMOKE=0
MC_SMOKE=0
if [[ "${1:-}" == "--tsan" ]]; then
    SANITIZE="thread"
    LANE_SUFFIX="-tsan"
    TEST_LABEL="concurrency"
    shift
elif [[ "${1:-}" == "--asan" ]]; then
    SANITIZE="address"
    LANE_SUFFIX="-asan"
    shift
elif [[ "${1:-}" == "--bench" ]]; then
    PERF_SMOKE=1
    shift
elif [[ "${1:-}" == "--diag" ]]; then
    DIAG_SMOKE=1
    shift
elif [[ "${1:-}" == "--profile" ]]; then
    PROFILE_SMOKE=1
    shift
elif [[ "${1:-}" == "--mc" ]]; then
    MC_SMOKE=1
    shift
fi

BUILD_DIR="${1:-build}${LANE_SUFFIX}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DOTFT_WERROR=ON \
    -DOTFT_SANITIZE="${SANITIZE}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

if [[ "${PERF_SMOKE}" == "1" ]]; then
    cmake --build "${BUILD_DIR}" -j "${JOBS}" \
        --target perf_suite perf_diff
    BASELINE="${REPO_ROOT}/bench-results/BENCH_seed.json"
    SMOKE_OUT="${BUILD_DIR}/BENCH_smoke.json"
    "${BUILD_DIR}/bench/perf_suite" --reps 1 --warmup 0 \
        --out "${SMOKE_OUT}"
    if [ -e "${BASELINE}" ]; then
        echo "perf smoke vs committed seed baseline:"
        # One rep is too noisy to gate on; regressions are reported,
        # not fatal. A crash or malformed report still fails the lane.
        "${BUILD_DIR}/bench/perf_diff" "${BASELINE}" "${SMOKE_OUT}" \
            || true
    else
        echo "warning: ${BASELINE} missing; recorded smoke run only"
    fi
    # Batched-vs-scalar engine gate: the same characterization
    # workload measured with the lane engine off and on. Scenario
    # names match across the two reports, so perf_diff's MAD noise
    # gate applies; a batched run slower than scalar beyond noise
    # fails the lane (the engines produce byte-identical tables, so
    # time is the only difference).
    ENGINE_FILTER="liberty.nldm_characterize_batched"
    SCALAR_OUT="${BUILD_DIR}/BENCH_engine_scalar.json"
    BATCHED_OUT="${BUILD_DIR}/BENCH_engine_batched.json"
    "${BUILD_DIR}/bench/perf_suite" --reps 5 --warmup 1 \
        --filter "${ENGINE_FILTER}" --batch-lanes 0 \
        --out "${SCALAR_OUT}"
    "${BUILD_DIR}/bench/perf_suite" --reps 5 --warmup 1 \
        --filter "${ENGINE_FILTER}" --batch-lanes 8 \
        --out "${BATCHED_OUT}"
    echo "batched engine vs scalar engine (gated):"
    "${BUILD_DIR}/bench/perf_diff" "${SCALAR_OUT}" "${BATCHED_OUT}"
    exit 0
fi

if [[ "${DIAG_SMOKE}" == "1" ]]; then
    cmake --build "${BUILD_DIR}" -j "${JOBS}" \
        --target perf_suite diag_replay
    DIAG_OUT="${BUILD_DIR}/diag_smoke.json"
    METRICS_OUT="${BUILD_DIR}/metrics_smoke.jsonl"
    # A short circuit-only pass with the full observability stack on;
    # a fast metrics period guarantees the sampler thread actually
    # wakes up during the run.
    "${BUILD_DIR}/bench/perf_suite" --reps 1 --warmup 0 \
        --filter circuit \
        --diag-json "${DIAG_OUT}" \
        --metrics-jsonl "${METRICS_OUT}" --metrics-period-ms 20
    "${BUILD_DIR}/bench/diag_replay" --check-diag "${DIAG_OUT}"
    "${BUILD_DIR}/bench/diag_replay" --check-metrics "${METRICS_OUT}"
    echo "diag lane ok"
    exit 0
fi

if [[ "${PROFILE_SMOKE}" == "1" ]]; then
    cmake --build "${BUILD_DIR}" -j "${JOBS}" \
        --target perf_suite fig06_inverter_comparison \
        test_profile_smoke
    PROF_DIR="${BUILD_DIR}/prof_smoke"
    mkdir -p "${PROF_DIR}"
    # Suite path: one profiled scenario must leave a non-empty folded
    # flamegraph artifact.
    "${BUILD_DIR}/bench/perf_suite" --reps 1 --warmup 0 \
        --filter liberty.nldm_characterize_par \
        --profile --profile-dir "${PROF_DIR}"
    FOLDED="${PROF_DIR}/PROF_liberty_nldm_characterize_par.folded"
    if [ ! -s "${FOLDED}" ]; then
        echo "error: ${FOLDED} missing or empty" >&2
        exit 1
    fi
    # Session path: a footered bench run with --profile-folded must
    # carry the otft-prof-1 profile section in its footer line.
    BENCH_LOG="${PROF_DIR}/fig06.out"
    "${BUILD_DIR}/bench/fig06_inverter_comparison" \
        --profile-folded "${PROF_DIR}/fig06.folded" \
        | tee "${BENCH_LOG}"
    if ! grep -q 'otft-prof-1' "${BENCH_LOG}"; then
        echo "error: no otft-prof-1 footer section in output" >&2
        exit 1
    fi
    ctest --test-dir "${BUILD_DIR}" -L profile_smoke \
        --output-on-failure -j "${JOBS}"
    echo "profile lane ok"
    exit 0
fi

if [[ "${MC_SMOKE}" == "1" ]]; then
    cmake --build "${BUILD_DIR}" -j "${JOBS}" \
        --target mc_characterize test_mc_smoke
    ctest --test-dir "${BUILD_DIR}" -L mc_smoke \
        --output-on-failure -j "${JOBS}"
    MC_DIR="${BUILD_DIR}/mc_smoke_artifacts"
    mkdir -p "${MC_DIR}"
    # End-to-end artifact path: characterize 16 samples, write the
    # three corner libraries, then reload and validate them from disk
    # exactly as yield_sweep would consume them.
    "${BUILD_DIR}/bench/mc_characterize" --mc-samples 16 --mc-seed 1 \
        --out-prefix "${MC_DIR}/organic_mc"
    for corner in mean slow fast; do
        if [ ! -s "${MC_DIR}/organic_mc_${corner}.lib" ]; then
            echo "error: organic_mc_${corner}.lib missing" >&2
            exit 1
        fi
    done
    "${BUILD_DIR}/bench/mc_characterize" \
        --out-prefix "${MC_DIR}/organic_mc" --check
    echo "mc lane ok"
    exit 0
fi

ctest --test-dir "${BUILD_DIR}" -L "${TEST_LABEL}" \
    --output-on-failure -j "${JOBS}"
