#!/usr/bin/env bash
# Tier-1 verification: configure (warnings as errors), build, and run
# the tier1-labelled test suite. This is the gate every change must
# pass; CI runs exactly this script.
#
# Usage: scripts/verify.sh [--tsan|--asan] [build-dir]
#
#   --tsan   build with -fsanitize=thread into <build-dir>-tsan and
#            run the concurrency-labelled tests under it
#   --asan   build with -fsanitize=address into <build-dir>-asan and
#            run the full tier1 label under it
#
# The sanitizer lanes keep their own build trees so the default tree
# stays warm for the plain gate.
set -euo pipefail

SANITIZE=""
LANE_SUFFIX=""
TEST_LABEL="tier1"
if [[ "${1:-}" == "--tsan" ]]; then
    SANITIZE="thread"
    LANE_SUFFIX="-tsan"
    TEST_LABEL="concurrency"
    shift
elif [[ "${1:-}" == "--asan" ]]; then
    SANITIZE="address"
    LANE_SUFFIX="-asan"
    shift
fi

BUILD_DIR="${1:-build}${LANE_SUFFIX}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S "$(dirname "$0")/.." -DOTFT_WERROR=ON \
    -DOTFT_SANITIZE="${SANITIZE}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" -L "${TEST_LABEL}" \
    --output-on-failure -j "${JOBS}"
