#!/usr/bin/env bash
# Record one point of the performance trajectory: build, run the
# perf_suite scenario set, and write the next BENCH_<seq>.json in the
# bench-results directory. Compare two points with bench/perf_diff or
# scripts/perf_gate.sh.
#
# Usage: scripts/bench.sh [build-dir] [results-dir]
#
# Environment:
#   OTFT_BENCH_REPS    repetitions per scenario (default 5)
#   OTFT_BENCH_WARMUP  warmup reps per scenario (default 1)
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-bench-results}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target perf_suite perf_diff

mkdir -p "${RESULTS_DIR}"

# Next unused sequence number in the results directory.
seq=1
while [ -e "${RESULTS_DIR}/BENCH_${seq}.json" ]; do
    seq=$((seq + 1))
done
out="${RESULTS_DIR}/BENCH_${seq}.json"

"${BUILD_DIR}/bench/perf_suite" \
    --reps "${OTFT_BENCH_REPS:-5}" \
    --warmup "${OTFT_BENCH_WARMUP:-1}" \
    --out "${out}"

echo "recorded ${out}"
prev="${RESULTS_DIR}/BENCH_$((seq - 1)).json"
if [ -e "${prev}" ]; then
    echo "comparing against ${prev}:"
    # Informational here: recording must succeed even when slower.
    "${BUILD_DIR}/bench/perf_diff" "${prev}" "${out}" || true
fi
