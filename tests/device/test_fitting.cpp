/** @file Unit tests for SPICE model fitting (paper Fig. 4). */

#include <gtest/gtest.h>

#include "device/fitting.hpp"
#include "device/measurement.hpp"
#include "device/pentacene.hpp"

namespace otft::device {
namespace {

class Fitting : public ::testing::Test
{
  protected:
    Fitting()
        : curves(measurePentaceneFig3()),
          fitter(Polarity::PType, pentaceneGeometry())
    {}

    std::vector<TransferCurve> curves;
    ModelFitter fitter;
};

TEST_F(Fitting, Level61FitsWholeCurve)
{
    const auto fit = fitter.fitLevel61(curves[0]);
    // The paper's headline: level 61 "fits the device well".
    EXPECT_LT(fit.quality.rmsLogError, 0.1);
    EXPECT_LT(fit.quality.rmsOnRegionError, 0.1);
}

TEST_F(Fitting, Level1GoodOnRegionBadSubthreshold)
{
    const auto fit = fitter.fitLevel1(curves[0]);
    // On-region is representable...
    EXPECT_LT(fit.quality.rmsOnRegionError, 0.15);
    // ...but the missing subthreshold/leakage blows up the log error.
    EXPECT_GT(fit.quality.rmsLogError, 1.0);
}

TEST_F(Fitting, Level61BeatsLevel1OnLogError)
{
    const auto f1 = fitter.fitLevel1(curves[0]);
    const auto f61 = fitter.fitLevel61(curves[0]);
    EXPECT_LT(f61.quality.rmsLogError,
              0.2 * f1.quality.rmsLogError);
}

TEST_F(Fitting, Level61RecoversGoldenParameters)
{
    const auto fit = fitter.fitLevel61(curves[0]);
    const Level61Params golden;
    EXPECT_NEAR(fit.params.vt0, golden.vt0, 0.3);
    EXPECT_NEAR(fit.params.u0 / golden.u0, 1.0, 0.2);
    EXPECT_NEAR(fit.params.ss, golden.ss, 0.08);
}

TEST_F(Fitting, Level1ThresholdIsPhysical)
{
    const auto fit = fitter.fitLevel1(curves[0]);
    // The forward-frame threshold should land in a plausible band.
    EXPECT_GT(fit.params.vt, -1.0);
    EXPECT_LT(fit.params.vt, 4.0);
    EXPECT_GT(fit.params.u0, 0.0);
}

TEST_F(Fitting, EvaluateMatchesSelf)
{
    // Evaluating the golden model against its own noisy measurement
    // leaves only the instrument noise.
    const auto golden = makePentaceneGolden();
    const auto q = fitter.evaluate(*golden, curves[0]);
    EXPECT_LT(q.rmsLogError, 0.05);
}

} // namespace
} // namespace otft::device
