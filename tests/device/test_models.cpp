/** @file Unit tests for the transistor models. */

#include <cmath>

#include <gtest/gtest.h>

#include "device/level1_model.hpp"
#include "device/level61_model.hpp"
#include "device/pentacene.hpp"
#include "device/silicon_mosfet.hpp"

namespace otft::device {
namespace {

Level1Model
makeLevel1()
{
    return Level1Model(Polarity::PType, pentaceneGeometry(),
                       Level1Params{});
}

TEST(Level1Model, OffBelowThreshold)
{
    const auto m = makeLevel1();
    // p-type: conduction needs vgs < -vt; vgs = 0 must be off.
    EXPECT_DOUBLE_EQ(m.drainCurrent(0.0, -1.0), 0.0);
    EXPECT_DOUBLE_EQ(m.drainCurrent(2.0, -1.0), 0.0);
}

TEST(Level1Model, PTypeSignConvention)
{
    const auto m = makeLevel1();
    // On device: negative vgs, negative vds -> current out of drain.
    const double id = m.drainCurrent(-5.0, -1.0);
    EXPECT_LT(id, 0.0);
}

TEST(Level1Model, SaturationIndependentOfVds)
{
    const auto m = makeLevel1();
    const double i1 = m.drainCurrent(-5.0, -4.0);
    const double i2 = m.drainCurrent(-5.0, -8.0);
    // Only channel-length modulation separates them.
    EXPECT_NEAR(i1 / i2, 1.0, 0.06);
}

TEST(Level1Model, TriodeQuadraticShape)
{
    Level1Params p;
    p.lambda = 0.0;
    const Level1Model m(Polarity::PType, pentaceneGeometry(), p);
    // In deep triode, current ~ vov * vds.
    const double i1 = std::abs(m.drainCurrent(-6.0, -0.1));
    const double i2 = std::abs(m.drainCurrent(-6.0, -0.2));
    EXPECT_NEAR(i2 / i1, 2.0, 0.05);
}

TEST(Level61Model, LeakageFloorWhenOff)
{
    const auto m = makePentaceneGolden();
    const double id = std::abs(m->drainCurrent(8.0, -1.0));
    // Far below threshold: within ~2x of the leakage floor.
    EXPECT_LT(id, 3.0 * m->params().iOff);
    EXPECT_GT(id, 0.0);
}

TEST(Level61Model, SubthresholdSlopeIsExponential)
{
    const auto m = makePentaceneGolden();
    // Subthreshold near the onset at |VDS| = 1 V: one volt of gate
    // drive multiplies current by 10^(1/SS)-ish. (Deeper below
    // threshold the leakage floor takes over — the 1e6 on/off ratio
    // only leaves ~2 decades of clean exponential.)
    const double i1 = std::abs(m->drainCurrent(0.5, -1.0));
    const double i2 = std::abs(m->drainCurrent(-0.5, -1.0));
    const double decades = std::log10(i2 / i1);
    EXPECT_GT(decades, 1.0);
    EXPECT_LT(decades, 4.5);
}

TEST(Level61Model, SourceDrainSymmetry)
{
    const auto m = makePentaceneGolden();
    // id(vgs, vds) == -id(vgs - vds, -vds) must hold by construction.
    for (double vgs : {-6.0, -3.0, 0.0, 2.0}) {
        for (double vds : {-5.0, -1.0, 1.0, 5.0}) {
            const double a = m->drainCurrent(vgs, vds);
            const double b = -m->drainCurrent(vgs - vds, -vds);
            EXPECT_NEAR(a, b, std::abs(a) * 1e-9 + 1e-18)
                << "vgs=" << vgs << " vds=" << vds;
        }
    }
}

TEST(Level61Model, ContinuityAcrossThreshold)
{
    const auto m = makePentaceneGolden();
    // No jumps: current is monotone in |vgs| through the threshold.
    double prev = std::abs(m->drainCurrent(4.0, -1.0));
    for (double vgs = 3.9; vgs >= -8.0; vgs -= 0.1) {
        const double cur = std::abs(m->drainCurrent(vgs, -1.0));
        EXPECT_GE(cur, prev * 0.999)
            << "current not monotone at vgs=" << vgs;
        prev = cur;
    }
}

TEST(Level61Model, DiblShiftsThreshold)
{
    const auto m = makePentaceneGolden();
    const double vt1 = m->effectiveVt(1.0);
    const double vt5 = m->effectiveVt(5.0);
    const double vt20 = m->effectiveVt(20.0);
    EXPECT_GT(vt1, vt5);
    // Clamp: no further shift past vdsRef + diblVmax.
    EXPECT_NEAR(vt20, m->effectiveVt(10.0), 1e-12);
}

TEST(Level61Model, CurrentScalesWithAspectRatio)
{
    Geometry narrow = pentaceneGeometry();
    narrow.w = 100e-6;
    const Level61Model wide(Polarity::PType, pentaceneGeometry(),
                            Level61Params{});
    const Level61Model thin(Polarity::PType, narrow, Level61Params{});
    const double iw = std::abs(wide.drainCurrent(-8.0, -5.0));
    const double in = std::abs(thin.drainCurrent(-8.0, -5.0));
    EXPECT_NEAR(iw / in, 10.0, 0.01);
}

TEST(GmGds, FiniteDifferencesArePositiveOn)
{
    const auto m = makePentaceneGolden();
    // At an on-state bias in the forward frame the derivatives follow
    // the mirrored sign convention; their magnitudes must be sane.
    const double gm = m->gm(-6.0, -3.0);
    EXPECT_GT(std::abs(gm), 1e-9);
}

TEST(SiliconMosfet, OnOffContrast)
{
    const auto nmos = makeSilicon45Nmos();
    const double on = nmos->drainCurrent(1.1, 1.1);
    const double off = nmos->drainCurrent(0.0, 1.1);
    EXPECT_GT(on / off, 1e3);
}

TEST(SiliconMosfet, MobilityGapVsOrganic)
{
    // The paper's ~1000x electron mobility gap.
    const SiliconParams si;
    const Level61Params org;
    EXPECT_GT(si.u0 / org.u0, 500.0);
    EXPECT_LT(si.u0 / org.u0, 5000.0);
}

TEST(SiliconMosfet, PmosWeakerThanNmos)
{
    const auto nmos = makeSilicon45Nmos();
    const auto pmos = makeSilicon45Pmos();
    const double in = std::abs(nmos->drainCurrent(1.1, 1.1));
    const double ip = std::abs(pmos->drainCurrent(-1.1, -1.1));
    EXPECT_GT(in, ip);
}

/** Parameterized sweep: monotonicity of |ID| in |VDS| (both models). */
class VdsMonotonic : public ::testing::TestWithParam<double>
{
};

TEST_P(VdsMonotonic, CurrentNonDecreasingInVds)
{
    const auto m = makePentaceneGolden();
    const double vgs = GetParam();
    double prev = 0.0;
    for (double vds = -0.1; vds >= -10.0; vds -= 0.1) {
        const double cur = std::abs(m->drainCurrent(vgs, vds));
        EXPECT_GE(cur, prev * 0.9999) << "vgs=" << vgs
                                      << " vds=" << vds;
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(GateBiases, VdsMonotonic,
                         ::testing::Values(-8.0, -5.0, -3.0, -1.0,
                                           0.0));

} // namespace
} // namespace otft::device
