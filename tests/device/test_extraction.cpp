/**
 * @file
 * Calibration lock-in tests: parameter extraction on the golden
 * pentacene device must reproduce the paper's published figures of
 * merit (Sec. 4.1). These tests pin the device calibration — if a
 * model change drifts the extracted values, the whole downstream
 * flow (cells, library, architecture results) loses its anchor.
 */

#include <gtest/gtest.h>

#include "device/extraction.hpp"
#include "device/measurement.hpp"
#include "device/pentacene.hpp"
#include "util/logging.hpp"

namespace otft::device {
namespace {

class GoldenExtraction : public ::testing::Test
{
  protected:
    GoldenExtraction()
        : curves(measurePentaceneFig3()),
          extractor(Polarity::PType, pentaceneGeometry())
    {}

    std::vector<TransferCurve> curves;
    ParameterExtractor extractor;
};

TEST_F(GoldenExtraction, LinearMobilityMatchesPaper)
{
    const auto p = extractor.extract(curves[0]);
    // Paper: 0.16 cm^2/Vs.
    EXPECT_NEAR(p.mobility * 1e4, 0.16, 0.01);
}

TEST_F(GoldenExtraction, ThresholdAtVds1MatchesPaper)
{
    const auto p = extractor.extract(curves[0]);
    // Paper: -1.3 V at |VDS| = 1 V.
    EXPECT_NEAR(p.vt, -1.3, 0.1);
}

TEST_F(GoldenExtraction, ThresholdAtVds10MatchesPaper)
{
    const auto p = extractor.extract(curves[1]);
    // Paper: +1.3 V at |VDS| = 10 V (drain-induced shift).
    EXPECT_NEAR(p.vt, 1.3, 0.15);
}

TEST_F(GoldenExtraction, SubthresholdSlopeNearPaper)
{
    const auto p1 = extractor.extract(curves[0]);
    const auto p10 = extractor.extract(curves[1]);
    // Paper: 350 mV/dec; accept the extraction spread.
    EXPECT_NEAR(p1.ss * 1e3, 350.0, 40.0);
    EXPECT_NEAR(p10.ss * 1e3, 350.0, 40.0);
}

TEST_F(GoldenExtraction, OnOffRatioMatchesPaper)
{
    const auto p = extractor.extract(curves[0]);
    // Paper: 1e6.
    EXPECT_GT(p.onOffRatio, 0.5e6);
    EXPECT_LT(p.onOffRatio, 2.0e6);
}

TEST_F(GoldenExtraction, RegimeSelectionAuto)
{
    // Auto must agree with the explicit regimes.
    const auto lin = extractor.extract(curves[0], Regime::Linear);
    const auto autolin = extractor.extract(curves[0], Regime::Auto);
    EXPECT_DOUBLE_EQ(lin.vt, autolin.vt);

    const auto sat = extractor.extract(curves[1], Regime::Saturation);
    const auto autosat = extractor.extract(curves[1], Regime::Auto);
    EXPECT_DOUBLE_EQ(sat.vt, autosat.vt);
}

TEST_F(GoldenExtraction, NoiseRobustness)
{
    // Same device, different instrument noise seed: extraction must
    // move only slightly.
    const auto other = measurePentaceneFig3(201, 1234);
    const auto a = extractor.extract(curves[0]);
    const auto b = extractor.extract(other[0]);
    EXPECT_NEAR(a.mobility, b.mobility, 0.05 * a.mobility);
    EXPECT_NEAR(a.vt, b.vt, 0.2);
}

TEST_F(GoldenExtraction, MalformedCurveIsFatal)
{
    TransferCurve bad;
    bad.vgs = {0.0, 1.0};
    bad.id = {1e-9, 2e-9};
    EXPECT_THROW(extractor.extract(bad), FatalError);
}

/** Sweep: extraction stays consistent across sweep resolutions. */
class ExtractionResolution : public ::testing::TestWithParam<int>
{
};

TEST_P(ExtractionResolution, MobilityStableAcrossResolution)
{
    const auto curves = measurePentaceneFig3(
        static_cast<std::size_t>(GetParam()), 42);
    ParameterExtractor extractor(Polarity::PType, pentaceneGeometry());
    const auto p = extractor.extract(curves[0]);
    EXPECT_NEAR(p.mobility * 1e4, 0.16, 0.015);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, ExtractionResolution,
                         ::testing::Values(101, 151, 201, 301, 401));

} // namespace
} // namespace otft::device
