/** @file Unit tests for process variation sampling. */

#include <cmath>

#include <gtest/gtest.h>

#include "device/pentacene.hpp"
#include "device/variation.hpp"

namespace otft::device {
namespace {

TEST(Variation, VtSpreadMatchesPublishedBand)
{
    // Paper: VT spread within 0.5 V across a sample (+/- 2 sigma).
    VariationModel model;
    Rng rng(1);
    const Level61Params nominal;
    std::vector<double> vts;
    for (int i = 0; i < 4000; ++i)
        vts.push_back(model.sample(nominal, rng).vt0);
    double sum = 0.0, sq = 0.0;
    for (double v : vts) {
        sum += v;
        sq += v * v;
    }
    const double mean = sum / vts.size();
    const double sigma = std::sqrt(sq / vts.size() - mean * mean);
    EXPECT_NEAR(mean, nominal.vt0, 0.02);
    EXPECT_NEAR(4.0 * sigma, 0.5, 0.05);
}

TEST(Variation, MobilityLogNormalAroundNominal)
{
    VariationModel model;
    Rng rng(2);
    const Level61Params nominal;
    double log_sum = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const auto p = model.sample(nominal, rng);
        EXPECT_GT(p.u0, 0.0);
        log_sum += std::log(p.u0 / nominal.u0);
    }
    EXPECT_NEAR(log_sum / n, 0.0, 0.02);
}

TEST(Variation, SampleDeviceKeepsGeometryAndPolarity)
{
    VariationModel model;
    Rng rng(3);
    const auto nominal = makePentaceneGolden();
    const auto varied = model.sampleDevice(*nominal, rng);
    EXPECT_EQ(varied->polarity(), Polarity::PType);
    EXPECT_DOUBLE_EQ(varied->geometry().w, nominal->geometry().w);
    EXPECT_DOUBLE_EQ(varied->geometry().l, nominal->geometry().l);
}

TEST(Variation, DeterministicGivenSeed)
{
    VariationModel model;
    const Level61Params nominal;
    Rng a(9), b(9);
    for (int i = 0; i < 16; ++i) {
        const auto pa = model.sample(nominal, a);
        const auto pb = model.sample(nominal, b);
        EXPECT_DOUBLE_EQ(pa.vt0, pb.vt0);
        EXPECT_DOUBLE_EQ(pa.u0, pb.u0);
        EXPECT_DOUBLE_EQ(pa.iOff, pb.iOff);
    }
}

TEST(Variation, LeakageStaysPositive)
{
    VariationModel model;
    Rng rng(5);
    const Level61Params nominal;
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(model.sample(nominal, rng).iOff, 0.0);
}

} // namespace
} // namespace otft::device
