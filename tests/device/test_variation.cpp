/** @file Unit tests for process variation sampling. */

#include <cmath>

#include <gtest/gtest.h>

#include "device/pentacene.hpp"
#include "device/variation.hpp"

namespace otft::device {
namespace {

TEST(Variation, VtSpreadMatchesPublishedBand)
{
    // Paper: VT spread within 0.5 V across a sample (+/- 2 sigma).
    VariationModel model;
    Rng rng(1);
    const Level61Params nominal;
    std::vector<double> vts;
    for (int i = 0; i < 4000; ++i)
        vts.push_back(model.sample(nominal, rng).vt0);
    double sum = 0.0, sq = 0.0;
    for (double v : vts) {
        sum += v;
        sq += v * v;
    }
    const double mean = sum / vts.size();
    const double sigma = std::sqrt(sq / vts.size() - mean * mean);
    EXPECT_NEAR(mean, nominal.vt0, 0.02);
    EXPECT_NEAR(4.0 * sigma, 0.5, 0.05);
}

TEST(Variation, MobilityLogNormalAroundNominal)
{
    VariationModel model;
    Rng rng(2);
    const Level61Params nominal;
    double log_sum = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const auto p = model.sample(nominal, rng);
        EXPECT_GT(p.u0, 0.0);
        log_sum += std::log(p.u0 / nominal.u0);
    }
    EXPECT_NEAR(log_sum / n, 0.0, 0.02);
}

TEST(Variation, SampleDeviceKeepsGeometryAndPolarity)
{
    VariationModel model;
    Rng rng(3);
    const auto nominal = makePentaceneGolden();
    const auto varied = model.sampleDevice(*nominal, rng);
    EXPECT_EQ(varied->polarity(), Polarity::PType);
    EXPECT_DOUBLE_EQ(varied->geometry().w, nominal->geometry().w);
    EXPECT_DOUBLE_EQ(varied->geometry().l, nominal->geometry().l);
}

TEST(Variation, DeterministicGivenSeed)
{
    VariationModel model;
    const Level61Params nominal;
    Rng a(9), b(9);
    for (int i = 0; i < 16; ++i) {
        const auto pa = model.sample(nominal, a);
        const auto pb = model.sample(nominal, b);
        EXPECT_DOUBLE_EQ(pa.vt0, pb.vt0);
        EXPECT_DOUBLE_EQ(pa.u0, pb.u0);
        EXPECT_DOUBLE_EQ(pa.iOff, pb.iOff);
    }
}

TEST(Variation, LeakageStaysPositive)
{
    VariationModel model;
    Rng rng(5);
    const Level61Params nominal;
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(model.sample(nominal, rng).iOff, 0.0);
}

TEST(Variation, LargeSigmaDrawsClampToPhysicalRanges)
{
    // Regression: before the model-valid clamps, a 5-sigma config
    // produced negative-headroom VT shifts and mobility multipliers
    // of 100x+ that the circuit solver simulated as garbage (arcs
    // that never switch). Draws must stay inside the clamp bands no
    // matter how wide the configured distribution is.
    VariationConfig wild;
    wild.vtSigma = 5.0;           // volts — absurdly wide on purpose
    wild.mobilityLnSigma = 5.0;
    wild.leakageDecadeSigma = 5.0;
    const VariationModel model(wild);
    const Level61Params nominal;
    StreamRng rng(17, "clamp-regression");
    for (int i = 0; i < 5000; ++i) {
        const auto p = model.sample(nominal, rng);
        EXPECT_LE(std::abs(p.vt0 - nominal.vt0), wild.vtShiftMax);
        EXPECT_GE(p.u0, nominal.u0 * wild.mobilityFactorMin);
        EXPECT_LE(p.u0, nominal.u0 * wild.mobilityFactorMax);
        EXPECT_GT(p.iOff, 0.0);
        const double decades = std::log10(p.iOff / nominal.iOff);
        EXPECT_LE(std::abs(decades), wild.leakageDecadeMax + 1e-9);
    }
}

TEST(Variation, DefaultSigmasRarelyTouchTheClamps)
{
    // The clamps are a safety net, not part of the distribution: at
    // the published widths they must engage only for > 5-sigma draws,
    // so the historical statistics are unchanged.
    VariationModel model;
    const Level61Params nominal;
    StreamRng rng(18, "clamp-tail");
    int clamped = 0;
    const auto &cfg = model.config();
    for (int i = 0; i < 20000; ++i) {
        const auto p = model.sample(nominal, rng);
        if (std::abs(p.vt0 - nominal.vt0) >= cfg.vtShiftMax - 1e-12 ||
            p.u0 <= nominal.u0 * cfg.mobilityFactorMin * (1 + 1e-12) ||
            p.u0 >= nominal.u0 * cfg.mobilityFactorMax * (1 - 1e-12))
            ++clamped;
    }
    EXPECT_EQ(clamped, 0);
}

TEST(Variation, DieComponentShiftsEveryDeviceTogether)
{
    VariationConfig config;
    config.dieVtSigma = 0.25;
    config.dieMobilityLnSigma = 0.15;
    config.vtSigma = 0.0; // isolate the die component
    config.mobilityLnSigma = 0.0;
    config.leakageDecadeSigma = 0.0;
    const VariationModel model(config);
    const Level61Params nominal;

    StreamRng die_rng = StreamRng(5).substream("die");
    const DieVariation die = model.sampleDie(die_rng);
    EXPECT_NE(die.dVt, 0.0);

    StreamRng dev_a = StreamRng(5).substream("cell/inv");
    StreamRng dev_b = StreamRng(5).substream("cell/nand2");
    const auto pa = model.sample(nominal, die, dev_a);
    const auto pb = model.sample(nominal, die, dev_b);
    // Zero per-device sigma: both devices land exactly on the die
    // shift.
    EXPECT_DOUBLE_EQ(pa.vt0, pb.vt0);
    EXPECT_DOUBLE_EQ(pa.u0, pb.u0);
    EXPECT_DOUBLE_EQ(pa.vt0 - nominal.vt0, die.dVt);
}

TEST(Variation, StreamRngSamplingIsOrderIndependent)
{
    // The StreamRng overloads draw in a fixed (vt, mobility, leakage)
    // order from an explicit stream — two streams built from the same
    // (seed, path) must produce identical parameter sets even when
    // one generator has been used for other draws in between.
    const VariationModel model;
    const Level61Params nominal;
    StreamRng root(99);
    StreamRng a = root.substream("mc/sample/4");
    StreamRng scratch = root.substream("other");
    scratch.normal();
    StreamRng b = root.substream("mc/sample/4");
    const auto pa = model.sample(nominal, a);
    const auto pb = model.sample(nominal, b);
    EXPECT_DOUBLE_EQ(pa.vt0, pb.vt0);
    EXPECT_DOUBLE_EQ(pa.u0, pb.u0);
    EXPECT_DOUBLE_EQ(pa.iOff, pb.iOff);
}

} // namespace
} // namespace otft::device
