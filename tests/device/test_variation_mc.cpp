/**
 * @file
 * Deterministic Monte Carlo regression for the variation + VSS
 * retuning extension (paper Secs. 1, 4.1, 4.3.3).
 *
 * Promotes the ext_variation bench into tier-1: a small seeded sample
 * set is pushed through the pseudo-E inverter VTC analysis at the
 * nominal VSS and with per-sample VSS retuning, and the resulting
 * switching-threshold / noise-margin statistics are pinned to golden
 * values. The goldens are exact outputs of the deterministic solver
 * at seed 1 — any drift (device model, VTC analyzer, RNG stream
 * layout) fails loudly here instead of silently moving every MC
 * result.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "cells/topologies.hpp"
#include "cells/vtc.hpp"
#include "device/variation.hpp"
#include "util/parallel.hpp"
#include "util/stream_rng.hpp"

namespace otft {
namespace {

struct McSample
{
    double vmNominal = 0.0;
    double nmNominal = 0.0;
    double vmTuned = 0.0;
    double nmTuned = 0.0;
    double chosenVss = -15.0;
};

cells::VtcResult
measureInverter(const device::Level61Params &params, double vss)
{
    cells::SupplyConfig supply{5.0, vss};
    cells::CellFactory factory(params, cells::CellSizing{}, supply);
    auto cell = factory.inverter(cells::InverterKind::PseudoE);
    return cells::VtcAnalyzer(81).analyze(cell);
}

/** The ext_variation bench flow: sample, measure, retune. */
std::vector<McSample>
runMonteCarlo(int n_samples, std::uint64_t seed, int jobs)
{
    device::VariationConfig corners;
    corners.vtSigma = 0.45;
    corners.mobilityLnSigma = 0.30;
    const device::VariationModel variation(corners);
    const StreamRng root(seed, "ext_variation");
    const device::Level61Params nominal;
    const std::vector<double> vss_grid = {-20.0, -17.5, -15.0, -12.5,
                                          -10.0};
    parallel::JobsOverride guard(jobs);
    return parallel::orderedMap<McSample>(
        static_cast<std::size_t>(n_samples), [&](std::size_t i) {
            StreamRng rng = root.substream(i);
            const auto params = variation.sample(nominal, rng);
            McSample s;
            const auto at_nominal = measureInverter(params, -15.0);
            s.vmNominal = at_nominal.vm;
            s.nmNominal = std::min(at_nominal.nmh, at_nominal.nml);
            double best_err = 1e9;
            for (double vss : vss_grid) {
                const auto r = measureInverter(params, vss);
                const double err = std::abs(r.vm - 2.5);
                if (err < best_err) {
                    best_err = err;
                    s.vmTuned = r.vm;
                    s.nmTuned = std::min(r.nmh, r.nml);
                    s.chosenVss = vss;
                }
            }
            return s;
        });
}

double
yieldOf(const std::vector<McSample> &samples, bool tuned)
{
    int pass = 0;
    for (const McSample &s : samples) {
        const double vm = tuned ? s.vmTuned : s.vmNominal;
        const double nm = tuned ? s.nmTuned : s.nmNominal;
        if (std::abs(vm - 2.5) < 0.35 && nm > 0.30)
            ++pass;
    }
    return static_cast<double>(pass) /
           static_cast<double>(samples.size());
}

TEST(VariationMc, GoldenStatisticsAtSeedOne)
{
    const auto samples = runMonteCarlo(8, 1, 2);
    ASSERT_EQ(samples.size(), 8u);
    double vm_sum = 0.0, nm_sum = 0.0;
    for (const McSample &s : samples) {
        vm_sum += s.vmNominal;
        nm_sum += s.nmNominal;
    }
    // Goldens: exact outputs of the deterministic flow at seed 1.
    EXPECT_NEAR(vm_sum / 8.0, 2.752228540783, 1e-9);
    EXPECT_NEAR(nm_sum / 8.0, 0.693712953100, 1e-9);
    // Extremes of the sample set: the high-VT die that needs the
    // strongest VSS and the low-VT die that needs the weakest.
    EXPECT_NEAR(samples[0].vmNominal, 3.088187377673, 1e-9);
    EXPECT_DOUBLE_EQ(samples[0].chosenVss, -20.0);
    EXPECT_NEAR(samples[4].vmNominal, 2.406645009758, 1e-9);
    EXPECT_DOUBLE_EQ(samples[4].chosenVss, -12.5);
}

TEST(VariationMc, VssRetuningRecoversYield)
{
    // The paper's robustness claim (Sec. 4.1): the linear VM-vs-VSS
    // relationship lets a per-sample VSS trim re-center the switching
    // threshold. At seed 1 a quarter of the samples fail the
    // VM/noise-margin acceptance at the fixed -15 V supply, and every
    // one of them is recovered by retuning.
    const auto samples = runMonteCarlo(8, 1, 2);
    const double fixed = yieldOf(samples, false);
    const double tuned = yieldOf(samples, true);
    EXPECT_DOUBLE_EQ(fixed, 0.75);
    EXPECT_DOUBLE_EQ(tuned, 1.0);
    EXPECT_GT(tuned, fixed);
    for (const McSample &s : samples) {
        EXPECT_LT(std::abs(s.vmTuned - 2.5), 0.35);
        EXPECT_GT(s.nmTuned, 0.30);
    }
}

TEST(VariationMc, BitIdenticalAcrossJobCounts)
{
    const auto serial = runMonteCarlo(6, 1, 1);
    const auto parallel4 = runMonteCarlo(6, 1, 4);
    ASSERT_EQ(serial.size(), parallel4.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_DOUBLE_EQ(serial[i].vmNominal, parallel4[i].vmNominal);
        EXPECT_DOUBLE_EQ(serial[i].nmNominal, parallel4[i].nmNominal);
        EXPECT_DOUBLE_EQ(serial[i].vmTuned, parallel4[i].vmTuned);
        EXPECT_DOUBLE_EQ(serial[i].chosenVss, parallel4[i].chosenVss);
    }
}

} // namespace
} // namespace otft
