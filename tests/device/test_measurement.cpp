/** @file Unit tests for the synthetic measurement bench. */

#include <gtest/gtest.h>

#include "device/measurement.hpp"
#include "device/pentacene.hpp"
#include "util/logging.hpp"

namespace otft::device {
namespace {

TEST(MeasurementBench, DeterministicForSeed)
{
    const auto a = measurePentaceneFig3(101, 5);
    const auto b = measurePentaceneFig3(101, 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t c = 0; c < a.size(); ++c)
        for (std::size_t i = 0; i < a[c].id.size(); ++i)
            EXPECT_DOUBLE_EQ(a[c].id[i], b[c].id[i]);
}

TEST(MeasurementBench, SeedsChangeNoise)
{
    const auto a = measurePentaceneFig3(101, 5);
    const auto b = measurePentaceneFig3(101, 6);
    int differing = 0;
    for (std::size_t i = 0; i < a[0].id.size(); ++i)
        if (a[0].id[i] != b[0].id[i])
            ++differing;
    EXPECT_GT(differing, 90);
}

TEST(MeasurementBench, CurrentsPositiveAndAboveFloor)
{
    InstrumentConfig config;
    const auto curves = measurePentaceneFig3(201, 42);
    for (const auto &curve : curves) {
        for (double id : curve.id) {
            EXPECT_GT(id, 0.0);
            EXPECT_GT(id, 0.3 * config.currentFloor);
        }
    }
}

TEST(MeasurementBench, OnCurrentScalesWithVds)
{
    const auto curves = measurePentaceneFig3(201, 42);
    // At VGS = -10 V the 10 V sweep carries much more current.
    EXPECT_GT(curves[1].id.front(), 3.0 * curves[0].id.front());
}

TEST(MeasurementBench, SweepAxesWellFormed)
{
    const auto curves = measurePentaceneFig3(51, 1);
    ASSERT_EQ(curves.size(), 2u);
    EXPECT_DOUBLE_EQ(curves[0].vds, 1.0);
    EXPECT_DOUBLE_EQ(curves[1].vds, 10.0);
    for (const auto &curve : curves) {
        ASSERT_EQ(curve.vgs.size(), 51u);
        ASSERT_EQ(curve.id.size(), 51u);
        ASSERT_EQ(curve.ig.size(), 51u);
        EXPECT_DOUBLE_EQ(curve.vgs.front(), -10.0);
        EXPECT_DOUBLE_EQ(curve.vgs.back(), 10.0);
    }
}

TEST(MeasurementBench, GateLeakageSmallerThanOnCurrent)
{
    const auto curves = measurePentaceneFig3(201, 42);
    EXPECT_LT(curves[0].ig.front(), 1e-3 * curves[0].id.front());
}

TEST(MeasurementBench, OutputCurveMonotone)
{
    auto golden = makePentaceneGolden();
    MeasurementBench bench;
    const auto out = bench.measureOutput(*golden, -8.0, 0.0, -10.0 *
                                         -1.0, 51);
    // measureOutput with vds 0..10 in the forward direction of the
    // p-type device is taken with negative drain bias internally via
    // the caller; here we just check the sweep is well formed.
    EXPECT_EQ(out.vds.size(), 51u);
    EXPECT_EQ(out.id.size(), 51u);
}

TEST(MeasurementBench, RejectsTinySweeps)
{
    auto golden = makePentaceneGolden();
    MeasurementBench bench;
    EXPECT_THROW(bench.measureTransfer(*golden, -1.0, 0.0, 1.0, 1),
                 FatalError);
}

} // namespace
} // namespace otft::device
