/** @file Unit tests for synthetic trace generation. */

#include <map>

#include <gtest/gtest.h>

#include "util/logging.hpp"
#include "workload/trace.hpp"

namespace otft::workload {
namespace {

TEST(Workloads, SevenPaperWorkloads)
{
    const auto all = paperWorkloads();
    ASSERT_EQ(all.size(), 7u);
    std::vector<std::string> names;
    for (const auto &p : all)
        names.push_back(p.name);
    for (const char *expect : {"bzip", "gap", "gzip", "mcf", "parser",
                               "vortex", "dhrystone"})
        EXPECT_NE(std::find(names.begin(), names.end(), expect),
                  names.end())
            << expect;
}

TEST(Workloads, ProfileByNameAndUnknown)
{
    EXPECT_EQ(profileByName("mcf").name, "mcf");
    EXPECT_THROW(profileByName("spice"), FatalError);
}

TEST(TraceGenerator, Deterministic)
{
    const auto profile = profileByName("gzip");
    TraceGenerator a(profile, 5), b(profile, 5);
    for (int i = 0; i < 1000; ++i) {
        const auto ia = a.next();
        const auto ib = b.next();
        EXPECT_EQ(static_cast<int>(ia.op), static_cast<int>(ib.op));
        EXPECT_EQ(ia.pc, ib.pc);
        EXPECT_EQ(ia.taken, ib.taken);
        EXPECT_EQ(ia.address, ib.address);
    }
}

TEST(TraceGenerator, MixMatchesProfile)
{
    const auto profile = profileByName("mcf");
    TraceGenerator gen(profile, 7);
    std::map<OpClass, int> counts;
    const int n = 60000;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next().op];

    EXPECT_NEAR(static_cast<double>(counts[OpClass::Branch]) / n,
                profile.branchFraction, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[OpClass::Load]) / n,
                profile.loadFraction, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[OpClass::Store]) / n,
                profile.storeFraction, 0.02);
}

TEST(TraceGenerator, BranchSitesAreBiased)
{
    // The per-site outcome streams must be learnable: most sites
    // strongly biased (this is what the direction predictor exploits).
    const auto profile = profileByName("dhrystone");
    TraceGenerator gen(profile, 7);
    std::map<std::uint64_t, std::pair<int, int>> sites;
    for (int i = 0; i < 150000; ++i) {
        const auto inst = gen.next();
        if (inst.op != OpClass::Branch)
            continue;
        auto &s = sites[inst.pc];
        ++s.second;
        if (inst.taken)
            ++s.first;
    }
    double predictable = 0.0, total = 0.0;
    for (const auto &[pc, s] : sites) {
        const double rate =
            static_cast<double>(s.first) / s.second;
        const double best = std::min(rate, 1.0 - rate);
        predictable += best * s.second;
        total += s.second;
    }
    // Ideal static-per-site mispredict rate well under 15%.
    EXPECT_LT(predictable / total, 0.15);
}

TEST(TraceGenerator, RegistersInRange)
{
    const auto profile = profileByName("gap");
    TraceGenerator gen(profile, 11);
    for (int i = 0; i < 5000; ++i) {
        const auto inst = gen.next();
        for (int reg : {inst.src1, inst.src2, inst.dest}) {
            if (reg != noReg) {
                EXPECT_GE(reg, 0);
                EXPECT_LT(reg, numArchRegs);
            }
        }
        if (inst.op == OpClass::Branch) {
            EXPECT_EQ(inst.dest, noReg);
        }
        if (inst.op == OpClass::Load) {
            EXPECT_NE(inst.dest, noReg);
        }
    }
}

TEST(TraceGenerator, AddressesInsideWorkingSet)
{
    const auto profile = profileByName("bzip");
    TraceGenerator gen(profile, 13);
    for (int i = 0; i < 20000; ++i) {
        const auto inst = gen.next();
        if (inst.op != OpClass::Load && inst.op != OpClass::Store)
            continue;
        EXPECT_GE(inst.address, 0x10000u);
        EXPECT_LE(inst.address,
                  0x10000 + profile.workingSetBytes + 64);
    }
}

TEST(TraceGenerator, McfLeastLocal)
{
    // mcf's profile must be the memory-hostile one.
    const auto mcf = profileByName("mcf");
    const auto dhry = profileByName("dhrystone");
    EXPECT_LT(mcf.hotFraction, dhry.hotFraction);
    EXPECT_GT(mcf.workingSetBytes, dhry.workingSetBytes);
    EXPECT_GT(mcf.pointerChaseFraction, dhry.pointerChaseFraction);
}

/** Sweep: every paper workload generates well-formed traces. */
class AllWorkloads : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AllWorkloads, GeneratesSaneTraces)
{
    const auto profile = profileByName(GetParam());
    TraceGenerator gen(profile, 99);
    int branches = 0;
    for (int i = 0; i < 20000; ++i) {
        const auto inst = gen.next();
        if (inst.op == OpClass::Branch) {
            ++branches;
            EXPECT_NE(inst.target, 0u);
        }
    }
    EXPECT_GT(branches, 20000 * profile.branchFraction * 0.7);
}

INSTANTIATE_TEST_SUITE_P(Paper, AllWorkloads,
                         ::testing::Values("bzip", "gap", "gzip",
                                           "mcf", "parser", "vortex",
                                           "dhrystone"));

} // namespace
} // namespace otft::workload
