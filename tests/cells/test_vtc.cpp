/** @file Unit tests for VTC analysis (paper Figs. 6-8 machinery). */

#include <gtest/gtest.h>

#include "cells/topologies.hpp"
#include "cells/vtc.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace otft::cells {
namespace {

TEST(Vtc, PseudoEBeatsDiodeLoad)
{
    // The paper's Fig. 6 ordering: pseudo-E gain and noise margins
    // dominate the simple loads.
    cells::SupplyConfig supply{15.0, -15.0};
    CellFactory pseudo_factory(device::Level61Params{}, CellSizing{},
                               supply);
    cells::SupplyConfig diode_supply{15.0, 0.0};
    CellFactory diode_factory(device::Level61Params{}, CellSizing{},
                              diode_supply);

    VtcAnalyzer analyzer(101);
    auto pe_cell = pseudo_factory.inverter(InverterKind::PseudoE);
    auto dl_cell = diode_factory.inverter(InverterKind::DiodeLoad);
    const auto pe = analyzer.analyze(pe_cell);
    const auto dl = analyzer.analyze(dl_cell);

    EXPECT_GT(pe.maxGain, 2.0 * dl.maxGain);
    EXPECT_GT(pe.nmh, dl.nmh);
    EXPECT_GT(pe.nml, dl.nml);
    EXPECT_GT(pe.voh, dl.voh);
    EXPECT_LT(pe.vol, dl.vol);
}

TEST(Vtc, SwitchingThresholdOnMirror)
{
    CellFactory factory;
    auto cell = factory.inverter(InverterKind::PseudoE);
    VtcAnalyzer analyzer(151);
    const auto r = analyzer.analyze(cell);
    // VM is where VOUT == VIN.
    EXPECT_NEAR(interpolate(r.vin, r.vout, r.vm), r.vm, 0.05);
    EXPECT_GT(r.vm, 0.0);
    EXPECT_LT(r.vm, factory.supply().vdd);
}

TEST(Vtc, MonotoneDecreasing)
{
    CellFactory factory;
    auto cell = factory.inverter(InverterKind::PseudoE);
    VtcAnalyzer analyzer(101);
    const auto r = analyzer.analyze(cell);
    for (std::size_t i = 1; i < r.vout.size(); ++i)
        EXPECT_LE(r.vout[i], r.vout[i - 1] + 1e-6);
}

TEST(Vtc, StaticPowerPositiveAndAsymmetric)
{
    CellFactory factory;
    auto cell = factory.inverter(InverterKind::PseudoE);
    VtcAnalyzer analyzer(61);
    const auto r = analyzer.analyze(cell);
    // Level-shifter current dominates when the input is low.
    EXPECT_GT(r.staticPowerLow, r.staticPowerHigh);
    EXPECT_GT(r.staticPowerHigh, 0.0);
}

TEST(Vtc, MecMarginsNotLargerThanHalfSwing)
{
    CellFactory factory;
    auto cell = factory.inverter(InverterKind::PseudoE);
    VtcAnalyzer analyzer(101);
    const auto r = analyzer.analyze(cell);
    EXPECT_GE(r.nmh, 0.0);
    EXPECT_GE(r.nml, 0.0);
    EXPECT_LE(r.nmh, factory.supply().vdd);
    EXPECT_LE(r.nml, factory.supply().vdd);
}

TEST(Vtc, VmTracksVss)
{
    // The Fig. 8 mechanism: more negative VSS lowers VM.
    VtcAnalyzer analyzer(81);
    std::vector<double> vms;
    for (double vss : {-20.0, -15.0, -10.0}) {
        cells::SupplyConfig supply{5.0, vss};
        CellFactory factory(device::Level61Params{}, CellSizing{},
                            supply);
        auto cell = factory.inverter(InverterKind::PseudoE);
        vms.push_back(analyzer.analyze(cell).vm);
    }
    EXPECT_LT(vms[0], vms[1]);
    EXPECT_LT(vms[1], vms[2]);
}

TEST(Vtc, NandVtcWithSensitizedInputs)
{
    CellFactory factory;
    auto cell = factory.nand(2);
    VtcAnalyzer analyzer(81);
    // Hold the second input high to sensitize input A.
    const auto r = analyzer.analyze(cell, factory.supply().vdd);
    EXPECT_GT(r.voh - r.vol, 0.5 * factory.supply().vdd);
}

TEST(Vtc, RejectsTooFewPoints)
{
    CellFactory factory;
    auto cell = factory.inverter(InverterKind::PseudoE);
    VtcAnalyzer analyzer(8);
    EXPECT_THROW(analyzer.analyze(cell), FatalError);
}

/** Sweep over VDD: gain and NM stay meaningful across supplies. */
class VtcAcrossVdd : public ::testing::TestWithParam<double>
{
};

TEST_P(VtcAcrossVdd, GainAboveUnityAndMarginsPositive)
{
    const double vdd = GetParam();
    cells::SupplyConfig supply{vdd, -15.0};
    CellFactory factory(device::Level61Params{}, CellSizing{}, supply);
    auto cell = factory.inverter(InverterKind::PseudoE);
    VtcAnalyzer analyzer(101);
    const auto r = analyzer.analyze(cell);
    EXPECT_GT(r.maxGain, 1.0) << "VDD=" << vdd;
    EXPECT_GT(r.nmh, 0.0) << "VDD=" << vdd;
    EXPECT_GT(r.nml, 0.0) << "VDD=" << vdd;
}

INSTANTIATE_TEST_SUITE_P(Supplies, VtcAcrossVdd,
                         ::testing::Values(4.0, 5.0, 7.5, 10.0, 15.0));

} // namespace
} // namespace otft::cells
