/** @file Unit tests for the organic standard cell topologies. */

#include <gtest/gtest.h>

#include "cells/topologies.hpp"
#include "circuit/dc.hpp"
#include "circuit/transient.hpp"
#include "util/logging.hpp"

namespace otft::cells {
namespace {

/** Solve a cell's DC output for given input levels. */
double
dcOut(BuiltCell &cell, const std::vector<double> &inputs)
{
    for (std::size_t i = 0; i < inputs.size(); ++i)
        cell.ckt.setSourceWave(cell.inputSources[i],
                               circuit::Pwl::constant(inputs[i]));
    circuit::DcAnalysis dc(cell.ckt);
    return dc.nodeVoltage(dc.operatingPoint(), cell.out);
}

class Topologies : public ::testing::Test
{
  protected:
    CellFactory factory;
    double vdd = factory.supply().vdd;
    double mid = 0.5 * factory.supply().vdd;
};

TEST_F(Topologies, PseudoEInverterInverts)
{
    auto cell = factory.inverter(InverterKind::PseudoE);
    EXPECT_GT(dcOut(cell, {0.0}), 0.9 * vdd);
    EXPECT_LT(dcOut(cell, {vdd}), 0.15 * vdd);
}

TEST_F(Topologies, DiodeLoadInverterRatioedLevels)
{
    auto cell = factory.inverter(InverterKind::DiodeLoad);
    const double high = dcOut(cell, {0.0});
    const double low = dcOut(cell, {vdd});
    EXPECT_GT(high, low);
    // Ratioed: neither level reaches the rail.
    EXPECT_LT(high, vdd);
    EXPECT_GT(low, 0.0);
}

TEST_F(Topologies, BiasedLoadPullsLowerThanDiode)
{
    auto diode = factory.inverter(InverterKind::DiodeLoad);
    auto biased = factory.inverter(InverterKind::BiasedLoad);
    EXPECT_LT(dcOut(biased, {vdd}), dcOut(diode, {vdd}));
}

TEST_F(Topologies, Nand2TruthTable)
{
    auto cell = factory.nand(2);
    EXPECT_GT(dcOut(cell, {0.0, 0.0}), mid);
    EXPECT_GT(dcOut(cell, {0.0, vdd}), mid);
    EXPECT_GT(dcOut(cell, {vdd, 0.0}), mid);
    EXPECT_LT(dcOut(cell, {vdd, vdd}), mid);
}

TEST_F(Topologies, Nand3TruthTable)
{
    auto cell = factory.nand(3);
    EXPECT_GT(dcOut(cell, {vdd, vdd, 0.0}), mid);
    EXPECT_LT(dcOut(cell, {vdd, vdd, vdd}), mid);
}

TEST_F(Topologies, Nor2TruthTable)
{
    auto cell = factory.nor(2);
    EXPECT_GT(dcOut(cell, {0.0, 0.0}), mid);
    EXPECT_LT(dcOut(cell, {0.0, vdd}), mid);
    EXPECT_LT(dcOut(cell, {vdd, 0.0}), mid);
    EXPECT_LT(dcOut(cell, {vdd, vdd}), mid);
}

TEST_F(Topologies, Nor3TruthTable)
{
    auto cell = factory.nor(3);
    EXPECT_GT(dcOut(cell, {0.0, 0.0, 0.0}), mid);
    EXPECT_LT(dcOut(cell, {0.0, 0.0, vdd}), mid);
}

TEST_F(Topologies, TransistorCounts)
{
    // Pseudo-E gates: fan-in drive+shift pairs + diode + load.
    EXPECT_EQ(factory.inverter(InverterKind::PseudoE).transistorCount,
              4);
    EXPECT_EQ(factory.inverter(InverterKind::DiodeLoad).transistorCount,
              2);
    EXPECT_EQ(factory.nand(2).transistorCount, 6);
    EXPECT_EQ(factory.nand(3).transistorCount, 8);
    EXPECT_EQ(factory.nor(2).transistorCount, 6);
    EXPECT_EQ(factory.nor(3).transistorCount, 8);
    // Six NAND3-style gates.
    EXPECT_EQ(factory.dff().transistorCount, 6 * 8);
}

TEST_F(Topologies, AreaAccountingConsistent)
{
    const auto inv = factory.inverter(InverterKind::PseudoE);
    EXPECT_GT(inv.activeArea, 0.0);
    EXPECT_DOUBLE_EQ(inv.cellArea,
                     inv.activeArea * factory.sizing().routingFactor);
    // NAND3 strictly bigger than NAND2 bigger than INV.
    EXPECT_GT(factory.nand(3).activeArea, factory.nand(2).activeArea);
    EXPECT_GT(factory.nand(2).activeArea, inv.activeArea);
}

TEST_F(Topologies, InputCapPositiveAndPlausible)
{
    const double cap = factory.inputCap();
    EXPECT_GT(cap, 1e-12);
    EXPECT_LT(cap, 1e-9);
}

TEST_F(Topologies, BadFanInIsFatal)
{
    EXPECT_THROW(factory.nand(4), FatalError);
    EXPECT_THROW(factory.nor(1), FatalError);
}

TEST_F(Topologies, DffCapturesOnRisingEdge)
{
    // Clear, then present D=1 and clock: Q must go high; then D=0 and
    // clock again: Q must go low.
    auto cell = factory.dff();
    auto &ckt = cell.ckt;
    const double v = vdd;
    // PREbar high always; CLRbar low pulse to initialize.
    ckt.setSourceWave(cell.inputSources[2], circuit::Pwl::constant(v));
    ckt.setSourceWave(cell.inputSources[3],
                      circuit::Pwl::points({0.0, 0.3e-3, 0.32e-3},
                                           {0.0, 0.0, v}));
    // D: high before first edge, low before second.
    ckt.setSourceWave(
        cell.inputSources[0],
        circuit::Pwl::points({0.0, 0.6e-3, 0.61e-3, 2.6e-3, 2.61e-3},
                             {0.0, 0.0, v, v, 0.0}));
    // CK: edges at 1.6 ms and 3.6 ms.
    ckt.setSourceWave(
        cell.inputSources[1],
        circuit::Pwl::points({0.0, 1.6e-3, 1.61e-3, 2.4e-3, 2.41e-3,
                              3.6e-3, 3.61e-3},
                             {0.0, 0.0, v, v, 0.0, 0.0, v}));

    circuit::TransientConfig config;
    config.dt = 8e-6;
    config.tStop = 5.2e-3;
    circuit::TransientAnalysis tran(ckt);
    const auto result = tran.run(config);
    const auto q = result.node(cell.out);

    EXPECT_LT(q.at(1.5e-3), 0.3 * v);  // cleared before first edge
    EXPECT_GT(q.at(2.35e-3), 0.7 * v); // captured the 1
    EXPECT_LT(q.at(5.1e-3), 0.3 * v);  // captured the 0
}

/** Sweep: every pseudo-E cell achieves strong logic levels. */
class CellLevels : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CellLevels, OutputSwingAboveHalfVdd)
{
    CellFactory factory;
    const std::string name = GetParam();
    BuiltCell cell = name == "inv"
                         ? factory.inverter(InverterKind::PseudoE)
                         : (name == "nand2"
                                ? factory.nand(2)
                                : (name == "nand3"
                                       ? factory.nand(3)
                                       : (name == "nor2"
                                              ? factory.nor(2)
                                              : factory.nor(3))));
    const double vdd = factory.supply().vdd;
    const bool is_nor = name.rfind("nor", 0) == 0;
    const double side = is_nor ? 0.0 : vdd;

    std::vector<double> low_in(cell.inputs.size(), side);
    std::vector<double> high_in(cell.inputs.size(), side);
    low_in[0] = 0.0;
    high_in[0] = vdd;
    const double out_high = dcOut(cell, low_in);
    const double out_low = dcOut(cell, high_in);
    EXPECT_GT(out_high - out_low, 0.5 * vdd) << name;
}

INSTANTIATE_TEST_SUITE_P(SixCells, CellLevels,
                         ::testing::Values("inv", "nand2", "nand3",
                                           "nor2", "nor3"));

} // namespace
} // namespace otft::cells
