/** @file Tests for the sizing design-space search (paper Sec. 4.3.4). */

#include <cmath>

#include <gtest/gtest.h>

#include "cells/sizing.hpp"
#include "util/logging.hpp"

namespace otft::cells {
namespace {

TEST(Sizing, DelayMeasurementScalesWithFanout)
{
    setQuiet(true);
    CellFactory factory;
    const double dt = 0.4e-6;
    const double d1 = measureInverterDelay(factory, 1.0, dt);
    const double d4 = measureInverterDelay(factory, 4.0, dt);
    EXPECT_GT(d1, 0.0);
    EXPECT_GT(d4, 1.3 * d1);
    EXPECT_LT(d4, 6.0 * d1);
}

TEST(Sizing, EvaluateProducesAllMetrics)
{
    setQuiet(true);
    SizingOptimizer optimizer(device::Level61Params{}, SupplyConfig{});
    const auto eval = optimizer.evaluate(CellSizing{});
    EXPECT_GT(eval.gateDelay, 0.0);
    EXPECT_GT(eval.activeArea, 0.0);
    EXPECT_GT(eval.vtc.maxGain, 1.0);
    EXPECT_TRUE(std::isfinite(eval.utility));
}

TEST(Sizing, LockedDefaultsNearCoarseOptimum)
{
    // Re-run a coarse search: the shipped CellSizing must score within
    // a reasonable band of what the search finds (the shipped values
    // were produced by this optimizer at a larger budget).
    setQuiet(true);
    SizingSearchConfig config;
    config.maxEvals = 40;
    config.vtcPoints = 41;
    SizingOptimizer optimizer(device::Level61Params{}, SupplyConfig{},
                              config);
    const auto shipped = optimizer.evaluate(CellSizing{});
    const auto searched = optimizer.optimize(CellSizing{});
    EXPECT_GE(shipped.utility, searched.utility - 0.5);
}

TEST(Sizing, UtilityPunishesTinyDrive)
{
    setQuiet(true);
    SizingOptimizer optimizer(device::Level61Params{}, SupplyConfig{});
    CellSizing weak;
    weak.wDrive = 20e-6;
    weak.wShiftDrive = 20e-6;
    const auto shipped = optimizer.evaluate(CellSizing{});
    const auto crippled = optimizer.evaluate(weak);
    EXPECT_GT(shipped.utility, crippled.utility);
}

} // namespace
} // namespace otft::cells
