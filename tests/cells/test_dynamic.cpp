/** @file Tests for the dynamic-logic extension cells. */

#include <gtest/gtest.h>

#include "cells/topologies.hpp"
#include "circuit/transient.hpp"
#include "util/logging.hpp"

namespace otft::cells {
namespace {

TEST(DynamicGate, HalfTheTransistors)
{
    CellFactory factory;
    // The paper's Sec. 7 claim: roughly half the devices.
    EXPECT_EQ(factory.dynamicGate(2).transistorCount, 3);
    EXPECT_EQ(factory.nand(2).transistorCount, 6);
    EXPECT_EQ(factory.dynamicGate(3).transistorCount, 4);
    EXPECT_EQ(factory.nand(3).transistorCount, 8);
}

TEST(DynamicGate, PrechargeThenEvaluate)
{
    CellFactory factory;
    auto cell = factory.dynamicGate(2, factory.inputCap());
    const double vdd = factory.supply().vdd;
    auto &ckt = cell.ckt;

    // Phase 1 (to 0.4 ms): clock low (-5 V) precharges OUT to 0 with
    // inputs high. Phase 2: clock off, input A falls -> OUT rises.
    ckt.setSourceWave(cell.inputSources[0],
                      circuit::Pwl::points({0.0, 0.6e-3, 0.61e-3},
                                           {vdd, vdd, 0.0}));
    ckt.setSourceWave(cell.inputSources[1],
                      circuit::Pwl::constant(vdd));
    ckt.setSourceWave(cell.inputSources.back(),
                      circuit::Pwl::points({0.0, 0.4e-3, 0.41e-3},
                                           {-5.0, -5.0, vdd}));

    circuit::TransientConfig config;
    config.dt = 2e-6;
    config.tStop = 1.2e-3;
    circuit::TransientAnalysis tran(ckt);
    const auto result = tran.run(config);
    const auto out = result.node(cell.out);

    EXPECT_LT(out.at(0.35e-3), 0.15 * vdd); // precharged low
    EXPECT_LT(out.at(0.58e-3), 0.2 * vdd);  // holds before evaluate
    EXPECT_GT(out.at(1.1e-3), 0.8 * vdd);   // evaluated high
}

TEST(DynamicGate, EvaluatesFasterThanStatic)
{
    // The paper: "switching time can be faster". Compare the dynamic
    // evaluate edge against the static pseudo-E rising edge at equal
    // load.
    CellFactory factory;
    const double vdd = factory.supply().vdd;
    const double load = factory.inputCap();

    double dynamic_delay = 0.0;
    {
        auto cell = factory.dynamicGate(2, load);
        auto &ckt = cell.ckt;
        ckt.setSourceWave(
            cell.inputSources[0],
            circuit::Pwl::points({0.0, 0.6e-3, 0.605e-3},
                                 {vdd, vdd, 0.0}));
        ckt.setSourceWave(cell.inputSources[1],
                          circuit::Pwl::constant(vdd));
        ckt.setSourceWave(
            cell.inputSources.back(),
            circuit::Pwl::points({0.0, 0.4e-3, 0.405e-3},
                                 {-5.0, -5.0, vdd}));
        circuit::TransientConfig config;
        config.dt = 1e-6;
        config.tStop = 1.4e-3;
        const auto result =
            circuit::TransientAnalysis(ckt).run(config);
        dynamic_delay = circuit::measureDelay(
            result.node(cell.inputs[0]), result.node(cell.out), 0.0,
            vdd, false, 0.0, vdd, true, 0.5e-3);
    }

    double static_delay = 0.0;
    {
        auto cell = factory.nand(2, load);
        auto &ckt = cell.ckt;
        ckt.setSourceWave(
            cell.inputSources[0],
            circuit::Pwl::points({0.0, 0.6e-3, 0.605e-3},
                                 {vdd, vdd, 0.0}));
        ckt.setSourceWave(cell.inputSources[1],
                          circuit::Pwl::constant(vdd));
        circuit::TransientConfig config;
        config.dt = 1e-6;
        config.tStop = 1.4e-3;
        const auto result =
            circuit::TransientAnalysis(ckt).run(config);
        static_delay = circuit::measureDelay(
            result.node(cell.inputs[0]), result.node(cell.out), 0.0,
            vdd, false, 0.0, vdd, true, 0.5e-3);
    }

    ASSERT_GT(dynamic_delay, 0.0);
    ASSERT_GT(static_delay, 0.0);
    EXPECT_LT(dynamic_delay, static_delay);
}

TEST(DynamicGate, RejectsBadFanIn)
{
    CellFactory factory;
    EXPECT_THROW(factory.dynamicGate(0), FatalError);
    EXPECT_THROW(factory.dynamicGate(4), FatalError);
}

} // namespace
} // namespace otft::cells
