/**
 * @file
 * Tests for the organic NLDM characterization. The full build is a
 * few seconds of transient simulation, so the suite characterizes a
 * reduced grid once in a fixture shared across tests.
 */

#include <gtest/gtest.h>

#include "liberty/characterizer.hpp"
#include "util/logging.hpp"

namespace otft::liberty {
namespace {

class OrganicCharacterization : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setQuiet(true);
        CharacterizerConfig config;
        // Coarse 2x2 grid keeps the suite quick.
        config.slewAxis = {4e-6, 64e-6};
        config.loadMultipliers = {0.5, 6.0};
        library = new CellLibrary(makeOrganicLibrary(config));
    }

    static void
    TearDownTestSuite()
    {
        delete library;
        library = nullptr;
    }

    static CellLibrary *library;
};

CellLibrary *OrganicCharacterization::library = nullptr;

TEST_F(OrganicCharacterization, HasAllSixCells)
{
    for (const char *name :
         {"inv", "nand2", "nand3", "nor2", "nor3", "dff"})
        EXPECT_TRUE(library->hasCell(name)) << name;
    EXPECT_EQ(library->cellNames().size(), 6u);
}

TEST_F(OrganicCharacterization, DelaysInOrganicRange)
{
    // Organic gate delays are tens of microseconds — about six orders
    // of magnitude slower than silicon, per the mobility gap.
    const auto &inv = library->cell("inv");
    const double d = inv.arc(0).worstDelay(library->defaultSlew(),
                                           inv.inputCap);
    EXPECT_GT(d, 5e-6);
    EXPECT_LT(d, 1e-3);
}

TEST_F(OrganicCharacterization, DelayIncreasesWithLoad)
{
    const auto &inv = library->cell("inv");
    const double d1 = inv.arc(0).worstDelay(library->defaultSlew(),
                                            inv.inputCap);
    const double d6 = inv.arc(0).worstDelay(library->defaultSlew(),
                                            6.0 * inv.inputCap);
    EXPECT_GT(d6, 1.2 * d1);
}

TEST_F(OrganicCharacterization, HigherFanInIsSlower)
{
    const double slew = library->defaultSlew();
    const double load = library->cell("inv").inputCap;
    const double d_inv =
        library->cell("inv").arc(0).worstDelay(slew, load);
    const double d_nand3 =
        library->cell("nand3").arc(0).worstDelay(slew, load);
    EXPECT_GT(d_nand3, d_inv);
}

TEST_F(OrganicCharacterization, FlopTimingPopulated)
{
    const auto &dff = library->cell("dff");
    EXPECT_TRUE(dff.isSequential);
    EXPECT_GT(dff.flop.clkToQ, 1e-5);
    EXPECT_LT(dff.flop.clkToQ, 2e-3);
    EXPECT_GE(dff.flop.setup, 0.0);
    EXPECT_GE(dff.flop.hold, 0.0);
    EXPECT_GT(dff.flop.clockPinCap, 0.0);
    // The flop is by far the largest cell.
    EXPECT_GT(dff.area, 4.0 * library->cell("nand3").area);
}

TEST_F(OrganicCharacterization, LeakagePowersPositive)
{
    for (const auto &name : library->cellNames())
        EXPECT_GT(library->cell(name).leakage, 0.0) << name;
}

TEST_F(OrganicCharacterization, WireParametersAreOrganicScale)
{
    const auto &wire = library->wire();
    // Millimeter-scale nets, printed-metal resistance.
    EXPECT_GT(wire.lengthBase, 1e-4);
    EXPECT_GT(wire.resPerMeter, 1e3);
    // The central paper fact: wire delay is negligible relative to
    // gate delay. A fanout-4 net's Elmore delay must be under 1% of
    // an inverter delay.
    const auto &inv = library->cell("inv");
    const double length =
        wire.lengthBase + 4.0 * wire.lengthPerFanout;
    const double wire_delay = wire.resPerMeter * length *
                              (0.5 * wire.capPerMeter * length +
                               4.0 * inv.inputCap);
    const double gate_delay = inv.arc(0).worstDelay(
        library->defaultSlew(), 4.0 * inv.inputCap);
    EXPECT_LT(wire_delay, 0.01 * gate_delay);
}

TEST_F(OrganicCharacterization, ArcsCoverAllPins)
{
    EXPECT_EQ(library->cell("nand3").arcs.size(), 3u);
    EXPECT_EQ(library->cell("nor2").arcs.size(), 2u);
    EXPECT_EQ(library->cell("inv").arcs.size(), 1u);
}

} // namespace
} // namespace otft::liberty
