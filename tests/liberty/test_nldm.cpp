/** @file Unit tests for NLDM look-up tables. */

#include <gtest/gtest.h>

#include "liberty/nldm.hpp"
#include "util/logging.hpp"

namespace otft::liberty {
namespace {

NldmTable
makeLinearTable()
{
    // value = 2*slew + 3*load.
    return NldmTable::fromModel({1.0, 2.0, 4.0}, {10.0, 20.0, 40.0},
                                [](double s, double l) {
                                    return 2.0 * s + 3.0 * l;
                                });
}

TEST(Nldm, ExactAtGridPoints)
{
    const auto t = makeLinearTable();
    EXPECT_DOUBLE_EQ(t.lookup(1.0, 10.0), 32.0);
    EXPECT_DOUBLE_EQ(t.lookup(4.0, 40.0), 128.0);
    EXPECT_DOUBLE_EQ(t.lookup(2.0, 20.0), 64.0);
}

TEST(Nldm, BilinearInsideGrid)
{
    const auto t = makeLinearTable();
    // A bilinear interpolant reproduces a linear function exactly.
    EXPECT_NEAR(t.lookup(1.5, 15.0), 2.0 * 1.5 + 3.0 * 15.0, 1e-12);
    EXPECT_NEAR(t.lookup(3.0, 30.0), 2.0 * 3.0 + 3.0 * 30.0, 1e-12);
}

TEST(Nldm, LinearExtrapolationOutsideGrid)
{
    const auto t = makeLinearTable();
    EXPECT_NEAR(t.lookup(8.0, 80.0), 2.0 * 8.0 + 3.0 * 80.0, 1e-12);
    EXPECT_NEAR(t.lookup(0.5, 5.0), 2.0 * 0.5 + 3.0 * 5.0, 1e-12);
}

TEST(Nldm, ValidatesConstruction)
{
    EXPECT_THROW(NldmTable({1.0}, {1.0, 2.0}, {1.0, 2.0}), FatalError);
    EXPECT_THROW(NldmTable({2.0, 1.0}, {1.0, 2.0},
                           {1.0, 2.0, 3.0, 4.0}),
                 FatalError);
    EXPECT_THROW(NldmTable({1.0, 2.0}, {1.0, 2.0}, {1.0}), FatalError);
}

TEST(Nldm, EmptyLookupIsFatal)
{
    NldmTable empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_THROW(empty.lookup(1.0, 1.0), FatalError);
}

/** Property: lookup is monotone when the table is monotone. */
class NldmMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(NldmMonotone, MonotoneInLoad)
{
    const auto t = NldmTable::fromModel(
        {1e-12, 1e-11, 1e-10}, {1e-15, 1e-14, 1e-13},
        [](double s, double l) { return 1e-12 + 5.0 * s + 2e3 * l; });
    const double slew = GetParam();
    double prev = -1.0;
    for (double load = 1e-16; load < 1e-12; load *= 2.0) {
        const double v = t.lookup(slew, load);
        EXPECT_GT(v, prev);
        prev = v;
    }
}

INSTANTIATE_TEST_SUITE_P(Slews, NldmMonotone,
                         ::testing::Values(1e-12, 5e-12, 5e-11,
                                           2e-10));

} // namespace
} // namespace otft::liberty
