/**
 * @file
 * Tests for the Monte Carlo statistical library: corner derivation,
 * validation, sampling determinism, and bit-exact serialization.
 *
 * The real characterization fan-out is kept tiny here (two cells, a
 * 2x2 grid, three samples) — the full-roster end-to-end runs live in
 * the mc_smoke lane and the tier-1 determinism gate.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "liberty/mc_characterizer.hpp"
#include "liberty/serialize.hpp"
#include "liberty/silicon.hpp"

namespace otft::liberty {
namespace {

TEST(ScaledCorners, SiliconCornersValidateAndDerate)
{
    const CellLibrary silicon = makeSiliconLibrary();
    const StatLibrary stat =
        scaledCorners(silicon, 0.015, 3.0, "silicon_test");
    EXPECT_TRUE(validateStatLibrary(stat.mean, stat.slow, stat.fast)
                    .empty());
    // 3-sigma corners of a 1.5% sigma: slow = 1.045x, fast = 0.955x.
    const auto &mean_arc = stat.mean.cell("inv").arc(0);
    const auto &slow_arc = stat.slow.cell("inv").arc(0);
    const auto &fast_arc = stat.fast.cell("inv").arc(0);
    const double m = mean_arc.delay[0].values()[0];
    EXPECT_NEAR(slow_arc.delay[0].values()[0], m * 1.045, m * 1e-9);
    EXPECT_NEAR(fast_arc.delay[0].values()[0], m * 0.955, m * 1e-9);
    // Geometry is corner-invariant.
    EXPECT_DOUBLE_EQ(stat.slow.cell("nand2").inputCap,
                     stat.mean.cell("nand2").inputCap);
    EXPECT_DOUBLE_EQ(stat.fast.cell("nand2").area,
                     stat.mean.cell("nand2").area);
}

TEST(ScaledCorners, ValidatorCatchesBrokenMonotonicity)
{
    const CellLibrary silicon = makeSiliconLibrary();
    StatLibrary stat = scaledCorners(silicon, 0.015, 3.0, "broken");
    // Swap slow and fast: every entry now violates slow >= mean.
    std::swap(stat.slow, stat.fast);
    EXPECT_FALSE(validateStatLibrary(stat.mean, stat.slow, stat.fast)
                     .empty());
}

TEST(McCharacterizer, SampledParamsAreDeterministicPerCell)
{
    const McCharacterizer mc{liberty::McConfig{}};
    const auto a = mc.sampleParams(2, "nand2");
    const auto b = mc.sampleParams(2, "nand2");
    EXPECT_DOUBLE_EQ(a.vt0, b.vt0);
    EXPECT_DOUBLE_EQ(a.u0, b.u0);
    EXPECT_DOUBLE_EQ(a.iOff, b.iOff);
    // Different cells on the same die share the die component but not
    // the per-device draw.
    const auto c = mc.sampleParams(2, "inv");
    EXPECT_NE(a.vt0, c.vt0);
    // Different samples differ even for the same cell.
    const auto d = mc.sampleParams(3, "nand2");
    EXPECT_NE(a.vt0, d.vt0);
}

TEST(McCharacterizer, StatLibraryValidatesAndSerializesBitExact)
{
    McConfig config;
    config.samples = 3;
    config.seed = 7;
    config.roster = {"inv", "nand2"};
    config.grid.slewAxis = {8e-6, 32e-6};
    config.grid.loadMultipliers = {1.0, 4.0};
    config.baseName = "mc_test";
    const StatLibrary stat = McCharacterizer(config).run();

    ASSERT_TRUE(validateStatLibrary(stat.mean, stat.slow, stat.fast)
                    .empty());
    EXPECT_EQ(stat.samples, 3);
    EXPECT_EQ(stat.seed, 7u);
    EXPECT_EQ(stat.cells.size(), 2u);

    // Per-cell sigma summaries exist and are finite.
    for (const CellStats &cell : stat.cells) {
        EXPECT_TRUE(std::isfinite(cell.leakageMean));
        EXPECT_GE(cell.leakageSigma, 0.0);
        const double frac = cell.meanDelaySigmaFraction();
        EXPECT_TRUE(std::isfinite(frac));
        EXPECT_GT(frac, 0.0);
    }

    // Bit-exact round trip of each corner through the text format:
    // write -> read -> write must reproduce the exact bytes, so
    // persisted statistical libraries reload with zero drift.
    for (const CellLibrary *corner :
         {&stat.mean, &stat.slow, &stat.fast}) {
        std::ostringstream first;
        writeLibrary(first, *corner);
        std::istringstream in(first.str());
        const CellLibrary reloaded = readLibrary(in);
        std::ostringstream second;
        writeLibrary(second, reloaded);
        EXPECT_EQ(first.str(), second.str());
        EXPECT_EQ(reloaded.contentHash(), corner->contentHash());
    }
}

} // namespace
} // namespace otft::liberty
