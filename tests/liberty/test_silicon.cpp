/** @file Unit tests for the constructed 45 nm silicon library. */

#include <gtest/gtest.h>

#include "liberty/silicon.hpp"

namespace otft::liberty {
namespace {

TEST(Silicon, HasAllSixCells)
{
    const auto lib = makeSiliconLibrary();
    for (const char *name :
         {"inv", "nand2", "nand3", "nor2", "nor3", "dff"})
        EXPECT_TRUE(lib.hasCell(name)) << name;
}

TEST(Silicon, Fo4NearSeventeenPicoseconds)
{
    const auto lib = makeSiliconLibrary();
    const auto &inv = lib.cell("inv");
    const double fo4 =
        inv.arc(0).worstDelay(lib.defaultSlew(), 4.0 * inv.inputCap);
    EXPECT_GT(fo4, 10e-12);
    EXPECT_LT(fo4, 30e-12);
}

TEST(Silicon, LogicalEffortOrdering)
{
    const auto lib = makeSiliconLibrary();
    const double load = 4e-15;
    const double slew = lib.defaultSlew();
    const double d_inv = lib.cell("inv").arc(0).worstDelay(slew, load);
    const double d_nand2 =
        lib.cell("nand2").arc(0).worstDelay(slew, load);
    const double d_nor3 =
        lib.cell("nor3").arc(0).worstDelay(slew, load);
    EXPECT_LT(d_inv, d_nand2);
    EXPECT_LT(d_nand2, d_nor3);
}

TEST(Silicon, InputCapScalesWithLogicalEffort)
{
    const auto lib = makeSiliconLibrary();
    EXPECT_GT(lib.cell("nand2").inputCap, lib.cell("inv").inputCap);
    EXPECT_GT(lib.cell("nor3").inputCap, lib.cell("nand3").inputCap);
}

TEST(Silicon, SixOrdersFasterThanOrganicScale)
{
    const auto lib = makeSiliconLibrary();
    const auto &inv = lib.cell("inv");
    const double d = inv.arc(0).worstDelay(lib.defaultSlew(),
                                           inv.inputCap);
    // Picoseconds vs the organic library's tens of microseconds.
    EXPECT_LT(d, 1e-10);
}

TEST(Silicon, WireDelayComparableToGateDelay)
{
    // The silicon side of the paper's ratio argument: a typical net's
    // wire contribution is a significant fraction of a gate delay.
    const auto lib = makeSiliconLibrary();
    const auto &wire = lib.wire();
    const auto &inv = lib.cell("inv");
    const double length = wire.lengthBase + 2.0 * wire.lengthPerFanout;
    const double wire_cap = wire.capPerMeter * length;
    // Wire cap on a fanout-2 net rivals the two driven pins.
    EXPECT_GT(wire_cap, 0.5 * 2.0 * inv.inputCap);
}

TEST(Silicon, ConfigKnobsApply)
{
    SiliconConfig config;
    config.clkToQ = 99e-12;
    config.clockMargin = 1e-9;
    const auto lib = makeSiliconLibrary(config);
    EXPECT_DOUBLE_EQ(lib.cell("dff").flop.clkToQ, 99e-12);
    EXPECT_DOUBLE_EQ(lib.clockMargin(), 1e-9);
}

TEST(Silicon, DffSequentialFlag)
{
    const auto lib = makeSiliconLibrary();
    EXPECT_TRUE(lib.cell("dff").isSequential);
    EXPECT_FALSE(lib.cell("inv").isSequential);
    EXPECT_GT(lib.cell("dff").flop.setup, 0.0);
}

} // namespace
} // namespace otft::liberty
