/** @file Tests for the DNTT-class high-mobility library factory. */

#include <gtest/gtest.h>

#include "liberty/characterizer.hpp"
#include "util/logging.hpp"

namespace otft::liberty {
namespace {

TEST(Dntt, TenXMobilityGivesTenXSpeed)
{
    setQuiet(true);
    const auto pentacene = cachedOrganicLibrary("organic.lib");
    const auto dntt = cachedDnttLibrary("organic_dntt.lib");

    const auto &p_inv = pentacene.cell("inv");
    const auto &d_inv = dntt.cell("inv");
    const double p = p_inv.arc(0).worstDelay(pentacene.defaultSlew(),
                                             4.0 * p_inv.inputCap);
    const double d = d_inv.arc(0).worstDelay(dntt.defaultSlew(),
                                             4.0 * d_inv.inputCap);
    EXPECT_NEAR(p / d, 10.0, 2.5);
    // Same topologies: identical areas and pin caps.
    EXPECT_DOUBLE_EQ(p_inv.area, d_inv.area);
    EXPECT_DOUBLE_EQ(p_inv.inputCap, d_inv.inputCap);
}

TEST(Dntt, RejectsNonPositiveScale)
{
    EXPECT_THROW(makeDnttLibrary(0.0), FatalError);
    EXPECT_THROW(makeDnttLibrary(-2.0), FatalError);
}

} // namespace
} // namespace otft::liberty
