/** @file Unit tests for the cell library container. */

#include <gtest/gtest.h>

#include "liberty/library.hpp"
#include "util/logging.hpp"

namespace otft::liberty {
namespace {

StdCell
makeCell(const std::string &name, int fan_in)
{
    StdCell cell;
    cell.name = name;
    cell.fanIn = fan_in;
    cell.area = 1e-12;
    cell.inputCap = 1e-15;
    for (int p = 0; p < fan_in; ++p) {
        TimingArc arc;
        arc.fromPin = std::string(1, static_cast<char>('a' + p));
        for (int s = 0; s < 2; ++s) {
            arc.delay[s] = NldmTable::fromModel(
                {1e-12, 1e-10}, {1e-15, 1e-13},
                [&](double slew, double load) {
                    return 1e-11 * (p + 1) + 0.1 * slew + 1e3 * load +
                           (s == 0 ? 1e-12 : 0.0);
                });
            arc.outputSlew[s] = arc.delay[s];
        }
        cell.arcs.push_back(std::move(arc));
    }
    return cell;
}

TEST(Library, AddAndLookup)
{
    CellLibrary lib("test", 1.0);
    lib.addCell(makeCell("inv", 1));
    lib.addCell(makeCell("nand2", 2));
    EXPECT_TRUE(lib.hasCell("inv"));
    EXPECT_FALSE(lib.hasCell("xor2"));
    EXPECT_EQ(lib.cell("nand2").fanIn, 2);
    EXPECT_EQ(lib.cellNames().size(), 2u);
    EXPECT_THROW(lib.cell("missing"), FatalError);
}

TEST(Library, DuplicateCellIsFatal)
{
    CellLibrary lib("test", 1.0);
    lib.addCell(makeCell("inv", 1));
    EXPECT_THROW(lib.addCell(makeCell("inv", 1)), FatalError);
}

TEST(Library, ArcBoundsChecked)
{
    const auto cell = makeCell("nand2", 2);
    EXPECT_NO_THROW(cell.arc(0));
    EXPECT_NO_THROW(cell.arc(1));
    EXPECT_THROW(cell.arc(2), FatalError);
    EXPECT_THROW(cell.arc(-1), FatalError);
}

TEST(Library, WorstDelayPicksMaxSense)
{
    const auto cell = makeCell("inv", 1);
    const auto &arc = cell.arc(0);
    const double rise =
        arc.delay[static_cast<int>(Sense::Rise)].lookup(1e-11, 1e-14);
    const double fall =
        arc.delay[static_cast<int>(Sense::Fall)].lookup(1e-11, 1e-14);
    EXPECT_DOUBLE_EQ(arc.worstDelay(1e-11, 1e-14),
                     std::max(rise, fall));
}

TEST(Library, WireAndMarginAccessors)
{
    CellLibrary lib("test", 5.0);
    lib.wire().resPerMeter = 123.0;
    lib.setDefaultSlew(1e-9);
    lib.setClockMargin(2e-9);
    EXPECT_DOUBLE_EQ(lib.wire().resPerMeter, 123.0);
    EXPECT_DOUBLE_EQ(lib.defaultSlew(), 1e-9);
    EXPECT_DOUBLE_EQ(lib.clockMargin(), 2e-9);
    EXPECT_DOUBLE_EQ(lib.vdd(), 5.0);
}

} // namespace
} // namespace otft::liberty
