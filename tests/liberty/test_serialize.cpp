/** @file Unit tests for library serialization. */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "liberty/serialize.hpp"
#include "liberty/silicon.hpp"
#include "util/logging.hpp"

namespace otft::liberty {
namespace {

TEST(Serialize, RoundTripPreservesEverything)
{
    const auto lib = makeSiliconLibrary();
    std::stringstream ss;
    writeLibrary(ss, lib);
    const auto back = readLibrary(ss);

    EXPECT_EQ(back.name(), lib.name());
    EXPECT_DOUBLE_EQ(back.vdd(), lib.vdd());
    EXPECT_DOUBLE_EQ(back.defaultSlew(), lib.defaultSlew());
    EXPECT_DOUBLE_EQ(back.clockMargin(), lib.clockMargin());
    EXPECT_DOUBLE_EQ(back.wire().resPerMeter, lib.wire().resPerMeter);
    ASSERT_EQ(back.cellNames(), lib.cellNames());

    for (const auto &name : lib.cellNames()) {
        const auto &a = lib.cell(name);
        const auto &b = back.cell(name);
        EXPECT_EQ(a.fanIn, b.fanIn);
        EXPECT_EQ(a.isSequential, b.isSequential);
        EXPECT_DOUBLE_EQ(a.area, b.area);
        EXPECT_DOUBLE_EQ(a.inputCap, b.inputCap);
        EXPECT_DOUBLE_EQ(a.leakage, b.leakage);
        ASSERT_EQ(a.arcs.size(), b.arcs.size());
        // Spot-check arc lookups at a few operating points.
        for (std::size_t arc = 0; arc < a.arcs.size(); ++arc) {
            for (double slew : {1e-12, 5e-11}) {
                for (double load : {1e-15, 2e-14}) {
                    EXPECT_DOUBLE_EQ(
                        a.arcs[arc].worstDelay(slew, load),
                        b.arcs[arc].worstDelay(slew, load));
                }
            }
        }
        if (a.isSequential) {
            EXPECT_DOUBLE_EQ(a.flop.clkToQ, b.flop.clkToQ);
            EXPECT_DOUBLE_EQ(a.flop.setup, b.flop.setup);
        }
    }
}

TEST(Serialize, FileSaveLoad)
{
    const std::string path = "test_serialize_tmp.lib";
    const auto lib = makeSiliconLibrary();
    saveLibrary(path, lib);
    const auto back = loadLibrary(path);
    EXPECT_EQ(back.name(), lib.name());
    std::remove(path.c_str());
}

TEST(Serialize, TryLoadMissingFile)
{
    EXPECT_FALSE(tryLoadLibrary("definitely/not/here.lib").has_value());
}

TEST(Serialize, TryLoadCorruptFile)
{
    setQuiet(true);
    const std::string path = "test_serialize_corrupt.lib";
    {
        std::ofstream os(path);
        os << "this is not a library\n";
    }
    EXPECT_FALSE(tryLoadLibrary(path).has_value());
    std::remove(path.c_str());
    setQuiet(false);
}

TEST(Serialize, LoadOrBuildCachesToDisk)
{
    const std::string path = "test_serialize_cache.lib";
    std::remove(path.c_str());
    int builds = 0;
    auto builder = [&] {
        ++builds;
        return makeSiliconLibrary();
    };
    const auto a = loadOrBuild(path, builder);
    const auto b = loadOrBuild(path, builder);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(a.name(), b.name());
    std::remove(path.c_str());
}

TEST(Serialize, MalformedStreamIsFatal)
{
    std::stringstream ss("garbage tokens");
    EXPECT_THROW(readLibrary(ss), FatalError);
}

} // namespace
} // namespace otft::liberty
