/** @file Functional tests for the datapath generators. */

#include <cstdint>

#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "util/rng.hpp"

namespace otft::netlist {
namespace {

std::vector<bool>
bits(std::uint64_t value, int width)
{
    std::vector<bool> out(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i)
        out[static_cast<std::size_t>(i)] = (value >> i) & 1;
    return out;
}

std::uint64_t
fromBus(const Bus &bus, const std::vector<bool> &vals)
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bus.size(); ++i)
        if (vals[static_cast<std::size_t>(bus[i])])
            v |= std::uint64_t{1} << i;
    return v;
}

std::vector<bool>
concat(std::initializer_list<std::vector<bool>> parts)
{
    std::vector<bool> out;
    for (const auto &p : parts)
        out.insert(out.end(), p.begin(), p.end());
    return out;
}

/** Parameterized over operand width. */
class AdderWidths : public ::testing::TestWithParam<int>
{
};

TEST_P(AdderWidths, RippleMatchesArithmetic)
{
    const int w = GetParam();
    Netlist nl;
    NetBuilder b(nl);
    const auto a = b.inputBus("a", w);
    const auto y = b.inputBus("y", w);
    const auto sum = rippleCarryAdder(b, a, y);

    Rng rng(static_cast<std::uint64_t>(w));
    const std::uint64_t mask =
        w == 64 ? ~std::uint64_t{0}
                : ((std::uint64_t{1} << w) - 1);
    for (int trial = 0; trial < 24; ++trial) {
        const std::uint64_t x = rng.next() & mask;
        const std::uint64_t z = rng.next() & mask;
        const auto vals = nl.evaluate(concat({bits(x, w), bits(z, w)}));
        EXPECT_EQ(fromBus(sum.sum, vals), (x + z) & mask);
        EXPECT_EQ(vals[static_cast<std::size_t>(sum.carryOut)],
                  ((x + z) >> w) & 1);
    }
}

TEST_P(AdderWidths, KoggeStoneMatchesRipple)
{
    const int w = GetParam();
    Netlist nl;
    NetBuilder b(nl);
    const auto a = b.inputBus("a", w);
    const auto y = b.inputBus("y", w);
    const GateId cin = b.input("cin");
    const auto ks = koggeStoneAdder(b, a, y, cin);

    Rng rng(static_cast<std::uint64_t>(w) + 100);
    const std::uint64_t mask =
        w == 64 ? ~std::uint64_t{0}
                : ((std::uint64_t{1} << w) - 1);
    for (int trial = 0; trial < 24; ++trial) {
        const std::uint64_t x = rng.next() & mask;
        const std::uint64_t z = rng.next() & mask;
        const bool c = trial % 2;
        auto in = concat({bits(x, w), bits(z, w)});
        in.push_back(c);
        const auto vals = nl.evaluate(in);
        EXPECT_EQ(fromBus(ks.sum, vals), (x + z + c) & mask);
    }
}

TEST_P(AdderWidths, KoggeStoneShallowerThanRipple)
{
    const int w = GetParam();
    if (w < 8)
        return;
    Netlist ripple_nl, ks_nl;
    {
        NetBuilder b(ripple_nl);
        rippleCarryAdder(b, b.inputBus("a", w), b.inputBus("y", w));
    }
    {
        NetBuilder b(ks_nl);
        koggeStoneAdder(b, b.inputBus("a", w), b.inputBus("y", w));
    }
    EXPECT_LT(ks_nl.depth(), ripple_nl.depth());
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidths,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(Multiplier, ExhaustiveFourBit)
{
    Netlist nl;
    NetBuilder b(nl);
    const auto a = b.inputBus("a", 4);
    const auto y = b.inputBus("y", 4);
    const auto product = arrayMultiplier(b, a, y);
    ASSERT_EQ(product.size(), 8u);
    for (std::uint64_t x = 0; x < 16; ++x) {
        for (std::uint64_t z = 0; z < 16; ++z) {
            const auto vals =
                nl.evaluate(concat({bits(x, 4), bits(z, 4)}));
            EXPECT_EQ(fromBus(product, vals), x * z)
                << x << " * " << z;
        }
    }
}

TEST(Multiplier, RandomSixteenBit)
{
    Netlist nl;
    NetBuilder b(nl);
    const auto a = b.inputBus("a", 16);
    const auto y = b.inputBus("y", 16);
    const auto product = arrayMultiplier(b, a, y);
    Rng rng(5);
    for (int trial = 0; trial < 32; ++trial) {
        const std::uint64_t x = rng.next() & 0xFFFF;
        const std::uint64_t z = rng.next() & 0xFFFF;
        const auto vals =
            nl.evaluate(concat({bits(x, 16), bits(z, 16)}));
        EXPECT_EQ(fromBus(product, vals), x * z);
    }
}

TEST(Divider, ExhaustiveFourBit)
{
    Netlist nl;
    NetBuilder b(nl);
    const auto a = b.inputBus("a", 4);
    const auto d = b.inputBus("d", 4);
    const auto result = nonRestoringDivider(b, a, d, 4);
    for (std::uint64_t x = 0; x < 16; ++x) {
        for (std::uint64_t z = 1; z < 16; ++z) {
            const auto vals =
                nl.evaluate(concat({bits(x, 4), bits(z, 4)}));
            EXPECT_EQ(fromBus(result.quotient, vals), x / z)
                << x << " / " << z;
            EXPECT_EQ(fromBus(result.remainder, vals), x % z)
                << x << " % " << z;
        }
    }
}

TEST(Divider, PartialRowsComputeTopQuotientBits)
{
    // rows < n computes the quotient of (a >> (n - rows)) in the top
    // bits; verify via the full-width identity on row-aligned values.
    Netlist nl;
    NetBuilder b(nl);
    const auto a = b.inputBus("a", 8);
    const auto d = b.inputBus("d", 8);
    const auto result = nonRestoringDivider(b, a, d, 8);
    Rng rng(11);
    for (int trial = 0; trial < 48; ++trial) {
        const std::uint64_t x = rng.next() & 0xFF;
        const std::uint64_t z = 1 + (rng.next() & 0x7F);
        const auto vals =
            nl.evaluate(concat({bits(x, 8), bits(z, 8)}));
        EXPECT_EQ(fromBus(result.quotient, vals), x / z);
        EXPECT_EQ(fromBus(result.remainder, vals), x % z);
    }
}

TEST(BarrelShifter, LeftAndRight)
{
    Netlist nl;
    NetBuilder b(nl);
    const auto a = b.inputBus("a", 16);
    const auto sh = b.inputBus("sh", 4);
    const auto left = barrelShifter(b, a, sh, true);
    const auto right = barrelShifter(b, a, sh, false);
    Rng rng(7);
    for (int trial = 0; trial < 32; ++trial) {
        const std::uint64_t x = rng.next() & 0xFFFF;
        const std::uint64_t amount = rng.next() & 0xF;
        const auto vals =
            nl.evaluate(concat({bits(x, 16), bits(amount, 4)}));
        EXPECT_EQ(fromBus(left, vals), (x << amount) & 0xFFFF);
        EXPECT_EQ(fromBus(right, vals), x >> amount);
    }
}

TEST(Comparators, EqualityAndLessThan)
{
    Netlist nl;
    NetBuilder b(nl);
    const auto a = b.inputBus("a", 8);
    const auto y = b.inputBus("y", 8);
    const GateId eq = equalityComparator(b, a, y);
    const GateId lt = lessThan(b, a, y);
    Rng rng(13);
    for (int trial = 0; trial < 64; ++trial) {
        const std::uint64_t x = rng.next() & 0xFF;
        const std::uint64_t z =
            trial % 4 == 0 ? x : rng.next() & 0xFF;
        const auto vals =
            nl.evaluate(concat({bits(x, 8), bits(z, 8)}));
        EXPECT_EQ(vals[static_cast<std::size_t>(eq)], x == z);
        EXPECT_EQ(vals[static_cast<std::size_t>(lt)], x < z);
    }
}

TEST(Decoder, OneHotOutput)
{
    Netlist nl;
    NetBuilder b(nl);
    const auto sel = b.inputBus("s", 3);
    const auto out = decoder(b, sel);
    ASSERT_EQ(out.size(), 8u);
    for (std::uint64_t v = 0; v < 8; ++v) {
        const auto vals = nl.evaluate(bits(v, 3));
        for (std::uint64_t w = 0; w < 8; ++w)
            EXPECT_EQ(vals[static_cast<std::size_t>(out[w])], w == v);
    }
}

TEST(Muxes, OnehotAndBinaryAgree)
{
    Netlist nl;
    NetBuilder b(nl);
    std::vector<Bus> ways;
    for (int w = 0; w < 4; ++w)
        ways.push_back(b.inputBus("w" + std::to_string(w), 4));
    const auto sel = b.inputBus("s", 2);
    const auto onehot_sel = decoder(b, sel);
    const auto via_onehot = onehotMux(b, ways, onehot_sel);
    const auto via_binary = binaryMux(b, ways, sel);

    Rng rng(17);
    for (int trial = 0; trial < 24; ++trial) {
        std::vector<bool> in;
        std::uint64_t expect[4];
        for (int w = 0; w < 4; ++w) {
            expect[w] = rng.next() & 0xF;
            const auto v = bits(expect[w], 4);
            in.insert(in.end(), v.begin(), v.end());
        }
        const std::uint64_t s = rng.next() & 3;
        const auto sv = bits(s, 2);
        in.insert(in.end(), sv.begin(), sv.end());
        const auto vals = nl.evaluate(in);
        EXPECT_EQ(fromBus(via_onehot, vals), expect[s]);
        EXPECT_EQ(fromBus(via_binary, vals), expect[s]);
    }
}

TEST(PriorityArbiter, GrantsLowestRequester)
{
    Netlist nl;
    NetBuilder b(nl);
    const auto req = b.inputBus("r", 8);
    const auto grant = priorityArbiter(b, req);
    Rng rng(19);
    for (int trial = 0; trial < 64; ++trial) {
        const std::uint64_t r = rng.next() & 0xFF;
        const auto vals = nl.evaluate(bits(r, 8));
        const std::uint64_t g = fromBus(grant, vals);
        if (r == 0) {
            EXPECT_EQ(g, 0u);
        } else {
            EXPECT_EQ(g, r & (~r + 1)); // lowest set bit
        }
    }
}

TEST(PrefixOr, MatchesNaive)
{
    Netlist nl;
    NetBuilder b(nl);
    const auto in = b.inputBus("x", 11);
    const auto fast = prefixOrFast(b, in);
    const auto slow = prefixOr(b, in);
    Rng rng(23);
    for (int trial = 0; trial < 48; ++trial) {
        const std::uint64_t x = rng.next() & 0x7FF;
        const auto vals = nl.evaluate(bits(x, 11));
        std::uint64_t acc = 0;
        for (int i = 0; i < 11; ++i) {
            acc |= (x >> i) & 1;
            EXPECT_EQ(vals[static_cast<std::size_t>(fast[
                          static_cast<std::size_t>(i)])],
                      acc != 0);
            EXPECT_EQ(vals[static_cast<std::size_t>(slow[
                          static_cast<std::size_t>(i)])],
                      acc != 0);
        }
    }
}

TEST(PrefixOr, FastVariantIsShallower)
{
    Netlist slow_nl, fast_nl;
    {
        NetBuilder b(slow_nl);
        prefixOr(b, b.inputBus("x", 32));
    }
    {
        NetBuilder b(fast_nl);
        prefixOrFast(b, b.inputBus("x", 32));
    }
    EXPECT_LT(fast_nl.depth(), slow_nl.depth());
}

TEST(PrefixAnd, MatchesNaive)
{
    Netlist nl;
    NetBuilder b(nl);
    const auto in = b.inputBus("x", 9);
    const auto pa = prefixAnd(b, in);
    Rng rng(29);
    for (int trial = 0; trial < 32; ++trial) {
        const std::uint64_t x = rng.next() & 0x1FF;
        const auto vals = nl.evaluate(bits(x, 9));
        bool acc = true;
        for (int i = 0; i < 9; ++i) {
            acc = acc && ((x >> i) & 1);
            EXPECT_EQ(vals[static_cast<std::size_t>(pa[
                          static_cast<std::size_t>(i)])],
                      acc);
        }
    }
}

} // namespace
} // namespace otft::netlist
