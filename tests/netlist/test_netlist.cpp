/** @file Unit tests for the gate-level netlist core. */

#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "util/logging.hpp"

namespace otft::netlist {
namespace {

TEST(Netlist, BasicGatesEvaluate)
{
    Netlist nl;
    NetBuilder b(nl);
    const GateId a = b.input("a");
    const GateId y = b.input("y");
    const GateId n = b.nand2(a, y);
    const GateId o = b.nor2(a, y);
    const GateId i = b.notGate(a);
    b.output("n", n);
    b.output("o", o);
    b.output("i", i);

    for (int av = 0; av < 2; ++av) {
        for (int bv = 0; bv < 2; ++bv) {
            const auto vals = nl.evaluate({av != 0, bv != 0});
            EXPECT_EQ(vals[static_cast<std::size_t>(n)],
                      !(av && bv));
            EXPECT_EQ(vals[static_cast<std::size_t>(o)],
                      !(av || bv));
            EXPECT_EQ(vals[static_cast<std::size_t>(i)], !av);
        }
    }
}

TEST(Netlist, CompositeFunctions)
{
    Netlist nl;
    NetBuilder b(nl);
    const GateId a = b.input("a");
    const GateId y = b.input("y");
    const GateId c = b.input("c");
    const GateId x = b.xorGate(a, y);
    const GateId x3 = b.xor3(a, y, c);
    const GateId maj = b.majority(a, y, c);
    const GateId m = b.mux(c, a, y); // c ? a : y

    for (int v = 0; v < 8; ++v) {
        const bool av = v & 1, bv = v & 2, cv = v & 4;
        const auto vals = nl.evaluate({av, bv, cv});
        EXPECT_EQ(vals[static_cast<std::size_t>(x)], av != bv);
        EXPECT_EQ(vals[static_cast<std::size_t>(x3)],
                  (av != bv) != cv);
        EXPECT_EQ(vals[static_cast<std::size_t>(maj)],
                  (av && bv) || (av && cv) || (bv && cv));
        EXPECT_EQ(vals[static_cast<std::size_t>(m)], cv ? av : bv);
    }
}

TEST(Netlist, Constants)
{
    Netlist nl;
    NetBuilder b(nl);
    const GateId one = b.constant(true);
    const GateId zero = b.constant(false);
    const GateId n = b.nand2(one, zero);
    const auto vals = nl.evaluate({});
    EXPECT_TRUE(vals[static_cast<std::size_t>(n)]);
    EXPECT_EQ(nl.countKind(GateKind::Const1), 1u);
}

TEST(Netlist, SequentialStateAdvances)
{
    // A 2-bit shift register.
    Netlist nl;
    NetBuilder b(nl);
    const GateId d = b.input("d");
    const GateId q0 = b.dff(d);
    const GateId q1 = b.dff(q0);
    b.output("q1", q1);

    std::vector<bool> state = {false, false};
    std::vector<bool> next;
    nl.evaluate({true}, state, &next);
    EXPECT_TRUE(next[0]);  // q0 captures d
    EXPECT_FALSE(next[1]); // q1 captures old q0
    nl.evaluate({false}, next, &next);
    EXPECT_FALSE(next[0]);
    EXPECT_TRUE(next[1]);
}

TEST(Netlist, LevelsAndDepth)
{
    Netlist nl;
    NetBuilder b(nl);
    const GateId a = b.input("a");
    const GateId n1 = b.notGate(a);
    const GateId n2 = b.notGate(n1);
    const GateId n3 = b.notGate(n2);
    b.output("o", n3);
    EXPECT_EQ(nl.depth(), 3);
    const auto lv = nl.levels();
    EXPECT_EQ(lv[static_cast<std::size_t>(a)], 0);
    EXPECT_EQ(lv[static_cast<std::size_t>(n3)], 3);
}

TEST(Netlist, DffBreaksLevels)
{
    Netlist nl;
    NetBuilder b(nl);
    const GateId a = b.input("a");
    const GateId n1 = b.notGate(a);
    const GateId q = b.dff(n1);
    const GateId n2 = b.notGate(q);
    b.output("o", n2);
    const auto lv = nl.levels();
    EXPECT_EQ(lv[static_cast<std::size_t>(q)], 0);
    EXPECT_EQ(lv[static_cast<std::size_t>(n2)], 1);
}

TEST(Netlist, FanoutsAreComplete)
{
    Netlist nl;
    NetBuilder b(nl);
    const GateId a = b.input("a");
    const GateId n1 = b.notGate(a);
    const GateId n2 = b.notGate(a);
    const GateId n3 = b.nand2(n1, n2);
    (void)n3;
    const auto fo = nl.fanouts();
    EXPECT_EQ(fo[static_cast<std::size_t>(a)].size(), 2u);
    EXPECT_EQ(fo[static_cast<std::size_t>(n1)].size(), 1u);
}

TEST(Netlist, CountKind)
{
    Netlist nl;
    NetBuilder b(nl);
    const GateId a = b.input("a");
    b.nand2(a, a);
    b.nand2(a, a);
    b.notGate(a);
    EXPECT_EQ(nl.countKind(GateKind::Nand2), 2u);
    EXPECT_EQ(nl.countKind(GateKind::Inv), 1u);
    EXPECT_EQ(nl.countKind(GateKind::Nor3), 0u);
}

TEST(Netlist, EvaluateValidatesInputCount)
{
    Netlist nl;
    NetBuilder b(nl);
    b.input("a");
    EXPECT_THROW(nl.evaluate({}), FatalError);
    EXPECT_THROW(nl.evaluate({true, false}), FatalError);
}

TEST(Netlist, BusHelpers)
{
    Netlist nl;
    NetBuilder b(nl);
    const auto bus = b.inputBus("data", 8);
    EXPECT_EQ(bus.size(), 8u);
    EXPECT_EQ(nl.inputNames()[0], "data[0]");
    EXPECT_EQ(nl.inputNames()[7], "data[7]");
    const auto regs = b.dffBus(bus);
    EXPECT_EQ(regs.size(), 8u);
    EXPECT_EQ(nl.dffs().size(), 8u);
    b.outputBus("q", regs);
    EXPECT_EQ(nl.outputs().size(), 8u);
    EXPECT_EQ(nl.outputs()[3].name, "q[3]");
}

} // namespace
} // namespace otft::netlist
