/**
 * @file
 * Property tests on pass composition: bufferize and pipeline must
 * commute with function for arbitrary generated datapath blocks —
 * run over a randomized matrix of generators, widths and depths.
 */

#include <gtest/gtest.h>

#include "liberty/silicon.hpp"
#include "netlist/bufferize.hpp"
#include "netlist/generators.hpp"
#include "sta/pipeline.hpp"
#include "util/rng.hpp"

namespace otft::netlist {
namespace {

struct Case
{
    const char *generator;
    int width;
    int stages;
    int maxFanout;
};

class Composition : public ::testing::TestWithParam<Case>
{
  protected:
    Netlist
    build(const Case &c) const
    {
        Netlist nl;
        NetBuilder b(nl);
        const auto a = b.inputBus("a", c.width);
        const auto y = b.inputBus("y", c.width);
        const std::string gen = c.generator;
        if (gen == "adder") {
            b.outputBus("o", koggeStoneAdder(b, a, y).sum);
        } else if (gen == "mult") {
            b.outputBus("o", arrayMultiplier(b, a, y));
        } else if (gen == "div") {
            const auto d = nonRestoringDivider(b, a, y, c.width);
            b.outputBus("q", d.quotient);
            b.outputBus("r", d.remainder);
        } else if (gen == "shift") {
            Bus amount(a.begin(), a.begin() + 3);
            b.outputBus("o", barrelShifter(b, y, amount, false));
        } else {
            b.output("lt", lessThan(b, a, y));
            b.output("eq", equalityComparator(b, a, y));
        }
        return nl;
    }

    std::vector<bool>
    outputsAfter(const Netlist &nl, const std::vector<bool> &in,
                 int cycles) const
    {
        std::vector<bool> state(nl.dffs().size(), false);
        std::vector<bool> vals;
        for (int c = 0; c < cycles; ++c) {
            std::vector<bool> next;
            vals = nl.evaluate(in, state, &next);
            state = std::move(next);
        }
        std::vector<bool> out;
        for (const auto &port : nl.outputs())
            out.push_back(vals[static_cast<std::size_t>(port.gate)]);
        return out;
    }
};

TEST_P(Composition, BufferizeThenPipelinePreservesFunction)
{
    const Case c = GetParam();
    const auto lib = liberty::makeSiliconLibrary();
    const Netlist plain = build(c);
    const Netlist buffered = bufferize(plain, c.maxFanout);
    const auto piped =
        sta::Pipeliner(lib).pipeline(buffered, c.stages);

    Rng rng(static_cast<std::uint64_t>(c.width * 1000 + c.stages));
    for (int trial = 0; trial < 6; ++trial) {
        std::vector<bool> in;
        for (std::size_t i = 0; i < plain.inputs().size(); ++i)
            in.push_back(rng.bernoulli(0.5));
        const auto expect = outputsAfter(plain, in, 1);
        const auto got =
            outputsAfter(piped.netlist, in, c.stages + 1);
        EXPECT_EQ(got, expect)
            << c.generator << " w=" << c.width << " s=" << c.stages;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Composition,
    ::testing::Values(Case{"adder", 8, 3, 4}, Case{"adder", 16, 6, 6},
                      Case{"mult", 6, 4, 4}, Case{"mult", 8, 7, 6},
                      Case{"div", 6, 5, 4}, Case{"div", 8, 3, 6},
                      Case{"shift", 8, 2, 4},
                      Case{"compare", 12, 3, 5},
                      Case{"compare", 8, 2, 3}));

} // namespace
} // namespace otft::netlist
