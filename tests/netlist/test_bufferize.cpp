/** @file Unit tests for fanout-tree buffering. */

#include <gtest/gtest.h>

#include "netlist/bufferize.hpp"
#include "netlist/generators.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace otft::netlist {
namespace {

/** Max sinks on any net of a netlist (including output ports). */
int
maxFanout(const Netlist &nl)
{
    auto fo = nl.fanouts();
    std::vector<int> count(nl.numGates(), 0);
    for (std::size_t g = 0; g < nl.numGates(); ++g)
        count[g] = static_cast<int>(fo[g].size());
    for (const auto &port : nl.outputs())
        ++count[static_cast<std::size_t>(port.gate)];
    int best = 0;
    for (int c : count)
        best = std::max(best, c);
    return best;
}

Netlist
wideFanoutNetlist(int sinks)
{
    Netlist nl;
    NetBuilder b(nl);
    const GateId a = b.input("a");
    const GateId n = b.notGate(a);
    for (int i = 0; i < sinks; ++i)
        b.output("o" + std::to_string(i), b.notGate(n));
    return nl;
}

TEST(Bufferize, CapsFanout)
{
    const auto nl = wideFanoutNetlist(64);
    EXPECT_GT(maxFanout(nl), 6);
    const auto buffered = bufferize(nl, 6);
    EXPECT_LE(maxFanout(buffered), 6);
}

TEST(Bufferize, PreservesFunction)
{
    Netlist nl;
    NetBuilder b(nl);
    const auto a = b.inputBus("a", 8);
    const auto y = b.inputBus("y", 8);
    const auto product = arrayMultiplier(b, a, y);
    b.outputBus("p", product);

    const auto buffered = bufferize(nl, 4);
    EXPECT_LE(maxFanout(buffered), 4);

    Rng rng(3);
    for (int trial = 0; trial < 24; ++trial) {
        std::vector<bool> in;
        for (int i = 0; i < 16; ++i)
            in.push_back(rng.bernoulli(0.5));
        const auto v1 = nl.evaluate(in);
        const auto v2 = buffered.evaluate(in);
        ASSERT_EQ(nl.outputs().size(), buffered.outputs().size());
        for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
            EXPECT_EQ(v1[static_cast<std::size_t>(
                          nl.outputs()[o].gate)],
                      v2[static_cast<std::size_t>(
                          buffered.outputs()[o].gate)]);
        }
    }
}

TEST(Bufferize, NoChangeWhenUnderLimit)
{
    Netlist nl;
    NetBuilder b(nl);
    const GateId a = b.input("a");
    b.output("o", b.notGate(a));
    const auto buffered = bufferize(nl, 6);
    EXPECT_EQ(buffered.numGates(), nl.numGates());
}

TEST(Bufferize, BufferPairsPreservePolarity)
{
    const auto nl = wideFanoutNetlist(40);
    const auto buffered = bufferize(nl, 4);
    const auto vals_hi = buffered.evaluate({true});
    const auto vals_lo = buffered.evaluate({false});
    for (const auto &port : buffered.outputs()) {
        EXPECT_TRUE(vals_hi[static_cast<std::size_t>(port.gate)]);
        EXPECT_FALSE(vals_lo[static_cast<std::size_t>(port.gate)]);
    }
}

TEST(Bufferize, TreeDepthLogarithmic)
{
    const auto nl = wideFanoutNetlist(200);
    const auto buffered = bufferize(nl, 4);
    // 200 sinks at branching 4 needs <= 4 buffer levels of inverter
    // pairs beyond the original depth-2 netlist.
    EXPECT_LE(buffered.depth(), nl.depth() + 2 * 4);
}

TEST(Bufferize, SequentialNetlistsSupported)
{
    Netlist nl;
    NetBuilder b(nl);
    const GateId a = b.input("a");
    const GateId q = b.dff(a);
    for (int i = 0; i < 30; ++i)
        b.output("o" + std::to_string(i), b.notGate(q));
    const auto buffered = bufferize(nl, 5);
    EXPECT_LE(maxFanout(buffered), 5);
    EXPECT_EQ(buffered.dffs().size(), 1u);
}

TEST(Bufferize, RejectsBadLimit)
{
    Netlist nl;
    EXPECT_THROW(bufferize(nl, 1), FatalError);
}

} // namespace
} // namespace otft::netlist
