/** @file Unit tests for critical-path reporting. */

#include <sstream>

#include <gtest/gtest.h>

#include "liberty/silicon.hpp"
#include "netlist/generators.hpp"
#include "sta/path_report.hpp"

namespace otft::sta {
namespace {

netlist::Netlist
chain(int n)
{
    netlist::Netlist nl;
    netlist::NetBuilder b(nl);
    netlist::GateId g = b.input("a");
    for (int i = 0; i < n; ++i)
        g = b.notGate(g);
    b.output("o", g);
    return nl;
}

TEST(PathReport, CoversWholeChain)
{
    const auto lib = liberty::makeSiliconLibrary();
    StaEngine engine(lib);
    const auto nl = chain(6);
    const auto report = reportCriticalPath(engine, nl);
    // Input + 6 inverters.
    EXPECT_EQ(report.hops.size(), 7u);
    EXPECT_EQ(report.hops.front().cell, "input");
    EXPECT_EQ(report.hops.back().cell, "inv");
}

TEST(PathReport, ArrivalsMonotoneAndConsistent)
{
    const auto lib = liberty::makeSiliconLibrary();
    StaEngine engine(lib);
    netlist::Netlist nl;
    {
        netlist::NetBuilder b(nl);
        const auto a = b.inputBus("a", 16);
        const auto y = b.inputBus("y", 16);
        b.outputBus("s", netlist::koggeStoneAdder(b, a, y).sum);
    }
    const auto report = reportCriticalPath(engine, nl);
    double prev = -1.0;
    double incr_sum = 0.0;
    for (const auto &hop : report.hops) {
        EXPECT_GE(hop.arrival, prev);
        EXPECT_GE(hop.incremental, -1e-15);
        prev = hop.arrival;
        incr_sum += hop.incremental;
    }
    EXPECT_NEAR(incr_sum, report.hops.back().arrival, 1e-12);
    EXPECT_NEAR(report.arrival, engine.analyze(nl).worstArrival,
                1e-15);
}

TEST(PathReport, WireShareZeroWhenDisabled)
{
    const auto lib = liberty::makeSiliconLibrary();
    StaConfig config;
    config.wireEnabled = false;
    StaEngine engine(lib, config);
    const auto report = reportCriticalPath(engine, chain(5));
    EXPECT_DOUBLE_EQ(report.totalWireDelay, 0.0);
    EXPECT_DOUBLE_EQ(report.wireFraction, 0.0);
}

TEST(PathReport, RendersReadableText)
{
    const auto lib = liberty::makeSiliconLibrary();
    StaEngine engine(lib);
    const auto report = reportCriticalPath(engine, chain(3));
    std::ostringstream os;
    report.render(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("arrival"), std::string::npos);
    EXPECT_NE(text.find("wire share"), std::string::npos);
    EXPECT_NE(text.find("inv"), std::string::npos);
}

} // namespace
} // namespace otft::sta
