/** @file Unit tests for the wireload model. */

#include <gtest/gtest.h>

#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "sta/wire.hpp"

namespace otft::sta {
namespace {

TEST(WireModel, DisabledIsFree)
{
    const auto lib = liberty::makeSiliconLibrary();
    const WireModel model(lib.wire(), false);
    const auto e = model.estimate(8, 1e-14);
    EXPECT_DOUBLE_EQ(e.cap, 0.0);
    EXPECT_DOUBLE_EQ(e.delay, 0.0);
    EXPECT_FALSE(model.isEnabled());
}

TEST(WireModel, LengthGrowsWithFanout)
{
    const auto lib = liberty::makeSiliconLibrary();
    const WireModel model(lib.wire());
    const auto e1 = model.estimate(1, 1e-15);
    const auto e8 = model.estimate(8, 8e-15);
    EXPECT_GT(e8.length, e1.length);
    EXPECT_GT(e8.cap, e1.cap);
    EXPECT_GT(e8.delay, e1.delay);
}

TEST(WireModel, ExtraSpanAdds)
{
    const auto lib = liberty::makeSiliconLibrary();
    const WireModel model(lib.wire());
    const auto base = model.estimate(2, 2e-15);
    const auto spanned = model.estimate(2, 2e-15, 100e-6);
    EXPECT_NEAR(spanned.length - base.length, 100e-6, 1e-12);
    EXPECT_GT(spanned.delay, base.delay);
}

TEST(WireModel, ZeroFanoutIsFree)
{
    const auto lib = liberty::makeSiliconLibrary();
    const WireModel model(lib.wire());
    const auto e = model.estimate(0, 0.0);
    EXPECT_DOUBLE_EQ(e.delay, 0.0);
}

TEST(WireModel, PaperRatioOrganicVsSilicon)
{
    // The paper's core quantitative claim: the wire-to-gate delay
    // ratio differs by orders of magnitude between the processes.
    const auto si = liberty::makeSiliconLibrary();
    const auto org = liberty::cachedOrganicLibrary(
        "organic.lib");

    const WireModel si_model(si.wire());
    const WireModel org_model(org.wire());

    const double si_gate = si.cell("inv").arc(0).worstDelay(
        si.defaultSlew(), 4.0 * si.cell("inv").inputCap);
    const double org_gate = org.cell("inv").arc(0).worstDelay(
        org.defaultSlew(), 4.0 * org.cell("inv").inputCap);

    const double si_wire =
        si_model.estimate(4, 4.0 * si.cell("inv").inputCap).delay;
    const double org_wire =
        org_model.estimate(4, 4.0 * org.cell("inv").inputCap).delay;

    const double si_ratio = si_wire / si_gate;
    const double org_ratio = org_wire / org_gate;
    EXPECT_GT(si_ratio / org_ratio, 10.0);
}

} // namespace
} // namespace otft::sta
