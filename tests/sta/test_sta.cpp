/** @file Unit tests for the static timing engine. */

#include <gtest/gtest.h>

#include "liberty/silicon.hpp"
#include "netlist/generators.hpp"
#include "sta/sta.hpp"

namespace otft::sta {
namespace {

netlist::Netlist
inverterChain(int length)
{
    netlist::Netlist nl;
    netlist::NetBuilder b(nl);
    netlist::GateId g = b.input("a");
    for (int i = 0; i < length; ++i)
        g = b.notGate(g);
    b.output("o", g);
    return nl;
}

TEST(Sta, ChainDelayScalesWithLength)
{
    const auto lib = liberty::makeSiliconLibrary();
    StaEngine engine(lib);
    const auto r4 = engine.analyze(inverterChain(4));
    const auto r16 = engine.analyze(inverterChain(16));
    EXPECT_GT(r16.worstArrival, r4.worstArrival);
    // Roughly linear in chain length once overheads cancel.
    const double per_gate_4 = r4.worstArrival / 4.0;
    const double per_gate_16 = r16.worstArrival / 16.0;
    EXPECT_NEAR(per_gate_16 / per_gate_4, 1.0, 0.5);
}

TEST(Sta, AreaAndCountsAccumulate)
{
    const auto lib = liberty::makeSiliconLibrary();
    StaEngine engine(lib);
    const auto r = engine.analyze(inverterChain(10));
    EXPECT_EQ(r.cellCount, 10u);
    EXPECT_NEAR(r.area, 10.0 * lib.cell("inv").area, 1e-18);
    EXPECT_NEAR(r.leakage, 10.0 * lib.cell("inv").leakage, 1e-12);
    EXPECT_EQ(r.flopCount, 0u);
}

TEST(Sta, CriticalPathWalkback)
{
    const auto lib = liberty::makeSiliconLibrary();
    StaEngine engine(lib);
    const auto nl = inverterChain(7);
    const auto r = engine.analyze(nl);
    // Path covers the whole chain plus the endpoint.
    EXPECT_GE(r.criticalPath.size(), 7u);
}

TEST(Sta, RegisteredNetlistUsesSetupAndClkq)
{
    const auto lib = liberty::makeSiliconLibrary();
    // in -> inv -> dff -> inv -> out
    netlist::Netlist nl;
    netlist::NetBuilder b(nl);
    auto g = b.input("a");
    g = b.notGate(g);
    g = b.dff(g);
    g = b.notGate(g);
    b.output("o", g);

    StaEngine engine(lib);
    const auto r = engine.analyze(nl);
    EXPECT_EQ(r.flopCount, 1u);
    // Period covers at least clk->Q + one inverter + setup + margin.
    const auto &dff = lib.cell("dff");
    EXPECT_GT(r.minClockPeriod,
              dff.flop.clkToQ + dff.flop.setup + lib.clockMargin());
}

TEST(Sta, ConstantsDoNotConstrain)
{
    const auto lib = liberty::makeSiliconLibrary();
    netlist::Netlist nl;
    netlist::NetBuilder b(nl);
    const auto a = b.input("a");
    const auto k = b.constant(true);
    const auto n = b.nand2(a, k);
    b.output("o", n);
    StaEngine engine(lib);
    const auto r = engine.analyze(nl);
    EXPECT_GT(r.minClockPeriod, 0.0);
    // A pure-constant cone output would contribute no timing at all.
    netlist::Netlist nl2;
    netlist::NetBuilder b2(nl2);
    const auto k2 = b2.constant(false);
    b2.input("unused");
    b2.output("o", b2.notGate(k2));
    const auto r2 = engine.analyze(nl2);
    EXPECT_NEAR(r2.minClockPeriod,
                lib.clockMargin(), 1e-12);
}

TEST(Sta, WireDisableSpeedsUpSilicon)
{
    const auto lib = liberty::makeSiliconLibrary();
    const auto nl = inverterChain(20);
    StaConfig with;
    StaConfig without;
    without.wireEnabled = false;
    const auto rw = StaEngine(lib, with).analyze(nl);
    const auto rn = StaEngine(lib, without).analyze(nl);
    EXPECT_GT(rw.minClockPeriod, rn.minClockPeriod);
}

TEST(Sta, SlewPropagationSlowsHeavyLoads)
{
    const auto lib = liberty::makeSiliconLibrary();
    // One inverter driving a wide NAND fan-in tree is slower than the
    // same inverter driving a single gate.
    netlist::Netlist light, heavy;
    {
        netlist::NetBuilder b(light);
        auto g = b.input("a");
        g = b.notGate(g);
        b.output("o", b.notGate(g));
    }
    {
        netlist::NetBuilder b(heavy);
        auto g = b.input("a");
        g = b.notGate(g);
        netlist::GateId last = g;
        for (int i = 0; i < 5; ++i)
            last = b.nand2(g, last);
        b.output("o", last);
    }
    StaEngine engine(lib);
    EXPECT_GT(engine.analyze(heavy).worstArrival,
              engine.analyze(light).worstArrival);
}

TEST(Sta, SpanCoefficientSlowsBigBlocks)
{
    const auto lib = liberty::makeSiliconLibrary();
    netlist::Netlist nl;
    {
        netlist::NetBuilder b(nl);
        const auto a = b.inputBus("a", 32);
        const auto y = b.inputBus("y", 32);
        const auto s = netlist::koggeStoneAdder(b, a, y);
        b.outputBus("s", s.sum);
    }
    StaConfig tight;
    tight.spanCoefficient = 0.0;
    StaConfig spread;
    spread.spanCoefficient = 1.0;
    EXPECT_GT(StaEngine(lib, spread).analyze(nl).minClockPeriod,
              StaEngine(lib, tight).analyze(nl).minClockPeriod);
}

/** Sweep: deeper adders time longer, monotonically. */
class AdderTiming : public ::testing::TestWithParam<int>
{
};

TEST_P(AdderTiming, PeriodPositiveAndBounded)
{
    const auto lib = liberty::makeSiliconLibrary();
    netlist::Netlist nl;
    {
        netlist::NetBuilder b(nl);
        const int w = GetParam();
        const auto a = b.inputBus("a", w);
        const auto y = b.inputBus("y", w);
        b.outputBus("s", netlist::koggeStoneAdder(b, a, y).sum);
    }
    StaEngine engine(lib);
    const auto r = engine.analyze(nl);
    EXPECT_GT(r.minClockPeriod, 0.0);
    EXPECT_LT(r.minClockPeriod, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderTiming,
                         ::testing::Values(4, 8, 16, 32, 64));

} // namespace
} // namespace otft::sta
