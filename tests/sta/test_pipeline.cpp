/** @file Unit tests for the delay-balanced pipeliner. */

#include <gtest/gtest.h>

#include "liberty/silicon.hpp"
#include "netlist/bufferize.hpp"
#include "netlist/generators.hpp"
#include "sta/pipeline.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace otft::sta {
namespace {

netlist::Netlist
makeMultiplier(int width)
{
    netlist::Netlist nl;
    netlist::NetBuilder b(nl);
    const auto a = b.inputBus("a", width);
    const auto y = b.inputBus("y", width);
    b.outputBus("p", netlist::arrayMultiplier(b, a, y));
    return netlist::bufferize(nl, 6);
}

std::vector<bool>
randomInputs(std::size_t count, Rng &rng)
{
    std::vector<bool> in(count);
    for (std::size_t i = 0; i < count; ++i)
        in[i] = rng.bernoulli(0.5);
    return in;
}

/**
 * Run a pipelined netlist for enough cycles to flush the pipe and
 * return the final outputs for constant inputs.
 */
std::vector<bool>
settledOutputs(const netlist::Netlist &nl, const std::vector<bool> &in,
               int cycles)
{
    std::vector<bool> state(nl.dffs().size(), false);
    std::vector<bool> vals;
    for (int c = 0; c < cycles; ++c) {
        std::vector<bool> next;
        vals = nl.evaluate(in, state, &next);
        state = std::move(next);
    }
    std::vector<bool> out;
    for (const auto &port : nl.outputs())
        out.push_back(vals[static_cast<std::size_t>(port.gate)]);
    return out;
}

TEST(Pipeliner, SingleStageIsIdentityCopy)
{
    const auto lib = liberty::makeSiliconLibrary();
    const auto comb = makeMultiplier(6);
    Pipeliner pipeliner(lib);
    const auto report = pipeliner.pipeline(comb, 1);
    EXPECT_EQ(report.insertedFlops, 0u);
    EXPECT_EQ(report.netlist.numGates(), comb.numGates());
}

TEST(Pipeliner, PreservesFunctionAcrossDepths)
{
    const auto lib = liberty::makeSiliconLibrary();
    const auto comb = makeMultiplier(6);
    Pipeliner pipeliner(lib);
    Rng rng(3);

    for (int stages : {2, 3, 5, 9}) {
        const auto report = pipeliner.pipeline(comb, stages);
        for (int trial = 0; trial < 8; ++trial) {
            const auto in = randomInputs(comb.inputs().size(), rng);
            const auto expect = settledOutputs(comb, in, 1);
            const auto got =
                settledOutputs(report.netlist, in, stages + 2);
            EXPECT_EQ(got, expect) << "stages=" << stages;
        }
    }
}

TEST(Pipeliner, FrequencyImprovesWithStages)
{
    const auto lib = liberty::makeSiliconLibrary();
    const auto comb = makeMultiplier(12);
    Pipeliner pipeliner(lib);
    StaEngine engine(lib);
    double prev = 0.0;
    for (int stages : {1, 2, 4, 8}) {
        const auto report = pipeliner.pipeline(comb, stages);
        const auto r = engine.analyze(report.netlist);
        EXPECT_GT(r.maxFrequency, prev) << "stages=" << stages;
        prev = r.maxFrequency;
    }
}

TEST(Pipeliner, RegisterCountGrowsWithStages)
{
    const auto lib = liberty::makeSiliconLibrary();
    const auto comb = makeMultiplier(10);
    Pipeliner pipeliner(lib);
    std::size_t prev = 0;
    for (int stages : {2, 4, 8}) {
        const auto report = pipeliner.pipeline(comb, stages);
        EXPECT_GT(report.insertedFlops, prev);
        prev = report.insertedFlops;
        EXPECT_EQ(report.netlist.dffs().size(), report.insertedFlops);
    }
}

TEST(Pipeliner, OutputsAlignedToFinalStage)
{
    // All outputs get the same latency: a pipelined constant-input
    // run must produce the comb result exactly at `stages` cycles.
    const auto lib = liberty::makeSiliconLibrary();
    const auto comb = makeMultiplier(6);
    Pipeliner pipeliner(lib);
    const int stages = 4;
    const auto report = pipeliner.pipeline(comb, stages);
    Rng rng(9);
    const auto in = randomInputs(comb.inputs().size(), rng);
    const auto expect = settledOutputs(comb, in, 1);
    // Exactly `stages` evaluations after reset: the result arrives.
    EXPECT_EQ(settledOutputs(report.netlist, in, stages), expect);
}

TEST(Pipeliner, FlopOverheadShowsInPipelinedPeriod)
{
    // The per-stage overhead of the target library is visible in the
    // achieved period: a library with grossly heavier flops cannot
    // reach the same pipelined frequency on the same block.
    const auto si = liberty::makeSiliconLibrary();
    liberty::SiliconConfig heavy_flops;
    heavy_flops.clkToQ = 2e-9;
    heavy_flops.setup = 2e-9;
    const auto other = liberty::makeSiliconLibrary(heavy_flops);

    const auto comb = makeMultiplier(10);
    const auto a = Pipeliner(si).pipeline(comb, 6);
    const auto b = Pipeliner(other).pipeline(comb, 6);
    const double pa = StaEngine(si).analyze(a.netlist).minClockPeriod;
    const double pb =
        StaEngine(other).analyze(b.netlist).minClockPeriod;
    EXPECT_GT(pb, pa + 3e-9);
}

TEST(Pipeliner, RejectsBadInputs)
{
    const auto lib = liberty::makeSiliconLibrary();
    Pipeliner pipeliner(lib);
    const auto comb = makeMultiplier(4);
    EXPECT_THROW(pipeliner.pipeline(comb, 0), FatalError);

    netlist::Netlist sequential;
    netlist::NetBuilder b(sequential);
    b.output("q", b.dff(b.input("d")));
    EXPECT_THROW(pipeliner.pipeline(sequential, 2), FatalError);
}

/** Sweep: function preserved for every stage count 1..10. */
class PipelineDepths : public ::testing::TestWithParam<int>
{
};

TEST_P(PipelineDepths, AdderStillAdds)
{
    const auto lib = liberty::makeSiliconLibrary();
    netlist::Netlist comb;
    {
        netlist::NetBuilder b(comb);
        const auto a = b.inputBus("a", 8);
        const auto y = b.inputBus("y", 8);
        b.outputBus("s", netlist::koggeStoneAdder(b, a, y).sum);
    }
    const int stages = GetParam();
    const auto report = Pipeliner(lib).pipeline(comb, stages);

    Rng rng(static_cast<std::uint64_t>(stages));
    for (int trial = 0; trial < 6; ++trial) {
        std::uint64_t x = rng.next() & 0xFF, z = rng.next() & 0xFF;
        std::vector<bool> in;
        for (int i = 0; i < 8; ++i)
            in.push_back((x >> i) & 1);
        for (int i = 0; i < 8; ++i)
            in.push_back((z >> i) & 1);
        const auto out =
            settledOutputs(report.netlist, in, stages + 2);
        std::uint64_t got = 0;
        for (std::size_t i = 0; i < out.size(); ++i)
            if (out[i])
                got |= std::uint64_t{1} << i;
        EXPECT_EQ(got, (x + z) & 0xFF) << "stages=" << stages;
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, PipelineDepths,
                         ::testing::Range(1, 11));

} // namespace
} // namespace otft::sta
