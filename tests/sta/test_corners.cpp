/** @file Tests for corner-aware STA and the Gaussian yield model. */

#include <cmath>

#include <gtest/gtest.h>

#include "liberty/mc_characterizer.hpp"
#include "liberty/silicon.hpp"
#include "netlist/generators.hpp"
#include "sta/corners.hpp"

namespace otft::sta {
namespace {

netlist::Netlist
registeredChain(int length)
{
    netlist::Netlist nl;
    netlist::NetBuilder b(nl);
    auto g = b.input("a");
    g = b.dff(g);
    for (int i = 0; i < length; ++i)
        g = b.notGate(g);
    g = b.dff(g);
    b.output("o", g);
    return nl;
}

liberty::StatLibrary
siliconCorners(double sigma_fraction = 0.02, double corner_sigma = 3.0)
{
    return liberty::scaledCorners(liberty::makeSiliconLibrary(),
                                  sigma_fraction, corner_sigma,
                                  "silicon_corner_test");
}

TEST(NormalMath, CdfMatchesKnownValues)
{
    EXPECT_DOUBLE_EQ(normalCdf(0.0), 0.5);
    EXPECT_NEAR(normalCdf(1.0), 0.841344746, 1e-8);
    EXPECT_NEAR(normalCdf(-1.0), 0.158655254, 1e-8);
    EXPECT_NEAR(normalCdf(3.0), 0.998650102, 1e-8);
    EXPECT_NEAR(normalCdf(6.0), 1.0, 1e-9);
}

TEST(NormalMath, QuantileMatchesKnownValues)
{
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-12);
    EXPECT_NEAR(normalQuantile(0.975), 1.959963985, 1e-8);
    EXPECT_NEAR(normalQuantile(0.99), 2.326347874, 1e-8);
    EXPECT_NEAR(normalQuantile(0.001), -3.090232306, 1e-8);
}

TEST(NormalMath, QuantileInvertsCdf)
{
    for (double p : {1e-6, 0.01, 0.1, 0.5, 0.9, 0.99, 1.0 - 1e-6})
        EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-9);
    for (double z : {-4.0, -1.5, 0.0, 0.7, 2.5, 4.0})
        EXPECT_NEAR(normalQuantile(normalCdf(z)), z, 1e-7);
}

TEST(CornerSta, AnalyzeOrdersCornersAndRecoversSigma)
{
    const auto stat = siliconCorners();
    CornerStaEngine engine(stat);
    const auto r = engine.analyze(registeredChain(8));
    EXPECT_GT(r.slow.minClockPeriod, r.mean.minClockPeriod);
    EXPECT_LT(r.fast.minClockPeriod, r.mean.minClockPeriod);
    // sigma = (slow - mean) / cornerSigma, strictly positive here.
    EXPECT_NEAR(r.periodSigma(),
                (r.slow.minClockPeriod - r.mean.minClockPeriod) / 3.0,
                1e-18);
    EXPECT_GT(r.periodSigma(), 0.0);
}

TEST(CornerSta, YieldModelBehavesLikeAGaussian)
{
    const auto stat = siliconCorners();
    CornerStaEngine engine(stat);
    const auto r = engine.analyze(registeredChain(8));
    // Half the instances meet the mean period.
    EXPECT_NEAR(r.yieldAtPeriod(r.mean.minClockPeriod), 0.5, 1e-12);
    // The slow corner is the cornerSigma quantile.
    EXPECT_NEAR(r.yieldAtPeriod(r.slow.minClockPeriod),
                normalCdf(r.cornerSigma), 1e-9);
    // Monotone increasing in period.
    const double t = r.mean.minClockPeriod;
    EXPECT_LT(r.yieldAtPeriod(0.9 * t), r.yieldAtPeriod(1.1 * t));
}

TEST(CornerSta, FrequencyAtYieldInvertsYieldAtPeriod)
{
    const auto stat = siliconCorners();
    CornerStaEngine engine(stat);
    const auto r = engine.analyze(registeredChain(8));
    for (double y : {0.1, 0.5, 0.9, 0.99, 0.999}) {
        const double f = r.frequencyAtYield(y);
        ASSERT_GT(f, 0.0);
        EXPECT_NEAR(r.yieldAtPeriod(1.0 / f), y, 1e-9);
    }
    // Higher yield targets demand slower clocks.
    EXPECT_GT(r.frequencyAtYield(0.5), r.frequencyAtYield(0.99));
}

TEST(CornerSta, ZeroSigmaCornersDegenerateToStepYield)
{
    // cornerSigma == 0 (or identical corners): the Gaussian collapses
    // to a step at the mean period.
    const auto stat = siliconCorners(0.0, 3.0);
    CornerStaEngine engine(stat);
    const auto r = engine.analyze(registeredChain(4));
    EXPECT_DOUBLE_EQ(r.periodSigma(), 0.0);
    const double t = r.mean.minClockPeriod;
    EXPECT_DOUBLE_EQ(r.yieldAtPeriod(t * 1.01), 1.0);
    EXPECT_DOUBLE_EQ(r.yieldAtPeriod(t * 0.99), 0.0);
}

} // namespace
} // namespace otft::sta
