/** @file Unit tests for the power engine (future-work extension). */

#include <gtest/gtest.h>

#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "netlist/generators.hpp"
#include "sta/power.hpp"
#include "util/logging.hpp"

namespace otft::sta {
namespace {

netlist::Netlist
adder(int width)
{
    netlist::Netlist nl;
    netlist::NetBuilder b(nl);
    const auto a = b.inputBus("a", width);
    const auto y = b.inputBus("y", width);
    b.outputBus("s", netlist::koggeStoneAdder(b, a, y).sum);
    return nl;
}

TEST(Power, ActivityPropagationBounds)
{
    const auto lib = liberty::makeSiliconLibrary();
    PowerEngine engine(lib);
    const auto nl = adder(16);
    const auto act = engine.propagate(nl);
    for (std::size_t g = 0; g < nl.numGates(); ++g) {
        EXPECT_GE(act.one[g], 0.0);
        EXPECT_LE(act.one[g], 1.0);
        EXPECT_GE(act.toggle[g], 0.0);
        EXPECT_LE(act.toggle[g], 1.0);
    }
}

TEST(Power, InverterPreservesToggleFlipsProbability)
{
    const auto lib = liberty::makeSiliconLibrary();
    netlist::Netlist nl;
    netlist::NetBuilder b(nl);
    const auto a = b.input("a");
    const auto n = b.notGate(a);
    b.output("o", n);
    PowerEngine engine(lib);
    const auto act = engine.propagate(nl);
    EXPECT_DOUBLE_EQ(act.one[static_cast<std::size_t>(n)], 0.5);
    EXPECT_DOUBLE_EQ(act.toggle[static_cast<std::size_t>(n)],
                     act.toggle[static_cast<std::size_t>(a)]);
}

TEST(Power, ConstantsNeverToggle)
{
    const auto lib = liberty::makeSiliconLibrary();
    netlist::Netlist nl;
    netlist::NetBuilder b(nl);
    const auto k = b.constant(true);
    const auto n = b.notGate(k);
    b.output("o", n);
    b.input("unused");
    PowerEngine engine(lib);
    const auto act = engine.propagate(nl);
    EXPECT_DOUBLE_EQ(act.toggle[static_cast<std::size_t>(k)], 0.0);
    EXPECT_DOUBLE_EQ(act.toggle[static_cast<std::size_t>(n)], 0.0);
    EXPECT_DOUBLE_EQ(act.one[static_cast<std::size_t>(n)], 0.0);
}

TEST(Power, DynamicScalesWithFrequency)
{
    const auto lib = liberty::makeSiliconLibrary();
    PowerEngine engine(lib);
    const auto nl = adder(16);
    const auto slow = engine.estimate(nl, 1e8);
    const auto fast = engine.estimate(nl, 4e8);
    EXPECT_NEAR(fast.dynamicPower / slow.dynamicPower, 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(fast.staticPower, slow.staticPower);
}

TEST(Power, StaticScalesWithGateCount)
{
    const auto lib = liberty::makeSiliconLibrary();
    PowerEngine engine(lib);
    const auto small = engine.estimate(adder(8), 1e8);
    const auto big = engine.estimate(adder(32), 1e8);
    EXPECT_GT(big.staticPower, 2.0 * small.staticPower);
}

TEST(Power, ClockPowerNeedsFlops)
{
    const auto lib = liberty::makeSiliconLibrary();
    PowerEngine engine(lib);
    const auto comb = engine.estimate(adder(8), 1e8);
    EXPECT_DOUBLE_EQ(comb.clockPower, 0.0);

    netlist::Netlist seq;
    netlist::NetBuilder b(seq);
    const auto a = b.inputBus("a", 8);
    b.outputBus("q", b.dffBus(a));
    const auto with_flops = engine.estimate(seq, 1e8);
    EXPECT_GT(with_flops.clockPower, 0.0);
}

TEST(Power, InputActivityKnob)
{
    const auto lib = liberty::makeSiliconLibrary();
    PowerConfig lazy;
    lazy.inputActivity = 0.01;
    PowerConfig busy;
    busy.inputActivity = 0.5;
    const auto nl = adder(16);
    const auto p_lazy = PowerEngine(lib, lazy).estimate(nl, 1e8);
    const auto p_busy = PowerEngine(lib, busy).estimate(nl, 1e8);
    EXPECT_GT(p_busy.dynamicPower, 10.0 * p_lazy.dynamicPower);
}

TEST(Power, RejectsNonPositiveFrequency)
{
    const auto lib = liberty::makeSiliconLibrary();
    PowerEngine engine(lib);
    EXPECT_THROW(engine.estimate(adder(4), 0.0), FatalError);
}

TEST(Power, OrganicStaticDominatesSiliconDynamicDominates)
{
    // The technology contrast the energy extension bench rests on.
    const auto si = liberty::makeSiliconLibrary();
    const auto org = liberty::cachedOrganicLibrary(
        "organic.lib");
    const auto nl = adder(16);

    const auto p_si =
        PowerEngine(si).estimate(nl, 3e8); // near its clock
    const auto p_org = PowerEngine(org).estimate(nl, 200.0);
    EXPECT_GT(p_si.dynamicPower, p_si.staticPower);
    EXPECT_GT(p_org.staticPower, 100.0 * p_org.dynamicPower);
}

} // namespace
} // namespace otft::sta
