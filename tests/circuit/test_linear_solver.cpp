/** @file Unit tests for the dense LU solver. */

#include <gtest/gtest.h>

#include <algorithm>

#include "circuit/linear_solver.hpp"
#include "util/rng.hpp"

namespace otft::circuit {
namespace {

TEST(LinearSolver, SolvesIdentity)
{
    Matrix a(3);
    for (std::size_t i = 0; i < 3; ++i)
        a.at(i, i) = 1.0;
    std::vector<double> b = {1.0, 2.0, 3.0};
    ASSERT_TRUE(solveLinear(a, b));
    EXPECT_DOUBLE_EQ(b[0], 1.0);
    EXPECT_DOUBLE_EQ(b[1], 2.0);
    EXPECT_DOUBLE_EQ(b[2], 3.0);
}

TEST(LinearSolver, Solves2x2)
{
    Matrix a(2);
    a.at(0, 0) = 2.0;
    a.at(0, 1) = 1.0;
    a.at(1, 0) = 1.0;
    a.at(1, 1) = 3.0;
    std::vector<double> b = {5.0, 10.0};
    ASSERT_TRUE(solveLinear(a, b));
    EXPECT_NEAR(b[0], 1.0, 1e-12);
    EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(LinearSolver, RequiresPivoting)
{
    // Zero on the diagonal forces a row swap.
    Matrix a(2);
    a.at(0, 0) = 0.0;
    a.at(0, 1) = 1.0;
    a.at(1, 0) = 1.0;
    a.at(1, 1) = 0.0;
    std::vector<double> b = {7.0, 9.0};
    ASSERT_TRUE(solveLinear(a, b));
    EXPECT_NEAR(b[0], 9.0, 1e-12);
    EXPECT_NEAR(b[1], 7.0, 1e-12);
}

TEST(LinearSolver, DetectsSingular)
{
    Matrix a(2);
    a.at(0, 0) = 1.0;
    a.at(0, 1) = 2.0;
    a.at(1, 0) = 2.0;
    a.at(1, 1) = 4.0;
    std::vector<double> b = {1.0, 2.0};
    EXPECT_FALSE(solveLinear(a, b));
}

TEST(LinearSolver, SizeMismatchFails)
{
    Matrix a(2);
    std::vector<double> b = {1.0};
    EXPECT_FALSE(solveLinear(a, b));
}

/** Property sweep: random well-conditioned systems round-trip. */
class RandomSystems : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomSystems, ResidualIsTiny)
{
    const int n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n));

    Matrix a(static_cast<std::size_t>(n));
    std::vector<std::vector<double>> a_copy(
        static_cast<std::size_t>(n),
        std::vector<double>(static_cast<std::size_t>(n)));
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
            const double v = rng.uniform(-1.0, 1.0) +
                             (r == c ? static_cast<double>(n) : 0.0);
            a.at(static_cast<std::size_t>(r),
                 static_cast<std::size_t>(c)) = v;
            a_copy[static_cast<std::size_t>(r)]
                  [static_cast<std::size_t>(c)] = v;
        }
    }
    std::vector<double> b(static_cast<std::size_t>(n));
    for (auto &v : b)
        v = rng.uniform(-5.0, 5.0);
    const std::vector<double> b_copy = b;

    ASSERT_TRUE(solveLinear(a, b));
    for (int r = 0; r < n; ++r) {
        double sum = 0.0;
        for (int c = 0; c < n; ++c)
            sum += a_copy[static_cast<std::size_t>(r)]
                         [static_cast<std::size_t>(c)] *
                   b[static_cast<std::size_t>(c)];
        EXPECT_NEAR(sum, b_copy[static_cast<std::size_t>(r)], 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomSystems,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(LuFactors, FactorInPlaceMatchesCopyingFactor)
{
    // The skip-copy path must produce the same factors — i.e. the
    // same solve bits — as the copying factor(); only the ownership
    // of the input buffer differs.
    for (int n : {1, 3, 7, 12}) {
        Rng rng(static_cast<std::uint64_t>(100 + n));
        Matrix a(static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r)
            for (int c = 0; c < n; ++c)
                a.at(static_cast<std::size_t>(r),
                     static_cast<std::size_t>(c)) =
                    rng.uniform(-1.0, 1.0) +
                    (r == c ? static_cast<double>(n) : 0.0);
        Matrix a_clone(static_cast<std::size_t>(n));
        std::copy(a.raw(), a.raw() + a.size() * a.size(),
                  a_clone.raw());

        std::vector<double> b(static_cast<std::size_t>(n));
        for (auto &v : b)
            v = rng.uniform(-5.0, 5.0);
        std::vector<double> b_in_place = b;

        LuFactors copying;
        ASSERT_TRUE(copying.factor(a));
        copying.solve(b);

        LuFactors in_place;
        ASSERT_TRUE(in_place.factorInPlace(a_clone));
        in_place.solve(b_in_place);

        for (int i = 0; i < n; ++i)
            EXPECT_EQ(b[static_cast<std::size_t>(i)],
                      b_in_place[static_cast<std::size_t>(i)]);
    }
}

TEST(MatrixPattern, ZeroEntriesClearsOnlyListedSlots)
{
    Matrix a(3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            a.at(r, c) = 1.0 + static_cast<double>(r * 3 + c);
    // Flattened entries (0,0) and (2,1).
    a.zeroEntries({0u, 7u});
    EXPECT_EQ(a.at(0, 0), 0.0);
    EXPECT_EQ(a.at(2, 1), 0.0);
    EXPECT_EQ(a.at(1, 1), 5.0);
    EXPECT_EQ(a.at(2, 2), 9.0);
}

} // namespace
} // namespace otft::circuit
