/** @file Unit tests for the dense LU solver. */

#include <gtest/gtest.h>

#include "circuit/linear_solver.hpp"
#include "util/rng.hpp"

namespace otft::circuit {
namespace {

TEST(LinearSolver, SolvesIdentity)
{
    Matrix a(3);
    for (std::size_t i = 0; i < 3; ++i)
        a.at(i, i) = 1.0;
    std::vector<double> b = {1.0, 2.0, 3.0};
    ASSERT_TRUE(solveLinear(a, b));
    EXPECT_DOUBLE_EQ(b[0], 1.0);
    EXPECT_DOUBLE_EQ(b[1], 2.0);
    EXPECT_DOUBLE_EQ(b[2], 3.0);
}

TEST(LinearSolver, Solves2x2)
{
    Matrix a(2);
    a.at(0, 0) = 2.0;
    a.at(0, 1) = 1.0;
    a.at(1, 0) = 1.0;
    a.at(1, 1) = 3.0;
    std::vector<double> b = {5.0, 10.0};
    ASSERT_TRUE(solveLinear(a, b));
    EXPECT_NEAR(b[0], 1.0, 1e-12);
    EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(LinearSolver, RequiresPivoting)
{
    // Zero on the diagonal forces a row swap.
    Matrix a(2);
    a.at(0, 0) = 0.0;
    a.at(0, 1) = 1.0;
    a.at(1, 0) = 1.0;
    a.at(1, 1) = 0.0;
    std::vector<double> b = {7.0, 9.0};
    ASSERT_TRUE(solveLinear(a, b));
    EXPECT_NEAR(b[0], 9.0, 1e-12);
    EXPECT_NEAR(b[1], 7.0, 1e-12);
}

TEST(LinearSolver, DetectsSingular)
{
    Matrix a(2);
    a.at(0, 0) = 1.0;
    a.at(0, 1) = 2.0;
    a.at(1, 0) = 2.0;
    a.at(1, 1) = 4.0;
    std::vector<double> b = {1.0, 2.0};
    EXPECT_FALSE(solveLinear(a, b));
}

TEST(LinearSolver, SizeMismatchFails)
{
    Matrix a(2);
    std::vector<double> b = {1.0};
    EXPECT_FALSE(solveLinear(a, b));
}

/** Property sweep: random well-conditioned systems round-trip. */
class RandomSystems : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomSystems, ResidualIsTiny)
{
    const int n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n));

    Matrix a(static_cast<std::size_t>(n));
    std::vector<std::vector<double>> a_copy(
        static_cast<std::size_t>(n),
        std::vector<double>(static_cast<std::size_t>(n)));
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
            const double v = rng.uniform(-1.0, 1.0) +
                             (r == c ? static_cast<double>(n) : 0.0);
            a.at(static_cast<std::size_t>(r),
                 static_cast<std::size_t>(c)) = v;
            a_copy[static_cast<std::size_t>(r)]
                  [static_cast<std::size_t>(c)] = v;
        }
    }
    std::vector<double> b(static_cast<std::size_t>(n));
    for (auto &v : b)
        v = rng.uniform(-5.0, 5.0);
    const std::vector<double> b_copy = b;

    ASSERT_TRUE(solveLinear(a, b));
    for (int r = 0; r < n; ++r) {
        double sum = 0.0;
        for (int c = 0; c < n; ++c)
            sum += a_copy[static_cast<std::size_t>(r)]
                         [static_cast<std::size_t>(c)] *
                   b[static_cast<std::size_t>(c)];
        EXPECT_NEAR(sum, b_copy[static_cast<std::size_t>(r)], 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomSystems,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace otft::circuit
