/**
 * @file
 * Property tests for the lane-parallel batched solver engine: every
 * lane of the batched LU, the batched Newton, and the batched
 * transient must be bit-identical to running the same problem through
 * the scalar LuFactors/Mna/TransientAnalysis path — including lanes
 * that go singular or recover through the gmin boost. This is the
 * contract that lets batched characterization share the scalar
 * result-cache entries (DESIGN.md, "masked-lane lockstep").
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "cells/topologies.hpp"
#include "circuit/batch_solver.hpp"
#include "circuit/batch_transient.hpp"
#include "circuit/dc.hpp"
#include "circuit/linear_solver.hpp"
#include "util/rng.hpp"

namespace otft::circuit {
namespace {

constexpr std::size_t kLanes = 8;

/** Fill lane `lane` of a batched matrix and a scalar twin alike. */
void
fillLane(BatchedMatrix &batched, Matrix &scalar, std::size_t lane,
         Rng &rng)
{
    const std::size_t n = scalar.size();
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) {
            const double v = rng.uniform() * 20.0 - 10.0;
            scalar.at(r, c) = v;
            batched.at(r, c, lane) = v;
        }
    // Diagonal dominance on most lanes keeps the systems well posed
    // without making the pivot search trivial.
    if (lane % 3 != 0)
        for (std::size_t r = 0; r < n; ++r) {
            scalar.at(r, r) += 25.0;
            batched.at(r, r, lane) += 25.0;
        }
}

TEST(BatchedLu, LanesMatchScalarFactorsBitExact)
{
    for (std::size_t n : {1u, 2u, 3u, 5u, 9u, 16u}) {
        Rng rng(1000 + n);
        BatchedMatrix a(n, kLanes);
        std::vector<Matrix> scalars(kLanes, Matrix(n));
        std::vector<std::vector<double>> rhs(kLanes);
        std::vector<double> b(n * kLanes, 0.0);
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
            fillLane(a, scalars[lane], lane, rng);
            rhs[lane].resize(n);
            for (std::size_t i = 0; i < n; ++i) {
                rhs[lane][i] = rng.uniform() * 2.0 - 1.0;
                b[i * kLanes + lane] = rhs[lane][i];
            }
        }

        std::vector<std::size_t> all_lanes;
        for (std::size_t lane = 0; lane < kLanes; ++lane)
            all_lanes.push_back(lane);
        BatchedLu lu(n, kLanes);
        std::vector<std::uint8_t> ok(kLanes, 0);
        lu.factor(a, all_lanes, ok);
        lu.solve(b.data(), all_lanes);

        for (std::size_t lane = 0; lane < kLanes; ++lane) {
            LuFactors scalar_lu;
            ASSERT_TRUE(scalar_lu.factor(scalars[lane]));
            ASSERT_TRUE(ok[lane]);
            EXPECT_TRUE(lu.valid(lane));
            scalar_lu.solve(rhs[lane]);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(b[i * kLanes + lane], rhs[lane][i])
                    << "n=" << n << " lane=" << lane << " i=" << i;
        }
    }
}

TEST(BatchedLu, SingularLaneFailsAloneOthersUnaffected)
{
    const std::size_t n = 6;
    Rng rng(7);
    BatchedMatrix a(n, kLanes);
    std::vector<Matrix> scalars(kLanes, Matrix(n));
    for (std::size_t lane = 0; lane < kLanes; ++lane)
        fillLane(a, scalars[lane], lane, rng);
    // Lane 3: zero column -> no admissible pivot at k = 2.
    for (std::size_t r = 0; r < n; ++r) {
        a.at(r, 2, 3) = 0.0;
        scalars[3].at(r, 2) = 0.0;
    }

    std::vector<std::size_t> all_lanes;
    for (std::size_t lane = 0; lane < kLanes; ++lane)
        all_lanes.push_back(lane);
    BatchedLu lu(n, kLanes);
    std::vector<std::uint8_t> ok(kLanes, 1);
    lu.factor(a, all_lanes, ok);

    LuFactors scalar_singular;
    EXPECT_FALSE(scalar_singular.factor(scalars[3]));
    EXPECT_FALSE(ok[3]);
    EXPECT_FALSE(lu.valid(3));

    std::vector<std::size_t> good_lanes;
    for (std::size_t lane = 0; lane < kLanes; ++lane)
        if (lane != 3)
            good_lanes.push_back(lane);
    std::vector<double> b(n * kLanes, 0.0);
    std::vector<std::vector<double>> rhs(kLanes,
                                         std::vector<double>(n));
    for (std::size_t lane = 0; lane < kLanes; ++lane)
        for (std::size_t i = 0; i < n; ++i) {
            rhs[lane][i] = rng.uniform();
            b[i * kLanes + lane] = rhs[lane][i];
        }
    lu.solve(b.data(), good_lanes);
    for (const std::size_t lane : good_lanes) {
        ASSERT_TRUE(ok[lane]);
        LuFactors scalar_lu;
        ASSERT_TRUE(scalar_lu.factor(scalars[lane]));
        scalar_lu.solve(rhs[lane]);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(b[i * kLanes + lane], rhs[lane][i]);
    }
}

TEST(BatchedLu, MaskedRefactorKeepsFrozenLanes)
{
    // Chord lanes keep solving against their frozen factors while
    // other lanes refactor: factor all lanes, refactor a subset with
    // new values, and check the untouched lanes still reproduce their
    // original scalar solve.
    const std::size_t n = 5;
    Rng rng(21);
    BatchedMatrix a(n, kLanes);
    std::vector<Matrix> scalars(kLanes, Matrix(n));
    for (std::size_t lane = 0; lane < kLanes; ++lane)
        fillLane(a, scalars[lane], lane, rng);

    std::vector<std::size_t> all_lanes;
    for (std::size_t lane = 0; lane < kLanes; ++lane)
        all_lanes.push_back(lane);
    BatchedLu lu(n, kLanes);
    std::vector<std::uint8_t> ok(kLanes, 0);
    lu.factor(a, all_lanes, ok);

    // Overwrite even lanes with new systems and refactor only them.
    std::vector<std::size_t> even_lanes;
    for (std::size_t lane = 0; lane < kLanes; lane += 2) {
        fillLane(a, scalars[lane], lane, rng);
        even_lanes.push_back(lane);
    }
    lu.factor(a, even_lanes, ok);

    std::vector<double> b(n * kLanes, 0.0);
    std::vector<std::vector<double>> rhs(kLanes,
                                         std::vector<double>(n));
    for (std::size_t lane = 0; lane < kLanes; ++lane)
        for (std::size_t i = 0; i < n; ++i) {
            rhs[lane][i] = rng.uniform();
            b[i * kLanes + lane] = rhs[lane][i];
        }
    lu.solve(b.data(), all_lanes);
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
        LuFactors scalar_lu;
        ASSERT_TRUE(scalar_lu.factor(scalars[lane]));
        scalar_lu.solve(rhs[lane]);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(b[i * kLanes + lane], rhs[lane][i]);
    }
}

/** Inverter lanes at different input levels. */
struct InverterLanes
{
    std::vector<cells::BuiltCell> cells;
    std::vector<const Circuit *> circuits;
};

InverterLanes
makeInverterLanes(std::size_t lanes)
{
    InverterLanes out;
    cells::CellFactory factory;
    const double vdd = factory.supply().vdd;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        out.cells.push_back(
            factory.inverter(cells::InverterKind::PseudoE,
                             20e-12 * static_cast<double>(1 + lane)));
        out.cells.back().ckt.setSourceWave(
            out.cells.back().inputSources[0],
            Pwl::constant(vdd * static_cast<double>(lane) /
                          static_cast<double>(lanes - 1)));
    }
    for (const cells::BuiltCell &cell : out.cells)
        out.circuits.push_back(&cell.ckt);
    return out;
}

TEST(BatchedMna, DcNewtonMatchesScalarBitExact)
{
    InverterLanes lanes = makeInverterLanes(kLanes);
    const NewtonConfig cfg;
    BatchedMna mna(lanes.circuits, cfg);

    std::vector<BatchNewtonLane> state(kLanes);
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
        mna.setLaneX(lane, Solution(mna.numUnknowns(), 0.0));
        mna.setLaneStep(lane, 0.0, 1.0, 0.0);
        state[lane].active = true;
    }
    mna.solveNewtonAll(state);

    for (std::size_t lane = 0; lane < kLanes; ++lane) {
        ASSERT_TRUE(state[lane].converged) << "lane " << lane;
        Mna scalar(*lanes.circuits[lane], cfg);
        Solution x = scalar.zeroSolution();
        ASSERT_TRUE(scalar.solveNewton(x, 0.0, 1.0, 0.0, nullptr));
        Solution batched;
        mna.getLaneX(lane, batched);
        ASSERT_EQ(batched.size(), x.size());
        for (std::size_t i = 0; i < x.size(); ++i)
            EXPECT_EQ(batched[i], x[i])
                << "lane=" << lane << " unknown=" << i;
    }
}

TEST(BatchedMna, GminBoostRecoveryMatchesScalar)
{
    // A DC-floating node (capacitor-only connection) with gmin
    // disabled produces a singular Jacobian; both engines must
    // recover through the identical singularGminBoost retry and land
    // on the same bits.
    const auto build = [](double load) {
        Circuit ckt;
        const NodeId a = ckt.addNode("a");
        const NodeId fl = ckt.addNode("float");
        ckt.addVoltageSource(a, Circuit::ground, 3.0);
        ckt.addResistor(a, Circuit::ground, 1e6);
        ckt.addCapacitor(a, fl, load);
        return ckt;
    };
    std::vector<Circuit> ckts;
    for (std::size_t lane = 0; lane < 4; ++lane)
        ckts.push_back(build(1e-12 * static_cast<double>(1 + lane)));
    std::vector<const Circuit *> circuits;
    for (const Circuit &c : ckts)
        circuits.push_back(&c);

    NewtonConfig cfg;
    cfg.gmin = 0.0; // force the singular path
    ASSERT_GT(cfg.singularGminBoost, 0.0);

    BatchedMna mna(circuits, cfg);
    std::vector<BatchNewtonLane> state(circuits.size());
    for (std::size_t lane = 0; lane < circuits.size(); ++lane) {
        mna.setLaneX(lane, Solution(mna.numUnknowns(), 0.0));
        mna.setLaneStep(lane, 0.0, 1.0, 0.0);
        state[lane].active = true;
    }
    mna.solveNewtonAll(state);

    for (std::size_t lane = 0; lane < circuits.size(); ++lane) {
        ASSERT_TRUE(state[lane].converged) << "lane " << lane;
        Mna scalar(*circuits[lane], cfg);
        Solution x = scalar.zeroSolution();
        ASSERT_TRUE(scalar.solveNewton(x, 0.0, 1.0, 0.0, nullptr));
        Solution batched;
        mna.getLaneX(lane, batched);
        for (std::size_t i = 0; i < x.size(); ++i)
            EXPECT_EQ(batched[i], x[i]);
    }
}

TEST(BatchTransient, TracesMatchScalarBitExact)
{
    InverterLanes lanes = makeInverterLanes(4);
    cells::CellFactory factory;
    const double vdd = factory.supply().vdd;

    // Per-lane input edges with different ramp times, so the lanes'
    // adaptive step sequences diverge immediately.
    std::vector<BatchTransientSpec> specs;
    for (std::size_t lane = 0; lane < lanes.cells.size(); ++lane) {
        cells::BuiltCell &cell = lanes.cells[lane];
        const double t_edge = 5e-6 * static_cast<double>(1 + lane);
        cell.ckt.setSourceWave(
            cell.inputSources[0],
            Pwl::points({0.0, 10e-6, 10e-6 + t_edge},
                        {0.0, 0.0, vdd}));
        BatchTransientSpec spec;
        spec.circuit = &cell.ckt;
        spec.config.dt = 2e-6;
        spec.config.tStop = 0.4e-3;
        DcAnalysis dc(cell.ckt, spec.config.newton);
        spec.initial = dc.operatingPoint();
        specs.push_back(std::move(spec));
    }

    const std::vector<TransientResult> batched =
        runTransientBatch(specs);
    ASSERT_EQ(batched.size(), specs.size());

    for (std::size_t lane = 0; lane < specs.size(); ++lane) {
        const TransientResult reference =
            TransientAnalysis(*specs[lane].circuit)
                .run(specs[lane].config, specs[lane].initial);

        ASSERT_EQ(batched[lane].time().size(),
                  reference.time().size())
            << "lane " << lane;
        for (std::size_t k = 0; k < reference.time().size(); ++k)
            EXPECT_EQ(batched[lane].time()[k], reference.time()[k]);
        const std::size_t n_nodes =
            specs[lane].circuit->numNodes();
        for (std::size_t n = 0; n < n_nodes; ++n) {
            const Trace ref =
                reference.node(static_cast<NodeId>(n));
            const Trace got =
                batched[lane].node(static_cast<NodeId>(n));
            ASSERT_EQ(got.value.size(), ref.value.size());
            for (std::size_t k = 0; k < ref.value.size(); ++k)
                EXPECT_EQ(got.value[k], ref.value[k])
                    << "lane=" << lane << " node=" << n
                    << " sample=" << k;
        }
        const std::size_t n_src =
            specs[lane].circuit->voltageSources().size();
        for (std::size_t s = 0; s < n_src; ++s) {
            const Trace ref =
                reference.source(static_cast<SourceId>(s));
            const Trace got =
                batched[lane].source(static_cast<SourceId>(s));
            ASSERT_EQ(got.value.size(), ref.value.size());
            for (std::size_t k = 0; k < ref.value.size(); ++k)
                EXPECT_EQ(got.value[k], ref.value[k]);
        }
    }
}

TEST(BatchTransient, SingleSpecFallsBackToScalar)
{
    InverterLanes lanes = makeInverterLanes(2);
    cells::BuiltCell &cell = lanes.cells[0];
    BatchTransientSpec spec;
    spec.circuit = &cell.ckt;
    spec.config.dt = 2e-6;
    spec.config.tStop = 0.1e-3;
    DcAnalysis dc(cell.ckt, spec.config.newton);
    spec.initial = dc.operatingPoint();

    const auto batched = runTransientBatch({spec});
    const TransientResult reference =
        TransientAnalysis(cell.ckt).run(spec.config, spec.initial);
    ASSERT_EQ(batched.size(), 1u);
    ASSERT_EQ(batched[0].time().size(), reference.time().size());
    for (std::size_t k = 0; k < reference.time().size(); ++k)
        EXPECT_EQ(batched[0].time()[k], reference.time()[k]);
}

TEST(BatchCompatible, DetectsTopologyMismatch)
{
    cells::CellFactory factory;
    const auto inv1 =
        factory.inverter(cells::InverterKind::PseudoE, 10e-12);
    const auto inv2 =
        factory.inverter(cells::InverterKind::PseudoE, 40e-12);
    const auto nand = factory.nand(2, 10e-12);
    EXPECT_TRUE(batchCompatible(inv1.ckt, inv2.ckt));
    EXPECT_FALSE(batchCompatible(inv1.ckt, nand.ckt));
}

} // namespace
} // namespace otft::circuit
