/**
 * @file
 * Unit tests for the Newton kernel reuse layer: the split
 * factor/solve LU, chord iteration correctness, the slow-convergence
 * Jacobian refresh, singular-Jacobian recovery, and warm-started
 * transients.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "circuit/dc.hpp"
#include "circuit/transient.hpp"
#include "device/pentacene.hpp"
#include "util/logging.hpp"
#include "util/stats_registry.hpp"

namespace otft::circuit {
namespace {

Matrix
testMatrix()
{
    // Diagonally non-dominant with a zero leading pivot, so partial
    // pivoting must actually permute rows.
    Matrix a(4);
    const double rows[4][4] = {
        {0.0, 2.0, -1.0, 3.0},
        {4.0, -1.0, 0.5, 1.0},
        {-2.0, 3.5, 2.0, -1.0},
        {1.0, 0.0, -3.0, 2.5},
    };
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            a.at(r, c) = rows[r][c];
    return a;
}

TEST(LuFactors, MatchesSolveLinear)
{
    const Matrix a = testMatrix();
    std::vector<double> b = {1.0, -2.0, 0.5, 4.0};

    Matrix scratch = a;
    std::vector<double> reference = b;
    ASSERT_TRUE(solveLinear(scratch, reference));

    LuFactors lu;
    ASSERT_TRUE(lu.factor(a));
    EXPECT_TRUE(lu.valid());
    EXPECT_EQ(lu.size(), 4u);
    lu.solve(b);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(b[i], reference[i], 1e-12) << "component " << i;
}

TEST(LuFactors, OneFactorizationServesManyRhs)
{
    const Matrix a = testMatrix();
    LuFactors lu;
    ASSERT_TRUE(lu.factor(a));

    for (int rhs = 0; rhs < 3; ++rhs) {
        std::vector<double> b = {1.0 + rhs, -rhs * 2.0, 0.25, 3.0};
        Matrix scratch = a;
        std::vector<double> reference = b;
        ASSERT_TRUE(solveLinear(scratch, reference));
        lu.solve(b);
        for (std::size_t i = 0; i < 4; ++i)
            EXPECT_NEAR(b[i], reference[i], 1e-12)
                << "rhs " << rhs << " component " << i;
    }
}

TEST(LuFactors, ResidualOfSolutionIsTiny)
{
    const Matrix a = testMatrix();
    std::vector<double> x = {2.0, -1.0, 0.0, 5.5};
    LuFactors lu;
    ASSERT_TRUE(lu.factor(a));
    lu.solve(x);
    // Check A x == b by recomputing the product.
    const std::vector<double> b = {2.0, -1.0, 0.0, 5.5};
    for (std::size_t r = 0; r < 4; ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < 4; ++c)
            s += a.at(r, c) * x[c];
        EXPECT_NEAR(s, b[r], 1e-12);
    }
}

TEST(LuFactors, SingularMatrixFailsAndInvalidates)
{
    Matrix a(3);
    // An all-zero row keeps the matrix exactly singular in floating
    // point (elimination leaves an exactly-zero pivot, no rounding).
    const double rows[3][3] = {
        {1.0, 2.0, 3.0}, {0.0, 0.0, 0.0}, {2.0, 1.0, 1.0}};
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            a.at(r, c) = rows[r][c];

    LuFactors lu;
    EXPECT_FALSE(lu.factor(a));
    EXPECT_FALSE(lu.valid());

    // A later successful factor() must recover.
    ASSERT_TRUE(lu.factor(testMatrix()));
    EXPECT_TRUE(lu.valid());
    lu.invalidate();
    EXPECT_FALSE(lu.valid());
}

/** A strongly nonlinear one-FET testbench (diode-connected OTFT). */
Circuit
diodeCircuit()
{
    Circuit ckt;
    const NodeId supply = ckt.addNode("vneg");
    const NodeId mid = ckt.addNode("mid");
    ckt.addVoltageSource(supply, Circuit::ground, -10.0);
    ckt.addResistor(Circuit::ground, mid, 1e5);
    ckt.addFet(device::makePentaceneGolden(), supply, supply, mid);
    return ckt;
}

TEST(ChordNewton, MatchesFullNewtonWithinTolerance)
{
    Circuit chord_ckt = diodeCircuit();
    Circuit full_ckt = diodeCircuit();

    NewtonConfig chord_cfg;
    chord_cfg.chord = true;
    NewtonConfig full_cfg;
    full_cfg.chord = false;

    const auto chord_sol =
        DcAnalysis(chord_ckt, chord_cfg).operatingPoint();
    const auto full_sol =
        DcAnalysis(full_ckt, full_cfg).operatingPoint();
    ASSERT_EQ(chord_sol.size(), full_sol.size());
    // Both iterations share the fixed point F(x) = 0; they agree to
    // within a few convergence tolerances.
    for (std::size_t i = 0; i < chord_sol.size(); ++i)
        EXPECT_NEAR(chord_sol[i], full_sol[i],
                    10.0 * chord_cfg.tolerance)
            << "unknown " << i;
}

TEST(ChordNewton, RefreshTriggersOnStalledConvergence)
{
    // chordRefreshRatio = 0 makes every chord step look "stalled"
    // (max_update > 0), so the refresh path must fire; with a huge
    // ratio the frozen Jacobian is never refreshed. Both must still
    // converge to the same answer on this mildly nonlinear circuit.
    stats::Counter &refreshes = stats::counter(
        "circuit.newton.jacobian_refreshes",
        "chord iterations that triggered a Jacobian rebuild "
        "(slow convergence)");
    stats::Counter &chord_iters = stats::counter(
        "circuit.newton.chord_iterations",
        "iterations served by a reused (chord) Jacobian");

    Circuit eager_ckt = diodeCircuit();
    NewtonConfig eager;
    eager.chordRefreshRatio = 0.0;
    const std::uint64_t refreshes_before = refreshes.value();
    const auto eager_sol =
        DcAnalysis(eager_ckt, eager).operatingPoint();
    EXPECT_GT(refreshes.value(), refreshes_before);

    Circuit frozen_ckt = diodeCircuit();
    NewtonConfig frozen;
    frozen.chordRefreshRatio = 1e30;
    frozen.maxIterations = 2000; // pure chord converges linearly
    const std::uint64_t chord_before = chord_iters.value();
    const auto frozen_sol =
        DcAnalysis(frozen_ckt, frozen).operatingPoint();
    EXPECT_GT(chord_iters.value(), chord_before);

    ASSERT_EQ(eager_sol.size(), frozen_sol.size());
    for (std::size_t i = 0; i < eager_sol.size(); ++i)
        EXPECT_NEAR(eager_sol[i], frozen_sol[i], 1e-5)
            << "unknown " << i;
}

TEST(ChordNewton, SingularJacobianRecoversViaGminBoost)
{
    // A node attached only through a capacitor has an all-zero DC
    // Jacobian row once gmin is off. The boost must rescue the solve;
    // disabling the boost must reproduce the historical failure.
    const auto build = [] {
        Circuit ckt;
        const NodeId driven = ckt.addNode("driven");
        const NodeId floating = ckt.addNode("floating");
        ckt.addVoltageSource(driven, Circuit::ground, 1.0);
        ckt.addCapacitor(driven, floating, 1e-12);
        return ckt;
    };

    stats::Counter &recoveries = stats::counter(
        "circuit.newton.singular_recoveries",
        "singular Jacobians recovered via a diagonal gmin boost");

    Circuit ckt = build();
    NewtonConfig cfg;
    cfg.gmin = 0.0;
    Mna mna(ckt, cfg);
    Solution x = mna.zeroSolution();
    const std::uint64_t before = recoveries.value();
    EXPECT_TRUE(mna.solveNewton(x, 0.0, 1.0, 0.0, nullptr));
    EXPECT_GT(recoveries.value(), before);
    EXPECT_NEAR(mna.nodeVoltage(x, 1), 1.0, 1e-6);

    Circuit bare_ckt = build();
    NewtonConfig no_boost = cfg;
    no_boost.singularGminBoost = 0.0;
    Mna bare(bare_ckt, no_boost);
    Solution y = bare.zeroSolution();
    EXPECT_FALSE(bare.solveNewton(y, 0.0, 1.0, 0.0, nullptr));
}

TEST(ChordNewton, WarmStartedTransientIsBitIdentical)
{
    // run(config) computes the t = 0 operating point internally; the
    // warm-start overload receives the identical solution, so the two
    // trajectories must match bit for bit.
    const auto build = [] {
        Circuit ckt;
        const NodeId in = ckt.addNode("in");
        const NodeId out = ckt.addNode("out");
        ckt.addVoltageSource(in, Circuit::ground,
                             Pwl::pulse(0.0, 1.0, 2e-4, 1e-5, 6e-4));
        ckt.addResistor(in, out, 1e4);
        ckt.addCapacitor(out, Circuit::ground, 1e-8);
        ckt.addFet(device::makePentaceneGolden(), out, out,
                   Circuit::ground);
        return ckt;
    };

    TransientConfig config;
    config.dt = 5e-6;
    config.tStop = 1.5e-3;

    Circuit cold_ckt = build();
    const auto cold = TransientAnalysis(cold_ckt).run(config);

    Circuit warm_ckt = build();
    const Solution x0 =
        DcAnalysis(warm_ckt, config.newton).operatingPoint();
    const auto warm = TransientAnalysis(warm_ckt).run(config, x0);

    ASSERT_EQ(cold.time().size(), warm.time().size());
    for (std::size_t k = 0; k < cold.time().size(); ++k)
        ASSERT_EQ(cold.time()[k], warm.time()[k]);
    const auto cold_v = cold.node(1);
    const auto warm_v = warm.node(1);
    for (std::size_t k = 0; k < cold_v.value.size(); ++k)
        ASSERT_EQ(cold_v.value[k], warm_v.value[k]) << "sample " << k;
}

TEST(ChordNewton, WarmStartRejectsWrongSize)
{
    Circuit ckt = diodeCircuit();
    TransientConfig config;
    config.dt = 1e-5;
    config.tStop = 1e-4;
    Solution wrong(99, 0.0);
    EXPECT_THROW(TransientAnalysis(ckt).run(config, wrong),
                 FatalError);
}

} // namespace
} // namespace otft::circuit
