/** @file Unit tests for DC analysis. */

#include <gtest/gtest.h>

#include "circuit/dc.hpp"
#include "util/logging.hpp"
#include "device/pentacene.hpp"
#include "util/stats.hpp"

namespace otft::circuit {
namespace {

TEST(DcAnalysis, VoltageDivider)
{
    Circuit ckt;
    const NodeId top = ckt.addNode("top");
    const NodeId mid = ckt.addNode("mid");
    ckt.addVoltageSource(top, Circuit::ground, 10.0);
    ckt.addResistor(top, mid, 1000.0);
    ckt.addResistor(mid, Circuit::ground, 3000.0);

    DcAnalysis dc(ckt);
    const auto sol = dc.operatingPoint();
    EXPECT_NEAR(dc.nodeVoltage(sol, mid), 7.5, 1e-6);
    // Source delivers V * I = 10 * 10/4000 W.
    EXPECT_NEAR(dc.totalSourcePower(sol), 10.0 * 10.0 / 4000.0, 1e-9);
}

TEST(DcAnalysis, CurrentSourceIntoResistor)
{
    Circuit ckt;
    const NodeId n = ckt.addNode("n");
    ckt.addCurrentSource(n, Circuit::ground, 1e-3);
    ckt.addResistor(n, Circuit::ground, 2000.0);
    DcAnalysis dc(ckt);
    const auto sol = dc.operatingPoint();
    EXPECT_NEAR(dc.nodeVoltage(sol, n), 2.0, 1e-6);
}

TEST(DcAnalysis, SourceCurrentSign)
{
    Circuit ckt;
    const NodeId top = ckt.addNode("top");
    const SourceId src =
        ckt.addVoltageSource(top, Circuit::ground, 5.0);
    ckt.addResistor(top, Circuit::ground, 500.0);
    DcAnalysis dc(ckt);
    const auto sol = dc.operatingPoint();
    // Positive current delivered into the circuit.
    EXPECT_NEAR(dc.sourceCurrent(sol, src), 0.01, 1e-9);
}

TEST(DcAnalysis, TransistorDiodeDrop)
{
    // Diode-connected p-type pentacene from a negative supply through
    // a resistor: the device must sit near its threshold drop.
    Circuit ckt;
    const NodeId supply = ckt.addNode("vneg");
    const NodeId mid = ckt.addNode("mid");
    ckt.addVoltageSource(supply, Circuit::ground, -10.0);
    ckt.addResistor(Circuit::ground, mid, 1e5);
    // Diode-connected: gate = drain = supply side.
    ckt.addFet(device::makePentaceneGolden(), supply, supply, mid);

    DcAnalysis dc(ckt);
    const auto sol = dc.operatingPoint();
    const double v = dc.nodeVoltage(sol, mid);
    // mid settles between ground and supply, below ground by at most
    // a few volts of device drop.
    EXPECT_LT(v, 0.0);
    EXPECT_GT(v, -10.0);
}

TEST(DcAnalysis, SweepWarmStartsAndRestoresWave)
{
    Circuit ckt;
    const NodeId in = ckt.addNode("in");
    const SourceId src =
        ckt.addVoltageSource(in, Circuit::ground, 2.5);
    ckt.addResistor(in, Circuit::ground, 1e4);
    DcAnalysis dc(ckt);
    const auto sweep = dc.sweepSource(src, linspace(0.0, 5.0, 11));
    ASSERT_EQ(sweep.solutions.size(), 11u);
    for (std::size_t i = 0; i < 11; ++i)
        EXPECT_NEAR(dc.nodeVoltage(sweep.solutions[i], in),
                    sweep.values[i], 1e-9);
    // The original waveform is restored after the sweep.
    EXPECT_DOUBLE_EQ(ckt.voltageSources()[0].wave.dc(), 2.5);
}

TEST(DcAnalysis, FloatingNodeHeldByGmin)
{
    Circuit ckt;
    const NodeId orphan = ckt.addNode("orphan");
    ckt.addCapacitor(orphan, Circuit::ground, 1e-12);
    DcAnalysis dc(ckt);
    const auto sol = dc.operatingPoint();
    EXPECT_NEAR(dc.nodeVoltage(sol, orphan), 0.0, 1e-6);
}

TEST(Circuit, ValidatesElements)
{
    Circuit ckt;
    const NodeId a = ckt.addNode("a");
    EXPECT_THROW(ckt.addResistor(a, 99, 100.0), FatalError);
    EXPECT_THROW(ckt.addResistor(a, Circuit::ground, -5.0),
                 FatalError);
    EXPECT_THROW(ckt.addCapacitor(a, Circuit::ground, -1e-12),
                 FatalError);
    EXPECT_THROW(ckt.addFet(nullptr, a, a, a), FatalError);
    EXPECT_THROW(ckt.setSourceWave(3, Pwl::constant(0.0)), FatalError);
}

TEST(Circuit, NodeNames)
{
    Circuit ckt;
    const NodeId a = ckt.addNode("alpha");
    EXPECT_EQ(ckt.nodeName(Circuit::ground), "gnd");
    EXPECT_EQ(ckt.nodeName(a), "alpha");
}

} // namespace
} // namespace otft::circuit
