/** @file Unit tests for waveforms and measurements. */

#include <gtest/gtest.h>

#include "circuit/waveform.hpp"
#include "util/logging.hpp"

namespace otft::circuit {
namespace {

TEST(Pwl, ConstantEverywhere)
{
    const Pwl p = Pwl::constant(3.0);
    EXPECT_DOUBLE_EQ(p.at(-1.0), 3.0);
    EXPECT_DOUBLE_EQ(p.at(0.0), 3.0);
    EXPECT_DOUBLE_EQ(p.at(100.0), 3.0);
    EXPECT_DOUBLE_EQ(p.dc(), 3.0);
}

TEST(Pwl, RampShape)
{
    const Pwl p = Pwl::ramp(0.0, 2.0, 1.0, 2.0);
    EXPECT_DOUBLE_EQ(p.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(p.at(1.0), 0.0);
    EXPECT_DOUBLE_EQ(p.at(2.0), 1.0);
    EXPECT_DOUBLE_EQ(p.at(3.0), 2.0);
    EXPECT_DOUBLE_EQ(p.at(9.0), 2.0);
}

TEST(Pwl, PulseShape)
{
    const Pwl p = Pwl::pulse(0.0, 5.0, 1.0, 0.5, 2.0);
    EXPECT_DOUBLE_EQ(p.at(0.0), 0.0);
    EXPECT_DOUBLE_EQ(p.at(1.25), 2.5);
    EXPECT_DOUBLE_EQ(p.at(2.0), 5.0);
    EXPECT_DOUBLE_EQ(p.at(3.5), 5.0);
    EXPECT_DOUBLE_EQ(p.at(4.0), 0.0);
}

TEST(Pwl, PointsValidation)
{
    EXPECT_THROW(Pwl::points({1.0, 0.5}, {0.0, 1.0}), FatalError);
    EXPECT_THROW(Pwl::points({}, {}), FatalError);
    EXPECT_THROW(Pwl::points({0.0}, {1.0, 2.0}), FatalError);
}

TEST(Trace, CrossingsBothDirections)
{
    Trace t;
    t.time = {0, 1, 2, 3, 4};
    t.value = {0, 2, 0, 2, 0};
    const auto rising = t.crossings(1.0, true);
    const auto falling = t.crossings(1.0, false);
    ASSERT_EQ(rising.size(), 2u);
    ASSERT_EQ(falling.size(), 2u);
    EXPECT_NEAR(rising[0], 0.5, 1e-12);
    EXPECT_NEAR(falling[0], 1.5, 1e-12);
}

TEST(Trace, FirstCrossingWithMinTime)
{
    Trace t;
    t.time = {0, 1, 2, 3, 4};
    t.value = {0, 2, 0, 2, 0};
    EXPECT_NEAR(t.firstCrossing(1.0, true, 1.0), 2.5, 1e-12);
    EXPECT_DOUBLE_EQ(t.firstCrossing(5.0, true), -1.0);
}

TEST(MeasureSlew, RisingRamp)
{
    Trace t;
    t.time = {0, 1};
    t.value = {0, 10};
    // 20%-80% of a linear 0..10 ramp over 1 s = 0.6 s.
    EXPECT_NEAR(measureSlew(t, 0.0, 10.0, 0.2, 0.8, true), 0.6,
                1e-9);
}

TEST(MeasureSlew, MissingTransitionReturnsNegative)
{
    Trace t;
    t.time = {0, 1};
    t.value = {0, 0.1};
    EXPECT_LT(measureSlew(t, 0.0, 10.0, 0.2, 0.8, true), 0.0);
}

TEST(MeasureDelay, MidpointToMidpoint)
{
    Trace in, out;
    in.time = {0, 1, 2};
    in.value = {0, 10, 10};
    out.time = {0, 1, 2, 3};
    out.value = {10, 10, 0, 0};
    // Input crosses 5 at t=0.5 rising; output crosses 5 at t=1.5
    // falling.
    EXPECT_NEAR(measureDelay(in, out, 0, 10, true, 0, 10, false),
                1.0, 1e-9);
}

} // namespace
} // namespace otft::circuit
