/** @file Unit tests for transient analysis. */

#include <cmath>

#include <gtest/gtest.h>

#include "circuit/transient.hpp"
#include "util/logging.hpp"

namespace otft::circuit {
namespace {

TEST(Transient, RcChargingCurve)
{
    // Step into an RC: v(t) = V (1 - exp(-t/RC)), RC = 1 ms.
    Circuit ckt;
    const NodeId in = ckt.addNode("in");
    const NodeId out = ckt.addNode("out");
    ckt.addVoltageSource(in, Circuit::ground,
                         Pwl::ramp(0.0, 1.0, 1e-4, 1e-6));
    ckt.addResistor(in, out, 1e4);
    ckt.addCapacitor(out, Circuit::ground, 1e-7);

    TransientConfig config;
    config.dt = 5e-6;
    config.tStop = 6e-3;
    TransientAnalysis tran(ckt);
    const auto result = tran.run(config);
    const auto v = result.node(out);

    // One time constant after the step: 63.2%.
    EXPECT_NEAR(v.at(1e-4 + 1e-3), 0.632, 0.02);
    // Five time constants: fully charged.
    EXPECT_NEAR(v.at(1e-4 + 5e-3), 1.0, 0.02);
    // Before the step: zero.
    EXPECT_NEAR(v.at(5e-5), 0.0, 1e-6);
}

TEST(Transient, RcTimeConstantFromCrossing)
{
    Circuit ckt;
    const NodeId in = ckt.addNode("in");
    const NodeId out = ckt.addNode("out");
    ckt.addVoltageSource(in, Circuit::ground,
                         Pwl::ramp(0.0, 1.0, 0.0, 1e-7));
    ckt.addResistor(in, out, 1e3);
    ckt.addCapacitor(out, Circuit::ground, 1e-6);

    TransientConfig config;
    config.dt = 1e-5;
    config.tStop = 8e-3;
    const auto result = TransientAnalysis(ckt).run(config);
    const auto v = result.node(out);
    const double t50 = v.firstCrossing(0.5, true);
    // t50 = RC ln 2 = 0.693 ms.
    EXPECT_NEAR(t50, 0.693e-3, 0.03e-3);
}

TEST(Transient, SourceEnergyIntegral)
{
    // Constant 1 V across 1 kOhm for 1 ms -> 1 uJ.
    Circuit ckt;
    const NodeId n = ckt.addNode("n");
    const SourceId src = ckt.addVoltageSource(n, Circuit::ground, 1.0);
    ckt.addResistor(n, Circuit::ground, 1000.0);

    TransientConfig config;
    config.dt = 1e-5;
    config.tStop = 1e-3;
    const auto result = TransientAnalysis(ckt).run(config);
    EXPECT_NEAR(result.sourceEnergy(src, 1.0, 0.0, 1e-3), 1e-6, 1e-8);
}

TEST(Transient, BreakpointsLandOnGrid)
{
    Circuit ckt;
    const NodeId in = ckt.addNode("in");
    ckt.addVoltageSource(in, Circuit::ground,
                         Pwl::points({0.0, 3.3e-4, 3.4e-4},
                                     {0.0, 0.0, 1.0}));
    ckt.addResistor(in, Circuit::ground, 100.0);

    TransientConfig config;
    config.dt = 1e-4; // breakpoints are between grid points
    config.tStop = 1e-3;
    const auto result = TransientAnalysis(ckt).run(config);
    const auto v = result.node(in);
    // The ramp start/end are sampled exactly.
    EXPECT_NEAR(v.at(3.3e-4), 0.0, 1e-9);
    EXPECT_NEAR(v.at(3.4e-4), 1.0, 1e-9);
}

TEST(Transient, RejectsBadConfig)
{
    Circuit ckt;
    ckt.addNode("n");
    TransientConfig config;
    config.dt = 0.0;
    EXPECT_THROW(TransientAnalysis(ckt).run(config), FatalError);
}

TEST(Transient, CouplingCapacitorBootstraps)
{
    // A step through a coupling cap into a resistor spikes then
    // decays back toward zero.
    Circuit ckt;
    const NodeId in = ckt.addNode("in");
    const NodeId out = ckt.addNode("out");
    ckt.addVoltageSource(in, Circuit::ground,
                         Pwl::ramp(0.0, 1.0, 1e-4, 1e-6));
    ckt.addCapacitor(in, out, 1e-7);
    ckt.addResistor(out, Circuit::ground, 1e4);

    TransientConfig config;
    config.dt = 2e-6;
    config.tStop = 8e-3;
    const auto result = TransientAnalysis(ckt).run(config);
    const auto v = result.node(out);
    EXPECT_GT(v.at(1.05e-4), 0.6);
    EXPECT_NEAR(v.at(7e-3), 0.0, 0.02);
}

} // namespace
} // namespace otft::circuit
