/**
 * @file
 * Failure-forensics tests: dump serialization round-trips bit-exactly
 * (including NaN/Inf states), a deliberately non-convergent solve
 * writes a content-addressed dump, and replaying that dump reproduces
 * the recorded iteration sequence bit for bit.
 */

#include <cmath>
#include <filesystem>
#include <limits>

#include <gtest/gtest.h>

#include "circuit/dump.hpp"
#include "circuit/mna.hpp"
#include "device/pentacene.hpp"
#include "util/diag.hpp"
#include "util/logging.hpp"

namespace otft::circuit {
namespace {

/** The one-FET diode testbench (strongly nonlinear). */
Circuit
diodeCircuit()
{
    Circuit ckt;
    const NodeId supply = ckt.addNode("vneg");
    const NodeId mid = ckt.addNode("mid");
    ckt.addVoltageSource(supply, Circuit::ground, -10.0);
    ckt.addResistor(Circuit::ground, mid, 1e5);
    ckt.addFet(device::makePentaceneGolden(), supply, supply, mid);
    return ckt;
}

/** Scoped dump directory: enables dumps, cleans up on destruction. */
class DumpDirGuard
{
  public:
    explicit DumpDirGuard(const std::string &dir)
        : dir_(dir)
    {
        std::filesystem::remove_all(dir_);
        diag::Collector::instance().reset();
        diag::Collector::instance().setDumpDirectory(dir_);
    }

    ~DumpDirGuard()
    {
        diag::Collector::instance().setDumpDirectory("");
        diag::Collector::instance().setEnabled(false);
        diag::Collector::instance().reset();
        std::filesystem::remove_all(dir_);
    }

    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
};

TEST(DiagDump, SerializeParseRoundTripsTheCircuit)
{
    Circuit ckt = diodeCircuit();
    NewtonConfig cfg;
    cfg.maxIterations = 17;
    cfg.tolerance = 1e-9;
    cfg.chordRefreshRatio = 0.75;
    Mna mna(ckt, cfg);
    Solution x0 = mna.zeroSolution();
    x0[0] = -1.25;
    Solution x_prev = mna.zeroSolution();
    x_prev[1] = 0.5;

    std::vector<diag::IterationSample> trace = {
        {0, 1.5, 0.7, false}, {1, 0.3, 0.1, true}};
    const std::string body = dump::serializeDump(
        ckt, cfg, x0, diag::SolveKind::TransientStep, 1.5e-6, 1.0,
        2.5e-7, &x_prev, "unit_test", "ctx.unit",
        {{"explorer.seed", 7.0}}, trace);

    const dump::FailureDump parsed = dump::parseFailureDump(body);
    EXPECT_EQ(parsed.reason, "unit_test");
    EXPECT_EQ(parsed.context, "ctx.unit");
    EXPECT_EQ(parsed.attributes.at("explorer.seed"), 7.0);
    EXPECT_EQ(parsed.kind, diag::SolveKind::TransientStep);
    EXPECT_EQ(parsed.time, 1.5e-6);
    EXPECT_EQ(parsed.dt, 2.5e-7);
    EXPECT_EQ(parsed.config.maxIterations, 17);
    EXPECT_EQ(parsed.config.tolerance, 1e-9);
    EXPECT_EQ(parsed.config.chordRefreshRatio, 0.75);

    EXPECT_EQ(parsed.circuit.numNodes(), ckt.numNodes());
    EXPECT_EQ(parsed.circuit.nodeName(1), "vneg");
    EXPECT_EQ(parsed.circuit.resistors().size(), 1u);
    EXPECT_EQ(parsed.circuit.fets().size(), 1u);
    EXPECT_EQ(parsed.circuit.voltageSources().size(), 1u);

    ASSERT_EQ(parsed.x0.size(), x0.size());
    for (std::size_t i = 0; i < x0.size(); ++i)
        EXPECT_EQ(parsed.x0[i], x0[i]);
    ASSERT_TRUE(parsed.hasPrev);
    ASSERT_EQ(parsed.xPrev.size(), x_prev.size());
    for (std::size_t i = 0; i < x_prev.size(); ++i)
        EXPECT_EQ(parsed.xPrev[i], x_prev[i]);

    ASSERT_EQ(parsed.trace.size(), 2u);
    EXPECT_EQ(parsed.trace[0].residualNorm, 1.5);
    EXPECT_FALSE(parsed.trace[0].chord);
    EXPECT_TRUE(parsed.trace[1].chord);
}

TEST(DiagDump, NonFiniteStateSurvivesTheRoundTrip)
{
    Circuit ckt = diodeCircuit();
    NewtonConfig cfg;
    Mna mna(ckt, cfg);
    Solution x0 = mna.zeroSolution();
    x0[0] = std::numeric_limits<double>::quiet_NaN();
    x0[1] = std::numeric_limits<double>::infinity();
    x0[2] = -std::numeric_limits<double>::infinity();

    const std::string body = dump::serializeDump(
        ckt, cfg, x0, diag::SolveKind::Dc, 0.0, 1.0, 0.0, nullptr,
        "nan_test", "", {}, {});
    // Telemetry launders NaN to 0; forensics must not.
    const dump::FailureDump parsed = dump::parseFailureDump(body);
    EXPECT_TRUE(std::isnan(parsed.x0[0]));
    EXPECT_TRUE(std::isinf(parsed.x0[1]));
    EXPECT_GT(parsed.x0[1], 0.0);
    EXPECT_TRUE(std::isinf(parsed.x0[2]));
    EXPECT_LT(parsed.x0[2], 0.0);
}

TEST(DiagDump, SerializedDoublesAreBitExact)
{
    Circuit ckt = diodeCircuit();
    NewtonConfig cfg;
    // Values chosen to expose any precision loss below %.17g.
    cfg.tolerance = 0.1 + 0.2;
    cfg.gmin = 1.0 / 3.0;
    Mna mna(ckt, cfg);
    Solution x0 = mna.zeroSolution();
    x0[0] = std::nextafter(-2.5, 0.0);

    const dump::FailureDump parsed =
        dump::parseFailureDump(dump::serializeDump(
            ckt, cfg, x0, diag::SolveKind::Dc, 0.0, 1.0, 0.0, nullptr,
            "precision", "", {}, {}));
    EXPECT_EQ(parsed.config.tolerance, 0.1 + 0.2);
    EXPECT_EQ(parsed.config.gmin, 1.0 / 3.0);
    EXPECT_EQ(parsed.x0[0], std::nextafter(-2.5, 0.0));
}

TEST(DiagDump, ForcedNonConvergenceWritesAReplayableDump)
{
    DumpDirGuard guard("diag_dump_test_dir");

    // Unreachable tolerance: the solve must exhaust maxIterations.
    Circuit ckt = diodeCircuit();
    NewtonConfig cfg;
    cfg.maxIterations = 6;
    cfg.tolerance = 1e-18;
    Mna mna(ckt, cfg);
    Solution x = mna.zeroSolution();
    EXPECT_FALSE(mna.solveNewton(x, 0.0, 1.0, 0.0, nullptr));

    const auto paths = diag::Collector::instance().dumpPaths();
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_TRUE(std::filesystem::exists(paths[0]));

    const dump::FailureDump dumped = dump::readFailureDump(paths[0]);
    EXPECT_EQ(dumped.reason, "newton_max_iterations");
    EXPECT_EQ(dumped.kind, diag::SolveKind::Dc);
    ASSERT_FALSE(dumped.trace.empty());

    // Replay must fail the same way with a bit-identical iteration
    // sequence; the dump's ring is the tail of the full replay trace.
    const dump::ReplayResult replay = dump::replayDump(dumped);
    EXPECT_FALSE(replay.converged);
    ASSERT_GE(replay.trace.size(), dumped.trace.size());
    const std::size_t offset =
        replay.trace.size() - dumped.trace.size();
    for (std::size_t i = 0; i < dumped.trace.size(); ++i) {
        const auto &d = dumped.trace[i];
        const auto &r = replay.trace[offset + i];
        EXPECT_EQ(d.iteration, r.iteration) << "row " << i;
        EXPECT_EQ(d.residualNorm, r.residualNorm) << "row " << i;
        EXPECT_EQ(d.maxUpdate, r.maxUpdate) << "row " << i;
        EXPECT_EQ(d.chord, r.chord) << "row " << i;
    }
}

TEST(DiagDump, IdenticalFailuresDedupeToOneArtifact)
{
    DumpDirGuard guard("diag_dump_test_dedupe");

    Circuit ckt = diodeCircuit();
    NewtonConfig cfg;
    cfg.maxIterations = 4;
    cfg.tolerance = 1e-18;
    for (int run = 0; run < 3; ++run) {
        Mna mna(ckt, cfg);
        Solution x = mna.zeroSolution();
        EXPECT_FALSE(mna.solveNewton(x, 0.0, 1.0, 0.0, nullptr));
    }
    // Content-addressed: three identical failures, one file.
    EXPECT_EQ(diag::Collector::instance().dumpPaths().size(), 1u);
    std::size_t files = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(guard.dir()))
        files += entry.is_regular_file() ? 1 : 0;
    EXPECT_EQ(files, 1u);
}

TEST(DiagDump, SingularJacobianWithoutRecoveryDumps)
{
    DumpDirGuard guard("diag_dump_test_singular");

    // A capacitor-only node with gmin and the boost both off keeps
    // the DC Jacobian exactly singular.
    Circuit ckt;
    const NodeId driven = ckt.addNode("driven");
    const NodeId floating = ckt.addNode("floating");
    ckt.addVoltageSource(driven, Circuit::ground, 1.0);
    ckt.addCapacitor(driven, floating, 1e-12);
    NewtonConfig cfg;
    cfg.gmin = 0.0;
    cfg.singularGminBoost = 0.0;
    Mna mna(ckt, cfg);
    Solution x = mna.zeroSolution();
    EXPECT_FALSE(mna.solveNewton(x, 0.0, 1.0, 0.0, nullptr));

    const auto paths = diag::Collector::instance().dumpPaths();
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(dump::readFailureDump(paths[0]).reason,
              "jacobian_singular");
}

TEST(DiagDump, NoDumpsWhenDisabled)
{
    diag::Collector::instance().reset();
    ASSERT_FALSE(diag::Collector::instance().dumpsEnabled());
    Circuit ckt = diodeCircuit();
    NewtonConfig cfg;
    cfg.maxIterations = 4;
    cfg.tolerance = 1e-18;
    Mna mna(ckt, cfg);
    Solution x = mna.zeroSolution();
    EXPECT_FALSE(mna.solveNewton(x, 0.0, 1.0, 0.0, nullptr));
    EXPECT_TRUE(diag::Collector::instance().dumpPaths().empty());
}

} // namespace
} // namespace otft::circuit
