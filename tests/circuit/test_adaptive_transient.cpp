/**
 * @file
 * Tests of the LTE-controlled adaptive timestep engine: accuracy
 * against the fixed-step reference, exact breakpoint landing, step
 * budget reduction, and the [dtMin, dtMax] bounds.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "cells/topologies.hpp"
#include "circuit/transient.hpp"
#include "util/stats_registry.hpp"

namespace otft::circuit {
namespace {

Circuit
rcCircuit(NodeId &out)
{
    Circuit ckt;
    const NodeId in = ckt.addNode("in");
    out = ckt.addNode("out");
    ckt.addVoltageSource(in, Circuit::ground,
                         Pwl::ramp(0.0, 1.0, 1e-4, 1e-6));
    ckt.addResistor(in, out, 1e4);
    ckt.addCapacitor(out, Circuit::ground, 1e-7); // RC = 1 ms
    return ckt;
}

TEST(AdaptiveTransient, MatchesFixedStepWithinLteTolerance)
{
    NodeId out = 0;
    Circuit adaptive_ckt = rcCircuit(out);
    Circuit fixed_ckt = rcCircuit(out);

    TransientConfig config;
    config.dt = 5e-6;
    config.tStop = 6e-3;
    // Cap the step so the sampled trace's linear interpolation error
    // (h^2 v'' / 8) stays well below the solver's own LTE budget;
    // uncapped growth is exercised by the step-count test below.
    config.dtMax = 50e-6;

    TransientConfig fixed_config = config;
    fixed_config.fixedStep = true;

    const auto adaptive = TransientAnalysis(adaptive_ckt).run(config);
    const auto fixed = TransientAnalysis(fixed_ckt).run(fixed_config);
    const auto va = adaptive.node(out);
    const auto vf = fixed.node(out);

    // The documented contract (DESIGN.md): waveforms agree within a
    // small multiple of lteTol at any sample time.
    for (double t = 1e-4; t < 6e-3; t += 1e-4)
        EXPECT_NEAR(va.at(t), vf.at(t), 5.0 * config.lteTol)
            << "t = " << t;
}

TEST(AdaptiveTransient, LandsExactlyOnBreakpoints)
{
    Circuit ckt;
    const NodeId in = ckt.addNode("in");
    ckt.addVoltageSource(in, Circuit::ground,
                         Pwl::points({0.0, 3.3e-4, 3.4e-4},
                                     {0.0, 0.0, 1.0}));
    ckt.addResistor(in, Circuit::ground, 100.0);

    TransientConfig config;
    config.dt = 1e-4; // breakpoints fall between nominal steps
    config.tStop = 1e-3;
    const auto result = TransientAnalysis(ckt).run(config);
    const auto &times = result.time();

    // The breakpoints and tStop are solver steps, exactly.
    for (double bp : {3.3e-4, 3.4e-4, 1e-3})
        EXPECT_NE(std::find(times.begin(), times.end(), bp),
                  times.end())
            << "breakpoint " << bp << " not hit exactly";

    const auto v = result.node(in);
    EXPECT_NEAR(v.at(3.3e-4), 0.0, 1e-9);
    EXPECT_NEAR(v.at(3.4e-4), 1.0, 1e-9);
}

TEST(AdaptiveTransient, UsesFarFewerStepsOnSettledWaveforms)
{
    NodeId out = 0;
    Circuit adaptive_ckt = rcCircuit(out);
    Circuit fixed_ckt = rcCircuit(out);

    TransientConfig config;
    config.dt = 5e-6;
    config.tStop = 6e-3;
    TransientConfig fixed_config = config;
    fixed_config.fixedStep = true;

    const auto adaptive = TransientAnalysis(adaptive_ckt).run(config);
    const auto fixed = TransientAnalysis(fixed_ckt).run(fixed_config);
    // The exponential tail is quiescent; LTE control must grow the
    // step well past dt. 3x is conservative (typically ~10x+).
    EXPECT_LT(adaptive.time().size() * 3, fixed.time().size());
    EXPECT_GT(adaptive.time().size(), 10u);
}

TEST(AdaptiveTransient, RespectsStepBounds)
{
    NodeId out = 0;
    Circuit ckt = rcCircuit(out);
    TransientConfig config;
    config.dt = 5e-6;
    config.tStop = 2e-3;
    config.dtMin = 2e-6;
    config.dtMax = 40e-6;
    const auto result = TransientAnalysis(ckt).run(config);
    const auto &times = result.time();
    ASSERT_GT(times.size(), 2u);
    for (std::size_t k = 1; k < times.size(); ++k) {
        const double h = times[k] - times[k - 1];
        EXPECT_GT(h, 0.0);
        // Landing steps may undershoot dtMin to hit a breakpoint;
        // nothing may exceed dtMax.
        EXPECT_LE(h, config.dtMax * (1.0 + 1e-12));
    }
}

TEST(AdaptiveTransient, RejectionCounterMovesOnSharpEdges)
{
    stats::Counter &rejections = stats::counter(
        "circuit.transient.lte_rejections",
        "adaptive steps rejected for excess local truncation error");
    const std::uint64_t before = rejections.value();

    // A fast edge into a slow RC forces the controller to cut steps
    // right after the breakpoint resets.
    Circuit ckt;
    const NodeId in = ckt.addNode("in");
    const NodeId out = ckt.addNode("out");
    ckt.addVoltageSource(in, Circuit::ground,
                         Pwl::pulse(0.0, 5.0, 1e-4, 1e-6, 4e-4));
    ckt.addResistor(in, out, 1e3);
    ckt.addCapacitor(out, Circuit::ground, 1e-7);
    TransientConfig config;
    config.dt = 2e-5;
    config.tStop = 1.5e-3;
    config.lteTol = 1e-4; // tight budget to provoke rejections
    (void)TransientAnalysis(ckt).run(config);
    EXPECT_GT(rejections.value(), before);
}

/**
 * The paper's cell testbenches (fig06/fig08 inverter flavors): the
 * adaptive default must reproduce fixed-step switching waveforms
 * within the documented tolerance.
 */
TEST(AdaptiveTransient, InverterDelaysMatchFixedStep)
{
    for (const auto kind :
         {cells::InverterKind::PseudoE, cells::InverterKind::BiasedLoad}) {
        cells::CellFactory factory;
        const auto run_mode = [&](bool fixed) {
            cells::BuiltCell cell =
                factory.inverter(kind, 4.0 * factory.inputCap());
            cell.ckt.setSourceWave(
                cell.inputSources[0],
                Pwl::pulse(0.0, cell.supply.vdd, 20e-6, 4e-6, 60e-6));
            TransientConfig config;
            config.tStop = 160e-6;
            config.dt = 0.5e-6;
            config.fixedStep = fixed;
            const auto result =
                TransientAnalysis(cell.ckt).run(config);
            return result.node(cell.out);
        };
        const Trace adaptive = run_mode(false);
        const Trace fixed = run_mode(true);
        const double vdd = cells::SupplyConfig{}.vdd;
        for (double t = 0.0; t < 160e-6; t += 2e-6)
            EXPECT_NEAR(adaptive.at(t), fixed.at(t), 0.02 * vdd)
                << cells::toString(kind) << " at t = " << t;
    }
}

} // namespace
} // namespace otft::circuit
